// Regenerates Figures 3-14 of Rabl et al. (VLDB 2012): maximum sustainable
// throughput and per-operation latencies for the six stores on the
// memory-bound Cluster M, 1-12 nodes, workloads R / RW / W / RS / RSW.
//
// Usage: fig_cluster_m [workload=R|RW|W|RS|RSW] [nodes=1,2,4,8,12]
//                      [out=<dir>]
// Environment: APMBENCH_SIM_SECONDS, APMBENCH_SIM_SEEDS.
// With out=<dir>, each figure is additionally written as a
// gnuplot-friendly tab-separated file <dir>/fig<N>.dat.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/env.h"
#include "common/properties.h"
#include "simstores/runner.h"

namespace {

using namespace apmbench;
using namespace apmbench::simstores;
using benchutil::FormatMs;
using benchutil::FormatOps;
using benchutil::PrintRow;

const std::vector<std::string> kAllSystems = {"cassandra", "hbase",
                                              "voldemort", "redis",
                                              "voltdb",    "mysql"};

struct FigureSet {
  const char* workload;
  int throughput_figure;
  int read_latency_figure;
  int write_latency_figure;
  int scan_latency_figure;  // 0 = none
};

// The paper's figure numbering.
const FigureSet kFigures[] = {
    {"R", 3, 4, 5, 0},    {"RW", 6, 7, 8, 0},  {"W", 9, 10, 11, 0},
    {"RS", 12, 0, 0, 13}, {"RSW", 14, 0, 0, 0},
};

struct Cell {
  bool valid = false;
  SimResult result;
};

std::string g_out_dir;  // empty = no .dat export
benchutil::JsonResultWriter* g_json = nullptr;

void ExportDat(int figure, const std::vector<int>& nodes,
               const std::vector<std::string>& systems,
               const std::vector<std::vector<std::string>>& rows) {
  if (g_out_dir.empty() || figure == 0) return;
  std::string body = "# nodes";
  for (const auto& system : systems) body += "\t" + system;
  body += "\n";
  for (size_t n = 0; n < nodes.size(); n++) {
    body += std::to_string(nodes[n]);
    for (const auto& cell : rows[n]) body += "\t" + cell;
    body += "\n";
  }
  std::string path = g_out_dir + "/fig" + std::to_string(figure) + ".dat";
  Status status = Env::Default()->WriteStringToFile(path, Slice(body));
  if (!status.ok()) {
    fprintf(stderr, "[warn] export %s: %s\n", path.c_str(),
            status.ToString().c_str());
  }
}

void RunWorkload(const FigureSet& figures, const std::vector<int>& nodes) {
  WorkloadSpec spec = WorkloadSpec::Preset(figures.workload);
  std::vector<std::string> systems;
  for (const auto& system : kAllSystems) {
    if (spec.scan > 0 && system == "voldemort") continue;  // as in paper
    systems.push_back(system);
  }

  // node-count x system result matrix.
  std::vector<std::vector<Cell>> cells(nodes.size());
  for (size_t n = 0; n < nodes.size(); n++) {
    cells[n].resize(systems.size());
    for (size_t s = 0; s < systems.size(); s++) {
      ClusterParams cluster = ClusterParams::ClusterM(nodes[n]);
      SimRunConfig config = benchutil::DefaultSimConfig();
      Cell& cell = cells[n][s];
      Status status =
          RunSimulationSeeds(systems[s], cluster, spec, config,
                             benchutil::SimSeeds(), &cell.result);
      cell.valid = status.ok();
      if (!status.ok()) {
        fprintf(stderr, "[warn] %s @%d nodes: %s\n", systems[s].c_str(),
                nodes[n], status.ToString().c_str());
      }
    }
  }

  // Machine-readable export: one row per simulated point, all metrics.
  for (size_t n = 0; n < nodes.size(); n++) {
    for (size_t s = 0; s < systems.size(); s++) {
      if (!cells[n][s].valid) continue;
      const SimResult& r = cells[n][s].result;
      g_json->AddRow()
          .Str("workload", figures.workload)
          .Int("nodes", nodes[n])
          .Str("system", systems[s])
          .Num("throughput_ops_sec", r.throughput_ops_sec)
          .Num("read_latency_ms", r.MeanLatencyMs(OpKind::kRead))
          .Num("write_latency_ms", r.MeanLatencyMs(OpKind::kInsert))
          .Num("scan_latency_ms", r.MeanLatencyMs(OpKind::kScan));
    }
  }

  auto print_table = [&](int figure, const char* what,
                         auto&& extract) {
    if (figure == 0) return;
    printf("\n=== Figure %d: %s, Workload %s (Cluster M) ===\n", figure,
           what, figures.workload);
    PrintRow("nodes", systems);
    std::vector<std::vector<std::string>> rows;
    for (size_t n = 0; n < nodes.size(); n++) {
      std::vector<std::string> row;
      for (size_t s = 0; s < systems.size(); s++) {
        row.push_back(cells[n][s].valid ? extract(cells[n][s].result)
                                        : std::string("-"));
      }
      PrintRow(std::to_string(nodes[n]), row);
      rows.push_back(std::move(row));
    }
    ExportDat(figure, nodes, systems, rows);
  };

  print_table(figures.throughput_figure, "Throughput (ops/sec)",
              [](const SimResult& r) { return FormatOps(r.throughput_ops_sec); });
  print_table(figures.read_latency_figure, "Read latency (ms)",
              [](const SimResult& r) {
                return FormatMs(r.MeanLatencyMs(OpKind::kRead));
              });
  print_table(figures.write_latency_figure, "Write latency (ms)",
              [](const SimResult& r) {
                return FormatMs(r.MeanLatencyMs(OpKind::kInsert));
              });
  print_table(figures.scan_latency_figure, "Scan latency (ms)",
              [](const SimResult& r) {
                return FormatMs(r.MeanLatencyMs(OpKind::kScan));
              });
}

}  // namespace

int main(int argc, char** argv) {
  std::string only_workload;
  std::vector<int> nodes = {1, 2, 4, 8, 12};
  for (int i = 1; i < argc; i++) {
    apmbench::Properties props;
    if (!props.ParseArg(argv[i]).ok()) {
      fprintf(stderr, "usage: %s [workload=R|RW|W|RS|RSW] [nodes=1,2,4]\n",
              argv[0]);
      return 2;
    }
    if (props.Contains("workload")) {
      only_workload = props.GetString("workload");
    }
    if (props.Contains("out")) {
      g_out_dir = props.GetString("out");
      Env::Default()->CreateDirIfMissing(g_out_dir);
    }
    if (props.Contains("nodes")) {
      nodes.clear();
      std::string list = props.GetString("nodes");
      for (size_t pos = 0; pos < list.size();) {
        size_t comma = list.find(',', pos);
        if (comma == std::string::npos) comma = list.size();
        nodes.push_back(atoi(list.substr(pos, comma - pos).c_str()));
        pos = comma + 1;
      }
    }
  }

  printf("APMBench cluster-M figure harness "
         "(sim %.0fs x %d seeds per point; set APMBENCH_SIM_SECONDS / "
         "APMBENCH_SIM_SEEDS to change)\n",
         apmbench::benchutil::SimSeconds(), apmbench::benchutil::SimSeeds());
  apmbench::benchutil::JsonResultWriter json(
      g_out_dir.empty() ? "BENCH_cluster_m.json"
                        : g_out_dir + "/cluster_m.json");
  g_json = &json;
  for (const FigureSet& figures : kFigures) {
    if (!only_workload.empty() && only_workload != figures.workload) {
      continue;
    }
    RunWorkload(figures, nodes);
  }
  if (!json.empty()) {
    apmbench::Status status = json.WriteFile();
    if (!status.ok()) {
      fprintf(stderr, "[warn] write %s: %s\n", json.path().c_str(),
              status.ToString().c_str());
    } else {
      printf("\nresults written to %s\n", json.path().c_str());
    }
  }
  return 0;
}
