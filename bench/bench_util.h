#ifndef APMBENCH_BENCH_BENCH_UTIL_H_
#define APMBENCH_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <string>
#include <vector>

#include "common/env.h"
#include "simstores/runner.h"

namespace apmbench::benchutil {

/// Environment knobs shared by the figure harnesses. Defaults are sized
/// so the full suite regenerates in minutes; the paper's full parameters
/// (600 s runs, 3 repetitions) are reproduced by raising them.
inline double SimSeconds() {
  const char* env = getenv("APMBENCH_SIM_SECONDS");
  double v = env != nullptr ? atof(env) : 8.0;
  return v > 1.0 ? v : 8.0;
}

inline int SimSeeds() {
  const char* env = getenv("APMBENCH_SIM_SEEDS");
  int v = env != nullptr ? atoi(env) : 2;
  return v >= 1 ? v : 2;
}

/// Record count per node for real-engine experiments (Figure 17); the
/// paper loads 10M per node, which the harness extrapolates from this
/// measured sample.
inline int64_t ScaleRecords() {
  const char* env = getenv("APMBENCH_SCALE");
  int64_t v = env != nullptr ? atoll(env) : 20000;
  return v >= 1000 ? v : 20000;
}

inline simstores::SimRunConfig DefaultSimConfig() {
  simstores::SimRunConfig config;
  config.duration_seconds = SimSeconds();
  config.warmup_seconds = SimSeconds() * 0.2;
  return config;
}

/// Formats one row of an aligned table.
inline void PrintRow(const std::string& label,
                     const std::vector<std::string>& cells) {
  printf("%-12s", label.c_str());
  for (const auto& cell : cells) {
    printf(" %14s", cell.c_str());
  }
  printf("\n");
}

inline std::string FormatOps(double v) {
  char buf[32];
  snprintf(buf, sizeof(buf), "%.0f", v);
  return buf;
}

inline std::string FormatMs(double v) {
  char buf[32];
  if (v <= 0) return "-";
  snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

/// Machine-readable results emitter shared by the harnesses: accumulates
/// flat measurement rows and writes them as a JSON array, one object per
/// row. All harnesses emit through this instead of inventing per-binary
/// stdout formats, so downstream tooling parses one shape:
///
///   JsonResultWriter results("BENCH_engines.json");
///   results.AddRow().Str("engine", "lsm").Int("threads", 16)
///          .Num("ops_per_sec", 51234.0);
///   results.WriteFile();
class JsonResultWriter {
 public:
  explicit JsonResultWriter(std::string path) : path_(std::move(path)) {}

  class Row {
   public:
    Row& Str(const std::string& key, const std::string& value) {
      Add(key, Quote(value));
      return *this;
    }
    Row& Int(const std::string& key, int64_t value) {
      Add(key, std::to_string(value));
      return *this;
    }
    Row& Num(const std::string& key, double value) {
      char buf[64];
      snprintf(buf, sizeof(buf), "%.6g", value);
      Add(key, buf);
      return *this;
    }

   private:
    friend class JsonResultWriter;

    static std::string Quote(const std::string& raw) {
      std::string out = "\"";
      for (char c : raw) {
        if (c == '"' || c == '\\') out.push_back('\\');
        if (static_cast<unsigned char>(c) < 0x20) continue;  // keep it flat
        out.push_back(c);
      }
      out.push_back('"');
      return out;
    }

    void Add(const std::string& key, const std::string& rendered) {
      if (!body_.empty()) body_ += ", ";
      body_ += Quote(key) + ": " + rendered;
    }

    std::string body_;
  };

  /// The returned reference stays valid until WriteFile (rows live in a
  /// deque).
  Row& AddRow() {
    rows_.emplace_back();
    return rows_.back();
  }

  Status WriteFile() const {
    std::string out = "[\n";
    for (size_t i = 0; i < rows_.size(); i++) {
      out += "  {" + rows_[i].body_ + "}";
      if (i + 1 < rows_.size()) out += ",";
      out += "\n";
    }
    out += "]\n";
    return Env::Default()->WriteStringToFile(path_, Slice(out));
  }

  const std::string& path() const { return path_; }
  bool empty() const { return rows_.empty(); }

 private:
  std::string path_;
  std::deque<Row> rows_;
};

}  // namespace apmbench::benchutil

#endif  // APMBENCH_BENCH_BENCH_UTIL_H_
