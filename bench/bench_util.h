#ifndef APMBENCH_BENCH_BENCH_UTIL_H_
#define APMBENCH_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "simstores/runner.h"

namespace apmbench::benchutil {

/// Environment knobs shared by the figure harnesses. Defaults are sized
/// so the full suite regenerates in minutes; the paper's full parameters
/// (600 s runs, 3 repetitions) are reproduced by raising them.
inline double SimSeconds() {
  const char* env = getenv("APMBENCH_SIM_SECONDS");
  double v = env != nullptr ? atof(env) : 8.0;
  return v > 1.0 ? v : 8.0;
}

inline int SimSeeds() {
  const char* env = getenv("APMBENCH_SIM_SEEDS");
  int v = env != nullptr ? atoi(env) : 2;
  return v >= 1 ? v : 2;
}

/// Record count per node for real-engine experiments (Figure 17); the
/// paper loads 10M per node, which the harness extrapolates from this
/// measured sample.
inline int64_t ScaleRecords() {
  const char* env = getenv("APMBENCH_SCALE");
  int64_t v = env != nullptr ? atoll(env) : 20000;
  return v >= 1000 ? v : 20000;
}

inline simstores::SimRunConfig DefaultSimConfig() {
  simstores::SimRunConfig config;
  config.duration_seconds = SimSeconds();
  config.warmup_seconds = SimSeconds() * 0.2;
  return config;
}

/// Formats one row of an aligned table.
inline void PrintRow(const std::string& label,
                     const std::vector<std::string>& cells) {
  printf("%-12s", label.c_str());
  for (const auto& cell : cells) {
    printf(" %14s", cell.c_str());
  }
  printf("\n");
}

inline std::string FormatOps(double v) {
  char buf[32];
  snprintf(buf, sizeof(buf), "%.0f", v);
  return buf;
}

inline std::string FormatMs(double v) {
  char buf[32];
  if (v <= 0) return "-";
  snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace apmbench::benchutil

#endif  // APMBENCH_BENCH_BENCH_UTIL_H_
