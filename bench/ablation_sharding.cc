// Ablation: the client-side sharding strategies the paper identifies as
// decisive — Cassandra's random vs balanced tokens, the Jedis ring that
// capped Redis, Voldemort's partition ring, and hash-modulo (MySQL) — and
// the MySQL scan LIMIT fix, measured on the real B+tree store.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "cluster/routing.h"
#include "common/clock.h"
#include "common/env.h"
#include "stores/factory.h"
#include "ycsb/client.h"
#include "ycsb/workload.h"

namespace {

using namespace apmbench;

void PrintShareStats(const std::string& label,
                     const std::vector<double>& shares) {
  auto [min_it, max_it] = std::minmax_element(shares.begin(), shares.end());
  double mean = std::accumulate(shares.begin(), shares.end(), 0.0) /
                static_cast<double>(shares.size());
  double var = 0;
  for (double share : shares) var += (share - mean) * (share - mean);
  double stddev = std::sqrt(var / static_cast<double>(shares.size()));
  printf("%-28s max/min=%5.2f  stddev/mean=%5.1f%%  (max share %.1f%% of "
         "keys vs ideal %.1f%%)\n",
         label.c_str(), *max_it / *min_it, 100.0 * stddev / mean,
         100.0 * *max_it, 100.0 * mean);
}

void ShardingBalance() {
  const int nodes = 12;
  printf("=== Key-ownership balance at %d nodes ===\n", nodes);
  cluster::TokenRing balanced(
      nodes, cluster::TokenRing::TokenAssignment::kBalanced, 1);
  PrintShareStats("cassandra balanced tokens", balanced.OwnershipShares());
  for (uint64_t seed = 1; seed <= 3; seed++) {
    cluster::TokenRing random(
        nodes, cluster::TokenRing::TokenAssignment::kRandom, seed);
    PrintShareStats("cassandra random tokens s" + std::to_string(seed),
                    random.OwnershipShares());
  }
  cluster::JedisShardRing jedis(nodes);
  PrintShareStats("redis jedis ring (160 vn)", jedis.OwnershipShares());
  cluster::PartitionRing voldemort(nodes, 2, 11);
  PrintShareStats("voldemort partition ring", voldemort.OwnershipShares());
  printf("(The paper balanced Cassandra's tokens manually, saw the Jedis "
         "imbalance drive a Redis node out of memory, and measured "
         "near-perfect MySQL hash sharding.)\n");
}

void MySqlScanLimit() {
  printf("\n=== MySQL scan ablation: faithful 'key >= start' vs LIMIT, on "
         "the real B+tree store ===\n");
  const int64_t records = benchutil::ScaleRecords();
  for (bool limit : {false, true}) {
    std::string dir = "/tmp/apmbench-ablation-mysqlscan";
    Env::Default()->RemoveDirRecursively(dir);
    Env::Default()->CreateDirIfMissing(dir);
    stores::StoreOptions options;
    options.base_dir = dir;
    options.num_nodes = 2;
    options.mysql_limit_scans = limit;
    std::unique_ptr<ycsb::DB> db;
    if (!stores::CreateStore("mysql", options, &db).ok()) return;

    Properties props;
    props.Set("recordcount", std::to_string(records));
    ycsb::CoreWorkload workload(props);
    if (!ycsb::LoadDatabase(db.get(), &workload, 4).ok()) return;

    // Time scans from random start keys.
    Random rng(3);
    uint64_t start_us = NowMicros();
    const int scans = limit ? 2000 : 50;
    std::vector<ycsb::Record> out;
    for (int i = 0; i < scans; i++) {
      std::string key =
          workload.BuildKeyName(rng.Uniform(static_cast<uint64_t>(records)));
      db->Scan(workload.table(), Slice(key), 50, &out);
    }
    double us_per_scan =
        static_cast<double>(NowMicros() - start_us) / scans;
    printf("%-34s %10.1f us/scan\n",
           limit ? "SELECT ... >= key LIMIT 50" : "SELECT ... >= key (paper)",
           us_per_scan);
    db.reset();
    Env::Default()->RemoveDirRecursively(dir);
  }
  printf("(The paper's YCSB RDBMS client issued the unlimited form; this "
         "is the documented cause of MySQL's scan collapse.)\n");
}

}  // namespace

int main() {
  ShardingBalance();
  MySqlScanLimit();
  return 0;
}
