// Ablation: size-tiered (Cassandra STCS) vs leveled (LevelDB/HBase-style)
// compaction in the real LSM engine — the design choice behind the
// Cassandra-like and HBase-like stores. Reports write amplification,
// table counts, and read cost under an overwrite-heavy load.
//
// A second experiment sweeps the parallel compaction pipeline:
// compaction-pool size x concurrent writer count, reporting sustained
// put throughput, admission-control stalls (slowdown/stop micros), the
// highest L0 run count observed while the load ran, and write
// amplification. This is the scaling evidence for the flush/compaction
// thread split: more compaction threads should hold L0 lower and stall
// writers less without costing ingest throughput.
//
//   ablation_compaction [out=BENCH_compaction.json] [build=<label>]
//
// With out= set, the sweep also emits one JSON row per point through the
// shared JsonResultWriter shape.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "common/env.h"
#include "common/properties.h"
#include "common/random.h"
#include "lsm/db.h"

namespace {

using namespace apmbench;

// ---------------------------------------------------------------------------
// Experiment 1: compaction style.

struct AblationResult {
  uint64_t user_bytes = 0;
  uint64_t compaction_bytes_written = 0;
  uint64_t num_compactions = 0;
  int total_files = 0;
  double read_us = 0;
  double write_us = 0;
};

AblationResult RunStyle(lsm::CompactionStyle style, int64_t records) {
  AblationResult result;
  std::string dir = "/tmp/apmbench-ablation-lsm";
  Env::Default()->RemoveDirRecursively(dir);

  lsm::Options options;
  options.dir = dir;
  options.memtable_bytes = 256 * 1024;
  options.compaction_style = style;
  options.level0_compaction_trigger = 4;
  options.level1_max_bytes = 1024 * 1024;
  std::unique_ptr<lsm::DB> db;
  Status status = lsm::DB::Open(options, &db);
  if (!status.ok()) {
    fprintf(stderr, "[warn] open: %s\n", status.ToString().c_str());
    return result;
  }

  Random rng(11);
  const std::string value(100, 'v');
  const uint64_t keyspace = static_cast<uint64_t>(records) / 2;  // overwrites
  uint64_t write_start = NowMicros();
  for (int64_t i = 0; i < records; i++) {
    char key[32];
    snprintf(key, sizeof(key), "user%021llu",
             static_cast<unsigned long long>(rng.Uniform(keyspace)));
    db->Put(key, value);
    result.user_bytes += 25 + value.size();
  }
  db->Flush();
  result.write_us = static_cast<double>(NowMicros() - write_start) /
                    static_cast<double>(records);

  uint64_t read_start = NowMicros();
  const int reads = 20000;
  std::string out;
  for (int i = 0; i < reads; i++) {
    char key[32];
    snprintf(key, sizeof(key), "user%021llu",
             static_cast<unsigned long long>(rng.Uniform(keyspace)));
    db->Get(lsm::ReadOptions(), key, &out);
  }
  result.read_us = static_cast<double>(NowMicros() - read_start) / reads;

  lsm::DB::Stats stats = db->GetStats();
  result.compaction_bytes_written = stats.compaction_bytes_written;
  result.num_compactions = stats.num_compactions;
  for (int files : stats.files_per_level) result.total_files += files;

  db.reset();
  Env::Default()->RemoveDirRecursively(dir);
  return result;
}

void RunStyleAblation(int64_t records) {
  AblationResult size_tiered =
      RunStyle(lsm::CompactionStyle::kSizeTiered, records);
  AblationResult leveled = RunStyle(lsm::CompactionStyle::kLeveled, records);

  printf("\n%-22s %16s %16s\n", "", "size-tiered", "leveled");
  auto row = [](const char* label, double a, double b, const char* fmt) {
    printf("%-22s ", label);
    printf(fmt, a);
    printf(" ");
    printf(fmt, b);
    printf("\n");
  };
  row("write amplification",
      size_tiered.user_bytes
          ? static_cast<double>(size_tiered.compaction_bytes_written) /
                size_tiered.user_bytes
          : 0,
      leveled.user_bytes
          ? static_cast<double>(leveled.compaction_bytes_written) /
                leveled.user_bytes
          : 0,
      "%16.2f");
  row("compactions", size_tiered.num_compactions, leveled.num_compactions,
      "%16.0f");
  row("tables after load", size_tiered.total_files, leveled.total_files,
      "%16.0f");
  row("write us/op", size_tiered.write_us, leveled.write_us, "%16.2f");
  row("read us/op", size_tiered.read_us, leveled.read_us, "%16.2f");
  printf("\nExpected shape: leveled pays more write amplification to keep "
         "fewer overlapping tables (cheaper reads); size-tiered favors the "
         "write-dominated APM workload.\n");
}

// ---------------------------------------------------------------------------
// Experiment 2: compaction-pool size x write concurrency.

struct SweepResult {
  double ops_per_sec = 0;
  int max_l0 = 0;
  double write_amp = 0;
  uint64_t num_compactions = 0;
  uint64_t stall_slowdown_us = 0;
  uint64_t stall_slowdown_writes = 0;
  uint64_t stall_stop_us = 0;
  uint64_t stall_stop_writes = 0;
};

SweepResult RunSweepPoint(int compaction_threads, int writer_threads,
                          int64_t records) {
  SweepResult result;
  std::string dir = "/tmp/apmbench-ablation-lsm";
  Env::Default()->RemoveDirRecursively(dir);

  // Size-tiered with a small memtable: every table is an L0 sorted run,
  // so the admission-control triggers bound exactly what the sweep
  // watches. Tight slowdown/stop triggers make contention visible even
  // at benchmark scale.
  lsm::Options options;
  options.dir = dir;
  options.memtable_bytes = 128 * 1024;
  options.compaction_style = lsm::CompactionStyle::kSizeTiered;
  options.size_tiered_min_files = 4;
  options.compaction_threads = compaction_threads;
  options.level0_slowdown_trigger = 8;
  options.level0_stop_trigger = 16;
  std::unique_ptr<lsm::DB> db;
  Status status = lsm::DB::Open(options, &db);
  if (!status.ok()) {
    fprintf(stderr, "[warn] open: %s\n", status.ToString().c_str());
    return result;
  }

  // One sampler watches the L0 run count while the writers hammer the
  // engine; its maximum is the experiment's "was L0 actually bounded?"
  // evidence.
  std::atomic<bool> done{false};
  std::atomic<int> max_l0{0};
  std::thread sampler([&] {
    while (!done.load()) {
      lsm::DB::Stats stats = db->GetStats();
      if (!stats.files_per_level.empty()) {
        int l0 = stats.files_per_level[0];
        int prev = max_l0.load();
        while (l0 > prev && !max_l0.compare_exchange_weak(prev, l0)) {
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  const std::string value(100, 'v');
  const int64_t per_writer = records / writer_threads;
  const uint64_t keyspace = static_cast<uint64_t>(records) / 2;
  uint64_t user_bytes = 0;
  uint64_t start = NowMicros();
  std::vector<std::thread> writers;
  for (int t = 0; t < writer_threads; t++) {
    writers.emplace_back([&, t] {
      Random rng(100 + t);
      for (int64_t i = 0; i < per_writer; i++) {
        char key[32];
        snprintf(key, sizeof(key), "user%021llu",
                 static_cast<unsigned long long>(rng.Uniform(keyspace)));
        db->Put(key, value);
      }
    });
  }
  for (auto& t : writers) t.join();
  uint64_t elapsed = NowMicros() - start;
  done.store(true);
  sampler.join();
  user_bytes = static_cast<uint64_t>(per_writer) * writer_threads *
               (25 + value.size());

  lsm::DB::Stats stats = db->GetStats();
  result.ops_per_sec = elapsed > 0
                           ? static_cast<double>(per_writer) * writer_threads *
                                 1e6 / static_cast<double>(elapsed)
                           : 0;
  result.max_l0 = max_l0.load();
  result.write_amp =
      user_bytes ? static_cast<double>(stats.compaction_bytes_written) /
                       static_cast<double>(user_bytes)
                 : 0;
  result.num_compactions = stats.num_compactions;
  result.stall_slowdown_us = stats.stall_slowdown_micros;
  result.stall_slowdown_writes = stats.stall_slowdown_writes;
  result.stall_stop_us = stats.stall_stop_micros;
  result.stall_stop_writes = stats.stall_stop_writes;

  db.reset();
  Env::Default()->RemoveDirRecursively(dir);
  return result;
}

void RunParallelismSweep(int64_t records, benchutil::JsonResultWriter* out,
                         const std::string& build_label) {
  printf("\nParallel compaction sweep: %lld puts per point, "
         "slowdown/stop triggers 8/16 L0 runs\n",
         static_cast<long long>(records));
  printf("%-8s %-8s %12s %7s %10s %12s %12s %12s\n", "cthreads", "writers",
         "puts/sec", "max_l0", "write_amp", "compactions", "slowdown_ms",
         "stop_ms");
  for (int compaction_threads : {1, 2, 4}) {
    for (int writer_threads : {1, 4}) {
      SweepResult r =
          RunSweepPoint(compaction_threads, writer_threads, records);
      printf("%-8d %-8d %12.0f %7d %10.2f %12llu %12.1f %12.1f\n",
             compaction_threads, writer_threads, r.ops_per_sec, r.max_l0,
             r.write_amp,
             static_cast<unsigned long long>(r.num_compactions),
             static_cast<double>(r.stall_slowdown_us) / 1000.0,
             static_cast<double>(r.stall_stop_us) / 1000.0);
      if (out != nullptr) {
        out->AddRow()
            .Str("bench", "compaction_sweep")
            .Str("style", "size_tiered")
            .Int("compaction_threads", compaction_threads)
            .Int("writer_threads", writer_threads)
            .Num("ops_per_sec", r.ops_per_sec)
            .Int("max_l0", r.max_l0)
            .Num("write_amp", r.write_amp)
            .Int("compactions", static_cast<int64_t>(r.num_compactions))
            .Int("stall_slowdown_us",
                 static_cast<int64_t>(r.stall_slowdown_us))
            .Int("stall_slowdown_writes",
                 static_cast<int64_t>(r.stall_slowdown_writes))
            .Int("stall_stop_us", static_cast<int64_t>(r.stall_stop_us))
            .Int("stall_stop_writes",
                 static_cast<int64_t>(r.stall_stop_writes))
            .Str("build", build_label);
      }
    }
  }
  printf("Expected shape: larger pools hold max_l0 near the slowdown "
         "trigger and shrink stall time; puts/sec should not regress "
         "against cthreads=1.\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  std::string build_label = "dev";
  for (int i = 1; i < argc; i++) {
    apmbench::Properties props;
    if (!props.ParseArg(argv[i]).ok()) {
      fprintf(stderr, "usage: %s [out=<path>] [build=<label>]\n", argv[0]);
      return 2;
    }
    if (props.Contains("out")) out_path = props.GetString("out");
    if (props.Contains("build")) build_label = props.GetString("build");
  }

  const int64_t records = benchutil::ScaleRecords() * 8;
  printf("APMBench compaction ablation: %lld overwrite-heavy writes per "
         "style (set APMBENCH_SCALE to change)\n",
         static_cast<long long>(records));

  RunStyleAblation(records);

  std::unique_ptr<benchutil::JsonResultWriter> results;
  if (!out_path.empty()) {
    results = std::make_unique<benchutil::JsonResultWriter>(out_path);
  }
  RunParallelismSweep(benchutil::ScaleRecords() * 4, results.get(),
                      build_label);

  if (results != nullptr) {
    apmbench::Status status = results->WriteFile();
    if (!status.ok()) {
      fprintf(stderr, "write %s: %s\n", results->path().c_str(),
              status.ToString().c_str());
      return 1;
    }
    printf("results written to %s\n", results->path().c_str());
  }
  return 0;
}
