// Ablation: size-tiered (Cassandra STCS) vs leveled (LevelDB/HBase-style)
// compaction in the real LSM engine — the design choice behind the
// Cassandra-like and HBase-like stores. Reports write amplification,
// table counts, and read cost under an overwrite-heavy load.

#include <cstdio>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "common/env.h"
#include "common/random.h"
#include "lsm/db.h"

namespace {

using namespace apmbench;

struct AblationResult {
  uint64_t user_bytes = 0;
  uint64_t compaction_bytes_written = 0;
  uint64_t num_compactions = 0;
  int total_files = 0;
  double read_us = 0;
  double write_us = 0;
};

AblationResult RunStyle(lsm::CompactionStyle style, int64_t records) {
  AblationResult result;
  std::string dir = "/tmp/apmbench-ablation-lsm";
  Env::Default()->RemoveDirRecursively(dir);

  lsm::Options options;
  options.dir = dir;
  options.memtable_bytes = 256 * 1024;
  options.compaction_style = style;
  options.level0_compaction_trigger = 4;
  options.level1_max_bytes = 1024 * 1024;
  std::unique_ptr<lsm::DB> db;
  Status status = lsm::DB::Open(options, &db);
  if (!status.ok()) {
    fprintf(stderr, "[warn] open: %s\n", status.ToString().c_str());
    return result;
  }

  Random rng(11);
  const std::string value(100, 'v');
  const uint64_t keyspace = static_cast<uint64_t>(records) / 2;  // overwrites
  uint64_t write_start = NowMicros();
  for (int64_t i = 0; i < records; i++) {
    char key[32];
    snprintf(key, sizeof(key), "user%021llu",
             static_cast<unsigned long long>(rng.Uniform(keyspace)));
    db->Put(key, value);
    result.user_bytes += 25 + value.size();
  }
  db->Flush();
  result.write_us = static_cast<double>(NowMicros() - write_start) /
                    static_cast<double>(records);

  uint64_t read_start = NowMicros();
  const int reads = 20000;
  std::string out;
  for (int i = 0; i < reads; i++) {
    char key[32];
    snprintf(key, sizeof(key), "user%021llu",
             static_cast<unsigned long long>(rng.Uniform(keyspace)));
    db->Get(lsm::ReadOptions(), key, &out);
  }
  result.read_us = static_cast<double>(NowMicros() - read_start) / reads;

  lsm::DB::Stats stats = db->GetStats();
  result.compaction_bytes_written = stats.compaction_bytes_written;
  result.num_compactions = stats.num_compactions;
  for (int files : stats.files_per_level) result.total_files += files;

  db.reset();
  Env::Default()->RemoveDirRecursively(dir);
  return result;
}

}  // namespace

int main() {
  const int64_t records = benchutil::ScaleRecords() * 8;
  printf("APMBench compaction ablation: %lld overwrite-heavy writes per "
         "style (set APMBENCH_SCALE to change)\n",
         static_cast<long long>(records));

  AblationResult size_tiered =
      RunStyle(lsm::CompactionStyle::kSizeTiered, records);
  AblationResult leveled = RunStyle(lsm::CompactionStyle::kLeveled, records);

  printf("\n%-22s %16s %16s\n", "", "size-tiered", "leveled");
  auto row = [](const char* label, double a, double b, const char* fmt) {
    printf("%-22s ", label);
    printf(fmt, a);
    printf(" ");
    printf(fmt, b);
    printf("\n");
  };
  row("write amplification",
      size_tiered.user_bytes
          ? static_cast<double>(size_tiered.compaction_bytes_written) /
                size_tiered.user_bytes
          : 0,
      leveled.user_bytes
          ? static_cast<double>(leveled.compaction_bytes_written) /
                leveled.user_bytes
          : 0,
      "%16.2f");
  row("compactions", size_tiered.num_compactions, leveled.num_compactions,
      "%16.0f");
  row("tables after load", size_tiered.total_files, leveled.total_files,
      "%16.0f");
  row("write us/op", size_tiered.write_us, leveled.write_us, "%16.2f");
  row("read us/op", size_tiered.read_us, leveled.read_us, "%16.2f");
  printf("\nExpected shape: leveled pays more write amplification to keep "
         "fewer overlapping tables (cheaper reads); size-tiered favors the "
         "write-dominated APM workload.\n");
  return 0;
}
