// Multi-threaded microbenchmarks of the four real storage engines: a
// thread-count sweep (1/4/16/128 client threads by default) over
// put/get/scan per engine, reported as ops/sec and emitted as
// machine-readable JSON. This is both the calibration evidence for
// simstores/calibration.h (per-operation costs order the same way the
// paper's single-node throughputs do) and the scaling evidence for the
// concurrent hot paths: group-committed writes and lock-free/shared-lock
// reads should scale with threads on a multi-core host.
//
// Usage: micro_engines [engine=lsm|btree|hashkv|volt] [op=put|get|scan]
//                      [mode=cache_scan|format|memtable_shards]
//                      [out=BENCH_engines.json] [build=<label>]
//
// mode=cache_scan runs the read-path sweep instead of the engine sweep:
// threads x {cache-hit get, cold get, cross-shard scan}, with the
// measured block-cache hit rate in each lsm row (the scaling evidence
// for the sharded block cache and the store-layer fan-out executor).
//
// mode=format compares the two SSTable formats head to head: v1 (plain
// blocks) vs v2 (arena memtable writes, prefix-compressed restart-point
// blocks, prefix bloom filters) x put/get/scan x the thread sweep. Every
// row carries heap bytes allocated per operation (global operator-new
// accounting — the arena claim), the live index-block bytes and on-disk
// footprint (the prefix-compression claim), and for scans the number of
// tables skipped via prefix blooms (the bounded-scan claim).
//
// Environment:
//   APMBENCH_BENCH_SECONDS  seconds measured per point (default 0.5)
//   APMBENCH_BENCH_PRELOAD  records preloaded per engine (default 20000)
//   APMBENCH_BENCH_THREADS  comma list of thread counts (default 1,4,16,128)

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "btree/btree.h"
#include "common/env.h"
#include "common/properties.h"
#include "common/random.h"
#include "hashkv/hashkv.h"
#include "lsm/db.h"
#include "stores/redis_store.h"
#include "stores/store_options.h"
#include "volt/volt.h"

// --- Global allocation accounting (mode=format) ---------------------------
//
// Replacing the global allocation functions lets the format sweep report
// heap bytes allocated per operation across the whole process: the arena
// memtable's claim is precisely that the v2 write path performs fewer,
// larger allocations than one-new-per-Put. Counting is two relaxed
// fetch_adds, cheap enough to leave on for every mode.

namespace {
std::atomic<uint64_t> g_heap_bytes{0};
std::atomic<uint64_t> g_heap_allocs{0};

void* CountedAlloc(std::size_t size) {
  g_heap_bytes.fetch_add(size, std::memory_order_relaxed);
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}
}  // namespace

void* operator new(std::size_t size) {
  if (void* p = CountedAlloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  if (void* p = CountedAlloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size);
}
// Frees pair with CountedAlloc's malloc; GCC cannot see that and warns
// about free() on operator-new memory at inlined call sites.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace {

using namespace apmbench;

std::string MakeKey(uint64_t i) {
  char buf[32];
  snprintf(buf, sizeof(buf), "user%021llu",
           static_cast<unsigned long long>(i));
  return buf;
}

std::string MakeValue() { return std::string(50, 'v'); }

double BenchSeconds() {
  const char* env = getenv("APMBENCH_BENCH_SECONDS");
  double v = env != nullptr ? atof(env) : 0.5;
  return v > 0.05 ? v : 0.5;
}

uint64_t BenchPreload() {
  const char* env = getenv("APMBENCH_BENCH_PRELOAD");
  long long v = env != nullptr ? atoll(env) : 20000;
  return v >= 100 ? static_cast<uint64_t>(v) : 20000;
}

std::vector<int> BenchThreads() {
  const char* env = getenv("APMBENCH_BENCH_THREADS");
  std::string list = env != nullptr ? env : "1,4,16,128";
  std::vector<int> out;
  for (size_t pos = 0; pos < list.size();) {
    size_t comma = list.find(',', pos);
    if (comma == std::string::npos) comma = list.size();
    int v = atoi(list.substr(pos, comma - pos).c_str());
    if (v >= 1) out.push_back(v);
    pos = comma + 1;
  }
  if (out.empty()) out = {1, 4, 16, 128};
  return out;
}

/// Runs `make_thread_op(t)`'s result in a loop on `threads` threads for
/// roughly `seconds`, all threads released together; returns aggregate
/// ops/sec and the total op count.
struct MeasureResult {
  double ops_per_sec = 0;
  uint64_t total_ops = 0;
  double elapsed = 0;
};

template <typename MakeThreadOp>
MeasureResult Measure(int threads, double seconds,
                      MakeThreadOp&& make_thread_op) {
  std::atomic<bool> start{false};
  std::atomic<bool> stop{false};
  std::vector<uint64_t> counts(static_cast<size_t>(threads), 0);
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; t++) {
    workers.emplace_back([&, t]() {
      auto op = make_thread_op(t);
      start.wait(false, std::memory_order_acquire);
      uint64_t n = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        op();
        n++;
      }
      counts[static_cast<size_t>(t)] = n;
    });
  }
  const auto t0 = std::chrono::steady_clock::now();
  start.store(true, std::memory_order_release);
  start.notify_all();
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true, std::memory_order_relaxed);
  const auto t1 = std::chrono::steady_clock::now();
  for (auto& worker : workers) worker.join();

  MeasureResult result;
  for (uint64_t c : counts) result.total_ops += c;
  result.elapsed = std::chrono::duration<double>(t1 - t0).count();
  if (result.elapsed > 0) {
    result.ops_per_sec = static_cast<double>(result.total_ops) /
                         result.elapsed;
  }
  return result;
}

struct SweepConfig {
  std::vector<int> thread_counts;
  double seconds = 0.5;
  uint64_t preload = 20000;
  std::string only_op;  // empty = all
  std::string build_label;
  benchutil::JsonResultWriter* out = nullptr;
};

void Report(const SweepConfig& config, const std::string& engine,
            const std::string& op, int threads, const MeasureResult& r) {
  printf("%-8s %-5s %4d threads  %12.0f ops/s  (%llu ops in %.2fs)\n",
         engine.c_str(), op.c_str(), threads, r.ops_per_sec,
         static_cast<unsigned long long>(r.total_ops), r.elapsed);
  fflush(stdout);
  auto& row = config.out->AddRow()
                  .Str("engine", engine)
                  .Str("op", op)
                  .Int("threads", threads)
                  .Num("ops_per_sec", r.ops_per_sec)
                  .Int("total_ops", static_cast<int64_t>(r.total_ops))
                  .Num("seconds", r.elapsed);
  if (!config.build_label.empty()) row.Str("build", config.build_label);
}

bool WantOp(const SweepConfig& config, const char* op) {
  return config.only_op.empty() || config.only_op == op;
}

/// One sweep point set for an engine: per thread count, a fresh store is
/// opened and preloaded, then get and scan run against the stable preload
/// set and put runs last (it grows the store).
struct EngineHooks {
  std::function<void(uint64_t preload)> open;  // open fresh + preload
  std::function<void()> close;
  // put(i) writes key i (callers hand each thread a disjoint range).
  std::function<void(uint64_t i)> put;
  std::function<void(uint64_t i)> get;   // point-read of preloaded key i
  std::function<void(uint64_t i)> scan;  // 50-record scan from key i
};

void SweepEngine(const SweepConfig& config, const std::string& engine,
                 const EngineHooks& hooks) {
  for (int threads : config.thread_counts) {
    hooks.open(config.preload);
    const uint64_t preload = config.preload;
    if (WantOp(config, "get")) {
      auto r = Measure(threads, config.seconds, [&](int t) {
        auto rng = std::make_shared<Random>(1000 + t);
        return [&, rng]() { hooks.get(rng->Uniform(preload)); };
      });
      Report(config, engine, "get", threads, r);
    }
    if (WantOp(config, "scan")) {
      auto r = Measure(threads, config.seconds, [&](int t) {
        auto rng = std::make_shared<Random>(2000 + t);
        return [&, rng]() { hooks.scan(rng->Uniform(preload)); };
      });
      Report(config, engine, "scan", threads, r);
    }
    if (WantOp(config, "put")) {
      // Disjoint key ranges per thread, starting above the preload set.
      auto r = Measure(threads, config.seconds, [&](int t) {
        auto next = std::make_shared<uint64_t>(
            preload + static_cast<uint64_t>(t) * (uint64_t{1} << 32));
        return [&, next]() { hooks.put((*next)++); };
      });
      Report(config, engine, "put", threads, r);
    }
    hooks.close();
  }
}

// --- LSM engine (cassandra/hbase substrate) ---

void SweepLsm(const SweepConfig& config) {
  const std::string dir = "/tmp/apmbench-micro-lsm";
  std::unique_ptr<lsm::DB> db;
  EngineHooks hooks;
  hooks.open = [&](uint64_t preload) {
    Env::Default()->RemoveDirRecursively(dir);
    lsm::Options options;
    options.dir = dir;
    options.memtable_bytes = 4 * 1024 * 1024;
    lsm::DB::Open(options, &db);
    for (uint64_t i = 0; i < preload; i++) db->Put(MakeKey(i), MakeValue());
    db->Flush();
  };
  hooks.close = [&]() {
    db.reset();
    Env::Default()->RemoveDirRecursively(dir);
  };
  hooks.put = [&](uint64_t i) { db->Put(MakeKey(i), MakeValue()); };
  hooks.get = [&](uint64_t i) {
    std::string value;
    db->Get(lsm::ReadOptions(), MakeKey(i), &value);
  };
  hooks.scan = [&](uint64_t i) {
    std::vector<std::pair<std::string, std::string>> out;
    db->Scan(lsm::ReadOptions(), MakeKey(i), 50, &out);
  };
  SweepEngine(config, "lsm", hooks);
}

// --- B+tree engine (mysql/voldemort substrate) ---

void SweepBtree(const SweepConfig& config) {
  const std::string dir = "/tmp/apmbench-micro-btree";
  std::unique_ptr<btree::BTree> tree;
  EngineHooks hooks;
  hooks.open = [&](uint64_t preload) {
    Env::Default()->RemoveDirRecursively(dir);
    Env::Default()->CreateDirIfMissing(dir);
    btree::Options options;
    options.path = dir + "/tree.db";
    btree::BTree::Open(options, &tree);
    for (uint64_t i = 0; i < preload; i++) tree->Put(MakeKey(i), MakeValue());
  };
  hooks.close = [&]() {
    tree.reset();
    Env::Default()->RemoveDirRecursively(dir);
  };
  hooks.put = [&](uint64_t i) { tree->Put(MakeKey(i), MakeValue()); };
  hooks.get = [&](uint64_t i) {
    std::string value;
    tree->Get(MakeKey(i), &value);
  };
  hooks.scan = [&](uint64_t i) {
    std::vector<std::pair<std::string, std::string>> out;
    tree->Scan(MakeKey(i), 50, &out);
  };
  SweepEngine(config, "btree", hooks);
}

// --- In-memory dict engine (redis substrate) ---

void SweepHashKv(const SweepConfig& config) {
  std::unique_ptr<hashkv::HashKV> kv;
  EngineHooks hooks;
  hooks.open = [&](uint64_t preload) {
    hashkv::Options options;
    hashkv::HashKV::Open(options, &kv);
    for (uint64_t i = 0; i < preload; i++) kv->Set(MakeKey(i), MakeValue());
  };
  hooks.close = [&]() { kv.reset(); };
  hooks.put = [&](uint64_t i) { kv->Set(MakeKey(i), MakeValue()); };
  hooks.get = [&](uint64_t i) {
    std::string value;
    kv->Get(MakeKey(i), &value);
  };
  hooks.scan = [&](uint64_t i) {
    std::vector<std::pair<std::string, std::string>> out;
    kv->Scan(MakeKey(i), 50, &out);
  };
  SweepEngine(config, "hashkv", hooks);
}

// --- Partitioned serial executor (voltdb substrate) ---

void SweepVolt(const SweepConfig& config) {
  std::unique_ptr<volt::VoltEngine> engine;
  EngineHooks hooks;
  hooks.open = [&](uint64_t preload) {
    volt::Options options;
    options.sites_per_host = 6;
    engine = std::make_unique<volt::VoltEngine>(options);
    for (uint64_t i = 0; i < preload; i++) {
      engine->Put(MakeKey(i), MakeValue());
    }
  };
  hooks.close = [&]() { engine.reset(); };
  hooks.put = [&](uint64_t i) { engine->Put(MakeKey(i), MakeValue()); };
  hooks.get = [&](uint64_t i) {
    std::string value;
    engine->Get(MakeKey(i), &value);
  };
  hooks.scan = [&](uint64_t i) {
    std::vector<std::pair<std::string, std::string>> out;
    engine->Scan(MakeKey(i), 50, &out);
  };
  SweepEngine(config, "volt", hooks);
}

// --- Read-path sweep (mode=cache_scan) ---
//
// Three probes per thread count, isolating the layers the read path
// crosses: `cache_get_hit` serves every data block from the block cache
// (the sweep warms each block once before measuring), `cache_get_cold`
// disables the cache so every read hits the table file, and
// `xshard_scan` drives 50-record ScanKeyed calls through the 4-node
// Redis-architecture store, crossing every shard of the ring. The lsm
// rows carry the block-cache hit rate measured over the timed window.

void ReportCache(const SweepConfig& config, const std::string& engine,
                 const std::string& op, int threads, const MeasureResult& r,
                 double hit_rate) {
  printf("%-8s %-14s %4d threads  %12.0f ops/s  (%llu ops in %.2fs",
         engine.c_str(), op.c_str(), threads, r.ops_per_sec,
         static_cast<unsigned long long>(r.total_ops), r.elapsed);
  if (hit_rate >= 0) printf(", hit rate %.3f", hit_rate);
  printf(")\n");
  fflush(stdout);
  auto& row = config.out->AddRow()
                  .Str("engine", engine)
                  .Str("op", op)
                  .Int("threads", threads)
                  .Num("ops_per_sec", r.ops_per_sec)
                  .Int("total_ops", static_cast<int64_t>(r.total_ops))
                  .Num("seconds", r.elapsed);
  if (hit_rate >= 0) row.Num("cache_hit_rate", hit_rate);
  if (!config.build_label.empty()) row.Str("build", config.build_label);
}

void SweepCacheScan(const SweepConfig& config) {
  const std::string dir = "/tmp/apmbench-micro-cache";
  const uint64_t preload = config.preload;

  auto open_lsm = [&](size_t cache_bytes) {
    Env::Default()->RemoveDirRecursively(dir);
    lsm::Options options;
    options.dir = dir;
    options.memtable_bytes = 4 * 1024 * 1024;
    options.block_cache_bytes = cache_bytes;
    std::unique_ptr<lsm::DB> db;
    lsm::DB::Open(options, &db);
    for (uint64_t i = 0; i < preload; i++) db->Put(MakeKey(i), MakeValue());
    db->Flush();
    return db;
  };
  auto measure_get = [&](lsm::DB* db, int threads) {
    return Measure(threads, config.seconds, [&, db](int t) {
      auto rng = std::make_shared<Random>(3000 + t);
      return [&, db, rng]() {
        std::string value;
        db->Get(lsm::ReadOptions(), MakeKey(rng->Uniform(preload)), &value);
      };
    });
  };
  auto hit_rate = [](const lsm::DB::Stats& before,
                     const lsm::DB::Stats& after) {
    const uint64_t hits = after.cache_hits - before.cache_hits;
    const uint64_t total = hits + (after.cache_misses - before.cache_misses);
    return total > 0 ? static_cast<double>(hits) / total : 0.0;
  };

  for (int threads : config.thread_counts) {
    if (WantOp(config, "cache_get_hit")) {
      // Warm every data block once so the timed window is all cache hits.
      auto db = open_lsm(64 * 1024 * 1024);
      std::string value;
      for (uint64_t i = 0; i < preload; i++) {
        db->Get(lsm::ReadOptions(), MakeKey(i), &value);
      }
      lsm::DB::Stats before = db->GetStats();
      auto r = measure_get(db.get(), threads);
      lsm::DB::Stats after = db->GetStats();
      ReportCache(config, "lsm", "cache_get_hit", threads, r,
                  hit_rate(before, after));
    }
    if (WantOp(config, "cache_get_cold")) {
      auto db = open_lsm(0);
      lsm::DB::Stats before = db->GetStats();
      auto r = measure_get(db.get(), threads);
      lsm::DB::Stats after = db->GetStats();
      ReportCache(config, "lsm", "cache_get_cold", threads, r,
                  hit_rate(before, after));
    }
    if (WantOp(config, "xshard_scan")) {
      stores::StoreOptions store_options;
      store_options.num_nodes = 4;
      std::unique_ptr<stores::RedisStore> store;
      stores::RedisStore::Open(store_options, &store);
      const ycsb::Record record = {{"field0", MakeValue()}};
      for (uint64_t i = 0; i < preload; i++) {
        store->Insert("t", MakeKey(i), record);
      }
      auto r = Measure(threads, config.seconds, [&](int t) {
        auto rng = std::make_shared<Random>(4000 + t);
        return [&, rng]() {
          std::vector<ycsb::KeyedRecord> records;
          store->ScanKeyed("t", MakeKey(rng->Uniform(preload)), 50, &records);
        };
      });
      ReportCache(config, "redis", "xshard_scan", threads, r, -1.0);
    }
  }
  Env::Default()->RemoveDirRecursively(dir);
}

// --- Storage-format sweep (mode=format) -----------------------------------

void ReportFormat(const SweepConfig& config, uint32_t version,
                  const std::string& op, int threads, const MeasureResult& r,
                  double alloc_bytes_per_op, uint64_t index_bytes,
                  uint64_t disk_bytes, int64_t prefix_bloom_skips) {
  printf("lsm-v%u   %-5s %4d threads  %12.0f ops/s  (%7.0f alloc B/op, "
         "index %6.1f KiB",
         version, op.c_str(), threads, r.ops_per_sec, alloc_bytes_per_op,
         static_cast<double>(index_bytes) / 1024.0);
  if (prefix_bloom_skips >= 0) {
    printf(", %lld table skips", static_cast<long long>(prefix_bloom_skips));
  }
  printf(")\n");
  fflush(stdout);
  auto& row = config.out->AddRow()
                  .Str("engine", "lsm")
                  .Str("mode", "format")
                  .Int("format_version", version)
                  .Str("op", op)
                  .Int("threads", threads)
                  .Num("ops_per_sec", r.ops_per_sec)
                  .Int("total_ops", static_cast<int64_t>(r.total_ops))
                  .Num("seconds", r.elapsed)
                  .Num("alloc_bytes_per_op", alloc_bytes_per_op)
                  .Int("index_bytes", static_cast<int64_t>(index_bytes))
                  .Int("disk_bytes", static_cast<int64_t>(disk_bytes));
  if (prefix_bloom_skips >= 0) row.Int("prefix_bloom_skips", prefix_bloom_skips);
  if (!config.build_label.empty()) row.Str("build", config.build_label);
}

void SweepFormat(const SweepConfig& config) {
  const std::string dir = "/tmp/apmbench-micro-format";
  const uint64_t kGroups = 32;
  constexpr size_t kPrefixLen = 9;  // "fmtNNNNN/" below
  const uint64_t preload = config.preload;
  const uint64_t per_group = preload / kGroups;

  // Keys are grouped under 9-byte prefixes and the preload flushes once
  // per group, so each SSTable covers one prefix: the layout a
  // metric-per-agent APM schema produces, and the one where a bounded
  // scan's prefix bloom can rule whole tables out.
  auto group_key = [](uint64_t group, uint64_t i) {
    char buf[40];
    snprintf(buf, sizeof(buf), "fmt%05llu/user%012llu",
             static_cast<unsigned long long>(group),
             static_cast<unsigned long long>(i));
    return std::string(buf);
  };

  for (uint32_t version : {uint32_t{1}, uint32_t{2}}) {
    for (int threads : config.thread_counts) {
      Env::Default()->RemoveDirRecursively(dir);
      lsm::Options options;
      options.dir = dir;
      options.memtable_bytes = 4 * 1024 * 1024;
      options.format_version = version;
      // Identical knobs for both versions; v1 tables simply cannot carry
      // a prefix filter, which is part of what the sweep shows.
      options.prefix_bloom_length = kPrefixLen;
      std::unique_ptr<lsm::DB> db;
      if (!lsm::DB::Open(options, &db).ok()) return;
      for (uint64_t g = 0; g < kGroups; g++) {
        for (uint64_t i = 0; i < per_group; i++) {
          db->Put(group_key(g, i), MakeValue());
        }
        db->Flush();
      }
      lsm::DB::Stats loaded = db->GetStats();
      uint64_t disk_bytes = 0;
      db->DiskUsage(&disk_bytes);

      auto measure = [&](const char* op, auto&& body) {
        const uint64_t bytes_before =
            g_heap_bytes.load(std::memory_order_relaxed);
        const uint64_t skips_before = db->GetStats().prefix_bloom_skips;
        auto r = Measure(threads, config.seconds, body);
        const double alloc_per_op =
            r.total_ops > 0
                ? static_cast<double>(
                      g_heap_bytes.load(std::memory_order_relaxed) -
                      bytes_before) /
                      static_cast<double>(r.total_ops)
                : 0.0;
        const int64_t skips =
            std::string(op) == "scan"
                ? static_cast<int64_t>(db->GetStats().prefix_bloom_skips -
                                       skips_before)
                : -1;
        ReportFormat(config, version, op, threads, r, alloc_per_op,
                     loaded.index_bytes, disk_bytes, skips);
      };

      if (WantOp(config, "get")) {
        measure("get", [&](int t) {
          auto rng = std::make_shared<Random>(5000 + t);
          return [&, rng]() {
            std::string value;
            db->Get(lsm::ReadOptions(),
                    group_key(rng->Uniform(kGroups), rng->Uniform(per_group)),
                    &value);
          };
        });
      }
      if (WantOp(config, "scan")) {
        // Short bounded scan within one prefix group — the workload the
        // prefix bloom exists for.
        measure("scan", [&](int t) {
          auto rng = std::make_shared<Random>(6000 + t);
          return [&, rng]() {
            lsm::ReadOptions bounded;
            bounded.prefix_same_as_start = true;
            std::vector<std::pair<std::string, std::string>> out;
            db->Scan(bounded,
                     group_key(rng->Uniform(kGroups), rng->Uniform(per_group)),
                     50, &out);
          };
        });
      }
      if (WantOp(config, "put")) {
        // Disjoint fresh key ranges per thread, above the preload set.
        measure("put", [&](int t) {
          auto next = std::make_shared<uint64_t>(
              per_group + (static_cast<uint64_t>(t) << 32));
          return [&, next]() {
            db->Put(group_key(static_cast<uint64_t>(t) % kGroups, (*next)++),
                    MakeValue());
          };
        });
      }
      db.reset();
      Env::Default()->RemoveDirRecursively(dir);
    }
  }
}

// mode=memtable_shards: the sharded-memtable sweep. Shard counts
// {1,4,8,16} x the thread sweep x put/get/scan against a
// memtable-resident working set: puts measure the parallel group-commit
// apply (each put row carries how many groups took the shard-claim
// path), gets the per-shard skiplist routing, scans the k-way merge over
// the shard runs. shards=1 is the pre-shard engine baseline.
void SweepMemtableShards(const SweepConfig& config) {
  const std::string dir = "/tmp/apmbench-micro-shards";
  for (int shards : {1, 4, 8, 16}) {
    for (int threads : config.thread_counts) {
      Env::Default()->RemoveDirRecursively(dir);
      lsm::Options options;
      options.dir = dir;
      // Big write buffer: the working set stays memtable-resident so the
      // sweep measures the shard structures, not flush and compaction.
      options.memtable_bytes = 256 * 1024 * 1024;
      options.memtable_shards = shards;
      std::unique_ptr<lsm::DB> db;
      if (!lsm::DB::Open(options, &db).ok()) return;
      const uint64_t preload = config.preload;
      for (uint64_t i = 0; i < preload; i++) {
        db->Put(MakeKey(i), MakeValue());
      }

      auto report = [&](const char* op, const MeasureResult& r,
                        int64_t parallel_groups) {
        printf("lsm shards=%-3d %-5s %4d threads  %12.0f ops/s\n", shards,
               op, threads, r.ops_per_sec);
        fflush(stdout);
        auto& row = config.out->AddRow()
                        .Str("engine", "lsm")
                        .Str("mode", "memtable_shards")
                        .Str("op", op)
                        .Int("threads", threads)
                        .Int("memtable_shards", shards)
                        .Num("ops_per_sec", r.ops_per_sec)
                        .Int("total_ops", static_cast<int64_t>(r.total_ops))
                        .Num("seconds", r.elapsed);
        if (parallel_groups >= 0) {
          row.Int("parallel_apply_groups", parallel_groups);
        }
        if (!config.build_label.empty()) row.Str("build", config.build_label);
      };

      if (WantOp(config, "get")) {
        auto r = Measure(threads, config.seconds, [&](int t) {
          auto rng = std::make_shared<Random>(7000 + t);
          return [&, rng]() {
            std::string value;
            db->Get(lsm::ReadOptions(), MakeKey(rng->Uniform(preload)),
                    &value);
          };
        });
        report("get", r, -1);
      }
      if (WantOp(config, "scan")) {
        auto r = Measure(threads, config.seconds, [&](int t) {
          auto rng = std::make_shared<Random>(8000 + t);
          return [&, rng]() {
            std::vector<std::pair<std::string, std::string>> out;
            db->Scan(lsm::ReadOptions(), MakeKey(rng->Uniform(preload)), 50,
                     &out);
          };
        });
        report("scan", r, -1);
      }
      if (WantOp(config, "put")) {
        const uint64_t groups_before = db->GetStats().parallel_apply_groups;
        // Disjoint fresh key ranges per thread, above the preload set.
        auto r = Measure(threads, config.seconds, [&](int t) {
          auto next = std::make_shared<uint64_t>(
              preload + (static_cast<uint64_t>(t + 1) << 32));
          return [&, next]() { db->Put(MakeKey((*next)++), MakeValue()); };
        });
        report("put", r,
               static_cast<int64_t>(db->GetStats().parallel_apply_groups -
                                    groups_before));
      }
      db.reset();
      Env::Default()->RemoveDirRecursively(dir);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string only_engine;
  std::string mode;
  std::string out_path = "BENCH_engines.json";
  SweepConfig config;
  config.thread_counts = BenchThreads();
  config.seconds = BenchSeconds();
  config.preload = BenchPreload();
  for (int i = 1; i < argc; i++) {
    apmbench::Properties props;
    if (!props.ParseArg(argv[i]).ok()) {
      fprintf(stderr,
              "usage: %s [engine=lsm|btree|hashkv|volt] [op=put|get|scan] "
              "[mode=cache_scan|format|memtable_shards] [out=<path>] "
              "[build=<label>]\n",
              argv[0]);
      return 2;
    }
    if (props.Contains("engine")) only_engine = props.GetString("engine");
    if (props.Contains("mode")) mode = props.GetString("mode");
    if (props.Contains("op")) config.only_op = props.GetString("op");
    if (props.Contains("out")) out_path = props.GetString("out");
    if (props.Contains("build")) config.build_label = props.GetString("build");
  }

  benchutil::JsonResultWriter results(out_path);
  config.out = &results;
  printf("APMBench engine thread sweep: %.2fs per point, %llu preloaded "
         "records, %u hardware threads\n",
         config.seconds, static_cast<unsigned long long>(config.preload),
         std::thread::hardware_concurrency());

  if (mode == "cache_scan") {
    SweepCacheScan(config);
  } else if (mode == "format") {
    SweepFormat(config);
  } else if (mode == "memtable_shards") {
    SweepMemtableShards(config);
  } else {
    if (only_engine.empty() || only_engine == "lsm") SweepLsm(config);
    if (only_engine.empty() || only_engine == "btree") SweepBtree(config);
    if (only_engine.empty() || only_engine == "hashkv") SweepHashKv(config);
    if (only_engine.empty() || only_engine == "volt") SweepVolt(config);
  }

  apmbench::Status status = results.WriteFile();
  if (!status.ok()) {
    fprintf(stderr, "write %s: %s\n", results.path().c_str(),
            status.ToString().c_str());
    return 1;
  }
  printf("results written to %s\n", results.path().c_str());
  return 0;
}
