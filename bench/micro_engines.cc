// Google-benchmark microbenchmarks of the four real storage engines.
// These are the calibration evidence for simstores/calibration.h: the
// per-operation costs of our engines order the same way the paper's
// single-node throughputs do (hash table < partition executor < B+tree <
// LSM read path).

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "btree/btree.h"
#include "common/env.h"
#include "common/random.h"
#include "hashkv/hashkv.h"
#include "lsm/db.h"
#include "volt/volt.h"

namespace {

using namespace apmbench;

std::string MakeKey(uint64_t i) {
  char buf[32];
  snprintf(buf, sizeof(buf), "user%021llu",
           static_cast<unsigned long long>(i));
  return buf;
}

std::string MakeValue() { return std::string(50, 'v'); }

// --- LSM engine (cassandra/hbase substrate) ---

class LsmFixture : public benchmark::Fixture {
 public:
  void SetUp(const benchmark::State& state) override {
    (void)state;
    dir_ = "/tmp/apmbench-micro-lsm";
    Env::Default()->RemoveDirRecursively(dir_);
    lsm::Options options;
    options.dir = dir_;
    options.memtable_bytes = 4 * 1024 * 1024;
    lsm::DB::Open(options, &db_);
    for (uint64_t i = 0; i < kPreload; i++) {
      db_->Put(MakeKey(i), MakeValue());
    }
    db_->Flush();
  }
  void TearDown(const benchmark::State& state) override {
    (void)state;
    db_.reset();
    Env::Default()->RemoveDirRecursively(dir_);
  }

 protected:
  static constexpr uint64_t kPreload = 50000;
  std::string dir_;
  std::unique_ptr<lsm::DB> db_;
};

BENCHMARK_F(LsmFixture, Put)(benchmark::State& state) {
  Random rng(1);
  uint64_t i = kPreload;
  for (auto _ : state) {
    benchmark::DoNotOptimize(db_->Put(MakeKey(i++), MakeValue()));
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK_F(LsmFixture, Get)(benchmark::State& state) {
  Random rng(2);
  std::string value;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        db_->Get(lsm::ReadOptions(), MakeKey(rng.Uniform(kPreload)), &value));
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK_F(LsmFixture, Scan50)(benchmark::State& state) {
  Random rng(3);
  std::vector<std::pair<std::string, std::string>> out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(db_->Scan(
        lsm::ReadOptions(), MakeKey(rng.Uniform(kPreload)), 50, &out));
  }
  state.SetItemsProcessed(state.iterations());
}

// --- B+tree engine (mysql/voldemort substrate) ---

class BTreeFixture : public benchmark::Fixture {
 public:
  void SetUp(const benchmark::State& state) override {
    (void)state;
    dir_ = "/tmp/apmbench-micro-btree";
    Env::Default()->RemoveDirRecursively(dir_);
    Env::Default()->CreateDirIfMissing(dir_);
    btree::Options options;
    options.path = dir_ + "/tree.db";
    btree::BTree::Open(options, &tree_);
    for (uint64_t i = 0; i < kPreload; i++) {
      tree_->Put(MakeKey(i), MakeValue());
    }
  }
  void TearDown(const benchmark::State& state) override {
    (void)state;
    tree_.reset();
    Env::Default()->RemoveDirRecursively(dir_);
  }

 protected:
  static constexpr uint64_t kPreload = 50000;
  std::string dir_;
  std::unique_ptr<btree::BTree> tree_;
};

BENCHMARK_F(BTreeFixture, Put)(benchmark::State& state) {
  uint64_t i = kPreload;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree_->Put(MakeKey(i++), MakeValue()));
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK_F(BTreeFixture, Get)(benchmark::State& state) {
  Random rng(4);
  std::string value;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree_->Get(MakeKey(rng.Uniform(kPreload)), &value));
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK_F(BTreeFixture, Scan50)(benchmark::State& state) {
  Random rng(5);
  std::vector<std::pair<std::string, std::string>> out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree_->Scan(MakeKey(rng.Uniform(kPreload)), 50, &out));
  }
  state.SetItemsProcessed(state.iterations());
}

// --- In-memory dict engine (redis substrate) ---

class HashKvFixture : public benchmark::Fixture {
 public:
  void SetUp(const benchmark::State& state) override {
    (void)state;
    hashkv::Options options;
    hashkv::HashKV::Open(options, &kv_);
    for (uint64_t i = 0; i < kPreload; i++) {
      kv_->Set(MakeKey(i), MakeValue());
    }
  }
  void TearDown(const benchmark::State& state) override {
    (void)state;
    kv_.reset();
  }

 protected:
  static constexpr uint64_t kPreload = 50000;
  std::unique_ptr<hashkv::HashKV> kv_;
};

BENCHMARK_F(HashKvFixture, Set)(benchmark::State& state) {
  uint64_t i = kPreload;
  for (auto _ : state) {
    benchmark::DoNotOptimize(kv_->Set(MakeKey(i++), MakeValue()));
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK_F(HashKvFixture, Get)(benchmark::State& state) {
  Random rng(6);
  std::string value;
  for (auto _ : state) {
    benchmark::DoNotOptimize(kv_->Get(MakeKey(rng.Uniform(kPreload)), &value));
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK_F(HashKvFixture, Scan50)(benchmark::State& state) {
  Random rng(7);
  std::vector<std::pair<std::string, std::string>> out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        kv_->Scan(MakeKey(rng.Uniform(kPreload)), 50, &out));
  }
  state.SetItemsProcessed(state.iterations());
}

// --- Partitioned serial executor (voltdb substrate) ---

class VoltFixture : public benchmark::Fixture {
 public:
  void SetUp(const benchmark::State& state) override {
    (void)state;
    engine_ = std::make_unique<volt::VoltEngine>(volt::Options{6});
    for (uint64_t i = 0; i < kPreload; i++) {
      engine_->Put(MakeKey(i), MakeValue());
    }
  }
  void TearDown(const benchmark::State& state) override {
    (void)state;
    engine_.reset();
  }

 protected:
  static constexpr uint64_t kPreload = 20000;
  std::unique_ptr<volt::VoltEngine> engine_;
};

BENCHMARK_F(VoltFixture, Put)(benchmark::State& state) {
  uint64_t i = kPreload;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine_->Put(MakeKey(i++), MakeValue()));
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK_F(VoltFixture, Get)(benchmark::State& state) {
  Random rng(8);
  std::string value;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine_->Get(MakeKey(rng.Uniform(kPreload)), &value));
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK_F(VoltFixture, MultiPartitionScan50)(benchmark::State& state) {
  Random rng(9);
  std::vector<std::pair<std::string, std::string>> out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine_->Scan(MakeKey(rng.Uniform(kPreload)), 50, &out));
  }
  state.SetItemsProcessed(state.iterations());
}

}  // namespace

BENCHMARK_MAIN();
