// The paper's Section-8 future work, implemented: the impact of
// replication on throughput and availability.
//
// Two scenarios:
//
//  * sweep — the Cassandra model's replication factor at 8 nodes across
//    workloads R and W (simulated cluster): each write lands on RF
//    replicas (consistency level ONE), so write capacity shrinks roughly
//    as 1/RF while reads are served by a single replica.
//
//  * failover — kill-a-node-under-load against the *real* CassandraStore:
//    mixed readers/writers hammer an rf>1 cluster while one node is
//    killed mid-run and revived later. Reports the throughput dip while
//    the node is down (reads fail over, writes detour through fsynced
//    hints), the recovery time (revive until the hint queue drained and
//    the node is marked live), and — the invariant the whole cluster
//    lifecycle exists for — zero lost acked writes: every write
//    acknowledged during the outage must be readable afterwards, and an
//    anti-entropy Repair() must leave all replicas with identical
//    digests. Exits non-zero if either check fails, so CI can smoke it.
//
// Usage:
//   ablation_replication [mode=all|sweep|failover] [seconds=6] [nodes=4]
//                        [rf=3] [threads=4] [records=20000]
//                        [dir=/tmp/apmbench-failover] [out=<path>]
//                        [build=<label>]
//
// With out= set, the failover phases and summary are emitted as JSON rows
// through the shared JsonResultWriter shape (mergeable into
// BENCH_engines.json).

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "common/env.h"
#include "common/properties.h"
#include "common/random.h"
#include "simstores/runner.h"
#include "stores/cassandra_store.h"

namespace {

using namespace apmbench;

void RunRfSweep() {
  using namespace apmbench::simstores;
  using benchutil::PrintRow;

  const int nodes = 8;
  printf("=== RF sweep (simulated cluster, %d nodes) ===\n\n", nodes);
  const std::vector<std::string> workloads = {"R", "RW", "W"};
  PrintRow("RF", {"R ops/s", "RW ops/s", "W ops/s", "W write ms"});
  for (int rf : {1, 2, 3}) {
    std::vector<std::string> row;
    double w_write_ms = 0;
    for (const std::string& name : workloads) {
      ClusterParams cluster = ClusterParams::ClusterM(nodes);
      cluster.replication_factor = rf;
      WorkloadSpec spec = WorkloadSpec::Preset(name);
      SimRunConfig config = benchutil::DefaultSimConfig();
      SimResult result;
      Status status = RunSimulationSeeds("cassandra", cluster, spec, config,
                                         benchutil::SimSeeds(), &result);
      if (!status.ok()) {
        row.push_back("-");
        continue;
      }
      row.push_back(benchutil::FormatOps(result.throughput_ops_sec));
      if (name == "W") {
        w_write_ms = result.MeanLatencyMs(OpKind::kInsert);
      }
    }
    row.push_back(benchutil::FormatMs(w_write_ms));
    PrintRow("rf=" + std::to_string(rf), row);
  }
  printf("\nExpected shape: read-heavy throughput is nearly RF-independent "
         "(reads hit one replica); write-heavy throughput falls roughly as "
         "1/RF as every replica absorbs the write and its compaction "
         "debt.\n\n");
}

std::string BenchKey(int64_t i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "user%08lld", static_cast<long long>(i));
  return buf;
}

ycsb::Record BenchRecord(int64_t version) {
  return {{"field0", std::to_string(version)},
          {"field1", std::string(64, 'x')}};
}

int64_t RecordVersion(const ycsb::Record& record) {
  for (const auto& [name, value] : record) {
    if (name == "field0") return atoll(value.c_str());
  }
  return -1;
}

struct FailoverConfig {
  int nodes = 4;
  int rf = 3;
  int threads = 4;
  int64_t records = 20000;
  double seconds = 6.0;
  std::string dir = "/tmp/apmbench-failover";
};

// One kill-a-node-under-load run; returns the number of failed
// invariants (lost acked writes, unconverged replicas).
int RunFailover(const FailoverConfig& config,
                benchutil::JsonResultWriter* json,
                const std::string& build) {
  printf("=== Kill-a-node under load (real CassandraStore, %d nodes, "
         "rf=%d, %d client threads) ===\n\n",
         config.nodes, config.rf, config.threads);

  Env* env = Env::Default();
  env->RemoveDirRecursively(config.dir);
  env->CreateDirIfMissing(config.dir);
  stores::StoreOptions options;
  options.base_dir = config.dir;
  options.num_nodes = config.nodes;
  options.replication_factor = config.rf;
  options.membership_probation_micros = 100 * 1000;
  std::unique_ptr<stores::CassandraStore> store;
  Status status = stores::CassandraStore::Open(options, &store);
  if (!status.ok()) {
    fprintf(stderr, "[warn] open: %s\n", status.ToString().c_str());
    return 1;
  }

  // Preload so the read side has data from the first interval.
  {
    std::vector<std::thread> loaders;
    std::atomic<int64_t> next{0};
    for (int t = 0; t < config.threads; t++) {
      loaders.emplace_back([&]() {
        for (;;) {
          int64_t i = next.fetch_add(1);
          if (i >= config.records) return;
          store->Insert("t", BenchKey(i), BenchRecord(0));
        }
      });
    }
    for (auto& t : loaders) t.join();
  }

  const int victim = 1;
  const uint64_t start = NowMicros();
  const uint64_t kill_at = start + static_cast<uint64_t>(
      config.seconds * 1e6 / 3);
  const uint64_t revive_at = start + static_cast<uint64_t>(
      config.seconds * 1e6 * 2 / 3);
  const uint64_t end_at = start + static_cast<uint64_t>(config.seconds * 1e6);

  std::atomic<uint64_t> ops{0};
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> recovery_micros{0};

  // acked[t]: per-writer map key index -> highest version acknowledged.
  std::vector<std::map<int64_t, int64_t>> acked(
      static_cast<size_t>(config.threads));
  std::vector<std::thread> workers;
  for (int t = 0; t < config.threads; t++) {
    workers.emplace_back([&, t]() {
      Random rng(static_cast<uint64_t>(2024 + t));
      int64_t version = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        int64_t i = static_cast<int64_t>(
            rng.Uniform(static_cast<size_t>(config.records)));
        if (rng.Uniform(2) == 0) {
          ycsb::Record record;
          store->Read("t", BenchKey(i), &record);
        } else {
          // Writers own disjoint key stripes so per-key versions are
          // totally ordered and verifiable afterwards.
          int64_t key = i - (i % config.threads) + t;
          if (key >= config.records) key -= config.threads;
          if (store->Insert("t", BenchKey(key), BenchRecord(++version))
                  .ok()) {
            int64_t& high = acked[static_cast<size_t>(t)][key];
            if (version > high) high = version;
          }
        }
        ops.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // The monitor drives the fault schedule, samples interval throughput,
  // and timestamps recovery (node live again with its hint queue empty).
  struct Interval {
    double t_seconds;
    double ops_per_sec;
    const char* phase;
  };
  std::vector<Interval> intervals;
  {
    const uint64_t tick = 100 * 1000;
    uint64_t last_ops = 0, last_time = start;
    bool killed = false, revived = false;
    while (NowMicros() < end_at) {
      std::this_thread::sleep_for(std::chrono::microseconds(tick));
      uint64_t now = NowMicros();
      if (!killed && now >= kill_at) {
        store->KillNode(victim);
        killed = true;
        printf("-- kill node %d at t=%.1fs\n", victim,
               static_cast<double>(now - start) / 1e6);
      }
      if (!revived && now >= revive_at) {
        store->ReviveNode(victim);
        revived = true;
        printf("-- revive node %d at t=%.1fs\n", victim,
               static_cast<double>(now - start) / 1e6);
      }
      if (revived && recovery_micros.load() == 0 &&
          store->membership().IsLive(victim) &&
          store->PendingHints(victim) == 0) {
        recovery_micros.store(now - revive_at);
      }
      uint64_t total = ops.load(std::memory_order_relaxed);
      double rate = static_cast<double>(total - last_ops) /
                    (static_cast<double>(now - last_time) / 1e6);
      const char* phase = !killed ? "baseline"
                          : !revived ? "node_down"
                                     : "recovered";
      intervals.push_back(
          {static_cast<double>(now - start) / 1e6, rate, phase});
      last_ops = total;
      last_time = now;
    }
  }
  stop.store(true);
  for (auto& t : workers) t.join();

  // Settle: drain any hints left (the node is alive, so this must
  // succeed), then the verification passes below run on a quiet cluster.
  status = store->FlushHints();
  if (!status.ok()) {
    fprintf(stderr, "[warn] flush hints: %s\n", status.ToString().c_str());
  }
  if (recovery_micros.load() == 0) {
    recovery_micros.store(NowMicros() - revive_at);
  }

  double phase_sum[3] = {0, 0, 0};
  int phase_n[3] = {0, 0, 0};
  double dip_min = -1;
  for (const Interval& iv : intervals) {
    int p = iv.phase[0] == 'b' ? 0 : iv.phase[0] == 'n' ? 1 : 2;
    phase_sum[p] += iv.ops_per_sec;
    phase_n[p]++;
    if (p == 1 && (dip_min < 0 || iv.ops_per_sec < dip_min)) {
      dip_min = iv.ops_per_sec;
    }
  }
  double baseline = phase_n[0] ? phase_sum[0] / phase_n[0] : 0;
  double degraded = phase_n[1] ? phase_sum[1] / phase_n[1] : 0;
  double recovered = phase_n[2] ? phase_sum[2] / phase_n[2] : 0;
  double dip_pct =
      baseline > 0 ? 100.0 * (baseline - degraded) / baseline : 0;

  // Invariant 1: zero lost acked writes — every write acknowledged
  // (including those acked against the dead node via durable hints) must
  // be readable with at least its acked version.
  int64_t acked_writes = 0, lost = 0;
  for (const auto& per_thread : acked) {
    for (const auto& [key, version] : per_thread) {
      acked_writes++;
      ycsb::Record record;
      Status rs = store->Read("t", BenchKey(key), &record);
      if (!rs.ok() || RecordVersion(record) < version) lost++;
    }
  }

  // Invariant 2: after repair, every replica pair's digests agree.
  stores::RepairStats repair;
  status = store->Repair(&repair);
  if (!status.ok()) {
    fprintf(stderr, "[warn] repair: %s\n", status.ToString().c_str());
  }
  bool converged = false;
  status = store->CheckReplicasConverged(&converged);
  if (!status.ok()) {
    fprintf(stderr, "[warn] converge check: %s\n",
            status.ToString().c_str());
  }

  stores::ClusterStats stats = store->GetClusterStats();
  printf("\nphase        mean ops/s\n");
  printf("baseline     %10.0f\n", baseline);
  printf("node down    %10.0f   (min interval %.0f, dip %.0f%%)\n",
         degraded, dip_min, dip_pct);
  printf("recovered    %10.0f\n", recovered);
  printf("\nrecovery time          %.0f ms (revive -> node live, hints "
         "drained)\n", static_cast<double>(recovery_micros.load()) / 1e3);
  printf("acked writes verified  %lld (lost: %lld)\n",
         static_cast<long long>(acked_writes), static_cast<long long>(lost));
  printf("hints queued/replayed  %llu / %llu\n",
         static_cast<unsigned long long>(stats.hints_queued),
         static_cast<unsigned long long>(stats.hints_replayed));
  printf("failed-over reads      %llu, read repairs %llu\n",
         static_cast<unsigned long long>(stats.failed_over_reads),
         static_cast<unsigned long long>(stats.read_repairs));
  printf("repair                 %llu pairs, %llu diverged buckets, %llu "
         "rows shipped\n",
         static_cast<unsigned long long>(repair.pairs_compared),
         static_cast<unsigned long long>(repair.buckets_diverged),
         static_cast<unsigned long long>(repair.rows_shipped));
  printf("replicas converged     %s\n\n", converged ? "yes" : "NO");

  if (json != nullptr) {
    const struct {
      const char* phase;
      double rate;
    } rows[] = {{"baseline", baseline},
                {"node_down", degraded},
                {"recovered", recovered}};
    for (const auto& row : rows) {
      json->AddRow()
          .Str("bench", "failover")
          .Str("store", "cassandra")
          .Int("nodes", config.nodes)
          .Int("rf", config.rf)
          .Int("threads", config.threads)
          .Str("phase", row.phase)
          .Num("ops_per_sec", row.rate)
          .Str("build", build);
    }
    json->AddRow()
        .Str("bench", "failover_summary")
        .Str("store", "cassandra")
        .Int("nodes", config.nodes)
        .Int("rf", config.rf)
        .Int("threads", config.threads)
        .Num("recovery_ms", static_cast<double>(recovery_micros.load()) / 1e3)
        .Num("throughput_dip_pct", dip_pct)
        .Int("acked_writes", acked_writes)
        .Int("lost_acked_writes", lost)
        .Int("hints_queued", static_cast<int64_t>(stats.hints_queued))
        .Int("hints_replayed", static_cast<int64_t>(stats.hints_replayed))
        .Int("repair_rows_shipped", static_cast<int64_t>(repair.rows_shipped))
        .Int("converged", converged ? 1 : 0)
        .Str("build", build);
  }

  store.reset();
  env->RemoveDirRecursively(config.dir);
  int failures = 0;
  if (lost > 0) {
    fprintf(stderr, "FAIL: %lld acked writes lost\n",
            static_cast<long long>(lost));
    failures++;
  }
  if (!converged) {
    fprintf(stderr, "FAIL: replicas did not converge after repair\n");
    failures++;
  }
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace apmbench;

  Properties args;
  for (int i = 1; i < argc; i++) {
    if (!args.ParseArg(argv[i]).ok()) {
      fprintf(stderr,
              "usage: %s [mode=all|sweep|failover] [seconds=S] [nodes=N] "
              "[rf=R] [threads=T] [records=K] [dir=<path>] [out=<path>] "
              "[build=<label>]\n",
              argv[0]);
      return 1;
    }
  }
  const std::string mode = args.GetString("mode", "all");
  printf("APMBench replication ablation (paper Section 8 future work)\n\n");

  if (mode == "all" || mode == "sweep") RunRfSweep();

  int failures = 0;
  if (mode == "all" || mode == "failover") {
    FailoverConfig config;
    config.nodes = static_cast<int>(args.GetInt("nodes", config.nodes));
    config.rf = static_cast<int>(args.GetInt("rf", config.rf));
    config.threads = static_cast<int>(args.GetInt("threads", config.threads));
    config.records = args.GetInt("records", config.records);
    config.seconds = static_cast<double>(args.GetInt("seconds", 6));
    config.dir = args.GetString("dir", config.dir);

    const std::string out_path = args.GetString("out", "");
    benchutil::JsonResultWriter json(out_path);
    failures = RunFailover(config, out_path.empty() ? nullptr : &json,
                           args.GetString("build", "dev"));
    if (!out_path.empty() && !json.empty()) {
      Status status = json.WriteFile();
      if (!status.ok()) {
        fprintf(stderr, "[warn] write %s: %s\n", json.path().c_str(),
                status.ToString().c_str());
      }
    }
  }
  return failures == 0 ? 0 : 1;
}
