// The paper's Section-8 future work, implemented: the impact of
// replication on throughput. Sweeps the Cassandra model's replication
// factor at 8 nodes across workloads R and W: each write lands on RF
// replicas (consistency level ONE), so write capacity shrinks roughly as
// 1/RF while reads are served by a single replica.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "simstores/runner.h"

int main() {
  using namespace apmbench;
  using namespace apmbench::simstores;
  using benchutil::PrintRow;

  const int nodes = 8;
  printf("APMBench replication ablation (paper Section 8 future work): "
         "Cassandra model, %d nodes\n\n", nodes);

  const std::vector<std::string> workloads = {"R", "RW", "W"};
  PrintRow("RF", {"R ops/s", "RW ops/s", "W ops/s", "W write ms"});
  for (int rf : {1, 2, 3}) {
    std::vector<std::string> row;
    double w_write_ms = 0;
    for (const std::string& name : workloads) {
      ClusterParams cluster = ClusterParams::ClusterM(nodes);
      cluster.replication_factor = rf;
      WorkloadSpec spec = WorkloadSpec::Preset(name);
      SimRunConfig config = benchutil::DefaultSimConfig();
      SimResult result;
      Status status = RunSimulationSeeds("cassandra", cluster, spec, config,
                                         benchutil::SimSeeds(), &result);
      if (!status.ok()) {
        row.push_back("-");
        continue;
      }
      row.push_back(benchutil::FormatOps(result.throughput_ops_sec));
      if (name == "W") {
        w_write_ms = result.MeanLatencyMs(OpKind::kInsert);
      }
    }
    row.push_back(benchutil::FormatMs(w_write_ms));
    PrintRow("rf=" + std::to_string(rf), row);
  }
  printf("\nExpected shape: read-heavy throughput is nearly RF-independent "
         "(reads hit one replica); write-heavy throughput falls roughly as "
         "1/RF as every replica absorbs the write and its compaction "
         "debt.\n");
  return 0;
}
