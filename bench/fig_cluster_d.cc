// Regenerates Figures 18-20: throughput, read latency, and write latency
// on the disk-bound Cluster D (8 nodes, 150M records total, 4 GB RAM per
// node) for Cassandra, HBase, and Project Voldemort, workloads R/RW/W.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/env.h"
#include "common/properties.h"
#include "simstores/runner.h"

// Usage: fig_cluster_d [out=<dir>]  (writes fig18..fig20 .dat files)
int main(int argc, char** argv) {
  using namespace apmbench;
  using namespace apmbench::simstores;
  using benchutil::PrintRow;

  std::string out_dir;
  for (int i = 1; i < argc; i++) {
    Properties props;
    if (props.ParseArg(argv[i]).ok() && props.Contains("out")) {
      out_dir = props.GetString("out");
      Env::Default()->CreateDirIfMissing(out_dir);
    }
  }
  const int nodes = 8;
  const std::vector<std::string> systems = {"cassandra", "hbase",
                                            "voldemort"};
  const std::vector<std::string> workloads = {"R", "RW", "W"};

  printf("APMBench cluster-D figure harness (Figures 18-20): %d nodes, "
         "disk-bound\n", nodes);

  // workload x system.
  benchutil::JsonResultWriter json(out_dir.empty()
                                       ? "BENCH_cluster_d.json"
                                       : out_dir + "/cluster_d.json");
  std::vector<std::vector<SimResult>> results(workloads.size());
  for (size_t w = 0; w < workloads.size(); w++) {
    results[w].resize(systems.size());
    for (size_t s = 0; s < systems.size(); s++) {
      ClusterParams cluster = ClusterParams::ClusterD(nodes);
      WorkloadSpec spec = WorkloadSpec::Preset(workloads[w]);
      SimRunConfig config = benchutil::DefaultSimConfig();
      Status status =
          RunSimulationSeeds(systems[s], cluster, spec, config,
                             benchutil::SimSeeds(), &results[w][s]);
      if (!status.ok()) {
        fprintf(stderr, "[warn] %s/%s: %s\n", systems[s].c_str(),
                workloads[w].c_str(), status.ToString().c_str());
        continue;
      }
      const SimResult& r = results[w][s];
      json.AddRow()
          .Str("workload", workloads[w])
          .Int("nodes", nodes)
          .Str("system", systems[s])
          .Num("throughput_ops_sec", r.throughput_ops_sec)
          .Num("read_latency_ms", r.MeanLatencyMs(OpKind::kRead))
          .Num("write_latency_ms", r.MeanLatencyMs(OpKind::kInsert));
    }
  }

  auto print_table = [&](int figure, const char* what, auto&& extract) {
    printf("\n=== Figure %d: %s, Cluster D, 8 nodes ===\n", figure, what);
    PrintRow("workload", systems);
    std::string dat = "# workload";
    for (const auto& system : systems) dat += "\t" + system;
    dat += "\n";
    for (size_t w = 0; w < workloads.size(); w++) {
      std::vector<std::string> row;
      for (size_t s = 0; s < systems.size(); s++) {
        row.push_back(extract(results[w][s]));
      }
      PrintRow(workloads[w], row);
      dat += workloads[w];
      for (const auto& cell : row) dat += "\t" + cell;
      dat += "\n";
    }
    if (!out_dir.empty()) {
      std::string path = out_dir + "/fig" + std::to_string(figure) + ".dat";
      Status status = Env::Default()->WriteStringToFile(path, Slice(dat));
      if (!status.ok()) {
        fprintf(stderr, "[warn] export %s: %s\n", path.c_str(),
                status.ToString().c_str());
      }
    }
  };

  print_table(18, "Throughput (ops/sec)", [](const SimResult& r) {
    return benchutil::FormatOps(r.throughput_ops_sec);
  });
  print_table(19, "Read latency (ms)", [](const SimResult& r) {
    return benchutil::FormatMs(r.MeanLatencyMs(OpKind::kRead));
  });
  print_table(20, "Write latency (ms)", [](const SimResult& r) {
    return benchutil::FormatMs(r.MeanLatencyMs(OpKind::kInsert));
  });
  if (!json.empty()) {
    Status status = json.WriteFile();
    if (!status.ok()) {
      fprintf(stderr, "[warn] write %s: %s\n", json.path().c_str(),
              status.ToString().c_str());
    } else {
      printf("\nresults written to %s\n", json.path().c_str());
    }
  }
  return 0;
}
