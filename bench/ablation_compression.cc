// The paper's second Section-8 future-work item, implemented: the impact
// of compression on disk usage and throughput. Loads the same YCSB data
// through the real Cassandra-like store with block compression off and
// on, measuring bytes on disk and insert/read cost. The disk footprint is
// additionally broken down into data-block and index-block bytes by
// reading every SSTable footer, so the block-format share of the
// footprint is visible next to the compression share.
//
// Usage: ablation_compression [out=<path>] [build=<label>]
//
// With out= set, emits one JSON row per compression setting through the
// shared JsonResultWriter shape.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "common/env.h"
#include "common/properties.h"
#include "lsm/sstable.h"
#include "stores/factory.h"
#include "ycsb/client.h"
#include "ycsb/workload.h"

namespace {

using namespace apmbench;

struct CompressionRun {
  double load_us_per_op = 0;
  double read_us_per_op = 0;
  double bytes_per_record = 0;
  // On-disk block breakdown summed over every SSTable footer.
  uint64_t data_block_bytes = 0;
  uint64_t index_block_bytes = 0;
  uint64_t num_tables = 0;
};

// Sums data-block and index-block bytes over every .sst under
// `base_dir/node*/`. The data region of a table is everything before the
// filter blocks, which is exactly the footer's filter_offset in both
// format versions.
void SumBlockBytes(Env* env, const std::string& base_dir,
                   CompressionRun* run) {
  std::vector<std::string> nodes;
  if (!env->GetChildren(base_dir, &nodes).ok()) return;
  for (const auto& node : nodes) {
    const std::string node_dir = base_dir + "/" + node;
    std::vector<std::string> files;
    if (!env->GetChildren(node_dir, &files).ok()) continue;
    for (const auto& file : files) {
      if (file.size() < 4 || file.compare(file.size() - 4, 4, ".sst") != 0) {
        continue;
      }
      lsm::TableFooter footer;
      if (!lsm::ReadTableFooter(env, node_dir + "/" + file, &footer).ok()) {
        continue;
      }
      run->data_block_bytes += footer.filter_offset;
      run->index_block_bytes += footer.index_size;
      run->num_tables++;
    }
  }
}

CompressionRun RunOnce(CompressionType compression, int64_t records) {
  CompressionRun result;
  std::string dir = "/tmp/apmbench-ablation-compress";
  Env* env = Env::Default();
  env->RemoveDirRecursively(dir);
  env->CreateDirIfMissing(dir);

  stores::StoreOptions options;
  options.base_dir = dir;
  options.num_nodes = 1;
  // Small enough that even reduced-APMBENCH_SCALE runs flush several
  // SSTables — the block-bytes breakdown below reads table footers, and
  // data parked in the WAL/memtable would leave it empty.
  options.memtable_bytes = 128 * 1024;
  options.lsm_compression = compression;
  std::unique_ptr<ycsb::DB> db;
  if (!stores::CreateStore("cassandra", options, &db).ok()) return result;

  Properties props;
  props.Set("recordcount", std::to_string(records));
  ycsb::CoreWorkload workload(props);

  uint64_t start = NowMicros();
  if (!ycsb::LoadDatabase(db.get(), &workload, 1).ok()) return result;
  result.load_us_per_op =
      static_cast<double>(NowMicros() - start) / static_cast<double>(records);

  Random rng(21);
  const int reads = 20000;
  ycsb::Record record;
  start = NowMicros();
  for (int i = 0; i < reads; i++) {
    std::string key = workload.BuildKeyName(
        rng.Uniform(static_cast<uint64_t>(records)));
    db->Read(workload.table(), Slice(key), &record);
  }
  result.read_us_per_op = static_cast<double>(NowMicros() - start) / reads;

  db.reset();  // flush everything
  uint64_t bytes = 0;
  env->GetDirectorySize(dir, &bytes);
  result.bytes_per_record =
      static_cast<double>(bytes) / static_cast<double>(records);
  SumBlockBytes(env, dir, &result);
  env->RemoveDirRecursively(dir);
  return result;
}

void AddRow(benchutil::JsonResultWriter* out, const std::string& label,
            const CompressionRun& run, int64_t records,
            const std::string& build_label) {
  out->AddRow()
      .Str("bench", "compression_ablation")
      .Str("compression", label)
      .Int("records", records)
      .Num("bytes_per_record", run.bytes_per_record)
      .Num("load_us_per_op", run.load_us_per_op)
      .Num("read_us_per_op", run.read_us_per_op)
      .Int("data_block_bytes", static_cast<int64_t>(run.data_block_bytes))
      .Int("index_block_bytes", static_cast<int64_t>(run.index_block_bytes))
      .Int("num_tables", static_cast<int64_t>(run.num_tables))
      .Str("build", build_label);
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  std::string build_label = "dev";
  for (int i = 1; i < argc; i++) {
    apmbench::Properties props;
    if (!props.ParseArg(argv[i]).ok()) {
      fprintf(stderr, "usage: %s [out=<path>] [build=<label>]\n", argv[0]);
      return 2;
    }
    if (props.Contains("out")) out_path = props.GetString("out");
    if (props.Contains("build")) build_label = props.GetString("build");
  }

  const int64_t records = benchutil::ScaleRecords();
  printf("APMBench compression ablation (paper Section 8 future work): "
         "%lld records through the real Cassandra-like store\n\n",
         static_cast<long long>(records));

  CompressionRun plain = RunOnce(CompressionType::kNone, records);
  CompressionRun lz = RunOnce(CompressionType::kLz, records);

  printf("%-22s %14s %14s\n", "", "uncompressed", "lz");
  printf("%-22s %14.1f %14.1f\n", "bytes/record", plain.bytes_per_record,
         lz.bytes_per_record);
  printf("%-22s %14llu %14llu\n", "data block bytes",
         static_cast<unsigned long long>(plain.data_block_bytes),
         static_cast<unsigned long long>(lz.data_block_bytes));
  printf("%-22s %14llu %14llu\n", "index block bytes",
         static_cast<unsigned long long>(plain.index_block_bytes),
         static_cast<unsigned long long>(lz.index_block_bytes));
  printf("%-22s %14.2f %14.2f\n", "load us/op", plain.load_us_per_op,
         lz.load_us_per_op);
  printf("%-22s %14.2f %14.2f\n", "read us/op", plain.read_us_per_op,
         lz.read_us_per_op);
  printf("\nExpected shape (Section 8's conjecture): compression shrinks "
         "the on-disk footprint at a CPU cost on the write/flush path.\n");

  if (!out_path.empty()) {
    benchutil::JsonResultWriter results(out_path);
    AddRow(&results, "none", plain, records, build_label);
    AddRow(&results, "lz", lz, records, build_label);
    apmbench::Status status = results.WriteFile();
    if (!status.ok()) {
      fprintf(stderr, "write %s: %s\n", results.path().c_str(),
              status.ToString().c_str());
      return 1;
    }
    printf("results written to %s\n", results.path().c_str());
  }
  return 0;
}
