// The paper's second Section-8 future-work item, implemented: the impact
// of compression on disk usage and throughput. Loads the same YCSB data
// through the real Cassandra-like store with block compression off and
// on, measuring bytes on disk and insert/read cost.

#include <cstdio>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "common/env.h"
#include "common/properties.h"
#include "stores/factory.h"
#include "ycsb/client.h"
#include "ycsb/workload.h"

namespace {

using namespace apmbench;

struct CompressionRun {
  double load_us_per_op = 0;
  double read_us_per_op = 0;
  double bytes_per_record = 0;
};

CompressionRun RunOnce(CompressionType compression, int64_t records) {
  CompressionRun result;
  std::string dir = "/tmp/apmbench-ablation-compress";
  Env* env = Env::Default();
  env->RemoveDirRecursively(dir);
  env->CreateDirIfMissing(dir);

  stores::StoreOptions options;
  options.base_dir = dir;
  options.num_nodes = 1;
  options.memtable_bytes = 1024 * 1024;
  options.lsm_compression = compression;
  std::unique_ptr<ycsb::DB> db;
  if (!stores::CreateStore("cassandra", options, &db).ok()) return result;

  Properties props;
  props.Set("recordcount", std::to_string(records));
  ycsb::CoreWorkload workload(props);

  uint64_t start = NowMicros();
  if (!ycsb::LoadDatabase(db.get(), &workload, 1).ok()) return result;
  result.load_us_per_op =
      static_cast<double>(NowMicros() - start) / static_cast<double>(records);

  Random rng(21);
  const int reads = 20000;
  ycsb::Record record;
  start = NowMicros();
  for (int i = 0; i < reads; i++) {
    std::string key = workload.BuildKeyName(
        rng.Uniform(static_cast<uint64_t>(records)));
    db->Read(workload.table(), Slice(key), &record);
  }
  result.read_us_per_op = static_cast<double>(NowMicros() - start) / reads;

  db.reset();  // flush everything
  uint64_t bytes = 0;
  env->GetDirectorySize(dir, &bytes);
  result.bytes_per_record =
      static_cast<double>(bytes) / static_cast<double>(records);
  env->RemoveDirRecursively(dir);
  return result;
}

}  // namespace

int main() {
  const int64_t records = benchutil::ScaleRecords();
  printf("APMBench compression ablation (paper Section 8 future work): "
         "%lld records through the real Cassandra-like store\n\n",
         static_cast<long long>(records));

  CompressionRun plain = RunOnce(CompressionType::kNone, records);
  CompressionRun lz = RunOnce(CompressionType::kLz, records);

  printf("%-22s %14s %14s\n", "", "uncompressed", "lz");
  printf("%-22s %14.1f %14.1f\n", "bytes/record", plain.bytes_per_record,
         lz.bytes_per_record);
  printf("%-22s %14.2f %14.2f\n", "load us/op", plain.load_us_per_op,
         lz.load_us_per_op);
  printf("%-22s %14.2f %14.2f\n", "read us/op", plain.read_us_per_op,
         lz.read_us_per_op);
  printf("\nExpected shape (Section 8's conjecture): compression shrinks "
         "the on-disk footprint at a CPU cost on the write/flush path.\n");
  return 0;
}
