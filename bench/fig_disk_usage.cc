// Regenerates Figure 17: disk usage after loading 10M 75-byte records per
// node, for the four disk-backed stores (Cassandra, HBase, Voldemort,
// MySQL) plus the raw-data baseline.
//
// Unlike the multi-node throughput figures, this experiment runs on the
// *real* storage engines: it loads APMBENCH_SCALE records (default 20000)
// through each store's actual on-disk format, measures the bytes written,
// and extrapolates the per-record footprint to the paper's 10M records
// per node. The per-system overhead ordering (HBase per-cell layout >>
// MySQL with binlog ~ Voldemort BDB > Cassandra row layout > raw data)
// is a property of the formats, not of the scale.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/env.h"
#include "common/properties.h"
#include "stores/factory.h"
#include "ycsb/client.h"
#include "ycsb/workload.h"

int main() {
  using namespace apmbench;
  using benchutil::PrintRow;

  const std::vector<std::string> systems = {"cassandra", "hbase",
                                            "voldemort", "mysql"};
  const int64_t sample_records = benchutil::ScaleRecords();
  const double records_per_node = 10e6;  // the paper's load
  const double raw_record_bytes = 75.0;

  printf("APMBench disk-usage harness (Figure 17): loading %lld records "
         "through each real engine (set APMBENCH_SCALE to change)\n",
         static_cast<long long>(sample_records));

  std::vector<double> bytes_per_record(systems.size(), 0);
  Env* env = Env::Default();
  for (size_t s = 0; s < systems.size(); s++) {
    std::string dir = "/tmp/apmbench-fig17-" + systems[s];
    env->RemoveDirRecursively(dir);
    env->CreateDirIfMissing(dir);

    stores::StoreOptions options;
    options.base_dir = dir;
    options.num_nodes = 1;
    options.memtable_bytes = 2 * 1024 * 1024;

    std::unique_ptr<ycsb::DB> db;
    Status status = stores::CreateStore(systems[s], options, &db);
    if (!status.ok()) {
      fprintf(stderr, "[warn] %s: %s\n", systems[s].c_str(),
              status.ToString().c_str());
      continue;
    }
    Properties props;
    props.Set("recordcount", std::to_string(sample_records));
    ycsb::CoreWorkload workload(props);
    status = ycsb::LoadDatabase(db.get(), &workload, 4);
    if (!status.ok()) {
      fprintf(stderr, "[warn] load %s: %s\n", systems[s].c_str(),
              status.ToString().c_str());
      continue;
    }
    // Close the store so engines flush/checkpoint, then measure what is
    // actually on disk.
    db.reset();
    uint64_t bytes = 0;
    status = env->GetDirectorySize(dir, &bytes);
    if (!status.ok()) continue;
    bytes_per_record[s] =
        static_cast<double>(bytes) / static_cast<double>(sample_records);
    env->RemoveDirRecursively(dir);
  }

  benchutil::JsonResultWriter json("BENCH_disk_usage.json");
  for (size_t s = 0; s < systems.size(); s++) {
    if (bytes_per_record[s] <= 0) continue;
    json.AddRow()
        .Str("system", systems[s])
        .Int("sample_records", sample_records)
        .Num("bytes_per_record", bytes_per_record[s])
        .Num("overhead_vs_raw", bytes_per_record[s] / raw_record_bytes);
  }

  printf("\nMeasured on-disk footprint (real engines):\n");
  PrintRow("system", {"bytes/record", "x raw (75B)"});
  for (size_t s = 0; s < systems.size(); s++) {
    char a[32], b[32];
    snprintf(a, sizeof(a), "%.1f", bytes_per_record[s]);
    snprintf(b, sizeof(b), "%.1fx", bytes_per_record[s] / raw_record_bytes);
    PrintRow(systems[s], {a, b});
  }

  printf("\n=== Figure 17: Disk usage (GB) for 10M records/node ===\n");
  std::vector<std::string> header = systems;
  header.push_back("raw data");
  PrintRow("nodes", header);
  for (int nodes : {1, 2, 4, 8, 12}) {
    std::vector<std::string> row;
    for (size_t s = 0; s < systems.size(); s++) {
      char buf[32];
      snprintf(buf, sizeof(buf), "%.2f",
               bytes_per_record[s] * records_per_node * nodes / 1e9);
      row.push_back(buf);
    }
    char raw[32];
    snprintf(raw, sizeof(raw), "%.2f",
             raw_record_bytes * records_per_node * nodes / 1e9);
    row.push_back(raw);
    PrintRow(std::to_string(nodes), row);
  }
  printf("\nPaper (Figure 17, per node): Cassandra 2.5 GB, MySQL 5 GB "
         "(half is binlog), Voldemort 5.5 GB, HBase 7.5 GB, raw 0.7 GB.\n");
  if (!json.empty()) {
    Status status = json.WriteFile();
    if (!status.ok()) {
      fprintf(stderr, "[warn] write %s: %s\n", json.path().c_str(),
              status.ToString().c_str());
    } else {
      printf("\nresults written to %s\n", json.path().c_str());
    }
  }
  return 0;
}
