// Serving-layer sweep: throughput and intended latency vs connection
// count for a store hosted behind the epoll binary-protocol server
// (src/net), driven closed-loop over loopback the way the paper drives
// each store with 128 YCSB client connections per node.
//
//   ./fig_serving [store=redis] [conns=1,8,64,256] [records=N]
//                 [seconds=S] [workload=RW] [out=BENCH_engines.json]
//
// For each connection count C the harness opens a RemoteStore
// multiplexing C sockets, runs C closed-loop client threads unthrottled
// for the maximum sustainable throughput, then replays the workload
// open-loop at 70% of that maximum to measure intended (coordinated-
// omission-corrected) latency. Rows are merged into the output JSON
// (existing non-serving rows, e.g. micro_engines sweeps, are preserved).

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/env.h"
#include "common/properties.h"
#include "net/remote_store.h"
#include "net/server.h"
#include "stores/factory.h"
#include "ycsb/client.h"
#include "ycsb/workload.h"

using namespace apmbench;

namespace {

struct SweepPoint {
  int connections = 0;
  double max_ops_sec = 0.0;
  uint64_t measured_p99_us = 0;
  double paced_ops_sec = 0.0;
  uint64_t intended_p99_us = 0;
  uint64_t intended_p95_us = 0;
  uint64_t batches = 0;
  uint64_t requests = 0;
};

std::vector<int> ParseConns(const std::string& spec) {
  std::vector<int> out;
  size_t start = 0;
  while (start < spec.size()) {
    size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    out.push_back(std::stoi(spec.substr(start, comma - start)));
    start = comma + 1;
  }
  return out;
}

Status RunSweep(ycsb::DB* remote, ycsb::CoreWorkload* workload,
                int connections, double seconds, SweepPoint* point) {
  // Pass 1: closed-loop, unthrottled — the maximum sustainable
  // throughput at this connection count.
  ycsb::RunConfig config;
  config.threads = connections;
  config.duration_seconds = seconds;
  config.warmup_seconds = seconds >= 4 ? 1.0 : 0.25;
  ycsb::RunResult result;
  APM_RETURN_IF_ERROR(ycsb::RunWorkload(remote, workload, config, &result));
  point->connections = connections;
  point->max_ops_sec = result.throughput_ops_sec;
  point->measured_p99_us = result.measurements.MergedHistogram().Percentile(99.0);

  // Pass 2: open-loop at 70% of max — queueing delay shows up in
  // intended latency instead of being coordinated-omission'd away.
  config.target_ops_per_sec = result.throughput_ops_sec * 0.7;
  ycsb::RunResult paced;
  APM_RETURN_IF_ERROR(ycsb::RunWorkload(remote, workload, config, &paced));
  point->paced_ops_sec = paced.throughput_ops_sec;
  point->intended_p99_us =
      paced.measurements.MergedIntendedHistogram().Percentile(99.0);
  point->intended_p95_us =
      paced.measurements.MergedIntendedHistogram().Percentile(95.0);
  return Status::OK();
}

/// Rewrites `path` as a JSON array holding any pre-existing rows that are
/// not serving rows (so engine-sweep results survive) plus `new_rows`.
Status MergeRows(const std::string& path,
                 const std::vector<std::string>& new_rows) {
  std::string existing;
  std::vector<std::string> kept;
  if (Env::Default()->ReadFileToString(path, &existing).ok()) {
    // Extract each top-level {...} object (rows may be one per line or
    // pretty-printed across lines; no string values contain braces) and
    // keep every row that is not a previous serving sweep.
    int depth = 0;
    std::string row;
    for (char c : existing) {
      if (c == '{') depth++;
      if (depth > 0) row.push_back(c == '\n' ? ' ' : c);
      if (c == '}' && depth > 0 && --depth == 0) {
        if (row.find("\"bench\": \"serving\"") == std::string::npos) {
          kept.push_back(row);
        }
        row.clear();
      }
    }
  }
  kept.insert(kept.end(), new_rows.begin(), new_rows.end());
  std::string out = "[\n";
  for (size_t i = 0; i < kept.size(); i++) {
    out += "  " + kept[i];
    if (i + 1 < kept.size()) out += ",";
    out += "\n";
  }
  out += "]\n";
  return Env::Default()->WriteStringToFile(path, Slice(out));
}

}  // namespace

int main(int argc, char** argv) {
  Properties args;
  for (int i = 1; i < argc; i++) {
    if (!args.ParseArg(argv[i]).ok()) {
      fprintf(stderr,
              "usage: %s [store=<name>] [conns=1,8,64,256] [records=N] "
              "[seconds=S] [workload=RW] [out=<path>]\n",
              argv[0]);
      return 2;
    }
  }
  std::string store_name = args.GetString("store", "redis");
  std::vector<int> conn_counts =
      ParseConns(args.GetString("conns", "1,8,64,256"));
  double seconds = args.GetDouble("seconds", 4.0);
  int64_t records = args.GetInt("records", benchutil::ScaleRecords());
  std::string out_path = args.GetString("out", "BENCH_engines.json");

  const std::string dir = "/tmp/apmbench-fig-serving";
  Env::Default()->RemoveDirRecursively(dir);
  stores::StoreOptions store_options;
  store_options.base_dir = dir;
  store_options.num_nodes = static_cast<int>(args.GetInt("nodes", 1));
  std::unique_ptr<ycsb::DB> db;
  Status status = stores::CreateStore(store_name, store_options, &db);
  if (!status.ok()) {
    fprintf(stderr, "open %s: %s\n", store_name.c_str(),
            status.ToString().c_str());
    return 1;
  }

  Properties props;
  status = ycsb::CoreWorkload::Table1Preset(args.GetString("workload", "RW"),
                                            &props);
  if (!status.ok()) {
    fprintf(stderr, "workload: %s\n", status.ToString().c_str());
    return 1;
  }
  props.Set("recordcount", std::to_string(records));
  ycsb::CoreWorkload workload(props);
  status = ycsb::LoadDatabase(db.get(), &workload, 8);
  if (!status.ok()) {
    fprintf(stderr, "load: %s\n", status.ToString().c_str());
    return 1;
  }

  net::ServerOptions server_options;
  server_options.port = 0;
  server_options.event_threads =
      static_cast<int>(args.GetInt("event_threads", 2));
  server_options.worker_threads = static_cast<int>(args.GetInt("workers", 8));
  net::Server server(server_options, db.get());
  status = server.Start();
  if (!status.ok()) {
    fprintf(stderr, "server: %s\n", status.ToString().c_str());
    return 1;
  }
  printf("Serving sweep: %s behind the binary-protocol server on port %d, "
         "%lld records, %.1fs per pass\n",
         store_name.c_str(), server.port(), static_cast<long long>(records),
         seconds);
  benchutil::PrintRow("conns", {"max ops/sec", "p99 us", "paced ops/sec",
                                "intended p99", "req/batch"});

  std::vector<std::string> rows;
  for (int conns : conn_counts) {
    net::ClientOptions client_options;
    client_options.port = server.port();
    client_options.connections = conns;
    std::unique_ptr<net::RemoteStore> remote;
    status = net::RemoteStore::Open(client_options, &remote);
    if (!status.ok()) {
      fprintf(stderr, "connect (%d conns): %s\n", conns,
              status.ToString().c_str());
      return 1;
    }
    net::Server::Stats before = server.GetStats();
    SweepPoint point;
    status = RunSweep(remote.get(), &workload, conns, seconds, &point);
    if (!status.ok()) {
      fprintf(stderr, "sweep (%d conns): %s\n", conns,
              status.ToString().c_str());
      return 1;
    }
    net::Server::Stats after = server.GetStats();
    point.batches = after.batches - before.batches;
    point.requests = after.requests - before.requests;
    double req_per_batch =
        point.batches > 0
            ? static_cast<double>(point.requests) /
                  static_cast<double>(point.batches)
            : 0.0;
    benchutil::PrintRow(
        std::to_string(conns),
        {benchutil::FormatOps(point.max_ops_sec),
         std::to_string(point.measured_p99_us),
         benchutil::FormatOps(point.paced_ops_sec),
         std::to_string(point.intended_p99_us),
         benchutil::FormatMs(req_per_batch)});
    char row[512];
    snprintf(row, sizeof(row),
             "{\"bench\": \"serving\", \"store\": \"%s\", "
             "\"connections\": %d, \"ops_per_sec\": %.6g, "
             "\"measured_p99_us\": %llu, \"paced_ops_per_sec\": %.6g, "
             "\"intended_p99_us\": %llu, \"intended_p95_us\": %llu, "
             "\"requests_per_batch\": %.6g}",
             store_name.c_str(), point.connections, point.max_ops_sec,
             static_cast<unsigned long long>(point.measured_p99_us),
             point.paced_ops_sec,
             static_cast<unsigned long long>(point.intended_p99_us),
             static_cast<unsigned long long>(point.intended_p95_us),
             req_per_batch);
    rows.push_back(row);
  }

  server.Stop();
  Env::Default()->RemoveDirRecursively(dir);
  status = MergeRows(out_path, rows);
  if (!status.ok()) {
    fprintf(stderr, "write %s: %s\n", out_path.c_str(),
            status.ToString().c_str());
    return 1;
  }
  printf("results merged into %s\n", out_path.c_str());
  return 0;
}
