// Regenerates Figures 15/16: read and write latency under bounded load
// (50%-95% of each system's maximum throughput), 8 nodes, Workload R,
// Cluster M. As in the paper, latencies are normalized to the value at
// 50% load; VoltDB is omitted (its latency was already prohibitive at
// this scale) and absolute values are printed alongside.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "simstores/runner.h"

namespace {

using namespace apmbench;
using namespace apmbench::simstores;
using benchutil::PrintRow;

const std::vector<std::string> kSystems = {"cassandra", "hbase", "voldemort",
                                           "mysql", "redis"};
const std::vector<int> kPercentages = {50, 60, 70, 80, 90, 95, 100};

}  // namespace

int main() {
  const int nodes = 8;
  WorkloadSpec spec = WorkloadSpec::Preset("R");
  ClusterParams cluster = ClusterParams::ClusterM(nodes);

  printf("APMBench bounded-throughput harness (Figures 15/16): workload R, "
         "%d nodes\n", nodes);

  // percentage x system latency matrices.
  std::vector<std::vector<double>> read_ms(kPercentages.size()),
      write_ms(kPercentages.size());

  std::vector<double> max_rate(kSystems.size());
  for (size_t s = 0; s < kSystems.size(); s++) {
    SimRunConfig config = benchutil::DefaultSimConfig();
    SimResult result;
    Status status = RunSimulationSeeds(kSystems[s], cluster, spec, config,
                                       benchutil::SimSeeds(), &result);
    if (!status.ok()) {
      fprintf(stderr, "[warn] %s: %s\n", kSystems[s].c_str(),
              status.ToString().c_str());
      continue;
    }
    max_rate[s] = result.throughput_ops_sec;
  }

  for (size_t p = 0; p < kPercentages.size(); p++) {
    read_ms[p].resize(kSystems.size(), 0);
    write_ms[p].resize(kSystems.size(), 0);
    for (size_t s = 0; s < kSystems.size(); s++) {
      if (max_rate[s] <= 0) continue;
      SimRunConfig config = benchutil::DefaultSimConfig();
      if (kPercentages[p] < 100) {
        config.arrival_rate_ops_sec =
            max_rate[s] * kPercentages[p] / 100.0;
      }
      SimResult result;
      Status status = RunSimulationSeeds(kSystems[s], cluster, spec, config,
                                         benchutil::SimSeeds(), &result);
      if (!status.ok()) continue;
      read_ms[p][s] = result.MeanLatencyMs(OpKind::kRead);
      write_ms[p][s] = result.MeanLatencyMs(OpKind::kInsert);
    }
  }

  auto print_tables = [&](const char* what, int figure,
                          const std::vector<std::vector<double>>& ms) {
    printf("\n=== Figure %d: %s latency under bounded load "
           "(normalized to 50%%) ===\n", figure, what);
    PrintRow("load%", kSystems);
    for (size_t p = 0; p < kPercentages.size(); p++) {
      std::vector<std::string> row;
      for (size_t s = 0; s < kSystems.size(); s++) {
        char buf[32];
        double base = ms[0][s];
        if (base <= 0 || ms[p][s] <= 0) {
          row.push_back("-");
        } else {
          snprintf(buf, sizeof(buf), "%.2f", ms[p][s] / base);
          row.push_back(buf);
        }
      }
      PrintRow(std::to_string(kPercentages[p]), row);
    }
    printf("--- absolute values (ms) ---\n");
    PrintRow("load%", kSystems);
    for (size_t p = 0; p < kPercentages.size(); p++) {
      std::vector<std::string> row;
      for (size_t s = 0; s < kSystems.size(); s++) {
        row.push_back(benchutil::FormatMs(ms[p][s]));
      }
      PrintRow(std::to_string(kPercentages[p]), row);
    }
  };

  print_tables("Read", 15, read_ms);
  print_tables("Write", 16, write_ms);
  return 0;
}
