// Regenerates Figures 15/16: read and write latency under bounded load
// (50%-95% of each system's maximum throughput), 8 nodes, Workload R,
// Cluster M. As in the paper, latencies are normalized to the value at
// 50% load; VoltDB is omitted (its latency was already prohibitive at
// this scale) and absolute values are printed alongside.
//
// Beyond the simulated default, two modes drive the real YCSB runner's
// intended-latency pipeline (docs/measurement.md):
//
//   fig_bounded series=run.json [series=run2.json ...]
//     Prints the latency-vs-time table from a time series emitted by
//     `ycsb_cli run ... series_json=run.json`.
//
//   fig_bounded store=cassandra [workload=R] [records=N] [threads=N]
//               [seconds=S] [warmup=S] [out=prefix]
//     Measures an embedded store's maximum throughput, then sweeps
//     bounded load at 50-95% of it, reporting measured vs intended
//     latency per load point (the coordinated-omission-corrected
//     Figure 15/16 sweep). out=prefix dumps prefix.<pct>.json series.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/env.h"
#include "common/properties.h"
#include "simstores/runner.h"
#include "stores/factory.h"
#include "ycsb/client.h"
#include "ycsb/timeseries.h"
#include "ycsb/workload.h"

namespace {

using namespace apmbench;
using namespace apmbench::simstores;
using benchutil::PrintRow;

const std::vector<std::string> kSystems = {"cassandra", "hbase", "voldemort",
                                           "mysql", "redis"};
const std::vector<int> kPercentages = {50, 60, 70, 80, 90, 95, 100};

void PrintSeriesTable(const std::string& label,
                      const ycsb::TimeSeries& series) {
  printf("\n=== Latency over time: %s (window %.2gs) ===\n", label.c_str(),
         series.window_seconds);
  PrintRow("t(s)", {"ops/sec", "meas p50", "meas p95", "meas p99",
                    "int p50", "int p95", "int p99"});
  for (const ycsb::TimeSeriesPoint& p : series.points) {
    char t[32];
    snprintf(t, sizeof(t), "%.1f", p.t_seconds);
    PrintRow(t, {benchutil::FormatOps(p.ops_per_sec),
                 std::to_string(p.measured_p50_us) + "us",
                 std::to_string(p.measured_p95_us) + "us",
                 std::to_string(p.measured_p99_us) + "us",
                 std::to_string(p.intended_p50_us) + "us",
                 std::to_string(p.intended_p95_us) + "us",
                 std::to_string(p.intended_p99_us) + "us"});
  }
}

int RunSeriesMode(const std::vector<std::string>& paths) {
  for (const std::string& path : paths) {
    std::string json;
    Status status = Env::Default()->ReadFileToString(path, &json);
    if (!status.ok()) {
      fprintf(stderr, "%s: %s\n", path.c_str(), status.ToString().c_str());
      return 1;
    }
    ycsb::TimeSeries series;
    status = ycsb::TimeSeries::FromJson(json, &series);
    if (!status.ok()) {
      fprintf(stderr, "%s: %s\n", path.c_str(), status.ToString().c_str());
      return 1;
    }
    PrintSeriesTable(path, series);
  }
  return 0;
}

int RunRealSweep(const Properties& args) {
  const std::string store = args.GetString("store");
  const std::string dir = "/tmp/apmbench-fig-bounded";
  Env::Default()->RemoveDirRecursively(dir);

  stores::StoreOptions options;
  options.base_dir = dir;
  options.num_nodes = static_cast<int>(args.GetInt("nodes", 1));
  std::unique_ptr<ycsb::DB> db;
  Status status = stores::CreateStore(store, options, &db);
  if (!status.ok()) {
    fprintf(stderr, "open %s: %s\n", store.c_str(),
            status.ToString().c_str());
    return 1;
  }

  Properties props;
  status = ycsb::CoreWorkload::Table1Preset(args.GetString("workload", "R"),
                                            &props);
  if (!status.ok()) {
    fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  props.Set("recordcount",
            std::to_string(args.GetInt("records", 20000)));
  status = ycsb::CoreWorkload::Validate(props);
  if (!status.ok()) {
    fprintf(stderr, "workload: %s\n", status.ToString().c_str());
    return 1;
  }
  ycsb::CoreWorkload workload(props);

  ycsb::RunConfig config;
  config.threads = static_cast<int>(args.GetInt("threads", 8));
  config.duration_seconds = args.GetDouble("seconds", 3.0);
  config.warmup_seconds = args.GetDouble("warmup", 0.5);
  config.time_series_window_seconds = args.GetDouble("interval", 1.0);

  printf("APMBench bounded-throughput sweep: store=%s workload=%s "
         "threads=%d %.1fs runs (%.1fs warmup)\n",
         store.c_str(), args.GetString("workload", "R").c_str(),
         config.threads, config.duration_seconds, config.warmup_seconds);

  status = ycsb::LoadDatabase(db.get(), &workload, config.threads);
  if (!status.ok()) {
    fprintf(stderr, "load: %s\n", status.ToString().c_str());
    return 1;
  }

  ycsb::RunResult max_result;
  status = ycsb::RunWorkload(db.get(), &workload, config, &max_result);
  if (!status.ok()) {
    fprintf(stderr, "max-throughput run: %s\n", status.ToString().c_str());
    return 1;
  }
  double max_rate = max_result.throughput_ops_sec;
  printf("maximum throughput: %.0f ops/sec\n\n", max_rate);

  PrintRow("load%", {"target", "achieved", "meas p95", "meas p99",
                     "int p95", "int p99"});
  benchutil::JsonResultWriter json("BENCH_bounded.json");
  std::string out_prefix = args.GetString("out", "");
  for (int pct : kPercentages) {
    ycsb::RunConfig bounded = config;
    if (pct < 100) bounded.target_ops_per_sec = max_rate * pct / 100.0;
    ycsb::RunResult result;
    status = ycsb::RunWorkload(db.get(), &workload, bounded, &result);
    if (!status.ok()) {
      fprintf(stderr, "%d%%: %s\n", pct, status.ToString().c_str());
      continue;
    }
    Histogram measured = result.measurements.MergedHistogram();
    Histogram intended = result.measurements.MergedIntendedHistogram();
    json.AddRow()
        .Str("store", store)
        .Int("load_pct", pct)
        .Num("target_ops_per_sec", bounded.target_ops_per_sec)
        .Num("achieved_ops_per_sec", result.throughput_ops_sec)
        .Int("measured_p95_us", measured.Percentile(0.95))
        .Int("measured_p99_us", measured.Percentile(0.99))
        .Int("intended_p95_us", intended.Percentile(0.95))
        .Int("intended_p99_us", intended.Percentile(0.99));
    PrintRow(std::to_string(pct),
             {benchutil::FormatOps(bounded.target_ops_per_sec),
              benchutil::FormatOps(result.throughput_ops_sec),
              std::to_string(measured.Percentile(0.95)) + "us",
              std::to_string(measured.Percentile(0.99)) + "us",
              std::to_string(intended.Percentile(0.95)) + "us",
              std::to_string(intended.Percentile(0.99)) + "us"});
    if (!out_prefix.empty()) {
      std::string path = out_prefix + "." + std::to_string(pct) + ".json";
      status = Env::Default()->WriteStringToFile(
          path, Slice(result.time_series.ToJson()));
      if (!status.ok()) {
        fprintf(stderr, "write %s: %s\n", path.c_str(),
                status.ToString().c_str());
      }
    }
  }
  if (!json.empty()) {
    status = json.WriteFile();
    if (!status.ok()) {
      fprintf(stderr, "write %s: %s\n", json.path().c_str(),
              status.ToString().c_str());
    } else {
      printf("\nresults written to %s\n", json.path().c_str());
    }
  }
  Env::Default()->RemoveDirRecursively(dir);
  return 0;
}

int RunSimMode() {
  const int nodes = 8;
  WorkloadSpec spec = WorkloadSpec::Preset("R");
  ClusterParams cluster = ClusterParams::ClusterM(nodes);

  printf("APMBench bounded-throughput harness (Figures 15/16): workload R, "
         "%d nodes\n", nodes);

  // percentage x system latency matrices.
  std::vector<std::vector<double>> read_ms(kPercentages.size()),
      write_ms(kPercentages.size());

  std::vector<double> max_rate(kSystems.size());
  for (size_t s = 0; s < kSystems.size(); s++) {
    SimRunConfig config = benchutil::DefaultSimConfig();
    SimResult result;
    Status status = RunSimulationSeeds(kSystems[s], cluster, spec, config,
                                       benchutil::SimSeeds(), &result);
    if (!status.ok()) {
      fprintf(stderr, "[warn] %s: %s\n", kSystems[s].c_str(),
              status.ToString().c_str());
      continue;
    }
    max_rate[s] = result.throughput_ops_sec;
  }

  for (size_t p = 0; p < kPercentages.size(); p++) {
    read_ms[p].resize(kSystems.size(), 0);
    write_ms[p].resize(kSystems.size(), 0);
    for (size_t s = 0; s < kSystems.size(); s++) {
      if (max_rate[s] <= 0) continue;
      SimRunConfig config = benchutil::DefaultSimConfig();
      if (kPercentages[p] < 100) {
        config.arrival_rate_ops_sec =
            max_rate[s] * kPercentages[p] / 100.0;
      }
      SimResult result;
      Status status = RunSimulationSeeds(kSystems[s], cluster, spec, config,
                                         benchutil::SimSeeds(), &result);
      if (!status.ok()) continue;
      read_ms[p][s] = result.MeanLatencyMs(OpKind::kRead);
      write_ms[p][s] = result.MeanLatencyMs(OpKind::kInsert);
    }
  }

  auto print_tables = [&](const char* what, int figure,
                          const std::vector<std::vector<double>>& ms) {
    printf("\n=== Figure %d: %s latency under bounded load "
           "(normalized to 50%%) ===\n", figure, what);
    PrintRow("load%", kSystems);
    for (size_t p = 0; p < kPercentages.size(); p++) {
      std::vector<std::string> row;
      for (size_t s = 0; s < kSystems.size(); s++) {
        char buf[32];
        double base = ms[0][s];
        if (base <= 0 || ms[p][s] <= 0) {
          row.push_back("-");
        } else {
          snprintf(buf, sizeof(buf), "%.2f", ms[p][s] / base);
          row.push_back(buf);
        }
      }
      PrintRow(std::to_string(kPercentages[p]), row);
    }
    printf("--- absolute values (ms) ---\n");
    PrintRow("load%", kSystems);
    for (size_t p = 0; p < kPercentages.size(); p++) {
      std::vector<std::string> row;
      for (size_t s = 0; s < kSystems.size(); s++) {
        row.push_back(benchutil::FormatMs(ms[p][s]));
      }
      PrintRow(std::to_string(kPercentages[p]), row);
    }
  };

  print_tables("Read", 15, read_ms);
  print_tables("Write", 16, write_ms);

  benchutil::JsonResultWriter json("BENCH_bounded.json");
  for (size_t p = 0; p < kPercentages.size(); p++) {
    for (size_t s = 0; s < kSystems.size(); s++) {
      if (read_ms[p][s] <= 0 && write_ms[p][s] <= 0) continue;
      json.AddRow()
          .Str("system", kSystems[s])
          .Int("load_pct", kPercentages[p])
          .Num("read_latency_ms", read_ms[p][s])
          .Num("write_latency_ms", write_ms[p][s]);
    }
  }
  if (!json.empty()) {
    Status status = json.WriteFile();
    if (!status.ok()) {
      fprintf(stderr, "[warn] write %s: %s\n", json.path().c_str(),
              status.ToString().c_str());
    } else {
      printf("\nresults written to %s\n", json.path().c_str());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> series_paths;
  Properties args;
  for (int i = 1; i < argc; i++) {
    std::string arg = argv[i];
    if (arg.rfind("series=", 0) == 0) {
      series_paths.push_back(arg.substr(7));
    } else if (!args.ParseArg(arg).ok()) {
      fprintf(stderr,
              "usage: %s [series=run.json ...] | [store=<name> "
              "[workload=R] [records=N] [threads=N] [seconds=S] "
              "[warmup=S] [interval=S] [out=prefix]]\n",
              argv[0]);
      return 2;
    }
  }
  if (!series_paths.empty()) return RunSeriesMode(series_paths);
  if (args.Contains("store")) return RunRealSweep(args);
  return RunSimMode();
}
