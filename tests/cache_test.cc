// Unit tests for the sharded ref-counted LRU cache (common/cache.h): the
// capacity/charge accounting, the pinning contract (pinned entries are
// never freed under a reader and stay charged), per-owner eviction, the
// stats counters, and a multi-threaded hammer test that TSan/ASan CI
// runs with sanitizers enabled.

#include "common/cache.h"

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "gtest/gtest.h"

namespace apmbench {
namespace {

// A cache value that reports its deletion through a shared flag, so
// tests can observe exactly when the last reference drops.
struct TrackedValue {
  std::atomic<int>* deletions;
  int id;
};

void DeleteTracked(void* value) {
  auto* v = static_cast<TrackedValue*>(value);
  if (v->deletions != nullptr) {
    v->deletions->fetch_add(1, std::memory_order_relaxed);
  }
  delete v;
}

TrackedValue* NewTracked(std::atomic<int>* deletions, int id = 0) {
  return new TrackedValue{deletions, id};
}

TEST(CacheShardMapTest, HashIsDeterministicAndSpread) {
  EXPECT_EQ(CacheKeyHash(7, 42), CacheKeyHash(7, 42));
  EXPECT_NE(CacheKeyHash(7, 42), CacheKeyHash(7, 43));
  EXPECT_NE(CacheKeyHash(7, 42), CacheKeyHash(8, 42));
  // bits == 0 must be safe (shift-by-32 is UB if special-cased wrong).
  EXPECT_EQ(CacheShardOf(0xffffffffu, 0), 0u);
  for (int bits = 1; bits <= 8; bits++) {
    uint32_t shards = 1u << bits;
    for (uint64_t k = 0; k < 64; k++) {
      EXPECT_LT(CacheShardOf(CacheKeyHash(k, k * 13), bits), shards);
    }
  }
}

TEST(ShardedLRUCacheTest, CapacityAccountingAndEviction) {
  std::atomic<int> deletions{0};
  ShardedLRUCache cache(100, /*shard_bits=*/0);
  for (int i = 0; i < 4; i++) {
    auto* h = cache.Insert(1, static_cast<uint64_t>(i),
                           NewTracked(&deletions, i), 40, DeleteTracked);
    cache.Release(h);
  }
  // 4 * 40 = 160 > 100: the two oldest entries were evicted.
  EXPECT_LE(cache.charge(), 100u);
  EXPECT_EQ(cache.evictions(), 2u);
  EXPECT_EQ(deletions.load(), 2);
  EXPECT_EQ(cache.Lookup(1, 0), nullptr);
  EXPECT_EQ(cache.Lookup(1, 1), nullptr);
  for (uint64_t off = 2; off < 4; off++) {
    auto* h = cache.Lookup(1, off);
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(static_cast<TrackedValue*>(ShardedLRUCache::Value(h))->id,
              static_cast<int>(off));
    cache.Release(h);
  }
}

TEST(ShardedLRUCacheTest, LookupRefreshesLruOrder) {
  ShardedLRUCache cache(100, /*shard_bits=*/0);
  for (uint64_t off = 0; off < 2; off++) {
    cache.Release(
        cache.Insert(1, off, NewTracked(nullptr), 40, DeleteTracked));
  }
  // Touch offset 0 so offset 1 becomes the LRU victim.
  cache.Release(cache.Lookup(1, 0));
  cache.Release(cache.Insert(1, 2, NewTracked(nullptr), 40, DeleteTracked));
  auto* survivor = cache.Lookup(1, 0);
  EXPECT_NE(survivor, nullptr);            // survived
  cache.Release(survivor);
  EXPECT_EQ(cache.Lookup(1, 1), nullptr);  // evicted
}

TEST(ShardedLRUCacheTest, PinnedEntriesSurviveEvictionAndStayCharged) {
  std::atomic<int> deletions{0};
  ShardedLRUCache cache(100, /*shard_bits=*/0);
  ShardedLRUCache::Handle* pinned =
      cache.Insert(1, 0, NewTracked(&deletions, 0), 60, DeleteTracked);
  // Blow past capacity: the pinned entry must not be freed, and it keeps
  // counting against the budget while other entries churn.
  for (int i = 1; i <= 5; i++) {
    cache.Release(cache.Insert(1, static_cast<uint64_t>(i),
                               NewTracked(&deletions, i), 60, DeleteTracked));
  }
  EXPECT_EQ(static_cast<TrackedValue*>(ShardedLRUCache::Value(pinned))->id, 0);
  EXPECT_GE(cache.charge(), 60u);
  EXPECT_EQ(cache.Lookup(1, 0), pinned);  // still cached
  // The unpinned churn could not all fit around the pinned 60 bytes:
  // ids 1..4 were evicted, only the newest (id 5) is still resident.
  EXPECT_EQ(deletions.load(), 4);
  cache.Release(pinned);  // lookup's ref
  cache.Release(pinned);  // insert's ref
  // Releasing a pin returns the entry to the LRU list, still cached;
  // over-budget usage is trimmed by the *next* insert, not by Release.
  auto* again = cache.Lookup(1, 0);
  ASSERT_NE(again, nullptr);
  EXPECT_EQ(static_cast<TrackedValue*>(ShardedLRUCache::Value(again))->id, 0);
  cache.Release(again);
  cache.Release(cache.Insert(1, 6, NewTracked(&deletions, 6), 60,
                             DeleteTracked));
  EXPECT_LE(cache.charge(), 100u);
  EXPECT_GT(deletions.load(), 4);
}

TEST(ShardedLRUCacheTest, EraseKeepsPinnedReadersAlive) {
  std::atomic<int> deletions{0};
  ShardedLRUCache cache(1024, /*shard_bits=*/2);
  ShardedLRUCache::Handle* h =
      cache.Insert(3, 9, NewTracked(&deletions, 7), 10, DeleteTracked);
  cache.Erase(3, 9);
  EXPECT_EQ(cache.Lookup(3, 9), nullptr);
  // The reader's pin outlives the erase; the deleter runs on Release.
  EXPECT_EQ(static_cast<TrackedValue*>(ShardedLRUCache::Value(h))->id, 7);
  EXPECT_EQ(deletions.load(), 0);
  cache.Release(h);
  EXPECT_EQ(deletions.load(), 1);
}

TEST(ShardedLRUCacheTest, EvictOwnerDropsAllOfThatOwner) {
  std::atomic<int> deletions{0};
  ShardedLRUCache cache(1 << 20, /*shard_bits=*/4);
  for (uint64_t off = 0; off < 32; off++) {
    cache.Release(
        cache.Insert(5, off, NewTracked(&deletions), 10, DeleteTracked));
    cache.Release(
        cache.Insert(6, off, NewTracked(&deletions), 10, DeleteTracked));
  }
  cache.EvictOwner(5);
  EXPECT_EQ(deletions.load(), 32);
  for (uint64_t off = 0; off < 32; off++) {
    EXPECT_EQ(cache.Lookup(5, off), nullptr);
    auto* h = cache.Lookup(6, off);
    ASSERT_NE(h, nullptr);
    cache.Release(h);
  }
  EXPECT_EQ(cache.charge(), 32u * 10u);
}

TEST(ShardedLRUCacheTest, ZeroCapacityStillPinsButNeverRetains) {
  std::atomic<int> deletions{0};
  ShardedLRUCache cache(0, /*shard_bits=*/0);
  ShardedLRUCache::Handle* h =
      cache.Insert(1, 0, NewTracked(&deletions, 1), 10, DeleteTracked);
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(static_cast<TrackedValue*>(ShardedLRUCache::Value(h))->id, 1);
  cache.Release(h);
  EXPECT_EQ(deletions.load(), 1);
  EXPECT_EQ(cache.Lookup(1, 0), nullptr);
  EXPECT_EQ(cache.charge(), 0u);
}

TEST(ShardedLRUCacheTest, HitMissCountersTrackLookups) {
  ShardedLRUCache cache(1024, /*shard_bits=*/1);
  EXPECT_EQ(cache.Lookup(1, 0), nullptr);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
  cache.Release(cache.Insert(1, 0, NewTracked(nullptr), 10, DeleteTracked));
  for (int i = 0; i < 3; i++) {
    auto* h = cache.Lookup(1, 0);
    ASSERT_NE(h, nullptr);
    cache.Release(h);
  }
  EXPECT_EQ(cache.hits(), 3u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.evictions(), 0u);
}

TEST(ShardedLRUCacheTest, InsertReplacesExistingKey) {
  std::atomic<int> deletions{0};
  ShardedLRUCache cache(1024, /*shard_bits=*/0);
  ShardedLRUCache::Handle* old_pin =
      cache.Insert(1, 0, NewTracked(&deletions, 1), 10, DeleteTracked);
  cache.Release(cache.Insert(1, 0, NewTracked(&deletions, 2), 10,
                             DeleteTracked));
  // The reader that pinned the first version still sees it...
  EXPECT_EQ(static_cast<TrackedValue*>(ShardedLRUCache::Value(old_pin))->id,
            1);
  // ...while new lookups get the replacement.
  auto* h = cache.Lookup(1, 0);
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(static_cast<TrackedValue*>(ShardedLRUCache::Value(h))->id, 2);
  cache.Release(h);
  EXPECT_EQ(deletions.load(), 0);
  cache.Release(old_pin);
  EXPECT_EQ(deletions.load(), 1);
}

// Many threads insert / look up / erase / evict-owner over a small hot
// key range on a capacity-constrained cache. Run under TSan this is the
// shard-lock and refcount torture test; under any build the final
// deletion count must match exactly (no double-free, no leak).
TEST(ShardedLRUCacheTest, MultiThreadedHammer) {
  std::atomic<int> deletions{0};
  std::atomic<int> creations{0};
  ShardedLRUCache cache(64 * 10, /*shard_bits=*/4);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 4000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t]() {
      Random rng(static_cast<uint32_t>(t + 1));
      for (int i = 0; i < kOpsPerThread; i++) {
        uint64_t owner = rng.Uniform(4);
        uint64_t offset = rng.Uniform(32);
        uint32_t op = rng.Uniform(100);
        if (op < 45) {
          auto* h = cache.Lookup(owner, offset);
          if (h != nullptr) {
            auto* v = static_cast<TrackedValue*>(ShardedLRUCache::Value(h));
            EXPECT_GE(v->id, 0);
            cache.Release(h);
          }
        } else if (op < 90) {
          creations.fetch_add(1, std::memory_order_relaxed);
          auto* h = cache.Insert(owner, offset,
                                 NewTracked(&deletions, static_cast<int>(i)),
                                 10, DeleteTracked);
          cache.Release(h);
        } else if (op < 97) {
          cache.Erase(owner, offset);
        } else {
          cache.EvictOwner(owner);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_LE(cache.charge(), 64u * 10u);
  // Drain what's left; afterwards every created value must be deleted.
  for (uint64_t owner = 0; owner < 4; owner++) cache.EvictOwner(owner);
  EXPECT_EQ(deletions.load(), creations.load());
  EXPECT_EQ(cache.charge(), 0u);
}

}  // namespace
}  // namespace apmbench
