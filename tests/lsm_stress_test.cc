// Randomized stress / model-check suite for the LSM engine's concurrent
// write path: N writer threads (puts, deletes, atomic pair batches) run
// against disjoint key ranges while readers and snapshot scanners race
// them and the background flush thread + compaction pool churn
// continuously (tiny memtable, low compaction triggers, admission
// control enabled). Each writer keeps a reference map of what it wrote;
// at the end the DB must agree with the merged model exactly — before
// and after a reopen. Scanners additionally check two snapshot
// invariants on every pass: keys are strictly ordered, and pair keys
// written by one WriteBatch are visible atomically (both or neither,
// with equal versions).
//
// The binary has its own main() so CI can bound it: --fast shrinks the
// op counts for sanitizer runs, --seed=N reseeds the generators for
// reproduction.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/env.h"
#include "lsm/db.h"

namespace apmbench {
namespace {

bool g_fast = false;
uint32_t g_seed = 20120831;  // VLDB'12 vintage

class ScopedTempDir {
 public:
  explicit ScopedTempDir(const std::string& tag) {
    char buf[256];
    snprintf(buf, sizeof(buf), "/tmp/apmbench-%s-XXXXXX", tag.c_str());
    char* result = mkdtemp(buf);
    path_ = result != nullptr ? result : "/tmp/apmbench-stress-fallback";
  }
  ~ScopedTempDir() { Env::Default()->RemoveDirRecursively(path_); }
  ScopedTempDir(const ScopedTempDir&) = delete;
  ScopedTempDir& operator=(const ScopedTempDir&) = delete;
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

constexpr int kNumWriters = 4;
constexpr int kNumReaders = 2;
constexpr int kKeysPerWriter = 64;
constexpr int kPairsPerWriter = 16;

int OpsPerWriter() { return g_fast ? 400 : 3000; }

std::string PlainKey(int writer, int slot) {
  char buf[32];
  snprintf(buf, sizeof(buf), "w%d.k%04d", writer, slot);
  return buf;
}

std::string PairBase(int writer, int pair) {
  char buf[32];
  snprintf(buf, sizeof(buf), "w%d.p%04d", writer, pair);
  return buf;
}

std::string PlainValue(const std::string& key, int op) {
  char buf[96];
  snprintf(buf, sizeof(buf), "v:%s:%06d", key.c_str(), op);
  return buf;
}

std::string PairValue(const std::string& base, int version) {
  char buf[96];
  snprintf(buf, sizeof(buf), "p:%s:%06d", base.c_str(), version);
  return buf;
}

/// Everything one writer thread did, for the final model comparison.
struct WriterModel {
  std::map<std::string, std::string> live;  // expected present keys
  std::set<std::string> touched;            // every key ever written
};

void WriterThread(lsm::DB* db, int id, uint32_t seed, WriterModel* model,
                  std::atomic<bool>* failed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> op_dist(0, 99);
  std::uniform_int_distribution<int> slot_dist(0, kKeysPerWriter - 1);
  std::uniform_int_distribution<int> pair_dist(0, kPairsPerWriter - 1);
  const int ops = OpsPerWriter();
  for (int op = 0; op < ops && !failed->load(); op++) {
    int dice = op_dist(rng);
    Status s;
    if (dice < 50) {
      // Put one key.
      std::string key = PlainKey(id, slot_dist(rng));
      std::string value = PlainValue(key, op);
      s = db->Put(key, value);
      if (s.ok()) {
        model->live[key] = value;
        model->touched.insert(key);
      }
    } else if (dice < 70) {
      // Delete one key (possibly never written — still a valid op).
      std::string key = PlainKey(id, slot_dist(rng));
      s = db->Delete(key);
      if (s.ok()) {
        model->live.erase(key);
        model->touched.insert(key);
      }
    } else {
      // Atomic pair batch: both halves carry the same version and are
      // written (or deleted) in one WriteBatch, so no reader snapshot
      // may ever observe them out of step.
      std::string base = PairBase(id, pair_dist(rng));
      std::string a = base + ".a";
      std::string b = base + ".b";
      lsm::WriteBatch batch;
      if (dice < 95) {
        std::string value = PairValue(base, op);
        batch.Put(a, value);
        batch.Put(b, value);
        s = db->Write(batch);
        if (s.ok()) {
          model->live[a] = value;
          model->live[b] = value;
        }
      } else {
        batch.Delete(a);
        batch.Delete(b);
        s = db->Write(batch);
        if (s.ok()) {
          model->live.erase(a);
          model->live.erase(b);
        }
      }
      model->touched.insert(a);
      model->touched.insert(b);
    }
    if (!s.ok()) {
      ADD_FAILURE() << "writer " << id << " op " << op
                    << " failed: " << s.ToString();
      failed->store(true);
      return;
    }
  }
}

/// Readers race the writers with point lookups; any value returned must
/// be well-formed and bound to the key it was read under.
void ReaderThread(lsm::DB* db, uint32_t seed, std::atomic<bool>* stop,
                  std::atomic<bool>* failed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> writer_dist(0, kNumWriters - 1);
  std::uniform_int_distribution<int> slot_dist(0, kKeysPerWriter - 1);
  std::uniform_int_distribution<int> pair_dist(0, kPairsPerWriter - 1);
  std::uniform_int_distribution<int> kind_dist(0, 2);
  while (!stop->load() && !failed->load()) {
    int w = writer_dist(rng);
    std::string key;
    std::string expected_prefix;
    int kind = kind_dist(rng);
    if (kind == 0) {
      key = PlainKey(w, slot_dist(rng));
      expected_prefix = "v:" + key + ":";
    } else {
      std::string base = PairBase(w, pair_dist(rng));
      key = base + (kind == 1 ? ".a" : ".b");
      expected_prefix = "p:" + base + ":";
    }
    std::string value;
    Status s = db->Get(lsm::ReadOptions(), key, &value);
    if (s.ok()) {
      if (value.compare(0, expected_prefix.size(), expected_prefix) != 0) {
        ADD_FAILURE() << "malformed value for " << key << ": " << value;
        failed->store(true);
      }
    } else if (!s.IsNotFound()) {
      ADD_FAILURE() << "Get(" << key << ") failed: " << s.ToString();
      failed->store(true);
    }
  }
}

/// One full pass over a snapshot iterator, checking strict key ordering
/// and pair atomicity. Returns false (and reports) on violation.
bool CheckSnapshot(lsm::DB* db) {
  std::unique_ptr<lsm::Iterator> iter =
      db->NewSnapshotIterator(lsm::ReadOptions());
  std::string last_key;
  // base -> (version of .a, version of .b)
  std::map<std::string, std::pair<std::string, std::string>> pairs;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    std::string key = iter->key().ToString();
    if (!last_key.empty() && key <= last_key) {
      ADD_FAILURE() << "snapshot order violation: " << last_key
                    << " then " << key;
      return false;
    }
    last_key = key;
    std::string value = iter->value().ToString();
    size_t n = key.size();
    if (n > 2 && key.compare(n - 2, 2, ".a") == 0) {
      pairs[key.substr(0, n - 2)].first = value;
    } else if (n > 2 && key.compare(n - 2, 2, ".b") == 0) {
      pairs[key.substr(0, n - 2)].second = value;
    }
  }
  if (!iter->status().ok()) {
    ADD_FAILURE() << "snapshot iteration failed: "
                  << iter->status().ToString();
    return false;
  }
  for (const auto& [base, versions] : pairs) {
    if (versions.first != versions.second) {
      ADD_FAILURE() << "pair atomicity violation for " << base << ": a=\""
                    << versions.first << "\" b=\"" << versions.second << "\"";
      return false;
    }
  }
  return true;
}

void ScannerThread(lsm::DB* db, std::atomic<bool>* stop,
                   std::atomic<bool>* failed) {
  while (!stop->load() && !failed->load()) {
    if (!CheckSnapshot(db)) {
      failed->store(true);
      return;
    }
  }
}

/// Verifies the DB agrees with the merged writer models: every live key
/// has its newest value, every deleted/never-written key is NotFound,
/// and a full snapshot scan contains exactly the live set.
void VerifyAgainstModel(lsm::DB* db,
                        const std::vector<WriterModel>& models) {
  std::map<std::string, std::string> live;
  size_t touched = 0;
  for (const auto& model : models) {
    live.insert(model.live.begin(), model.live.end());
    touched += model.touched.size();
    for (const auto& key : model.touched) {
      std::string value;
      Status s = db->Get(lsm::ReadOptions(), key, &value);
      auto it = model.live.find(key);
      if (it != model.live.end()) {
        ASSERT_TRUE(s.ok()) << "missing live key " << key << ": "
                            << s.ToString();
        EXPECT_EQ(value, it->second) << "stale value for " << key;
      } else {
        EXPECT_TRUE(s.IsNotFound())
            << "deleted key " << key << " resurrected (" << s.ToString()
            << ", value \"" << value << "\")";
      }
    }
  }
  ASSERT_GT(touched, 0u);

  std::unique_ptr<lsm::Iterator> iter =
      db->NewSnapshotIterator(lsm::ReadOptions());
  size_t scanned = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    std::string key = iter->key().ToString();
    auto it = live.find(key);
    ASSERT_TRUE(it != live.end()) << "scan surfaced unexpected key " << key;
    EXPECT_EQ(iter->value().ToString(), it->second);
    scanned++;
  }
  ASSERT_TRUE(iter->status().ok());
  EXPECT_EQ(scanned, live.size());
}

void RunStress(lsm::Options options, const std::string& tag) {
  ScopedTempDir dir(tag);
  options.dir = dir.path();
  std::unique_ptr<lsm::DB> db;
  ASSERT_TRUE(lsm::DB::Open(options, &db).ok());

  std::vector<WriterModel> models(kNumWriters);
  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};
  std::vector<std::thread> writers;
  for (int i = 0; i < kNumWriters; i++) {
    writers.emplace_back(WriterThread, db.get(), i, g_seed * 97 + i,
                         &models[i], &failed);
  }
  std::vector<std::thread> readers;
  for (int i = 0; i < kNumReaders; i++) {
    readers.emplace_back(ReaderThread, db.get(), g_seed * 131 + i, &stop,
                         &failed);
  }
  std::thread scanner(ScannerThread, db.get(), &stop, &failed);

  for (auto& t : writers) t.join();
  stop.store(true);
  for (auto& t : readers) t.join();
  scanner.join();
  ASSERT_FALSE(failed.load());

  // Quiesce: flush the tail, then check the final state three ways —
  // live DB vs model, integrity scrub, and again after a reopen so
  // recovery is covered too.
  ASSERT_TRUE(db->Flush().ok());
  EXPECT_TRUE(CheckSnapshot(db.get()));
  VerifyAgainstModel(db.get(), models);
  lsm::DB::Stats stats = db->GetStats();
  EXPECT_GT(stats.num_flushes, 0u);
  EXPECT_GT(stats.num_compactions, 0u);
  ASSERT_TRUE(db->VerifyIntegrity().ok());
  ASSERT_TRUE(db->Close().ok());
  db.reset();

  ASSERT_TRUE(lsm::DB::Open(options, &db).ok());
  VerifyAgainstModel(db.get(), models);
  ASSERT_TRUE(db->VerifyIntegrity().ok());
  ASSERT_TRUE(db->Close().ok());
}

lsm::Options StressOptions() {
  lsm::Options options;
  // Tiny memtable: every few dozen writes rotate the WAL and flush, so
  // the run exercises hundreds of flushes and continuous compaction.
  options.memtable_bytes = 2 * 1024;
  options.block_cache_bytes = 256 * 1024;
  options.compaction_threads = 3;
  options.level0_slowdown_trigger = 6;
  options.level0_stop_trigger = 12;
  return options;
}

TEST(LsmStressTest, SizeTiered) {
  lsm::Options options = StressOptions();
  options.compaction_style = lsm::CompactionStyle::kSizeTiered;
  options.size_tiered_min_files = 4;
  RunStress(options, "stress-tiered");
}

TEST(LsmStressTest, Leveled) {
  lsm::Options options = StressOptions();
  options.compaction_style = lsm::CompactionStyle::kLeveled;
  options.level0_compaction_trigger = 3;
  options.level1_max_bytes = 64 * 1024;  // force multi-level movement
  options.subcompactions = 2;
  RunStress(options, "stress-leveled");
}

TEST(LsmStressTest, FormatV2PrefixBloom) {
  lsm::Options options = StressOptions();
  options.compaction_style = lsm::CompactionStyle::kLeveled;
  options.level0_compaction_trigger = 3;
  // Exercise the v2 writer with an aggressive restart interval (more
  // restart-boundary seeks per block) and the prefix bloom build path on
  // every flush and compaction.
  options.format_version = 2;
  options.block_restart_interval = 4;
  options.prefix_bloom_length = 3;
  options.arena_block_bytes = 1024;
  RunStress(options, "stress-v2-prefix");
}

TEST(LsmStressTest, ShardedMemtable) {
  // Eight memtable shards under constant rotation: every group commit
  // fans its rows across the shard skiplists (parallel apply when
  // writers queue up), every rotation gathers all eight shards into one
  // SSTable, and readers k-way-merge the shard runs mid-write. The
  // write buffer is 8KiB rather than StressOptions' 2KiB — the minimum
  // budget that keeps all eight shards effective (DB::Open halves the
  // count below 1KiB/shard) while still flushing every few dozen rows.
  lsm::Options options = StressOptions();
  options.memtable_bytes = 8 * 1024;
  options.compaction_style = lsm::CompactionStyle::kSizeTiered;
  options.size_tiered_min_files = 4;
  options.memtable_shards = 8;
  RunStress(options, "stress-shards");
}

TEST(LsmStressTest, SingleShardMemtable) {
  // memtable_shards=1 compiles down to the pre-shard engine (no hash
  // routing, no merge layer, serial group apply) and must pass the same
  // workload.
  lsm::Options options = StressOptions();
  options.compaction_style = lsm::CompactionStyle::kLeveled;
  options.level0_compaction_trigger = 3;
  options.memtable_shards = 1;
  RunStress(options, "stress-single-shard");
}

TEST(LsmStressTest, LeveledSyncWrites) {
  lsm::Options options = StressOptions();
  options.compaction_style = lsm::CompactionStyle::kLeveled;
  options.level0_compaction_trigger = 3;
  options.sync_writes = true;
  RunStress(options, "stress-sync");
}

}  // namespace
}  // namespace apmbench

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--fast") == 0) {
      apmbench::g_fast = true;
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      apmbench::g_seed = static_cast<uint32_t>(std::atoi(argv[i] + 7));
    }
  }
  return RUN_ALL_TESTS();
}
