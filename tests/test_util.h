#ifndef APMBENCH_TESTS_TEST_UTIL_H_
#define APMBENCH_TESTS_TEST_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/env.h"
#include "ycsb/db.h"

namespace apmbench::testutil {

/// Creates a unique scratch directory under the system temp dir and
/// removes it (recursively) on destruction.
class ScopedTempDir {
 public:
  explicit ScopedTempDir(const std::string& tag) {
    char buf[256];
    snprintf(buf, sizeof(buf), "/tmp/apmbench-%s-XXXXXX", tag.c_str());
    char* result = mkdtemp(buf);
    path_ = result != nullptr ? result : "/tmp/apmbench-fallback";
  }
  ~ScopedTempDir() { Env::Default()->RemoveDirRecursively(path_); }

  ScopedTempDir(const ScopedTempDir&) = delete;
  ScopedTempDir& operator=(const ScopedTempDir&) = delete;

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// A trivially correct reference DB (ordered map + mutex) used to test the
/// YCSB framework and as the model in property tests. Derivable so tests
/// can wrap operations with fault/stall injection.
class BasicDB : public ycsb::DB {
 public:
  Status Read(const std::string& table, const Slice& key,
              ycsb::Record* record) override {
    (void)table;
    std::lock_guard<std::mutex> lock(mu_);
    auto it = data_.find(key.ToString());
    if (it == data_.end()) return Status::NotFound();
    *record = it->second;
    return Status::OK();
  }

  Status ScanKeyed(const std::string& table, const Slice& start_key,
                   int count,
                   std::vector<ycsb::KeyedRecord>* records) override {
    (void)table;
    records->clear();
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = data_.lower_bound(start_key.ToString());
         it != data_.end() && static_cast<int>(records->size()) < count;
         ++it) {
      records->push_back(ycsb::KeyedRecord{it->first, it->second});
    }
    return Status::OK();
  }

  Status Insert(const std::string& table, const Slice& key,
                const ycsb::Record& record) override {
    (void)table;
    std::lock_guard<std::mutex> lock(mu_);
    data_[key.ToString()] = record;
    return Status::OK();
  }

  Status Update(const std::string& table, const Slice& key,
                const ycsb::Record& record) override {
    return Insert(table, key, record);
  }

  Status Delete(const std::string& table, const Slice& key) override {
    (void)table;
    std::lock_guard<std::mutex> lock(mu_);
    return data_.erase(key.ToString()) > 0 ? Status::OK()
                                           : Status::NotFound();
  }

  size_t size() {
    std::lock_guard<std::mutex> lock(mu_);
    return data_.size();
  }

 private:
  std::mutex mu_;
  std::map<std::string, ycsb::Record> data_;
};

}  // namespace apmbench::testutil

#endif  // APMBENCH_TESTS_TEST_UTIL_H_
