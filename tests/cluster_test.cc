#include "cluster/routing.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <string>
#include <vector>

#include "cluster/hints.h"
#include "cluster/membership.h"
#include "common/fault_env.h"
#include "common/random.h"
#include "stores/cassandra_store.h"
#include "tests/test_util.h"

namespace apmbench::cluster {
namespace {

std::vector<int> RouteMany(const std::function<int(const Slice&)>& route,
                           int num_targets, int num_keys) {
  std::vector<int> counts(static_cast<size_t>(num_targets), 0);
  for (int i = 0; i < num_keys; i++) {
    std::string key = "user" + std::to_string(i * 2654435761u);
    int target = route(key);
    EXPECT_GE(target, 0);
    EXPECT_LT(target, num_targets);
    counts[static_cast<size_t>(target)]++;
  }
  return counts;
}

double MaxOverMin(const std::vector<int>& counts) {
  auto [min_it, max_it] = std::minmax_element(counts.begin(), counts.end());
  return *min_it == 0 ? 1e9
                      : static_cast<double>(*max_it) /
                            static_cast<double>(*min_it);
}

TEST(TokenRingTest, BalancedTokensBalanceKeys) {
  TokenRing ring(12, TokenRing::TokenAssignment::kBalanced, 1);
  auto counts =
      RouteMany([&](const Slice& k) { return ring.Route(k); }, 12, 60000);
  EXPECT_LT(MaxOverMin(counts), 1.25);
  auto shares = ring.OwnershipShares();
  for (double share : shares) {
    EXPECT_NEAR(share, 1.0 / 12, 1e-9);
  }
  double total = std::accumulate(shares.begin(), shares.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-6);
}

TEST(TokenRingTest, RandomTokensSkewOwnership) {
  // The paper: default random tokens "frequently resulted in a highly
  // unbalanced workload". Across seeds, random assignment should show
  // clearly more skew than balanced.
  double worst = 0;
  for (uint64_t seed = 1; seed <= 8; seed++) {
    TokenRing ring(12, TokenRing::TokenAssignment::kRandom, seed);
    auto shares = ring.OwnershipShares();
    auto [min_it, max_it] = std::minmax_element(shares.begin(), shares.end());
    worst = std::max(worst, *max_it / *min_it);
    double total = std::accumulate(shares.begin(), shares.end(), 0.0);
    EXPECT_NEAR(total, 1.0, 1e-6);
  }
  EXPECT_GT(worst, 2.0);
}

TEST(TokenRingTest, ReplicasAreDistinct) {
  TokenRing ring(6, TokenRing::TokenAssignment::kBalanced, 1);
  for (int i = 0; i < 200; i++) {
    auto replicas = ring.RouteReplicas("key" + std::to_string(i), 3);
    ASSERT_EQ(replicas.size(), 3u);
    EXPECT_EQ(replicas[0], ring.Route("key" + std::to_string(i)));
    std::sort(replicas.begin(), replicas.end());
    EXPECT_EQ(std::unique(replicas.begin(), replicas.end()), replicas.end());
  }
  // Replication factor capped at cluster size.
  auto all = ring.RouteReplicas("k", 99);
  EXPECT_EQ(all.size(), 6u);
}

TEST(JedisShardRingTest, RoutingDeterministic) {
  JedisShardRing ring(12);
  for (int i = 0; i < 100; i++) {
    std::string key = "user" + std::to_string(i);
    EXPECT_EQ(ring.Route(key), ring.Route(key));
  }
}

TEST(JedisShardRingTest, SharesAreImbalanced) {
  // The central reproduction claim for Redis: the Jedis ring leaves the
  // 12-instance deployment measurably unbalanced (one node ran out of
  // memory in the paper).
  JedisShardRing ring(12);
  auto shares = ring.OwnershipShares();
  double total = std::accumulate(shares.begin(), shares.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-6);
  auto [min_it, max_it] = std::minmax_element(shares.begin(), shares.end());
  // 160 virtual nodes give ~1/sqrt(160) ≈ 8% std dev; max/min around
  // 1.3-2x is expected, near-perfect balance is not.
  EXPECT_GT(*max_it / *min_it, 1.15);
  EXPECT_LT(*max_it / *min_it, 4.0);
}

TEST(JedisShardRingTest, KeyRoutingMatchesOwnershipShares) {
  JedisShardRing ring(12);
  auto counts =
      RouteMany([&](const Slice& k) { return ring.Route(k); }, 12, 120000);
  auto shares = ring.OwnershipShares();
  for (int i = 0; i < 12; i++) {
    double observed =
        static_cast<double>(counts[static_cast<size_t>(i)]) / 120000;
    EXPECT_NEAR(observed, shares[static_cast<size_t>(i)], 0.01) << i;
  }
}

TEST(ModuloSharderTest, NearPerfectBalance) {
  ModuloSharder sharder(12);
  auto counts =
      RouteMany([&](const Slice& k) { return sharder.Route(k); }, 12, 60000);
  EXPECT_LT(MaxOverMin(counts), 1.1);
}

TEST(RegionMapTest, RegionOfAndRoute) {
  RegionMap regions({"g", "n", "t"}, 2);
  EXPECT_EQ(regions.num_regions(), 4);
  EXPECT_EQ(regions.RegionOf("a"), 0);
  EXPECT_EQ(regions.RegionOf("g"), 1);  // boundary is first key of next
  EXPECT_EQ(regions.RegionOf("m"), 1);
  EXPECT_EQ(regions.RegionOf("n"), 2);
  EXPECT_EQ(regions.RegionOf("z"), 3);
  EXPECT_EQ(regions.Route("a"), 0);
  EXPECT_EQ(regions.Route("m"), 1);
  EXPECT_EQ(regions.Route("n"), 0);
  EXPECT_EQ(regions.RegionEndKey(0), "g");
  EXPECT_EQ(regions.RegionEndKey(3), "");
}

TEST(RegionMapTest, FromSampleBalances) {
  std::vector<std::string> sample;
  Random rng(9);
  for (int i = 0; i < 10000; i++) {
    sample.push_back("user" + std::to_string(rng.Next()));
  }
  RegionMap regions = RegionMap::FromSample(sample, 24, 4);
  auto counts = RouteMany([&](const Slice& k) { return regions.Route(k); },
                          4, 40000);
  EXPECT_LT(MaxOverMin(counts), 1.5);
}

TEST(RegionMapTest, ScanServersCoverBoundary) {
  RegionMap regions({"g", "n", "t"}, 2);
  auto servers = regions.RouteScan("f");  // near end of region 0
  ASSERT_GE(servers.size(), 1u);
  EXPECT_EQ(servers[0], 0);
  // Next region (1) is on server 1.
  ASSERT_EQ(servers.size(), 2u);
  EXPECT_EQ(servers[1], 1);
}

TEST(RegionMapTest, ScanCrossingManyBoundariesCoversAllServers) {
  // Regression: a scan that crosses two or more region boundaries must
  // return every server hosting a touched region. The pre-fix RouteScan
  // returned only the start region's server plus one next region, so a
  // scan from region 0 over regions {0..5} on 3 servers silently missed
  // server 2 (regions 2 and 5) — verified failing before the fix.
  RegionMap regions({"b", "c", "d", "e", "f"}, 3);  // 6 regions, 3 servers
  ASSERT_EQ(regions.num_regions(), 6);
  // Unbounded scan from the first region touches every region, so every
  // server must appear.
  auto servers = regions.RouteScan("a");
  EXPECT_EQ(servers.size(), 3u) << "unbounded scan must cover all servers";
  std::vector<int> sorted = servers;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<int>{0, 1, 2}));
  // First server is still the start region's host.
  EXPECT_EQ(servers[0], 0);
}

TEST(PartitionRingTest, TwoPartitionsPerNodeBalance) {
  PartitionRing ring(12, 2, 3);
  EXPECT_EQ(ring.num_partitions(), 24);
  auto counts =
      RouteMany([&](const Slice& k) { return ring.Route(k); }, 12, 60000);
  EXPECT_LT(MaxOverMin(counts), 1.3);
  auto shares = ring.OwnershipShares();
  double total = std::accumulate(shares.begin(), shares.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-6);
}

TEST(PartitionRingTest, PartitionToNodeStriping) {
  PartitionRing ring(4, 2, 1);
  for (int p = 0; p < 8; p++) {
    EXPECT_EQ(ring.NodeOfPartition(p), p % 4);
  }
}

TEST(MembershipTest, ErrorThresholdMarksDownThenProbationThenUp) {
  uint64_t now = 1000;
  MembershipOptions options;
  options.error_threshold = 3;
  options.probation_micros = 500;
  options.now_micros = [&now]() { return now; };
  Membership membership(2, options);

  EXPECT_EQ(membership.StateOf(1), Membership::NodeState::kUp);
  membership.ReportError(1);
  membership.ReportError(1);
  EXPECT_TRUE(membership.IsLive(1)) << "below the threshold the node is up";
  membership.ReportError(1);
  EXPECT_EQ(membership.StateOf(1), Membership::NodeState::kDown);
  EXPECT_FALSE(membership.IsLive(1));
  EXPECT_FALSE(membership.TryClaimProbe(1)) << "probation has not elapsed";

  now += 499;
  EXPECT_EQ(membership.StateOf(1), Membership::NodeState::kDown);
  now += 1;
  EXPECT_EQ(membership.StateOf(1), Membership::NodeState::kProbation);
  EXPECT_TRUE(membership.TryClaimProbe(1));
  EXPECT_FALSE(membership.TryClaimProbe(1)) << "one probe per window";

  membership.ReportSuccess(1);
  EXPECT_EQ(membership.StateOf(1), Membership::NodeState::kUp);
  std::vector<int> recovered = membership.TakeRecovered();
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_EQ(recovered[0], 1);
  EXPECT_TRUE(membership.TakeRecovered().empty());

  Membership::Counters counters = membership.GetCounters();
  EXPECT_EQ(counters.transitions_down, 1u);
  EXPECT_EQ(counters.transitions_up, 1u);
  EXPECT_EQ(counters.probes_claimed, 1u);
}

TEST(MembershipTest, FailedProbeRestartsProbation) {
  uint64_t now = 0;
  MembershipOptions options;
  options.error_threshold = 1;
  options.probation_micros = 500;
  options.now_micros = [&now]() { return now; };
  Membership membership(1, options);

  membership.ReportError(0);
  now += 500;
  ASSERT_TRUE(membership.TryClaimProbe(0));
  membership.ReportError(0);  // the probe failed
  EXPECT_EQ(membership.StateOf(0), Membership::NodeState::kDown)
      << "a failed probe restarts the probation timer";
  now += 499;
  EXPECT_FALSE(membership.TryClaimProbe(0));
  now += 1;
  EXPECT_TRUE(membership.TryClaimProbe(0));
  EXPECT_EQ(membership.GetCounters().probes_claimed, 2u);
}

std::string HintToString(const HintLog::Hint& hint) {
  return (hint.op == HintLog::OpKind::kPut ? "put:" : "del:") +
         hint.key.ToString() + ":" + hint.value.ToString();
}

TEST(HintLogTest, AppendsReplayInOrderThenTruncate) {
  testutil::ScopedTempDir dir("hints");
  HintLog log(Env::Default(), dir.path() + "/node0.hints");
  ASSERT_TRUE(log.Open().ok());
  EXPECT_EQ(log.pending(), 0u);
  ASSERT_TRUE(log.Append(HintLog::OpKind::kPut, "k1", "v1").ok());
  ASSERT_TRUE(log.Append(HintLog::OpKind::kDelete, "k2", "").ok());
  ASSERT_TRUE(log.Append(HintLog::OpKind::kPut, "k1", "v2").ok());
  EXPECT_EQ(log.pending(), 3u);

  std::vector<std::string> applied;
  ASSERT_TRUE(log.Replay([&](const HintLog::Hint& hint) {
                   applied.push_back(HintToString(hint));
                   return Status::OK();
                 })
                  .ok());
  EXPECT_EQ(applied, (std::vector<std::string>{"put:k1:v1", "del:k2:",
                                               "put:k1:v2"}));
  EXPECT_EQ(log.pending(), 0u);
  EXPECT_FALSE(Env::Default()->FileExists(log.path()))
      << "a fully replayed queue is truncated";
  ASSERT_TRUE(log.Replay([&](const HintLog::Hint&) {
                   ADD_FAILURE() << "empty queue must not apply anything";
                   return Status::OK();
                 })
                  .ok());
}

TEST(HintLogTest, FailedReplayKeepsWholeQueueForIdempotentRetry) {
  testutil::ScopedTempDir dir("hints-retry");
  HintLog log(Env::Default(), dir.path() + "/node0.hints");
  ASSERT_TRUE(log.Open().ok());
  ASSERT_TRUE(log.Append(HintLog::OpKind::kPut, "a", "1").ok());
  ASSERT_TRUE(log.Append(HintLog::OpKind::kPut, "b", "2").ok());
  ASSERT_TRUE(log.Append(HintLog::OpKind::kDelete, "a", "").ok());

  int calls = 0;
  Status s = log.Replay([&](const HintLog::Hint&) {
    return ++calls == 2 ? Status::IOError("replica died mid-replay")
                        : Status::OK();
  });
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(log.pending(), 3u)
      << "a failed replay keeps the whole queue, not just the tail";

  // The retry re-applies from the start: replay is at-least-once, and the
  // hints (LWW puts, blind deletes, in order) make that idempotent.
  std::vector<std::string> applied;
  ASSERT_TRUE(log.Replay([&](const HintLog::Hint& hint) {
                   applied.push_back(HintToString(hint));
                   return Status::OK();
                 })
                  .ok());
  EXPECT_EQ(applied,
            (std::vector<std::string>{"put:a:1", "put:b:2", "del:a:"}));
  EXPECT_EQ(log.pending(), 0u);
}

TEST(HintLogTest, ReopenRecoversPendingHints) {
  testutil::ScopedTempDir dir("hints-reopen");
  const std::string path = dir.path() + "/node0.hints";
  {
    HintLog log(Env::Default(), path);
    ASSERT_TRUE(log.Open().ok());
    ASSERT_TRUE(log.Append(HintLog::OpKind::kPut, "a", "1").ok());
    ASSERT_TRUE(log.Append(HintLog::OpKind::kPut, "b", "2").ok());
  }
  HintLog log(Env::Default(), path);
  ASSERT_TRUE(log.Open().ok());
  EXPECT_EQ(log.pending(), 2u) << "hints are durable across restart";
  std::vector<std::string> applied;
  ASSERT_TRUE(log.Replay([&](const HintLog::Hint& hint) {
                   applied.push_back(HintToString(hint));
                   return Status::OK();
                 })
                  .ok());
  EXPECT_EQ(applied, (std::vector<std::string>{"put:a:1", "put:b:2"}));
}

}  // namespace
}  // namespace apmbench::cluster

namespace apmbench::stores {
namespace {

ycsb::Record FailoverRecord(int i) {
  return {{"field0", "value-" + std::to_string(i)},
          {"field1", std::string(40, static_cast<char>('a' + (i % 26)))}};
}

TEST(CassandraFailoverTest, PartialReplicaWriteAcksAndReadFailsOver) {
  // rf=3 on 4 nodes with one replica killed: the write must still be
  // acknowledged (two live replicas plus a durable hint for the dead
  // one) and the partial outcome must be visible to the caller; a read
  // of the key must fail over past the dead primary to a live replica.
  // Verified failing before the fix: Insert returned the first replica
  // error even though two replicas kept the write (silent divergence,
  // no partial-ack information), and Read consulted only
  // ring().Route(key), so it failed outright.
  testutil::ScopedTempDir dir("cass-failover");
  StoreOptions options;
  options.base_dir = dir.path();
  options.num_nodes = 4;
  options.replication_factor = 3;
  std::unique_ptr<CassandraStore> store;
  ASSERT_TRUE(CassandraStore::Open(options, &store).ok());

  const std::string key = "user000000000000000000042";
  std::vector<int> replicas = store->ring().RouteReplicas(key, 3);
  ASSERT_EQ(replicas.size(), 3u);
  store->KillNode(replicas[0]);

  EXPECT_TRUE(store->Insert("t", key, FailoverRecord(1)).ok())
      << "a 2-of-3 write with a durable hint must be acked";
  ycsb::Record record;
  EXPECT_TRUE(store->Read("t", key, &record).ok())
      << "read must fail over past the dead primary";
}

StoreOptions LifecycleOptions(const std::string& base_dir, int nodes,
                              int rf) {
  StoreOptions options;
  options.base_dir = base_dir;
  options.num_nodes = nodes;
  options.replication_factor = rf;
  // Down nodes become probe-able immediately: recovery in tests is driven
  // by explicit Revive + traffic, not wall-clock probation.
  options.membership_probation_micros = 0;
  return options;
}

std::string LifecycleKey(int i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "user%06d", i);
  return buf;
}

// First value of field0, or "" — enough to tell row versions apart.
std::string Field0(const ycsb::Record& record) {
  for (const auto& [name, value] : record) {
    if (name == "field0") return value;
  }
  return std::string();
}

TEST(CassandraFailoverTest, WriteReportShowsPartialReplicaOutcomes) {
  testutil::ScopedTempDir dir("cass-report");
  std::unique_ptr<CassandraStore> store;
  ASSERT_TRUE(
      CassandraStore::Open(LifecycleOptions(dir.path(), 4, 3), &store).ok());

  const std::string key = "user000000000000000000007";
  WriteReport report;
  ASSERT_TRUE(store->InsertWithReport("t", key, FailoverRecord(1), &report)
                  .ok());
  EXPECT_TRUE(report.fully_acked());
  EXPECT_EQ(report.acked, 3);

  std::vector<int> replicas = store->ring().RouteReplicas(key, 3);
  store->KillNode(replicas[0]);
  ASSERT_TRUE(store->InsertWithReport("t", key, FailoverRecord(2), &report)
                  .ok());
  EXPECT_EQ(report.acked, 2);
  EXPECT_EQ(report.hinted, 1);
  EXPECT_EQ(report.failed, 0);
  EXPECT_FALSE(report.fully_acked());
  ASSERT_EQ(report.replicas.size(), 3u);
  for (const ReplicaOutcome& outcome : report.replicas) {
    if (outcome.node == replicas[0]) {
      EXPECT_FALSE(outcome.status.ok());
      EXPECT_TRUE(outcome.hinted);
    } else {
      EXPECT_TRUE(outcome.status.ok());
      EXPECT_FALSE(outcome.hinted);
    }
  }
  EXPECT_EQ(store->PendingHints(replicas[0]), 1u);
}

TEST(CassandraFailoverTest, PartialWriteVisibleWithoutHintedHandoff) {
  // With hinted handoff off there is no durable stand-in for the dead
  // replica, so the write must surface an error — but the report still
  // shows which replicas kept it (the old fanout collapsed this to a
  // bare first-error, hiding the 1-of-3 divergence).
  testutil::ScopedTempDir dir("cass-nohints");
  StoreOptions options = LifecycleOptions(dir.path(), 4, 3);
  options.hinted_handoff = false;
  std::unique_ptr<CassandraStore> store;
  ASSERT_TRUE(CassandraStore::Open(options, &store).ok());

  const std::string key = "user000000000000000000011";
  std::vector<int> replicas = store->ring().RouteReplicas(key, 3);
  store->KillNode(replicas[0]);
  WriteReport report;
  EXPECT_FALSE(store->InsertWithReport("t", key, FailoverRecord(3), &report)
                   .ok());
  EXPECT_EQ(report.acked, 2);
  EXPECT_EQ(report.hinted, 0);
  EXPECT_EQ(report.failed, 1);
  EXPECT_EQ(store->PendingHints(replicas[0]), 0u);
}

TEST(CassandraFailoverTest, HintReplayHealsDeadReplicaAndConverges) {
  testutil::ScopedTempDir dir("cass-heal");
  std::unique_ptr<CassandraStore> store;
  ASSERT_TRUE(
      CassandraStore::Open(LifecycleOptions(dir.path(), 4, 3), &store).ok());

  const int dead = 1;
  store->KillNode(dead);
  std::vector<std::string> hinted_keys;
  for (int i = 0; i < 24; i++) {
    std::string key = LifecycleKey(i);
    ASSERT_TRUE(store->Insert("t", key, FailoverRecord(i)).ok());
    std::vector<int> replicas = store->ring().RouteReplicas(key, 3);
    if (std::find(replicas.begin(), replicas.end(), dead) != replicas.end()) {
      hinted_keys.push_back(key);
    }
  }
  ASSERT_FALSE(hinted_keys.empty());
  EXPECT_EQ(store->PendingHints(dead), hinted_keys.size());

  store->ReviveNode(dead);
  ASSERT_TRUE(store->FlushHints().ok());
  EXPECT_EQ(store->PendingHints(dead), 0u);
  for (const std::string& key : hinted_keys) {
    ycsb::Record record;
    EXPECT_TRUE(store->ReadAt(dead, key, &record).ok())
        << "replayed hint missing for " << key;
  }
  bool converged = false;
  ASSERT_TRUE(store->CheckReplicasConverged(&converged).ok());
  EXPECT_TRUE(converged);

  ClusterStats stats = store->GetClusterStats();
  EXPECT_EQ(stats.hints_queued, hinted_keys.size());
  EXPECT_EQ(stats.hints_replayed, hinted_keys.size());
  EXPECT_EQ(stats.hints_pending, 0u);
}

TEST(CassandraFailoverTest, HintReplayDoesNotResurrectDeletedKey) {
  testutil::ScopedTempDir dir("cass-delete");
  std::unique_ptr<CassandraStore> store;
  ASSERT_TRUE(
      CassandraStore::Open(LifecycleOptions(dir.path(), 4, 3), &store).ok());

  const std::string key = "user000000000000000000023";
  ASSERT_TRUE(store->Insert("t", key, FailoverRecord(1)).ok());
  const int dead = store->ring().RouteReplicas(key, 3)[0];
  store->KillNode(dead);
  ASSERT_TRUE(store->Update("t", key, FailoverRecord(2)).ok());
  ASSERT_TRUE(store->Delete("t", key).ok());
  EXPECT_EQ(store->PendingHints(dead), 2u);

  store->ReviveNode(dead);
  ASSERT_TRUE(store->FlushHints().ok());
  ycsb::Record record;
  EXPECT_TRUE(store->ReadAt(dead, key, &record).IsNotFound())
      << "the replayed delete must land after the replayed update";
  EXPECT_TRUE(store->Read("t", key, &record).IsNotFound());
}

TEST(CassandraFailoverTest, DirectWritesDrainQueuedHintsFirst) {
  // The ordering invariant behind idempotent replay: while a node has
  // queued hints, new writes for it go through (or behind) the queue, so
  // a later replay can never clobber a newer direct write.
  testutil::ScopedTempDir dir("cass-order");
  std::unique_ptr<CassandraStore> store;
  ASSERT_TRUE(
      CassandraStore::Open(LifecycleOptions(dir.path(), 4, 3), &store).ok());

  const std::string key = "user000000000000000000031";
  const int dead = store->ring().RouteReplicas(key, 3)[0];
  store->KillNode(dead);
  ASSERT_TRUE(store->Insert("t", key, FailoverRecord(1)).ok());
  EXPECT_EQ(store->PendingHints(dead), 1u);

  store->ReviveNode(dead);
  // No explicit FlushHints: the next write must drain the queue itself
  // before landing directly.
  ASSERT_TRUE(store->Insert("t", key, FailoverRecord(2)).ok());
  EXPECT_EQ(store->PendingHints(dead), 0u);
  ycsb::Record record;
  ASSERT_TRUE(store->ReadAt(dead, key, &record).ok());
  EXPECT_EQ(Field0(record), "value-2")
      << "the hinted value-1 must not overwrite the direct value-2";
}

TEST(CassandraFailoverTest, ReadRepairHealsStaleReplica) {
  testutil::ScopedTempDir dir("cass-readrepair");
  StoreOptions options = LifecycleOptions(dir.path(), 4, 3);
  options.hinted_handoff = false;  // isolate the read-repair path
  std::unique_ptr<CassandraStore> store;
  ASSERT_TRUE(CassandraStore::Open(options, &store).ok());

  const std::string key = "user000000000000000000047";
  std::vector<int> replicas = store->ring().RouteReplicas(key, 3);
  store->KillNode(replicas[0]);
  EXPECT_FALSE(store->Insert("t", key, FailoverRecord(5)).ok())
      << "no hints: a partial write is an error (but is not rolled back)";
  store->ReviveNode(replicas[0]);

  ycsb::Record record;
  ASSERT_TRUE(store->Read("t", key, &record).ok())
      << "the live replicas kept the write";
  EXPECT_EQ(Field0(record), "value-5");

  // The read saw replicas[0] answer NotFound and wrote the row back.
  ASSERT_TRUE(store->ReadAt(replicas[0], key, &record).ok())
      << "read repair must heal the stale replica";
  EXPECT_EQ(Field0(record), "value-5");
  ClusterStats stats = store->GetClusterStats();
  EXPECT_GE(stats.failed_over_reads, 1u);
  EXPECT_GE(stats.read_repairs, 1u);
  bool converged = false;
  ASSERT_TRUE(store->CheckReplicasConverged(&converged).ok());
  EXPECT_TRUE(converged);
}

TEST(CassandraFailoverTest, RepairConvergesDivergedReplicas) {
  testutil::ScopedTempDir dir("cass-repair");
  StoreOptions options = LifecycleOptions(dir.path(), 5, 3);
  options.hinted_handoff = false;  // leave divergence for repair to find
  options.read_repair = false;
  std::unique_ptr<CassandraStore> store;
  ASSERT_TRUE(CassandraStore::Open(options, &store).ok());

  // Baseline rows on every replica, plus one key that will go stale.
  const std::string stale_key = "user000000000000000000500";
  for (int i = 0; i < 30; i++) {
    ASSERT_TRUE(store->Insert("t", LifecycleKey(i), FailoverRecord(i)).ok());
  }
  ASSERT_TRUE(store->Insert("t", stale_key, FailoverRecord(1)).ok());
  const int dead = store->ring().RouteReplicas(stale_key, 3)[0];

  store->KillNode(dead);
  std::vector<std::string> diverged_keys;
  for (int i = 100; i < 130; i++) {
    std::string key = LifecycleKey(i);
    std::vector<int> replicas = store->ring().RouteReplicas(key, 3);
    bool hits_dead =
        std::find(replicas.begin(), replicas.end(), dead) != replicas.end();
    Status s = store->Insert("t", key, FailoverRecord(i));
    EXPECT_EQ(s.ok(), !hits_dead);
    if (hits_dead) diverged_keys.push_back(key);
  }
  // A newer version the dead node misses: repair must ship it forward,
  // never the stale copy back.
  ASSERT_FALSE(store->Update("t", stale_key, FailoverRecord(2)).ok());
  ASSERT_FALSE(diverged_keys.empty());
  store->ReviveNode(dead);

  bool converged = true;
  ASSERT_TRUE(store->CheckReplicasConverged(&converged).ok());
  EXPECT_FALSE(converged);

  RepairStats stats;
  ASSERT_TRUE(store->Repair(&stats).ok());
  EXPECT_EQ(stats.pairs_compared, 10u);  // 5 choose 2
  EXPECT_GT(stats.buckets_diverged, 0u);
  EXPECT_GE(stats.rows_shipped, diverged_keys.size());

  ASSERT_TRUE(store->CheckReplicasConverged(&converged).ok());
  EXPECT_TRUE(converged);
  for (const std::string& key : diverged_keys) {
    ycsb::Record record;
    EXPECT_TRUE(store->ReadAt(dead, key, &record).ok())
        << "repair must ship " << key << " to the recovered node";
  }
  ycsb::Record record;
  ASSERT_TRUE(store->ReadAt(dead, stale_key, &record).ok());
  EXPECT_EQ(Field0(record), "value-2")
      << "last-write-wins: repair ships the newer version forward";
}

TEST(CassandraFailoverTest, ScanToleratesUpToRfMinusOneDeadNodes) {
  testutil::ScopedTempDir dir("cass-scan");
  std::unique_ptr<CassandraStore> store;
  ASSERT_TRUE(
      CassandraStore::Open(LifecycleOptions(dir.path(), 4, 2), &store).ok());
  for (int i = 0; i < 40; i++) {
    ASSERT_TRUE(store->Insert("t", LifecycleKey(i), FailoverRecord(i)).ok());
  }

  store->KillNode(3);
  std::vector<ycsb::KeyedRecord> records;
  ASSERT_TRUE(store->ScanKeyed("t", LifecycleKey(0), 40, &records).ok())
      << "rf=2 keeps a live replica of every key with one node dead";
  ASSERT_EQ(records.size(), 40u);
  for (int i = 0; i < 40; i++) {
    EXPECT_EQ(records[static_cast<size_t>(i)].key, LifecycleKey(i));
  }

  store->KillNode(0);
  EXPECT_FALSE(store->ScanKeyed("t", LifecycleKey(0), 40, &records).ok())
      << "two dead nodes exceed what rf=2 can cover";
}

TEST(CassandraFailoverTest, MembershipDiscoversDeathThroughTraffic) {
  testutil::ScopedTempDir dir("cass-member");
  StoreOptions options = LifecycleOptions(dir.path(), 3, 2);
  options.membership_error_threshold = 2;
  std::unique_ptr<CassandraStore> store;
  ASSERT_TRUE(CassandraStore::Open(options, &store).ok());

  const std::string key = "user000000000000000000003";
  ASSERT_TRUE(store->Insert("t", key, FailoverRecord(9)).ok());
  const int dead = store->ring().RouteReplicas(key, 2)[0];
  store->KillNode(dead);

  ycsb::Record record;
  ASSERT_TRUE(store->Read("t", key, &record).ok());
  EXPECT_TRUE(store->membership().IsLive(dead))
      << "one error is below the threshold";
  ASSERT_TRUE(store->Read("t", key, &record).ok());
  EXPECT_FALSE(store->membership().IsLive(dead))
      << "the second consecutive error marks the node down";

  store->ReviveNode(dead);
  // probation_micros = 0: the next read claims the probe, the probe
  // succeeds, and the node is back up.
  ASSERT_TRUE(store->Read("t", key, &record).ok());
  EXPECT_TRUE(store->membership().IsLive(dead));
  ClusterStats stats = store->GetClusterStats();
  EXPECT_EQ(stats.membership.transitions_down, 1u);
  EXPECT_EQ(stats.membership.transitions_up, 1u);
  EXPECT_GE(stats.membership.probes_claimed, 1u);
  EXPECT_GE(stats.failed_over_reads, 2u);
}

TEST(CassandraFailoverTest, CrashDuringHintReplayLosesNoAckedWrite) {
  // The end-to-end durability story: writes acked while a replica was
  // dead survive (a) the replica's death, (b) a crash in the middle of
  // hint replay, and (c) the power loss taking the other replicas'
  // unsynced WAL tails — because the fsynced hint queue is the ack's
  // durable stand-in. A delete acked the same way stays deleted.
  FaultInjectionEnv fault_env(Env::Default());
  testutil::ScopedTempDir dir("cass-crash");
  StoreOptions options = LifecycleOptions(dir.path(), 3, 2);
  options.env = &fault_env;
  options.membership_error_threshold = 1;

  const std::string deleted_key = "user000000000000000000777";
  std::vector<std::string> hinted_keys;
  int dead = -1;
  {
    std::unique_ptr<CassandraStore> store;
    ASSERT_TRUE(CassandraStore::Open(options, &store).ok());
    ASSERT_TRUE(store->Insert("t", deleted_key, FailoverRecord(1)).ok());
    dead = store->ring().RouteReplicas(deleted_key, 2)[0];
    store->KillNode(dead);

    for (int i = 0; hinted_keys.size() < 6 && i < 200; i++) {
      std::string key = LifecycleKey(i);
      std::vector<int> replicas = store->ring().RouteReplicas(key, 2);
      if (std::find(replicas.begin(), replicas.end(), dead) ==
          replicas.end()) {
        continue;
      }
      ASSERT_TRUE(store->Insert("t", key, FailoverRecord(i)).ok())
          << "one live replica plus a durable hint must ack";
      hinted_keys.push_back(key);
    }
    ASSERT_EQ(hinted_keys.size(), 6u);
    ASSERT_TRUE(store->Delete("t", deleted_key).ok());
    ASSERT_EQ(store->PendingHints(dead), 7u);

    // Recovery begins: the replay applies a couple of hints, then the
    // node's WAL starts failing and the machine loses power.
    store->ReviveNode(dead);
    fault_env.FailAfter(FaultOp::kAppend, 2);
    EXPECT_FALSE(store->FlushHints().ok());
    fault_env.SetFilesystemActive(false);
  }
  fault_env.SetFilesystemActive(true);
  fault_env.ClearAllFaults();
  ASSERT_TRUE(fault_env.DropUnsyncedData().ok());
  fault_env.ResetState();

  std::unique_ptr<CassandraStore> store;
  ASSERT_TRUE(CassandraStore::Open(options, &store).ok());
  EXPECT_EQ(store->PendingHints(dead), 7u)
      << "a crashed replay keeps the whole durable queue";
  ASSERT_TRUE(store->FlushHints().ok());
  EXPECT_EQ(store->PendingHints(dead), 0u);

  for (size_t i = 0; i < hinted_keys.size(); i++) {
    ycsb::Record record;
    ASSERT_TRUE(store->Read("t", hinted_keys[i], &record).ok())
        << "acked write lost: " << hinted_keys[i];
  }
  ycsb::Record record;
  EXPECT_TRUE(store->Read("t", deleted_key, &record).IsNotFound())
      << "the acked delete must not be resurrected";
}

}  // namespace
}  // namespace apmbench::stores

namespace apmbench::cluster {
namespace {

TEST(ElasticityTest, ConsistentHashMovesFewKeysOnGrowth) {
  // Jedis-style consistent hashing: adding a 13th shard relocates about
  // 1/13 of the keys.
  JedisShardRing before(12), after(13);
  double moved = KeyMovementFraction(
      [&](const Slice& k) { return before.Route(k); },
      [&](const Slice& k) { return after.Route(k); });
  EXPECT_GT(moved, 0.02);
  EXPECT_LT(moved, 0.20);
}

TEST(ElasticityTest, ModuloShardingReshufflesAlmostEverything) {
  // The YCSB RDBMS client's hash-modulo sharding: adding a node moves
  // ~n/(n+1) of the keys — the elasticity price of that simplicity.
  ModuloSharder before(12), after(13);
  double moved = KeyMovementFraction(
      [&](const Slice& k) { return before.Route(k); },
      [&](const Slice& k) { return after.Route(k); });
  EXPECT_GT(moved, 0.85);
}

TEST(ElasticityTest, BalancedTokensRequireCostlyRepartitioning) {
  // Section 6: manually balanced Cassandra tokens "require that the
  // number of nodes is known in advance. Otherwise a costly
  // repartitioning has to be done" — re-balancing 12 -> 13 recomputes
  // every token and moves far more data than an incremental random
  // token would.
  TokenRing balanced12(12, TokenRing::TokenAssignment::kBalanced, 1);
  TokenRing balanced13(13, TokenRing::TokenAssignment::kBalanced, 1);
  double moved_balanced = KeyMovementFraction(
      [&](const Slice& k) { return balanced12.Route(k); },
      [&](const Slice& k) { return balanced13.Route(k); });

  TokenRing random12(12, TokenRing::TokenAssignment::kRandom, 7);
  TokenRing random13(13, TokenRing::TokenAssignment::kRandom, 7);
  double moved_random = KeyMovementFraction(
      [&](const Slice& k) { return random12.Route(k); },
      [&](const Slice& k) { return random13.Route(k); });

  EXPECT_GT(moved_balanced, 0.3);
  EXPECT_LT(moved_random, moved_balanced);
}

TEST(ElasticityTest, IdenticalRoutersMoveNothing) {
  ModuloSharder sharder(7);
  EXPECT_DOUBLE_EQ(
      KeyMovementFraction([&](const Slice& k) { return sharder.Route(k); },
                          [&](const Slice& k) { return sharder.Route(k); }),
      0.0);
}

}  // namespace
}  // namespace apmbench::cluster
