#include "cluster/routing.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <string>
#include <vector>

#include "common/random.h"

namespace apmbench::cluster {
namespace {

std::vector<int> RouteMany(const std::function<int(const Slice&)>& route,
                           int num_targets, int num_keys) {
  std::vector<int> counts(static_cast<size_t>(num_targets), 0);
  for (int i = 0; i < num_keys; i++) {
    std::string key = "user" + std::to_string(i * 2654435761u);
    int target = route(key);
    EXPECT_GE(target, 0);
    EXPECT_LT(target, num_targets);
    counts[static_cast<size_t>(target)]++;
  }
  return counts;
}

double MaxOverMin(const std::vector<int>& counts) {
  auto [min_it, max_it] = std::minmax_element(counts.begin(), counts.end());
  return *min_it == 0 ? 1e9
                      : static_cast<double>(*max_it) /
                            static_cast<double>(*min_it);
}

TEST(TokenRingTest, BalancedTokensBalanceKeys) {
  TokenRing ring(12, TokenRing::TokenAssignment::kBalanced, 1);
  auto counts =
      RouteMany([&](const Slice& k) { return ring.Route(k); }, 12, 60000);
  EXPECT_LT(MaxOverMin(counts), 1.25);
  auto shares = ring.OwnershipShares();
  for (double share : shares) {
    EXPECT_NEAR(share, 1.0 / 12, 1e-9);
  }
  double total = std::accumulate(shares.begin(), shares.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-6);
}

TEST(TokenRingTest, RandomTokensSkewOwnership) {
  // The paper: default random tokens "frequently resulted in a highly
  // unbalanced workload". Across seeds, random assignment should show
  // clearly more skew than balanced.
  double worst = 0;
  for (uint64_t seed = 1; seed <= 8; seed++) {
    TokenRing ring(12, TokenRing::TokenAssignment::kRandom, seed);
    auto shares = ring.OwnershipShares();
    auto [min_it, max_it] = std::minmax_element(shares.begin(), shares.end());
    worst = std::max(worst, *max_it / *min_it);
    double total = std::accumulate(shares.begin(), shares.end(), 0.0);
    EXPECT_NEAR(total, 1.0, 1e-6);
  }
  EXPECT_GT(worst, 2.0);
}

TEST(TokenRingTest, ReplicasAreDistinct) {
  TokenRing ring(6, TokenRing::TokenAssignment::kBalanced, 1);
  for (int i = 0; i < 200; i++) {
    auto replicas = ring.RouteReplicas("key" + std::to_string(i), 3);
    ASSERT_EQ(replicas.size(), 3u);
    EXPECT_EQ(replicas[0], ring.Route("key" + std::to_string(i)));
    std::sort(replicas.begin(), replicas.end());
    EXPECT_EQ(std::unique(replicas.begin(), replicas.end()), replicas.end());
  }
  // Replication factor capped at cluster size.
  auto all = ring.RouteReplicas("k", 99);
  EXPECT_EQ(all.size(), 6u);
}

TEST(JedisShardRingTest, RoutingDeterministic) {
  JedisShardRing ring(12);
  for (int i = 0; i < 100; i++) {
    std::string key = "user" + std::to_string(i);
    EXPECT_EQ(ring.Route(key), ring.Route(key));
  }
}

TEST(JedisShardRingTest, SharesAreImbalanced) {
  // The central reproduction claim for Redis: the Jedis ring leaves the
  // 12-instance deployment measurably unbalanced (one node ran out of
  // memory in the paper).
  JedisShardRing ring(12);
  auto shares = ring.OwnershipShares();
  double total = std::accumulate(shares.begin(), shares.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-6);
  auto [min_it, max_it] = std::minmax_element(shares.begin(), shares.end());
  // 160 virtual nodes give ~1/sqrt(160) ≈ 8% std dev; max/min around
  // 1.3-2x is expected, near-perfect balance is not.
  EXPECT_GT(*max_it / *min_it, 1.15);
  EXPECT_LT(*max_it / *min_it, 4.0);
}

TEST(JedisShardRingTest, KeyRoutingMatchesOwnershipShares) {
  JedisShardRing ring(12);
  auto counts =
      RouteMany([&](const Slice& k) { return ring.Route(k); }, 12, 120000);
  auto shares = ring.OwnershipShares();
  for (int i = 0; i < 12; i++) {
    double observed =
        static_cast<double>(counts[static_cast<size_t>(i)]) / 120000;
    EXPECT_NEAR(observed, shares[static_cast<size_t>(i)], 0.01) << i;
  }
}

TEST(ModuloSharderTest, NearPerfectBalance) {
  ModuloSharder sharder(12);
  auto counts =
      RouteMany([&](const Slice& k) { return sharder.Route(k); }, 12, 60000);
  EXPECT_LT(MaxOverMin(counts), 1.1);
}

TEST(RegionMapTest, RegionOfAndRoute) {
  RegionMap regions({"g", "n", "t"}, 2);
  EXPECT_EQ(regions.num_regions(), 4);
  EXPECT_EQ(regions.RegionOf("a"), 0);
  EXPECT_EQ(regions.RegionOf("g"), 1);  // boundary is first key of next
  EXPECT_EQ(regions.RegionOf("m"), 1);
  EXPECT_EQ(regions.RegionOf("n"), 2);
  EXPECT_EQ(regions.RegionOf("z"), 3);
  EXPECT_EQ(regions.Route("a"), 0);
  EXPECT_EQ(regions.Route("m"), 1);
  EXPECT_EQ(regions.Route("n"), 0);
  EXPECT_EQ(regions.RegionEndKey(0), "g");
  EXPECT_EQ(regions.RegionEndKey(3), "");
}

TEST(RegionMapTest, FromSampleBalances) {
  std::vector<std::string> sample;
  Random rng(9);
  for (int i = 0; i < 10000; i++) {
    sample.push_back("user" + std::to_string(rng.Next()));
  }
  RegionMap regions = RegionMap::FromSample(sample, 24, 4);
  auto counts = RouteMany([&](const Slice& k) { return regions.Route(k); },
                          4, 40000);
  EXPECT_LT(MaxOverMin(counts), 1.5);
}

TEST(RegionMapTest, ScanServersCoverBoundary) {
  RegionMap regions({"g", "n", "t"}, 2);
  auto servers = regions.RouteScan("f");  // near end of region 0
  ASSERT_GE(servers.size(), 1u);
  EXPECT_EQ(servers[0], 0);
  // Next region (1) is on server 1.
  ASSERT_EQ(servers.size(), 2u);
  EXPECT_EQ(servers[1], 1);
}

TEST(PartitionRingTest, TwoPartitionsPerNodeBalance) {
  PartitionRing ring(12, 2, 3);
  EXPECT_EQ(ring.num_partitions(), 24);
  auto counts =
      RouteMany([&](const Slice& k) { return ring.Route(k); }, 12, 60000);
  EXPECT_LT(MaxOverMin(counts), 1.3);
  auto shares = ring.OwnershipShares();
  double total = std::accumulate(shares.begin(), shares.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-6);
}

TEST(PartitionRingTest, PartitionToNodeStriping) {
  PartitionRing ring(4, 2, 1);
  for (int p = 0; p < 8; p++) {
    EXPECT_EQ(ring.NodeOfPartition(p), p % 4);
  }
}

}  // namespace
}  // namespace apmbench::cluster

namespace apmbench::cluster {
namespace {

TEST(ElasticityTest, ConsistentHashMovesFewKeysOnGrowth) {
  // Jedis-style consistent hashing: adding a 13th shard relocates about
  // 1/13 of the keys.
  JedisShardRing before(12), after(13);
  double moved = KeyMovementFraction(
      [&](const Slice& k) { return before.Route(k); },
      [&](const Slice& k) { return after.Route(k); });
  EXPECT_GT(moved, 0.02);
  EXPECT_LT(moved, 0.20);
}

TEST(ElasticityTest, ModuloShardingReshufflesAlmostEverything) {
  // The YCSB RDBMS client's hash-modulo sharding: adding a node moves
  // ~n/(n+1) of the keys — the elasticity price of that simplicity.
  ModuloSharder before(12), after(13);
  double moved = KeyMovementFraction(
      [&](const Slice& k) { return before.Route(k); },
      [&](const Slice& k) { return after.Route(k); });
  EXPECT_GT(moved, 0.85);
}

TEST(ElasticityTest, BalancedTokensRequireCostlyRepartitioning) {
  // Section 6: manually balanced Cassandra tokens "require that the
  // number of nodes is known in advance. Otherwise a costly
  // repartitioning has to be done" — re-balancing 12 -> 13 recomputes
  // every token and moves far more data than an incremental random
  // token would.
  TokenRing balanced12(12, TokenRing::TokenAssignment::kBalanced, 1);
  TokenRing balanced13(13, TokenRing::TokenAssignment::kBalanced, 1);
  double moved_balanced = KeyMovementFraction(
      [&](const Slice& k) { return balanced12.Route(k); },
      [&](const Slice& k) { return balanced13.Route(k); });

  TokenRing random12(12, TokenRing::TokenAssignment::kRandom, 7);
  TokenRing random13(13, TokenRing::TokenAssignment::kRandom, 7);
  double moved_random = KeyMovementFraction(
      [&](const Slice& k) { return random12.Route(k); },
      [&](const Slice& k) { return random13.Route(k); });

  EXPECT_GT(moved_balanced, 0.3);
  EXPECT_LT(moved_random, moved_balanced);
}

TEST(ElasticityTest, IdenticalRoutersMoveNothing) {
  ModuloSharder sharder(7);
  EXPECT_DOUBLE_EQ(
      KeyMovementFraction([&](const Slice& k) { return sharder.Route(k); },
                          [&](const Slice& k) { return sharder.Route(k); }),
      0.0);
}

}  // namespace
}  // namespace apmbench::cluster
