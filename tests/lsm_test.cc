#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/coding.h"
#include "common/env.h"
#include "common/random.h"
#include "lsm/bloom.h"
#include "lsm/block_cache.h"
#include "lsm/db.h"
#include "lsm/memtable.h"
#include "lsm/sstable.h"
#include "lsm/wal.h"
#include "tests/test_util.h"

namespace apmbench::lsm {
namespace {

using testutil::ScopedTempDir;

TEST(MemTableTest, PutGetDelete) {
  MemTable mem;
  mem.Put("key1", "value1", 1);
  std::string value;
  EXPECT_EQ(mem.Get("key1", &value), MemTable::GetResult::kFound);
  EXPECT_EQ(value, "value1");
  EXPECT_EQ(mem.Get("nope", &value), MemTable::GetResult::kAbsent);

  mem.Delete("key1", 2);
  uint64_t seq = 0;
  EXPECT_EQ(mem.Get("key1", &value, &seq), MemTable::GetResult::kDeleted);
  EXPECT_EQ(seq, 2u);
}

TEST(MemTableTest, OverwriteKeepsLatest) {
  MemTable mem;
  mem.Put("k", "v1", 1);
  mem.Put("k", "v2", 2);
  std::string value;
  EXPECT_EQ(mem.Get("k", &value), MemTable::GetResult::kFound);
  EXPECT_EQ(value, "v2");
  // The memtable is multi-version (insert-only so readers can run
  // lock-free against the writer): both versions are stored, the newest
  // wins on read, and older versions are visible at lower seq limits.
  EXPECT_EQ(mem.EntryCount(), 2u);
  EXPECT_EQ(mem.Get("k", &value, nullptr, /*seq_limit=*/1),
            MemTable::GetResult::kFound);
  EXPECT_EQ(value, "v1");
  EXPECT_EQ(mem.Get("k", &value, nullptr, /*seq_limit=*/0),
            MemTable::GetResult::kAbsent);
}

TEST(MemTableTest, IteratorOrderedWithSeqs) {
  MemTable mem;
  mem.Put("c", "3", 3);
  mem.Put("a", "1", 1);
  mem.Delete("b", 2);
  auto iter = mem.NewIterator();
  iter->SeekToFirst();
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(iter->key().ToString(), "a");
  EXPECT_FALSE(iter->IsTombstone());
  iter->Next();
  EXPECT_EQ(iter->key().ToString(), "b");
  EXPECT_TRUE(iter->IsTombstone());
  EXPECT_EQ(iter->seq(), 2u);
  iter->Next();
  EXPECT_EQ(iter->key().ToString(), "c");
  iter->Next();
  EXPECT_FALSE(iter->Valid());
}

TEST(MemTableTest, ShardRoutingIsStableAndInRange) {
  for (int shards : {1, 2, 8, 64}) {
    for (int i = 0; i < 1000; i++) {
      const std::string key = "user" + std::to_string(i);
      const uint32_t shard = MemTable::ShardOf(key, shards);
      EXPECT_LT(shard, static_cast<uint32_t>(shards));
      EXPECT_EQ(shard, MemTable::ShardOf(key, shards));  // deterministic
    }
  }
  EXPECT_EQ(MemTable::ShardOf("anything", 1), 0u);
}

TEST(MemTableTest, ShardedIterationMergesSorted) {
  // Keys scatter across 8 skip lists but the merged iterator must yield
  // one globally sorted stream, identical to a single-shard memtable's.
  MemTable sharded(4096, /*num_shards=*/8);
  MemTable single(4096, /*num_shards=*/1);
  uint64_t seq = 1;
  for (int i = 0; i < 500; i++) {
    const std::string key = "key" + std::to_string(i * 7919 % 500);
    const std::string value = "v" + std::to_string(i);
    sharded.Put(key, value, seq);
    single.Put(key, value, seq);
    seq++;
  }
  sharded.Delete("key42", seq);
  single.Delete("key42", seq);
  EXPECT_EQ(sharded.EntryCount(), single.EntryCount());

  auto it_s = sharded.NewIterator();
  auto it_1 = single.NewIterator();
  it_s->SeekToFirst();
  it_1->SeekToFirst();
  while (it_1->Valid()) {
    ASSERT_TRUE(it_s->Valid());
    EXPECT_EQ(it_s->key().ToString(), it_1->key().ToString());
    EXPECT_EQ(it_s->value().ToString(), it_1->value().ToString());
    EXPECT_EQ(it_s->seq(), it_1->seq());
    EXPECT_EQ(it_s->IsTombstone(), it_1->IsTombstone());
    it_s->Next();
    it_1->Next();
  }
  EXPECT_FALSE(it_s->Valid());

  // Targeted seek lands on the same entry in both shapes.
  it_s->Seek("key250");
  it_1->Seek("key250");
  ASSERT_TRUE(it_s->Valid());
  ASSERT_TRUE(it_1->Valid());
  EXPECT_EQ(it_s->key().ToString(), it_1->key().ToString());
  EXPECT_EQ(it_s->seq(), it_1->seq());

  // Point reads route straight to the owning shard.
  std::string value;
  EXPECT_EQ(sharded.Get("key1", &value), MemTable::GetResult::kFound);
  EXPECT_EQ(sharded.Get("key42", &value), MemTable::GetResult::kDeleted);
  EXPECT_EQ(sharded.Get("missing", &value), MemTable::GetResult::kAbsent);
}

TEST(MemTableTest, ShardedApplyViaExplicitShard) {
  // PutToShard/DeleteToShard with the routed shard index is exactly
  // Put/Delete — this is the contract the parallel group apply relies on.
  MemTable mem(4096, /*num_shards=*/4);
  const std::string key = "routed-key";
  const int shard = static_cast<int>(MemTable::ShardOf(key, 4));
  mem.PutToShard(shard, key, "v", 1);
  std::string value;
  EXPECT_EQ(mem.Get(key, &value), MemTable::GetResult::kFound);
  EXPECT_EQ(value, "v");
  mem.DeleteToShard(shard, key, 2);
  EXPECT_EQ(mem.Get(key, &value), MemTable::GetResult::kDeleted);
}

TEST(WalTest, RoundTrip) {
  ScopedTempDir dir("wal");
  std::string path = dir.path() + "/test.log";
  Env* env = Env::Default();
  {
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(env->NewWritableFile(path, &file).ok());
    LogWriter writer(std::move(file));
    ASSERT_TRUE(writer.AddRecord("record one", false).ok());
    ASSERT_TRUE(writer.AddRecord("record two", true).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  std::unique_ptr<LogReader> reader;
  ASSERT_TRUE(LogReader::Open(env, path, &reader).ok());
  std::string payload;
  ASSERT_TRUE(reader->ReadRecord(&payload));
  EXPECT_EQ(payload, "record one");
  ASSERT_TRUE(reader->ReadRecord(&payload));
  EXPECT_EQ(payload, "record two");
  EXPECT_FALSE(reader->ReadRecord(&payload));
}

TEST(WalTest, TornTailTruncates) {
  ScopedTempDir dir("wal2");
  std::string path = dir.path() + "/test.log";
  Env* env = Env::Default();
  {
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(env->NewWritableFile(path, &file).ok());
    LogWriter writer(std::move(file));
    ASSERT_TRUE(writer.AddRecord("good", false).ok());
    ASSERT_TRUE(writer.AddRecord("will be torn", false).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  // Truncate the file mid-record.
  std::string data;
  ASSERT_TRUE(env->ReadFileToString(path, &data).ok());
  data.resize(data.size() - 3);
  ASSERT_TRUE(env->WriteStringToFile(path, Slice(data)).ok());

  std::unique_ptr<LogReader> reader;
  ASSERT_TRUE(LogReader::Open(env, path, &reader).ok());
  std::string payload;
  ASSERT_TRUE(reader->ReadRecord(&payload));
  EXPECT_EQ(payload, "good");
  EXPECT_FALSE(reader->ReadRecord(&payload));
}

TEST(WalTest, CorruptRecordStopsReplay) {
  ScopedTempDir dir("wal3");
  std::string path = dir.path() + "/test.log";
  Env* env = Env::Default();
  {
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(env->NewWritableFile(path, &file).ok());
    LogWriter writer(std::move(file));
    ASSERT_TRUE(writer.AddRecord("first", false).ok());
    ASSERT_TRUE(writer.AddRecord("second", false).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  std::string data;
  ASSERT_TRUE(env->ReadFileToString(path, &data).ok());
  data[10] ^= 0x7f;  // flip a payload byte of the first record
  ASSERT_TRUE(env->WriteStringToFile(path, Slice(data)).ok());

  std::unique_ptr<LogReader> reader;
  ASSERT_TRUE(LogReader::Open(env, path, &reader).ok());
  std::string payload;
  EXPECT_FALSE(reader->ReadRecord(&payload));
}

TEST(BloomTest, NoFalseNegatives) {
  BloomFilterBuilder builder(10);
  std::vector<std::string> keys;
  for (int i = 0; i < 1000; i++) {
    keys.push_back("key" + std::to_string(i));
    builder.AddKey(keys.back());
  }
  std::string filter = builder.Finish();
  for (const auto& key : keys) {
    EXPECT_TRUE(BloomFilterMayMatch(filter, key));
  }
}

TEST(BloomTest, LowFalsePositiveRate) {
  BloomFilterBuilder builder(10);
  for (int i = 0; i < 10000; i++) {
    builder.AddKey("present" + std::to_string(i));
  }
  std::string filter = builder.Finish();
  int false_positives = 0;
  const int probes = 10000;
  for (int i = 0; i < probes; i++) {
    if (BloomFilterMayMatch(filter, "absent" + std::to_string(i))) {
      false_positives++;
    }
  }
  // 10 bits/key gives ~1% FPR; allow generous slack.
  EXPECT_LT(false_positives, probes / 25);
}

TEST(BloomTest, EmptyFilterMatchesAll) {
  EXPECT_TRUE(BloomFilterMayMatch(Slice(), "anything"));
}

TEST(BlockCacheTest, InsertLookupEvict) {
  // One shard so the capacity/LRU arithmetic is exact (the sharded paths
  // are covered by cache_test.cc). Entries are charged their actual
  // footprint — payload capacity plus kEntryOverheadBytes — so first
  // measure one entry's charge, then size the cache for exactly two.
  BlockCache probe(1 << 20, /*shard_bits=*/0);
  probe.Insert(1, 0, std::string(40, 'x'));
  const size_t per_entry = probe.inserted_charged_bytes();
  ASSERT_GE(per_entry, 40 + BlockCache::kEntryOverheadBytes);

  BlockCache cache(2 * per_entry + per_entry / 2, /*shard_bits=*/0);
  cache.Insert(1, 0, std::string(40, 'x'));  // pin released immediately
  EXPECT_NE(cache.Lookup(1, 0), nullptr);
  EXPECT_EQ(cache.Lookup(1, 999), nullptr);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);

  // Fill beyond capacity (room for two entries): LRU (file 1) evicted.
  cache.Insert(2, 0, std::string(40, 'y'));
  cache.Insert(3, 0, std::string(40, 'z'));
  EXPECT_EQ(cache.Lookup(1, 0), nullptr);
  EXPECT_NE(cache.Lookup(3, 0), nullptr);
  EXPECT_LE(cache.charge(), cache.capacity());
  EXPECT_EQ(cache.evictions(), 1u);

  // Charge-accuracy accounting: payload bytes vs charged bytes.
  EXPECT_EQ(cache.inserted_payload_bytes(), 120u);
  EXPECT_GE(cache.inserted_charged_bytes(),
            3 * (40 + BlockCache::kEntryOverheadBytes));
}

TEST(BlockCacheTest, EvictFileRemovesAllBlocks) {
  BlockCache cache(1000);
  cache.Insert(7, 0, "aaa");
  cache.Insert(7, 10, "bbb");
  cache.Insert(8, 0, "ccc");
  cache.EvictFile(7);
  EXPECT_EQ(cache.Lookup(7, 0), nullptr);
  EXPECT_EQ(cache.Lookup(7, 10), nullptr);
  EXPECT_NE(cache.Lookup(8, 0), nullptr);
}

class SSTableTest : public ::testing::Test {
 protected:
  SSTableTest() : dir_("sst") {
    options_.dir = dir_.path();
    options_.block_size = 256;  // force multiple blocks
  }

  ScopedTempDir dir_;
  Options options_;
};

TEST_F(SSTableTest, BuildAndRead) {
  std::string path = dir_.path() + "/1.sst";
  TableBuilder builder(options_, Env::Default(), path);
  ASSERT_TRUE(builder.Open().ok());
  for (int i = 0; i < 500; i++) {
    char key[16];
    snprintf(key, sizeof(key), "key%05d", i);
    ASSERT_TRUE(builder
                    .Add(key, "value" + std::to_string(i),
                         static_cast<uint64_t>(i + 1), false)
                    .ok());
  }
  ASSERT_TRUE(builder.Finish().ok());
  EXPECT_EQ(builder.NumEntries(), 500u);
  EXPECT_EQ(builder.smallest_key(), "key00000");
  EXPECT_EQ(builder.largest_key(), "key00499");

  BlockCache cache(1 << 20);
  std::unique_ptr<Table> table;
  ASSERT_TRUE(
      Table::Open(options_, Env::Default(), path, 1, &cache, &table).ok());

  // Point lookups.
  for (int i = 0; i < 500; i += 7) {
    char key[16];
    snprintf(key, sizeof(key), "key%05d", i);
    Table::GetResult result;
    std::string value;
    uint64_t seq = 0;
    ASSERT_TRUE(
        table->Get(ReadOptions(), key, &result, &value, &seq).ok());
    ASSERT_EQ(result, Table::GetResult::kFound) << key;
    EXPECT_EQ(value, "value" + std::to_string(i));
    EXPECT_EQ(seq, static_cast<uint64_t>(i + 1));
  }
  // Absent keys.
  Table::GetResult result;
  std::string value;
  ASSERT_TRUE(
      table->Get(ReadOptions(), "zzz", &result, &value, nullptr).ok());
  EXPECT_EQ(result, Table::GetResult::kAbsent);
}

TEST_F(SSTableTest, IteratorFullScanAndSeek) {
  std::string path = dir_.path() + "/2.sst";
  TableBuilder builder(options_, Env::Default(), path);
  ASSERT_TRUE(builder.Open().ok());
  for (int i = 0; i < 300; i++) {
    char key[16];
    snprintf(key, sizeof(key), "k%04d", i);
    ASSERT_TRUE(builder.Add(key, "v", static_cast<uint64_t>(i), i % 10 == 0)
                    .ok());
  }
  ASSERT_TRUE(builder.Finish().ok());

  BlockCache cache(1 << 20);
  std::unique_ptr<Table> table;
  ASSERT_TRUE(
      Table::Open(options_, Env::Default(), path, 2, &cache, &table).ok());

  auto iter = table->NewIterator(ReadOptions());
  iter->SeekToFirst();
  int count = 0;
  std::string prev;
  int tombstones = 0;
  while (iter->Valid()) {
    EXPECT_GT(iter->key().ToString(), prev);
    prev = iter->key().ToString();
    if (iter->IsTombstone()) tombstones++;
    iter->Next();
    count++;
  }
  EXPECT_EQ(count, 300);
  EXPECT_EQ(tombstones, 30);
  EXPECT_TRUE(iter->status().ok());

  iter->Seek("k0150");
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(iter->key().ToString(), "k0150");
  iter->Seek("k01505");  // between keys
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(iter->key().ToString(), "k0151");
  iter->Seek("zzzz");
  EXPECT_FALSE(iter->Valid());
}

TEST_F(SSTableTest, CorruptBlockDetected) {
  std::string path = dir_.path() + "/3.sst";
  TableBuilder builder(options_, Env::Default(), path);
  ASSERT_TRUE(builder.Open().ok());
  for (int i = 0; i < 100; i++) {
    char key[16];
    snprintf(key, sizeof(key), "k%04d", i);
    ASSERT_TRUE(builder.Add(key, "some value data", 1, false).ok());
  }
  ASSERT_TRUE(builder.Finish().ok());

  // Flip a byte in the first data block.
  std::string data;
  ASSERT_TRUE(Env::Default()->ReadFileToString(path, &data).ok());
  data[20] ^= 0x55;
  ASSERT_TRUE(Env::Default()->WriteStringToFile(path, Slice(data)).ok());

  BlockCache cache(1 << 20);
  std::unique_ptr<Table> table;
  ASSERT_TRUE(
      Table::Open(options_, Env::Default(), path, 3, &cache, &table).ok());
  Table::GetResult result;
  std::string value;
  Status s = table->Get(ReadOptions(), "k0000", &result, &value, nullptr);
  EXPECT_TRUE(s.IsCorruption());
}

// --- v2 block format: prefix compression + restart points -----------------

// Encodes a v2 data-block payload: flags byte, varint seq, value bytes.
std::string DataPayload(uint64_t seq, const std::string& value,
                        bool tombstone = false) {
  std::string p;
  p.push_back(tombstone ? '\x01' : '\x00');
  PutVarint64(&p, seq);
  p.append(value);
  return p;
}

TEST(BlockV2Test, EmptyBlock) {
  BlockBuilder builder(4);
  EXPECT_TRUE(builder.empty());
  Slice raw = builder.Finish();
  EXPECT_GE(raw.size(), 8u);  // restart array (entry 0) + count

  BlockCursor cursor(raw, kTableFormatV2);
  EXPECT_FALSE(cursor.SeekToFirst());
  EXPECT_FALSE(cursor.SeekToLast());
  EXPECT_FALSE(cursor.Seek("anything"));
  EXPECT_FALSE(cursor.corrupt());
}

TEST(BlockV2Test, SingleKeyBlock) {
  BlockBuilder builder(16);
  builder.Add("only", DataPayload(7, "val"));
  Slice raw = builder.Finish();

  BlockCursor cursor(raw, kTableFormatV2);
  ASSERT_TRUE(cursor.SeekToFirst());
  EXPECT_EQ(cursor.key().ToString(), "only");
  EXPECT_EQ(cursor.value().ToString(), "val");
  EXPECT_EQ(cursor.seq(), 7u);
  EXPECT_FALSE(cursor.tombstone());
  EXPECT_FALSE(cursor.Next());

  ASSERT_TRUE(cursor.SeekToLast());
  EXPECT_EQ(cursor.key().ToString(), "only");

  ASSERT_TRUE(cursor.Seek("aaa"));  // before the key
  EXPECT_EQ(cursor.key().ToString(), "only");
  ASSERT_TRUE(cursor.Seek("only"));  // exact
  EXPECT_EQ(cursor.key().ToString(), "only");
  EXPECT_FALSE(cursor.Seek("onlyz"));  // past the end
  EXPECT_FALSE(cursor.corrupt());
}

TEST(BlockV2Test, SeekAcrossRestartBoundaries) {
  // A small restart interval makes almost every Seek cross a restart
  // boundary: the binary search must land on the floor restart and the
  // forward scan must rebuild prefix-compressed keys correctly.
  const int kInterval = 4;
  const int kKeys = 103;  // deliberately not a multiple of the interval
  BlockBuilder builder(kInterval);
  std::vector<std::string> keys;
  for (int i = 0; i < kKeys; i++) {
    char key[16];
    snprintf(key, sizeof(key), "user%04d", i * 2);  // gaps for between-seeks
    keys.push_back(key);
    builder.Add(key, DataPayload(static_cast<uint64_t>(i + 1), "v"));
  }
  Slice raw = builder.Finish();

  BlockCursor cursor(raw, kTableFormatV2);
  for (int i = 0; i < kKeys; i++) {
    // Exact key.
    ASSERT_TRUE(cursor.Seek(keys[i])) << keys[i];
    EXPECT_EQ(cursor.key().ToString(), keys[i]);
    EXPECT_EQ(cursor.seq(), static_cast<uint64_t>(i + 1));
    // Between this key and the next: lands on the next.
    std::string between = keys[i] + "!";
    if (i + 1 < kKeys) {
      ASSERT_TRUE(cursor.Seek(between));
      EXPECT_EQ(cursor.key().ToString(), keys[i + 1]);
    } else {
      EXPECT_FALSE(cursor.Seek(between));
    }
  }
  ASSERT_TRUE(cursor.Seek(""));  // before everything
  EXPECT_EQ(cursor.key().ToString(), keys.front());
  EXPECT_FALSE(cursor.corrupt());

  // The same data with a restart on every entry (no prefix compression)
  // must be strictly larger: the shared "user" prefixes are elided.
  BlockBuilder uncompressed(1);
  for (const auto& key : keys) {
    uncompressed.Add(key, DataPayload(1, "v"));
  }
  EXPECT_LT(raw.size(), uncompressed.Finish().size());
}

TEST(BlockV2Test, SeekToLastAndFullIteration) {
  BlockBuilder builder(3);
  const int kKeys = 10;
  for (int i = 0; i < kKeys; i++) {
    builder.Add("k" + std::to_string(i),
                DataPayload(static_cast<uint64_t>(i), std::to_string(i)));
  }
  Slice raw = builder.Finish();

  BlockCursor cursor(raw, kTableFormatV2);
  ASSERT_TRUE(cursor.SeekToLast());
  EXPECT_EQ(cursor.key().ToString(), "k9");
  EXPECT_EQ(cursor.value().ToString(), "9");
  EXPECT_FALSE(cursor.Next());

  int n = 0;
  for (bool ok = cursor.SeekToFirst(); ok; ok = cursor.Next(), void()) {
    EXPECT_EQ(cursor.key().ToString(), "k" + std::to_string(n));
    n++;
    if (n > kKeys) break;
  }
  EXPECT_EQ(n, kKeys);
  EXPECT_FALSE(cursor.corrupt());
}

TEST(BlockV2Test, KeysSharingFullPrefixes) {
  // Each key is a full prefix of the next, so non-restart entries store
  // zero or near-zero unshared bytes — the hardest case for the key
  // reconstruction buffer.
  std::vector<std::string> keys;
  std::string k;
  for (int i = 0; i < 12; i++) {
    k += static_cast<char>('a' + (i % 3));
    keys.push_back(k);
  }
  BlockBuilder builder(4);
  for (size_t i = 0; i < keys.size(); i++) {
    builder.Add(keys[i], DataPayload(i + 1, "v" + std::to_string(i)));
  }
  Slice raw = builder.Finish();

  BlockCursor cursor(raw, kTableFormatV2);
  ASSERT_TRUE(cursor.SeekToFirst());
  for (size_t i = 0; i < keys.size(); i++) {
    ASSERT_TRUE(cursor.Valid());
    EXPECT_EQ(cursor.key().ToString(), keys[i]);
    EXPECT_EQ(cursor.value().ToString(), "v" + std::to_string(i));
    cursor.Next();
  }
  EXPECT_FALSE(cursor.Valid());
  for (size_t i = 0; i < keys.size(); i++) {
    ASSERT_TRUE(cursor.Seek(keys[i]));
    EXPECT_EQ(cursor.key().ToString(), keys[i]);
  }
  EXPECT_FALSE(cursor.corrupt());
}

TEST(BlockV2Test, InterleavedTombstones) {
  BlockBuilder builder(4);
  const int kKeys = 20;
  for (int i = 0; i < kKeys; i++) {
    char key[16];
    snprintf(key, sizeof(key), "row%03d", i);
    builder.Add(key, DataPayload(static_cast<uint64_t>(i + 1),
                                 i % 2 == 0 ? "live" : "",
                                 /*tombstone=*/i % 2 == 1));
  }
  Slice raw = builder.Finish();

  BlockCursor cursor(raw, kTableFormatV2);
  int n = 0;
  for (bool ok = cursor.SeekToFirst(); ok; ok = cursor.Next()) {
    EXPECT_EQ(cursor.tombstone(), n % 2 == 1) << n;
    if (n % 2 == 0) {
      EXPECT_EQ(cursor.value().ToString(), "live");
    }
    n++;
  }
  EXPECT_EQ(n, kKeys);
  ASSERT_TRUE(cursor.Seek("row007"));
  EXPECT_TRUE(cursor.tombstone());
  EXPECT_EQ(cursor.seq(), 8u);
  ASSERT_TRUE(cursor.Seek("row008"));
  EXPECT_FALSE(cursor.tombstone());
  EXPECT_FALSE(cursor.corrupt());
}

TEST(BlockV2Test, IndexBlockPayloadsAreOpaque) {
  // Index blocks reuse the same format with binary 12-byte payloads; the
  // cursor must hand them back untouched (no data-payload decode).
  BlockBuilder builder(2);
  std::vector<std::string> payloads;
  for (int i = 0; i < 5; i++) {
    std::string p;
    PutFixed64(&p, static_cast<uint64_t>(i) * 4096);
    PutFixed32(&p, 512 + i);
    payloads.push_back(p);
    builder.Add("block" + std::to_string(i), p);
  }
  Slice raw = builder.Finish();

  BlockCursor cursor(raw, kTableFormatV2, /*data_block=*/false);
  int n = 0;
  for (bool ok = cursor.SeekToFirst(); ok; ok = cursor.Next()) {
    ASSERT_LT(n, 5);
    EXPECT_EQ(cursor.payload().ToString(), payloads[n]);
    n++;
  }
  EXPECT_EQ(n, 5);
  EXPECT_FALSE(cursor.corrupt());
}

// --- table format versioning ----------------------------------------------

TEST_F(SSTableTest, WriterEmitsConfiguredFormatVersion) {
  for (uint32_t version : {kTableFormatV1, kTableFormatV2}) {
    std::string path =
        dir_.path() + "/fmt" + std::to_string(version) + ".sst";
    options_.format_version = version;
    TableBuilder builder(options_, Env::Default(), path);
    ASSERT_TRUE(builder.Open().ok());
    EXPECT_EQ(builder.format_version(), version);
    for (int i = 0; i < 300; i++) {
      char key[24];
      snprintf(key, sizeof(key), "common/prefix/%05d", i);
      ASSERT_TRUE(
          builder.Add(key, "value", static_cast<uint64_t>(i + 1), false)
              .ok());
    }
    ASSERT_TRUE(builder.Finish().ok());

    TableFooter footer;
    ASSERT_TRUE(ReadTableFooter(Env::Default(), path, &footer).ok());
    EXPECT_EQ(footer.format_version, version);

    BlockCache cache(1 << 20);
    std::unique_ptr<Table> table;
    ASSERT_TRUE(Table::Open(options_, Env::Default(), path, version, &cache,
                            &table)
                    .ok());
    EXPECT_EQ(table->format_version(), version);
    for (int i = 0; i < 300; i += 17) {
      char key[24];
      snprintf(key, sizeof(key), "common/prefix/%05d", i);
      Table::GetResult result;
      std::string value;
      ASSERT_TRUE(
          table->Get(ReadOptions(), key, &result, &value, nullptr).ok());
      ASSERT_EQ(result, Table::GetResult::kFound) << key;
      EXPECT_EQ(value, "value");
    }
  }
}

TEST_F(SSTableTest, V2IndexSmallerThanV1) {
  // Long keys with a heavy shared prefix: both the data blocks and the
  // index entries (last key per block) compress well under v2.
  uint64_t sizes[3] = {0, 0, 0};  // indexed by format version
  uint64_t index_sizes[3] = {0, 0, 0};
  for (uint32_t version : {kTableFormatV1, kTableFormatV2}) {
    std::string path =
        dir_.path() + "/cmp" + std::to_string(version) + ".sst";
    options_.format_version = version;
    TableBuilder builder(options_, Env::Default(), path);
    ASSERT_TRUE(builder.Open().ok());
    for (int i = 0; i < 2000; i++) {
      char key[48];
      snprintf(key, sizeof(key), "org.example.metrics.host%04d.cpu", i);
      ASSERT_TRUE(builder.Add(key, "8.25", 1, false).ok());
    }
    ASSERT_TRUE(builder.Finish().ok());
    TableFooter footer;
    ASSERT_TRUE(ReadTableFooter(Env::Default(), path, &footer).ok());
    sizes[version] = builder.FileSize();
    index_sizes[version] = footer.index_size;
  }
  EXPECT_LT(sizes[2], sizes[1]);
  EXPECT_LT(index_sizes[2], index_sizes[1]);
}

TEST_F(SSTableTest, PrefixBloomFiltersAbsentPrefixes) {
  options_.prefix_bloom_length = 8;
  std::string path = dir_.path() + "/pfx.sst";
  TableBuilder builder(options_, Env::Default(), path);
  ASSERT_TRUE(builder.Open().ok());
  for (int g = 0; g < 64; g++) {
    for (int i = 0; i < 8; i++) {
      char key[32];
      snprintf(key, sizeof(key), "grp%05d/item%03d", g, i);
      ASSERT_TRUE(builder.Add(key, "v", 1, false).ok());
    }
  }
  ASSERT_TRUE(builder.Finish().ok());

  BlockCache cache(1 << 20);
  std::unique_ptr<Table> table;
  ASSERT_TRUE(
      Table::Open(options_, Env::Default(), path, 9, &cache, &table).ok());
  EXPECT_EQ(table->prefix_bloom_length(), 8u);

  // Never a false negative.
  for (int g = 0; g < 64; g++) {
    char prefix[16];
    snprintf(prefix, sizeof(prefix), "grp%05d", g);
    EXPECT_TRUE(table->MayMatchPrefix(Slice(prefix, 8)));
  }
  // Absent prefixes are mostly ruled out (the filter is deterministic,
  // the bound just leaves room for its ~1% false-positive rate).
  int matches = 0;
  for (int g = 10000; g < 10200; g++) {
    char prefix[16];
    snprintf(prefix, sizeof(prefix), "grp%05d", g);
    if (table->MayMatchPrefix(Slice(prefix, 8))) matches++;
  }
  EXPECT_LT(matches, 20);
}

TEST_F(SSTableTest, FooterRejectsUnknownVersionAndMagic) {
  std::string path = dir_.path() + "/vt.sst";
  options_.format_version = kTableFormatV2;
  TableBuilder builder(options_, Env::Default(), path);
  ASSERT_TRUE(builder.Open().ok());
  ASSERT_TRUE(builder.Add("k", "v", 1, false).ok());
  ASSERT_TRUE(builder.Finish().ok());

  std::string data;
  ASSERT_TRUE(Env::Default()->ReadFileToString(path, &data).ok());

  // Patch the footer's format_version (the fixed32 just before the
  // trailing fixed64 magic) to an unknown value.
  std::string future = data;
  std::string version99;
  PutFixed32(&version99, 99);
  future.replace(future.size() - 12, 4, version99);
  std::string future_path = dir_.path() + "/vt_future.sst";
  ASSERT_TRUE(
      Env::Default()->WriteStringToFile(future_path, Slice(future)).ok());

  TableFooter footer;
  Status s = ReadTableFooter(Env::Default(), future_path, &footer);
  EXPECT_TRUE(s.IsCorruption());
  BlockCache cache(1 << 20);
  std::unique_ptr<Table> table;
  EXPECT_TRUE(Table::Open(options_, Env::Default(), future_path, 11, &cache,
                          &table)
                  .IsCorruption());

  // Garbage magic fails the same way.
  std::string bad_magic = data;
  bad_magic.replace(bad_magic.size() - 8, 8, "XXXXXXXX");
  std::string magic_path = dir_.path() + "/vt_magic.sst";
  ASSERT_TRUE(
      Env::Default()->WriteStringToFile(magic_path, Slice(bad_magic)).ok());
  EXPECT_TRUE(ReadTableFooter(Env::Default(), magic_path, &footer)
                  .IsCorruption());
  EXPECT_TRUE(Table::Open(options_, Env::Default(), magic_path, 12, &cache,
                          &table)
                  .IsCorruption());
}

class DBTest : public ::testing::Test {
 protected:
  DBTest() : dir_("lsmdb") {
    options_.dir = dir_.path();
    options_.memtable_bytes = 16 * 1024;  // small to force flushes
    options_.block_size = 512;
  }

  void Open() { ASSERT_TRUE(DB::Open(options_, &db_).ok()); }
  void Reopen() {
    db_.reset();
    Open();
  }

  ScopedTempDir dir_;
  Options options_;
  std::unique_ptr<DB> db_;
};

TEST_F(DBTest, PutGetDelete) {
  Open();
  ASSERT_TRUE(db_->Put("alpha", "1").ok());
  ASSERT_TRUE(db_->Put("beta", "2").ok());
  std::string value;
  ASSERT_TRUE(db_->Get(ReadOptions(), "alpha", &value).ok());
  EXPECT_EQ(value, "1");
  EXPECT_TRUE(db_->Get(ReadOptions(), "gamma", &value).IsNotFound());
  ASSERT_TRUE(db_->Delete("alpha").ok());
  EXPECT_TRUE(db_->Get(ReadOptions(), "alpha", &value).IsNotFound());
}

TEST_F(DBTest, OverwriteAcrossFlush) {
  Open();
  ASSERT_TRUE(db_->Put("k", "old").ok());
  ASSERT_TRUE(db_->Flush().ok());
  ASSERT_TRUE(db_->Put("k", "new").ok());
  std::string value;
  ASSERT_TRUE(db_->Get(ReadOptions(), "k", &value).ok());
  EXPECT_EQ(value, "new");
  ASSERT_TRUE(db_->Flush().ok());
  ASSERT_TRUE(db_->Get(ReadOptions(), "k", &value).ok());
  EXPECT_EQ(value, "new");
}

TEST_F(DBTest, DeleteShadowsFlushedValue) {
  Open();
  ASSERT_TRUE(db_->Put("k", "v").ok());
  ASSERT_TRUE(db_->Flush().ok());
  ASSERT_TRUE(db_->Delete("k").ok());
  ASSERT_TRUE(db_->Flush().ok());
  std::string value;
  EXPECT_TRUE(db_->Get(ReadOptions(), "k", &value).IsNotFound());
  // After major compaction, the tombstone is dropped and the key stays
  // deleted.
  ASSERT_TRUE(db_->CompactAll().ok());
  EXPECT_TRUE(db_->Get(ReadOptions(), "k", &value).IsNotFound());
}

TEST_F(DBTest, ScanMergesAllSources) {
  Open();
  // Some keys flushed, some in memtable, one deleted.
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(
        db_->Put("key" + std::to_string(i), "flushed" + std::to_string(i))
            .ok());
  }
  ASSERT_TRUE(db_->Flush().ok());
  ASSERT_TRUE(db_->Put("key3", "updated3").ok());
  ASSERT_TRUE(db_->Delete("key5").ok());
  ASSERT_TRUE(db_->Put("key95", "fresh").ok());

  std::vector<std::pair<std::string, std::string>> out;
  ASSERT_TRUE(db_->Scan(ReadOptions(), "key3", 5, &out).ok());
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out[0].first, "key3");
  EXPECT_EQ(out[0].second, "updated3");
  EXPECT_EQ(out[1].first, "key4");
  EXPECT_EQ(out[2].first, "key6");  // key5 deleted
  EXPECT_EQ(out[3].first, "key7");
  EXPECT_EQ(out[4].first, "key8");
}

TEST_F(DBTest, RecoversFromWal) {
  Open();
  ASSERT_TRUE(db_->Put("persist1", "a").ok());
  ASSERT_TRUE(db_->Put("persist2", "b").ok());
  ASSERT_TRUE(db_->Delete("persist1").ok());
  Reopen();
  std::string value;
  EXPECT_TRUE(db_->Get(ReadOptions(), "persist1", &value).IsNotFound());
  ASSERT_TRUE(db_->Get(ReadOptions(), "persist2", &value).ok());
  EXPECT_EQ(value, "b");
}

TEST_F(DBTest, RecoversFlushedData) {
  Open();
  for (int i = 0; i < 2000; i++) {
    ASSERT_TRUE(db_->Put("key" + std::to_string(i),
                         std::string(50, 'v'))
                    .ok());
  }
  Reopen();
  std::string value;
  for (int i = 0; i < 2000; i += 101) {
    ASSERT_TRUE(db_->Get(ReadOptions(), "key" + std::to_string(i), &value)
                    .ok())
        << i;
    EXPECT_EQ(value, std::string(50, 'v'));
  }
}

TEST_F(DBTest, SizeTieredCompactionReducesFileCount) {
  options_.size_tiered_min_files = 4;
  Open();
  Random rng(5);
  for (int i = 0; i < 8000; i++) {
    ASSERT_TRUE(db_->Put("key" + std::to_string(rng.Uniform(4000)),
                         std::string(40, 'x'))
                    .ok());
  }
  ASSERT_TRUE(db_->Flush().ok());
  // Give compactions a chance to run, then force the rest.
  ASSERT_TRUE(db_->CompactAll().ok());
  DB::Stats stats = db_->GetStats();
  EXPECT_GE(stats.num_flushes, 2u);
  EXPECT_GE(stats.num_compactions, 1u);
  // Major compaction leaves a single table.
  int total_files = 0;
  for (int files : stats.files_per_level) total_files += files;
  EXPECT_EQ(total_files, 1);
  // Data still correct.
  std::string value;
  Status s = db_->Get(ReadOptions(), "key1", &value);
  EXPECT_TRUE(s.ok() || s.IsNotFound());
}

TEST_F(DBTest, SizeTieredEscapesAdmissionStall) {
  // Liveness regression: geometric file sizes defeat STCS similarity
  // bucketing (every bucket stays a singleton), so once L0 reaches the
  // stop trigger no ordinary pick exists — and with writers hard-blocked
  // no flush can ever complete a bucket. The escape valve must merge the
  // smallest files anyway and unblock the stalled writer; without it the
  // rotation below waits forever.
  options_.size_tiered_min_files = 4;
  options_.level0_slowdown_trigger = 0;
  options_.level0_stop_trigger = 6;
  Open();
  std::vector<size_t> sizes = {1000, 3000, 9000, 27000, 81000, 243000};
  for (size_t i = 0; i < sizes.size(); i++) {
    std::string key = "g" + std::to_string(i);
    ASSERT_TRUE(db_->Put(key, std::string(sizes[i], 'a' + i)).ok());
    ASSERT_TRUE(db_->Flush().ok());
  }
  // Overfill the memtable, then write again: the second put must rotate,
  // which passes through the stop-trigger gate and blocks until the
  // escape compaction brings the L0 count back down.
  ASSERT_TRUE(db_->Put("big", std::string(20 * 1024, 'z')).ok());
  ASSERT_TRUE(db_->Put("tiny", "t").ok());
  DB::Stats stats = db_->GetStats();
  EXPECT_GE(stats.stall_escape_compactions, 1u);
  std::string value;
  for (size_t i = 0; i < sizes.size(); i++) {
    ASSERT_TRUE(db_->Get(ReadOptions(), "g" + std::to_string(i), &value).ok());
    EXPECT_EQ(value.size(), sizes[i]);
    EXPECT_EQ(value[0], static_cast<char>('a' + i));
  }
  ASSERT_TRUE(db_->Get(ReadOptions(), "big", &value).ok());
  EXPECT_EQ(value.size(), 20u * 1024);
  ASSERT_TRUE(db_->Get(ReadOptions(), "tiny", &value).ok());
  EXPECT_EQ(value, "t");
}

TEST_F(DBTest, LeveledCompactionKeepsDataCorrect) {
  options_.compaction_style = CompactionStyle::kLeveled;
  options_.level0_compaction_trigger = 2;
  options_.level1_max_bytes = 64 * 1024;
  Open();
  std::map<std::string, std::string> model;
  Random rng(6);
  for (int i = 0; i < 6000; i++) {
    std::string key = "key" + std::to_string(rng.Uniform(3000));
    std::string value = "v" + std::to_string(i);
    ASSERT_TRUE(db_->Put(key, value).ok());
    model[key] = value;
  }
  ASSERT_TRUE(db_->Flush().ok());
  for (const auto& [key, expected] : model) {
    std::string value;
    ASSERT_TRUE(db_->Get(ReadOptions(), key, &value).ok()) << key;
    EXPECT_EQ(value, expected) << key;
  }
}

TEST_F(DBTest, PropertyRandomOpsAgainstModel) {
  Open();
  std::map<std::string, std::string> model;
  Random rng(99);
  for (int i = 0; i < 15000; i++) {
    int op = static_cast<int>(rng.Uniform(10));
    std::string key = "k" + std::to_string(rng.Uniform(500));
    if (op < 6) {
      std::string value = "v" + std::to_string(i);
      ASSERT_TRUE(db_->Put(key, value).ok());
      model[key] = value;
    } else if (op < 8) {
      db_->Delete(key);
      model.erase(key);
    } else if (op < 9) {
      std::string value;
      Status s = db_->Get(ReadOptions(), key, &value);
      auto it = model.find(key);
      if (it == model.end()) {
        EXPECT_TRUE(s.IsNotFound()) << key;
      } else {
        ASSERT_TRUE(s.ok()) << key << " " << s.ToString();
        EXPECT_EQ(value, it->second);
      }
    } else {
      std::vector<std::pair<std::string, std::string>> got;
      ASSERT_TRUE(db_->Scan(ReadOptions(), key, 10, &got).ok());
      auto it = model.lower_bound(key);
      for (const auto& [got_key, got_value] : got) {
        ASSERT_NE(it, model.end());
        EXPECT_EQ(got_key, it->first);
        EXPECT_EQ(got_value, it->second);
        ++it;
      }
    }
  }
  // Survive a reopen and re-verify a sample.
  Reopen();
  int checked = 0;
  for (const auto& [key, expected] : model) {
    if (++checked % 7 != 0) continue;
    std::string value;
    ASSERT_TRUE(db_->Get(ReadOptions(), key, &value).ok()) << key;
    EXPECT_EQ(value, expected);
  }
}

TEST_F(DBTest, DiskUsageGrowsWithData) {
  Open();
  uint64_t before = 0, after = 0;
  ASSERT_TRUE(db_->DiskUsage(&before).ok());
  for (int i = 0; i < 1000; i++) {
    ASSERT_TRUE(db_->Put("key" + std::to_string(i), std::string(100, 'd'))
                    .ok());
  }
  ASSERT_TRUE(db_->Flush().ok());
  ASSERT_TRUE(db_->DiskUsage(&after).ok());
  EXPECT_GT(after, before + 50 * 1000);
}

TEST_F(DBTest, RequiresDirOption) {
  Options bad;
  std::unique_ptr<DB> db;
  EXPECT_TRUE(DB::Open(bad, &db).IsInvalidArgument());
}

TEST_F(DBTest, RejectsInvalidMemtableShards) {
  std::unique_ptr<DB> db;
  for (int shards : {0, -1, 3, 6, 65, 128}) {
    options_.memtable_shards = shards;
    Status s = DB::Open(options_, &db);
    EXPECT_TRUE(s.IsInvalidArgument()) << "shards=" << shards;
    EXPECT_NE(s.ToString().find("memtable_shards"), std::string::npos);
  }
  options_.memtable_shards = 1;
  EXPECT_TRUE(DB::Open(options_, &db).ok());
}

TEST_F(DBTest, ReopenAcrossShardCounts) {
  // Shard count is a purely in-memory knob: the WAL and SSTables are
  // shard-agnostic, so a database written with 8 shards must reopen and
  // replay correctly with 1, and vice versa.
  options_.memtable_shards = 8;
  Open();
  for (int i = 0; i < 200; i++) {
    ASSERT_TRUE(
        db_->Put("key" + std::to_string(i), "v" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(db_->Delete("key7").ok());
  db_.reset();

  options_.memtable_shards = 1;
  Open();
  std::string value;
  ASSERT_TRUE(db_->Get(ReadOptions(), "key199", &value).ok());
  EXPECT_EQ(value, "v199");
  EXPECT_TRUE(db_->Get(ReadOptions(), "key7", &value).IsNotFound());
  ASSERT_TRUE(db_->Put("key7", "back").ok());
  db_.reset();

  options_.memtable_shards = 8;
  Open();
  ASSERT_TRUE(db_->Get(ReadOptions(), "key7", &value).ok());
  EXPECT_EQ(value, "back");
  std::vector<std::pair<std::string, std::string>> rows;
  ASSERT_TRUE(db_->Scan(ReadOptions(), "key", 1000, &rows).ok());
  EXPECT_EQ(rows.size(), 200u);
}

TEST_F(DBTest, RejectsUnsupportedFormatVersion) {
  std::unique_ptr<DB> db;
  options_.format_version = 0;
  EXPECT_TRUE(DB::Open(options_, &db).IsInvalidArgument());
  options_.format_version = kMaxSupportedTableFormat + 1;
  EXPECT_TRUE(DB::Open(options_, &db).IsInvalidArgument());
}

// Backward compatibility: a database full of v1 tables (written by the
// pre-refactor format) must open under the v2-writing build, serve reads,
// and migrate to v2 as compaction rewrites the files.
TEST_F(DBTest, V1DatabaseOpensAndCompactsToV2) {
  options_.format_version = 1;
  Open();
  std::map<std::string, std::string> model;
  for (int batch = 0; batch < 3; batch++) {
    for (int i = 0; i < 120; i++) {
      std::string key =
          "row" + std::to_string(batch) + "/" + std::to_string(i);
      std::string value = "v" + std::to_string(batch * 1000 + i);
      ASSERT_TRUE(db_->Put(key, value).ok());
      model[key] = value;
    }
    ASSERT_TRUE(db_->Flush().ok());
  }
  DB::Stats stats = db_->GetStats();
  EXPECT_GE(stats.tables_format_v1, 3u);
  EXPECT_EQ(stats.tables_format_v2, 0u);

  // Reopen with the new writer default; the v1 tables must stay readable.
  options_.format_version = 2;
  Reopen();
  auto verify_all = [&] {
    std::string value;
    for (const auto& [key, expected] : model) {
      ASSERT_TRUE(db_->Get(ReadOptions(), key, &value).ok()) << key;
      ASSERT_EQ(value, expected);
    }
    std::vector<std::pair<std::string, std::string>> rows;
    ASSERT_TRUE(db_->Scan(ReadOptions(), "", 10000, &rows).ok());
    ASSERT_EQ(rows.size(), model.size());
    auto expected = model.begin();
    for (const auto& [key, value] : rows) {
      ASSERT_EQ(key, expected->first);
      ASSERT_EQ(value, expected->second);
      ++expected;
    }
  };
  verify_all();
  stats = db_->GetStats();
  EXPECT_GE(stats.tables_format_v1, 3u);

  // Major compaction rewrites every table in the configured format.
  ASSERT_TRUE(db_->CompactAll().ok());
  stats = db_->GetStats();
  EXPECT_EQ(stats.tables_format_v1, 0u);
  EXPECT_GE(stats.tables_format_v2, 1u);
  verify_all();
  ASSERT_TRUE(db_->VerifyIntegrity().ok());

  // And the migrated database still recovers.
  Reopen();
  verify_all();
}

// Flush accounting: the arena charges whole blocks, so a stream of tiny
// keys can overshoot write_buffer_size by at most one arena block (plus
// the block-vector bookkeeping the arena also counts).
TEST_F(DBTest, TinyKeysCannotOvershootWriteBuffer) {
  options_.memtable_bytes = 16 * 1024;
  options_.arena_block_bytes = 1024;
  Open();
  uint64_t max_observed = 0;
  for (int i = 0; i < 4000; i++) {
    char key[12];
    snprintf(key, sizeof(key), "t%06d", i);
    ASSERT_TRUE(db_->Put(key, "x").ok());
    max_observed = std::max(max_observed, db_->GetStats().memtable_bytes);
  }
  EXPECT_GT(db_->GetStats().num_flushes, 0u);
  EXPECT_LE(max_observed,
            options_.memtable_bytes + options_.arena_block_bytes + 128);
}

// The inverse accounting hazard: a memtable_bytes smaller than one arena
// block must not flush after every write. DB::Open clamps the block size
// to memtable_bytes / 4, so even a 2 KiB write buffer batches a few
// dozen entries per flush instead of one.
TEST_F(DBTest, TinyMemtableDoesNotFlushPerPut) {
  options_.memtable_bytes = 2 * 1024;
  options_.arena_block_bytes = 4 * 1024;  // bigger than the whole buffer
  Open();
  const int kPuts = 300;
  for (int i = 0; i < kPuts; i++) {
    char key[12];
    snprintf(key, sizeof(key), "c%06d", i);
    ASSERT_TRUE(db_->Put(key, "x").ok());
  }
  DB::Stats stats = db_->GetStats();
  EXPECT_GT(stats.num_flushes, 0u);
  // Unclamped, every put rotates the memtable (~300 flushes); clamped,
  // each 2 KiB buffer holds a few dozen 20-something-byte entries.
  EXPECT_LT(stats.num_flushes, kPuts / 4u);
}

// Short bounded scans skip tables whose prefix bloom rules the prefix out.
TEST_F(DBTest, PrefixBloomScanSkipsDisjointTables) {
  options_.memtable_bytes = 8 * 1024 * 1024;  // no automatic flushes
  options_.prefix_bloom_length = 4;
  Open();
  const char* groups[] = {"aaaa", "bbbb", "cccc", "dddd"};
  std::vector<std::pair<std::string, std::string>> expected;
  for (const char* group : groups) {
    for (int i = 0; i < 40; i++) {
      char suffix[8];
      snprintf(suffix, sizeof(suffix), "/%03d", i);
      std::string key = std::string(group) + suffix;
      ASSERT_TRUE(db_->Put(key, std::string("val-") + group).ok());
      if (std::string(group) == "bbbb") expected.emplace_back(key, "val-bbbb");
    }
    // One table per prefix group, so the bloom can discriminate.
    ASSERT_TRUE(db_->Flush().ok());
  }

  ReadOptions bounded;
  bounded.prefix_same_as_start = true;
  std::vector<std::pair<std::string, std::string>> rows;
  ASSERT_TRUE(db_->Scan(bounded, "bbbb", 1000, &rows).ok());
  // Truncated at the prefix boundary, not at the scan limit.
  EXPECT_EQ(rows, expected);

  // The cccc/dddd tables overlap the scan's key range but not its prefix;
  // the prefix bloom lets the scan skip them without any block reads.
  DB::Stats stats = db_->GetStats();
  EXPECT_GE(stats.prefix_bloom_skips, 2u);

  // An unbounded scan over the same start still sees past the prefix:
  // 40 bbbb rows plus the 40 cccc and 40 dddd rows after them.
  rows.clear();
  ASSERT_TRUE(db_->Scan(ReadOptions(), "bbbb", 1000, &rows).ok());
  EXPECT_EQ(rows.size(), 120u);
}

}  // namespace
}  // namespace apmbench::lsm

// Separate file-scope test: real crash recovery. The child process opens
// the database, writes, and dies without any cleanup (_exit skips
// destructors and buffered-file flushing beyond what each Put already
// pushed to the OS); the parent then recovers from whatever reached the
// filesystem.
#include <sys/wait.h>
#include <unistd.h>

namespace apmbench::lsm {
namespace {

TEST(CrashRecoveryTest, SurvivesProcessKill) {
  ScopedTempDir dir("lsm-crash");
  const int kRecords = 3000;

  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: write and die hard.
    Options options;
    options.dir = dir.path();
    options.memtable_bytes = 32 * 1024;  // force a few flushes too
    std::unique_ptr<DB> db;
    if (!DB::Open(options, &db).ok()) _exit(2);
    for (int i = 0; i < kRecords; i++) {
      if (!db->Put("key" + std::to_string(i), "value" + std::to_string(i))
               .ok()) {
        _exit(3);
      }
    }
    _exit(0);  // no destructors, no clean close
  }
  int wstatus = 0;
  ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus));
  ASSERT_EQ(WEXITSTATUS(wstatus), 0);

  // Parent: recover and verify everything the child acknowledged.
  Options options;
  options.dir = dir.path();
  options.memtable_bytes = 32 * 1024;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, &db).ok());
  std::string value;
  for (int i = 0; i < kRecords; i += 37) {
    ASSERT_TRUE(
        db->Get(ReadOptions(), "key" + std::to_string(i), &value).ok())
        << i;
    EXPECT_EQ(value, "value" + std::to_string(i));
  }
}

TEST(CrashRecoveryTest, SurvivesKillDuringDeletes) {
  ScopedTempDir dir("lsm-crash2");
  // Seed data in a clean first generation.
  {
    Options options;
    options.dir = dir.path();
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(options, &db).ok());
    for (int i = 0; i < 500; i++) {
      ASSERT_TRUE(db->Put("key" + std::to_string(i), "v").ok());
    }
    ASSERT_TRUE(db->Flush().ok());
  }
  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    Options options;
    options.dir = dir.path();
    std::unique_ptr<DB> db;
    if (!DB::Open(options, &db).ok()) _exit(2);
    for (int i = 0; i < 500; i += 2) {
      if (!db->Delete("key" + std::to_string(i)).ok()) _exit(3);
    }
    _exit(0);
  }
  int wstatus = 0;
  ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
  ASSERT_EQ(WEXITSTATUS(wstatus), 0);

  Options options;
  options.dir = dir.path();
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, &db).ok());
  std::string value;
  for (int i = 0; i < 500; i++) {
    Status s = db->Get(ReadOptions(), "key" + std::to_string(i), &value);
    if (i % 2 == 0) {
      EXPECT_TRUE(s.IsNotFound()) << i;
    } else {
      EXPECT_TRUE(s.ok()) << i;
    }
  }
}

TEST(EdgeCaseTest, BinaryKeysAndValues) {
  ScopedTempDir dir("lsm-binary");
  Options options;
  options.dir = dir.path();
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, &db).ok());
  std::string key("k\0\x01\xff mid", 8);
  std::string value("\0\0\xfe binary", 9);
  ASSERT_TRUE(db->Put(Slice(key), Slice(value)).ok());
  ASSERT_TRUE(db->Flush().ok());
  std::string out;
  ASSERT_TRUE(db->Get(ReadOptions(), Slice(key), &out).ok());
  EXPECT_EQ(out, value);
}

TEST(EdgeCaseTest, EmptyValueRoundTrip) {
  ScopedTempDir dir("lsm-empty");
  Options options;
  options.dir = dir.path();
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, &db).ok());
  ASSERT_TRUE(db->Put("key", "").ok());
  std::string out = "sentinel";
  ASSERT_TRUE(db->Get(ReadOptions(), "key", &out).ok());
  EXPECT_TRUE(out.empty());
  ASSERT_TRUE(db->Flush().ok());
  out = "sentinel";
  ASSERT_TRUE(db->Get(ReadOptions(), "key", &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(EdgeCaseTest, ScanPastEndAndEmptyDb) {
  ScopedTempDir dir("lsm-scan-edge");
  Options options;
  options.dir = dir.path();
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, &db).ok());
  std::vector<std::pair<std::string, std::string>> out;
  ASSERT_TRUE(db->Scan(ReadOptions(), "anything", 10, &out).ok());
  EXPECT_TRUE(out.empty());
  ASSERT_TRUE(db->Put("a", "1").ok());
  ASSERT_TRUE(db->Scan(ReadOptions(), "zzz", 10, &out).ok());
  EXPECT_TRUE(out.empty());
  ASSERT_TRUE(db->Scan(ReadOptions(), "", 10, &out).ok());
  EXPECT_EQ(out.size(), 1u);
}

TEST(ConcurrencyTest, ParallelWritersAndReaders) {
  ScopedTempDir dir("lsm-conc");
  Options options;
  options.dir = dir.path();
  options.memtable_bytes = 64 * 1024;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, &db).ok());

  constexpr int kThreads = 6;
  constexpr int kOpsPerThread = 3000;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t]() {
      Random rng(static_cast<uint64_t>(t) + 1);
      std::string value;
      for (int i = 0; i < kOpsPerThread; i++) {
        std::string key =
            "t" + std::to_string(t) + "-" + std::to_string(i % 500);
        int op = static_cast<int>(rng.Uniform(10));
        if (op < 6) {
          if (!db->Put(key, "v" + std::to_string(i)).ok()) failures++;
        } else if (op < 8) {
          Status s = db->Get(ReadOptions(), key, &value);
          if (!s.ok() && !s.IsNotFound()) failures++;
        } else if (op < 9) {
          std::vector<std::pair<std::string, std::string>> out;
          if (!db->Scan(ReadOptions(), key, 5, &out).ok()) failures++;
        } else {
          Status s = db->Delete(key);
          if (!s.ok()) failures++;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  // The database remains consistent after the storm.
  ASSERT_TRUE(db->CompactAll().ok());
  std::string value;
  Status s = db->Get(ReadOptions(), "t0-0", &value);
  EXPECT_TRUE(s.ok() || s.IsNotFound());
}

}  // namespace
}  // namespace apmbench::lsm

namespace apmbench::lsm {
namespace {

TEST(WriteBatchTest, AppliesAtomicallyAndInOrder) {
  ScopedTempDir dir("lsm-batch");
  Options options;
  options.dir = dir.path();
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, &db).ok());

  WriteBatch batch;
  batch.Put("a", "1");
  batch.Put("b", "2");
  batch.Delete("a");
  batch.Put("c", "3");
  EXPECT_EQ(batch.Count(), 4u);
  ASSERT_TRUE(db->Write(batch).ok());

  std::string value;
  EXPECT_TRUE(db->Get(ReadOptions(), "a", &value).IsNotFound());
  ASSERT_TRUE(db->Get(ReadOptions(), "b", &value).ok());
  EXPECT_EQ(value, "2");
  ASSERT_TRUE(db->Get(ReadOptions(), "c", &value).ok());
  EXPECT_EQ(value, "3");

  batch.Clear();
  EXPECT_EQ(batch.Count(), 0u);
  ASSERT_TRUE(db->Write(batch).ok());  // empty batch is a no-op
}

TEST(WriteBatchTest, RecoversAtomically) {
  ScopedTempDir dir("lsm-batch2");
  Options options;
  options.dir = dir.path();
  {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(options, &db).ok());
    for (int i = 0; i < 200; i++) {
      WriteBatch batch;
      for (int f = 0; f < 5; f++) {
        batch.Put("row" + std::to_string(i) + "/f" + std::to_string(f),
                  "v" + std::to_string(i));
      }
      ASSERT_TRUE(db->Write(batch).ok());
    }
  }
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, &db).ok());
  // Every recovered row has all five cells.
  std::string value;
  for (int i = 0; i < 200; i += 13) {
    for (int f = 0; f < 5; f++) {
      ASSERT_TRUE(db->Get(ReadOptions(),
                          "row" + std::to_string(i) + "/f" +
                              std::to_string(f),
                          &value)
                      .ok())
          << i << " " << f;
    }
  }
}

TEST(WriteBatchTest, CrashLeavesWholeRowsOnly) {
  // Rows written via batches are all-or-nothing across a hard kill.
  ScopedTempDir dir("lsm-batch3");
  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    Options options;
    options.dir = dir.path();
    std::unique_ptr<DB> db;
    if (!DB::Open(options, &db).ok()) _exit(2);
    for (int i = 0; i < 500; i++) {
      WriteBatch batch;
      for (int f = 0; f < 5; f++) {
        batch.Put("row" + std::to_string(i) + "/f" + std::to_string(f), "v");
      }
      if (!db->Write(batch).ok()) _exit(3);
    }
    _exit(0);
  }
  int wstatus = 0;
  ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
  ASSERT_EQ(WEXITSTATUS(wstatus), 0);

  Options options;
  options.dir = dir.path();
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, &db).ok());
  std::string value;
  for (int i = 0; i < 500; i++) {
    // Either the whole row or none of it.
    int present = 0;
    for (int f = 0; f < 5; f++) {
      if (db->Get(ReadOptions(),
                  "row" + std::to_string(i) + "/f" + std::to_string(f),
                  &value)
              .ok()) {
        present++;
      }
    }
    EXPECT_TRUE(present == 0 || present == 5) << "row " << i << " torn";
  }
}

}  // namespace
}  // namespace apmbench::lsm

namespace apmbench::lsm {
namespace {

TEST(VerifyIntegrityTest, CleanDatabasePasses) {
  ScopedTempDir dir("lsm-verify");
  Options options;
  options.dir = dir.path();
  options.memtable_bytes = 16 * 1024;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, &db).ok());
  for (int i = 0; i < 3000; i++) {
    ASSERT_TRUE(db->Put("key" + std::to_string(i), std::string(40, 'v')).ok());
  }
  ASSERT_TRUE(db->Flush().ok());
  EXPECT_TRUE(db->VerifyIntegrity().ok());
  ASSERT_TRUE(db->CompactAll().ok());
  EXPECT_TRUE(db->VerifyIntegrity().ok());
}

TEST(VerifyIntegrityTest, DetectsBitRot) {
  ScopedTempDir dir("lsm-verify2");
  Options options;
  options.dir = dir.path();
  {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(options, &db).ok());
    for (int i = 0; i < 2000; i++) {
      ASSERT_TRUE(db->Put("key" + std::to_string(i), std::string(60, 'v')).ok());
    }
    ASSERT_TRUE(db->Flush().ok());
  }
  // Flip one byte in the middle of the (single) SSTable.
  std::vector<std::string> children;
  ASSERT_TRUE(Env::Default()->GetChildren(dir.path(), &children).ok());
  std::string sst;
  for (const auto& name : children) {
    if (name.size() > 4 && name.substr(name.size() - 4) == ".sst") {
      sst = dir.path() + "/" + name;
    }
  }
  ASSERT_FALSE(sst.empty());
  std::string data;
  ASSERT_TRUE(Env::Default()->ReadFileToString(sst, &data).ok());
  data[data.size() / 3] ^= 0x40;
  ASSERT_TRUE(Env::Default()->WriteStringToFile(sst, Slice(data)).ok());

  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, &db).ok());
  EXPECT_TRUE(db->VerifyIntegrity().IsCorruption());
}

}  // namespace
}  // namespace apmbench::lsm

namespace apmbench::lsm {
namespace {

TEST(LeveledCompactionTest, DataMigratesToDeeperLevels) {
  ScopedTempDir dir("lsm-levels");
  Options options;
  options.dir = dir.path();
  options.compaction_style = CompactionStyle::kLeveled;
  options.memtable_bytes = 16 * 1024;
  options.level0_compaction_trigger = 2;
  options.level1_max_bytes = 48 * 1024;  // tiny budgets force deep levels
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, &db).ok());
  Random rng(44);
  for (int i = 0; i < 20000; i++) {
    ASSERT_TRUE(db->Put("key" + std::to_string(rng.Uniform(10000)),
                        std::string(48, 'd'))
                    .ok());
  }
  ASSERT_TRUE(db->Flush().ok());
  // The downward migration runs on background threads; on a slow or
  // single-core machine (TSan especially) the compactor may still hold a
  // backlog when the writer stops, so give it bounded time to settle
  // before inspecting the shape (no manual trigger — the point is that
  // *background* leveled compaction pushes data down on its own).
  int deepest = 0;
  for (int wait_ms = 0; wait_ms < 60000; wait_ms += 100) {
    DB::Stats stats = db->GetStats();
    deepest = 0;
    for (size_t level = 0; level < stats.files_per_level.size(); level++) {
      if (stats.files_per_level[level] > 0) deepest = static_cast<int>(level);
    }
    if (deepest >= 2) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  EXPECT_GE(deepest, 2) << "expected data below level 1";
  EXPECT_TRUE(db->VerifyIntegrity().ok());
  // Everything still readable.
  std::string value;
  Status s = db->Get(ReadOptions(), "key1", &value);
  EXPECT_TRUE(s.ok() || s.IsNotFound());
}

TEST(EdgeCaseTest, SharedPrefixKeysScanInOrder) {
  ScopedTempDir dir("lsm-prefix");
  Options options;
  options.dir = dir.path();
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, &db).ok());
  // Keys that are prefixes of each other exercise Slice::Compare's
  // shorter-is-smaller rule through memtable, SSTable, and merge paths.
  for (const char* key : {"a", "aa", "aaa", "aaaa", "ab", "b"}) {
    ASSERT_TRUE(db->Put(key, std::string("v-") + key).ok());
  }
  ASSERT_TRUE(db->Flush().ok());
  std::vector<std::pair<std::string, std::string>> out;
  ASSERT_TRUE(db->Scan(ReadOptions(), "a", 10, &out).ok());
  ASSERT_EQ(out.size(), 6u);
  EXPECT_EQ(out[0].first, "a");
  EXPECT_EQ(out[1].first, "aa");
  EXPECT_EQ(out[2].first, "aaa");
  EXPECT_EQ(out[3].first, "aaaa");
  EXPECT_EQ(out[4].first, "ab");
  EXPECT_EQ(out[5].first, "b");
}

}  // namespace
}  // namespace apmbench::lsm

namespace apmbench::lsm {
namespace {

TEST(SnapshotIteratorTest, PointInTimeViewUnderConcurrentWrites) {
  ScopedTempDir dir("lsm-snap");
  Options options;
  options.dir = dir.path();
  options.memtable_bytes = 64 * 1024;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, &db).ok());

  const int kInitial = 2000;
  for (int i = 0; i < kInitial; i++) {
    char key[16];
    snprintf(key, sizeof(key), "k%06d", i);
    ASSERT_TRUE(db->Put(key, "v" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(db->Delete("k000100").ok());

  auto iter = db->NewSnapshotIterator(ReadOptions());

  // Hammer the database while iterating the snapshot.
  std::atomic<bool> stop{false};
  std::thread writer([&]() {
    Random rng(5);
    int i = kInitial;
    while (!stop.load(std::memory_order_relaxed)) {
      char key[16];
      snprintf(key, sizeof(key), "k%06d", i++);
      db->Put(key, "new");
      db->Delete("k" + std::to_string(rng.Uniform(100000)));
    }
  });

  int count = 0;
  std::string prev;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    std::string key = iter->key().ToString();
    EXPECT_GT(key, prev);
    EXPECT_NE(key, "k000100");  // deleted before the snapshot
    prev = key;
    count++;
  }
  EXPECT_TRUE(iter->status().ok());
  EXPECT_EQ(count, kInitial - 1);  // nothing written after creation appears

  stop.store(true, std::memory_order_relaxed);
  writer.join();

  // Seek works on snapshots too.
  iter->Seek("k000500");
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(iter->key().ToString(), "k000500");
}

TEST(SnapshotIteratorTest, SpansMemtableAndTables) {
  ScopedTempDir dir("lsm-snap2");
  Options options;
  options.dir = dir.path();
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, &db).ok());
  ASSERT_TRUE(db->Put("flushed", "1").ok());
  ASSERT_TRUE(db->Flush().ok());
  ASSERT_TRUE(db->Put("inmem", "2").ok());
  ASSERT_TRUE(db->Put("flushed", "updated").ok());  // shadows the table

  auto iter = db->NewSnapshotIterator(ReadOptions());
  std::map<std::string, std::string> seen;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    seen[iter->key().ToString()] = iter->value().ToString();
  }
  EXPECT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen["flushed"], "updated");
  EXPECT_EQ(seen["inmem"], "2");
}

}  // namespace
}  // namespace apmbench::lsm
