#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/random.h"

namespace apmbench::sim {
namespace {

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(3.0, [&]() { order.push_back(3); });
  sim.Schedule(1.0, [&]() { order.push_back(1); });
  sim.Schedule(2.0, [&]() { order.push_back(2); });
  sim.RunUntil(10.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

TEST(SimulatorTest, FifoAmongEqualTimestamps) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; i++) {
    sim.Schedule(1.0, [&order, i]() { order.push_back(i); });
  }
  sim.RunUntil(2.0);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, NestedScheduling) {
  Simulator sim;
  double fired_at = -1;
  sim.Schedule(1.0, [&]() {
    sim.Schedule(0.5, [&]() { fired_at = sim.now(); });
  });
  sim.RunUntil(3.0);
  EXPECT_DOUBLE_EQ(fired_at, 1.5);
}

TEST(SimulatorTest, RunUntilStopsAtBoundary) {
  Simulator sim;
  bool late_fired = false;
  sim.Schedule(5.0, [&]() { late_fired = true; });
  sim.RunUntil(4.0);
  EXPECT_FALSE(late_fired);
  EXPECT_DOUBLE_EQ(sim.now(), 4.0);
  sim.RunUntil(6.0);
  EXPECT_TRUE(late_fired);
}

TEST(ResourceTest, SingleServerSerializes) {
  Simulator sim;
  Resource cpu(&sim, "cpu", 1);
  std::vector<double> completions;
  for (int i = 0; i < 3; i++) {
    cpu.Request(1.0, [&]() { completions.push_back(sim.now()); });
  }
  sim.RunUntil(10.0);
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_DOUBLE_EQ(completions[0], 1.0);
  EXPECT_DOUBLE_EQ(completions[1], 2.0);
  EXPECT_DOUBLE_EQ(completions[2], 3.0);
  EXPECT_EQ(cpu.completed(), 3u);
  EXPECT_DOUBLE_EQ(cpu.busy_seconds(), 3.0);
}

TEST(ResourceTest, MultiServerParallelism) {
  Simulator sim;
  Resource cpu(&sim, "cpu", 4);
  std::vector<double> completions;
  for (int i = 0; i < 8; i++) {
    cpu.Request(1.0, [&]() { completions.push_back(sim.now()); });
  }
  sim.RunUntil(10.0);
  ASSERT_EQ(completions.size(), 8u);
  // Two waves of four.
  for (int i = 0; i < 4; i++) EXPECT_DOUBLE_EQ(completions[i], 1.0);
  for (int i = 4; i < 8; i++) EXPECT_DOUBLE_EQ(completions[i], 2.0);
}

TEST(ResourceTest, BackgroundWorkDelaysForeground) {
  Simulator sim;
  Resource cpu(&sim, "cpu", 1);
  cpu.RequestBackground(2.0);
  double done_at = -1;
  cpu.Request(1.0, [&]() { done_at = sim.now(); });
  sim.RunUntil(10.0);
  EXPECT_DOUBLE_EQ(done_at, 3.0);
}

TEST(ResourceTest, MM1MatchesQueueingTheory) {
  // M/M/1 with lambda=800/s, mu=1000/s: expected sojourn time
  // W = 1/(mu-lambda) = 5 ms.
  Simulator sim;
  Resource server(&sim, "server", 1);
  Random rng(42);
  const double lambda = 800.0, mu = 1000.0;
  double total_latency = 0;
  int completed = 0;

  std::function<void()> arrive = [&]() {
    double start = sim.now();
    server.Request(rng.Exponential(1.0 / mu), [&, start]() {
      total_latency += sim.now() - start;
      completed++;
    });
    sim.Schedule(rng.Exponential(1.0 / lambda), arrive);
  };
  sim.Schedule(0, arrive);
  sim.RunUntil(200.0);

  ASSERT_GT(completed, 100000);
  double mean_sojourn = total_latency / completed;
  EXPECT_NEAR(mean_sojourn, 1.0 / (mu - lambda), 0.0012);
}

TEST(ResourceTest, ClosedLoopThroughputIsServiceBound) {
  // N=8 closed-loop clients on a 2-server resource with 10 ms service:
  // throughput = 2/0.01 = 200/s, latency = N/X = 40 ms (Little's law).
  Simulator sim;
  Resource server(&sim, "server", 2);
  int completed = 0;
  double total_latency = 0;

  std::function<void(double)> issue = [&](double) {
    double start = sim.now();
    server.Request(0.010, [&, start]() {
      total_latency += sim.now() - start;
      completed++;
      issue(0);
    });
  };
  for (int i = 0; i < 8; i++) issue(0);
  sim.RunUntil(100.0);

  double throughput = completed / 100.0;
  EXPECT_NEAR(throughput, 200.0, 2.0);
  EXPECT_NEAR(total_latency / completed, 0.040, 0.001);
}

}  // namespace
}  // namespace apmbench::sim
