#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "apm/agent.h"
#include "apm/measurement.h"
#include "apm/queries.h"
#include "stores/factory.h"
#include "tests/test_util.h"

namespace apmbench::apm {
namespace {

TEST(MeasurementCodecTest, KeyShapeMatchesBenchmark) {
  std::string key = MeasurementCodec::Key(
      "HostA/AgentX/ServletB/AverageResponseTime", 1332988833);
  // The paper's 25-byte key.
  EXPECT_EQ(key.size(), 25u);
  // Same metric, later timestamp: shares the prefix and sorts after.
  std::string later = MeasurementCodec::Key(
      "HostA/AgentX/ServletB/AverageResponseTime", 1332988843);
  EXPECT_EQ(key.substr(0, 13), later.substr(0, 13));
  EXPECT_LT(key, later);
  // Different metric: different prefix.
  std::string other = MeasurementCodec::Key("HostB/Other", 1332988833);
  EXPECT_NE(key.substr(0, 13), other.substr(0, 13));
}

TEST(MeasurementCodecTest, RecordRoundTrip) {
  Measurement m;
  m.metric = "HostA/AgentX/ServletB/AverageResponseTime";
  m.value = 4;
  m.min = 1;
  m.max = 6;
  m.timestamp = 1332988833;
  m.duration = 15;

  ycsb::Record record = MeasurementCodec::ToRecord(m);
  // The benchmark's record shape: 5 fields of 10 bytes.
  ASSERT_EQ(record.size(), 5u);
  for (const auto& [field, value] : record) {
    EXPECT_EQ(value.size(), 10u) << field;
  }

  Measurement parsed;
  ASSERT_TRUE(MeasurementCodec::FromRecord(record, &parsed).ok());
  EXPECT_NEAR(parsed.value, 4, 1e-3);
  EXPECT_NEAR(parsed.min, 1, 1e-3);
  EXPECT_NEAR(parsed.max, 6, 1e-3);
  EXPECT_EQ(parsed.timestamp, 1332988833u);
  EXPECT_EQ(parsed.duration, 15u);
}

TEST(MeasurementCodecTest, FromRecordToleratesFieldReordering) {
  Measurement m;
  m.metric = "x";
  m.value = 3.5;
  m.timestamp = 1000;
  m.duration = 10;
  ycsb::Record record = MeasurementCodec::ToRecord(m);
  std::swap(record[0], record[4]);
  std::swap(record[1], record[3]);
  Measurement parsed;
  ASSERT_TRUE(MeasurementCodec::FromRecord(record, &parsed).ok());
  EXPECT_NEAR(parsed.value, 3.5, 1e-3);
  EXPECT_EQ(parsed.timestamp, 1000u);
}

TEST(MeasurementCodecTest, RejectsTruncatedRecords) {
  Measurement parsed;
  ycsb::Record record = {{"field0", "123"}};
  EXPECT_TRUE(MeasurementCodec::FromRecord(record, &parsed).IsCorruption());
}

TEST(AgentFleetTest, TickProducesAllMetrics) {
  FleetConfig config;
  config.hosts = 3;
  config.metrics_per_host = 7;
  AgentFleet fleet(config);
  auto measurements = fleet.Tick(5000);
  ASSERT_EQ(measurements.size(), 21u);
  for (const auto& m : measurements) {
    EXPECT_EQ(m.timestamp, 5000u);
    EXPECT_EQ(m.duration, config.interval_seconds);
    EXPECT_LE(m.min, m.value);
    EXPECT_GE(m.max, m.value);
  }
  EXPECT_DOUBLE_EQ(fleet.measurements_per_second(), 2.1);
}

TEST(AgentFleetTest, ReplayWritesToDb) {
  testutil::BasicDB db;
  FleetConfig config;
  config.hosts = 2;
  config.metrics_per_host = 5;
  AgentFleet fleet(config);
  uint64_t written = 0;
  ASSERT_TRUE(fleet.Replay(&db, "apm", 1000, 6, &written).ok());
  EXPECT_EQ(written, 60u);
  EXPECT_EQ(db.size(), 60u);
}

TEST(WindowQueryTest, MaxOverWindow) {
  // The Section-2 query: max connections on host X in the last 10 min.
  testutil::BasicDB db;
  const std::string metric = "HostX/Agent0/Net/Connections";
  for (int i = 0; i < 120; i++) {
    Measurement m;
    m.metric = metric;
    m.value = 50 + (i % 10);
    m.min = m.value - 1;
    m.max = (i == 70) ? 999 : m.value + 1;  // spike inside the window
    m.timestamp = 10000 + static_cast<uint64_t>(i) * 10;
    m.duration = 10;
    ASSERT_TRUE(MeasurementCodec::Write(&db, "apm", m).ok());
  }
  // Window covering samples 60..119 (the last 10 minutes).
  WindowAggregate result;
  ASSERT_TRUE(
      WindowQuery(&db, "apm", metric, 10600, 11190, &result).ok());
  EXPECT_EQ(result.samples, 60);
  EXPECT_DOUBLE_EQ(result.max, 999);
  EXPECT_GT(result.avg, 49);
  EXPECT_LT(result.avg, 61);

  // A window before the data: NotFound.
  EXPECT_TRUE(
      WindowQuery(&db, "apm", metric, 10, 20, &result).IsNotFound());
}

TEST(WindowQueryTest, DoesNotLeakAcrossMetrics) {
  testutil::BasicDB db;
  Measurement m;
  m.metric = "MetricA";
  m.value = 1;
  m.timestamp = 1000;
  m.duration = 10;
  ASSERT_TRUE(MeasurementCodec::Write(&db, "apm", m).ok());
  m.metric = "MetricB";
  m.value = 100000;
  ASSERT_TRUE(MeasurementCodec::Write(&db, "apm", m).ok());

  WindowAggregate result;
  ASSERT_TRUE(WindowQuery(&db, "apm", "MetricA", 0, 2000, &result).ok());
  EXPECT_EQ(result.samples, 1);
  EXPECT_NEAR(result.avg, 1, 1e-3);
}

TEST(FleetAverageTest, AveragesAcrossHosts) {
  // The second Section-2 query: average CPU across web servers of a type.
  testutil::BasicDB db;
  std::vector<std::string> metrics;
  for (int host = 0; host < 4; host++) {
    std::string metric =
        "Host" + std::to_string(host) + "/Agent0/CPU/Utilization";
    metrics.push_back(metric);
    for (int i = 0; i < 90; i++) {
      Measurement m;
      m.metric = metric;
      m.value = 10.0 * (host + 1);  // host h averages 10*(h+1)
      m.min = m.value;
      m.max = m.value;
      m.timestamp = 20000 + static_cast<uint64_t>(i) * 10;
      m.duration = 10;
      ASSERT_TRUE(MeasurementCodec::Write(&db, "apm", m).ok());
    }
  }
  WindowAggregate result;
  ASSERT_TRUE(
      FleetAverage(&db, "apm", metrics, 20000, 20890, &result).ok());
  EXPECT_EQ(result.samples, 4 * 90);
  EXPECT_NEAR(result.avg, 25.0, 1e-3);  // (10+20+30+40)/4
}

TEST(ApmEndToEndTest, AgentsToStoreToQueries) {
  // The full pipeline on a real store: agents feed a Cassandra-like
  // cluster; on-line queries read back through ordered scans.
  testutil::ScopedTempDir dir("apm-e2e");
  stores::StoreOptions options;
  options.base_dir = dir.path();
  options.num_nodes = 2;
  std::unique_ptr<ycsb::DB> db;
  ASSERT_TRUE(stores::CreateStore("cassandra", options, &db).ok());

  FleetConfig config;
  config.hosts = 4;
  config.metrics_per_host = 10;
  AgentFleet fleet(config);
  uint64_t written = 0;
  ASSERT_TRUE(fleet.Replay(db.get(), "apm", 50000, 12, &written).ok());
  EXPECT_EQ(written, 480u);

  WindowAggregate result;
  ASSERT_TRUE(WindowQuery(db.get(), "apm", fleet.MetricName(1, 3), 50000,
                          50110, &result)
                  .ok());
  EXPECT_EQ(result.samples, 12);
  EXPECT_GE(result.max, result.avg);
  EXPECT_LE(result.min, result.avg);
}

}  // namespace
}  // namespace apmbench::apm

#include "apm/triggers.h"

namespace apmbench::apm {
namespace {

Measurement Sample(const std::string& metric, double value, uint64_t ts) {
  Measurement m;
  m.metric = metric;
  m.value = value;
  m.min = value;
  m.max = value;
  m.timestamp = ts;
  m.duration = 10;
  return m;
}

TEST(TriggerEngineTest, FiresOnThresholdBreach) {
  TriggerEngine engine;
  TriggerRule rule;
  rule.metric = "HostA/CPU";
  rule.threshold = 90.0;
  engine.AddRule(rule);

  EXPECT_TRUE(engine.Observe(Sample("HostA/CPU", 50, 100)).empty());
  auto fired = engine.Observe(Sample("HostA/CPU", 95, 110));
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].metric, "HostA/CPU");
  EXPECT_DOUBLE_EQ(fired[0].value, 95);
  EXPECT_EQ(fired[0].timestamp, 110u);
  // Still breaching: no duplicate notification until recovery.
  EXPECT_TRUE(engine.Observe(Sample("HostA/CPU", 96, 120)).empty());
  // Recover, breach again: fires again.
  EXPECT_TRUE(engine.Observe(Sample("HostA/CPU", 40, 130)).empty());
  EXPECT_EQ(engine.Observe(Sample("HostA/CPU", 99, 140)).size(), 1u);
  EXPECT_EQ(engine.notifications_fired(), 2u);
}

TEST(TriggerEngineTest, DebouncesConsecutiveIntervals) {
  TriggerEngine engine;
  TriggerRule rule;
  rule.metric = "HostB/Errors";
  rule.threshold = 10.0;
  rule.consecutive_intervals = 3;
  engine.AddRule(rule);

  EXPECT_TRUE(engine.Observe(Sample("HostB/Errors", 50, 1)).empty());
  EXPECT_TRUE(engine.Observe(Sample("HostB/Errors", 50, 2)).empty());
  // Dip resets the run.
  EXPECT_TRUE(engine.Observe(Sample("HostB/Errors", 5, 3)).empty());
  EXPECT_TRUE(engine.Observe(Sample("HostB/Errors", 50, 4)).empty());
  EXPECT_TRUE(engine.Observe(Sample("HostB/Errors", 50, 5)).empty());
  auto fired = engine.Observe(Sample("HostB/Errors", 50, 6));
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].breached_intervals, 3);
}

TEST(TriggerEngineTest, BelowDirectionAndUnrelatedMetrics) {
  TriggerEngine engine;
  TriggerRule rule;
  rule.metric = "HostC/FreeDiskGB";
  rule.threshold = 5.0;
  rule.direction = TriggerRule::Direction::kBelow;
  engine.AddRule(rule);

  EXPECT_TRUE(engine.Observe(Sample("HostC/FreeDiskGB", 20, 1)).empty());
  EXPECT_TRUE(engine.Observe(Sample("OtherMetric", 0, 1)).empty());
  EXPECT_EQ(engine.Observe(Sample("HostC/FreeDiskGB", 2, 2)).size(), 1u);
}

TEST(TriggerEngineTest, MultipleRulesPerMetric) {
  TriggerEngine engine;
  TriggerRule warn;
  warn.metric = "M";
  warn.threshold = 50;
  TriggerRule crit;
  crit.metric = "M";
  crit.threshold = 90;
  engine.AddRule(warn);
  engine.AddRule(crit);
  EXPECT_EQ(engine.rule_count(), 2u);
  EXPECT_EQ(engine.Observe(Sample("M", 60, 1)).size(), 1u);   // warn only
  EXPECT_EQ(engine.Observe(Sample("M", 95, 2)).size(), 1u);   // crit joins
  EXPECT_EQ(engine.notifications_fired(), 2u);
}

}  // namespace
}  // namespace apmbench::apm

#include "apm/archive.h"

namespace apmbench::apm {
namespace {

class ArchiveTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // One metric, 1 sample / 10s for 2 "hours" starting at t0; value ramps
    // by the hour so bucket averages are predictable.
    for (int i = 0; i < 720; i++) {
      Measurement m;
      m.metric = kMetric;
      m.value = (i < 360) ? 10.0 : 30.0;
      m.min = m.value - 1;
      m.max = m.value + 1;
      m.timestamp = kT0 + static_cast<uint64_t>(i) * 10;
      m.duration = 10;
      ASSERT_TRUE(MeasurementCodec::Write(&db_, "apm", m).ok());
    }
  }

  static constexpr uint64_t kT0 = 1000000;
  static constexpr const char* kMetric = "AppY/DbZ/CallResponseTime";
  testutil::BasicDB db_;
};

TEST_F(ArchiveTest, SeriesBucketsCorrectly) {
  std::vector<SeriesPoint> series;
  // Hourly buckets over the two hours.
  ASSERT_TRUE(ArchiveSeries(&db_, "apm", kMetric, kT0, kT0 + 7199, 3600,
                            &series)
                  .ok());
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0].bucket_start, kT0);
  EXPECT_EQ(series[0].samples, 360);
  EXPECT_NEAR(series[0].avg, 10.0, 1e-9);
  EXPECT_NEAR(series[0].min, 9.0, 1e-9);
  EXPECT_EQ(series[1].bucket_start, kT0 + 3600);
  EXPECT_NEAR(series[1].avg, 30.0, 1e-9);
  EXPECT_NEAR(series[1].max, 31.0, 1e-9);
}

TEST_F(ArchiveTest, SeriesPartialWindowAndErrors) {
  std::vector<SeriesPoint> series;
  // Quarter-hour buckets over 30 minutes.
  ASSERT_TRUE(ArchiveSeries(&db_, "apm", kMetric, kT0, kT0 + 1799, 900,
                            &series)
                  .ok());
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0].samples, 90);
  EXPECT_TRUE(ArchiveSeries(&db_, "apm", kMetric, kT0, kT0 + 100, 0, &series)
                  .IsInvalidArgument());
  EXPECT_TRUE(
      ArchiveSeries(&db_, "apm", "Nope", kT0, kT0 + 100, 10, &series)
          .IsNotFound());
}

TEST_F(ArchiveTest, MaxBucketAverageFindsTheHotHour) {
  double max_average = 0;
  ASSERT_TRUE(ArchiveMaxBucketAverage(&db_, "apm", kMetric, kT0, kT0 + 7199,
                                      3600, &max_average)
                  .ok());
  EXPECT_NEAR(max_average, 30.0, 1e-9);
}

TEST(ArchiveAggregateTest, WeightsByReplicaSamples) {
  // "Average response time across replications of servlet X": replica A
  // has 3x the samples of replica B, so the aggregate leans toward A.
  testutil::BasicDB db;
  auto write = [&](const std::string& metric, double value, int n) {
    for (int i = 0; i < n; i++) {
      Measurement m;
      m.metric = metric;
      m.value = value;
      m.min = value;
      m.max = value;
      m.timestamp = 5000 + static_cast<uint64_t>(i) * 10;
      m.duration = 10;
      ASSERT_TRUE(MeasurementCodec::Write(&db, "apm", m).ok());
    }
  };
  write("ServletX/replica0/ResponseTime", 10.0, 300);
  write("ServletX/replica1/ResponseTime", 50.0, 100);

  WindowAggregate result;
  ASSERT_TRUE(ArchiveAggregate(
                  &db, "apm",
                  {"ServletX/replica0/ResponseTime",
                   "ServletX/replica1/ResponseTime"},
                  0, 100000, &result)
                  .ok());
  EXPECT_EQ(result.samples, 400);
  EXPECT_NEAR(result.avg, (10.0 * 300 + 50.0 * 100) / 400, 1e-9);
  EXPECT_NEAR(result.min, 10.0, 1e-9);
  EXPECT_NEAR(result.max, 50.0, 1e-9);
}

}  // namespace
}  // namespace apmbench::apm
