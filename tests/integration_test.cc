#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "apm/agent.h"
#include "apm/queries.h"
#include "common/properties.h"
#include "simstores/runner.h"
#include "stores/factory.h"
#include "tests/test_util.h"
#include "ycsb/client.h"
#include "ycsb/workload.h"

namespace apmbench {
namespace {

using testutil::ScopedTempDir;

// ---------------------------------------------------------------------
// Figure-harness smoke: every (model, workload, cluster) combination the
// bench binaries exercise must run and produce sane output at tiny scale.
// ---------------------------------------------------------------------

struct SimCase {
  const char* model;
  const char* workload;
  bool cluster_d;
};

class SimMatrixTest : public ::testing::TestWithParam<SimCase> {};

TEST_P(SimMatrixTest, ProducesSaneResults) {
  const SimCase& test_case = GetParam();
  simstores::ClusterParams cluster =
      test_case.cluster_d ? simstores::ClusterParams::ClusterD(8)
                          : simstores::ClusterParams::ClusterM(4);
  simstores::WorkloadSpec spec =
      simstores::WorkloadSpec::Preset(test_case.workload);
  simstores::SimRunConfig config;
  config.duration_seconds = 2.0;
  config.warmup_seconds = 0.5;
  simstores::SimResult result;
  Status status = simstores::RunSimulation(test_case.model, cluster, spec,
                                           config, &result);
  ASSERT_TRUE(status.ok()) << status.ToString();
  if (std::string(test_case.model) == "mysql" &&
      std::string(test_case.workload) == "RSW") {
    // The paper's result for this cell is < 1 op/s at 4+ nodes: a single
    // tail scan under next-key locking outlasts this short run. Nothing
    // completing IS the expected behavior.
    return;
  }
  EXPECT_GT(result.throughput_ops_sec, 0);
  EXPECT_GT(result.total_completed, 0u);
  // Latencies are positive and bounded by the run length.
  for (simstores::OpKind kind :
       {simstores::OpKind::kRead, simstores::OpKind::kInsert,
        simstores::OpKind::kScan}) {
    const Histogram& h = result.latency(kind);
    if (h.count() == 0) continue;
    EXPECT_GT(h.Mean(), 0);
    EXPECT_LT(h.Mean(), 2.0 * 1e6);  // < run length in us
  }
}

std::vector<SimCase> AllSimCases() {
  std::vector<SimCase> cases;
  for (const char* model :
       {"cassandra", "hbase", "voldemort", "redis", "voltdb", "mysql"}) {
    for (const char* workload : {"R", "RW", "W", "RS", "RSW"}) {
      bool has_scans =
          std::string(workload) == "RS" || std::string(workload) == "RSW";
      if (has_scans && std::string(model) == "voldemort") continue;
      cases.push_back({model, workload, false});
    }
  }
  // Cluster D runs only R/RW/W on the three disk stores (as in the paper).
  for (const char* model : {"cassandra", "hbase", "voldemort"}) {
    for (const char* workload : {"R", "RW", "W"}) {
      cases.push_back({model, workload, true});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllCombinations, SimMatrixTest, ::testing::ValuesIn(AllSimCases()),
    [](const ::testing::TestParamInfo<SimCase>& info) {
      return std::string(info.param.model) + "_" + info.param.workload +
             (info.param.cluster_d ? "_D" : "_M");
    });

// ---------------------------------------------------------------------
// Replication (Section 8 future work): write-heavy throughput falls with
// the replication factor; read-heavy barely moves.
// ---------------------------------------------------------------------

TEST(ReplicationTest, WriteThroughputFallsWithRf) {
  auto run = [](int rf, const char* workload) {
    simstores::ClusterParams cluster = simstores::ClusterParams::ClusterM(8);
    cluster.replication_factor = rf;
    simstores::SimRunConfig config;
    config.duration_seconds = 4.0;
    config.warmup_seconds = 1.0;
    simstores::SimResult result;
    Status status = simstores::RunSimulation(
        "cassandra", cluster, simstores::WorkloadSpec::Preset(workload),
        config, &result);
    EXPECT_TRUE(status.ok());
    return result.throughput_ops_sec;
  };
  double w_rf1 = run(1, "W");
  double w_rf3 = run(3, "W");
  EXPECT_LT(w_rf3, w_rf1 * 0.6);
  double r_rf1 = run(1, "R");
  double r_rf3 = run(3, "R");
  EXPECT_GT(r_rf3, r_rf1 * 0.85);
}

// ---------------------------------------------------------------------
// Store persistence: the disk-backed stores must survive close + reopen
// with their data intact (the benchmark scripts reinstalled systems
// between runs; a real deployment must not).
// ---------------------------------------------------------------------

class StorePersistenceTest : public ::testing::TestWithParam<std::string> {};

TEST_P(StorePersistenceTest, DataSurvivesReopen) {
  const std::string name = GetParam();
  ScopedTempDir dir("persist-" + name);
  stores::StoreOptions options;
  options.base_dir = dir.path();
  options.num_nodes = 3;
  options.redis_aof = true;  // persistence for the redis store

  ycsb::Record record = {{"field0", "persisted0"}, {"field1", "persisted1"}};
  {
    std::unique_ptr<ycsb::DB> db;
    ASSERT_TRUE(stores::CreateStore(name, options, &db).ok());
    for (int i = 0; i < 200; i++) {
      char key[32];
      snprintf(key, sizeof(key), "user%021d", i);
      ASSERT_TRUE(db->Insert("t", key, record).ok());
    }
    ASSERT_TRUE(db->Delete("t", "user000000000000000000007").ok());
  }
  {
    std::unique_ptr<ycsb::DB> db;
    ASSERT_TRUE(stores::CreateStore(name, options, &db).ok());
    ycsb::Record read_back;
    ASSERT_TRUE(db->Read("t", "user000000000000000000042", &read_back).ok());
    std::map<std::string, std::string> got(read_back.begin(),
                                           read_back.end());
    EXPECT_EQ(got["field0"], "persisted0");
    EXPECT_TRUE(
        db->Read("t", "user000000000000000000007", &read_back).IsNotFound());
  }
}

INSTANTIATE_TEST_SUITE_P(
    PersistentStores, StorePersistenceTest,
    ::testing::Values("cassandra", "hbase", "voldemort", "mysql", "redis"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

// ---------------------------------------------------------------------
// APM pipeline across stores: agents -> store -> window queries.
// ---------------------------------------------------------------------

class ApmPipelineTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ApmPipelineTest, WindowQueriesOverScannableStores) {
  const std::string name = GetParam();
  ScopedTempDir dir("apm-pipe-" + name);
  stores::StoreOptions options;
  options.base_dir = dir.path();
  options.num_nodes = 2;
  std::unique_ptr<ycsb::DB> db;
  ASSERT_TRUE(stores::CreateStore(name, options, &db).ok());

  apm::FleetConfig config;
  config.hosts = 3;
  config.metrics_per_host = 4;
  apm::AgentFleet fleet(config);
  uint64_t written = 0;
  ASSERT_TRUE(fleet.Replay(db.get(), "apm", 90000, 10, &written).ok());
  ASSERT_EQ(written, 120u);

  apm::WindowAggregate window;
  ASSERT_TRUE(apm::WindowQuery(db.get(), "apm", fleet.MetricName(0, 0),
                               90000, 90090, &window)
                  .ok());
  EXPECT_EQ(window.samples, 10);
  EXPECT_LE(window.min, window.avg);
  EXPECT_GE(window.max, window.avg);
}

INSTANTIATE_TEST_SUITE_P(
    ScannableStores, ApmPipelineTest,
    ::testing::Values("cassandra", "hbase", "redis", "voltdb"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

// ---------------------------------------------------------------------
// End-to-end benchmark consistency: the YCSB runner over an embedded
// store leaves the store holding exactly the records it acknowledged.
// ---------------------------------------------------------------------

TEST(BenchmarkConsistencyTest, InsertsAreDurableAndReadable) {
  ScopedTempDir dir("bench-consistency");
  stores::StoreOptions options;
  options.base_dir = dir.path();
  options.num_nodes = 2;
  std::unique_ptr<ycsb::DB> db;
  ASSERT_TRUE(stores::CreateStore("cassandra", options, &db).ok());

  Properties props;
  ASSERT_TRUE(ycsb::CoreWorkload::Table1Preset("W", &props).ok());
  props.Set("recordcount", "500");
  ycsb::CoreWorkload workload(props);
  ASSERT_TRUE(ycsb::LoadDatabase(db.get(), &workload, 2).ok());

  ycsb::RunConfig config;
  config.threads = 4;
  config.operation_count = 4000;
  ycsb::RunResult result;
  ASSERT_TRUE(ycsb::RunWorkload(db.get(), &workload, config, &result).ok());
  uint64_t inserts = result.measurements.ok_count(ycsb::OpType::kInsert);
  EXPECT_EQ(result.measurements.error_count(ycsb::OpType::kInsert), 0u);

  // Every acknowledged insert is readable: key numbers 500 ..
  // 500+inserts-1 were claimed in order by NextInsertKeyNum.
  ycsb::Record record;
  for (uint64_t keynum = 500; keynum < 500 + inserts; keynum += 97) {
    std::string key = workload.BuildKeyName(keynum);
    EXPECT_TRUE(db->Read(workload.table(), Slice(key), &record).ok())
        << keynum;
  }
}

}  // namespace
}  // namespace apmbench
