#include "common/skiplist.h"

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "common/random.h"
#include "common/slice.h"

namespace apmbench {
namespace {

struct StrCompare {
  int operator()(const std::string& a, const std::string& b) const {
    return Slice(a).Compare(Slice(b));
  }
};

using StrList = SkipList<std::string, int, StrCompare>;

TEST(SkipListTest, InsertFindErase) {
  StrList list;
  EXPECT_TRUE(list.Insert("b", 2));
  EXPECT_TRUE(list.Insert("a", 1));
  EXPECT_TRUE(list.Insert("c", 3));
  EXPECT_EQ(list.size(), 3u);

  ASSERT_NE(list.Find("b"), nullptr);
  EXPECT_EQ(*list.Find("b"), 2);
  EXPECT_EQ(list.Find("zz"), nullptr);

  // Overwrite.
  EXPECT_FALSE(list.Insert("b", 20));
  EXPECT_EQ(*list.Find("b"), 20);
  EXPECT_EQ(list.size(), 3u);

  EXPECT_TRUE(list.Erase("b"));
  EXPECT_FALSE(list.Erase("b"));
  EXPECT_EQ(list.Find("b"), nullptr);
  EXPECT_EQ(list.size(), 2u);
}

TEST(SkipListTest, OrderedIteration) {
  StrList list;
  list.Insert("delta", 4);
  list.Insert("alpha", 1);
  list.Insert("charlie", 3);
  list.Insert("bravo", 2);

  StrList::Iterator iter(&list);
  iter.SeekToFirst();
  std::string prev;
  int count = 0;
  while (iter.Valid()) {
    EXPECT_GT(iter.key(), prev);
    prev = iter.key();
    iter.Next();
    count++;
  }
  EXPECT_EQ(count, 4);
}

TEST(SkipListTest, SeekSemantics) {
  StrList list;
  list.Insert("b", 1);
  list.Insert("d", 2);
  list.Insert("f", 3);

  StrList::Iterator iter(&list);
  iter.Seek("c");
  ASSERT_TRUE(iter.Valid());
  EXPECT_EQ(iter.key(), "d");
  iter.Seek("d");
  ASSERT_TRUE(iter.Valid());
  EXPECT_EQ(iter.key(), "d");
  iter.Seek("g");
  EXPECT_FALSE(iter.Valid());
}

TEST(SkipListTest, PropertyAgainstStdMap) {
  StrList list;
  std::map<std::string, int> model;
  Random rng(123);
  for (int i = 0; i < 20000; i++) {
    std::string key = "k" + std::to_string(rng.Uniform(2000));
    int op = static_cast<int>(rng.Uniform(3));
    if (op == 0) {
      int value = static_cast<int>(rng.Uniform(1000));
      bool fresh = list.Insert(key, value);
      bool model_fresh = model.find(key) == model.end();
      EXPECT_EQ(fresh, model_fresh);
      model[key] = value;
    } else if (op == 1) {
      const int* found = list.Find(key);
      auto it = model.find(key);
      if (it == model.end()) {
        EXPECT_EQ(found, nullptr);
      } else {
        ASSERT_NE(found, nullptr);
        EXPECT_EQ(*found, it->second);
      }
    } else {
      EXPECT_EQ(list.Erase(key), model.erase(key) > 0);
    }
    EXPECT_EQ(list.size(), model.size());
  }
  // Final: iteration order matches the model exactly.
  StrList::Iterator iter(&list);
  iter.SeekToFirst();
  for (const auto& [key, value] : model) {
    ASSERT_TRUE(iter.Valid());
    EXPECT_EQ(iter.key(), key);
    EXPECT_EQ(iter.value(), value);
    iter.Next();
  }
  EXPECT_FALSE(iter.Valid());
}

}  // namespace
}  // namespace apmbench
