// Tests for the binary-protocol serving layer (src/net): frame codec
// round-trips, torn/garbage/oversized-frame handling in the incremental
// decoder, socket-level pipelining, abrupt-disconnect robustness (no fd
// leaks, no cross-connection corruption), and the RemoteStore end to end.

#include <arpa/inet.h>
#include <dirent.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/remote_store.h"
#include "net/server.h"
#include "tests/test_util.h"

namespace apmbench::net {
namespace {

ycsb::Record MakeRecord(int fields) {
  ycsb::Record record;
  for (int i = 0; i < fields; i++) {
    record.emplace_back("field" + std::to_string(i),
                        "value-" + std::to_string(i * 31));
  }
  return record;
}

// ---------------------------------------------------------------------
// Frame codec round-trips.

TEST(ProtocolTest, RequestRoundTripAllOpcodes) {
  const Opcode ops[] = {Opcode::kPing,   Opcode::kRead,   Opcode::kScan,
                        Opcode::kInsert, Opcode::kUpdate, Opcode::kDelete,
                        Opcode::kDiskUsage};
  uint64_t id = 100;
  for (Opcode op : ops) {
    Request request;
    request.op = op;
    if (op != Opcode::kPing && op != Opcode::kDiskUsage) {
      request.table = "usertable";
      request.key = "user42";
    }
    if (op == Opcode::kScan) request.count = 77;
    if (op == Opcode::kInsert || op == Opcode::kUpdate) {
      request.record = MakeRecord(5);
    }
    std::string wire;
    EncodeRequest(request, id, &wire);

    FrameDecoder decoder;
    decoder.Feed(wire.data(), wire.size());
    Frame frame;
    ASSERT_EQ(decoder.Next(&frame), FrameDecoder::Result::kFrame)
        << OpcodeName(op);
    EXPECT_EQ(frame.op, op);
    EXPECT_EQ(frame.request_id, id);
    Request decoded;
    ASSERT_TRUE(DecodeRequest(frame, &decoded)) << OpcodeName(op);
    EXPECT_EQ(decoded.table, request.table);
    EXPECT_EQ(decoded.key, request.key);
    EXPECT_EQ(decoded.count, request.count);
    EXPECT_EQ(decoded.record, request.record);
    EXPECT_EQ(decoder.Next(&frame), FrameDecoder::Result::kNeedMore);
    id++;
  }
}

TEST(ProtocolTest, ResponseRoundTrip) {
  Response response;
  response.status = Status::OK();
  response.record = MakeRecord(10);
  std::string wire;
  EncodeResponse(Opcode::kRead, 9, response, &wire);

  FrameDecoder decoder;
  decoder.Feed(wire.data(), wire.size());
  Frame frame;
  ASSERT_EQ(decoder.Next(&frame), FrameDecoder::Result::kFrame);
  Response decoded;
  ASSERT_TRUE(DecodeResponse(frame, &decoded));
  EXPECT_TRUE(decoded.status.ok());
  EXPECT_EQ(decoded.record, response.record);

  // Scan response with keys.
  response = Response();
  for (int i = 0; i < 3; i++) {
    response.records.push_back(
        ycsb::KeyedRecord{"key" + std::to_string(i), MakeRecord(2)});
  }
  wire.clear();
  EncodeResponse(Opcode::kScan, 10, response, &wire);
  decoder.Feed(wire.data(), wire.size());
  ASSERT_EQ(decoder.Next(&frame), FrameDecoder::Result::kFrame);
  ASSERT_TRUE(DecodeResponse(frame, &decoded));
  ASSERT_EQ(decoded.records.size(), 3u);
  EXPECT_EQ(decoded.records[1].key, "key1");
  EXPECT_EQ(decoded.records[2].record, response.records[2].record);

  // An error status crosses the wire with its message, and carries no
  // body.
  response = Response();
  response.status = Status::NotFound("user99 missing");
  wire.clear();
  EncodeResponse(Opcode::kRead, 11, response, &wire);
  decoder.Feed(wire.data(), wire.size());
  ASSERT_EQ(decoder.Next(&frame), FrameDecoder::Result::kFrame);
  ASSERT_TRUE(DecodeResponse(frame, &decoded));
  EXPECT_TRUE(decoded.status.IsNotFound());
  EXPECT_EQ(decoded.status.message(), "user99 missing");
}

// ---------------------------------------------------------------------
// Torn frames, garbage, oversized lengths.

TEST(FrameDecoderTest, TornFrameByteByByte) {
  Request request;
  request.op = Opcode::kInsert;
  request.table = "t";
  request.key = "k";
  request.record = MakeRecord(8);
  std::string wire;
  EncodeRequest(request, 3, &wire);
  // Two frames, delivered one byte at a time: the decoder must produce
  // exactly two frames, each only once the last byte lands.
  EncodeRequest(request, 4, &wire);

  FrameDecoder decoder;
  Frame frame;
  int frames = 0;
  for (size_t i = 0; i < wire.size(); i++) {
    decoder.Feed(wire.data() + i, 1);
    for (;;) {
      FrameDecoder::Result r = decoder.Next(&frame);
      if (r != FrameDecoder::Result::kFrame) {
        ASSERT_EQ(r, FrameDecoder::Result::kNeedMore);
        break;
      }
      frames++;
      EXPECT_EQ(frame.request_id, static_cast<uint64_t>(2 + frames));
    }
  }
  EXPECT_EQ(frames, 2);
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(FrameDecoderTest, GarbageBytesLatchError) {
  std::string garbage = "GET / HTTP/1.1\r\nHost: example.com\r\n\r\n";
  FrameDecoder decoder;
  decoder.Feed(garbage.data(), garbage.size());
  Frame frame;
  EXPECT_EQ(decoder.Next(&frame), FrameDecoder::Result::kError);
  EXPECT_FALSE(decoder.error().empty());
  // The error latches: even valid bytes fed later stay rejected.
  std::string wire;
  Request ping;
  ping.op = Opcode::kPing;
  EncodeRequest(ping, 1, &wire);
  decoder.Feed(wire.data(), wire.size());
  EXPECT_EQ(decoder.Next(&frame), FrameDecoder::Result::kError);
}

TEST(FrameDecoderTest, BadVersionFlagsAndCrc) {
  Request ping;
  ping.op = Opcode::kPing;
  std::string wire;
  EncodeRequest(ping, 1, &wire);

  {
    std::string bad = wire;
    bad[1] = static_cast<char>(kProtocolVersion + 1);
    FrameDecoder decoder;
    decoder.Feed(bad.data(), bad.size());
    Frame frame;
    EXPECT_EQ(decoder.Next(&frame), FrameDecoder::Result::kError);
  }
  {
    std::string bad = wire;
    bad[3] = 0x40;  // reserved flags must be zero
    FrameDecoder decoder;
    decoder.Feed(bad.data(), bad.size());
    Frame frame;
    EXPECT_EQ(decoder.Next(&frame), FrameDecoder::Result::kError);
  }
  {
    // Corrupt the payload of a non-empty frame: CRC must catch it.
    Request insert;
    insert.op = Opcode::kInsert;
    insert.table = "t";
    insert.key = "k";
    insert.record = MakeRecord(2);
    std::string bad;
    EncodeRequest(insert, 2, &bad);
    bad[kFrameHeaderBytes + 2] ^= 0x5a;
    FrameDecoder decoder;
    decoder.Feed(bad.data(), bad.size());
    Frame frame;
    EXPECT_EQ(decoder.Next(&frame), FrameDecoder::Result::kError);
    EXPECT_NE(decoder.error().find("CRC"), std::string::npos);
  }
}

TEST(FrameDecoderTest, OversizedLengthRejectedBeforeBuffering) {
  // A header advertising a 4 GB payload must fail immediately from the
  // 16 header bytes alone — not wait for (or allocate) the payload.
  std::string header;
  header.push_back(static_cast<char>(kFrameMagic));
  header.push_back(static_cast<char>(kProtocolVersion));
  header.push_back(static_cast<char>(Opcode::kPing));
  header.push_back(0);
  header.append(8, '\0');                  // request id
  header.append("\xff\xff\xff\xff", 4);    // payload_len = 0xffffffff
  FrameDecoder decoder;
  decoder.Feed(header.data(), header.size());
  Frame frame;
  EXPECT_EQ(decoder.Next(&frame), FrameDecoder::Result::kError);
  EXPECT_NE(decoder.error().find("oversized"), std::string::npos);
  EXPECT_LE(decoder.buffered_bytes(), header.size());
}

TEST(FrameDecoderTest, RandomCorruptionFuzz) {
  // Flip random bytes in a valid multi-frame stream; the decoder must
  // either produce frames or latch an error — never crash or hand back a
  // torn payload as valid.
  std::mt19937 rng(20260808);
  Request insert;
  insert.op = Opcode::kInsert;
  insert.table = "usertable";
  insert.key = "user1";
  insert.record = MakeRecord(6);
  std::string clean;
  for (uint64_t id = 1; id <= 8; id++) EncodeRequest(insert, id, &clean);

  for (int iter = 0; iter < 500; iter++) {
    std::string stream = clean;
    int flips = 1 + static_cast<int>(rng() % 4);
    for (int i = 0; i < flips; i++) {
      stream[rng() % stream.size()] ^=
          static_cast<char>(1 + rng() % 255);
    }
    FrameDecoder decoder;
    size_t fed = 0;
    int frames = 0;
    while (fed < stream.size()) {
      size_t chunk = 1 + rng() % 37;
      if (chunk > stream.size() - fed) chunk = stream.size() - fed;
      decoder.Feed(stream.data() + fed, chunk);
      fed += chunk;
      Frame frame;
      for (;;) {
        FrameDecoder::Result r = decoder.Next(&frame);
        if (r == FrameDecoder::Result::kError) {
          fed = stream.size();  // connection would be dropped
          break;
        }
        if (r == FrameDecoder::Result::kNeedMore) break;
        frames++;
        // Any frame that survives the CRC decodes as a valid request.
        Request decoded;
        EXPECT_TRUE(DecodeRequest(frame, &decoded));
      }
    }
    EXPECT_LE(frames, 8);
  }
}

TEST(ProtocolTest, HostileCountsRejectedWithoutHugeAllocation) {
  // A response frame whose scan count claims 2^28 records but carries no
  // bytes must fail cleanly (reserve-before-validate would OOM).
  std::string payload;
  payload.push_back(0);                        // status ok
  payload.push_back(0);                        // empty message
  payload.append("\xff\xff\xff\x7f", 4);       // varint32 ~2^28
  std::string wire;
  AppendFrame(Opcode::kScan, 1, Slice(payload), &wire);
  FrameDecoder decoder;
  decoder.Feed(wire.data(), wire.size());
  Frame frame;
  ASSERT_EQ(decoder.Next(&frame), FrameDecoder::Result::kFrame);
  Response response;
  EXPECT_FALSE(DecodeResponse(frame, &response));

  // Same for a record field count.
  std::string encoded;
  encoded.append("\xff\xff\xff\x7f", 4);
  ycsb::Record record;
  EXPECT_FALSE(ycsb::DecodeRecord(Slice(encoded), &record));
}

// ---------------------------------------------------------------------
// Socket-level server tests.

class ServerTest : public ::testing::Test {
 protected:
  void StartServer(ServerOptions options = ServerOptions()) {
    server_ = std::make_unique<Server>(options, &db_);
    ASSERT_TRUE(server_->Start().ok());
  }

  /// Opens a raw blocking client socket to the server.
  int Dial() {
    int fd = socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(server_->port()));
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0)
        << strerror(errno);
    return fd;
  }

  static void WriteAll(int fd, const std::string& data) {
    size_t sent = 0;
    while (sent < data.size()) {
      ssize_t n = send(fd, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
      if (n < 0 && errno == EINTR) continue;
      ASSERT_GT(n, 0);
      sent += static_cast<size_t>(n);
    }
  }

  /// Reads complete frames until `count` arrive (or the peer closes).
  static std::vector<Frame> ReadFrames(int fd, int count) {
    std::vector<Frame> frames;
    FrameDecoder decoder;
    char buf[16 * 1024];
    while (static_cast<int>(frames.size()) < count) {
      ssize_t n = recv(fd, buf, sizeof(buf), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;
      decoder.Feed(buf, static_cast<size_t>(n));
      Frame frame;
      while (decoder.Next(&frame) == FrameDecoder::Result::kFrame) {
        frames.push_back(frame);
      }
    }
    return frames;
  }

  static int CountOpenFds() {
    int count = 0;
    DIR* dir = opendir("/proc/self/fd");
    if (dir == nullptr) return -1;
    while (readdir(dir) != nullptr) count++;
    closedir(dir);
    return count - 1;  // exclude the opendir fd itself (".", ".." cancel
                       // against stdin/stdout roughly; the absolute value
                       // is irrelevant — tests compare before/after)
  }

  /// Polls until the server reports `n` open connections (teardown is
  /// asynchronous with the client's close()).
  bool WaitForOpenConnections(uint64_t n, int timeout_ms = 5000) {
    for (int i = 0; i < timeout_ms; i++) {
      if (server_->GetStats().open_connections == n) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return false;
  }

  testutil::BasicDB db_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServerTest, PipelinedRequestsAnswerInOrder) {
  StartServer();
  int fd = Dial();

  // K requests in a single write; K responses must come back in order,
  // carrying the matching request ids.
  constexpr int kRequests = 32;
  std::string wire;
  for (int i = 0; i < kRequests; i++) {
    Request request;
    if (i % 2 == 0) {
      request.op = Opcode::kInsert;
      request.table = "t";
      request.key = "pipeline" + std::to_string(i);
      request.record = MakeRecord(3);
    } else {
      request.op = Opcode::kRead;
      request.table = "t";
      request.key = "pipeline" + std::to_string(i - 1);
    }
    EncodeRequest(request, 1000 + i, &wire);
  }
  WriteAll(fd, wire);

  std::vector<Frame> frames = ReadFrames(fd, kRequests);
  ASSERT_EQ(frames.size(), static_cast<size_t>(kRequests));
  for (int i = 0; i < kRequests; i++) {
    EXPECT_EQ(frames[i].request_id, static_cast<uint64_t>(1000 + i));
    Response response;
    ASSERT_TRUE(DecodeResponse(frames[i], &response));
    EXPECT_TRUE(response.status.ok()) << i;
    if (i % 2 == 1) {
      EXPECT_EQ(response.record, MakeRecord(3));
    }
  }
  // The odd reads arrived while their even insert was possibly still in
  // a worker batch; in-order execution makes them hits, proving requests
  // on one connection never reorder.
  close(fd);
  EXPECT_TRUE(WaitForOpenConnections(0));
  Server::Stats stats = server_->GetStats();
  EXPECT_EQ(stats.requests, static_cast<uint64_t>(kRequests));
  EXPECT_EQ(stats.responses, static_cast<uint64_t>(kRequests));
  EXPECT_EQ(stats.bad_frames, 0u);
}

TEST_F(ServerTest, BadFrameDropsOnlyThatConnection) {
  StartServer();
  int good = Dial();
  int bad = Dial();

  const std::string garbage(64, '\xde');
  WriteAll(bad, garbage);
  // The server drops the offender...
  EXPECT_TRUE(WaitForOpenConnections(1));
  char tmp;
  EXPECT_EQ(recv(bad, &tmp, 1, 0), 0);  // we observe the close
  close(bad);

  // ...while the good connection still works.
  Request ping;
  ping.op = Opcode::kPing;
  std::string wire;
  EncodeRequest(ping, 7, &wire);
  WriteAll(good, wire);
  std::vector<Frame> frames = ReadFrames(good, 1);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].request_id, 7u);
  close(good);
  EXPECT_TRUE(WaitForOpenConnections(0));
  EXPECT_EQ(server_->GetStats().bad_frames, 1u);
}

TEST_F(ServerTest, AbruptDisconnectsLeakNoFdsAndCorruptNoOne) {
  StartServer();
  const int baseline_fds = CountOpenFds();

  // A long-lived well-behaved connection that must stay coherent while
  // other clients die rudely around it.
  int good = Dial();
  Request insert;
  insert.op = Opcode::kInsert;
  insert.table = "t";
  insert.key = "survivor";
  insert.record = MakeRecord(4);
  {
    std::string wire;
    EncodeRequest(insert, 1, &wire);
    std::vector<Frame> frames;
    WriteAll(good, wire);
    frames = ReadFrames(good, 1);
    ASSERT_EQ(frames.size(), 1u);
  }

  for (int round = 0; round < 20; round++) {
    // Rude client A: half a frame, then close.
    int a = Dial();
    Request request;
    request.op = Opcode::kInsert;
    request.table = "t";
    request.key = "rude" + std::to_string(round);
    request.record = MakeRecord(50);
    std::string wire;
    EncodeRequest(request, 100 + round, &wire);
    WriteAll(a, wire.substr(0, wire.size() / 2));
    close(a);

    // Rude client B: a full pipelined burst, closed before reading any
    // response — the server's writes hit a dead socket mid-response.
    int b = Dial();
    wire.clear();
    for (int i = 0; i < 64; i++) {
      Request read;
      read.op = Opcode::kRead;
      read.table = "t";
      read.key = "survivor";
      EncodeRequest(read, 200 + i, &wire);
    }
    WriteAll(b, wire);
    close(b);
  }

  // Every rude connection is reaped; only `good` remains.
  ASSERT_TRUE(WaitForOpenConnections(1));

  // The survivor still gets exact, uncorrupted responses.
  for (int i = 0; i < 10; i++) {
    Request read;
    read.op = Opcode::kRead;
    read.table = "t";
    read.key = "survivor";
    std::string wire;
    EncodeRequest(read, 1000 + i, &wire);
    WriteAll(good, wire);
    std::vector<Frame> frames = ReadFrames(good, 1);
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0].request_id, static_cast<uint64_t>(1000 + i));
    Response response;
    ASSERT_TRUE(DecodeResponse(frames[0], &response));
    ASSERT_TRUE(response.status.ok());
    EXPECT_EQ(response.record, MakeRecord(4));
  }
  close(good);
  ASSERT_TRUE(WaitForOpenConnections(0));

  // fd accounting: all 41 dead sockets are closed server-side, so the
  // process is back to its pre-test descriptor count.
  int after_fds = -1;
  for (int i = 0; i < 5000 && after_fds != baseline_fds; i++) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    after_fds = CountOpenFds();
  }
  EXPECT_EQ(after_fds, baseline_fds);
  // A rude client's RST can evict it from the accept queue before the
  // server ever sees it, so the exact accepted count is racy; the leak
  // invariant is that everything accepted was also closed.
  Server::Stats stats = server_->GetStats();
  EXPECT_EQ(stats.closed, stats.accepted);
  EXPECT_GE(stats.accepted, 2u);
  EXPECT_LE(stats.accepted, 42u);
}

TEST_F(ServerTest, StopWithLiveConnectionsReleasesEverything) {
  StartServer();
  std::vector<int> fds;
  for (int i = 0; i < 8; i++) fds.push_back(Dial());
  ASSERT_TRUE(WaitForOpenConnections(8));
  server_->Stop();
  EXPECT_EQ(server_->GetStats().open_connections, 0u);
  for (int fd : fds) {
    char tmp;
    EXPECT_EQ(recv(fd, &tmp, 1, 0), 0);  // server closed its side
    close(fd);
  }
  server_->Stop();  // idempotent
}

// ---------------------------------------------------------------------
// Client / RemoteStore end to end.

TEST_F(ServerTest, RemoteStoreEndToEnd) {
  StartServer();
  ClientOptions options;
  options.port = server_->port();
  options.connections = 4;
  std::unique_ptr<RemoteStore> store;
  ASSERT_TRUE(RemoteStore::Open(options, &store).ok());

  ycsb::Record record = MakeRecord(10);
  ASSERT_TRUE(store->Insert("t", Slice("user5"), record).ok());
  ycsb::Record got;
  ASSERT_TRUE(store->Read("t", Slice("user5"), &got).ok());
  EXPECT_EQ(got, record);

  // Remote statuses survive the wire.
  EXPECT_TRUE(store->Read("t", Slice("nope"), &got).IsNotFound());
  EXPECT_TRUE(store->Delete("t", Slice("nope")).IsNotFound());

  ycsb::Record updated = MakeRecord(2);
  ASSERT_TRUE(store->Update("t", Slice("user5"), updated).ok());
  ASSERT_TRUE(store->Read("t", Slice("user5"), &got).ok());
  EXPECT_EQ(got, updated);

  for (int i = 0; i < 20; i++) {
    ASSERT_TRUE(store
                    ->Insert("t", Slice("scan" + std::to_string(100 + i)),
                             MakeRecord(1))
                    .ok());
  }
  std::vector<ycsb::KeyedRecord> rows;
  ASSERT_TRUE(store->ScanKeyed("t", Slice("scan"), 10, &rows).ok());
  ASSERT_EQ(rows.size(), 10u);
  EXPECT_EQ(rows[0].key, "scan100");
  EXPECT_EQ(rows[9].key, "scan109");

  uint64_t bytes = 123;
  EXPECT_TRUE(store->DiskUsage(&bytes).ok());
  EXPECT_EQ(bytes, 0u);  // BasicDB has no disk footprint

  ASSERT_TRUE(store->Delete("t", Slice("user5")).ok());
  EXPECT_TRUE(store->Read("t", Slice("user5"), &got).IsNotFound());
}

TEST_F(ServerTest, ManyConnectionsConcurrentTraffic) {
  ServerOptions server_options;
  server_options.event_threads = 2;
  server_options.worker_threads = 4;
  StartServer(server_options);

  ClientOptions options;
  options.port = server_->port();
  options.connections = 64;
  std::unique_ptr<RemoteStore> store;
  ASSERT_TRUE(RemoteStore::Open(options, &store).ok());

  constexpr int kThreads = 16;
  constexpr int kOpsPerThread = 200;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; i++) {
        std::string key =
            "k" + std::to_string(t) + "-" + std::to_string(i);
        ycsb::Record record{{"f", key}};
        if (!store->Insert("t", Slice(key), record).ok()) failures++;
        ycsb::Record got;
        if (!store->Read("t", Slice(key), &got).ok() || got != record) {
          failures++;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(db_.size(), static_cast<size_t>(kThreads * kOpsPerThread));
  Server::Stats stats = server_->GetStats();
  EXPECT_EQ(stats.bad_frames, 0u);
  EXPECT_GE(stats.requests, static_cast<uint64_t>(kThreads * kOpsPerThread *
                                                  2));
}

TEST_F(ServerTest, ClientPipeliningBatchesOnTheServer) {
  StartServer();
  ClientOptions options;
  options.port = server_->port();
  options.connections = 1;
  options.max_pipeline = 256;
  Client client(options);
  ASSERT_TRUE(client.Connect().ok());

  // Fire a burst of async calls over one socket, then collect: the
  // responses resolve in the presence of pipelining, and the server's
  // batch counter shows multi-request drains.
  std::vector<std::shared_ptr<Client::Pending>> handles;
  for (int i = 0; i < 200; i++) {
    Request request;
    request.op = Opcode::kInsert;
    request.table = "t";
    request.key = "burst" + std::to_string(i);
    request.record = MakeRecord(2);
    handles.push_back(client.AsyncCall(request));
  }
  for (auto& handle : handles) {
    ASSERT_TRUE(handle->Wait().ok());
    EXPECT_TRUE(handle->response().status.ok());
  }
  EXPECT_EQ(db_.size(), 200u);
  Server::Stats stats = server_->GetStats();
  EXPECT_EQ(stats.requests, 200u);
  // At least some drains served more than one request (strictly fewer
  // batches than requests proves server-side batching engaged).
  EXPECT_LT(stats.batches, stats.requests);
  client.Close();
}

TEST_F(ServerTest, ServerDeathFailsPendingCallsCleanly) {
  StartServer();
  ClientOptions options;
  options.port = server_->port();
  options.connections = 2;
  std::unique_ptr<RemoteStore> store;
  ASSERT_TRUE(RemoteStore::Open(options, &store).ok());
  ycsb::Record got;
  ASSERT_TRUE(store->Insert("t", Slice("x"), MakeRecord(1)).ok());
  server_->Stop();
  // Calls after the server is gone fail with a transport error, not a
  // hang or a crash.
  Status s = store->Read("t", Slice("x"), &got);
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(s.IsNotFound());
}

}  // namespace
}  // namespace apmbench::net
