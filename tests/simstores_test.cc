#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "simstores/model.h"
#include "simstores/runner.h"

namespace apmbench::simstores {
namespace {

SimResult RunModel(const std::string& model, int nodes,
              const std::string& workload, double duration = 6.0,
              bool cluster_d = false, double rate = 0) {
  ClusterParams cluster = cluster_d ? ClusterParams::ClusterD(nodes)
                                    : ClusterParams::ClusterM(nodes);
  WorkloadSpec spec = WorkloadSpec::Preset(workload);
  SimRunConfig config;
  config.duration_seconds = duration;
  config.warmup_seconds = 1.0;
  config.arrival_rate_ops_sec = rate;
  SimResult result;
  Status s = RunSimulation(model, cluster, spec, config, &result);
  EXPECT_TRUE(s.ok()) << model << ": " << s.ToString();
  return result;
}

TEST(ModelRegistryTest, AllSixModelsExist) {
  for (const char* name :
       {"cassandra", "hbase", "voldemort", "redis", "voltdb", "mysql"}) {
    EXPECT_NE(CreateModel(name), nullptr) << name;
  }
  EXPECT_EQ(CreateModel("mongodb"), nullptr);
}

TEST(ModelRegistryTest, ScanSupportMatchesPaper) {
  EXPECT_FALSE(CreateModel("voldemort")->SupportsScans());
  for (const char* name : {"cassandra", "hbase", "redis", "voltdb", "mysql"}) {
    EXPECT_TRUE(CreateModel(name)->SupportsScans()) << name;
  }
}

TEST(RunnerTest, RejectsScanWorkloadOnVoldemort) {
  ClusterParams cluster = ClusterParams::ClusterM(2);
  WorkloadSpec spec = WorkloadSpec::Preset("RS");
  SimRunConfig config;
  SimResult result;
  EXPECT_TRUE(RunSimulation("voldemort", cluster, spec, config, &result)
                  .IsNotSupported());
}

TEST(RunnerTest, RejectsUnknownModel) {
  ClusterParams cluster = ClusterParams::ClusterM(1);
  WorkloadSpec spec = WorkloadSpec::Preset("R");
  SimRunConfig config;
  SimResult result;
  EXPECT_TRUE(RunSimulation("dynamo", cluster, spec, config, &result)
                  .IsInvalidArgument());
}

TEST(RunnerTest, DeterministicForFixedSeed) {
  SimResult a = RunModel("cassandra", 2, "R", 3.0);
  SimResult b = RunModel("cassandra", 2, "R", 3.0);
  EXPECT_EQ(a.total_completed, b.total_completed);
  EXPECT_EQ(a.events, b.events);
}

// --- Single-node anchors (Section 5.1, Workload R, Cluster M) ---
// Redis > 50K, VoltDB ~45K, Cassandra ~ MySQL ~ 25K, Voldemort ~12K,
// HBase ~2.5K ops/s. Tolerances are wide: the check is the *ordering and
// rough magnitude*, not the exact value.

struct Anchor {
  const char* model;
  double low, high;
};

class SingleNodeAnchorTest : public ::testing::TestWithParam<Anchor> {};

TEST_P(SingleNodeAnchorTest, WorkloadRThroughputInBand) {
  const Anchor& anchor = GetParam();
  SimResult result = RunModel(anchor.model, 1, "R");
  EXPECT_GE(result.throughput_ops_sec, anchor.low) << anchor.model;
  EXPECT_LE(result.throughput_ops_sec, anchor.high) << anchor.model;
}

INSTANTIATE_TEST_SUITE_P(
    PaperAnchors, SingleNodeAnchorTest,
    ::testing::Values(Anchor{"redis", 45000, 70000},
                      Anchor{"voltdb", 35000, 55000},
                      Anchor{"cassandra", 20000, 30000},
                      Anchor{"mysql", 20000, 30000},
                      Anchor{"voldemort", 9000, 15000},
                      Anchor{"hbase", 1800, 3200}),
    [](const ::testing::TestParamInfo<Anchor>& info) {
      return info.param.model;
    });

// --- Scaling shapes (Figures 3/6/9) ---

TEST(ScalingShapeTest, LinearSystemsScaleNearLinearly) {
  // HBase and Voldemort clients route directly to the owning server:
  // linear from one node on.
  for (const char* model : {"hbase", "voldemort"}) {
    SimResult x1 = RunModel(model, 1, "R");
    SimResult x12 = RunModel(model, 12, "R");
    double speedup = x12.throughput_ops_sec / x1.throughput_ops_sec;
    EXPECT_GT(speedup, 9.0) << model;
    EXPECT_LT(speedup, 14.0) << model;
  }
}

TEST(ScalingShapeTest, CassandraLinearFromTwoNodes) {
  // Figure 3's Cassandra shape: the 1->2 step loses per-node efficiency
  // to coordinator forwarding, then growth is linear (paper: 25K at one
  // node, ~175K at twelve).
  SimResult x1 = RunModel("cassandra", 1, "R");
  SimResult x2 = RunModel("cassandra", 2, "R");
  SimResult x12 = RunModel("cassandra", 12, "R");
  double from_two = x12.throughput_ops_sec / x2.throughput_ops_sec;
  EXPECT_GT(from_two, 5.0);
  EXPECT_LT(from_two, 7.0);
  double overall = x12.throughput_ops_sec / x1.throughput_ops_sec;
  EXPECT_GT(overall, 6.0);
  EXPECT_LT(overall, 9.0);
}

TEST(ScalingShapeTest, VoltDbThroughputDecreasesWithNodes) {
  SimResult x1 = RunModel("voltdb", 1, "R");
  SimResult x4 = RunModel("voltdb", 4, "R");
  SimResult x12 = RunModel("voltdb", 12, "R");
  EXPECT_LT(x4.throughput_ops_sec, x1.throughput_ops_sec);
  EXPECT_LE(x12.throughput_ops_sec, x4.throughput_ops_sec * 1.05);
}

TEST(ScalingShapeTest, RedisScalesSublinearly) {
  SimResult x1 = RunModel("redis", 1, "R");
  SimResult x12 = RunModel("redis", 12, "R");
  double speedup = x12.throughput_ops_sec / x1.throughput_ops_sec;
  EXPECT_GT(speedup, 1.0);
  EXPECT_LT(speedup, 4.0);  // far from the 12x of the linear systems
}

TEST(ScalingShapeTest, MySqlScalesThenFlattens) {
  SimResult x1 = RunModel("mysql", 1, "R");
  SimResult x2 = RunModel("mysql", 2, "R");
  SimResult x8 = RunModel("mysql", 8, "R");
  SimResult x12 = RunModel("mysql", 12, "R");
  // Near-perfect 1 -> 2 speedup (Section 5.1).
  EXPECT_NEAR(x2.throughput_ops_sec / x1.throughput_ops_sec, 2.0, 0.35);
  // Growth flattens beyond 8 nodes (client-bound).
  double grow_8_12 = x12.throughput_ops_sec / x8.throughput_ops_sec;
  EXPECT_LT(grow_8_12, 1.35);
}

// --- Latency shapes (Figures 4/5) ---

TEST(LatencyShapeTest, OrderingMatchesFigure4) {
  // Read latency at 8 nodes, workload R: Voldemort lowest (~0.25 ms),
  // Redis ~0.5 ms, MySQL ~ 1-2 ms, Cassandra 5-8 ms, HBase 50-90 ms.
  double voldemort = RunModel("voldemort", 8, "R").MeanLatencyMs(OpKind::kRead);
  double redis = RunModel("redis", 8, "R").MeanLatencyMs(OpKind::kRead);
  double cassandra = RunModel("cassandra", 8, "R").MeanLatencyMs(OpKind::kRead);
  double hbase = RunModel("hbase", 8, "R").MeanLatencyMs(OpKind::kRead);
  EXPECT_LT(voldemort, redis);
  EXPECT_LT(redis, cassandra);
  EXPECT_LT(cassandra, hbase);
  EXPECT_NEAR(voldemort, 0.25, 0.2);
  EXPECT_GT(cassandra, 3.0);
  EXPECT_LT(cassandra, 12.0);
  EXPECT_GT(hbase, 30.0);
}

TEST(LatencyShapeTest, HBaseWritesFarCheaperThanReads) {
  SimResult result = RunModel("hbase", 8, "RW");
  EXPECT_LT(result.MeanLatencyMs(OpKind::kInsert),
            result.MeanLatencyMs(OpKind::kRead) / 10);
}

TEST(LatencyShapeTest, HBaseReadLatencyExplodesUnderWrites) {
  double read_r = RunModel("hbase", 12, "R").MeanLatencyMs(OpKind::kRead);
  double read_w = RunModel("hbase", 12, "W").MeanLatencyMs(OpKind::kRead);
  EXPECT_GT(read_w, read_r * 3);
}

// --- Scan shapes (Figures 12-14) ---

TEST(ScanShapeTest, CassandraScansRoughlyFourTimesReads) {
  SimResult result = RunModel("cassandra", 8, "RS");
  double scan = result.MeanLatencyMs(OpKind::kScan);
  double read = result.MeanLatencyMs(OpKind::kRead);
  EXPECT_GT(scan / read, 2.0);
  EXPECT_LT(scan / read, 8.0);
}

TEST(ScanShapeTest, MySqlScansCollapseBeyondTwoNodes) {
  SimResult x1 = RunModel("mysql", 1, "RS");
  SimResult x4 = RunModel("mysql", 4, "RS");
  EXPECT_LT(x4.throughput_ops_sec, x1.throughput_ops_sec / 3);
  EXPECT_GT(x4.MeanLatencyMs(OpKind::kScan),
            x1.MeanLatencyMs(OpKind::kScan) * 5);
}

TEST(ScanShapeTest, MySqlRswCollapsesCompletely) {
  SimResult result = RunModel("mysql", 1, "RSW", 12.0);
  // Paper: ~20 ops/s at one node.
  EXPECT_LT(result.throughput_ops_sec, 300);
}

// --- Bounded throughput (Figures 15/16) ---

TEST(BoundedThroughputTest, LatencyDropsWithLoad) {
  SimResult max_run = RunModel("cassandra", 8, "R");
  double max_rate = max_run.throughput_ops_sec;
  SimResult at95 = RunModel("cassandra", 8, "R", 6.0, false, 0.95 * max_rate);
  SimResult at50 = RunModel("cassandra", 8, "R", 6.0, false, 0.50 * max_rate);
  EXPECT_LT(at95.MeanLatencyMs(OpKind::kRead),
            max_run.MeanLatencyMs(OpKind::kRead));
  EXPECT_LT(at50.MeanLatencyMs(OpKind::kRead),
            at95.MeanLatencyMs(OpKind::kRead));
  EXPECT_NEAR(at50.throughput_ops_sec, 0.5 * max_rate, 0.1 * max_rate);
}

// --- Cluster D shapes (Figures 18-20) ---

TEST(ClusterDTest, ThroughputRisesWithWriteRatio) {
  for (const char* model : {"cassandra", "hbase", "voldemort"}) {
    double r = RunModel(model, 8, "R", 6.0, true).throughput_ops_sec;
    double w = RunModel(model, 8, "W", 6.0, true).throughput_ops_sec;
    EXPECT_GT(w / r, 2.0) << model;
  }
  // Cassandra gains the most (factor ~26), Voldemort the least (~3).
  double cassandra_gain = RunModel("cassandra", 8, "W", 6.0, true).throughput_ops_sec /
                          RunModel("cassandra", 8, "R", 6.0, true).throughput_ops_sec;
  double voldemort_gain = RunModel("voldemort", 8, "W", 6.0, true).throughput_ops_sec /
                          RunModel("voldemort", 8, "R", 6.0, true).throughput_ops_sec;
  EXPECT_GT(cassandra_gain, voldemort_gain * 2);
}

TEST(ClusterDTest, ReadLatenciesInMillisecondRange) {
  SimResult cassandra = RunModel("cassandra", 8, "R", 6.0, true);
  SimResult voldemort = RunModel("voldemort", 8, "R", 6.0, true);
  // Figure 19: Cassandra ~40 ms, Voldemort ~5-6 ms.
  EXPECT_GT(cassandra.MeanLatencyMs(OpKind::kRead), 10.0);
  EXPECT_LT(voldemort.MeanLatencyMs(OpKind::kRead),
            cassandra.MeanLatencyMs(OpKind::kRead));
}

}  // namespace
}  // namespace apmbench::simstores

namespace apmbench::simstores {
namespace {

TEST(UtilizationTest, SaturatedSystemShowsBusyCpus) {
  SimResult result = RunModel("cassandra", 1, "R");
  double cpu0 = -1;
  for (const auto& [name, busy] : result.utilization) {
    if (name == "cpu0") cpu0 = busy;
    EXPECT_GE(busy, 0.0) << name;
    EXPECT_LE(busy, 1.02) << name;
  }
  // Closed-loop max throughput saturates the single node's CPUs.
  EXPECT_GT(cpu0, 0.85);
}

TEST(UtilizationTest, JedisImbalanceVisibleInNodeUtilization) {
  SimResult result = RunModel("redis", 12, "R");
  double min_busy = 2, max_busy = 0;
  for (const auto& [name, busy] : result.utilization) {
    if (name.rfind("cpu", 0) != 0) continue;
    min_busy = std::min(min_busy, busy);
    max_busy = std::max(max_busy, busy);
  }
  // The hot shard works measurably harder than the cold one.
  EXPECT_GT(max_busy, min_busy * 1.1);
}

}  // namespace
}  // namespace apmbench::simstores
