// Parameterized option-grid sweeps: the same randomized CRUD+scan+reopen
// property test runs across engine configurations (block size, bloom
// filters, compression, compaction style for the LSM engine; page size
// and buffer pool size for the B+tree), so format and tuning paths that
// the default-option tests never touch are exercised against the same
// std::map oracle.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "btree/btree.h"
#include "common/random.h"
#include "lsm/db.h"
#include "tests/test_util.h"

namespace apmbench {
namespace {

using testutil::ScopedTempDir;

// ---------------------------------------------------------------------
// LSM grid.
// ---------------------------------------------------------------------

struct LsmConfig {
  const char* name;
  size_t memtable_bytes;
  size_t block_size;
  int bloom_bits;
  CompressionType compression;
  lsm::CompactionStyle style;
  size_t block_cache_bytes;
};

class LsmSweepTest : public ::testing::TestWithParam<LsmConfig> {};

TEST_P(LsmSweepTest, RandomOpsMatchModelAcrossReopen) {
  const LsmConfig& config = GetParam();
  ScopedTempDir dir(std::string("lsm-sweep-") + config.name);
  lsm::Options options;
  options.dir = dir.path();
  options.memtable_bytes = config.memtable_bytes;
  options.block_size = config.block_size;
  options.bloom_bits_per_key = config.bloom_bits;
  options.compression = config.compression;
  options.compaction_style = config.style;
  options.block_cache_bytes = config.block_cache_bytes;

  std::map<std::string, std::string> model;
  Random rng(1234);
  for (int generation = 0; generation < 3; generation++) {
    std::unique_ptr<lsm::DB> db;
    ASSERT_TRUE(lsm::DB::Open(options, &db).ok()) << config.name;
    for (int i = 0; i < 4000; i++) {
      std::string key = "k" + std::to_string(rng.Uniform(400));
      int op = static_cast<int>(rng.Uniform(10));
      if (op < 6) {
        std::string value(1 + rng.Uniform(80), 'a' + (i % 26));
        ASSERT_TRUE(db->Put(key, value).ok());
        model[key] = value;
      } else if (op < 8) {
        db->Delete(key);
        model.erase(key);
      } else if (op < 9) {
        std::string value;
        Status s = db->Get(lsm::ReadOptions(), key, &value);
        auto it = model.find(key);
        if (it == model.end()) {
          ASSERT_TRUE(s.IsNotFound()) << config.name << " " << key;
        } else {
          ASSERT_TRUE(s.ok()) << config.name << " " << key;
          ASSERT_EQ(value, it->second);
        }
      } else {
        std::vector<std::pair<std::string, std::string>> got;
        ASSERT_TRUE(db->Scan(lsm::ReadOptions(), key, 7, &got).ok());
        auto it = model.lower_bound(key);
        for (const auto& [got_key, got_value] : got) {
          ASSERT_NE(it, model.end()) << config.name;
          ASSERT_EQ(got_key, it->first) << config.name;
          ASSERT_EQ(got_value, it->second) << config.name;
          ++it;
        }
      }
    }
    if (generation == 1) {
      ASSERT_TRUE(db->CompactAll().ok()) << config.name;
    }
    // Close; next generation recovers from disk.
  }
  // Final recovery check over the whole model.
  std::unique_ptr<lsm::DB> db;
  ASSERT_TRUE(lsm::DB::Open(options, &db).ok());
  for (const auto& [key, expected] : model) {
    std::string value;
    ASSERT_TRUE(db->Get(lsm::ReadOptions(), key, &value).ok())
        << config.name << " " << key;
    ASSERT_EQ(value, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    OptionGrid, LsmSweepTest,
    ::testing::Values(
        LsmConfig{"default", 16 << 10, 4 << 10, 10, CompressionType::kNone,
                  lsm::CompactionStyle::kSizeTiered, 1 << 20},
        LsmConfig{"tiny_blocks", 16 << 10, 256, 10, CompressionType::kNone,
                  lsm::CompactionStyle::kSizeTiered, 1 << 20},
        LsmConfig{"no_bloom", 16 << 10, 4 << 10, 0, CompressionType::kNone,
                  lsm::CompactionStyle::kSizeTiered, 1 << 20},
        LsmConfig{"compressed", 16 << 10, 4 << 10, 10, CompressionType::kLz,
                  lsm::CompactionStyle::kSizeTiered, 1 << 20},
        LsmConfig{"leveled", 16 << 10, 4 << 10, 10, CompressionType::kNone,
                  lsm::CompactionStyle::kLeveled, 1 << 20},
        LsmConfig{"leveled_compressed_tiny", 8 << 10, 512, 6,
                  CompressionType::kLz, lsm::CompactionStyle::kLeveled,
                  64 << 10},
        LsmConfig{"no_cache", 16 << 10, 4 << 10, 10, CompressionType::kNone,
                  lsm::CompactionStyle::kSizeTiered, 0}),
    [](const ::testing::TestParamInfo<LsmConfig>& info) {
      return info.param.name;
    });

// ---------------------------------------------------------------------
// B+tree grid.
// ---------------------------------------------------------------------

struct BTreeConfig {
  const char* name;
  size_t page_size;
  size_t buffer_pool_bytes;
  bool binlog;
};

class BTreeSweepTest : public ::testing::TestWithParam<BTreeConfig> {};

TEST_P(BTreeSweepTest, RandomOpsMatchModelAcrossReopen) {
  const BTreeConfig& config = GetParam();
  ScopedTempDir dir(std::string("btree-sweep-") + config.name);
  btree::Options options;
  options.path = dir.path() + "/tree.db";
  options.page_size = config.page_size;
  options.buffer_pool_bytes = config.buffer_pool_bytes;
  if (config.binlog) options.binlog_path = dir.path() + "/binlog";

  std::map<std::string, std::string> model;
  Random rng(987);
  for (int generation = 0; generation < 3; generation++) {
    std::unique_ptr<btree::BTree> tree;
    ASSERT_TRUE(btree::BTree::Open(options, &tree).ok()) << config.name;
    for (int i = 0; i < 4000; i++) {
      std::string key = "key" + std::to_string(rng.Uniform(500));
      int op = static_cast<int>(rng.Uniform(10));
      if (op < 6) {
        std::string value(1 + rng.Uniform(60), 'x');
        ASSERT_TRUE(tree->Put(key, value).ok()) << config.name;
        model[key] = value;
      } else if (op < 8) {
        Status s = tree->Delete(key);
        ASSERT_EQ(s.ok(), model.erase(key) > 0) << config.name;
      } else if (op < 9) {
        std::string value;
        Status s = tree->Get(key, &value);
        auto it = model.find(key);
        if (it == model.end()) {
          ASSERT_TRUE(s.IsNotFound()) << config.name;
        } else {
          ASSERT_TRUE(s.ok()) << config.name;
          ASSERT_EQ(value, it->second);
        }
      } else {
        std::vector<std::pair<std::string, std::string>> got;
        ASSERT_TRUE(tree->Scan(key, 6, &got).ok());
        auto it = model.lower_bound(key);
        for (const auto& [got_key, got_value] : got) {
          ASSERT_NE(it, model.end()) << config.name;
          ASSERT_EQ(got_key, it->first) << config.name;
          ASSERT_EQ(got_value, it->second) << config.name;
          ++it;
        }
      }
    }
    ASSERT_TRUE(tree->Checkpoint().ok());
    ASSERT_EQ(tree->GetStats().num_keys, model.size()) << config.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    OptionGrid, BTreeSweepTest,
    ::testing::Values(BTreeConfig{"default", 4096, 1 << 20, false},
                      BTreeConfig{"small_pages", 1024, 1 << 20, false},
                      BTreeConfig{"large_pages", 16384, 2 << 20, false},
                      BTreeConfig{"tiny_pool", 4096, 16 * 4096, false},
                      BTreeConfig{"with_binlog", 4096, 1 << 20, true}),
    [](const ::testing::TestParamInfo<BTreeConfig>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace apmbench
