// Deterministic tests for the parallel compaction pipeline: the
// flush/compaction thread split, input-claim disjointness, write
// admission control (slowdown/stop triggers), subcompaction splitting,
// the background-I/O rate limiter, and the zombie-table GC that keeps
// compacted files on disk while snapshot iterators still read them.
//
// Scheduling is made deterministic with a gating Env that blocks the
// first Append of selected SSTable creations (counted in creation
// order): the test decides exactly which flush or compaction output
// stalls, then observes the scheduler state through DB::Stats.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/env.h"
#include "common/rate_limiter.h"
#include "lsm/db.h"
#include "lsm/version.h"
#include "tests/test_util.h"

namespace apmbench {
namespace {

using lsm::CompactionStyle;
using testutil::ScopedTempDir;

// ---------------------------------------------------------------------------
// Test scaffolding

/// Blocks callers while closed; counts how many threads are waiting.
class Gate {
 public:
  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }

  void Open() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = false;
    }
    cv_.notify_all();
  }

  void Pass() {
    std::unique_lock<std::mutex> lock(mu_);
    blocked_++;
    cv_.notify_all();  // wake blocked() watchers
    cv_.wait(lock, [&] { return !closed_; });
    blocked_--;
  }

  int blocked() {
    std::lock_guard<std::mutex> lock(mu_);
    return blocked_;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool closed_ = false;
  int blocked_ = 0;
};

/// Env wrapper that gates .sst file writes by creation order: the i-th
/// SSTable created through this Env (flush or compaction output alike)
/// blocks in its first Append while its index is in the gated set and the
/// gate is closed. Creation order is deterministic when the test drives
/// flushes explicitly, so this pins down *which* background job stalls.
class TableGateEnv final : public Env {
 public:
  explicit TableGateEnv(Env* base) : base_(base) {}

  Gate* gate() { return &gate_; }

  /// Gates the SSTable whose creation index (0-based) is `index`.
  void GateCreation(int index) {
    std::lock_guard<std::mutex> lock(mu_);
    gated_.insert(index);
  }

  int sst_creations() {
    std::lock_guard<std::mutex> lock(mu_);
    return next_index_;
  }

  Status NewWritableFile(const std::string& path,
                         std::unique_ptr<WritableFile>* file) override {
    APM_RETURN_IF_ERROR(base_->NewWritableFile(path, file));
    if (IsTable(path)) {
      bool gated;
      {
        std::lock_guard<std::mutex> lock(mu_);
        gated = gated_.count(next_index_) != 0;
        next_index_++;
      }
      if (gated) {
        *file = std::make_unique<GatedFile>(&gate_, std::move(*file));
      }
    }
    return Status::OK();
  }
  Status NewAppendableFile(const std::string& path,
                           std::unique_ptr<WritableFile>* file) override {
    return base_->NewAppendableFile(path, file);
  }
  Status NewRandomAccessFile(
      const std::string& path,
      std::unique_ptr<RandomAccessFile>* file) override {
    return base_->NewRandomAccessFile(path, file);
  }
  Status NewRandomRWFile(const std::string& path,
                         std::unique_ptr<RandomRWFile>* file) override {
    return base_->NewRandomRWFile(path, file);
  }
  Status ReadFileToString(const std::string& path,
                          std::string* data) override {
    return base_->ReadFileToString(path, data);
  }
  Status WriteStringToFile(const std::string& path,
                           const Slice& data) override {
    return base_->WriteStringToFile(path, data);
  }
  bool FileExists(const std::string& path) override {
    return base_->FileExists(path);
  }
  Status GetFileSize(const std::string& path, uint64_t* size) override {
    return base_->GetFileSize(path, size);
  }
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* names) override {
    return base_->GetChildren(dir, names);
  }
  Status CreateDirIfMissing(const std::string& dir) override {
    return base_->CreateDirIfMissing(dir);
  }
  Status RemoveFile(const std::string& path) override {
    return base_->RemoveFile(path);
  }
  Status RenameFile(const std::string& from, const std::string& to) override {
    return base_->RenameFile(from, to);
  }
  Status SyncDir(const std::string& dir) override {
    return base_->SyncDir(dir);
  }
  Status RemoveDirRecursively(const std::string& dir) override {
    return base_->RemoveDirRecursively(dir);
  }
  Status GetDirectorySize(const std::string& dir, uint64_t* bytes) override {
    return base_->GetDirectorySize(dir, bytes);
  }

 private:
  class GatedFile final : public WritableFile {
   public:
    GatedFile(Gate* gate, std::unique_ptr<WritableFile> base)
        : gate_(gate), base_(std::move(base)) {}
    Status Append(const Slice& data) override {
      gate_->Pass();
      return base_->Append(data);
    }
    Status Flush() override { return base_->Flush(); }
    Status Sync() override { return base_->Sync(); }
    Status Close() override { return base_->Close(); }
    uint64_t Size() const override { return base_->Size(); }

   private:
    Gate* gate_;
    std::unique_ptr<WritableFile> base_;
  };

  static bool IsTable(const std::string& path) {
    return path.size() > 4 && path.substr(path.size() - 4) == ".sst";
  }

  Env* base_;
  Gate gate_;
  std::mutex mu_;
  std::set<int> gated_;
  int next_index_ = 0;
};

/// Polls `cond` until it holds or ~10s pass (generous for sanitizers).
bool WaitFor(const std::function<bool()>& cond) {
  for (int i = 0; i < 100000; i++) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  return cond();
}

std::string Key(const std::string& prefix, int i) {
  char buf[32];
  snprintf(buf, sizeof(buf), "%s%06d", prefix.c_str(), i);
  return buf;
}

std::string Value(int i, int width = 50) {
  char buf[16];
  snprintf(buf, sizeof(buf), "v%06d-", i);
  std::string v = buf;
  v.append(width > static_cast<int>(v.size())
               ? static_cast<size_t>(width) - v.size()
               : 0,
           'x');
  return v;
}

lsm::Options BaseOptions(const std::string& dir, Env* env) {
  lsm::Options options;
  options.dir = dir;
  options.env = env;
  // Individual tests drive flushes and compactions explicitly; disable
  // admission control by default so only the test under scrutiny stalls.
  options.level0_slowdown_trigger = 0;
  options.level0_stop_trigger = 0;
  return options;
}

void PutRange(lsm::DB* db, const std::string& prefix, int begin, int end,
              int value_width = 50) {
  for (int i = begin; i < end; i++) {
    ASSERT_TRUE(db->Put(Key(prefix, i), Value(i, value_width)).ok());
  }
}

void ExpectRange(lsm::DB* db, const std::string& prefix, int begin, int end,
                 int value_width = 50) {
  for (int i = begin; i < end; i++) {
    std::string value;
    Status s = db->Get(lsm::ReadOptions(), Key(prefix, i), &value);
    ASSERT_TRUE(s.ok()) << "missing " << Key(prefix, i) << ": "
                        << s.ToString();
    EXPECT_EQ(value, Value(i, value_width));
  }
}

// ---------------------------------------------------------------------------
// RateLimiter

TEST(RateLimiterTest, UnlimitedIsPassThrough) {
  RateLimiter limiter(0);
  EXPECT_FALSE(limiter.enabled());
  uint64_t start = NowMicros();
  limiter.Request(100 * 1024 * 1024);
  limiter.Request(0);
  EXPECT_LT(NowMicros() - start, 1000000u);  // no pacing happened
  EXPECT_EQ(limiter.total_bytes(), 100u * 1024 * 1024);
  EXPECT_EQ(limiter.total_wait_micros(), 0u);
}

TEST(RateLimiterTest, PacesRequestsBeyondBurst) {
  // 10 MB/s with a 16 KiB burst: the bucket starts full, so a 100 KiB
  // request must wait for ~84 KiB of refill — about 8 ms.
  RateLimiter limiter(10 * 1024 * 1024, 16 * 1024);
  uint64_t start = NowMicros();
  limiter.Request(100 * 1024);
  uint64_t elapsed = NowMicros() - start;
  EXPECT_GE(elapsed, 4000u);  // loose lower bound for CI jitter
  EXPECT_EQ(limiter.total_bytes(), 100u * 1024);
  EXPECT_GT(limiter.total_wait_micros(), 0u);
}

TEST(RateLimiterTest, OversizedRequestSplitsIntoBurstInstallments) {
  // A request larger than the burst must not deadlock: it drains in
  // burst-sized installments.
  RateLimiter limiter(50 * 1024 * 1024, 4 * 1024);
  limiter.Request(64 * 1024);
  EXPECT_EQ(limiter.total_bytes(), 64u * 1024);
}

TEST(RateLimiterTest, ConcurrentRequestersAllComplete) {
  RateLimiter limiter(32 * 1024 * 1024, 8 * 1024);
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; i++) {
    threads.emplace_back([&] {
      for (int j = 0; j < 8; j++) limiter.Request(4 * 1024);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(limiter.total_bytes(), 4u * 8 * 4 * 1024);
}

TEST(RateLimiterTest, DbChargesFlushAndCompactionBytes) {
  ScopedTempDir dir("ratelimit");
  lsm::Options options = BaseOptions(dir.path(), Env::Default());
  // Fast enough that the test never meaningfully stalls, but every
  // flushed/compacted byte still flows through the bucket.
  options.rate_limit_bytes_per_sec = 512 * 1024 * 1024;
  std::unique_ptr<lsm::DB> db;
  ASSERT_TRUE(lsm::DB::Open(options, &db).ok());
  PutRange(db.get(), "k", 0, 500);
  ASSERT_TRUE(db->Flush().ok());
  ASSERT_TRUE(db->CompactAll().ok());
  lsm::DB::Stats stats = db->GetStats();
  EXPECT_GT(stats.rate_limited_bytes, 0u);
  ASSERT_TRUE(db->Close().ok());
}

// ---------------------------------------------------------------------------
// Claim bookkeeping (VersionSet unit level)

lsm::FileMeta MakeFile(uint64_t number, const std::string& smallest,
                       const std::string& largest) {
  lsm::FileMeta meta;
  meta.number = number;
  meta.file_size = 1024;
  meta.smallest = smallest;
  meta.largest = largest;
  return meta;
}

TEST(CompactionClaimTest, ClaimReleaseLifecycle) {
  ScopedTempDir dir("claims");
  lsm::Options options;
  options.dir = dir.path();
  lsm::VersionSet versions(options, Env::Default());

  std::vector<lsm::FileMeta> a = {MakeFile(1, "a", "c"), MakeFile(2, "d", "f")};
  std::vector<lsm::FileMeta> b = {MakeFile(3, "g", "i")};
  EXPECT_FALSE(versions.AnyClaimed(a));
  EXPECT_EQ(versions.NumClaimed(), 0u);

  versions.ClaimFiles(a);
  EXPECT_TRUE(versions.IsClaimed(1));
  EXPECT_TRUE(versions.IsClaimed(2));
  EXPECT_FALSE(versions.IsClaimed(3));
  EXPECT_TRUE(versions.AnyClaimed(a));
  EXPECT_FALSE(versions.AnyClaimed(b));
  EXPECT_EQ(versions.NumClaimed(), 2u);

  versions.ClaimFiles(b);
  EXPECT_EQ(versions.NumClaimed(), 3u);

  versions.ReleaseFiles(a);
  EXPECT_FALSE(versions.IsClaimed(1));
  EXPECT_TRUE(versions.IsClaimed(3));
  EXPECT_EQ(versions.NumClaimed(), 1u);
  versions.ReleaseFiles(b);
  EXPECT_EQ(versions.NumClaimed(), 0u);
}

TEST(CompactionClaimTest, CompactPointerRoundRobin) {
  ScopedTempDir dir("pointer");
  lsm::Options options;
  options.dir = dir.path();
  lsm::VersionSet versions(options, Env::Default());
  EXPECT_TRUE(versions.CompactPointer(1).empty());
  versions.SetCompactPointer(1, "m");
  EXPECT_EQ(versions.CompactPointer(1), "m");
  EXPECT_TRUE(versions.CompactPointer(2).empty());
}

// ---------------------------------------------------------------------------
// Scheduler: flush independence and disjoint concurrent jobs

TEST(CompactionSchedulerTest, SlowCompactionDoesNotBlockFlush) {
  ScopedTempDir dir("flushfree");
  TableGateEnv env(Env::Default());
  lsm::Options options = BaseOptions(dir.path(), &env);
  options.compaction_style = CompactionStyle::kLeveled;
  options.level0_compaction_trigger = 4;
  options.compaction_threads = 1;

  // Four explicit flushes create SSTables 0..3; the L0 compaction they
  // trigger writes table 4 — gate exactly that one.
  env.GateCreation(4);
  env.gate()->Close();

  std::unique_ptr<lsm::DB> db;
  ASSERT_TRUE(lsm::DB::Open(options, &db).ok());
  for (int t = 0; t < 4; t++) {
    PutRange(db.get(), "k", t * 10, (t + 1) * 10);
    ASSERT_TRUE(db->Flush().ok());
  }
  ASSERT_TRUE(WaitFor([&] { return env.gate()->blocked() == 1; }))
      << "compaction output never reached the gate";

  // The compaction thread is stuck mid-merge; a flush must still finish
  // because it runs on its own dedicated thread.
  PutRange(db.get(), "k", 40, 50);
  ASSERT_TRUE(db->Flush().ok());
  lsm::DB::Stats stats = db->GetStats();
  EXPECT_EQ(stats.num_flushes, 5u);
  EXPECT_EQ(stats.running_compactions, 1u);
  EXPECT_GT(stats.claimed_files, 0u);

  env.gate()->Open();
  ASSERT_TRUE(WaitFor([&] {
    lsm::DB::Stats s = db->GetStats();
    return s.num_compactions >= 1 && s.running_compactions == 0;
  }));
  ExpectRange(db.get(), "k", 0, 50);
  EXPECT_TRUE(db->VerifyIntegrity().ok());
  ASSERT_TRUE(db->Close().ok());
}

TEST(CompactionSchedulerTest, ConcurrentJobsClaimDisjointInputs) {
  ScopedTempDir dir("twojobs");
  TableGateEnv env(Env::Default());
  lsm::Options options = BaseOptions(dir.path(), &env);
  options.compaction_style = CompactionStyle::kSizeTiered;
  options.size_tiered_min_files = 4;
  options.compaction_threads = 2;

  // Build two size classes: three small tables (creations 0..2), then
  // four large ones (creations 3..6). The large bucket becomes eligible
  // first and its merge output is creation 7; a fourth small table
  // (creation 8) then makes the small bucket eligible while the first
  // job is still running, so its output is creation 9. Gate both
  // outputs to hold the two jobs in flight simultaneously.
  env.GateCreation(7);
  env.GateCreation(9);
  env.gate()->Close();

  std::unique_ptr<lsm::DB> db;
  ASSERT_TRUE(lsm::DB::Open(options, &db).ok());
  for (int t = 0; t < 3; t++) {
    PutRange(db.get(), "s", t * 5, (t + 1) * 5, /*value_width=*/30);
    ASSERT_TRUE(db->Flush().ok());
  }
  for (int t = 0; t < 4; t++) {
    PutRange(db.get(), "l", t * 300, (t + 1) * 300, /*value_width=*/100);
    ASSERT_TRUE(db->Flush().ok());
  }
  ASSERT_TRUE(WaitFor([&] { return env.gate()->blocked() == 1; }))
      << "large-bucket compaction never started";

  PutRange(db.get(), "s", 15, 20, /*value_width=*/30);
  ASSERT_TRUE(db->Flush().ok());
  ASSERT_TRUE(WaitFor([&] { return env.gate()->blocked() == 2; }))
      << "small-bucket compaction never ran concurrently";

  // Two jobs in flight at once, and between them they claimed all eight
  // input tables — with no overlap, or the second pick would have been
  // refused and we would never see blocked() == 2.
  lsm::DB::Stats stats = db->GetStats();
  EXPECT_EQ(stats.running_compactions, 2u);
  EXPECT_EQ(stats.claimed_files, 8u);

  env.gate()->Open();
  ASSERT_TRUE(WaitFor([&] {
    lsm::DB::Stats s = db->GetStats();
    return s.num_compactions >= 2 && s.running_compactions == 0;
  }));
  stats = db->GetStats();
  EXPECT_EQ(stats.claimed_files, 0u);
  ASSERT_FALSE(stats.files_per_level.empty());
  EXPECT_EQ(stats.files_per_level[0], 2);  // each bucket merged into one run
  ExpectRange(db.get(), "s", 0, 20, /*value_width=*/30);
  ExpectRange(db.get(), "l", 0, 1200, /*value_width=*/100);
  EXPECT_TRUE(db->VerifyIntegrity().ok());
  ASSERT_TRUE(db->Close().ok());
}

// ---------------------------------------------------------------------------
// Admission control

TEST(AdmissionControlTest, SlowdownTriggerFiresAtExactCount) {
  ScopedTempDir dir("slowdown");
  lsm::Options options = BaseOptions(dir.path(), Env::Default());
  options.compaction_style = CompactionStyle::kLeveled;
  options.level0_compaction_trigger = 100;  // no auto compaction
  options.level0_slowdown_trigger = 2;
  std::unique_ptr<lsm::DB> db;
  ASSERT_TRUE(lsm::DB::Open(options, &db).ok());

  ASSERT_TRUE(db->Put(Key("k", 0), Value(0)).ok());
  ASSERT_TRUE(db->Flush().ok());  // L0 = 1, below the trigger
  ASSERT_TRUE(db->Put(Key("k", 1), Value(1)).ok());
  EXPECT_EQ(db->GetStats().stall_slowdown_writes, 0u);

  ASSERT_TRUE(db->Flush().ok());  // L0 = 2 == trigger
  ASSERT_TRUE(db->Put(Key("k", 2), Value(2)).ok());
  lsm::DB::Stats stats = db->GetStats();
  EXPECT_EQ(stats.stall_slowdown_writes, 1u);
  EXPECT_GT(stats.stall_slowdown_micros, 0u);

  // Every write group above the trigger pays the one-time delay.
  ASSERT_TRUE(db->Put(Key("k", 3), Value(3)).ok());
  EXPECT_EQ(db->GetStats().stall_slowdown_writes, 2u);
  EXPECT_EQ(db->GetStats().stall_stop_writes, 0u);
  ASSERT_TRUE(db->Close().ok());
}

TEST(AdmissionControlTest, StopTriggerBoundsL0AndUnblocksAfterCompaction) {
  ScopedTempDir dir("stop");
  TableGateEnv env(Env::Default());
  lsm::Options options = BaseOptions(dir.path(), &env);
  options.compaction_style = CompactionStyle::kLeveled;
  options.level0_compaction_trigger = 3;
  options.level0_stop_trigger = 3;
  options.memtable_bytes = 4 * 1024;
  options.compaction_threads = 1;

  // Creations 0..2 are the setup flushes; the compaction they trigger
  // writes creation 3 — gate it so L0 stays at the stop trigger.
  env.GateCreation(3);
  env.gate()->Close();

  std::unique_ptr<lsm::DB> db;
  ASSERT_TRUE(lsm::DB::Open(options, &db).ok());
  for (int t = 0; t < 3; t++) {
    PutRange(db.get(), "k", t * 10, (t + 1) * 10);
    ASSERT_TRUE(db->Flush().ok());
  }
  ASSERT_TRUE(WaitFor([&] { return env.gate()->blocked() == 1; }));

  // A writer filling the memtable must hit the stop trigger: rotation is
  // refused while L0 sits at the limit, so the thread blocks instead of
  // creating a fourth L0 file.
  std::atomic<bool> writer_done{false};
  std::thread writer([&] {
    for (int i = 0; i < 200; i++) {
      ASSERT_TRUE(db->Put(Key("w", i), Value(i)).ok());
    }
    writer_done.store(true);
  });
  ASSERT_TRUE(WaitFor([&] { return db->GetStats().stall_stop_writes >= 1; }))
      << "writer never hit the stop trigger";
  lsm::DB::Stats stats = db->GetStats();
  EXPECT_FALSE(writer_done.load());
  ASSERT_FALSE(stats.files_per_level.empty());
  EXPECT_EQ(stats.files_per_level[0], 3);  // L0 bounded at the trigger

  env.gate()->Open();
  writer.join();
  EXPECT_TRUE(writer_done.load());
  stats = db->GetStats();
  EXPECT_GE(stats.num_compactions, 1u);
  EXPECT_GT(stats.stall_stop_micros, 0u);
  ExpectRange(db.get(), "k", 0, 30);
  ExpectRange(db.get(), "w", 0, 200);
  EXPECT_TRUE(db->VerifyIntegrity().ok());
  ASSERT_TRUE(db->Close().ok());
}

// ---------------------------------------------------------------------------
// Subcompactions

TEST(SubcompactionTest, LeveledJobSplitsAcrossKeyRanges) {
  ScopedTempDir dir("subcompact");
  lsm::Options options = BaseOptions(dir.path(), Env::Default());
  options.compaction_style = CompactionStyle::kLeveled;
  options.level0_compaction_trigger = 2;
  options.subcompactions = 2;
  options.compaction_threads = 1;
  std::unique_ptr<lsm::DB> db;
  ASSERT_TRUE(lsm::DB::Open(options, &db).ok());

  // Two L0 tables with distinct smallest keys give the partitioner a
  // boundary to split at.
  PutRange(db.get(), "a", 0, 100);
  ASSERT_TRUE(db->Flush().ok());
  PutRange(db.get(), "b", 0, 100);
  ASSERT_TRUE(db->Flush().ok());

  ASSERT_TRUE(WaitFor([&] {
    lsm::DB::Stats s = db->GetStats();
    return s.num_compactions >= 1 && s.running_compactions == 0;
  }));
  lsm::DB::Stats stats = db->GetStats();
  EXPECT_GE(stats.num_subcompactions, 2u);
  ExpectRange(db.get(), "a", 0, 100);
  ExpectRange(db.get(), "b", 0, 100);
  EXPECT_TRUE(db->VerifyIntegrity().ok());
  ASSERT_TRUE(db->Close().ok());
}

// ---------------------------------------------------------------------------
// Zombie tables: compacted-away files must outlive open iterators

TEST(ZombieTableTest, OpenIteratorSurvivesCompactionOfItsTables) {
  ScopedTempDir dir("zombie");
  lsm::Options options = BaseOptions(dir.path(), Env::Default());
  std::unique_ptr<lsm::DB> db;
  ASSERT_TRUE(lsm::DB::Open(options, &db).ok());

  PutRange(db.get(), "k", 0, 100);
  ASSERT_TRUE(db->Flush().ok());
  for (int i = 0; i < 20; i++) {
    ASSERT_TRUE(db->Delete(Key("k", i)).ok());
  }
  ASSERT_TRUE(db->Flush().ok());

  // Pin the current tables with a snapshot iterator, then compact them
  // all away. The files must stay on disk (as zombies) until the
  // iterator lets go.
  std::unique_ptr<lsm::Iterator> iter =
      db->NewSnapshotIterator(lsm::ReadOptions());
  ASSERT_TRUE(db->CompactAll().ok());
  lsm::DB::Stats stats = db->GetStats();
  EXPECT_EQ(stats.zombie_tables, 2u);

  int seen = 0;
  std::string last_key;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    std::string key = iter->key().ToString();
    if (!last_key.empty()) {
      EXPECT_GT(key, last_key);
    }
    last_key = key;
    seen++;
  }
  ASSERT_TRUE(iter->status().ok());
  EXPECT_EQ(seen, 80);  // deletes visible, compacted data still readable

  iter.reset();
  ASSERT_TRUE(db->Flush().ok());  // deterministic GC point
  EXPECT_EQ(db->GetStats().zombie_tables, 0u);
  ExpectRange(db.get(), "k", 20, 100);
  EXPECT_TRUE(db->VerifyIntegrity().ok());
  ASSERT_TRUE(db->Close().ok());
}

}  // namespace
}  // namespace apmbench
