#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/arena.h"
#include "common/coding.h"
#include "common/crc32.h"
#include "common/hash.h"
#include "common/properties.h"
#include "common/random.h"
#include "common/slice.h"
#include "common/status.h"
#include "tests/test_util.h"

namespace apmbench {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, CodesAndMessages) {
  Status s = Status::NotFound("missing key");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.ToString(), "NotFound: missing key");

  EXPECT_TRUE(Status::Corruption().IsCorruption());
  EXPECT_TRUE(Status::InvalidArgument().IsInvalidArgument());
  EXPECT_TRUE(Status::IOError().IsIOError());
  EXPECT_TRUE(Status::NotSupported().IsNotSupported());
  EXPECT_TRUE(Status::Busy().IsBusy());
  EXPECT_TRUE(Status::Aborted().IsAborted());
}

TEST(StatusTest, ResultHoldsValueOrError) {
  Result<int> ok_result(42);
  ASSERT_TRUE(ok_result.ok());
  EXPECT_EQ(*ok_result, 42);

  Result<int> err_result(Status::IOError("disk gone"));
  ASSERT_FALSE(err_result.ok());
  EXPECT_TRUE(err_result.status().IsIOError());
}

TEST(SliceTest, BasicOps) {
  Slice s("hello");
  EXPECT_EQ(s.size(), 5u);
  EXPECT_EQ(s[1], 'e');
  EXPECT_TRUE(s.StartsWith("hel"));
  EXPECT_FALSE(s.StartsWith("help"));
  s.RemovePrefix(2);
  EXPECT_EQ(s.ToString(), "llo");
}

TEST(SliceTest, Comparison) {
  EXPECT_LT(Slice("abc").Compare(Slice("abd")), 0);
  EXPECT_GT(Slice("abd").Compare(Slice("abc")), 0);
  EXPECT_EQ(Slice("abc").Compare(Slice("abc")), 0);
  // Prefix ordering.
  EXPECT_LT(Slice("ab").Compare(Slice("abc")), 0);
  EXPECT_TRUE(Slice("x") == Slice("x"));
  EXPECT_TRUE(Slice("x") != Slice("y"));
  EXPECT_TRUE(Slice("a") < Slice("b"));
}

TEST(SliceTest, EmbeddedNulBytes) {
  std::string a("a\0b", 3);
  std::string b("a\0c", 3);
  EXPECT_LT(Slice(a).Compare(Slice(b)), 0);
  EXPECT_EQ(Slice(a).size(), 3u);
}

TEST(CodingTest, FixedRoundTrip) {
  std::string buf;
  PutFixed32(&buf, 0xdeadbeef);
  PutFixed64(&buf, 0x0123456789abcdefULL);
  Slice in(buf);
  uint32_t v32;
  uint64_t v64;
  ASSERT_TRUE(GetFixed32(&in, &v32));
  ASSERT_TRUE(GetFixed64(&in, &v64));
  EXPECT_EQ(v32, 0xdeadbeef);
  EXPECT_EQ(v64, 0x0123456789abcdefULL);
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, VarintRoundTrip) {
  std::vector<uint64_t> values = {0, 1, 127, 128, 300, 16383, 16384,
                                  UINT32_MAX, UINT64_MAX};
  std::string buf;
  for (uint64_t v : values) PutVarint64(&buf, v);
  Slice in(buf);
  for (uint64_t v : values) {
    uint64_t decoded;
    ASSERT_TRUE(GetVarint64(&in, &decoded));
    EXPECT_EQ(decoded, v);
  }
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, VarintLengthMatchesEncoding) {
  for (uint64_t v : std::vector<uint64_t>{0, 1, 127, 128, 1ull << 20,
                                          1ull << 40, UINT64_MAX}) {
    std::string buf;
    PutVarint64(&buf, v);
    EXPECT_EQ(static_cast<int>(buf.size()), VarintLength(v)) << v;
  }
}

TEST(CodingTest, LengthPrefixedSlice) {
  std::string buf;
  PutLengthPrefixedSlice(&buf, Slice("hello"));
  PutLengthPrefixedSlice(&buf, Slice(""));
  Slice in(buf);
  Slice a, b;
  ASSERT_TRUE(GetLengthPrefixedSlice(&in, &a));
  ASSERT_TRUE(GetLengthPrefixedSlice(&in, &b));
  EXPECT_EQ(a.ToString(), "hello");
  EXPECT_TRUE(b.empty());
}

TEST(CodingTest, TruncatedInputFails) {
  std::string buf;
  PutVarint64(&buf, 300);
  buf.resize(1);  // cut the second byte of the varint
  Slice in(buf);
  uint64_t v;
  EXPECT_FALSE(GetVarint64(&in, &v));

  Slice short_fixed("ab");
  uint32_t v32;
  EXPECT_FALSE(GetFixed32(&short_fixed, &v32));
}

TEST(Crc32Test, KnownVector) {
  // CRC-32C of "123456789" is 0xE3069283 (Castagnoli reference value).
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
}

TEST(Crc32Test, ExtendMatchesWhole) {
  const char* data = "the quick brown fox";
  uint32_t whole = Crc32c(data, 19);
  uint32_t part = Crc32c(data, 9);
  // Crc32cExtend is not a streaming CRC of concatenation in the usual
  // sense unless implemented so; verify it is.
  EXPECT_EQ(Crc32cExtend(part, data + 9, 10), whole);
}

TEST(Crc32Test, MaskRoundTrip) {
  uint32_t crc = Crc32c("payload", 7);
  EXPECT_NE(MaskCrc(crc), crc);
  EXPECT_EQ(UnmaskCrc(MaskCrc(crc)), crc);
}

TEST(HashTest, Murmur64KnownBehavior) {
  // Deterministic and spread: differing keys give differing hashes.
  uint64_t h1 = MurmurHash64A("SHARD-0-NODE-0", 14, 0x1234ABCD);
  uint64_t h2 = MurmurHash64A("SHARD-0-NODE-1", 14, 0x1234ABCD);
  uint64_t h1_again = MurmurHash64A("SHARD-0-NODE-0", 14, 0x1234ABCD);
  EXPECT_EQ(h1, h1_again);
  EXPECT_NE(h1, h2);
}

TEST(HashTest, Murmur64TailBytes) {
  // Exercise every tail length 0..7.
  const char* data = "abcdefghijklmnop";
  std::vector<uint64_t> hashes;
  for (size_t len = 8; len <= 15; len++) {
    hashes.push_back(MurmurHash64A(data, len, 0));
  }
  for (size_t i = 0; i < hashes.size(); i++) {
    for (size_t j = i + 1; j < hashes.size(); j++) {
      EXPECT_NE(hashes[i], hashes[j]);
    }
  }
}

TEST(HashTest, FnvMatchesYcsbConstant) {
  // FNV-1a 64 of 0 must be stable (YCSB key scattering depends on it).
  EXPECT_EQ(FnvHash64(0), FnvHash64(0));
  EXPECT_NE(FnvHash64(1), FnvHash64(2));
}

TEST(RandomTest, UniformBounds) {
  Random rng(1);
  for (int i = 0; i < 10000; i++) {
    EXPECT_LT(rng.Uniform(7), 7u);
  }
}

TEST(RandomTest, Deterministic) {
  Random a(99), b(99);
  for (int i = 0; i < 100; i++) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; i++) {
    double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RandomTest, ExponentialMean) {
  Random rng(17);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; i++) sum += rng.Exponential(10.0);
  EXPECT_NEAR(sum / n, 10.0, 0.3);
}

TEST(ZipfianTest, RangeAndSkew) {
  Random rng(3);
  ZipfianGenerator zipf(0, 1000);
  std::map<uint64_t, int> counts;
  const int n = 100000;
  for (int i = 0; i < n; i++) {
    uint64_t v = zipf.Next(&rng);
    ASSERT_LT(v, 1000u);
    counts[v]++;
  }
  // Item 0 should be by far the most popular (zipfian head).
  EXPECT_GT(counts[0], n / 20);
  EXPECT_GT(counts[0], counts[500] * 10);
}

TEST(ZipfianTest, ScrambledCoversSpace) {
  Random rng(4);
  ScrambledZipfianGenerator zipf(0, 1000);
  uint64_t max_seen = 0;
  for (int i = 0; i < 10000; i++) {
    uint64_t v = zipf.Next(&rng);
    ASSERT_LT(v, 1000u);
    max_seen = std::max(max_seen, v);
  }
  // Hot items are scattered: we should see values in the upper half.
  EXPECT_GT(max_seen, 900u);
}

TEST(PropertiesTest, TypedGetters) {
  Properties props;
  props.Set("a", "17");
  props.Set("b", "0.25");
  props.Set("c", "true");
  props.Set("d", "hello");
  EXPECT_EQ(props.GetInt("a"), 17);
  EXPECT_DOUBLE_EQ(props.GetDouble("b"), 0.25);
  EXPECT_TRUE(props.GetBool("c"));
  EXPECT_EQ(props.GetString("d"), "hello");
  EXPECT_EQ(props.GetInt("missing", -1), -1);
  EXPECT_TRUE(props.Contains("a"));
  EXPECT_FALSE(props.Contains("zz"));
}

TEST(PropertiesTest, ParseArg) {
  Properties props;
  EXPECT_TRUE(props.ParseArg("key=value").ok());
  EXPECT_EQ(props.GetString("key"), "value");
  EXPECT_TRUE(props.ParseArg("eq=a=b").ok());
  EXPECT_EQ(props.GetString("eq"), "a=b");
  EXPECT_FALSE(props.ParseArg("novalue").ok());
  EXPECT_FALSE(props.ParseArg("=x").ok());
}

TEST(PropertiesTest, LoadFileAndMerge) {
  testutil::ScopedTempDir dir("props");
  std::string path = dir.path() + "/test.properties";
  ASSERT_TRUE(Env::Default()
                  ->WriteStringToFile(
                      path, Slice("# comment\n\nkey1=v1\n  key2=v2  \n"))
                  .ok());
  Properties props;
  ASSERT_TRUE(props.LoadFile(path).ok());
  EXPECT_EQ(props.GetString("key1"), "v1");
  EXPECT_EQ(props.GetString("key2"), "v2");

  Properties other;
  other.Set("key1", "override");
  props.Merge(other);
  EXPECT_EQ(props.GetString("key1"), "override");
}

TEST(EnvTest, WriteReadRoundTrip) {
  testutil::ScopedTempDir dir("env");
  std::string path = dir.path() + "/file.bin";
  Env* env = Env::Default();
  ASSERT_TRUE(env->WriteStringToFile(path, Slice("hello world")).ok());
  EXPECT_TRUE(env->FileExists(path));
  std::string data;
  ASSERT_TRUE(env->ReadFileToString(path, &data).ok());
  EXPECT_EQ(data, "hello world");
  uint64_t size = 0;
  ASSERT_TRUE(env->GetFileSize(path, &size).ok());
  EXPECT_EQ(size, 11u);
}

TEST(EnvTest, AppendableFilePreservesContents) {
  testutil::ScopedTempDir dir("env2");
  std::string path = dir.path() + "/log";
  Env* env = Env::Default();
  {
    std::unique_ptr<WritableFile> f;
    ASSERT_TRUE(env->NewAppendableFile(path, &f).ok());
    ASSERT_TRUE(f->Append(Slice("one")).ok());
    ASSERT_TRUE(f->Close().ok());
  }
  {
    std::unique_ptr<WritableFile> f;
    ASSERT_TRUE(env->NewAppendableFile(path, &f).ok());
    EXPECT_EQ(f->Size(), 3u);
    ASSERT_TRUE(f->Append(Slice("two")).ok());
    ASSERT_TRUE(f->Close().ok());
  }
  std::string data;
  ASSERT_TRUE(env->ReadFileToString(path, &data).ok());
  EXPECT_EQ(data, "onetwo");
}

TEST(EnvTest, DirectorySizeAndChildren) {
  testutil::ScopedTempDir dir("env3");
  Env* env = Env::Default();
  ASSERT_TRUE(env->CreateDirIfMissing(dir.path() + "/sub/deeper").ok());
  ASSERT_TRUE(
      env->WriteStringToFile(dir.path() + "/a.bin", Slice("12345")).ok());
  ASSERT_TRUE(
      env->WriteStringToFile(dir.path() + "/sub/deeper/b.bin", Slice("123"))
          .ok());
  uint64_t bytes = 0;
  ASSERT_TRUE(env->GetDirectorySize(dir.path(), &bytes).ok());
  EXPECT_EQ(bytes, 8u);
  std::vector<std::string> children;
  ASSERT_TRUE(env->GetChildren(dir.path(), &children).ok());
  EXPECT_EQ(children.size(), 2u);
}

TEST(EnvTest, RandomAccessRead) {
  testutil::ScopedTempDir dir("env4");
  std::string path = dir.path() + "/data";
  Env* env = Env::Default();
  ASSERT_TRUE(env->WriteStringToFile(path, Slice("0123456789")).ok());
  std::unique_ptr<RandomAccessFile> f;
  ASSERT_TRUE(env->NewRandomAccessFile(path, &f).ok());
  char scratch[4];
  Slice result;
  ASSERT_TRUE(f->Read(3, 4, &result, scratch).ok());
  EXPECT_EQ(result.ToString(), "3456");
  // Read past EOF returns fewer bytes.
  ASSERT_TRUE(f->Read(8, 4, &result, scratch).ok());
  EXPECT_EQ(result.ToString(), "89");
}

TEST(EnvTest, RandomRWFile) {
  testutil::ScopedTempDir dir("env5");
  std::string path = dir.path() + "/rw";
  Env* env = Env::Default();
  std::unique_ptr<RandomRWFile> f;
  ASSERT_TRUE(env->NewRandomRWFile(path, &f).ok());
  ASSERT_TRUE(f->Write(0, Slice("aaaa")).ok());
  ASSERT_TRUE(f->Write(8, Slice("bbbb")).ok());
  char scratch[12];
  Slice result;
  ASSERT_TRUE(f->Read(0, 12, &result, scratch).ok());
  EXPECT_EQ(result.size(), 12u);
  EXPECT_EQ(result.ToString().substr(0, 4), "aaaa");
  EXPECT_EQ(result.ToString().substr(8, 4), "bbbb");
}

}  // namespace
}  // namespace apmbench

namespace apmbench {
namespace {

TEST(EnvTest, ErrorPaths) {
  Env* env = Env::Default();
  std::string data;
  Status s = env->ReadFileToString("/nonexistent/path/file", &data);
  EXPECT_FALSE(s.ok());
  uint64_t size;
  EXPECT_TRUE(env->GetFileSize("/nonexistent/file", &size).IsNotFound());
  std::unique_ptr<RandomAccessFile> f;
  EXPECT_FALSE(env->NewRandomAccessFile("/nonexistent/file", &f).ok());
  EXPECT_FALSE(env->RenameFile("/nonexistent/a", "/nonexistent/b").ok());
  // Removing a missing directory tree is not an error (idempotent).
  EXPECT_TRUE(env->RemoveDirRecursively("/tmp/apmbench-never-existed").ok());
}

TEST(PropertiesTest, MalformedNumbersFallBackGracefully) {
  Properties props;
  props.Set("n", "not-a-number");
  EXPECT_EQ(props.GetInt("n", 5), 0);  // strtoll semantics: parses 0
  props.Set("d", "abc");
  EXPECT_EQ(props.GetDouble("d", 1.5), 0.0);
  props.Set("b", "maybe");
  EXPECT_FALSE(props.GetBool("b", false));
}

TEST(ArenaTest, BumpAllocationWithinBlock) {
  Arena arena(1024);
  EXPECT_EQ(arena.MemoryUsage(), 0u);
  EXPECT_EQ(arena.BlockCount(), 0u);

  char* a = arena.Allocate(100);
  char* b = arena.Allocate(100);
  ASSERT_NE(a, nullptr);
  // Sequential small allocations bump within one block.
  EXPECT_EQ(b, a + 100);
  EXPECT_EQ(arena.BlockCount(), 1u);
  // Usage charges the whole block up front (plus vector bookkeeping), so
  // it is a true upper bound on heap bytes held.
  EXPECT_GE(arena.MemoryUsage(), 1024u);
  EXPECT_LT(arena.MemoryUsage(), 1024u + 64u);

  // The returned memory is writable across the full span.
  std::memset(a, 0xab, 200);
}

TEST(ArenaTest, AlignedAllocationsAreAligned) {
  Arena arena(512);
  arena.Allocate(1);  // misalign the bump pointer
  for (int i = 0; i < 50; i++) {
    char* p = arena.AllocateAligned(24);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % alignof(std::max_align_t),
              0u);
    arena.Allocate(3);  // re-misalign before the next one
  }
}

TEST(ArenaTest, LargeAllocationGetsOwnBlock) {
  Arena arena(1024);
  char* small = arena.Allocate(200);
  for (int i = 0; i < 3; i++) arena.Allocate(200);  // 800 used, 224 left
  ASSERT_EQ(arena.BlockCount(), 1u);
  size_t before = arena.MemoryUsage();
  // Doesn't fit the remainder and is > block/4: sized exactly, in its own
  // block, leaving the current bump block intact for small allocations.
  char* big = arena.Allocate(600);
  ASSERT_NE(big, nullptr);
  EXPECT_EQ(arena.BlockCount(), 2u);
  EXPECT_GE(arena.MemoryUsage(), before + 600);
  EXPECT_LT(arena.MemoryUsage(), before + 600 + 64);
  std::memset(big, 0xcd, 600);
  // The first block keeps serving small allocations from its remainder.
  char* small2 = arena.Allocate(100);
  EXPECT_EQ(small2, small + 800);
  EXPECT_EQ(arena.BlockCount(), 2u);
}

TEST(ArenaTest, MemoryUsageGrowsBlockAtATime) {
  const size_t kBlock = 1024;
  Arena arena(kBlock);
  size_t last = 0;
  for (int i = 0; i < 200; i++) {
    arena.Allocate(64);
    size_t usage = arena.MemoryUsage();
    ASSERT_GE(usage, last);
    // Tiny allocations can only ever add one block at a time, so usage
    // never jumps by more than block + bookkeeping.
    ASSERT_LE(usage - last, kBlock + 64);
    last = usage;
  }
  EXPECT_EQ(arena.BlockCount(), (200 * 64 + kBlock - 1) / kBlock);
}

TEST(ArenaTest, AllocationsDoNotOverlap) {
  Arena arena(256);
  std::vector<std::pair<char*, size_t>> spans;
  Random rng(42);
  for (int i = 0; i < 300; i++) {
    size_t n = 1 + rng.Uniform(100);
    char* p = i % 3 == 0 ? arena.AllocateAligned(n) : arena.Allocate(n);
    std::memset(p, static_cast<int>(i & 0xff), n);
    spans.emplace_back(p, n);
  }
  // Every span still holds its fill pattern: nothing was recycled.
  for (size_t i = 0; i < spans.size(); i++) {
    for (size_t j = 0; j < spans[i].second; j++) {
      ASSERT_EQ(static_cast<unsigned char>(spans[i].first[j]), i & 0xff)
          << "span " << i << " byte " << j;
    }
  }
}

TEST(RandomTest, UniformDoubleRange) {
  Random rng(9);
  for (int i = 0; i < 1000; i++) {
    double v = rng.UniformDouble(-3.0, 7.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 7.0);
  }
}

}  // namespace
}  // namespace apmbench
