// Crash-recovery tests for the durable engines, driven by
// FaultInjectionEnv. The pattern throughout: run a workload, simulate
// power loss (deactivate the filesystem, drop unsynced data), reopen, and
// check the crash-consistency contract of docs/durability.md — no
// acknowledged-synced write is lost, no deleted key is resurrected, and
// VerifyIntegrity() passes. Deterministic error injection additionally
// drives the error paths: a failed Append/Sync/Rename must surface as a
// Status and stop the engine, never silently lose data.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/fault_env.h"
#include "hashkv/hashkv.h"
#include "lsm/db.h"
#include "lsm/wal.h"
#include "tests/test_util.h"

namespace apmbench {
namespace {

using testutil::ScopedTempDir;

std::string Key(int i) {
  char buf[32];
  snprintf(buf, sizeof(buf), "key-%06d", i);
  return buf;
}

std::string Value(int i) {
  char buf[80];
  snprintf(buf, sizeof(buf), "value-%06d-%s", i,
           std::string(48, 'v' + (i % 3)).c_str());
  return buf;
}

lsm::Options MakeLsmOptions(const std::string& dir, Env* env,
                            bool sync_writes) {
  lsm::Options options;
  options.dir = dir;
  options.env = env;
  options.sync_writes = sync_writes;
  // Small memtable so modest workloads exercise WAL rotation and flushes.
  options.memtable_bytes = 4 * 1024;
  return options;
}

/// Simulates the instant of power loss: all further I/O through `env`
/// fails, then everything unsynced is rewound once the writers are gone.
void SimulatePowerLoss(FaultInjectionEnv* env, std::unique_ptr<lsm::DB>* db) {
  env->SetFilesystemActive(false);
  db->reset();  // shutdown paths must tolerate a dead disk
  ASSERT_TRUE(env->DropUnsyncedData().ok());
  env->ResetState();  // reactivate; forget tracking for the next cycle
}

// ---------------------------------------------------------------------------
// FaultInjectionEnv itself.

TEST(FaultEnvTest, DropUnsyncedTruncatesToSyncedPrefix) {
  ScopedTempDir dir("faultenv");
  FaultInjectionEnv env(Env::Default());
  const std::string path = dir.path() + "/file";
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env.NewWritableFile(path, &file).ok());
  ASSERT_TRUE(file->Append("durable-part").ok());
  ASSERT_TRUE(file->Sync().ok());
  ASSERT_TRUE(file->Append("lost-part").ok());
  ASSERT_TRUE(file->Close().ok());

  EXPECT_EQ(env.SyncedBytes(path), 12u);
  ASSERT_TRUE(env.DropUnsyncedData().ok());
  std::string contents;
  ASSERT_TRUE(env.ReadFileToString(path, &contents).ok());
  EXPECT_EQ(contents, "durable-part");
}

TEST(FaultEnvTest, AppendableFileKeepsPreexistingBytes) {
  ScopedTempDir dir("faultenv");
  FaultInjectionEnv env(Env::Default());
  const std::string path = dir.path() + "/file";
  ASSERT_TRUE(Env::Default()->WriteStringToFile(path, "old").ok());

  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env.NewAppendableFile(path, &file).ok());
  ASSERT_TRUE(file->Append("-new").ok());
  ASSERT_TRUE(file->Close().ok());

  ASSERT_TRUE(env.DropUnsyncedData().ok());
  std::string contents;
  ASSERT_TRUE(env.ReadFileToString(path, &contents).ok());
  EXPECT_EQ(contents, "old");  // unsynced append lost, old bytes kept
}

TEST(FaultEnvTest, FailAfterIsDeterministicAndSticky) {
  ScopedTempDir dir("faultenv");
  FaultInjectionEnv env(Env::Default());
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env.NewWritableFile(dir.path() + "/file", &file).ok());

  env.FailAfter(FaultOp::kAppend, 2);
  EXPECT_TRUE(file->Append("one").ok());
  EXPECT_TRUE(file->Append("two").ok());
  EXPECT_TRUE(file->Append("three").IsIOError());
  EXPECT_TRUE(file->Append("four").IsIOError());  // sticky
  env.ClearFault(FaultOp::kAppend);
  EXPECT_TRUE(file->Append("five").ok());
  EXPECT_TRUE(file->Close().ok());
}

TEST(FaultEnvTest, CountsSyscallsPerCategory) {
  ScopedTempDir dir("faultenv");
  FaultInjectionEnv env(Env::Default());
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env.NewWritableFile(dir.path() + "/a", &file).ok());
  ASSERT_TRUE(file->Append("x").ok());
  ASSERT_TRUE(file->Append("y").ok());
  ASSERT_TRUE(file->Sync().ok());
  ASSERT_TRUE(file->Close().ok());
  ASSERT_TRUE(env.RenameFile(dir.path() + "/a", dir.path() + "/b").ok());
  ASSERT_TRUE(env.RemoveFile(dir.path() + "/b").ok());

  EXPECT_EQ(env.OpCount(FaultOp::kNewWritableFile), 1u);
  EXPECT_EQ(env.OpCount(FaultOp::kAppend), 2u);
  EXPECT_EQ(env.OpCount(FaultOp::kSync), 1u);
  EXPECT_EQ(env.OpCount(FaultOp::kClose), 1u);
  EXPECT_EQ(env.OpCount(FaultOp::kRename), 1u);
  EXPECT_EQ(env.OpCount(FaultOp::kRemove), 1u);
  env.ResetCounters();
  EXPECT_EQ(env.OpCount(FaultOp::kAppend), 0u);
}

TEST(FaultEnvTest, RemovesFilesCreatedSinceLastDirSync) {
  ScopedTempDir dir("faultenv");
  FaultInjectionEnv env(Env::Default());
  const std::string durable = dir.path() + "/durable";
  const std::string volatile_file = dir.path() + "/volatile";
  ASSERT_TRUE(env.WriteStringToFile(durable, "d").ok());
  ASSERT_TRUE(env.SyncDir(dir.path()).ok());
  ASSERT_TRUE(env.WriteStringToFile(volatile_file, "v").ok());

  ASSERT_TRUE(env.RemoveFilesCreatedSinceLastDirSync().ok());
  EXPECT_TRUE(env.FileExists(durable));
  EXPECT_FALSE(env.FileExists(volatile_file));
}

TEST(FaultEnvTest, InactiveFilesystemFailsMutations) {
  ScopedTempDir dir("faultenv");
  FaultInjectionEnv env(Env::Default());
  const std::string path = dir.path() + "/file";
  ASSERT_TRUE(env.WriteStringToFile(path, "x").ok());

  env.SetFilesystemActive(false);
  std::unique_ptr<WritableFile> file;
  EXPECT_TRUE(env.NewWritableFile(dir.path() + "/other", &file).IsIOError());
  EXPECT_TRUE(env.RemoveFile(path).IsIOError());
  EXPECT_TRUE(env.FileExists(path));  // reads still work
  env.SetFilesystemActive(true);
  EXPECT_TRUE(env.RemoveFile(path).ok());
}

// ---------------------------------------------------------------------------
// LSM power-loss recovery.

TEST(CrashTest, SyncedWritesSurvivePowerLoss) {
  ScopedTempDir dir("crash");
  FaultInjectionEnv env(Env::Default());
  std::unique_ptr<lsm::DB> db;
  ASSERT_TRUE(
      lsm::DB::Open(MakeLsmOptions(dir.path(), &env, true), &db).ok());
  const int n = 200;  // enough to rotate the 4 KiB memtable several times
  for (int i = 0; i < n; i++) {
    ASSERT_TRUE(db->Put(Key(i), Value(i)).ok());
  }
  SimulatePowerLoss(&env, &db);

  ASSERT_TRUE(
      lsm::DB::Open(MakeLsmOptions(dir.path(), &env, true), &db).ok());
  lsm::ReadOptions read_options;
  for (int i = 0; i < n; i++) {
    std::string value;
    ASSERT_TRUE(db->Get(read_options, Key(i), &value).ok())
        << "acknowledged synced write lost: " << Key(i);
    EXPECT_EQ(value, Value(i));
  }
  EXPECT_TRUE(db->VerifyIntegrity().ok());
}

TEST(CrashTest, UnsyncedWritesMayLoseTailButNeverCorrupt) {
  ScopedTempDir dir("crash");
  FaultInjectionEnv env(Env::Default());
  std::unique_ptr<lsm::DB> db;
  ASSERT_TRUE(
      lsm::DB::Open(MakeLsmOptions(dir.path(), &env, false), &db).ok());
  const int n = 200;
  for (int i = 0; i < n; i++) {
    ASSERT_TRUE(db->Put(Key(i), Value(i)).ok());
  }
  SimulatePowerLoss(&env, &db);

  // With sync_writes=false the tail may be gone, but the database must
  // open, pass integrity checks, and return only correct values.
  ASSERT_TRUE(
      lsm::DB::Open(MakeLsmOptions(dir.path(), &env, false), &db).ok());
  EXPECT_TRUE(db->VerifyIntegrity().ok());
  lsm::ReadOptions read_options;
  for (int i = 0; i < n; i++) {
    std::string value;
    Status s = db->Get(read_options, Key(i), &value);
    if (s.ok()) {
      EXPECT_EQ(value, Value(i)) << "wrong value recovered for " << Key(i);
    } else {
      EXPECT_TRUE(s.IsNotFound());
    }
  }
}

TEST(CrashTest, CleanCloseIsDurableWithoutSyncWrites) {
  ScopedTempDir dir("crash");
  FaultInjectionEnv env(Env::Default());
  std::unique_ptr<lsm::DB> db;
  ASSERT_TRUE(
      lsm::DB::Open(MakeLsmOptions(dir.path(), &env, false), &db).ok());
  const int n = 50;
  for (int i = 0; i < n; i++) {
    ASSERT_TRUE(db->Put(Key(i), Value(i)).ok());
  }
  // Clean shutdown syncs the live WAL, so even an immediate power loss
  // afterwards must not lose acknowledged writes.
  ASSERT_TRUE(db->Close().ok());
  db.reset();
  ASSERT_TRUE(env.DropUnsyncedData().ok());
  env.ResetState();

  ASSERT_TRUE(
      lsm::DB::Open(MakeLsmOptions(dir.path(), &env, false), &db).ok());
  lsm::ReadOptions read_options;
  for (int i = 0; i < n; i++) {
    std::string value;
    ASSERT_TRUE(db->Get(read_options, Key(i), &value).ok())
        << "clean close lost " << Key(i);
    EXPECT_EQ(value, Value(i));
  }
  EXPECT_TRUE(db->VerifyIntegrity().ok());
}

TEST(CrashTest, DeletesSurvivePowerLoss) {
  ScopedTempDir dir("crash");
  FaultInjectionEnv env(Env::Default());
  std::unique_ptr<lsm::DB> db;
  ASSERT_TRUE(
      lsm::DB::Open(MakeLsmOptions(dir.path(), &env, true), &db).ok());
  ASSERT_TRUE(db->Put("victim", "gone-soon").ok());
  ASSERT_TRUE(db->Flush().ok());
  ASSERT_TRUE(db->Delete("victim").ok());
  SimulatePowerLoss(&env, &db);

  ASSERT_TRUE(
      lsm::DB::Open(MakeLsmOptions(dir.path(), &env, true), &db).ok());
  std::string value;
  EXPECT_TRUE(db->Get(lsm::ReadOptions(), "victim", &value).IsNotFound())
      << "deleted key resurrected after power loss";
}

// Regression for the stale-WAL resurrection bug: a crash between
// LogAndApply and RemoveFile in the flush path leaves a fully-flushed WAL
// on disk. Replaying it used to re-apply entries whose tombstones a later
// full compaction had already dropped, resurrecting deleted keys.
TEST(CrashTest, StaleWalIsNotReplayedAfterCrashedFlushCleanup) {
  ScopedTempDir dir("crash");
  FaultInjectionEnv env(Env::Default());
  std::unique_ptr<lsm::DB> db;
  lsm::Options options = MakeLsmOptions(dir.path(), &env, true);
  options.memtable_bytes = 1 << 20;  // only explicit flushes rotate
  ASSERT_TRUE(lsm::DB::Open(options, &db).ok());
  ASSERT_TRUE(db->Put("victim", "v1").ok());

  // Crash point: the flush lands (manifest marks the WAL flushed) but the
  // WAL file removal never happens.
  env.FailAfter(FaultOp::kRemove, 0);
  ASSERT_TRUE(db->Flush().ok());
  env.ClearFault(FaultOp::kRemove);

  // The key dies and a full compaction drops its tombstone entirely.
  ASSERT_TRUE(db->Delete("victim").ok());
  ASSERT_TRUE(db->CompactAll().ok());
  db.reset();

  // The stale WAL (holding Put victim=v1) is still on disk. Reopen: it
  // must be skipped, not replayed.
  env.ResetState();
  ASSERT_TRUE(lsm::DB::Open(options, &db).ok());
  std::string value;
  EXPECT_TRUE(db->Get(lsm::ReadOptions(), "victim", &value).IsNotFound())
      << "stale WAL replay resurrected a deleted key";
  EXPECT_TRUE(db->VerifyIntegrity().ok());
}

// ---------------------------------------------------------------------------
// WAL damage classification.

// Writes via a DB, crashes, and hands back the largest WAL on disk.
std::string LiveWalPath(Env* env, const std::string& dir) {
  std::vector<std::string> children;
  if (!env->GetChildren(dir, &children).ok()) return "";
  std::string best;
  uint64_t best_size = 0;
  for (const auto& name : children) {
    if (name.rfind("wal-", 0) != 0) continue;
    uint64_t size = 0;
    if (!env->GetFileSize(dir + "/" + name, &size).ok()) continue;
    if (size >= best_size) {
      best_size = size;
      best = dir + "/" + name;
    }
  }
  return best;
}

TEST(CrashTest, TornWalTailRecoversPrefixAndReportsDroppedBytes) {
  ScopedTempDir dir("crash");
  FaultInjectionEnv env(Env::Default());
  std::unique_ptr<lsm::DB> db;
  lsm::Options options = MakeLsmOptions(dir.path(), &env, true);
  options.memtable_bytes = 1 << 20;
  ASSERT_TRUE(lsm::DB::Open(options, &db).ok());
  for (int i = 0; i < 3; i++) {
    ASSERT_TRUE(db->Put(Key(i), Value(i)).ok());
  }
  env.SetFilesystemActive(false);
  db.reset();
  env.ResetState();

  // Tear the last record: chop one byte off the WAL, as an interrupted
  // append would.
  std::string wal = LiveWalPath(Env::Default(), dir.path());
  ASSERT_FALSE(wal.empty());
  std::string contents;
  ASSERT_TRUE(Env::Default()->ReadFileToString(wal, &contents).ok());
  contents.resize(contents.size() - 1);
  ASSERT_TRUE(Env::Default()->WriteStringToFile(wal, contents).ok());

  ASSERT_TRUE(lsm::DB::Open(options, &db).ok());
  lsm::ReadOptions read_options;
  std::string value;
  EXPECT_TRUE(db->Get(read_options, Key(0), &value).ok());
  EXPECT_TRUE(db->Get(read_options, Key(1), &value).ok());
  EXPECT_TRUE(db->Get(read_options, Key(2), &value).IsNotFound());
  EXPECT_GT(db->GetStats().wal_dropped_bytes, 0u);
  EXPECT_EQ(db->GetStats().wal_replayed_records, 2u);
}

TEST(CrashTest, MidWalCorruptionFailsOpenInsteadOfSilentTruncation) {
  ScopedTempDir dir("crash");
  FaultInjectionEnv env(Env::Default());
  std::unique_ptr<lsm::DB> db;
  lsm::Options options = MakeLsmOptions(dir.path(), &env, true);
  options.memtable_bytes = 1 << 20;
  ASSERT_TRUE(lsm::DB::Open(options, &db).ok());
  for (int i = 0; i < 3; i++) {
    ASSERT_TRUE(db->Put(Key(i), Value(i)).ok());
  }
  env.SetFilesystemActive(false);
  db.reset();
  env.ResetState();

  // Flip a payload byte of the *first* record: records follow it, so this
  // is mid-log damage, not a torn tail. Acknowledged records after the
  // damage are unrecoverable; recovery must say so.
  std::string wal = LiveWalPath(Env::Default(), dir.path());
  ASSERT_FALSE(wal.empty());
  std::string contents;
  ASSERT_TRUE(Env::Default()->ReadFileToString(wal, &contents).ok());
  ASSERT_GT(contents.size(), 16u);
  contents[10] ^= 0x40;
  ASSERT_TRUE(Env::Default()->WriteStringToFile(wal, contents).ok());

  Status s = lsm::DB::Open(options, &db);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

// ---------------------------------------------------------------------------
// Injected error paths: failures must surface and stop the engine.

TEST(CrashTest, InjectedWalAppendFailureStopsWritesWithoutLoss) {
  ScopedTempDir dir("crash");
  FaultInjectionEnv env(Env::Default());
  std::unique_ptr<lsm::DB> db;
  lsm::Options options = MakeLsmOptions(dir.path(), &env, false);
  options.memtable_bytes = 1 << 20;
  ASSERT_TRUE(lsm::DB::Open(options, &db).ok());

  env.FailAfter(FaultOp::kAppend, 20);
  int acked = 0;
  Status s;
  for (int i = 0; i < 100; i++) {
    s = db->Put(Key(i), Value(i));
    if (!s.ok()) break;
    acked++;
  }
  ASSERT_TRUE(s.IsIOError()) << "append fault never surfaced";
  ASSERT_LT(acked, 100);
  // The engine now refuses writes rather than appending past a possibly
  // torn WAL frame.
  EXPECT_TRUE(db->Put("after", "x").IsIOError());
  env.ClearAllFaults();
  db.reset();  // clean close syncs whatever the WAL holds

  ASSERT_TRUE(lsm::DB::Open(options, &db).ok());
  lsm::ReadOptions read_options;
  for (int i = 0; i < acked; i++) {
    std::string value;
    ASSERT_TRUE(db->Get(read_options, Key(i), &value).ok())
        << "acknowledged write lost after injected append failure";
    EXPECT_EQ(value, Value(i));
  }
  EXPECT_TRUE(db->VerifyIntegrity().ok());
}

TEST(CrashTest, InjectedWalSyncFailureStopsWrites) {
  ScopedTempDir dir("crash");
  FaultInjectionEnv env(Env::Default());
  std::unique_ptr<lsm::DB> db;
  lsm::Options options = MakeLsmOptions(dir.path(), &env, true);
  options.memtable_bytes = 1 << 20;
  ASSERT_TRUE(lsm::DB::Open(options, &db).ok());

  ASSERT_TRUE(db->Put(Key(0), Value(0)).ok());
  env.FailAfter(FaultOp::kSync, 0);
  EXPECT_TRUE(db->Put(Key(1), Value(1)).IsIOError());
  EXPECT_TRUE(db->Put(Key(2), Value(2)).IsIOError());  // still refusing
  env.ClearAllFaults();
}

TEST(CrashTest, InjectedManifestRenameFailureSurfacesAndPreservesData) {
  ScopedTempDir dir("crash");
  FaultInjectionEnv env(Env::Default());
  std::unique_ptr<lsm::DB> db;
  lsm::Options options = MakeLsmOptions(dir.path(), &env, true);
  options.memtable_bytes = 1 << 20;
  ASSERT_TRUE(lsm::DB::Open(options, &db).ok());
  const int n = 20;
  for (int i = 0; i < n; i++) {
    ASSERT_TRUE(db->Put(Key(i), Value(i)).ok());
  }

  // Crash point: mid-manifest update — the flush writes its table but the
  // manifest rename fails. bg_error_ must surface and writes must stop.
  env.FailAfter(FaultOp::kRename, 0);
  EXPECT_FALSE(db->Flush().ok());
  EXPECT_FALSE(db->Put("after", "x").ok());
  env.ClearAllFaults();
  db.reset();

  // The WALs were never removed, so reopening recovers everything.
  env.ResetState();
  ASSERT_TRUE(lsm::DB::Open(options, &db).ok());
  lsm::ReadOptions read_options;
  for (int i = 0; i < n; i++) {
    std::string value;
    ASSERT_TRUE(db->Get(read_options, Key(i), &value).ok())
        << Key(i) << " lost after failed manifest rename";
    EXPECT_EQ(value, Value(i));
  }
  EXPECT_TRUE(db->VerifyIntegrity().ok());
}

TEST(CrashTest, InjectedWalCreationFailureFailsRotation) {
  ScopedTempDir dir("crash");
  FaultInjectionEnv env(Env::Default());
  std::unique_ptr<lsm::DB> db;
  lsm::Options options = MakeLsmOptions(dir.path(), &env, false);
  options.memtable_bytes = 1 << 20;
  ASSERT_TRUE(lsm::DB::Open(options, &db).ok());
  ASSERT_TRUE(db->Put(Key(0), Value(0)).ok());

  env.FailAfter(FaultOp::kNewWritableFile, 0);
  EXPECT_FALSE(db->Flush().ok());  // cannot create the next WAL segment
  env.ClearAllFaults();
  // The failed rotation must not have lost the acknowledged write.
  std::string value;
  EXPECT_TRUE(db->Get(lsm::ReadOptions(), Key(0), &value).ok());
  EXPECT_EQ(value, Value(0));
}

// ---------------------------------------------------------------------------
// Crash-point matrix: power loss at the Nth call of each mutating
// operation, with sync_writes on and off. The contract checked is the one
// docs/durability.md states: with sync_writes=true every acknowledged
// write survives; with sync_writes=false a crash may cost the tail but
// recovery still yields a consistent store with only correct values.

TEST(CrashTest, CrashPointMatrix) {
  const FaultOp kOps[] = {FaultOp::kAppend, FaultOp::kSync, FaultOp::kFlush,
                          FaultOp::kRename, FaultOp::kNewWritableFile,
                          FaultOp::kClose};
  const uint64_t kNths[] = {0, 3, 17};
  for (bool sync_writes : {false, true}) {
    for (FaultOp op : kOps) {
      for (uint64_t nth : kNths) {
        SCOPED_TRACE("sync_writes=" + std::to_string(sync_writes) +
                     " op=" + std::to_string(static_cast<int>(op)) +
                     " nth=" + std::to_string(nth));
        ScopedTempDir dir("crashmatrix");
        FaultInjectionEnv env(Env::Default());
        std::unique_ptr<lsm::DB> db;
        lsm::Options options = MakeLsmOptions(dir.path(), &env, sync_writes);
        ASSERT_TRUE(lsm::DB::Open(options, &db).ok());

        env.FailAfter(op, nth);
        int acked = 0;
        for (int i = 0; i < 120; i++) {
          if (!db->Put(Key(i), Value(i)).ok()) break;
          acked++;
        }
        // Power loss at (or after) the injected failure point.
        env.SetFilesystemActive(false);
        db.reset();
        ASSERT_TRUE(env.DropUnsyncedData().ok());
        env.ResetState();

        Status open_status = lsm::DB::Open(options, &db);
        ASSERT_TRUE(open_status.ok()) << open_status.ToString();
        EXPECT_TRUE(db->VerifyIntegrity().ok());
        lsm::ReadOptions read_options;
        for (int i = 0; i < acked; i++) {
          std::string value;
          Status s = db->Get(read_options, Key(i), &value);
          if (sync_writes) {
            ASSERT_TRUE(s.ok()) << "synced acknowledged write " << Key(i)
                                << " lost: " << s.ToString();
          }
          if (s.ok()) {
            ASSERT_EQ(value, Value(i)) << "wrong value for " << Key(i);
          } else {
            ASSERT_TRUE(s.IsNotFound()) << s.ToString();
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// HashKV snapshot / AOF crash safety.

TEST(HashKvCrashTest, SyncedAofSurvivesPowerLoss) {
  ScopedTempDir dir("hashkv");
  FaultInjectionEnv env(Env::Default());
  hashkv::Options options;
  options.env = &env;
  options.aof_path = dir.path() + "/store.aof";
  options.sync_aof = true;
  std::unique_ptr<hashkv::HashKV> kv;
  ASSERT_TRUE(hashkv::HashKV::Open(options, &kv).ok());
  for (int i = 0; i < 50; i++) {
    ASSERT_TRUE(kv->Set(Key(i), Value(i)).ok());
  }
  env.SetFilesystemActive(false);
  kv.reset();
  ASSERT_TRUE(env.DropUnsyncedData().ok());
  env.ResetState();

  ASSERT_TRUE(hashkv::HashKV::Open(options, &kv).ok());
  for (int i = 0; i < 50; i++) {
    std::string value;
    ASSERT_TRUE(kv->Get(Key(i), &value).ok()) << Key(i) << " lost";
    EXPECT_EQ(value, Value(i));
  }
}

TEST(HashKvCrashTest, AofTornTailRecoversPrefix) {
  ScopedTempDir dir("hashkv");
  hashkv::Options options;
  options.aof_path = dir.path() + "/store.aof";
  options.sync_aof = true;
  std::unique_ptr<hashkv::HashKV> kv;
  ASSERT_TRUE(hashkv::HashKV::Open(options, &kv).ok());
  ASSERT_TRUE(kv->Set("k1", "v1").ok());
  ASSERT_TRUE(kv->Set("k2", "v2").ok());
  ASSERT_TRUE(kv->Set("k3", "v3").ok());
  kv.reset();

  std::string contents;
  ASSERT_TRUE(
      Env::Default()->ReadFileToString(options.aof_path, &contents).ok());
  contents.resize(contents.size() - 1);  // tear the last record
  ASSERT_TRUE(
      Env::Default()->WriteStringToFile(options.aof_path, contents).ok());

  ASSERT_TRUE(hashkv::HashKV::Open(options, &kv).ok());
  std::string value;
  EXPECT_TRUE(kv->Get("k1", &value).ok());
  EXPECT_TRUE(kv->Get("k2", &value).ok());
  EXPECT_TRUE(kv->Get("k3", &value).IsNotFound());
}

TEST(HashKvCrashTest, SnapshotRenameFailureKeepsOldSnapshot) {
  ScopedTempDir dir("hashkv");
  FaultInjectionEnv env(Env::Default());
  hashkv::Options options;
  options.env = &env;
  std::unique_ptr<hashkv::HashKV> kv;
  ASSERT_TRUE(hashkv::HashKV::Open(options, &kv).ok());
  ASSERT_TRUE(kv->Set("stable", "old").ok());
  const std::string snapshot = dir.path() + "/dump.rdb";
  ASSERT_TRUE(kv->SaveSnapshot(snapshot).ok());

  ASSERT_TRUE(kv->Set("stable", "new").ok());
  env.FailAfter(FaultOp::kRename, 0);
  EXPECT_FALSE(kv->SaveSnapshot(snapshot).ok());
  env.ClearAllFaults();

  // The failed save must not have clobbered the previous snapshot.
  ASSERT_TRUE(kv->LoadSnapshot(snapshot).ok());
  std::string value;
  ASSERT_TRUE(kv->Get("stable", &value).ok());
  EXPECT_EQ(value, "old");
}

// ---------------------------------------------------------------------------
// Compaction crash points.
//
// A compaction touches the filesystem at every stage — SSTable build
// (NewWritableFile/Append/Sync/SyncDir on the outputs), manifest apply
// (the MANIFEST temp-write + rename), and obsolete-file deletion
// (RemoveFile of inputs and flushed WALs). The matrix below injects a
// sticky IOError at each stage, follows it with a power loss, and checks
// the crash-consistency contract: with synced writes no acknowledged put
// is lost, no key deleted before the crash is resurrected by recovery,
// and the reopened database passes a full integrity scrub.

void RunCompactionCrashPoint(FaultOp op, uint64_t nth) {
  SCOPED_TRACE("op=" + std::to_string(static_cast<int>(op)) +
               " nth=" + std::to_string(nth));
  ScopedTempDir dir("compactcrash");
  FaultInjectionEnv env(Env::Default());
  std::unique_ptr<lsm::DB> db;
  lsm::Options options = MakeLsmOptions(dir.path(), &env, true);
  options.memtable_bytes = 1 << 20;  // only explicit flushes rotate
  ASSERT_TRUE(lsm::DB::Open(options, &db).ok());

  // Two overlapping tables: the second holds tombstones for part of the
  // first, so the compaction both merges values and drops deletes.
  const int n = 150;
  const int deleted = 25;
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(db->Put(Key(i), Value(i)).ok());
  }
  ASSERT_TRUE(db->Flush().ok());
  for (int i = 100; i < n; i++) {
    ASSERT_TRUE(db->Put(Key(i), Value(i)).ok());
  }
  for (int i = 0; i < deleted; i++) {
    ASSERT_TRUE(db->Delete(Key(i)).ok());
  }
  ASSERT_TRUE(db->Flush().ok());

  // Arm the fault and compact. The compaction may fail (that is the
  // point); the engine must surface an error rather than corrupt state.
  env.FailAfter(op, nth);
  Status compact_status = db->CompactAll();
  SimulatePowerLoss(&env, &db);
  (void)compact_status;  // either outcome is legal; recovery is what counts

  ASSERT_TRUE(lsm::DB::Open(options, &db).ok());
  EXPECT_TRUE(db->VerifyIntegrity().ok());
  lsm::ReadOptions read_options;
  for (int i = 0; i < deleted; i++) {
    std::string value;
    EXPECT_TRUE(db->Get(read_options, Key(i), &value).IsNotFound())
        << "compaction crash resurrected deleted key " << Key(i);
  }
  for (int i = deleted; i < n; i++) {
    std::string value;
    ASSERT_TRUE(db->Get(read_options, Key(i), &value).ok())
        << "compaction crash lost acknowledged write " << Key(i);
    EXPECT_EQ(value, Value(i));
  }

  // The survivor must still be fully usable: write, flush, compact.
  ASSERT_TRUE(db->Put(Key(n), Value(n)).ok());
  ASSERT_TRUE(db->Flush().ok());
  ASSERT_TRUE(db->CompactAll().ok());
  std::string value;
  ASSERT_TRUE(db->Get(read_options, Key(n), &value).ok());
  EXPECT_EQ(value, Value(n));
  EXPECT_TRUE(db->VerifyIntegrity().ok());
}

TEST(CompactionCrashTest, TableBuildFaults) {
  // SSTable-output construction: file creation, data append, fsync, and
  // the directory sync that publishes the new file name.
  for (uint64_t nth : {0u, 2u}) {
    RunCompactionCrashPoint(FaultOp::kNewWritableFile, nth);
    RunCompactionCrashPoint(FaultOp::kAppend, nth);
    RunCompactionCrashPoint(FaultOp::kSync, nth);
    RunCompactionCrashPoint(FaultOp::kSyncDir, nth);
  }
}

TEST(CompactionCrashTest, ManifestApplyFault) {
  // The MANIFEST is rewritten temp + rename; failing the rename crashes
  // the apply step after the outputs exist but before they are live.
  for (uint64_t nth : {0u, 1u}) {
    RunCompactionCrashPoint(FaultOp::kRename, nth);
  }
}

TEST(CompactionCrashTest, ObsoleteFileDeleteFault) {
  // Input unlink (zombie collection) fails after the edit is durable;
  // recovery must ignore the orphaned tables rather than re-adopt them.
  for (uint64_t nth : {0u, 1u}) {
    RunCompactionCrashPoint(FaultOp::kRemove, nth);
  }
}

TEST(CompactionCrashTest, PowerLossDuringBackgroundCompaction) {
  // No injected fault: cut the power while the compaction pool is busy
  // on organically triggered (non-manual) jobs.
  ScopedTempDir dir("compactcrash");
  FaultInjectionEnv env(Env::Default());
  std::unique_ptr<lsm::DB> db;
  lsm::Options options = MakeLsmOptions(dir.path(), &env, true);
  options.compaction_style = lsm::CompactionStyle::kLeveled;
  options.level0_compaction_trigger = 2;
  options.compaction_threads = 2;
  ASSERT_TRUE(lsm::DB::Open(options, &db).ok());
  const int n = 300;
  for (int i = 0; i < n; i++) {
    ASSERT_TRUE(db->Put(Key(i), Value(i)).ok());
  }
  SimulatePowerLoss(&env, &db);

  ASSERT_TRUE(lsm::DB::Open(options, &db).ok());
  EXPECT_TRUE(db->VerifyIntegrity().ok());
  lsm::ReadOptions read_options;
  for (int i = 0; i < n; i++) {
    std::string value;
    ASSERT_TRUE(db->Get(read_options, Key(i), &value).ok())
        << "power loss during compaction lost " << Key(i);
    EXPECT_EQ(value, Value(i));
  }
}

// ---------------------------------------------------------------------------
// POSIX read-path robustness: positional reads must retry EINTR and
// continue after short returns. A signal-heavy process (the network
// server shares this address space) makes both routine; regression for
// the paths that used to surface them as truncation/corruption.

std::atomic<uint64_t> g_hostile_pread_calls{0};

/// A pread that behaves like a kernel under signal pressure: every fifth
/// call is interrupted (EINTR), the rest deliver at most 7 bytes.
long HostilePread(int fd, void* buf, unsigned long count, int64_t offset) {
  uint64_t n = g_hostile_pread_calls.fetch_add(1, std::memory_order_relaxed);
  if (n % 5 == 4) {
    errno = EINTR;
    return -1;
  }
  unsigned long chunk = count < 7 ? count : 7;
  return pread(fd, buf, chunk, static_cast<off_t>(offset));
}

struct ScopedPreadHook {
  explicit ScopedPreadHook(PosixPreadFunc fn) { SetPosixPreadForTesting(fn); }
  ~ScopedPreadHook() { SetPosixPreadForTesting(nullptr); }
};

TEST(PreadRobustnessTest, RandomAccessReadSurvivesEintrAndShortReads) {
  ScopedTempDir dir("pread");
  FaultInjectionEnv env(Env::Default());
  const std::string path = dir.path() + "/file";
  std::string payload;
  for (int i = 0; i < 100; i++) payload += Value(i);
  ASSERT_TRUE(env.WriteStringToFile(path, Slice(payload)).ok());

  ScopedPreadHook hook(&HostilePread);
  std::unique_ptr<RandomAccessFile> file;
  ASSERT_TRUE(env.NewRandomAccessFile(path, &file).ok());
  std::vector<char> scratch(payload.size() + 64);
  Slice result;
  // A full-file read must come back complete despite the 7-byte chunks.
  ASSERT_TRUE(file->Read(0, payload.size(), &result, scratch.data()).ok());
  EXPECT_EQ(result.ToString(), payload);
  // Reads crossing end-of-file still return the short tail, not an error.
  ASSERT_TRUE(
      file->Read(payload.size() - 10, 100, &result, scratch.data()).ok());
  EXPECT_EQ(result.ToString(), payload.substr(payload.size() - 10));
  // Reads entirely past end-of-file return empty.
  ASSERT_TRUE(
      file->Read(payload.size() + 10, 100, &result, scratch.data()).ok());
  EXPECT_EQ(result.size(), 0u);

  std::unique_ptr<RandomRWFile> rw;
  ASSERT_TRUE(env.NewRandomRWFile(path, &rw).ok());
  ASSERT_TRUE(rw->Read(0, payload.size(), &result, scratch.data()).ok());
  EXPECT_EQ(result.ToString(), payload);
}

TEST(PreadRobustnessTest, LsmRecoversAndReadsUnderHostilePread) {
  ScopedTempDir dir("pread-lsm");
  FaultInjectionEnv env(Env::Default());
  const int n = 200;
  {
    std::unique_ptr<lsm::DB> db;
    ASSERT_TRUE(
        lsm::DB::Open(MakeLsmOptions(dir.path(), &env, false), &db).ok());
    for (int i = 0; i < n; i++) {
      ASSERT_TRUE(db->Put(Key(i), Value(i)).ok());
    }
  }
  // Recovery and every subsequent Get run over sstables/logs through the
  // hostile pread: short reads used to surface as Corruption.
  ScopedPreadHook hook(&HostilePread);
  std::unique_ptr<lsm::DB> db;
  ASSERT_TRUE(
      lsm::DB::Open(MakeLsmOptions(dir.path(), &env, false), &db).ok());
  lsm::ReadOptions read_options;
  for (int i = 0; i < n; i++) {
    std::string value;
    ASSERT_TRUE(db->Get(read_options, Key(i), &value).ok())
        << "hostile pread corrupted read of " << Key(i);
    EXPECT_EQ(value, Value(i));
  }
  ASSERT_TRUE(db->VerifyIntegrity().ok());
}

TEST(HashKvCrashTest, AofRewriteRenameFailureKeepsAppending) {
  ScopedTempDir dir("hashkv");
  FaultInjectionEnv env(Env::Default());
  hashkv::Options options;
  options.env = &env;
  options.aof_path = dir.path() + "/store.aof";
  options.sync_aof = true;
  std::unique_ptr<hashkv::HashKV> kv;
  ASSERT_TRUE(hashkv::HashKV::Open(options, &kv).ok());
  ASSERT_TRUE(kv->Set("k1", "v1").ok());
  ASSERT_TRUE(kv->Del("k1").ok());
  ASSERT_TRUE(kv->Set("k2", "v2").ok());

  env.FailAfter(FaultOp::kRename, 0);
  EXPECT_FALSE(kv->RewriteAof().ok());
  env.ClearAllFaults();

  // The store must still be able to persist new mutations to the old AOF.
  ASSERT_TRUE(kv->Set("k3", "v3").ok());
  kv.reset();
  ASSERT_TRUE(hashkv::HashKV::Open(options, &kv).ok());
  std::string value;
  EXPECT_TRUE(kv->Get("k1", &value).IsNotFound());
  ASSERT_TRUE(kv->Get("k2", &value).ok());
  EXPECT_EQ(value, "v2");
  ASSERT_TRUE(kv->Get("k3", &value).ok());
  EXPECT_EQ(value, "v3");
}

}  // namespace
}  // namespace apmbench
