#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "common/random.h"
#include "stores/cassandra_store.h"
#include "stores/factory.h"
#include "stores/hbase_store.h"
#include "stores/mysql_store.h"
#include "stores/redis_store.h"
#include "tests/test_util.h"
#include "ycsb/client.h"
#include "ycsb/workload.h"

namespace apmbench::stores {
namespace {

using testutil::ScopedTempDir;

ycsb::Record MakeRecord(int tag) {
  ycsb::Record record;
  for (int i = 0; i < 5; i++) {
    record.emplace_back("field" + std::to_string(i),
                        "v" + std::to_string(tag) + "-" + std::to_string(i));
  }
  return record;
}

/// DB-conformance suite run against every store.
class StoreConformanceTest : public ::testing::TestWithParam<std::string> {
 protected:
  StoreConformanceTest() : dir_("store") {}

  void Open(int num_nodes) {
    StoreOptions options;
    options.base_dir = dir_.path();
    options.num_nodes = num_nodes;
    options.memtable_bytes = 64 * 1024;
    options.buffer_pool_bytes = 1 * 1024 * 1024;
    ASSERT_TRUE(CreateStore(GetParam(), options, &db_).ok());
  }

  ScopedTempDir dir_;
  std::unique_ptr<ycsb::DB> db_;
};

TEST_P(StoreConformanceTest, InsertReadUpdateDelete) {
  Open(3);
  const std::string table = "usertable";
  ycsb::Record record = MakeRecord(1);
  ASSERT_TRUE(db_->Insert(table, "user001", record).ok());

  ycsb::Record read_back;
  ASSERT_TRUE(db_->Read(table, "user001", &read_back).ok());
  // Order-insensitive comparison (per-cell stores may reorder fields).
  std::map<std::string, std::string> got(read_back.begin(), read_back.end());
  for (const auto& [field, value] : record) {
    EXPECT_EQ(got[field], value) << field;
  }

  ycsb::Record updated = MakeRecord(2);
  ASSERT_TRUE(db_->Update(table, "user001", updated).ok());
  ASSERT_TRUE(db_->Read(table, "user001", &read_back).ok());
  std::map<std::string, std::string> got2(read_back.begin(),
                                          read_back.end());
  EXPECT_EQ(got2["field0"], "v2-0");

  EXPECT_TRUE(db_->Read(table, "missing", &read_back).IsNotFound());

  ASSERT_TRUE(db_->Delete(table, "user001").ok());
  EXPECT_TRUE(db_->Read(table, "user001", &read_back).IsNotFound());
}

TEST_P(StoreConformanceTest, ManyKeysAcrossNodes) {
  Open(4);
  const std::string table = "usertable";
  const int n = 400;
  for (int i = 0; i < n; i++) {
    char key[32];
    snprintf(key, sizeof(key), "user%021d", i);
    ASSERT_TRUE(db_->Insert(table, key, MakeRecord(i)).ok()) << i;
  }
  Random rng(1);
  for (int probe = 0; probe < 100; probe++) {
    int i = static_cast<int>(rng.Uniform(n));
    char key[32];
    snprintf(key, sizeof(key), "user%021d", i);
    ycsb::Record record;
    ASSERT_TRUE(db_->Read(table, key, &record).ok()) << key;
    std::map<std::string, std::string> got(record.begin(), record.end());
    EXPECT_EQ(got["field3"], "v" + std::to_string(i) + "-3");
  }
}

TEST_P(StoreConformanceTest, ScanReturnsOrderedWindow) {
  if (!StoreSupportsScans(GetParam())) {
    GTEST_SKIP() << GetParam() << " has no scan support (as in the paper)";
  }
  Open(3);
  const std::string table = "usertable";
  for (int i = 0; i < 200; i++) {
    char key[32];
    snprintf(key, sizeof(key), "user%021d", i);
    ASSERT_TRUE(db_->Insert(table, key, MakeRecord(i)).ok());
  }
  char start[32];
  snprintf(start, sizeof(start), "user%021d", 50);
  std::vector<ycsb::Record> records;
  ASSERT_TRUE(db_->Scan(table, start, 20, &records).ok());
  // MySQL's faithful scan semantics only covers the start key's shard, so
  // it may return fewer than requested; every other store returns the
  // full window.
  if (GetParam() == "mysql") {
    EXPECT_GE(records.size(), 1u);
    EXPECT_LE(records.size(), 20u);
  } else {
    ASSERT_EQ(records.size(), 20u);
    std::map<std::string, std::string> first(records[0].begin(),
                                             records[0].end());
    EXPECT_EQ(first["field0"], "v50-0");
  }
}

TEST_P(StoreConformanceTest, EndToEndYcsbWorkload) {
  Open(2);
  Properties props;
  ASSERT_TRUE(ycsb::CoreWorkload::Table1Preset("RW", &props).ok());
  props.Set("recordcount", "300");
  ycsb::CoreWorkload workload(props);
  ASSERT_TRUE(ycsb::LoadDatabase(db_.get(), &workload, 2).ok());

  ycsb::RunConfig config;
  config.threads = 4;
  config.operation_count = 2000;
  ycsb::RunResult result;
  ASSERT_TRUE(ycsb::RunWorkload(db_.get(), &workload, config, &result).ok());
  EXPECT_EQ(result.measurements.error_count(ycsb::OpType::kRead), 0u);
  EXPECT_EQ(result.measurements.error_count(ycsb::OpType::kInsert), 0u);
  EXPECT_GT(result.throughput_ops_sec, 0);
}

INSTANTIATE_TEST_SUITE_P(AllStores, StoreConformanceTest,
                         ::testing::ValuesIn(StoreNames()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

TEST(StoreFactoryTest, RejectsUnknownName) {
  StoreOptions options;
  options.base_dir = "/tmp";
  std::unique_ptr<ycsb::DB> db;
  EXPECT_TRUE(CreateStore("mongodb", options, &db).IsInvalidArgument());
}

TEST(StoreFactoryTest, ScanSupportMatchesPaper) {
  EXPECT_TRUE(StoreSupportsScans("cassandra"));
  EXPECT_TRUE(StoreSupportsScans("hbase"));
  EXPECT_FALSE(StoreSupportsScans("voldemort"));
  EXPECT_TRUE(StoreSupportsScans("redis"));
  EXPECT_TRUE(StoreSupportsScans("voltdb"));
  EXPECT_TRUE(StoreSupportsScans("mysql"));
}

TEST(HBaseStoreTest, CellKeyRoundTrip) {
  std::string cell_key = HBaseStore::CellKey("row1", "field2");
  Slice row, qualifier;
  ASSERT_TRUE(HBaseStore::ParseCellKey(Slice(cell_key), &row, &qualifier));
  EXPECT_EQ(row.ToString(), "row1");
  EXPECT_EQ(qualifier.ToString(), "field2");
}

// --- kCellBatch boundary regressions ---------------------------------------
// The store assembles rows from the LSM engine in fixed 256-cell scan
// pages; these pin the exact-page-edge behavior of Read/Delete/ScanKeyed.

TEST(HBaseStoreTest, WideRowSurvivesCellBatchBoundary) {
  ScopedTempDir dir("hbase-wide");
  StoreOptions options;
  options.base_dir = dir.path();
  options.num_nodes = 1;
  options.regions_per_server = 1;
  std::unique_ptr<HBaseStore> store;
  ASSERT_TRUE(HBaseStore::Open(options, &store).ok());

  // A row wider than one engine scan page (kCellBatch = 256 cells).
  ycsb::Record record;
  for (int i = 0; i < 300; i++) {
    char q[16];
    snprintf(q, sizeof(q), "f%03d", i);
    record.emplace_back(q, "v" + std::to_string(i));
  }
  ASSERT_TRUE(store->Insert("t", "wide-row", record).ok());

  // Read must page past the first 256 cells instead of truncating.
  ycsb::Record got;
  ASSERT_TRUE(store->Read("t", "wide-row", &got).ok());
  ASSERT_EQ(got.size(), record.size());
  std::map<std::string, std::string> by_field(got.begin(), got.end());
  for (const auto& [field, value] : record) {
    EXPECT_EQ(by_field[field], value) << field;
  }

  // Delete must remove every cell; deleting only the first page leaves
  // the tail behind and resurrects the row.
  ASSERT_TRUE(store->Delete("t", "wide-row").ok());
  EXPECT_TRUE(store->Read("t", "wide-row", &got).IsNotFound());
}

TEST(HBaseStoreTest, ScanResumesExactlyAtCellBatchEdge) {
  ScopedTempDir dir("hbase-edge");
  StoreOptions options;
  options.base_dir = dir.path();
  options.num_nodes = 1;
  options.regions_per_server = 1;
  std::unique_ptr<HBaseStore> store;
  ASSERT_TRUE(HBaseStore::Open(options, &store).ok());

  // 51 filler rows x 5 cells = 255 cells, so the edge row's first cell is
  // cell 256 — the last cell of scan page one — and its second cell (a
  // qualifier extending the first with a NUL byte, the smallest possible
  // successor key) opens page two. The old resume cursor (last key +
  // '\x01') skipped exactly such cells, truncating the row.
  for (int i = 0; i < 51; i++) {
    char key[16];
    snprintf(key, sizeof(key), "a%02d", i);
    ASSERT_TRUE(store->Insert("t", key, MakeRecord(i)).ok());
  }
  ycsb::Record edge;
  edge.emplace_back("q", "v-first");
  edge.emplace_back(std::string("q\0x", 3), "v-second");
  ASSERT_TRUE(store->Insert("t", "b-edge", edge).ok());

  std::vector<ycsb::KeyedRecord> out;
  ASSERT_TRUE(store->ScanKeyed("t", "a", 60, &out).ok());
  ASSERT_EQ(out.size(), 52u);
  // Filler rows arrive whole and exactly once (no double-count at the
  // page edge)...
  for (int i = 0; i < 51; i++) {
    EXPECT_EQ(out[static_cast<size_t>(i)].record.size(), 5u)
        << out[static_cast<size_t>(i)].key;
  }
  // ...and the edge row keeps both cells.
  EXPECT_EQ(out.back().key, "b-edge");
  EXPECT_EQ(out.back().record.size(), 2u);
}

TEST(HBaseStoreTest, PerCellStorageInflatesDisk) {
  ScopedTempDir dir_h("hbase-disk");
  ScopedTempDir dir_c("cassandra-disk");
  StoreOptions options;
  options.num_nodes = 1;
  options.memtable_bytes = 256 * 1024;
  // Measure the logical KeyValue framing with plain v1 blocks: the v2
  // format's prefix compression squeezes the repeated `row \0 f :
  // qualifier` cell keys back out, which is exactly how real HBase's
  // DataBlockEncoding (FAST_DIFF) mitigates the Figure-17 inflation.
  options.lsm_format_version = 1;

  std::unique_ptr<ycsb::DB> hbase, cassandra;
  options.base_dir = dir_h.path();
  ASSERT_TRUE(CreateStore("hbase", options, &hbase).ok());
  options.base_dir = dir_c.path();
  ASSERT_TRUE(CreateStore("cassandra", options, &cassandra).ok());

  Properties props;
  props.Set("recordcount", "3000");
  ycsb::CoreWorkload workload(props);
  ASSERT_TRUE(ycsb::LoadDatabase(hbase.get(), &workload, 2).ok());
  Properties props2;
  props2.Set("recordcount", "3000");
  ycsb::CoreWorkload workload2(props2);
  ASSERT_TRUE(ycsb::LoadDatabase(cassandra.get(), &workload2, 2).ok());

  uint64_t hbase_bytes = 0, cassandra_bytes = 0;
  ASSERT_TRUE(hbase->DiskUsage(&hbase_bytes).ok());
  ASSERT_TRUE(cassandra->DiskUsage(&cassandra_bytes).ok());
  // Figure 17's shape: per-cell HBase uses clearly more disk than the
  // row-per-value Cassandra layout for identical data.
  EXPECT_GT(hbase_bytes, cassandra_bytes);
}

TEST(MySQLStoreTest, LimitScanAblationReturnsPromptly) {
  ScopedTempDir dir("mysql-scan");
  StoreOptions options;
  options.base_dir = dir.path();
  options.num_nodes = 2;
  options.mysql_limit_scans = true;
  std::unique_ptr<ycsb::DB> db;
  ASSERT_TRUE(CreateStore("mysql", options, &db).ok());
  for (int i = 0; i < 500; i++) {
    char key[32];
    snprintf(key, sizeof(key), "user%021d", i);
    ASSERT_TRUE(db->Insert("t", key, MakeRecord(i)).ok());
  }
  std::vector<ycsb::Record> records;
  ASSERT_TRUE(db->Scan("t", "user", 10, &records).ok());
  EXPECT_LE(records.size(), 10u);
}

TEST(RedisStoreTest, NodeStatsShowImbalance) {
  StoreOptions options;
  options.num_nodes = 12;
  std::unique_ptr<RedisStore> store;
  ASSERT_TRUE(RedisStore::Open(options, &store).ok());
  for (int i = 0; i < 24000; i++) {
    char key[32];
    snprintf(key, sizeof(key), "user%021d", i);
    ASSERT_TRUE(store->Insert("t", key, MakeRecord(i)).ok());
  }
  size_t min_keys = SIZE_MAX, max_keys = 0;
  for (int node = 0; node < 12; node++) {
    size_t keys = store->NodeStats(node).num_keys;
    min_keys = std::min(min_keys, keys);
    max_keys = std::max(max_keys, keys);
  }
  // The Jedis ring leaves visible skew across instances.
  EXPECT_GT(static_cast<double>(max_keys) / static_cast<double>(min_keys),
            1.15);
}

// Regression test for the cross-shard scan: fanning a scan out to every
// node and k-way merging the runs must return exactly what a single node
// holding all the data would — same keys, same order, no over-fetch past
// `count` and no shard-boundary gaps.
TEST(RedisStoreTest, CrossShardScanMatchesSingleNode) {
  StoreOptions sharded_options;
  sharded_options.num_nodes = 5;
  std::unique_ptr<RedisStore> sharded;
  ASSERT_TRUE(RedisStore::Open(sharded_options, &sharded).ok());
  StoreOptions single_options;
  single_options.num_nodes = 1;
  std::unique_ptr<RedisStore> single;
  ASSERT_TRUE(RedisStore::Open(single_options, &single).ok());

  std::vector<std::string> keys;
  for (int i = 0; i < 400; i++) {
    char key[32];
    snprintf(key, sizeof(key), "user%08d", i * 3);
    keys.push_back(key);
    ASSERT_TRUE(sharded->Insert("t", key, MakeRecord(i)).ok());
    ASSERT_TRUE(single->Insert("t", key, MakeRecord(i)).ok());
  }

  Random rng(97);
  for (int i = 0; i < 50; i++) {
    const std::string& start = keys[rng.Uniform(keys.size())];
    int count = 1 + static_cast<int>(rng.Uniform(60));
    std::vector<ycsb::KeyedRecord> got, expected;
    ASSERT_TRUE(sharded->ScanKeyed("t", start, count, &got).ok());
    ASSERT_TRUE(single->ScanKeyed("t", start, count, &expected).ok());
    ASSERT_EQ(got.size(), expected.size()) << "start=" << start;
    for (size_t j = 0; j < got.size(); j++) {
      EXPECT_EQ(got[j].key, expected[j].key);
      EXPECT_EQ(got[j].record, expected[j].record);
    }
  }
}

}  // namespace
}  // namespace apmbench::stores

namespace apmbench::stores {
namespace {

TEST(CassandraReplicationTest, WritesLandOnAllReplicas) {
  ScopedTempDir dir("cass-rf");
  StoreOptions options;
  options.base_dir = dir.path();
  options.num_nodes = 4;
  options.replication_factor = 3;
  std::unique_ptr<CassandraStore> store;
  ASSERT_TRUE(CassandraStore::Open(options, &store).ok());

  const int n = 300;
  for (int i = 0; i < n; i++) {
    char key[32];
    snprintf(key, sizeof(key), "user%021d", i);
    ASSERT_TRUE(store->Insert("t", key, MakeRecord(i)).ok());
  }
  // CRUD still correct through the replicated path.
  ycsb::Record record;
  ASSERT_TRUE(store->Read("t", "user000000000000000000005", &record).ok());
  ASSERT_TRUE(store->Delete("t", "user000000000000000000005").ok());
  EXPECT_TRUE(
      store->Read("t", "user000000000000000000005", &record).IsNotFound());
  // Scans deduplicate replica copies.
  std::vector<ycsb::Record> records;
  ASSERT_TRUE(store->Scan("t", "user", 50, &records).ok());
  EXPECT_EQ(records.size(), 50u);
}

TEST(CassandraReplicationTest, DiskUsageScalesWithRf) {
  auto load = [](int rf, uint64_t* bytes) {
    ScopedTempDir dir("cass-rf-disk");
    StoreOptions options;
    options.base_dir = dir.path();
    options.num_nodes = 3;
    options.replication_factor = rf;
    std::unique_ptr<CassandraStore> store;
    ASSERT_TRUE(CassandraStore::Open(options, &store).ok());
    for (int i = 0; i < 2000; i++) {
      char key[32];
      snprintf(key, sizeof(key), "user%021d", i);
      ASSERT_TRUE(store->Insert("t", key, MakeRecord(i)).ok());
    }
    ASSERT_TRUE(store->DiskUsage(bytes).ok());
  };
  uint64_t rf1 = 0, rf3 = 0;
  load(1, &rf1);
  load(3, &rf3);
  EXPECT_GT(rf3, rf1 * 2);
}

}  // namespace
}  // namespace apmbench::stores

namespace apmbench::stores {
namespace {

/// Model-based differential testing: a random CRUD+scan sequence is
/// applied simultaneously to the store under test and to the trivially
/// correct reference DB; every read and scan must agree. This is the
/// strongest conformance check in the suite — it exercises routing,
/// engine flush/compaction boundaries, per-system record codecs, and
/// scan merge logic under one oracle.
class StoreDifferentialTest : public ::testing::TestWithParam<std::string> {};

TEST_P(StoreDifferentialTest, MatchesReferenceModel) {
  const std::string name = GetParam();
  testutil::ScopedTempDir dir("diff-" + name);
  StoreOptions options;
  options.base_dir = dir.path();
  options.num_nodes = 3;
  options.memtable_bytes = 32 * 1024;  // force flush/compaction churn
  options.buffer_pool_bytes = 512 * 1024;
  std::unique_ptr<ycsb::DB> db;
  ASSERT_TRUE(CreateStore(name, options, &db).ok());
  testutil::BasicDB model;

  const bool scans = StoreSupportsScans(name);
  // MySQL's faithful scan only covers one shard; the oracle comparison
  // below accounts for that by checking prefix-consistency instead of
  // equality for it.
  Random rng(2024);
  const std::string table = "usertable";
  for (int i = 0; i < 6000; i++) {
    char key[32];
    snprintf(key, sizeof(key), "user%021llu",
             static_cast<unsigned long long>(rng.Uniform(600)));
    int op = static_cast<int>(rng.Uniform(20));
    if (op < 10) {
      ycsb::Record record = MakeRecord(i);
      ASSERT_TRUE(db->Insert(table, key, record).ok()) << name;
      ASSERT_TRUE(model.Insert(table, key, record).ok());
    } else if (op < 13) {
      ycsb::Record record = MakeRecord(i + 1000000);
      ASSERT_TRUE(db->Update(table, key, record).ok());
      ASSERT_TRUE(model.Update(table, key, record).ok());
    } else if (op < 15) {
      // Delete acknowledgements are system-specific: Cassandra writes a
      // tombstone blindly and reports success even for absent keys, the
      // B+tree stores report NotFound. Only the resulting state must
      // agree, which the read/scan comparisons below enforce.
      Status store_status = db->Delete(table, key);
      ASSERT_TRUE(store_status.ok() || store_status.IsNotFound())
          << name << " " << key << ": " << store_status.ToString();
      Status model_status = model.Delete(table, key);
      (void)model_status;
    } else if (op < 18) {
      ycsb::Record got, expected;
      Status store_status = db->Read(table, key, &got);
      Status model_status = model.Read(table, key, &expected);
      ASSERT_EQ(store_status.IsNotFound(), model_status.IsNotFound())
          << name << " " << key << " op " << i;
      if (store_status.ok()) {
        std::map<std::string, std::string> got_map(got.begin(), got.end());
        std::map<std::string, std::string> expected_map(expected.begin(),
                                                        expected.end());
        ASSERT_EQ(got_map, expected_map) << name << " " << key;
      }
    } else if (scans) {
      int count = 1 + static_cast<int>(rng.Uniform(12));
      std::vector<ycsb::KeyedRecord> got, expected;
      ASSERT_TRUE(db->ScanKeyed(table, key, count, &got).ok());
      ASSERT_TRUE(model.ScanKeyed(table, key, count, &expected).ok());
      if (name == "mysql") {
        // One-shard scan: result must be an ordered subsequence of the
        // model's full-range scan ordering, with correct records.
        for (const auto& entry : got) {
          ycsb::Record expected_record;
          ASSERT_TRUE(model.Read(table, Slice(entry.key), &expected_record)
                          .ok())
              << entry.key;
          std::map<std::string, std::string> a(entry.record.begin(),
                                               entry.record.end());
          std::map<std::string, std::string> b(expected_record.begin(),
                                               expected_record.end());
          ASSERT_EQ(a, b);
        }
        for (size_t k = 1; k < got.size(); k++) {
          ASSERT_LT(got[k - 1].key, got[k].key);
        }
      } else {
        ASSERT_EQ(got.size(), expected.size()) << name << " scan @" << key;
        for (size_t k = 0; k < got.size(); k++) {
          ASSERT_EQ(got[k].key, expected[k].key) << name << " scan @" << key;
          std::map<std::string, std::string> a(got[k].record.begin(),
                                               got[k].record.end());
          std::map<std::string, std::string> b(expected[k].record.begin(),
                                               expected[k].record.end());
          ASSERT_EQ(a, b) << name << " scan @" << key;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllStores, StoreDifferentialTest,
                         ::testing::ValuesIn(StoreNames()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

}  // namespace
}  // namespace apmbench::stores

namespace apmbench::stores {
namespace {

TEST(ScrubTest, LsmBackedStoresVerifyClean) {
  ScopedTempDir dir("scrub");
  StoreOptions options;
  options.base_dir = dir.path();
  options.num_nodes = 2;
  options.memtable_bytes = 32 * 1024;
  std::unique_ptr<CassandraStore> store;
  ASSERT_TRUE(CassandraStore::Open(options, &store).ok());
  for (int i = 0; i < 2000; i++) {
    char key[32];
    snprintf(key, sizeof(key), "user%021d", i);
    ASSERT_TRUE(store->Insert("t", key, MakeRecord(i)).ok());
  }
  EXPECT_TRUE(store->VerifyIntegrity().ok());
}

}  // namespace
}  // namespace apmbench::stores
