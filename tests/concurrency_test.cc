// Concurrency tests for the four engines and the shared group-commit
// machinery: model-checked N-writers + M-readers/scanners workloads per
// engine, plus deterministic group-commit batching tests (queued writers
// must share one WAL/log sync). Run under TSan/ASan via
// -DAPMBENCH_SANITIZE=thread|address (see docs/concurrency.md).

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "btree/btree.h"
#include "common/env.h"
#include "common/fanout.h"
#include "common/fault_env.h"
#include "common/group_commit.h"
#include "common/random.h"
#include "gtest/gtest.h"
#include "hashkv/hashkv.h"
#include "lsm/db.h"
#include "stores/factory.h"
#include "stores/store_options.h"
#include "tests/test_util.h"
#include "volt/volt.h"

namespace apmbench {
namespace {

// --- Gated-sync fixtures -------------------------------------------------
//
// A WritableFile / Env pair whose Sync blocks while a gate is closed.
// Holding one writer's fsync open while more writers enqueue makes
// group-commit batching deterministic even on a single-core host.

class SyncGate {
 public:
  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }

  void Open() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = false;
    }
    cv_.notify_all();
  }

  /// Blocks the caller while the gate is closed.
  void Pass() {
    std::unique_lock<std::mutex> lock(mu_);
    blocked_++;
    cv_.wait(lock, [&] { return !closed_; });
    blocked_--;
  }

  int blocked() {
    std::lock_guard<std::mutex> lock(mu_);
    return blocked_;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool closed_ = false;
  int blocked_ = 0;
};

/// In-memory WritableFile that counts syncs and blocks them on `gate`.
class GatedMemFile final : public WritableFile {
 public:
  explicit GatedMemFile(SyncGate* gate) : gate_(gate) {}

  Status Append(const Slice& data) override {
    if (fail_appends_.load()) return Status::IOError("injected append fault");
    std::lock_guard<std::mutex> lock(mu_);
    contents_ += data.ToString();
    return Status::OK();
  }
  Status Flush() override { return Status::OK(); }
  Status Sync() override {
    gate_->Pass();
    syncs_.fetch_add(1);
    return Status::OK();
  }
  Status Close() override { return Status::OK(); }
  uint64_t Size() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return contents_.size();
  }

  std::string contents() const {
    std::lock_guard<std::mutex> lock(mu_);
    return contents_;
  }
  uint64_t syncs() const { return syncs_.load(); }
  void set_fail_appends(bool fail) { fail_appends_.store(fail); }

 private:
  SyncGate* gate_;
  mutable std::mutex mu_;
  std::string contents_;
  std::atomic<uint64_t> syncs_{0};
  std::atomic<bool> fail_appends_{false};
};

/// Env wrapper that routes WritableFile syncs through a gate. Composes
/// with FaultInjectionEnv (which is final) rather than inheriting from
/// it, so tests can stack gating on top of the fault env's op counters.
class GatedSyncEnv final : public Env {
 public:
  explicit GatedSyncEnv(Env* base) : base_(base) {}

  SyncGate* gate() { return &gate_; }

  Status NewWritableFile(const std::string& path,
                         std::unique_ptr<WritableFile>* file) override {
    APM_RETURN_IF_ERROR(base_->NewWritableFile(path, file));
    *file = std::make_unique<GatedFile>(&gate_, std::move(*file));
    return Status::OK();
  }
  Status NewAppendableFile(const std::string& path,
                           std::unique_ptr<WritableFile>* file) override {
    APM_RETURN_IF_ERROR(base_->NewAppendableFile(path, file));
    *file = std::make_unique<GatedFile>(&gate_, std::move(*file));
    return Status::OK();
  }
  Status NewRandomAccessFile(
      const std::string& path,
      std::unique_ptr<RandomAccessFile>* file) override {
    return base_->NewRandomAccessFile(path, file);
  }
  Status NewRandomRWFile(const std::string& path,
                         std::unique_ptr<RandomRWFile>* file) override {
    return base_->NewRandomRWFile(path, file);
  }
  Status ReadFileToString(const std::string& path,
                          std::string* data) override {
    return base_->ReadFileToString(path, data);
  }
  Status WriteStringToFile(const std::string& path,
                           const Slice& data) override {
    return base_->WriteStringToFile(path, data);
  }
  bool FileExists(const std::string& path) override {
    return base_->FileExists(path);
  }
  Status GetFileSize(const std::string& path, uint64_t* size) override {
    return base_->GetFileSize(path, size);
  }
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* names) override {
    return base_->GetChildren(dir, names);
  }
  Status CreateDirIfMissing(const std::string& dir) override {
    return base_->CreateDirIfMissing(dir);
  }
  Status RemoveFile(const std::string& path) override {
    return base_->RemoveFile(path);
  }
  Status RenameFile(const std::string& from, const std::string& to) override {
    return base_->RenameFile(from, to);
  }
  Status SyncDir(const std::string& dir) override {
    return base_->SyncDir(dir);
  }
  Status RemoveDirRecursively(const std::string& dir) override {
    return base_->RemoveDirRecursively(dir);
  }
  Status GetDirectorySize(const std::string& dir, uint64_t* bytes) override {
    return base_->GetDirectorySize(dir, bytes);
  }

 private:
  class GatedFile final : public WritableFile {
   public:
    GatedFile(SyncGate* gate, std::unique_ptr<WritableFile> base)
        : gate_(gate), base_(std::move(base)) {}
    Status Append(const Slice& data) override { return base_->Append(data); }
    Status Flush() override { return base_->Flush(); }
    Status Sync() override {
      gate_->Pass();
      return base_->Sync();
    }
    Status Close() override { return base_->Close(); }
    uint64_t Size() const override { return base_->Size(); }

   private:
    SyncGate* gate_;
    std::unique_ptr<WritableFile> base_;
  };

  Env* base_;
  SyncGate gate_;
};

/// Polls `cond` (with a yield) until it holds or ~5s pass.
void WaitFor(const std::function<bool()>& cond) {
  for (int i = 0; i < 50000 && !cond(); i++) {
    std::this_thread::yield();
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  ASSERT_TRUE(cond());
}

// --- GroupCommitLog ------------------------------------------------------

TEST(GroupCommitLogTest, AppendsRecordsInOrder) {
  SyncGate gate;
  auto owned = std::make_unique<GatedMemFile>(&gate);
  GatedMemFile* file = owned.get();
  GroupCommitLog log(std::move(owned));

  ASSERT_TRUE(log.Append("aaa", false).ok());
  ASSERT_TRUE(log.Append("bb", true).ok());
  EXPECT_EQ(file->contents(), "aaabb");
  EXPECT_EQ(log.Size(), 5u);
  GroupCommitLog::Stats stats = log.GetStats();
  EXPECT_EQ(stats.appends, 2u);
  EXPECT_EQ(stats.groups, 2u);
  EXPECT_EQ(stats.synced_groups, 1u);
  EXPECT_TRUE(log.Close().ok());
}

// The core group-commit guarantee: writers that enqueue while the leader
// is stuck in an fsync are all written — and synced — by the next
// leader's single I/O round.
TEST(GroupCommitLogTest, QueuedAppendsShareOneSync) {
  SyncGate gate;
  auto owned = std::make_unique<GatedMemFile>(&gate);
  GatedMemFile* file = owned.get();
  GroupCommitLog log(std::move(owned));

  gate.Close();
  std::thread leader([&] { ASSERT_TRUE(log.Append("a", true).ok()); });
  // The leader has appended and is blocked in Sync.
  WaitFor([&] { return gate.blocked() == 1; });

  std::thread follower_b([&] { ASSERT_TRUE(log.Append("b", true).ok()); });
  std::thread follower_c([&] { ASSERT_TRUE(log.Append("c", true).ok()); });
  // Both followers have staged their records (appends counts enqueues;
  // the log's mutex is free while the leader syncs).
  WaitFor([&] { return log.GetStats().appends == 3; });

  gate.Open();
  leader.join();
  follower_b.join();
  follower_c.join();

  GroupCommitLog::Stats stats = log.GetStats();
  EXPECT_EQ(stats.appends, 3u);
  EXPECT_EQ(stats.groups, 2u);         // leader's round + one shared round
  EXPECT_EQ(stats.synced_groups, 2u);  // three sync appends, two fsyncs
  EXPECT_EQ(file->syncs(), 2u);
  EXPECT_EQ(file->contents(), "abc");
  EXPECT_TRUE(log.Close().ok());
}

TEST(GroupCommitLogTest, AppendFailureIsSticky) {
  SyncGate gate;
  auto owned = std::make_unique<GatedMemFile>(&gate);
  GatedMemFile* file = owned.get();
  GroupCommitLog log(std::move(owned));

  file->set_fail_appends(true);
  EXPECT_FALSE(log.Append("a", false).ok());
  file->set_fail_appends(false);
  // A failed group poisons the log: later appends must not silently
  // succeed past a hole in the record stream.
  EXPECT_FALSE(log.Append("b", false).ok());
  EXPECT_EQ(file->contents(), "");
}

// --- LSM writer queue ----------------------------------------------------

// Writers queued behind a leader blocked in the WAL fsync must be merged
// into one group: one WAL append, one fsync, counted by both the DB's
// writer-queue stats and the fault env's sync counter.
TEST(LsmConcurrencyTest, QueuedWritersShareOneWalSync) {
  testutil::ScopedTempDir dir("conc-lsm-gc");
  FaultInjectionEnv fault(Env::Default());
  GatedSyncEnv env(&fault);

  lsm::Options options;
  options.dir = dir.path();
  options.env = &env;
  options.sync_writes = true;
  std::unique_ptr<lsm::DB> db;
  ASSERT_TRUE(lsm::DB::Open(options, &db).ok());

  const uint64_t syncs_before = fault.OpCount(FaultOp::kSync);
  env.gate()->Close();
  std::thread leader([&] { ASSERT_TRUE(db->Put("k1", "v1").ok()); });
  WaitFor([&] { return env.gate()->blocked() == 1; });

  std::thread follower_b([&] { ASSERT_TRUE(db->Put("k2", "v2").ok()); });
  std::thread follower_c([&] { ASSERT_TRUE(db->Put("k3", "v3").ok()); });
  // pending_writers includes the in-flight leader; wait for both
  // followers to be queued behind it.
  WaitFor([&] { return db->GetStats().pending_writers >= 3; });

  env.gate()->Open();
  leader.join();
  follower_b.join();
  follower_c.join();

  lsm::DB::Stats stats = db->GetStats();
  EXPECT_EQ(stats.grouped_writes, 3u);
  EXPECT_EQ(stats.write_groups, 2u);
  EXPECT_EQ(fault.OpCount(FaultOp::kSync) - syncs_before, 2u);

  for (const char* key : {"k1", "k2", "k3"}) {
    std::string value;
    EXPECT_TRUE(db->Get(lsm::ReadOptions(), key, &value).ok()) << key;
  }
}

// Deterministic check of the parallel group apply: with a sharded
// memtable, followers that queue behind a leader blocked in the WAL
// fsync form a multi-writer group, and that group's memtable apply runs
// through the shard-claim protocol (counted by parallel_apply_groups).
TEST(LsmConcurrencyTest, QueuedWritersApplyShardsInParallel) {
  testutil::ScopedTempDir dir("conc-lsm-shards");
  GatedSyncEnv env(Env::Default());

  lsm::Options options;
  options.dir = dir.path();
  options.env = &env;
  options.sync_writes = true;
  options.memtable_shards = 8;
  std::unique_ptr<lsm::DB> db;
  ASSERT_TRUE(lsm::DB::Open(options, &db).ok());

  env.gate()->Close();
  std::thread leader([&] { ASSERT_TRUE(db->Put("k1", "v1").ok()); });
  WaitFor([&] { return env.gate()->blocked() == 1; });

  // Two followers queue multi-key batches whose rows hash to different
  // shards; the next leader merges them into one group and every group
  // member helps apply it shard-by-shard.
  auto batch_writer = [&](int id) {
    lsm::WriteBatch batch;
    for (int i = 0; i < 8; i++) {
      batch.Put("w" + std::to_string(id) + ".row" + std::to_string(i),
                "v" + std::to_string(id));
    }
    ASSERT_TRUE(db->Write(batch).ok());
  };
  std::thread follower_b([&] { batch_writer(2); });
  std::thread follower_c([&] { batch_writer(3); });
  WaitFor([&] { return db->GetStats().pending_writers >= 3; });

  env.gate()->Open();
  leader.join();
  follower_b.join();
  follower_c.join();

  lsm::DB::Stats stats = db->GetStats();
  EXPECT_EQ(stats.write_groups, 2u);  // leader's solo round + shared round
  // The solo round is serial (one writer); the shared round has two
  // writers and eight shards, so it must take the parallel path.
  EXPECT_EQ(stats.parallel_apply_groups, 1u);

  std::string value;
  ASSERT_TRUE(db->Get(lsm::ReadOptions(), "k1", &value).ok());
  for (int id : {2, 3}) {
    for (int i = 0; i < 8; i++) {
      std::string key = "w" + std::to_string(id) + ".row" + std::to_string(i);
      ASSERT_TRUE(db->Get(lsm::ReadOptions(), key, &value).ok()) << key;
      EXPECT_EQ(value, "v" + std::to_string(id));
    }
  }
}

// --- Cross-engine model checks -------------------------------------------
//
// Each engine runs kWriters writer threads over disjoint key ranges while
// readers and scanners run concurrently. Values are a pure function of
// the key, so every read or scan result is checkable mid-flight: a key is
// either absent or carries exactly its expected value, and scans must
// return sorted, well-formed records. After the writers join, the full
// key set is verified against the model.

constexpr int kWriters = 4;
constexpr int kReaders = 2;
constexpr int kScanners = 1;
constexpr int kKeysPerWriter = 300;

std::string ModelKey(int writer, int i) {
  char buf[32];
  snprintf(buf, sizeof(buf), "user%02d.%06d", writer, i);
  return buf;
}

std::string ModelValue(const std::string& key) { return "v:" + key; }

struct EngineOps {
  std::function<Status(const std::string&, const std::string&)> put;
  std::function<Status(const std::string&, std::string*)> get;
  std::function<Status(const std::string&, int,
                       std::vector<std::pair<std::string, std::string>>*)>
      scan;
};

void RunModelCheck(const EngineOps& ops) {
  std::atomic<int> writers_left{kWriters};
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;

  for (int w = 0; w < kWriters; w++) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < kKeysPerWriter; i++) {
        std::string key = ModelKey(w, i);
        Status s = ops.put(key, ModelValue(key));
        if (!s.ok()) {
          ADD_FAILURE() << "put " << key << ": " << s.ToString();
          failed.store(true);
          break;
        }
      }
      writers_left.fetch_sub(1);
    });
  }

  for (int r = 0; r < kReaders; r++) {
    threads.emplace_back([&, r] {
      Random rng(100 + r);
      while (writers_left.load() > 0 && !failed.load()) {
        std::string key =
            ModelKey(static_cast<int>(rng.Uniform(kWriters)),
                     static_cast<int>(rng.Uniform(kKeysPerWriter)));
        std::string value;
        Status s = ops.get(key, &value);
        if (s.ok() && value != ModelValue(key)) {
          ADD_FAILURE() << "get " << key << " returned '" << value << "'";
          failed.store(true);
        } else if (!s.ok() && !s.IsNotFound()) {
          ADD_FAILURE() << "get " << key << ": " << s.ToString();
          failed.store(true);
        }
      }
    });
  }

  for (int sc = 0; sc < kScanners; sc++) {
    threads.emplace_back([&, sc] {
      Random rng(200 + sc);
      while (writers_left.load() > 0 && !failed.load()) {
        std::string start =
            ModelKey(static_cast<int>(rng.Uniform(kWriters)),
                     static_cast<int>(rng.Uniform(kKeysPerWriter)));
        std::vector<std::pair<std::string, std::string>> out;
        Status s = ops.scan(start, 20, &out);
        if (!s.ok()) {
          if (s.IsNotSupported()) return;
          ADD_FAILURE() << "scan " << start << ": " << s.ToString();
          failed.store(true);
          break;
        }
        for (size_t i = 0; i < out.size(); i++) {
          if (i > 0 && out[i - 1].first >= out[i].first) {
            ADD_FAILURE() << "scan out of order at " << out[i].first;
            failed.store(true);
          }
          if (out[i].second != ModelValue(out[i].first)) {
            ADD_FAILURE() << "scan saw torn value for " << out[i].first;
            failed.store(true);
          }
        }
      }
    });
  }

  for (auto& thread : threads) thread.join();

  // Final state must match the model exactly.
  for (int w = 0; w < kWriters; w++) {
    for (int i = 0; i < kKeysPerWriter; i++) {
      std::string key = ModelKey(w, i);
      std::string value;
      Status s = ops.get(key, &value);
      ASSERT_TRUE(s.ok()) << key << ": " << s.ToString();
      ASSERT_EQ(value, ModelValue(key));
    }
  }
}

TEST(LsmConcurrencyTest, WritersReadersScannersModelCheck) {
  testutil::ScopedTempDir dir("conc-lsm");
  lsm::Options options;
  options.dir = dir.path();
  options.memtable_bytes = 16 * 1024;  // force flushes mid-run
  std::unique_ptr<lsm::DB> db;
  ASSERT_TRUE(lsm::DB::Open(options, &db).ok());

  EngineOps ops;
  ops.put = [&](const std::string& k, const std::string& v) {
    return db->Put(k, v);
  };
  ops.get = [&](const std::string& k, std::string* v) {
    return db->Get(lsm::ReadOptions(), k, v);
  };
  ops.scan = [&](const std::string& start, int count, auto* out) {
    return db->Scan(lsm::ReadOptions(), start, count, out);
  };
  RunModelCheck(ops);

  lsm::DB::Stats stats = db->GetStats();
  EXPECT_EQ(stats.grouped_writes, uint64_t{kWriters} * kKeysPerWriter);
  EXPECT_GE(stats.write_groups, 1u);
}

// Sharded-memtable atomicity model check: each writer repeatedly commits
// an 8-row batch whose rows hash to different shards, all rows carrying
// the batch's version number. Because a group's sequence is published
// only after every shard finishes applying, no reader — point Get or
// snapshot scan — may ever observe rows from the same batch at different
// versions, even while the parallel shard-claim apply and memtable
// rotation race underneath.
TEST(LsmConcurrencyTest, ShardedBatchAtomicityUnderSnapshots) {
  testutil::ScopedTempDir dir("conc-lsm-atomic");
  lsm::Options options;
  options.dir = dir.path();
  options.memtable_bytes = 32 * 1024;  // rotate memtables mid-run
  options.memtable_shards = 8;
  std::unique_ptr<lsm::DB> db;
  ASSERT_TRUE(lsm::DB::Open(options, &db).ok());

  constexpr int kBatchWriters = 4;
  constexpr int kRowsPerBatch = 8;
  constexpr int kVersions = 150;
  auto row_key = [](int writer, int row) {
    return "batch" + std::to_string(writer) + ".row" + std::to_string(row);
  };

  std::atomic<int> writers_left{kBatchWriters};
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int w = 0; w < kBatchWriters; w++) {
    threads.emplace_back([&, w] {
      for (int v = 1; v <= kVersions && !failed.load(); v++) {
        lsm::WriteBatch batch;
        for (int r = 0; r < kRowsPerBatch; r++) {
          batch.Put(row_key(w, r), std::to_string(v));
        }
        Status s = db->Write(batch);
        if (!s.ok()) {
          ADD_FAILURE() << "write: " << s.ToString();
          failed.store(true);
        }
      }
      writers_left.fetch_sub(1);
    });
  }

  // Snapshot scanners: one frozen view must show every row of a writer's
  // batch at one single version.
  for (int t = 0; t < 2; t++) {
    threads.emplace_back([&, t] {
      Random rng(static_cast<uint32_t>(7 + t));
      while (writers_left.load() > 0 && !failed.load()) {
        const int w = static_cast<int>(rng.Uniform(kBatchWriters));
        const std::string prefix = "batch" + std::to_string(w) + ".";
        auto iter = db->NewSnapshotIterator(lsm::ReadOptions());
        iter->Seek(prefix);
        std::string version;
        int rows = 0;
        while (iter->Valid() && iter->key().StartsWith(prefix)) {
          if (rows == 0) {
            version = iter->value().ToString();
          } else if (iter->value().ToString() != version) {
            ADD_FAILURE() << "torn batch for writer " << w << ": row "
                          << iter->key().ToString() << " at version "
                          << iter->value().ToString() << " vs " << version;
            failed.store(true);
            break;
          }
          rows++;
          iter->Next();
        }
        if (rows != 0 && rows != kRowsPerBatch && !failed.load()) {
          ADD_FAILURE() << "snapshot saw " << rows << " of " << kRowsPerBatch
                        << " rows for writer " << w;
          failed.store(true);
        }
      }
    });
  }

  // Point readers race the apply path on individual rows.
  threads.emplace_back([&] {
    Random rng(99);
    while (writers_left.load() > 0 && !failed.load()) {
      const int w = static_cast<int>(rng.Uniform(kBatchWriters));
      const int r = static_cast<int>(rng.Uniform(kRowsPerBatch));
      std::string value;
      Status s = db->Get(lsm::ReadOptions(), row_key(w, r), &value);
      if (!s.ok() && !s.IsNotFound()) {
        ADD_FAILURE() << "get: " << s.ToString();
        failed.store(true);
      }
    }
  });

  for (auto& thread : threads) thread.join();

  for (int w = 0; w < kBatchWriters; w++) {
    for (int r = 0; r < kRowsPerBatch; r++) {
      std::string value;
      ASSERT_TRUE(db->Get(lsm::ReadOptions(), row_key(w, r), &value).ok());
      EXPECT_EQ(value, std::to_string(kVersions));
    }
  }
}

TEST(BtreeConcurrencyTest, WritersReadersScannersModelCheck) {
  testutil::ScopedTempDir dir("conc-btree");
  btree::Options options;
  options.path = dir.path() + "/tree.db";
  options.binlog_path = dir.path() + "/binlog";
  options.buffer_pool_bytes = 256 * 1024;  // force pool eviction mid-run
  std::unique_ptr<btree::BTree> tree;
  ASSERT_TRUE(btree::BTree::Open(options, &tree).ok());

  EngineOps ops;
  ops.put = [&](const std::string& k, const std::string& v) {
    return tree->Put(k, v);
  };
  ops.get = [&](const std::string& k, std::string* v) {
    return tree->Get(k, v);
  };
  ops.scan = [&](const std::string& start, int count, auto* out) {
    return tree->Scan(start, count, out);
  };
  RunModelCheck(ops);

  btree::BTree::Stats stats = tree->GetStats();
  EXPECT_EQ(stats.binlog_appends, uint64_t{kWriters} * kKeysPerWriter);
  EXPECT_GE(stats.binlog_groups, 1u);
  EXPECT_LE(stats.binlog_groups, stats.binlog_appends);
}

TEST(HashKvConcurrencyTest, WritersReadersScannersModelCheck) {
  testutil::ScopedTempDir dir("conc-hashkv");
  hashkv::Options options;
  options.aof_path = dir.path() + "/kv.aof";
  options.initial_buckets = 4;  // force incremental rehash mid-run
  std::unique_ptr<hashkv::HashKV> kv;
  ASSERT_TRUE(hashkv::HashKV::Open(options, &kv).ok());

  EngineOps ops;
  ops.put = [&](const std::string& k, const std::string& v) {
    return kv->Set(k, v);
  };
  ops.get = [&](const std::string& k, std::string* v) {
    return kv->Get(k, v);
  };
  ops.scan = [&](const std::string& start, int count, auto* out) {
    return kv->Scan(start, count, out);
  };
  RunModelCheck(ops);

  hashkv::HashKV::Stats stats = kv->GetStats();
  EXPECT_EQ(stats.aof_appends, uint64_t{kWriters} * kKeysPerWriter);
  EXPECT_GE(stats.aof_groups, 1u);
  EXPECT_LE(stats.aof_groups, stats.aof_appends);
}

TEST(VoltConcurrencyTest, WritersReadersScannersModelCheck) {
  testutil::ScopedTempDir dir("conc-volt");
  volt::Options options;
  options.sites_per_host = 4;
  options.command_log_path = dir.path() + "/command.log";
  volt::VoltEngine engine(options);

  EngineOps ops;
  ops.put = [&](const std::string& k, const std::string& v) {
    return engine.Put(k, v);
  };
  ops.get = [&](const std::string& k, std::string* v) {
    return engine.Get(k, v);
  };
  ops.scan = [&](const std::string& start, int count, auto* out) {
    return engine.Scan(start, count, out);
  };
  RunModelCheck(ops);
}

// --- Fan-out executor ----------------------------------------------------

TEST(FanoutExecutorTest, RunsEveryTaskEvenWithNoWorkers) {
  FanoutExecutor fanout(0);  // caller-only execution
  std::atomic<int> ran{0};
  std::vector<FanoutExecutor::Task> tasks;
  for (int i = 0; i < 8; i++) {
    tasks.push_back([&ran]() {
      ran.fetch_add(1);
      return Status::OK();
    });
  }
  ASSERT_TRUE(fanout.RunAll(std::move(tasks)).ok());
  EXPECT_EQ(ran.load(), 8);
}

TEST(FanoutExecutorTest, ReturnsFirstFailureInTaskOrder) {
  FanoutExecutor fanout(3);
  std::vector<FanoutExecutor::Task> tasks;
  tasks.push_back([]() { return Status::OK(); });
  tasks.push_back([]() { return Status::Corruption("task 1 failed"); });
  tasks.push_back([]() { return Status::IOError("task 2 failed"); });
  Status s = fanout.RunAll(std::move(tasks));
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST(FanoutExecutorTest, ConcurrentBatchesFromManyCallers) {
  FanoutExecutor fanout(2);
  constexpr int kCallers = 6;
  constexpr int kRounds = 50;
  std::atomic<int> total{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; c++) {
    callers.emplace_back([&]() {
      for (int r = 0; r < kRounds; r++) {
        std::vector<FanoutExecutor::Task> tasks;
        for (int i = 0; i < 4; i++) {
          tasks.push_back([&total]() {
            total.fetch_add(1);
            return Status::OK();
          });
        }
        ASSERT_TRUE(fanout.RunAll(std::move(tasks)).ok());
      }
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(total.load(), kCallers * kRounds * 4);
}

// --- Concurrent cross-shard scans ---------------------------------------
//
// Every store whose ScanKeyed fans out to multiple nodes (Redis client
// sharding, Cassandra random partitioning, HBase region waves) runs the
// same check: over a static preloaded key set, concurrent scanners from
// many threads must each see the exact globally-ordered window, while
// the k-way merge and the fan-out executor are hammered in parallel.
class StoreFanoutScanTest : public ::testing::TestWithParam<std::string> {};

TEST_P(StoreFanoutScanTest, ConcurrentScansSeeOrderedWindows) {
  testutil::ScopedTempDir dir("fanout-" + GetParam());
  stores::StoreOptions options;
  options.base_dir = dir.path();
  options.num_nodes = 4;
  options.memtable_bytes = 64 * 1024;
  options.buffer_pool_bytes = 1 * 1024 * 1024;
  std::unique_ptr<ycsb::DB> db;
  ASSERT_TRUE(stores::CreateStore(GetParam(), options, &db).ok());

  constexpr int kKeys = 300;
  std::vector<std::string> keys;
  for (int i = 0; i < kKeys; i++) {
    char buf[16];
    snprintf(buf, sizeof(buf), "user%06d", i * 7);
    keys.push_back(buf);
    ycsb::Record record;
    record.emplace_back("field0", "value-" + std::to_string(i));
    ASSERT_TRUE(db->Insert("usertable", keys.back(), record).ok());
  }

  constexpr int kScanners = 4;
  constexpr int kScansPerThread = 40;
  std::vector<std::thread> scanners;
  for (int t = 0; t < kScanners; t++) {
    scanners.emplace_back([&, t]() {
      Random rng(static_cast<uint32_t>(100 + t));
      for (int i = 0; i < kScansPerThread; i++) {
        size_t from = rng.Uniform(kKeys);
        int count = 1 + static_cast<int>(rng.Uniform(40));
        std::vector<ycsb::KeyedRecord> got;
        Status s = db->ScanKeyed("usertable", keys[from], count, &got);
        ASSERT_TRUE(s.ok()) << s.ToString();
        size_t expect =
            std::min(static_cast<size_t>(count), keys.size() - from);
        ASSERT_EQ(got.size(), expect) << "start=" << keys[from];
        for (size_t j = 0; j < got.size(); j++) {
          EXPECT_EQ(got[j].key, keys[from + j]);
        }
      }
    });
  }
  for (auto& t : scanners) t.join();
}

INSTANTIATE_TEST_SUITE_P(Stores, StoreFanoutScanTest,
                         ::testing::Values("redis", "cassandra", "hbase"));

}  // namespace
}  // namespace apmbench
