#include "common/compression.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/random.h"
#include "lsm/db.h"
#include "tests/test_util.h"

namespace apmbench {
namespace {

std::string RoundTrip(const std::string& input, bool* ok) {
  std::string compressed, output;
  lz::Compress(Slice(input), &compressed);
  EXPECT_LE(compressed.size(), lz::MaxCompressedLength(input.size()));
  *ok = lz::Uncompress(Slice(compressed), &output);
  return output;
}

TEST(LzCodecTest, EmptyInput) {
  bool ok = false;
  EXPECT_EQ(RoundTrip("", &ok), "");
  EXPECT_TRUE(ok);
}

TEST(LzCodecTest, ShortInputs) {
  for (const char* s : {"a", "ab", "abc", "abcd", "hello world"}) {
    bool ok = false;
    EXPECT_EQ(RoundTrip(s, &ok), s);
    EXPECT_TRUE(ok) << s;
  }
}

TEST(LzCodecTest, RepetitiveDataCompressesWell) {
  std::string input;
  for (int i = 0; i < 500; i++) {
    input += "field0=aaaaaaaaaa;field1=bbbbbbbbbb;";
  }
  std::string compressed;
  lz::Compress(Slice(input), &compressed);
  EXPECT_LT(compressed.size(), input.size() / 5);
  std::string output;
  ASSERT_TRUE(lz::Uncompress(Slice(compressed), &output));
  EXPECT_EQ(output, input);
}

TEST(LzCodecTest, IncompressibleDataSurvives) {
  Random rng(7);
  std::string input;
  for (int i = 0; i < 10000; i++) {
    input.push_back(static_cast<char>(rng.Next() & 0xff));
  }
  bool ok = false;
  EXPECT_EQ(RoundTrip(input, &ok), input);
  EXPECT_TRUE(ok);
}

TEST(LzCodecTest, OverlappingMatches) {
  // "aaaa..." forces distance-1 overlapping copies in the decoder.
  std::string input(1000, 'a');
  std::string compressed;
  lz::Compress(Slice(input), &compressed);
  EXPECT_LT(compressed.size(), 64u);
  std::string output;
  ASSERT_TRUE(lz::Uncompress(Slice(compressed), &output));
  EXPECT_EQ(output, input);
}

TEST(LzCodecTest, PropertyRandomStructuredInputs) {
  Random rng(99);
  for (int round = 0; round < 200; round++) {
    std::string input;
    size_t len = rng.Uniform(4000);
    // Mix of random bytes and repeated chunks, like real block contents.
    while (input.size() < len) {
      if (rng.Bernoulli(0.5) && !input.empty()) {
        size_t from = rng.Uniform(input.size());
        size_t n = 1 + rng.Uniform(40);
        input.append(input.substr(from, n));
      } else {
        input.push_back(static_cast<char>('a' + rng.Uniform(4)));
      }
    }
    bool ok = false;
    ASSERT_EQ(RoundTrip(input, &ok), input) << "round " << round;
    ASSERT_TRUE(ok);
  }
}

TEST(LzCodecTest, RejectsCorruptStreams) {
  std::string input(200, 'x');
  std::string compressed;
  lz::Compress(Slice(input), &compressed);
  std::string output;
  // Truncations at any point must fail or produce a short-output error,
  // never crash or over-read.
  for (size_t cut = 0; cut < compressed.size(); cut++) {
    std::string truncated = compressed.substr(0, cut);
    EXPECT_FALSE(lz::Uncompress(Slice(truncated), &output)) << cut;
  }
  // A bogus back-reference distance must be rejected.
  std::string bogus;
  bogus.push_back(10);  // raw_len varint = 10
  bogus.push_back(static_cast<char>(0x80));  // match len 4
  bogus.push_back(99);  // distance 99 into an empty output
  EXPECT_FALSE(lz::Uncompress(Slice(bogus), &output));
}

TEST(LsmCompressionTest, DbRoundTripAndSmallerFiles) {
  using namespace apmbench::lsm;
  testutil::ScopedTempDir dir_plain("lsm-plain");
  testutil::ScopedTempDir dir_lz("lsm-lz");

  auto load = [](const std::string& dir, CompressionType compression,
                 uint64_t* bytes) {
    Options options;
    options.dir = dir;
    options.compression = compression;
    options.memtable_bytes = 64 * 1024;
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(options, &db).ok());
    for (int i = 0; i < 5000; i++) {
      char key[32];
      snprintf(key, sizeof(key), "user%021d", i);
      ASSERT_TRUE(db->Put(key, "valuevaluevaluevalue-" +
                                   std::to_string(i % 50))
                      .ok());
    }
    ASSERT_TRUE(db->CompactAll().ok());
    // Everything still readable.
    std::string value;
    for (int i = 0; i < 5000; i += 371) {
      char key[32];
      snprintf(key, sizeof(key), "user%021d", i);
      ASSERT_TRUE(db->Get(ReadOptions(), key, &value).ok()) << key;
      EXPECT_EQ(value, "valuevaluevaluevalue-" + std::to_string(i % 50));
    }
    std::vector<std::pair<std::string, std::string>> out;
    ASSERT_TRUE(db->Scan(ReadOptions(), "user", 100, &out).ok());
    EXPECT_EQ(out.size(), 100u);
    ASSERT_TRUE(db->DiskUsage(bytes).ok());
  };

  uint64_t plain_bytes = 0, lz_bytes = 0;
  load(dir_plain.path(), CompressionType::kNone, &plain_bytes);
  load(dir_lz.path(), CompressionType::kLz, &lz_bytes);
  EXPECT_LT(lz_bytes, plain_bytes * 3 / 4)
      << "compressed tables should be clearly smaller";
}

TEST(LsmCompressionTest, ReopenCompressedDb) {
  using namespace apmbench::lsm;
  testutil::ScopedTempDir dir("lsm-lz-reopen");
  Options options;
  options.dir = dir.path();
  options.compression = CompressionType::kLz;
  options.memtable_bytes = 32 * 1024;
  {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(options, &db).ok());
    for (int i = 0; i < 2000; i++) {
      ASSERT_TRUE(
          db->Put("key" + std::to_string(i), std::string(40, 'z')).ok());
    }
    ASSERT_TRUE(db->Flush().ok());
  }
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, &db).ok());
  std::string value;
  ASSERT_TRUE(db->Get(ReadOptions(), "key1234", &value).ok());
  EXPECT_EQ(value, std::string(40, 'z'));
}

}  // namespace
}  // namespace apmbench
