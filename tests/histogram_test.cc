#include "common/histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/random.h"

namespace apmbench {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Percentile(0.5), 0u);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Add(42);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 42u);
  EXPECT_EQ(h.max(), 42u);
  EXPECT_EQ(h.Percentile(0.5), 42u);
  EXPECT_EQ(h.Percentile(1.0), 42u);
}

TEST(HistogramTest, SmallValuesAreExact) {
  Histogram h;
  for (uint64_t v = 0; v < 128; v++) h.Add(v);
  // Values below kSubBuckets land in exact buckets; the 64th of the 128
  // observations [1,1,2,...,127] (zero records as one) is 63.
  EXPECT_EQ(h.Percentile(0.5), 63u);
  EXPECT_EQ(h.min(), 1u);  // zero recorded as 1
  EXPECT_EQ(h.max(), 127u);
}

TEST(HistogramTest, PercentileWithinRelativeError) {
  Random rng(12);
  Histogram h;
  std::vector<uint64_t> values;
  for (int i = 0; i < 100000; i++) {
    uint64_t v = 1 + rng.Uniform(10'000'000);
    values.push_back(v);
    h.Add(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.5, 0.9, 0.95, 0.99, 0.999}) {
    uint64_t exact = values[static_cast<size_t>(q * values.size())];
    uint64_t approx = h.Percentile(q);
    double rel_err =
        std::abs(static_cast<double>(approx) - static_cast<double>(exact)) /
        static_cast<double>(exact);
    EXPECT_LT(rel_err, 0.02) << "q=" << q << " exact=" << exact
                             << " approx=" << approx;
  }
}

TEST(HistogramTest, MeanAndSum) {
  Histogram h;
  h.Add(10);
  h.Add(20);
  h.Add(30);
  EXPECT_DOUBLE_EQ(h.Mean(), 20.0);
  EXPECT_DOUBLE_EQ(h.Sum(), 60.0);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a, b;
  for (int i = 0; i < 100; i++) a.Add(10);
  for (int i = 0; i < 100; i++) b.Add(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_GE(a.max(), 1000u);
  EXPECT_LE(a.Percentile(0.25), 10u);
  EXPECT_GE(a.Percentile(0.75), 990u);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Add(5);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(0.5), 0u);
}

TEST(HistogramTest, HugeValuesSaturateGracefully) {
  Histogram h;
  h.Add(UINT64_MAX);
  h.Add(1);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), UINT64_MAX);
  // No crash, and the top percentile is bounded by the recorded max.
  EXPECT_LE(h.Percentile(1.0), UINT64_MAX);
}

TEST(HistogramTest, ToStringMentionsCount) {
  Histogram h;
  h.Add(7);
  EXPECT_NE(h.ToString().find("count=1"), std::string::npos);
}

TEST(HistogramTest, PercentileMonotone) {
  Random rng(77);
  Histogram h;
  for (int i = 0; i < 10000; i++) h.Add(1 + rng.Uniform(1'000'000));
  uint64_t prev = 0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    uint64_t v = h.Percentile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

}  // namespace
}  // namespace apmbench

namespace apmbench {
namespace {

TEST(HistogramTest, MergeEmptyIntoNonEmptyKeepsMinMax) {
  Histogram a, empty;
  a.Add(10);
  a.Add(500);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 500u);
  EXPECT_EQ(a.Percentile(0.5), 10u);
}

TEST(HistogramTest, MergeNonEmptyIntoEmpty) {
  Histogram empty, b;
  b.Add(42);
  empty.Merge(b);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_EQ(empty.min(), 42u);
  EXPECT_EQ(empty.max(), 42u);
  EXPECT_EQ(empty.Percentile(1.0), 42u);
}

TEST(HistogramTest, PercentileAtZeroAndOne) {
  Histogram h;
  h.Add(100);
  h.Add(10000);
  h.Add(1000000);
  // q=0 reports (the bucket of) the smallest observation, q=1 the largest;
  // both clamped to observed values.
  EXPECT_GE(h.Percentile(0.0), h.min());
  EXPECT_LE(h.Percentile(0.0), 101u);
  EXPECT_EQ(h.Percentile(1.0), 1000000u);
  // Out-of-range quantiles clamp instead of misbehaving.
  EXPECT_EQ(h.Percentile(-0.5), h.Percentile(0.0));
  EXPECT_EQ(h.Percentile(2.0), h.Percentile(1.0));
}

TEST(HistogramTest, SaturationBucketReportsObservedMax) {
  Histogram h;
  // Both values land in the single saturation bucket; the bucket's
  // nominal bound is meaningless so percentiles report the observed max.
  h.Add(1ull << 45);
  h.Add(1ull << 60);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.Percentile(0.5), 1ull << 60);
  EXPECT_EQ(h.Percentile(1.0), 1ull << 60);
}

TEST(HistogramTest, WeightedAddMatchesRepeatedAdd) {
  Histogram weighted, repeated;
  weighted.Add(250, 1000);
  weighted.Add(9000, 10);
  for (int i = 0; i < 1000; i++) repeated.Add(250);
  for (int i = 0; i < 10; i++) repeated.Add(9000);
  EXPECT_EQ(weighted.count(), repeated.count());
  EXPECT_DOUBLE_EQ(weighted.Sum(), repeated.Sum());
  EXPECT_EQ(weighted.min(), repeated.min());
  EXPECT_EQ(weighted.max(), repeated.max());
  for (double q : {0.1, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(weighted.Percentile(q), repeated.Percentile(q)) << q;
  }
  Histogram h;
  h.Add(5, 0);  // zero-count add is a no-op
  EXPECT_EQ(h.count(), 0u);
}

TEST(HistogramTest, SwapExchangesContents) {
  Histogram a, b;
  a.Add(10);
  a.Add(20);
  b.Add(5000);
  a.Swap(&b);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.max(), 5000u);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_EQ(b.min(), 10u);
  // Swapping with a fresh histogram empties the source (the window-flush
  // pattern).
  Histogram fresh;
  b.Swap(&fresh);
  EXPECT_EQ(b.count(), 0u);
  EXPECT_EQ(fresh.count(), 2u);
}

TEST(HistogramTest, SingleValueBucketBoundsProperty) {
  // Any recorded value within the documented range [1, 2^40) is
  // recovered by Percentile(1.0) within the relative-error bound
  // (< 1/128); values beyond saturate and report the observed max.
  Random rng(321);
  for (int i = 0; i < 2000; i++) {
    Histogram h;
    uint64_t v = 1 + (rng.Next() >> (24 + rng.Uniform(39)));
    h.Add(v);
    uint64_t p100 = h.Percentile(1.0);
    EXPECT_GE(p100 + p100 / 64 + 1, v) << v;
    EXPECT_LE(p100, v) << v;  // capped at max
  }
  Histogram h;
  h.Add(1ull << 50);  // saturated region
  EXPECT_EQ(h.Percentile(1.0), 1ull << 50);
}

}  // namespace
}  // namespace apmbench
