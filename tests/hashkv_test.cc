#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "common/random.h"
#include "hashkv/dict.h"
#include "hashkv/hashkv.h"
#include "tests/test_util.h"

namespace apmbench::hashkv {
namespace {

using testutil::ScopedTempDir;

TEST(DictTest, SetGetDel) {
  Dict dict;
  EXPECT_TRUE(dict.Set("a", "1"));
  EXPECT_FALSE(dict.Set("a", "2"));  // overwrite
  ASSERT_NE(dict.Get("a"), nullptr);
  EXPECT_EQ(*dict.Get("a"), "2");
  EXPECT_EQ(dict.Get("b"), nullptr);
  EXPECT_TRUE(dict.Del("a"));
  EXPECT_FALSE(dict.Del("a"));
  EXPECT_EQ(dict.size(), 0u);
}

TEST(DictTest, IncrementalRehashPreservesEntries) {
  Dict dict(4);
  std::map<std::string, std::string> model;
  for (int i = 0; i < 5000; i++) {
    std::string key = "key" + std::to_string(i);
    std::string value = "value" + std::to_string(i);
    dict.Set(key, value);
    model[key] = value;
  }
  EXPECT_EQ(dict.size(), model.size());
  for (const auto& [key, value] : model) {
    ASSERT_NE(dict.Get(key), nullptr) << key;
    EXPECT_EQ(*dict.Get(key), value);
  }
}

TEST(DictTest, OperationsDuringRehash) {
  Dict dict(4);
  // Fill just past the load factor to kick off rehashing, then mix ops.
  for (int i = 0; i < 8; i++) {
    dict.Set("seed" + std::to_string(i), "x");
  }
  std::map<std::string, std::string> model;
  for (int i = 0; i < 8; i++) model["seed" + std::to_string(i)] = "x";
  Random rng(8);
  for (int i = 0; i < 3000; i++) {
    std::string key = "k" + std::to_string(rng.Uniform(400));
    int op = static_cast<int>(rng.Uniform(3));
    if (op == 0) {
      dict.Set(key, std::to_string(i));
      model[key] = std::to_string(i);
    } else if (op == 1) {
      const std::string* got = dict.Get(key);
      auto it = model.find(key);
      if (it == model.end()) {
        EXPECT_EQ(got, nullptr);
      } else {
        ASSERT_NE(got, nullptr);
        EXPECT_EQ(*got, it->second);
      }
    } else {
      EXPECT_EQ(dict.Del(key), model.erase(key) > 0);
    }
    ASSERT_EQ(dict.size(), model.size());
  }
}

TEST(DictTest, MemoryAccounting) {
  Dict dict;
  size_t empty = dict.MemoryBytes();
  dict.Set("key", std::string(100, 'v'));
  EXPECT_GT(dict.MemoryBytes(), empty + 100);
  dict.Del("key");
  EXPECT_EQ(dict.MemoryBytes(), empty);
}

TEST(HashKVTest, BasicOps) {
  Options options;
  std::unique_ptr<HashKV> kv;
  ASSERT_TRUE(HashKV::Open(options, &kv).ok());
  ASSERT_TRUE(kv->Set("k1", "v1").ok());
  std::string value;
  ASSERT_TRUE(kv->Get("k1", &value).ok());
  EXPECT_EQ(value, "v1");
  EXPECT_TRUE(kv->Get("k2", &value).IsNotFound());
  ASSERT_TRUE(kv->Del("k1").ok());
  EXPECT_TRUE(kv->Del("k1").IsNotFound());
}

TEST(HashKVTest, ScanOrderedByKey) {
  Options options;
  std::unique_ptr<HashKV> kv;
  ASSERT_TRUE(HashKV::Open(options, &kv).ok());
  for (int i = 99; i >= 0; i--) {
    char key[8];
    snprintf(key, sizeof(key), "k%03d", i);
    ASSERT_TRUE(kv->Set(key, std::to_string(i)).ok());
  }
  std::vector<std::pair<std::string, std::string>> out;
  ASSERT_TRUE(kv->Scan("k010", 5, &out).ok());
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out[0].first, "k010");
  EXPECT_EQ(out[4].first, "k014");
  // Deleted keys disappear from scans.
  ASSERT_TRUE(kv->Del("k012").ok());
  ASSERT_TRUE(kv->Scan("k010", 5, &out).ok());
  EXPECT_EQ(out[2].first, "k013");
}

TEST(HashKVTest, AofReplayRestoresState) {
  ScopedTempDir dir("aof");
  Options options;
  options.aof_path = dir.path() + "/appendonly.aof";
  {
    std::unique_ptr<HashKV> kv;
    ASSERT_TRUE(HashKV::Open(options, &kv).ok());
    ASSERT_TRUE(kv->Set("persist", "yes").ok());
    ASSERT_TRUE(kv->Set("gone", "soon").ok());
    ASSERT_TRUE(kv->Del("gone").ok());
  }
  {
    std::unique_ptr<HashKV> kv;
    ASSERT_TRUE(HashKV::Open(options, &kv).ok());
    std::string value;
    ASSERT_TRUE(kv->Get("persist", &value).ok());
    EXPECT_EQ(value, "yes");
    EXPECT_TRUE(kv->Get("gone", &value).IsNotFound());
    EXPECT_EQ(kv->GetStats().num_keys, 1u);
    // Scans still work after replay (index rebuilt).
    std::vector<std::pair<std::string, std::string>> out;
    ASSERT_TRUE(kv->Scan("", 10, &out).ok());
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].first, "persist");
  }
}

TEST(HashKVTest, StatsReflectState) {
  Options options;
  std::unique_ptr<HashKV> kv;
  ASSERT_TRUE(HashKV::Open(options, &kv).ok());
  for (int i = 0; i < 1000; i++) {
    ASSERT_TRUE(kv->Set("k" + std::to_string(i), "v").ok());
  }
  HashKV::Stats stats = kv->GetStats();
  EXPECT_EQ(stats.num_keys, 1000u);
  EXPECT_GT(stats.memory_bytes, 1000u);
  EXPECT_EQ(stats.aof_bytes, 0u);
}

}  // namespace
}  // namespace apmbench::hashkv

namespace apmbench::hashkv {
namespace {

TEST(SnapshotTest, SaveLoadRoundTrip) {
  testutil::ScopedTempDir dir("rdb");
  Options options;
  std::unique_ptr<HashKV> kv;
  ASSERT_TRUE(HashKV::Open(options, &kv).ok());
  for (int i = 0; i < 500; i++) {
    ASSERT_TRUE(kv->Set("k" + std::to_string(i), "v" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(kv->Del("k250").ok());
  std::string path = dir.path() + "/dump.rdb";
  ASSERT_TRUE(kv->SaveSnapshot(path).ok());

  std::unique_ptr<HashKV> restored;
  ASSERT_TRUE(HashKV::Open(options, &restored).ok());
  ASSERT_TRUE(restored->Set("stale", "gone-after-load").ok());
  ASSERT_TRUE(restored->LoadSnapshot(path).ok());
  EXPECT_EQ(restored->GetStats().num_keys, 499u);
  std::string value;
  ASSERT_TRUE(restored->Get("k42", &value).ok());
  EXPECT_EQ(value, "v42");
  EXPECT_TRUE(restored->Get("k250", &value).IsNotFound());
  EXPECT_TRUE(restored->Get("stale", &value).IsNotFound());
  // Scans work from the rebuilt index.
  std::vector<std::pair<std::string, std::string>> out;
  ASSERT_TRUE(restored->Scan("k10", 3, &out).ok());
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].first, "k10");
}

TEST(SnapshotTest, CorruptSnapshotRejected) {
  testutil::ScopedTempDir dir("rdb2");
  Options options;
  std::unique_ptr<HashKV> kv;
  ASSERT_TRUE(HashKV::Open(options, &kv).ok());
  ASSERT_TRUE(kv->Set("a", "1").ok());
  std::string path = dir.path() + "/dump.rdb";
  ASSERT_TRUE(kv->SaveSnapshot(path).ok());

  std::string data;
  ASSERT_TRUE(Env::Default()->ReadFileToString(path, &data).ok());
  data[data.size() / 2] ^= 0x5a;
  ASSERT_TRUE(Env::Default()->WriteStringToFile(path, Slice(data)).ok());
  EXPECT_TRUE(kv->LoadSnapshot(path).IsCorruption());
}

TEST(AofRewriteTest, ShrinksLogAndPreservesData) {
  testutil::ScopedTempDir dir("aof-rw");
  Options options;
  options.aof_path = dir.path() + "/appendonly.aof";
  std::unique_ptr<HashKV> kv;
  ASSERT_TRUE(HashKV::Open(options, &kv).ok());
  // Lots of history on few keys: the raw AOF is much bigger than the
  // live data.
  for (int i = 0; i < 2000; i++) {
    ASSERT_TRUE(
        kv->Set("key" + std::to_string(i % 20), "v" + std::to_string(i)).ok());
  }
  uint64_t before = kv->GetStats().aof_bytes;
  ASSERT_TRUE(kv->RewriteAof().ok());
  uint64_t after = kv->GetStats().aof_bytes;
  EXPECT_LT(after, before / 10);

  // Replay of the rewritten log restores the same 20 keys.
  kv.reset();
  std::unique_ptr<HashKV> restored;
  ASSERT_TRUE(HashKV::Open(options, &restored).ok());
  EXPECT_EQ(restored->GetStats().num_keys, 20u);
  std::string value;
  ASSERT_TRUE(restored->Get("key7", &value).ok());
  EXPECT_EQ(value, "v1987");
}

}  // namespace
}  // namespace apmbench::hashkv
