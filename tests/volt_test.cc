#include "volt/volt.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace apmbench::volt {
namespace {

TEST(VoltTest, PutGetDelete) {
  VoltEngine engine(Options{.sites_per_host = 4});
  ASSERT_TRUE(engine.Put("key1", "value1").ok());
  std::string value;
  ASSERT_TRUE(engine.Get("key1", &value).ok());
  EXPECT_EQ(value, "value1");
  EXPECT_TRUE(engine.Get("missing", &value).IsNotFound());
  ASSERT_TRUE(engine.Delete("key1").ok());
  EXPECT_TRUE(engine.Delete("key1").IsNotFound());
}

TEST(VoltTest, RoutingIsDeterministicAndSpread) {
  VoltEngine engine(Options{.sites_per_host = 6});
  std::vector<int> counts(6, 0);
  for (int i = 0; i < 6000; i++) {
    std::string key = "user" + std::to_string(i);
    int p = engine.PartitionOf(key);
    EXPECT_EQ(p, engine.PartitionOf(key));
    ASSERT_GE(p, 0);
    ASSERT_LT(p, 6);
    counts[static_cast<size_t>(p)]++;
  }
  for (int c : counts) {
    EXPECT_GT(c, 700);  // roughly uniform (1000 each)
    EXPECT_LT(c, 1300);
  }
}

TEST(VoltTest, ScanIsGloballyOrdered) {
  VoltEngine engine(Options{.sites_per_host = 5});
  for (int i = 0; i < 500; i++) {
    char key[16];
    snprintf(key, sizeof(key), "k%04d", i);
    ASSERT_TRUE(engine.Put(key, std::to_string(i)).ok());
  }
  std::vector<std::pair<std::string, std::string>> out;
  ASSERT_TRUE(engine.Scan("k0100", 50, &out).ok());
  ASSERT_EQ(out.size(), 50u);
  for (int i = 0; i < 50; i++) {
    char expect[16];
    snprintf(expect, sizeof(expect), "k%04d", 100 + i);
    EXPECT_EQ(out[static_cast<size_t>(i)].first, expect);
  }
}

TEST(VoltTest, StatsCountTransactionTypes) {
  VoltEngine engine(Options{.sites_per_host = 3});
  ASSERT_TRUE(engine.Put("a", "1").ok());
  std::string value;
  ASSERT_TRUE(engine.Get("a", &value).ok());
  std::vector<std::pair<std::string, std::string>> out;
  ASSERT_TRUE(engine.Scan("", 10, &out).ok());
  VoltEngine::Stats stats = engine.GetStats();
  EXPECT_EQ(stats.single_partition_txns, 2u);
  EXPECT_EQ(stats.multi_partition_txns, 1u);
  size_t total_rows = 0;
  for (size_t rows : stats.rows_per_partition) total_rows += rows;
  EXPECT_EQ(total_rows, 1u);
}

TEST(VoltTest, SerialExecutionUnderConcurrency) {
  VoltEngine engine(Options{.sites_per_host = 4});
  const int threads = 8;
  const int ops = 500;
  std::vector<std::thread> workers;
  std::atomic<int> failures{0};
  for (int t = 0; t < threads; t++) {
    workers.emplace_back([&, t]() {
      for (int i = 0; i < ops; i++) {
        std::string key = "t" + std::to_string(t) + "-" + std::to_string(i);
        if (!engine.Put(key, "v").ok()) failures++;
        std::string value;
        if (!engine.Get(key, &value).ok()) failures++;
      }
    });
  }
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(failures.load(), 0);
  VoltEngine::Stats stats = engine.GetStats();
  size_t total = 0;
  for (size_t rows : stats.rows_per_partition) total += rows;
  EXPECT_EQ(total, static_cast<size_t>(threads * ops));
}

}  // namespace
}  // namespace apmbench::volt

#include "tests/test_util.h"

namespace apmbench::volt {
namespace {

TEST(CommandLogTest, RecoversAfterRestart) {
  testutil::ScopedTempDir dir("voltlog");
  Options options;
  options.sites_per_host = 3;
  options.command_log_path = dir.path() + "/command.log";
  {
    VoltEngine engine(options);
    ASSERT_TRUE(engine.Recover().ok());
    for (int i = 0; i < 300; i++) {
      ASSERT_TRUE(engine.Put("key" + std::to_string(i), "v" + std::to_string(i)).ok());
    }
    for (int i = 0; i < 300; i += 3) {
      ASSERT_TRUE(engine.Delete("key" + std::to_string(i)).ok());
    }
  }
  VoltEngine restored(options);
  ASSERT_TRUE(restored.Recover().ok());
  std::string value;
  for (int i = 0; i < 300; i++) {
    Status s = restored.Get("key" + std::to_string(i), &value);
    if (i % 3 == 0) {
      EXPECT_TRUE(s.IsNotFound()) << i;
    } else {
      ASSERT_TRUE(s.ok()) << i;
      EXPECT_EQ(value, "v" + std::to_string(i));
    }
  }
}

TEST(CommandLogTest, TornTailTruncatesReplay) {
  testutil::ScopedTempDir dir("voltlog2");
  Options options;
  options.sites_per_host = 2;
  options.command_log_path = dir.path() + "/command.log";
  {
    VoltEngine engine(options);
    ASSERT_TRUE(engine.Recover().ok());
    ASSERT_TRUE(engine.Put("first", "1").ok());
    ASSERT_TRUE(engine.Put("second", "2").ok());
  }
  // Tear the tail of the log mid-record.
  std::string data;
  ASSERT_TRUE(
      Env::Default()->ReadFileToString(options.command_log_path, &data).ok());
  data.resize(data.size() - 4);
  ASSERT_TRUE(Env::Default()
                  ->WriteStringToFile(options.command_log_path, Slice(data))
                  .ok());

  VoltEngine restored(options);
  ASSERT_TRUE(restored.Recover().ok());
  std::string value;
  ASSERT_TRUE(restored.Get("first", &value).ok());
  EXPECT_TRUE(restored.Get("second", &value).IsNotFound());
}

}  // namespace
}  // namespace apmbench::volt
