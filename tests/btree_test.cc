#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "btree/btree.h"
#include "btree/node.h"
#include "btree/pager.h"
#include "common/random.h"
#include "tests/test_util.h"

namespace apmbench::btree {
namespace {

using testutil::ScopedTempDir;

TEST(NodeTest, LeafInsertAndLookup) {
  std::vector<char> page(4096);
  NodeRef node(page.data(), page.size());
  node.Init(NodeRef::kLeaf);
  EXPECT_TRUE(node.is_leaf());
  EXPECT_EQ(node.nkeys(), 0);

  ASSERT_TRUE(node.InsertLeaf("banana", "yellow"));
  ASSERT_TRUE(node.InsertLeaf("apple", "red"));
  ASSERT_TRUE(node.InsertLeaf("cherry", "dark"));
  ASSERT_EQ(node.nkeys(), 3);
  EXPECT_EQ(node.KeyAt(0).ToString(), "apple");
  EXPECT_EQ(node.KeyAt(1).ToString(), "banana");
  EXPECT_EQ(node.KeyAt(2).ToString(), "cherry");
  EXPECT_EQ(node.ValueAt(1).ToString(), "yellow");

  EXPECT_EQ(node.LowerBound("banana"), 1);
  EXPECT_EQ(node.LowerBound("b"), 1);
  EXPECT_EQ(node.LowerBound("zzz"), 3);
}

TEST(NodeTest, RemoveAndCompact) {
  std::vector<char> page(4096);
  NodeRef node(page.data(), page.size());
  node.Init(NodeRef::kLeaf);
  for (int i = 0; i < 20; i++) {
    char key[8];
    snprintf(key, sizeof(key), "k%02d", i);
    ASSERT_TRUE(node.InsertLeaf(key, std::string(50, 'v')));
  }
  size_t free_before = node.FreeSpace();
  node.Remove(5);
  node.Remove(5);
  EXPECT_EQ(node.nkeys(), 18);
  EXPECT_GT(node.FragBytes(), 0u);
  node.Compact();
  EXPECT_EQ(node.FragBytes(), 0u);
  EXPECT_GT(node.FreeSpace(), free_before);
  EXPECT_EQ(node.KeyAt(5).ToString(), "k07");
}

TEST(NodeTest, UpdateLeafInPlace) {
  std::vector<char> page(4096);
  NodeRef node(page.data(), page.size());
  node.Init(NodeRef::kLeaf);
  ASSERT_TRUE(node.InsertLeaf("key", "short"));
  ASSERT_TRUE(node.UpdateLeaf(0, "a much longer value than before"));
  EXPECT_EQ(node.ValueAt(0).ToString(), "a much longer value than before");
  EXPECT_EQ(node.nkeys(), 1);
}

TEST(NodeTest, SplitKeepsOrder) {
  std::vector<char> page(4096), page2(4096);
  NodeRef node(page.data(), page.size());
  node.Init(NodeRef::kLeaf);
  int inserted = 0;
  for (int i = 0; i < 1000; i++) {
    char key[8];
    snprintf(key, sizeof(key), "k%03d", i);
    if (!node.InsertLeaf(key, std::string(30, 'v'))) break;
    inserted++;
  }
  ASSERT_GT(inserted, 10);
  NodeRef right(page2.data(), page2.size());
  right.Init(NodeRef::kLeaf);
  std::string promoted = node.SplitInto(&right);
  EXPECT_EQ(node.nkeys() + right.nkeys(), inserted);
  EXPECT_EQ(right.KeyAt(0).ToString(), promoted);
  EXPECT_LT(node.KeyAt(node.nkeys() - 1).ToString(), promoted);
}

TEST(NodeTest, InternalChildPointers) {
  std::vector<char> page(4096);
  NodeRef node(page.data(), page.size());
  node.Init(NodeRef::kInternal);
  ASSERT_TRUE(node.InsertInternal("m", 10));
  ASSERT_TRUE(node.InsertInternal("f", 5));
  node.set_right(99);
  EXPECT_EQ(node.ChildAt(0), 5u);
  EXPECT_EQ(node.ChildAt(1), 10u);
  EXPECT_EQ(node.right(), 99u);
  node.SetChildAt(0, 55);
  EXPECT_EQ(node.ChildAt(0), 55u);
  EXPECT_EQ(node.KeyAt(0).ToString(), "f");
}

TEST(PagerTest, NewFetchPersist) {
  ScopedTempDir dir("pager");
  PagerOptions options;
  options.path = dir.path() + "/pages.db";
  uint32_t page_id = 0;
  {
    bool created = false;
    std::unique_ptr<Pager> pager;
    ASSERT_TRUE(Pager::Open(options, &created, &pager).ok());
    EXPECT_TRUE(created);
    Pager::PageHandle handle;
    ASSERT_TRUE(pager->NewPage(&page_id, &handle).ok());
    EXPECT_EQ(page_id, 1u);
    memcpy(handle.data(), "persisted-bytes", 15);
    handle.MarkDirty();
    pager->set_root(page_id);
    pager->set_user_counter(123);
    ASSERT_TRUE(pager->Checkpoint().ok());
  }
  {
    bool created = true;
    std::unique_ptr<Pager> pager;
    ASSERT_TRUE(Pager::Open(options, &created, &pager).ok());
    EXPECT_FALSE(created);
    EXPECT_EQ(pager->root(), page_id);
    EXPECT_EQ(pager->user_counter(), 123u);
    Pager::PageHandle handle;
    ASSERT_TRUE(pager->FetchPage(page_id, &handle).ok());
    EXPECT_EQ(memcmp(handle.data(), "persisted-bytes", 15), 0);
  }
}

TEST(PagerTest, EvictionWritesDirtyPages) {
  ScopedTempDir dir("pager2");
  PagerOptions options;
  options.path = dir.path() + "/pages.db";
  options.buffer_pool_bytes = 8 * 4096;  // tiny pool: 8 frames
  bool created;
  std::unique_ptr<Pager> pager;
  ASSERT_TRUE(Pager::Open(options, &created, &pager).ok());
  std::vector<uint32_t> ids;
  for (int i = 0; i < 32; i++) {
    uint32_t id;
    Pager::PageHandle handle;
    ASSERT_TRUE(pager->NewPage(&id, &handle).ok());
    snprintf(handle.data(), 32, "page-%d", i);
    handle.MarkDirty();
    ids.push_back(id);
  }
  // All pages readable despite pool churn.
  for (int i = 0; i < 32; i++) {
    Pager::PageHandle handle;
    ASSERT_TRUE(pager->FetchPage(ids[static_cast<size_t>(i)], &handle).ok());
    char expect[32];
    snprintf(expect, sizeof(expect), "page-%d", i);
    EXPECT_STREQ(handle.data(), expect);
  }
  EXPECT_GT(pager->pool_misses(), 0u);
}

class BTreeTest : public ::testing::Test {
 protected:
  BTreeTest() : dir_("btree") {
    options_.path = dir_.path() + "/tree.db";
  }

  void Open() { ASSERT_TRUE(BTree::Open(options_, &tree_).ok()); }
  void Reopen() {
    tree_.reset();
    Open();
  }

  ScopedTempDir dir_;
  Options options_;
  std::unique_ptr<BTree> tree_;
};

TEST_F(BTreeTest, PutGetDelete) {
  Open();
  ASSERT_TRUE(tree_->Put("a", "1").ok());
  ASSERT_TRUE(tree_->Put("b", "2").ok());
  std::string value;
  ASSERT_TRUE(tree_->Get("a", &value).ok());
  EXPECT_EQ(value, "1");
  EXPECT_TRUE(tree_->Get("c", &value).IsNotFound());
  ASSERT_TRUE(tree_->Delete("a").ok());
  EXPECT_TRUE(tree_->Get("a", &value).IsNotFound());
  EXPECT_TRUE(tree_->Delete("a").IsNotFound());
}

TEST_F(BTreeTest, OverwriteValue) {
  Open();
  ASSERT_TRUE(tree_->Put("k", "old").ok());
  ASSERT_TRUE(tree_->Put("k", "new-and-considerably-longer").ok());
  std::string value;
  ASSERT_TRUE(tree_->Get("k", &value).ok());
  EXPECT_EQ(value, "new-and-considerably-longer");
  EXPECT_EQ(tree_->GetStats().num_keys, 1u);
}

TEST_F(BTreeTest, ManyInsertsForceSplits) {
  Open();
  const int n = 20000;
  for (int i = 0; i < n; i++) {
    char key[32];
    snprintf(key, sizeof(key), "user%021d", i * 7919 % n);
    ASSERT_TRUE(tree_->Put(key, "value-" + std::to_string(i)).ok()) << i;
  }
  BTree::Stats stats = tree_->GetStats();
  EXPECT_GE(stats.height, 2);
  EXPECT_EQ(stats.num_keys, static_cast<uint64_t>(n));
  for (int i = 0; i < n; i += 97) {
    char key[32];
    snprintf(key, sizeof(key), "user%021d", i);
    std::string value;
    ASSERT_TRUE(tree_->Get(key, &value).ok()) << key;
  }
}

TEST_F(BTreeTest, ScanFollowsLeafChain) {
  Open();
  for (int i = 0; i < 5000; i++) {
    char key[16];
    snprintf(key, sizeof(key), "k%06d", i);
    ASSERT_TRUE(tree_->Put(key, std::to_string(i)).ok());
  }
  std::vector<std::pair<std::string, std::string>> out;
  ASSERT_TRUE(tree_->Scan("k001234", 50, &out).ok());
  ASSERT_EQ(out.size(), 50u);
  for (int i = 0; i < 50; i++) {
    char expect[16];
    snprintf(expect, sizeof(expect), "k%06d", 1234 + i);
    EXPECT_EQ(out[static_cast<size_t>(i)].first, expect);
    EXPECT_EQ(out[static_cast<size_t>(i)].second, std::to_string(1234 + i));
  }
  // Scan past the end.
  ASSERT_TRUE(tree_->Scan("k004990", 50, &out).ok());
  EXPECT_EQ(out.size(), 10u);
  // Scan on empty prefix covers from the start.
  ASSERT_TRUE(tree_->Scan("", 3, &out).ok());
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].first, "k000000");
}

TEST_F(BTreeTest, PersistsAcrossReopen) {
  Open();
  for (int i = 0; i < 3000; i++) {
    ASSERT_TRUE(tree_->Put("key" + std::to_string(i),
                           "value" + std::to_string(i))
                    .ok());
  }
  ASSERT_TRUE(tree_->Checkpoint().ok());
  Reopen();
  EXPECT_EQ(tree_->GetStats().num_keys, 3000u);
  std::string value;
  for (int i = 0; i < 3000; i += 113) {
    ASSERT_TRUE(tree_->Get("key" + std::to_string(i), &value).ok()) << i;
    EXPECT_EQ(value, "value" + std::to_string(i));
  }
}

TEST_F(BTreeTest, BinlogGrowsWithWrites) {
  options_.binlog_path = dir_.path() + "/binlog.001";
  Open();
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(tree_->Put("key" + std::to_string(i), std::string(64, 'b'))
                    .ok());
  }
  BTree::Stats stats = tree_->GetStats();
  EXPECT_GT(stats.binlog_bytes, 100u * 64u);
  uint64_t disk = 0;
  ASSERT_TRUE(tree_->DiskUsage(&disk).ok());
  EXPECT_GT(disk, stats.binlog_bytes);
}

TEST_F(BTreeTest, RejectsOversizedRecords) {
  Open();
  std::string huge(options_.page_size, 'x');
  EXPECT_TRUE(tree_->Put("k", huge).IsInvalidArgument());
}

TEST_F(BTreeTest, SmallBufferPoolStillCorrect) {
  options_.buffer_pool_bytes = 16 * 4096;  // 16 frames
  Open();
  std::map<std::string, std::string> model;
  Random rng(31);
  for (int i = 0; i < 8000; i++) {
    std::string key = "k" + std::to_string(rng.Uniform(3000));
    std::string value = "v" + std::to_string(i);
    ASSERT_TRUE(tree_->Put(key, value).ok());
    model[key] = value;
  }
  for (const auto& [key, expected] : model) {
    std::string value;
    ASSERT_TRUE(tree_->Get(key, &value).ok()) << key;
    EXPECT_EQ(value, expected);
  }
  EXPECT_GT(tree_->GetStats().pool_misses, 0u);
}

TEST_F(BTreeTest, PropertyRandomOpsAgainstModel) {
  Open();
  std::map<std::string, std::string> model;
  Random rng(404);
  for (int i = 0; i < 20000; i++) {
    int op = static_cast<int>(rng.Uniform(10));
    std::string key = "key" + std::to_string(rng.Uniform(800));
    if (op < 6) {
      std::string value(1 + rng.Uniform(60), 'a' + (i % 26));
      ASSERT_TRUE(tree_->Put(key, value).ok());
      model[key] = value;
    } else if (op < 8) {
      Status s = tree_->Delete(key);
      bool existed = model.erase(key) > 0;
      EXPECT_EQ(s.ok(), existed);
    } else if (op < 9) {
      std::string value;
      Status s = tree_->Get(key, &value);
      auto it = model.find(key);
      if (it == model.end()) {
        EXPECT_TRUE(s.IsNotFound());
      } else {
        ASSERT_TRUE(s.ok());
        EXPECT_EQ(value, it->second);
      }
    } else {
      std::vector<std::pair<std::string, std::string>> got;
      ASSERT_TRUE(tree_->Scan(key, 8, &got).ok());
      auto it = model.lower_bound(key);
      for (const auto& [got_key, got_value] : got) {
        ASSERT_NE(it, model.end());
        EXPECT_EQ(got_key, it->first);
        EXPECT_EQ(got_value, it->second);
        ++it;
      }
    }
    if (i % 5000 == 4999) {
      EXPECT_EQ(tree_->GetStats().num_keys, model.size());
    }
  }
}

}  // namespace
}  // namespace apmbench::btree
