#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <string>

#include "common/properties.h"
#include "common/random.h"
#include "tests/test_util.h"
#include "ycsb/client.h"
#include "ycsb/db.h"
#include "ycsb/measurements.h"
#include "ycsb/workload.h"

namespace apmbench::ycsb {
namespace {

TEST(RecordCodecTest, RoundTrip) {
  Record record = {{"field0", "aaaa"}, {"field1", ""}, {"f2", "zz"}};
  std::string encoded;
  EncodeRecord(record, &encoded);
  Record decoded;
  ASSERT_TRUE(DecodeRecord(Slice(encoded), &decoded));
  EXPECT_EQ(decoded, record);
}

TEST(RecordCodecTest, RejectsTruncated) {
  Record record = {{"field0", "value"}};
  std::string encoded;
  EncodeRecord(record, &encoded);
  encoded.resize(encoded.size() - 2);
  Record decoded;
  EXPECT_FALSE(DecodeRecord(Slice(encoded), &decoded));
}

TEST(WorkloadTest, KeyShape) {
  Properties props;
  props.Set("recordcount", "1000");
  CoreWorkload workload(props);
  std::string key = workload.BuildKeyName(0);
  // The paper's 25-byte alphanumeric key.
  EXPECT_EQ(key.size(), 25u);
  EXPECT_EQ(key.substr(0, 4), "user");
  // Deterministic and distinct.
  EXPECT_EQ(key, workload.BuildKeyName(0));
  EXPECT_NE(key, workload.BuildKeyName(1));
}

TEST(WorkloadTest, RecordShapeMatchesPaper) {
  Properties props;
  CoreWorkload workload(props);
  Random rng(1);
  Record record = workload.BuildRecord(&rng);
  ASSERT_EQ(record.size(), 5u);  // 5 fields
  size_t raw = 0;
  for (const auto& [field, value] : record) {
    EXPECT_EQ(value.size(), 10u);  // 10 bytes each
    raw += value.size();
  }
  // 5 x 10 value bytes + 25-byte key = the 75-byte raw record.
  EXPECT_EQ(raw + workload.BuildKeyName(0).size(), 75u);
}

struct MixCase {
  const char* name;
  double read, scan, insert;
};

class Table1MixTest : public ::testing::TestWithParam<MixCase> {};

TEST_P(Table1MixTest, OperationMixMatchesTable1) {
  const MixCase& expected = GetParam();
  Properties props;
  ASSERT_TRUE(CoreWorkload::Table1Preset(expected.name, &props).ok());
  props.Set("recordcount", "1000");
  CoreWorkload workload(props);
  Random rng(42);
  std::map<OpType, int> counts;
  const int n = 200000;
  for (int i = 0; i < n; i++) {
    counts[workload.NextOperation(&rng)]++;
  }
  EXPECT_NEAR(static_cast<double>(counts[OpType::kRead]) / n, expected.read,
              0.01);
  EXPECT_NEAR(static_cast<double>(counts[OpType::kScan]) / n, expected.scan,
              0.01);
  EXPECT_NEAR(static_cast<double>(counts[OpType::kInsert]) / n,
              expected.insert, 0.01);
  EXPECT_EQ(counts[OpType::kUpdate], 0);
  EXPECT_EQ(counts[OpType::kDelete], 0);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, Table1MixTest,
    ::testing::Values(MixCase{"R", 0.95, 0.0, 0.05},
                      MixCase{"RW", 0.50, 0.0, 0.50},
                      MixCase{"W", 0.01, 0.0, 0.99},
                      MixCase{"RS", 0.47, 0.47, 0.06},
                      MixCase{"RSW", 0.25, 0.25, 0.50}),
    [](const ::testing::TestParamInfo<MixCase>& info) {
      return info.param.name;
    });

TEST(WorkloadTest, UnknownPresetRejected) {
  Properties props;
  EXPECT_TRUE(CoreWorkload::Table1Preset("XX", &props).IsInvalidArgument());
}

TEST(WorkloadTest, InsertSequenceAdvances) {
  Properties props;
  props.Set("recordcount", "100");
  CoreWorkload workload(props);
  EXPECT_EQ(workload.NextInsertKeyNum(), 100u);
  EXPECT_EQ(workload.NextInsertKeyNum(), 101u);
}

TEST(WorkloadTest, TransactionKeysWithinInsertedRange) {
  Properties props;
  props.Set("recordcount", "500");
  CoreWorkload workload(props);
  Random rng(3);
  for (int i = 0; i < 10000; i++) {
    EXPECT_LT(workload.NextTransactionKeyNum(&rng), 500u);
  }
  workload.NextInsertKeyNum();
  bool saw_new = false;
  for (int i = 0; i < 20000; i++) {
    if (workload.NextTransactionKeyNum(&rng) == 500u) saw_new = true;
  }
  EXPECT_TRUE(saw_new);
}

TEST(WorkloadTest, ScanLengthIsPaperFixed50) {
  Properties props;
  ASSERT_TRUE(CoreWorkload::Table1Preset("RS", &props).ok());
  CoreWorkload workload(props);
  Random rng(1);
  EXPECT_EQ(workload.NextScanLength(&rng), 50);
}

TEST(MeasurementsTest, RecordAndMerge) {
  Measurements a, b;
  a.Record(OpType::kRead, 100, true);
  a.Record(OpType::kRead, 200, false);
  b.Record(OpType::kInsert, 50, true);
  b.RecordReadMiss();
  a.Merge(b);
  EXPECT_EQ(a.ok_count(OpType::kRead), 1u);
  EXPECT_EQ(a.error_count(OpType::kRead), 1u);
  EXPECT_EQ(a.ok_count(OpType::kInsert), 1u);
  EXPECT_EQ(a.total_ops(), 3u);
  EXPECT_EQ(a.read_misses(), 1u);
  EXPECT_NE(a.Summary().find("READ"), std::string::npos);
  EXPECT_NE(a.Summary().find("INSERT"), std::string::npos);
}

TEST(ClientTest, LoadPopulatesDatabase) {
  testutil::BasicDB db;
  Properties props;
  props.Set("recordcount", "2000");
  CoreWorkload workload(props);
  ASSERT_TRUE(LoadDatabase(&db, &workload, 4).ok());
  EXPECT_EQ(db.size(), 2000u);
  Record record;
  ASSERT_TRUE(
      db.Read(workload.table(), Slice(workload.BuildKeyName(1234)), &record)
          .ok());
  EXPECT_EQ(record.size(), 5u);
}

TEST(ClientTest, RunWorkloadCountBound) {
  testutil::BasicDB db;
  Properties props;
  ASSERT_TRUE(CoreWorkload::Table1Preset("RW", &props).ok());
  props.Set("recordcount", "1000");
  CoreWorkload workload(props);
  ASSERT_TRUE(LoadDatabase(&db, &workload, 2).ok());

  RunConfig config;
  config.threads = 4;
  config.operation_count = 20000;
  RunResult result;
  ASSERT_TRUE(RunWorkload(&db, &workload, config, &result).ok());
  EXPECT_NEAR(static_cast<double>(result.measurements.total_ops()), 20000,
              config.threads);
  EXPECT_GT(result.throughput_ops_sec, 0);
  // Roughly half the ops were inserts.
  EXPECT_NEAR(static_cast<double>(
                  result.measurements.ok_count(OpType::kInsert)) /
                  20000,
              0.5, 0.05);
  EXPECT_EQ(result.measurements.error_count(OpType::kInsert), 0u);
}

TEST(ClientTest, RunWorkloadDurationBound) {
  testutil::BasicDB db;
  Properties props;
  props.Set("recordcount", "100");
  CoreWorkload workload(props);
  ASSERT_TRUE(LoadDatabase(&db, &workload, 1).ok());

  RunConfig config;
  config.threads = 2;
  config.operation_count = 0;
  config.duration_seconds = 0.3;
  RunResult result;
  ASSERT_TRUE(RunWorkload(&db, &workload, config, &result).ok());
  EXPECT_GT(result.measurements.total_ops(), 100u);
  EXPECT_NEAR(result.elapsed_seconds, 0.3, 0.2);
}

TEST(ClientTest, ThrottleApproximatesTarget) {
  testutil::BasicDB db;
  Properties props;
  props.Set("recordcount", "100");
  CoreWorkload workload(props);
  ASSERT_TRUE(LoadDatabase(&db, &workload, 1).ok());

  RunConfig config;
  config.threads = 2;
  config.operation_count = 0;
  config.duration_seconds = 1.0;
  config.target_ops_per_sec = 2000;
  RunResult result;
  ASSERT_TRUE(RunWorkload(&db, &workload, config, &result).ok());
  EXPECT_NEAR(result.throughput_ops_sec, 2000, 500);
}

}  // namespace
}  // namespace apmbench::ycsb

namespace apmbench::ycsb {
namespace {

TEST(WorkloadTest, ZipfianDistributionSkews) {
  Properties props;
  props.Set("recordcount", "10000");
  props.Set("requestdistribution", "zipfian");
  CoreWorkload workload(props);
  Random rng(5);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 100000; i++) {
    counts[workload.NextTransactionKeyNum(&rng)]++;
  }
  // A handful of scrambled-hot keys dominate.
  int max_count = 0;
  for (const auto& [key, count] : counts) max_count = std::max(max_count, count);
  EXPECT_GT(max_count, 100000 / 10000 * 20);  // >20x the uniform share
}

TEST(WorkloadTest, LatestDistributionFavorsRecentKeys) {
  Properties props;
  props.Set("recordcount", "10000");
  props.Set("requestdistribution", "latest");
  CoreWorkload workload(props);
  Random rng(6);
  uint64_t high = 0, low = 0;
  for (int i = 0; i < 50000; i++) {
    uint64_t key = workload.NextTransactionKeyNum(&rng);
    if (key >= 9000) high++;
    if (key < 1000) low++;
  }
  EXPECT_GT(high, low * 5);
}

TEST(WorkloadTest, HotspotDistribution) {
  Properties props;
  props.Set("recordcount", "10000");
  props.Set("requestdistribution", "hotspot");
  props.Set("hotspotdatafraction", "0.1");
  props.Set("hotspotopnfraction", "0.9");
  CoreWorkload workload(props);
  Random rng(7);
  int hot = 0;
  const int n = 50000;
  for (int i = 0; i < n; i++) {
    if (workload.NextTransactionKeyNum(&rng) < 1000) hot++;
  }
  EXPECT_NEAR(static_cast<double>(hot) / n, 0.9 + 0.1 * 0.1, 0.02);
}

TEST(WorkloadTest, OrderedInsertOrderKeepsKeySequence) {
  Properties props;
  props.Set("recordcount", "100");
  props.Set("insertorder", "ordered");
  CoreWorkload workload(props);
  std::string prev;
  for (uint64_t i = 0; i < 50; i++) {
    std::string key = workload.BuildKeyName(i);
    EXPECT_EQ(key.size(), 25u);
    EXPECT_GT(key, prev);
    prev = key;
  }
}

TEST(WorkloadTest, DeleteProportionGeneratesDeletes) {
  Properties props;
  props.Set("recordcount", "100");
  props.Set("readproportion", "0.5");
  props.Set("insertproportion", "0");
  props.Set("updateproportion", "0");
  props.Set("scanproportion", "0");
  props.Set("deleteproportion", "0.5");
  CoreWorkload workload(props);
  Random rng(8);
  int deletes = 0;
  for (int i = 0; i < 10000; i++) {
    if (workload.NextOperation(&rng) == OpType::kDelete) deletes++;
  }
  EXPECT_NEAR(deletes / 10000.0, 0.5, 0.03);
}

TEST(WorkloadTest, UpdateProportionRunsThroughRunner) {
  testutil::BasicDB db;
  Properties props;
  props.Set("recordcount", "200");
  props.Set("readproportion", "0.2");
  props.Set("updateproportion", "0.8");
  props.Set("insertproportion", "0");
  CoreWorkload workload(props);
  ASSERT_TRUE(LoadDatabase(&db, &workload, 2).ok());
  RunConfig config;
  config.threads = 2;
  config.operation_count = 4000;
  RunResult result;
  ASSERT_TRUE(RunWorkload(&db, &workload, config, &result).ok());
  EXPECT_GT(result.measurements.ok_count(OpType::kUpdate), 2500u);
  EXPECT_EQ(result.measurements.error_count(OpType::kUpdate), 0u);
  EXPECT_EQ(db.size(), 200u);  // updates never grow the table
}

}  // namespace
}  // namespace apmbench::ycsb

namespace apmbench::ycsb {
namespace {

TEST(ClientTest, StatusCallbackReportsProgress) {
  testutil::BasicDB db;
  Properties props;
  props.Set("recordcount", "100");
  CoreWorkload workload(props);
  ASSERT_TRUE(LoadDatabase(&db, &workload, 1).ok());

  std::atomic<int> reports{0};
  std::atomic<uint64_t> last_total{0};
  RunConfig config;
  config.threads = 2;
  config.duration_seconds = 0.55;
  config.status_interval_seconds = 0.1;
  config.status_callback = [&](double elapsed, uint64_t total,
                               double interval_rate) {
    (void)elapsed;
    (void)interval_rate;
    reports++;
    last_total = total;
  };
  RunResult result;
  ASSERT_TRUE(RunWorkload(&db, &workload, config, &result).ok());
  EXPECT_GE(reports.load(), 3);
  EXPECT_GT(last_total.load(), 0u);
}

}  // namespace
}  // namespace apmbench::ycsb
