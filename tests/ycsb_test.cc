#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/properties.h"
#include "common/random.h"
#include "tests/test_util.h"
#include "ycsb/client.h"
#include "ycsb/db.h"
#include "ycsb/measurements.h"
#include "ycsb/workload.h"

namespace apmbench::ycsb {
namespace {

TEST(RecordCodecTest, RoundTrip) {
  Record record = {{"field0", "aaaa"}, {"field1", ""}, {"f2", "zz"}};
  std::string encoded;
  EncodeRecord(record, &encoded);
  Record decoded;
  ASSERT_TRUE(DecodeRecord(Slice(encoded), &decoded));
  EXPECT_EQ(decoded, record);
}

TEST(RecordCodecTest, RejectsTruncated) {
  Record record = {{"field0", "value"}};
  std::string encoded;
  EncodeRecord(record, &encoded);
  encoded.resize(encoded.size() - 2);
  Record decoded;
  EXPECT_FALSE(DecodeRecord(Slice(encoded), &decoded));
}

TEST(WorkloadTest, KeyShape) {
  Properties props;
  props.Set("recordcount", "1000");
  CoreWorkload workload(props);
  std::string key = workload.BuildKeyName(0);
  // The paper's 25-byte alphanumeric key.
  EXPECT_EQ(key.size(), 25u);
  EXPECT_EQ(key.substr(0, 4), "user");
  // Deterministic and distinct.
  EXPECT_EQ(key, workload.BuildKeyName(0));
  EXPECT_NE(key, workload.BuildKeyName(1));
}

TEST(WorkloadTest, RecordShapeMatchesPaper) {
  Properties props;
  CoreWorkload workload(props);
  Random rng(1);
  Record record = workload.BuildRecord(&rng);
  ASSERT_EQ(record.size(), 5u);  // 5 fields
  size_t raw = 0;
  for (const auto& [field, value] : record) {
    EXPECT_EQ(value.size(), 10u);  // 10 bytes each
    raw += value.size();
  }
  // 5 x 10 value bytes + 25-byte key = the 75-byte raw record.
  EXPECT_EQ(raw + workload.BuildKeyName(0).size(), 75u);
}

struct MixCase {
  const char* name;
  double read, scan, insert;
};

class Table1MixTest : public ::testing::TestWithParam<MixCase> {};

TEST_P(Table1MixTest, OperationMixMatchesTable1) {
  const MixCase& expected = GetParam();
  Properties props;
  ASSERT_TRUE(CoreWorkload::Table1Preset(expected.name, &props).ok());
  props.Set("recordcount", "1000");
  CoreWorkload workload(props);
  Random rng(42);
  std::map<OpType, int> counts;
  // 1M draws: the empirical mix must land within 1% of Table 1.
  const int n = 1000000;
  for (int i = 0; i < n; i++) {
    counts[workload.NextOperation(&rng)]++;
  }
  EXPECT_NEAR(static_cast<double>(counts[OpType::kRead]) / n, expected.read,
              0.01);
  EXPECT_NEAR(static_cast<double>(counts[OpType::kScan]) / n, expected.scan,
              0.01);
  EXPECT_NEAR(static_cast<double>(counts[OpType::kInsert]) / n,
              expected.insert, 0.01);
  EXPECT_EQ(counts[OpType::kUpdate], 0);
  EXPECT_EQ(counts[OpType::kDelete], 0);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, Table1MixTest,
    ::testing::Values(MixCase{"R", 0.95, 0.0, 0.05},
                      MixCase{"RW", 0.50, 0.0, 0.50},
                      MixCase{"W", 0.01, 0.0, 0.99},
                      MixCase{"RS", 0.47, 0.47, 0.06},
                      MixCase{"RSW", 0.25, 0.25, 0.50}),
    [](const ::testing::TestParamInfo<MixCase>& info) {
      return info.param.name;
    });

TEST(WorkloadTest, UnknownPresetRejected) {
  Properties props;
  EXPECT_TRUE(CoreWorkload::Table1Preset("XX", &props).IsInvalidArgument());
}

TEST(WorkloadTest, InsertSequenceAdvances) {
  Properties props;
  props.Set("recordcount", "100");
  CoreWorkload workload(props);
  EXPECT_EQ(workload.NextInsertKeyNum(), 100u);
  EXPECT_EQ(workload.NextInsertKeyNum(), 101u);
}

TEST(WorkloadTest, TransactionKeysWithinInsertedRange) {
  Properties props;
  props.Set("recordcount", "500");
  CoreWorkload workload(props);
  Random rng(3);
  for (int i = 0; i < 10000; i++) {
    EXPECT_LT(workload.NextTransactionKeyNum(&rng), 500u);
  }
  workload.NextInsertKeyNum();
  bool saw_new = false;
  for (int i = 0; i < 20000; i++) {
    if (workload.NextTransactionKeyNum(&rng) == 500u) saw_new = true;
  }
  EXPECT_TRUE(saw_new);
}

TEST(WorkloadTest, ScanLengthIsPaperFixed50) {
  Properties props;
  ASSERT_TRUE(CoreWorkload::Table1Preset("RS", &props).ok());
  CoreWorkload workload(props);
  Random rng(1);
  EXPECT_EQ(workload.NextScanLength(&rng), 50);
}

TEST(WorkloadTest, ProportionsNormalizedWhenSumBelowOne) {
  // Before normalization, the residual 0.2 silently became extra inserts
  // (insert would draw ~0.40 instead of 0.25).
  Properties props;
  props.Set("recordcount", "100");
  props.Set("readproportion", "0.6");
  props.Set("updateproportion", "0");
  props.Set("scanproportion", "0");
  props.Set("insertproportion", "0.2");
  props.Set("deleteproportion", "0");
  CoreWorkload workload(props);
  Random rng(11);
  std::map<OpType, int> counts;
  const int n = 200000;
  for (int i = 0; i < n; i++) counts[workload.NextOperation(&rng)]++;
  EXPECT_NEAR(static_cast<double>(counts[OpType::kRead]) / n, 0.75, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[OpType::kInsert]) / n, 0.25, 0.01);
  EXPECT_EQ(counts[OpType::kDelete], 0);
  EXPECT_EQ(counts[OpType::kUpdate], 0);
}

TEST(WorkloadTest, ResidualMassDoesNotLeakIntoDeletes) {
  // With p_delete > 0, the old draw gave delete all the unassigned mass
  // (0.2 residual + 0.1 configured = 0.3); normalized it must be
  // 0.1 / 0.8 = 0.125.
  Properties props;
  props.Set("recordcount", "100");
  props.Set("readproportion", "0.5");
  props.Set("updateproportion", "0");
  props.Set("scanproportion", "0");
  props.Set("insertproportion", "0.2");
  props.Set("deleteproportion", "0.1");
  CoreWorkload workload(props);
  Random rng(12);
  int deletes = 0;
  const int n = 200000;
  for (int i = 0; i < n; i++) {
    if (workload.NextOperation(&rng) == OpType::kDelete) deletes++;
  }
  EXPECT_NEAR(static_cast<double>(deletes) / n, 0.125, 0.01);
}

TEST(WorkloadTest, ValidateRejectsBadMixes) {
  Properties negative;
  negative.Set("readproportion", "-0.1");
  EXPECT_TRUE(CoreWorkload::Validate(negative).IsInvalidArgument());

  Properties all_zero;
  all_zero.Set("readproportion", "0");
  all_zero.Set("updateproportion", "0");
  all_zero.Set("scanproportion", "0");
  all_zero.Set("insertproportion", "0");
  all_zero.Set("deleteproportion", "0");
  EXPECT_TRUE(CoreWorkload::Validate(all_zero).IsInvalidArgument());

  Properties ok;  // defaults are a valid R-style mix
  EXPECT_TRUE(CoreWorkload::Validate(ok).ok());
}

TEST(WorkloadTest, ValidateRejectsTruncatingKeylength) {
  Properties props;
  props.Set("keylength", "8");
  EXPECT_TRUE(CoreWorkload::Validate(props).IsInvalidArgument());
  props.Set("keylength", "24");
  EXPECT_TRUE(CoreWorkload::Validate(props).ok());
}

TEST(WorkloadTest, KeyNamesNeverTruncateOrAlias) {
  // keylength=8 used to resize() keys down to 8 bytes, aliasing large
  // ordered sequence numbers that share a prefix. The constructor now
  // clamps to kMinKeyLength so every uint64 keynum keeps all its digits.
  Properties props;
  props.Set("recordcount", "100");
  props.Set("insertorder", "ordered");
  props.Set("keylength", "8");
  CoreWorkload workload(props);
  std::set<std::string> keys;
  const uint64_t base = 1000000000000000000ull;  // 19 digits
  for (uint64_t i = 0; i < 200; i++) {
    std::string key = workload.BuildKeyName(base + i);
    EXPECT_GE(key.size(),
              static_cast<size_t>(CoreWorkload::kMinKeyLength));
    keys.insert(std::move(key));
  }
  EXPECT_EQ(keys.size(), 200u);
  // The extremes of the keynum space stay distinct too.
  EXPECT_NE(workload.BuildKeyName(UINT64_MAX),
            workload.BuildKeyName(UINT64_MAX - 1));
}

TEST(MeasurementsTest, RecordAndMerge) {
  Measurements a, b;
  a.Record(OpType::kRead, 100, true);
  a.Record(OpType::kRead, 200, false);
  b.Record(OpType::kInsert, 50, true);
  b.RecordReadMiss();
  a.Merge(b);
  EXPECT_EQ(a.ok_count(OpType::kRead), 1u);
  EXPECT_EQ(a.error_count(OpType::kRead), 1u);
  EXPECT_EQ(a.ok_count(OpType::kInsert), 1u);
  EXPECT_EQ(a.total_ops(), 3u);
  EXPECT_EQ(a.read_misses(), 1u);
  EXPECT_NE(a.Summary().find("READ"), std::string::npos);
  EXPECT_NE(a.Summary().find("INSERT"), std::string::npos);
}

TEST(ClientTest, LoadPopulatesDatabase) {
  testutil::BasicDB db;
  Properties props;
  props.Set("recordcount", "2000");
  CoreWorkload workload(props);
  ASSERT_TRUE(LoadDatabase(&db, &workload, 4).ok());
  EXPECT_EQ(db.size(), 2000u);
  Record record;
  ASSERT_TRUE(
      db.Read(workload.table(), Slice(workload.BuildKeyName(1234)), &record)
          .ok());
  EXPECT_EQ(record.size(), 5u);
}

TEST(ClientTest, RunWorkloadCountBound) {
  testutil::BasicDB db;
  Properties props;
  ASSERT_TRUE(CoreWorkload::Table1Preset("RW", &props).ok());
  props.Set("recordcount", "1000");
  CoreWorkload workload(props);
  ASSERT_TRUE(LoadDatabase(&db, &workload, 2).ok());

  RunConfig config;
  config.threads = 4;
  config.operation_count = 20000;
  RunResult result;
  ASSERT_TRUE(RunWorkload(&db, &workload, config, &result).ok());
  EXPECT_NEAR(static_cast<double>(result.measurements.total_ops()), 20000,
              config.threads);
  EXPECT_GT(result.throughput_ops_sec, 0);
  // Roughly half the ops were inserts.
  EXPECT_NEAR(static_cast<double>(
                  result.measurements.ok_count(OpType::kInsert)) /
                  20000,
              0.5, 0.05);
  EXPECT_EQ(result.measurements.error_count(OpType::kInsert), 0u);
}

TEST(ClientTest, RunWorkloadDurationBound) {
  testutil::BasicDB db;
  Properties props;
  props.Set("recordcount", "100");
  CoreWorkload workload(props);
  ASSERT_TRUE(LoadDatabase(&db, &workload, 1).ok());

  RunConfig config;
  config.threads = 2;
  config.operation_count = 0;
  config.duration_seconds = 0.3;
  RunResult result;
  ASSERT_TRUE(RunWorkload(&db, &workload, config, &result).ok());
  EXPECT_GT(result.measurements.total_ops(), 100u);
  EXPECT_NEAR(result.elapsed_seconds, 0.3, 0.2);
}

TEST(ClientTest, ThrottleApproximatesTarget) {
  testutil::BasicDB db;
  Properties props;
  props.Set("recordcount", "100");
  CoreWorkload workload(props);
  ASSERT_TRUE(LoadDatabase(&db, &workload, 1).ok());

  RunConfig config;
  config.threads = 2;
  config.operation_count = 0;
  config.duration_seconds = 1.0;
  config.target_ops_per_sec = 2000;
  RunResult result;
  ASSERT_TRUE(RunWorkload(&db, &workload, config, &result).ok());
  EXPECT_NEAR(result.throughput_ops_sec, 2000, 500);
}

}  // namespace
}  // namespace apmbench::ycsb

namespace apmbench::ycsb {
namespace {

TEST(WorkloadTest, ZipfianDistributionSkews) {
  Properties props;
  props.Set("recordcount", "10000");
  props.Set("requestdistribution", "zipfian");
  CoreWorkload workload(props);
  Random rng(5);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 100000; i++) {
    counts[workload.NextTransactionKeyNum(&rng)]++;
  }
  // A handful of scrambled-hot keys dominate.
  int max_count = 0;
  for (const auto& [key, count] : counts) max_count = std::max(max_count, count);
  EXPECT_GT(max_count, 100000 / 10000 * 20);  // >20x the uniform share
}

TEST(WorkloadTest, LatestDistributionFavorsRecentKeys) {
  Properties props;
  props.Set("recordcount", "10000");
  props.Set("requestdistribution", "latest");
  CoreWorkload workload(props);
  Random rng(6);
  uint64_t high = 0, low = 0;
  for (int i = 0; i < 50000; i++) {
    uint64_t key = workload.NextTransactionKeyNum(&rng);
    if (key >= 9000) high++;
    if (key < 1000) low++;
  }
  EXPECT_GT(high, low * 5);
}

TEST(WorkloadTest, HotspotDistribution) {
  Properties props;
  props.Set("recordcount", "10000");
  props.Set("requestdistribution", "hotspot");
  props.Set("hotspotdatafraction", "0.1");
  props.Set("hotspotopnfraction", "0.9");
  CoreWorkload workload(props);
  Random rng(7);
  int hot = 0;
  const int n = 50000;
  for (int i = 0; i < n; i++) {
    if (workload.NextTransactionKeyNum(&rng) < 1000) hot++;
  }
  EXPECT_NEAR(static_cast<double>(hot) / n, 0.9 + 0.1 * 0.1, 0.02);
}

TEST(WorkloadTest, OrderedInsertOrderKeepsKeySequence) {
  Properties props;
  props.Set("recordcount", "100");
  props.Set("insertorder", "ordered");
  CoreWorkload workload(props);
  std::string prev;
  for (uint64_t i = 0; i < 50; i++) {
    std::string key = workload.BuildKeyName(i);
    EXPECT_EQ(key.size(), 25u);
    EXPECT_GT(key, prev);
    prev = key;
  }
}

TEST(WorkloadTest, DeleteProportionGeneratesDeletes) {
  Properties props;
  props.Set("recordcount", "100");
  props.Set("readproportion", "0.5");
  props.Set("insertproportion", "0");
  props.Set("updateproportion", "0");
  props.Set("scanproportion", "0");
  props.Set("deleteproportion", "0.5");
  CoreWorkload workload(props);
  Random rng(8);
  int deletes = 0;
  for (int i = 0; i < 10000; i++) {
    if (workload.NextOperation(&rng) == OpType::kDelete) deletes++;
  }
  EXPECT_NEAR(deletes / 10000.0, 0.5, 0.03);
}

TEST(WorkloadTest, UpdateProportionRunsThroughRunner) {
  testutil::BasicDB db;
  Properties props;
  props.Set("recordcount", "200");
  props.Set("readproportion", "0.2");
  props.Set("updateproportion", "0.8");
  props.Set("insertproportion", "0");
  CoreWorkload workload(props);
  ASSERT_TRUE(LoadDatabase(&db, &workload, 2).ok());
  RunConfig config;
  config.threads = 2;
  config.operation_count = 4000;
  RunResult result;
  ASSERT_TRUE(RunWorkload(&db, &workload, config, &result).ok());
  EXPECT_GT(result.measurements.ok_count(OpType::kUpdate), 2500u);
  EXPECT_EQ(result.measurements.error_count(OpType::kUpdate), 0u);
  EXPECT_EQ(db.size(), 200u);  // updates never grow the table
}

}  // namespace
}  // namespace apmbench::ycsb

namespace apmbench::ycsb {
namespace {

/// Counts every operation that reaches the store; optionally injects one
/// long stall at a chosen call number (the coordinated-omission probe)
/// or fails all inserts from a chosen call number on.
class InstrumentedDB final : public testutil::BasicDB {
 public:
  Status Read(const std::string& table, const Slice& key,
              Record* record) override {
    OnCall();
    return BasicDB::Read(table, key, record);
  }
  Status Insert(const std::string& table, const Slice& key,
                const Record& record) override {
    uint64_t call = OnCall();
    if (fail_inserts_from_ > 0 && call >= fail_inserts_from_) {
      return Status::IOError("injected insert failure");
    }
    return BasicDB::Insert(table, key, record);
  }
  Status Update(const std::string& table, const Slice& key,
                const Record& record) override {
    OnCall();
    return BasicDB::Update(table, key, record);
  }

  uint64_t calls() const { return calls_.load(); }
  void reset_calls() { calls_ = 0; }
  /// The `stall_at`-th call (1-based) sleeps for `ms` milliseconds.
  void StallOnce(uint64_t stall_at, int ms) {
    stall_at_ = stall_at;
    stall_ms_ = ms;
  }
  void FailInsertsFrom(uint64_t call) { fail_inserts_from_ = call; }

 private:
  uint64_t OnCall() {
    uint64_t call = calls_.fetch_add(1) + 1;
    if (call == stall_at_) {
      std::this_thread::sleep_for(std::chrono::milliseconds(stall_ms_));
    }
    return call;
  }

  std::atomic<uint64_t> calls_{0};
  uint64_t stall_at_ = 0;
  int stall_ms_ = 0;
  uint64_t fail_inserts_from_ = 0;
};

TEST(ClientTest, OperationCountExecutedExactly) {
  testutil::BasicDB db;
  Properties props;
  props.Set("recordcount", "500");
  CoreWorkload workload(props);
  ASSERT_TRUE(LoadDatabase(&db, &workload, 2).ok());

  RunConfig config;
  config.threads = 4;
  config.operation_count = 5000;
  RunResult result;
  ASSERT_TRUE(RunWorkload(&db, &workload, config, &result).ok());
  // The budget is claimed with compare-exchange: threads that observe
  // exhaustion never decrement, so exactly operation_count ops execute.
  EXPECT_EQ(result.measurements.total_ops(), 5000u);
}

TEST(ClientTest, PacedOperationCountExecutedExactly) {
  testutil::BasicDB db;
  Properties props;
  props.Set("recordcount", "500");
  CoreWorkload workload(props);
  ASSERT_TRUE(LoadDatabase(&db, &workload, 2).ok());

  RunConfig config;
  config.threads = 4;
  config.operation_count = 600;
  config.target_ops_per_sec = 4000;
  RunResult result;
  ASSERT_TRUE(RunWorkload(&db, &workload, config, &result).ok());
  EXPECT_EQ(result.measurements.total_ops(), 600u);
}

TEST(ClientTest, LoadAbortsOtherThreadsOnFailure) {
  InstrumentedDB db;
  db.FailInsertsFrom(64);
  Properties props;
  props.Set("recordcount", "200000");
  CoreWorkload workload(props);
  Status status = LoadDatabase(&db, &workload, 4);
  EXPECT_TRUE(status.IsIOError());
  // Without the shared abort flag the surviving threads would push on to
  // all 200k records (every one failing); with it they stop promptly.
  EXPECT_LT(db.calls(), 20000u);
}

TEST(ClientTest, IntendedLatencySurfacesInjectedStall) {
  // The acceptance scenario: a paced run against a store with one 100 ms
  // stall. The stalled op's queueing delay spills onto the ~100 requests
  // scheduled behind it; only intended latency sees that delay.
  InstrumentedDB db;
  Properties props;
  props.Set("recordcount", "500");
  CoreWorkload workload(props);
  ASSERT_TRUE(LoadDatabase(&db, &workload, 2).ok());
  db.reset_calls();
  db.StallOnce(50, 100);

  RunConfig config;
  config.threads = 1;
  config.operation_count = 400;
  config.target_ops_per_sec = 1000;
  RunResult result;
  ASSERT_TRUE(RunWorkload(&db, &workload, config, &result).ok());
  ASSERT_EQ(result.measurements.total_ops(), 400u);

  Histogram measured = result.measurements.MergedHistogram();
  Histogram intended = result.measurements.MergedIntendedHistogram();
  // Measured-only accounting hides the stall: only the one stalled op is
  // slow, so p99 over 400 ops stays fast.
  EXPECT_LT(measured.Percentile(0.99), 50000u);
  // Intended latency carries the queueing delay of every op scheduled
  // during the stall: ~50 of 400 ops (p99 comfortably above 50 ms... the
  // tail reaches toward the full 100 ms).
  EXPECT_GT(intended.Percentile(0.99), 50000u);
  EXPECT_GE(intended.max(), 90000u);
  // Paced runs advertise intended latency in the summary.
  EXPECT_TRUE(result.measurements.track_intended());
  EXPECT_NE(result.measurements.Summary().find("(int)"), std::string::npos);
}

TEST(ClientTest, UnpacedIntendedEqualsMeasured) {
  testutil::BasicDB db;
  Properties props;
  props.Set("recordcount", "200");
  CoreWorkload workload(props);
  ASSERT_TRUE(LoadDatabase(&db, &workload, 1).ok());

  RunConfig config;
  config.threads = 2;
  config.operation_count = 2000;
  RunResult result;
  ASSERT_TRUE(RunWorkload(&db, &workload, config, &result).ok());
  EXPECT_FALSE(result.measurements.track_intended());
  Histogram measured = result.measurements.MergedHistogram();
  Histogram intended = result.measurements.MergedIntendedHistogram();
  EXPECT_EQ(measured.count(), intended.count());
  EXPECT_EQ(measured.Percentile(0.5), intended.Percentile(0.5));
  EXPECT_EQ(measured.max(), intended.max());
}

TEST(ClientTest, WarmupOpsExcludedFromMeasurements) {
  InstrumentedDB db;
  Properties props;
  props.Set("recordcount", "200");
  CoreWorkload workload(props);
  ASSERT_TRUE(LoadDatabase(&db, &workload, 2).ok());
  db.reset_calls();

  RunConfig config;
  config.threads = 2;
  config.operation_count = 0;
  config.duration_seconds = 0.3;
  config.warmup_seconds = 0.2;
  RunResult result;
  ASSERT_TRUE(RunWorkload(&db, &workload, config, &result).ok());
  EXPECT_GT(result.warmup_ops, 0u);
  EXPECT_GT(result.measurements.total_ops(), 0u);
  // Every executed op is either warmup or measured — none double-counted,
  // none lost. (Scans don't reach InstrumentedDB's counter, but workload
  // R-style defaults issue none.)
  EXPECT_EQ(result.warmup_ops + result.measurements.total_ops(),
            db.calls());
  // Elapsed/throughput cover the measured phase only.
  EXPECT_NEAR(result.elapsed_seconds, 0.3, 0.2);
}

TEST(ClientTest, TimeSeriesCollection) {
  testutil::BasicDB db;
  Properties props;
  props.Set("recordcount", "200");
  CoreWorkload workload(props);
  ASSERT_TRUE(LoadDatabase(&db, &workload, 1).ok());

  RunConfig config;
  config.threads = 2;
  config.operation_count = 0;
  config.duration_seconds = 0.5;
  config.time_series_window_seconds = 0.1;
  RunResult result;
  ASSERT_TRUE(RunWorkload(&db, &workload, config, &result).ok());

  const TimeSeries& series = result.time_series;
  EXPECT_DOUBLE_EQ(series.window_seconds, 0.1);
  ASSERT_GE(series.points.size(), 3u);
  ASSERT_LE(series.points.size(), 8u);
  uint64_t series_ops = 0;
  double prev_t = 0;
  for (const TimeSeriesPoint& p : series.points) {
    EXPECT_GT(p.t_seconds, prev_t);
    prev_t = p.t_seconds;
    series_ops += p.ops;
    if (p.ops > 0) {
      EXPECT_GT(p.ops_per_sec, 0);
      EXPECT_GE(p.measured_p95_us, p.measured_p50_us);
      EXPECT_GE(p.measured_p99_us, p.measured_p95_us);
    }
  }
  // Window totals partition the measured ops exactly.
  EXPECT_EQ(series_ops, result.measurements.total_ops());
}

TEST(ClientTest, TimeSeriesDisabledByDefault) {
  testutil::BasicDB db;
  Properties props;
  props.Set("recordcount", "100");
  CoreWorkload workload(props);
  ASSERT_TRUE(LoadDatabase(&db, &workload, 1).ok());
  RunConfig config;
  config.threads = 1;
  config.operation_count = 500;
  RunResult result;
  ASSERT_TRUE(RunWorkload(&db, &workload, config, &result).ok());
  EXPECT_TRUE(result.time_series.empty());
}

TEST(TimeSeriesTest, JsonRoundTrip) {
  TimeSeries series;
  series.window_seconds = 0.5;
  for (int i = 0; i < 3; i++) {
    TimeSeriesPoint p;
    p.t_seconds = 0.5 * (i + 1);
    p.window_seconds = 0.5;
    p.ops = 1000 + static_cast<uint64_t>(i);
    p.ops_per_sec = 2000 + i;
    p.measured_p50_us = 10 + static_cast<uint64_t>(i);
    p.measured_p95_us = 95;
    p.measured_p99_us = 99;
    p.measured_max_us = 1234;
    p.intended_p50_us = 20;
    p.intended_p95_us = 195;
    p.intended_p99_us = 199;
    p.intended_max_us = 5678;
    series.points.push_back(p);
  }
  TimeSeries parsed;
  ASSERT_TRUE(TimeSeries::FromJson(series.ToJson(), &parsed).ok());
  EXPECT_DOUBLE_EQ(parsed.window_seconds, 0.5);
  ASSERT_EQ(parsed.points.size(), 3u);
  for (size_t i = 0; i < 3; i++) {
    EXPECT_DOUBLE_EQ(parsed.points[i].t_seconds, series.points[i].t_seconds);
    EXPECT_EQ(parsed.points[i].ops, series.points[i].ops);
    EXPECT_DOUBLE_EQ(parsed.points[i].ops_per_sec,
                     series.points[i].ops_per_sec);
    EXPECT_EQ(parsed.points[i].measured_p50_us,
              series.points[i].measured_p50_us);
    EXPECT_EQ(parsed.points[i].measured_max_us,
              series.points[i].measured_max_us);
    EXPECT_EQ(parsed.points[i].intended_p99_us,
              series.points[i].intended_p99_us);
    EXPECT_EQ(parsed.points[i].intended_max_us,
              series.points[i].intended_max_us);
  }
  // CSV has one header plus one line per point.
  std::string csv = series.ToCsv();
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 4);

  TimeSeries bad;
  EXPECT_FALSE(TimeSeries::FromJson("not json", &bad).ok());
  EXPECT_FALSE(TimeSeries::FromJson("{\"bogus\": 1}", &bad).ok());
}

TEST(MeasurementsTest, IntervalCollectorMergesThreadReports) {
  IntervalCollector collector(1.0);
  ASSERT_TRUE(collector.enabled());
  Histogram m1, i1, m2, i2;
  m1.Add(100);
  i1.Add(150);
  m2.Add(300);
  i2.Add(500);
  collector.ReportWindow(0, 1, m1, i1);
  collector.ReportWindow(0, 1, m2, i2);
  collector.ReportWindow(2, 1, m1, i1);  // window 1 stays empty

  TimeSeriesPoint point;
  ASSERT_TRUE(collector.WindowSnapshot(0, &point));
  EXPECT_EQ(point.ops, 2u);
  EXPECT_EQ(point.measured_max_us, 300u);
  EXPECT_EQ(point.intended_max_us, 500u);
  EXPECT_FALSE(collector.WindowSnapshot(1, &point));

  TimeSeries series = collector.ToTimeSeries(2.5);
  ASSERT_EQ(series.points.size(), 3u);
  EXPECT_EQ(series.points[0].ops, 2u);
  EXPECT_DOUBLE_EQ(series.points[0].ops_per_sec, 2.0);
  EXPECT_EQ(series.points[1].ops, 0u);
  // The final window is clamped to the actual elapsed time (0.5s).
  EXPECT_DOUBLE_EQ(series.points[2].ops_per_sec, 2.0);

  IntervalCollector disabled(0.0);
  EXPECT_FALSE(disabled.enabled());
  disabled.ReportWindow(0, 1, m1, i1);
  EXPECT_TRUE(disabled.ToTimeSeries(1.0).empty());
}

TEST(ClientTest, StatusCallbackReportsProgress) {
  testutil::BasicDB db;
  Properties props;
  props.Set("recordcount", "100");
  CoreWorkload workload(props);
  ASSERT_TRUE(LoadDatabase(&db, &workload, 1).ok());

  std::atomic<int> reports{0};
  std::atomic<uint64_t> last_total{0};
  RunConfig config;
  config.threads = 2;
  config.duration_seconds = 0.55;
  config.status_interval_seconds = 0.1;
  config.status_callback = [&](double elapsed, uint64_t total,
                               double interval_rate) {
    (void)elapsed;
    (void)interval_rate;
    reports++;
    last_total = total;
  };
  RunResult result;
  ASSERT_TRUE(RunWorkload(&db, &workload, config, &result).ok());
  EXPECT_GE(reports.load(), 3);
  EXPECT_GT(last_total.load(), 0u);
}

TEST(ClientTest, StatusElapsedIsMonotonicAndAnchored) {
  testutil::BasicDB db;
  Properties props;
  props.Set("recordcount", "100");
  CoreWorkload workload(props);
  ASSERT_TRUE(LoadDatabase(&db, &workload, 1).ok());

  std::vector<double> elapsed_values;
  std::mutex mu;
  RunConfig config;
  config.threads = 2;
  config.duration_seconds = 0.45;
  config.status_interval_seconds = 0.1;
  config.status_callback = [&](double elapsed, uint64_t, double) {
    std::lock_guard<std::mutex> lock(mu);
    elapsed_values.push_back(elapsed);
  };
  RunResult result;
  ASSERT_TRUE(RunWorkload(&db, &workload, config, &result).ok());
  ASSERT_GE(elapsed_values.size(), 3u);
  double prev = 0;
  for (double e : elapsed_values) {
    EXPECT_GT(e, prev);
    prev = e;
    // Anchored to the monotonic clock: each report lands at (or just
    // after) a real tick boundary, never at drifted "assumed" times.
    double nearest = std::round(e / 0.1) * 0.1;
    EXPECT_NEAR(e, nearest, 0.05);
  }
}

TEST(ClientTest, WindowCallbackDeliversCompletedWindows) {
  testutil::BasicDB db;
  Properties props;
  props.Set("recordcount", "100");
  CoreWorkload workload(props);
  ASSERT_TRUE(LoadDatabase(&db, &workload, 1).ok());

  std::vector<TimeSeriesPoint> points;
  std::mutex mu;
  RunConfig config;
  config.threads = 2;
  config.duration_seconds = 0.5;
  config.time_series_window_seconds = 0.1;
  config.status_interval_seconds = 0.1;
  config.window_callback = [&](const TimeSeriesPoint& p) {
    std::lock_guard<std::mutex> lock(mu);
    points.push_back(p);
  };
  RunResult result;
  ASSERT_TRUE(RunWorkload(&db, &workload, config, &result).ok());
  ASSERT_GE(points.size(), 1u);
  for (const TimeSeriesPoint& p : points) {
    EXPECT_GT(p.ops, 0u);
    EXPECT_GT(p.ops_per_sec, 0.0);
  }
}

}  // namespace
}  // namespace apmbench::ycsb
