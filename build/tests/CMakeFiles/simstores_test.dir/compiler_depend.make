# Empty compiler generated dependencies file for simstores_test.
# This may be replaced when dependencies are built.
