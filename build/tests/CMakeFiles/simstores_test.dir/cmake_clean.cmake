file(REMOVE_RECURSE
  "CMakeFiles/simstores_test.dir/simstores_test.cc.o"
  "CMakeFiles/simstores_test.dir/simstores_test.cc.o.d"
  "simstores_test"
  "simstores_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simstores_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
