file(REMOVE_RECURSE
  "CMakeFiles/hashkv_test.dir/hashkv_test.cc.o"
  "CMakeFiles/hashkv_test.dir/hashkv_test.cc.o.d"
  "hashkv_test"
  "hashkv_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hashkv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
