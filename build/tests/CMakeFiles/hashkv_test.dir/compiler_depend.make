# Empty compiler generated dependencies file for hashkv_test.
# This may be replaced when dependencies are built.
