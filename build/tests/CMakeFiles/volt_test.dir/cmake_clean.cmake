file(REMOVE_RECURSE
  "CMakeFiles/volt_test.dir/volt_test.cc.o"
  "CMakeFiles/volt_test.dir/volt_test.cc.o.d"
  "volt_test"
  "volt_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/volt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
