
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/volt_test.cc" "tests/CMakeFiles/volt_test.dir/volt_test.cc.o" "gcc" "tests/CMakeFiles/volt_test.dir/volt_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apm/CMakeFiles/apm_apm.dir/DependInfo.cmake"
  "/root/repo/build/src/stores/CMakeFiles/apm_stores.dir/DependInfo.cmake"
  "/root/repo/build/src/simstores/CMakeFiles/apm_simstores.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/apm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ycsb/CMakeFiles/apm_ycsb.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/apm_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/lsm/CMakeFiles/apm_lsm.dir/DependInfo.cmake"
  "/root/repo/build/src/btree/CMakeFiles/apm_btree.dir/DependInfo.cmake"
  "/root/repo/build/src/hashkv/CMakeFiles/apm_hashkv.dir/DependInfo.cmake"
  "/root/repo/build/src/volt/CMakeFiles/apm_volt.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/apm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
