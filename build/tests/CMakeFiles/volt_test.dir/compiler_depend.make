# Empty compiler generated dependencies file for volt_test.
# This may be replaced when dependencies are built.
