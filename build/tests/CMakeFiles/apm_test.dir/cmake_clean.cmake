file(REMOVE_RECURSE
  "CMakeFiles/apm_test.dir/apm_test.cc.o"
  "CMakeFiles/apm_test.dir/apm_test.cc.o.d"
  "apm_test"
  "apm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
