# Empty dependencies file for apm_test.
# This may be replaced when dependencies are built.
