file(REMOVE_RECURSE
  "CMakeFiles/engine_sweep_test.dir/engine_sweep_test.cc.o"
  "CMakeFiles/engine_sweep_test.dir/engine_sweep_test.cc.o.d"
  "engine_sweep_test"
  "engine_sweep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
