# Empty dependencies file for apm_volt.
# This may be replaced when dependencies are built.
