file(REMOVE_RECURSE
  "libapm_volt.a"
)
