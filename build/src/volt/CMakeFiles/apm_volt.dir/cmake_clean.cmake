file(REMOVE_RECURSE
  "CMakeFiles/apm_volt.dir/volt.cc.o"
  "CMakeFiles/apm_volt.dir/volt.cc.o.d"
  "libapm_volt.a"
  "libapm_volt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apm_volt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
