file(REMOVE_RECURSE
  "CMakeFiles/apm_ycsb.dir/client.cc.o"
  "CMakeFiles/apm_ycsb.dir/client.cc.o.d"
  "CMakeFiles/apm_ycsb.dir/db.cc.o"
  "CMakeFiles/apm_ycsb.dir/db.cc.o.d"
  "CMakeFiles/apm_ycsb.dir/measurements.cc.o"
  "CMakeFiles/apm_ycsb.dir/measurements.cc.o.d"
  "CMakeFiles/apm_ycsb.dir/timeseries.cc.o"
  "CMakeFiles/apm_ycsb.dir/timeseries.cc.o.d"
  "CMakeFiles/apm_ycsb.dir/workload.cc.o"
  "CMakeFiles/apm_ycsb.dir/workload.cc.o.d"
  "libapm_ycsb.a"
  "libapm_ycsb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apm_ycsb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
