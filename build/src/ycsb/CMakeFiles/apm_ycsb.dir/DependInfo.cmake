
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ycsb/client.cc" "src/ycsb/CMakeFiles/apm_ycsb.dir/client.cc.o" "gcc" "src/ycsb/CMakeFiles/apm_ycsb.dir/client.cc.o.d"
  "/root/repo/src/ycsb/db.cc" "src/ycsb/CMakeFiles/apm_ycsb.dir/db.cc.o" "gcc" "src/ycsb/CMakeFiles/apm_ycsb.dir/db.cc.o.d"
  "/root/repo/src/ycsb/measurements.cc" "src/ycsb/CMakeFiles/apm_ycsb.dir/measurements.cc.o" "gcc" "src/ycsb/CMakeFiles/apm_ycsb.dir/measurements.cc.o.d"
  "/root/repo/src/ycsb/timeseries.cc" "src/ycsb/CMakeFiles/apm_ycsb.dir/timeseries.cc.o" "gcc" "src/ycsb/CMakeFiles/apm_ycsb.dir/timeseries.cc.o.d"
  "/root/repo/src/ycsb/workload.cc" "src/ycsb/CMakeFiles/apm_ycsb.dir/workload.cc.o" "gcc" "src/ycsb/CMakeFiles/apm_ycsb.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/apm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
