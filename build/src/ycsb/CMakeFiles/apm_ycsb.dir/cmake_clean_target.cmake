file(REMOVE_RECURSE
  "libapm_ycsb.a"
)
