# Empty dependencies file for apm_ycsb.
# This may be replaced when dependencies are built.
