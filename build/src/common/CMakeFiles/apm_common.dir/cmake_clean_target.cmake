file(REMOVE_RECURSE
  "libapm_common.a"
)
