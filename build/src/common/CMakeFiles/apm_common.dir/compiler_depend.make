# Empty compiler generated dependencies file for apm_common.
# This may be replaced when dependencies are built.
