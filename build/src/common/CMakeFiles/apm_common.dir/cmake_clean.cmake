file(REMOVE_RECURSE
  "CMakeFiles/apm_common.dir/coding.cc.o"
  "CMakeFiles/apm_common.dir/coding.cc.o.d"
  "CMakeFiles/apm_common.dir/compression.cc.o"
  "CMakeFiles/apm_common.dir/compression.cc.o.d"
  "CMakeFiles/apm_common.dir/crc32.cc.o"
  "CMakeFiles/apm_common.dir/crc32.cc.o.d"
  "CMakeFiles/apm_common.dir/env.cc.o"
  "CMakeFiles/apm_common.dir/env.cc.o.d"
  "CMakeFiles/apm_common.dir/hash.cc.o"
  "CMakeFiles/apm_common.dir/hash.cc.o.d"
  "CMakeFiles/apm_common.dir/histogram.cc.o"
  "CMakeFiles/apm_common.dir/histogram.cc.o.d"
  "CMakeFiles/apm_common.dir/properties.cc.o"
  "CMakeFiles/apm_common.dir/properties.cc.o.d"
  "CMakeFiles/apm_common.dir/random.cc.o"
  "CMakeFiles/apm_common.dir/random.cc.o.d"
  "CMakeFiles/apm_common.dir/status.cc.o"
  "CMakeFiles/apm_common.dir/status.cc.o.d"
  "libapm_common.a"
  "libapm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
