
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/coding.cc" "src/common/CMakeFiles/apm_common.dir/coding.cc.o" "gcc" "src/common/CMakeFiles/apm_common.dir/coding.cc.o.d"
  "/root/repo/src/common/compression.cc" "src/common/CMakeFiles/apm_common.dir/compression.cc.o" "gcc" "src/common/CMakeFiles/apm_common.dir/compression.cc.o.d"
  "/root/repo/src/common/crc32.cc" "src/common/CMakeFiles/apm_common.dir/crc32.cc.o" "gcc" "src/common/CMakeFiles/apm_common.dir/crc32.cc.o.d"
  "/root/repo/src/common/env.cc" "src/common/CMakeFiles/apm_common.dir/env.cc.o" "gcc" "src/common/CMakeFiles/apm_common.dir/env.cc.o.d"
  "/root/repo/src/common/hash.cc" "src/common/CMakeFiles/apm_common.dir/hash.cc.o" "gcc" "src/common/CMakeFiles/apm_common.dir/hash.cc.o.d"
  "/root/repo/src/common/histogram.cc" "src/common/CMakeFiles/apm_common.dir/histogram.cc.o" "gcc" "src/common/CMakeFiles/apm_common.dir/histogram.cc.o.d"
  "/root/repo/src/common/properties.cc" "src/common/CMakeFiles/apm_common.dir/properties.cc.o" "gcc" "src/common/CMakeFiles/apm_common.dir/properties.cc.o.d"
  "/root/repo/src/common/random.cc" "src/common/CMakeFiles/apm_common.dir/random.cc.o" "gcc" "src/common/CMakeFiles/apm_common.dir/random.cc.o.d"
  "/root/repo/src/common/status.cc" "src/common/CMakeFiles/apm_common.dir/status.cc.o" "gcc" "src/common/CMakeFiles/apm_common.dir/status.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
