# Empty compiler generated dependencies file for apm_simstores.
# This may be replaced when dependencies are built.
