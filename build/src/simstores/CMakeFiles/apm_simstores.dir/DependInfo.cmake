
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simstores/models.cc" "src/simstores/CMakeFiles/apm_simstores.dir/models.cc.o" "gcc" "src/simstores/CMakeFiles/apm_simstores.dir/models.cc.o.d"
  "/root/repo/src/simstores/runner.cc" "src/simstores/CMakeFiles/apm_simstores.dir/runner.cc.o" "gcc" "src/simstores/CMakeFiles/apm_simstores.dir/runner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/apm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/apm_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/apm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
