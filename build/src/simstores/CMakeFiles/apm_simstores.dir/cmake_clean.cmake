file(REMOVE_RECURSE
  "CMakeFiles/apm_simstores.dir/models.cc.o"
  "CMakeFiles/apm_simstores.dir/models.cc.o.d"
  "CMakeFiles/apm_simstores.dir/runner.cc.o"
  "CMakeFiles/apm_simstores.dir/runner.cc.o.d"
  "libapm_simstores.a"
  "libapm_simstores.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apm_simstores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
