file(REMOVE_RECURSE
  "libapm_simstores.a"
)
