# Empty compiler generated dependencies file for apm_stores.
# This may be replaced when dependencies are built.
