
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stores/cassandra_store.cc" "src/stores/CMakeFiles/apm_stores.dir/cassandra_store.cc.o" "gcc" "src/stores/CMakeFiles/apm_stores.dir/cassandra_store.cc.o.d"
  "/root/repo/src/stores/factory.cc" "src/stores/CMakeFiles/apm_stores.dir/factory.cc.o" "gcc" "src/stores/CMakeFiles/apm_stores.dir/factory.cc.o.d"
  "/root/repo/src/stores/hbase_store.cc" "src/stores/CMakeFiles/apm_stores.dir/hbase_store.cc.o" "gcc" "src/stores/CMakeFiles/apm_stores.dir/hbase_store.cc.o.d"
  "/root/repo/src/stores/mysql_store.cc" "src/stores/CMakeFiles/apm_stores.dir/mysql_store.cc.o" "gcc" "src/stores/CMakeFiles/apm_stores.dir/mysql_store.cc.o.d"
  "/root/repo/src/stores/redis_store.cc" "src/stores/CMakeFiles/apm_stores.dir/redis_store.cc.o" "gcc" "src/stores/CMakeFiles/apm_stores.dir/redis_store.cc.o.d"
  "/root/repo/src/stores/voldemort_store.cc" "src/stores/CMakeFiles/apm_stores.dir/voldemort_store.cc.o" "gcc" "src/stores/CMakeFiles/apm_stores.dir/voldemort_store.cc.o.d"
  "/root/repo/src/stores/voltdb_store.cc" "src/stores/CMakeFiles/apm_stores.dir/voltdb_store.cc.o" "gcc" "src/stores/CMakeFiles/apm_stores.dir/voltdb_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/apm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/lsm/CMakeFiles/apm_lsm.dir/DependInfo.cmake"
  "/root/repo/build/src/btree/CMakeFiles/apm_btree.dir/DependInfo.cmake"
  "/root/repo/build/src/hashkv/CMakeFiles/apm_hashkv.dir/DependInfo.cmake"
  "/root/repo/build/src/volt/CMakeFiles/apm_volt.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/apm_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/ycsb/CMakeFiles/apm_ycsb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
