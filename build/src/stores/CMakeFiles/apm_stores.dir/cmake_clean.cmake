file(REMOVE_RECURSE
  "CMakeFiles/apm_stores.dir/cassandra_store.cc.o"
  "CMakeFiles/apm_stores.dir/cassandra_store.cc.o.d"
  "CMakeFiles/apm_stores.dir/factory.cc.o"
  "CMakeFiles/apm_stores.dir/factory.cc.o.d"
  "CMakeFiles/apm_stores.dir/hbase_store.cc.o"
  "CMakeFiles/apm_stores.dir/hbase_store.cc.o.d"
  "CMakeFiles/apm_stores.dir/mysql_store.cc.o"
  "CMakeFiles/apm_stores.dir/mysql_store.cc.o.d"
  "CMakeFiles/apm_stores.dir/redis_store.cc.o"
  "CMakeFiles/apm_stores.dir/redis_store.cc.o.d"
  "CMakeFiles/apm_stores.dir/voldemort_store.cc.o"
  "CMakeFiles/apm_stores.dir/voldemort_store.cc.o.d"
  "CMakeFiles/apm_stores.dir/voltdb_store.cc.o"
  "CMakeFiles/apm_stores.dir/voltdb_store.cc.o.d"
  "libapm_stores.a"
  "libapm_stores.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apm_stores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
