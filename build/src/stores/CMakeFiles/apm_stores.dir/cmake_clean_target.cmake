file(REMOVE_RECURSE
  "libapm_stores.a"
)
