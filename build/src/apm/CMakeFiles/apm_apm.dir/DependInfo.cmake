
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apm/agent.cc" "src/apm/CMakeFiles/apm_apm.dir/agent.cc.o" "gcc" "src/apm/CMakeFiles/apm_apm.dir/agent.cc.o.d"
  "/root/repo/src/apm/archive.cc" "src/apm/CMakeFiles/apm_apm.dir/archive.cc.o" "gcc" "src/apm/CMakeFiles/apm_apm.dir/archive.cc.o.d"
  "/root/repo/src/apm/measurement.cc" "src/apm/CMakeFiles/apm_apm.dir/measurement.cc.o" "gcc" "src/apm/CMakeFiles/apm_apm.dir/measurement.cc.o.d"
  "/root/repo/src/apm/queries.cc" "src/apm/CMakeFiles/apm_apm.dir/queries.cc.o" "gcc" "src/apm/CMakeFiles/apm_apm.dir/queries.cc.o.d"
  "/root/repo/src/apm/triggers.cc" "src/apm/CMakeFiles/apm_apm.dir/triggers.cc.o" "gcc" "src/apm/CMakeFiles/apm_apm.dir/triggers.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ycsb/CMakeFiles/apm_ycsb.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/apm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
