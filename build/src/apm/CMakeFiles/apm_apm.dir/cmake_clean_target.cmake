file(REMOVE_RECURSE
  "libapm_apm.a"
)
