# Empty compiler generated dependencies file for apm_apm.
# This may be replaced when dependencies are built.
