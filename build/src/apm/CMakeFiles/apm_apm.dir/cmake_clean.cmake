file(REMOVE_RECURSE
  "CMakeFiles/apm_apm.dir/agent.cc.o"
  "CMakeFiles/apm_apm.dir/agent.cc.o.d"
  "CMakeFiles/apm_apm.dir/archive.cc.o"
  "CMakeFiles/apm_apm.dir/archive.cc.o.d"
  "CMakeFiles/apm_apm.dir/measurement.cc.o"
  "CMakeFiles/apm_apm.dir/measurement.cc.o.d"
  "CMakeFiles/apm_apm.dir/queries.cc.o"
  "CMakeFiles/apm_apm.dir/queries.cc.o.d"
  "CMakeFiles/apm_apm.dir/triggers.cc.o"
  "CMakeFiles/apm_apm.dir/triggers.cc.o.d"
  "libapm_apm.a"
  "libapm_apm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apm_apm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
