# Empty dependencies file for apm_hashkv.
# This may be replaced when dependencies are built.
