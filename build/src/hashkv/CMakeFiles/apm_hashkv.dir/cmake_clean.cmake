file(REMOVE_RECURSE
  "CMakeFiles/apm_hashkv.dir/dict.cc.o"
  "CMakeFiles/apm_hashkv.dir/dict.cc.o.d"
  "CMakeFiles/apm_hashkv.dir/hashkv.cc.o"
  "CMakeFiles/apm_hashkv.dir/hashkv.cc.o.d"
  "libapm_hashkv.a"
  "libapm_hashkv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apm_hashkv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
