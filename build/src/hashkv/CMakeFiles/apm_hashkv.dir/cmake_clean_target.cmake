file(REMOVE_RECURSE
  "libapm_hashkv.a"
)
