file(REMOVE_RECURSE
  "libapm_lsm.a"
)
