# Empty compiler generated dependencies file for apm_lsm.
# This may be replaced when dependencies are built.
