file(REMOVE_RECURSE
  "CMakeFiles/apm_lsm.dir/block_cache.cc.o"
  "CMakeFiles/apm_lsm.dir/block_cache.cc.o.d"
  "CMakeFiles/apm_lsm.dir/bloom.cc.o"
  "CMakeFiles/apm_lsm.dir/bloom.cc.o.d"
  "CMakeFiles/apm_lsm.dir/db.cc.o"
  "CMakeFiles/apm_lsm.dir/db.cc.o.d"
  "CMakeFiles/apm_lsm.dir/iterator.cc.o"
  "CMakeFiles/apm_lsm.dir/iterator.cc.o.d"
  "CMakeFiles/apm_lsm.dir/memtable.cc.o"
  "CMakeFiles/apm_lsm.dir/memtable.cc.o.d"
  "CMakeFiles/apm_lsm.dir/sstable.cc.o"
  "CMakeFiles/apm_lsm.dir/sstable.cc.o.d"
  "CMakeFiles/apm_lsm.dir/version.cc.o"
  "CMakeFiles/apm_lsm.dir/version.cc.o.d"
  "CMakeFiles/apm_lsm.dir/wal.cc.o"
  "CMakeFiles/apm_lsm.dir/wal.cc.o.d"
  "libapm_lsm.a"
  "libapm_lsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apm_lsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
