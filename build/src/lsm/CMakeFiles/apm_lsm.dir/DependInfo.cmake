
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lsm/block_cache.cc" "src/lsm/CMakeFiles/apm_lsm.dir/block_cache.cc.o" "gcc" "src/lsm/CMakeFiles/apm_lsm.dir/block_cache.cc.o.d"
  "/root/repo/src/lsm/bloom.cc" "src/lsm/CMakeFiles/apm_lsm.dir/bloom.cc.o" "gcc" "src/lsm/CMakeFiles/apm_lsm.dir/bloom.cc.o.d"
  "/root/repo/src/lsm/db.cc" "src/lsm/CMakeFiles/apm_lsm.dir/db.cc.o" "gcc" "src/lsm/CMakeFiles/apm_lsm.dir/db.cc.o.d"
  "/root/repo/src/lsm/iterator.cc" "src/lsm/CMakeFiles/apm_lsm.dir/iterator.cc.o" "gcc" "src/lsm/CMakeFiles/apm_lsm.dir/iterator.cc.o.d"
  "/root/repo/src/lsm/memtable.cc" "src/lsm/CMakeFiles/apm_lsm.dir/memtable.cc.o" "gcc" "src/lsm/CMakeFiles/apm_lsm.dir/memtable.cc.o.d"
  "/root/repo/src/lsm/sstable.cc" "src/lsm/CMakeFiles/apm_lsm.dir/sstable.cc.o" "gcc" "src/lsm/CMakeFiles/apm_lsm.dir/sstable.cc.o.d"
  "/root/repo/src/lsm/version.cc" "src/lsm/CMakeFiles/apm_lsm.dir/version.cc.o" "gcc" "src/lsm/CMakeFiles/apm_lsm.dir/version.cc.o.d"
  "/root/repo/src/lsm/wal.cc" "src/lsm/CMakeFiles/apm_lsm.dir/wal.cc.o" "gcc" "src/lsm/CMakeFiles/apm_lsm.dir/wal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/apm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
