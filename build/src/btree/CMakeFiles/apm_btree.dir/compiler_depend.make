# Empty compiler generated dependencies file for apm_btree.
# This may be replaced when dependencies are built.
