file(REMOVE_RECURSE
  "CMakeFiles/apm_btree.dir/btree.cc.o"
  "CMakeFiles/apm_btree.dir/btree.cc.o.d"
  "CMakeFiles/apm_btree.dir/node.cc.o"
  "CMakeFiles/apm_btree.dir/node.cc.o.d"
  "CMakeFiles/apm_btree.dir/pager.cc.o"
  "CMakeFiles/apm_btree.dir/pager.cc.o.d"
  "libapm_btree.a"
  "libapm_btree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apm_btree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
