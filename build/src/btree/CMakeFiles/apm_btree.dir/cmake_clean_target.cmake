file(REMOVE_RECURSE
  "libapm_btree.a"
)
