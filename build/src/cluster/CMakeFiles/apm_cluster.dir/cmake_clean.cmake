file(REMOVE_RECURSE
  "CMakeFiles/apm_cluster.dir/routing.cc.o"
  "CMakeFiles/apm_cluster.dir/routing.cc.o.d"
  "libapm_cluster.a"
  "libapm_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apm_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
