# Empty dependencies file for apm_cluster.
# This may be replaced when dependencies are built.
