file(REMOVE_RECURSE
  "libapm_cluster.a"
)
