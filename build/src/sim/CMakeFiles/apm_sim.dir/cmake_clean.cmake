file(REMOVE_RECURSE
  "CMakeFiles/apm_sim.dir/simulator.cc.o"
  "CMakeFiles/apm_sim.dir/simulator.cc.o.d"
  "libapm_sim.a"
  "libapm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
