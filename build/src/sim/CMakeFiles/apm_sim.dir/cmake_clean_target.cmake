file(REMOVE_RECURSE
  "libapm_sim.a"
)
