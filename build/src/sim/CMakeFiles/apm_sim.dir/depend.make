# Empty dependencies file for apm_sim.
# This may be replaced when dependencies are built.
