# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "records=1000")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_apm_monitoring "/root/repo/build/examples/apm_monitoring" "hosts=4" "metrics=8" "intervals=12")
set_tests_properties(example_apm_monitoring PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_workload_explorer_embedded "/root/repo/build/examples/workload_explorer" "mode=embedded" "store=redis" "records=2000" "seconds=0.5")
set_tests_properties(example_workload_explorer_embedded PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_workload_explorer_sim "/root/repo/build/examples/workload_explorer" "mode=sim" "store=voltdb" "nodes=2" "workload=RW" "seconds=2")
set_tests_properties(example_workload_explorer_sim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_store_comparison "/root/repo/build/examples/store_comparison" "records=1500" "seconds=0.3")
set_tests_properties(example_store_comparison PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_ycsb_cli "/root/repo/build/examples/ycsb_cli" "demo")
set_tests_properties(example_ycsb_cli PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
