# Empty dependencies file for ycsb_cli.
# This may be replaced when dependencies are built.
