file(REMOVE_RECURSE
  "CMakeFiles/ycsb_cli.dir/ycsb_cli.cpp.o"
  "CMakeFiles/ycsb_cli.dir/ycsb_cli.cpp.o.d"
  "ycsb_cli"
  "ycsb_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ycsb_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
