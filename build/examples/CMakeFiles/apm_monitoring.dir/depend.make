# Empty dependencies file for apm_monitoring.
# This may be replaced when dependencies are built.
