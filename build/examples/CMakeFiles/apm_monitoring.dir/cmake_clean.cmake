file(REMOVE_RECURSE
  "CMakeFiles/apm_monitoring.dir/apm_monitoring.cpp.o"
  "CMakeFiles/apm_monitoring.dir/apm_monitoring.cpp.o.d"
  "apm_monitoring"
  "apm_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apm_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
