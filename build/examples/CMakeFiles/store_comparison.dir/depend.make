# Empty dependencies file for store_comparison.
# This may be replaced when dependencies are built.
