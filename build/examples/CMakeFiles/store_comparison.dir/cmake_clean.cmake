file(REMOVE_RECURSE
  "CMakeFiles/store_comparison.dir/store_comparison.cpp.o"
  "CMakeFiles/store_comparison.dir/store_comparison.cpp.o.d"
  "store_comparison"
  "store_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/store_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
