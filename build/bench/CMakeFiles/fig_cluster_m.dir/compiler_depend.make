# Empty compiler generated dependencies file for fig_cluster_m.
# This may be replaced when dependencies are built.
