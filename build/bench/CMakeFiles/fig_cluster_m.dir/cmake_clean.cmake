file(REMOVE_RECURSE
  "CMakeFiles/fig_cluster_m.dir/fig_cluster_m.cc.o"
  "CMakeFiles/fig_cluster_m.dir/fig_cluster_m.cc.o.d"
  "fig_cluster_m"
  "fig_cluster_m.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_cluster_m.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
