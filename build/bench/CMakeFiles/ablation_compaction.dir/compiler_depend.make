# Empty compiler generated dependencies file for ablation_compaction.
# This may be replaced when dependencies are built.
