file(REMOVE_RECURSE
  "CMakeFiles/ablation_compaction.dir/ablation_compaction.cc.o"
  "CMakeFiles/ablation_compaction.dir/ablation_compaction.cc.o.d"
  "ablation_compaction"
  "ablation_compaction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_compaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
