file(REMOVE_RECURSE
  "CMakeFiles/ablation_compression.dir/ablation_compression.cc.o"
  "CMakeFiles/ablation_compression.dir/ablation_compression.cc.o.d"
  "ablation_compression"
  "ablation_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
