# Empty compiler generated dependencies file for fig_bounded.
# This may be replaced when dependencies are built.
