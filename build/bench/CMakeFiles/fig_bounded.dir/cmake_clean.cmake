file(REMOVE_RECURSE
  "CMakeFiles/fig_bounded.dir/fig_bounded.cc.o"
  "CMakeFiles/fig_bounded.dir/fig_bounded.cc.o.d"
  "fig_bounded"
  "fig_bounded.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_bounded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
