file(REMOVE_RECURSE
  "CMakeFiles/fig_cluster_d.dir/fig_cluster_d.cc.o"
  "CMakeFiles/fig_cluster_d.dir/fig_cluster_d.cc.o.d"
  "fig_cluster_d"
  "fig_cluster_d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_cluster_d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
