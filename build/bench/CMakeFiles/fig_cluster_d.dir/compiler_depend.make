# Empty compiler generated dependencies file for fig_cluster_d.
# This may be replaced when dependencies are built.
