# Empty dependencies file for fig_disk_usage.
# This may be replaced when dependencies are built.
