file(REMOVE_RECURSE
  "CMakeFiles/fig_disk_usage.dir/fig_disk_usage.cc.o"
  "CMakeFiles/fig_disk_usage.dir/fig_disk_usage.cc.o.d"
  "fig_disk_usage"
  "fig_disk_usage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_disk_usage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
