file(REMOVE_RECURSE
  "CMakeFiles/micro_engines.dir/micro_engines.cc.o"
  "CMakeFiles/micro_engines.dir/micro_engines.cc.o.d"
  "micro_engines"
  "micro_engines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_engines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
