// Workload explorer: define a custom operation mix on the command line
// and run it either against an embedded store (real engines, wall-clock
// time) or against a simulated cluster (the paper's scaling substrate).
//
//   ./workload_explorer mode=embedded store=redis read=0.3 insert=0.7
//   ./workload_explorer mode=sim store=cassandra nodes=8 workload=RSW

#include <cstdio>
#include <memory>
#include <string>

#include "common/env.h"
#include "common/properties.h"
#include "simstores/runner.h"
#include "stores/factory.h"
#include "ycsb/client.h"
#include "ycsb/workload.h"

using namespace apmbench;

namespace {

int RunEmbedded(const Properties& args) {
  const std::string store_name = args.GetString("store", "cassandra");
  std::string dir = "/tmp/apmbench-explorer";
  Env::Default()->RemoveDirRecursively(dir);
  stores::StoreOptions options;
  options.base_dir = dir;
  options.num_nodes = static_cast<int>(args.GetInt("nodes", 2));
  std::unique_ptr<ycsb::DB> db;
  Status status = stores::CreateStore(store_name, options, &db);
  if (!status.ok()) {
    fprintf(stderr, "open: %s\n", status.ToString().c_str());
    return 1;
  }

  Properties props;
  if (args.Contains("workload")) {
    Status preset =
        ycsb::CoreWorkload::Table1Preset(args.GetString("workload"), &props);
    if (!preset.ok()) {
      fprintf(stderr, "%s\n", preset.ToString().c_str());
      return 2;
    }
  }
  // Explicit proportions override the preset.
  for (const char* key : {"read", "insert", "scan", "update", "delete"}) {
    if (args.Contains(key)) {
      props.Set(std::string(key) + "proportion", args.GetString(key));
    }
  }
  props.Set("recordcount", args.GetString("records", "20000"));
  if (args.Contains("distribution")) {
    props.Set("requestdistribution", args.GetString("distribution"));
  }
  ycsb::CoreWorkload workload(props);

  printf("loading %llu records into embedded %s (%lld nodes)...\n",
         static_cast<unsigned long long>(workload.record_count()),
         store_name.c_str(), args.GetInt("nodes", 2));
  status = ycsb::LoadDatabase(db.get(), &workload, 4);
  if (!status.ok()) {
    fprintf(stderr, "load: %s\n", status.ToString().c_str());
    return 1;
  }

  ycsb::RunConfig config;
  config.threads = static_cast<int>(args.GetInt("threads", 8));
  config.duration_seconds = args.GetDouble("seconds", 3.0);
  ycsb::RunResult result;
  status = ycsb::RunWorkload(db.get(), &workload, config, &result);
  if (!status.ok()) {
    fprintf(stderr, "run: %s\n", status.ToString().c_str());
    return 1;
  }
  printf("\n%s", result.Summary().c_str());
  db.reset();
  Env::Default()->RemoveDirRecursively(dir);
  return 0;
}

int RunSimulated(const Properties& args) {
  const std::string store_name = args.GetString("store", "cassandra");
  int nodes = static_cast<int>(args.GetInt("nodes", 8));
  simstores::WorkloadSpec spec =
      simstores::WorkloadSpec::Preset(args.GetString("workload", "R"));
  if (args.Contains("read")) spec.read = args.GetDouble("read");
  if (args.Contains("scan")) spec.scan = args.GetDouble("scan");
  if (args.Contains("insert")) spec.insert = args.GetDouble("insert");

  simstores::ClusterParams cluster =
      args.GetString("cluster", "M") == "D"
          ? simstores::ClusterParams::ClusterD(nodes)
          : simstores::ClusterParams::ClusterM(nodes);
  simstores::SimRunConfig config;
  config.duration_seconds = args.GetDouble("seconds", 8.0);
  config.warmup_seconds = config.duration_seconds * 0.2;
  config.arrival_rate_ops_sec = args.GetDouble("rate", 0.0);

  simstores::SimResult result;
  Status status =
      simstores::RunSimulation(store_name, cluster, spec, config, &result);
  if (!status.ok()) {
    fprintf(stderr, "sim: %s\n", status.ToString().c_str());
    return 1;
  }
  printf("simulated %s on %d nodes (mix r=%.2f s=%.2f i=%.2f):\n",
         store_name.c_str(), nodes, spec.read, spec.scan, spec.insert);
  printf("  throughput  %.0f ops/sec\n", result.throughput_ops_sec);
  printf("  read lat    %.3f ms (p99 %.3f)\n",
         result.MeanLatencyMs(simstores::OpKind::kRead),
         result.latency(simstores::OpKind::kRead).Percentile(0.99) / 1000.0);
  printf("  write lat   %.3f ms\n",
         result.MeanLatencyMs(simstores::OpKind::kInsert));
  if (spec.scan > 0) {
    printf("  scan lat    %.3f ms\n",
           result.MeanLatencyMs(simstores::OpKind::kScan));
  }
  printf("  (%llu simulated events)\n",
         static_cast<unsigned long long>(result.events));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Properties args;
  for (int i = 1; i < argc; i++) {
    if (!args.ParseArg(argv[i]).ok()) {
      fprintf(stderr,
              "usage: %s mode=embedded|sim store=<name> [workload=R|RW|W|RS|"
              "RSW] [read=..] [insert=..] [scan=..] [nodes=N] [seconds=S]\n",
              argv[0]);
      return 2;
    }
  }
  if (args.GetString("mode", "embedded") == "sim") {
    return RunSimulated(args);
  }
  return RunEmbedded(args);
}
