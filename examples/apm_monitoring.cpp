// The motivating APM scenario end to end: a fleet of monitoring agents
// reports aggregated measurements (Figure 2 records) into a store every
// interval, while an operator dashboard runs the Section-2 on-line
// queries against the most recent window.
//
//   ./apm_monitoring [store=cassandra] [hosts=20] [metrics=50] [intervals=30]

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "apm/agent.h"
#include "apm/archive.h"
#include "apm/queries.h"
#include "apm/triggers.h"
#include "common/clock.h"
#include "common/env.h"
#include "common/properties.h"
#include "stores/factory.h"

using namespace apmbench;

int main(int argc, char** argv) {
  Properties args;
  for (int i = 1; i < argc; i++) {
    if (!args.ParseArg(argv[i]).ok()) {
      fprintf(stderr,
              "usage: %s [store=cassandra] [hosts=20] [metrics=50] "
              "[intervals=30]\n",
              argv[0]);
      return 2;
    }
  }
  const std::string store_name = args.GetString("store", "cassandra");
  apm::FleetConfig fleet_config;
  fleet_config.hosts = static_cast<int>(args.GetInt("hosts", 20));
  fleet_config.metrics_per_host =
      static_cast<int>(args.GetInt("metrics", 50));
  const int intervals = static_cast<int>(args.GetInt("intervals", 30));

  std::string dir = "/tmp/apmbench-monitoring";
  Env::Default()->RemoveDirRecursively(dir);
  stores::StoreOptions options;
  options.base_dir = dir;
  options.num_nodes = 2;
  std::unique_ptr<ycsb::DB> db;
  Status status = stores::CreateStore(store_name, options, &db);
  if (!status.ok()) {
    fprintf(stderr, "open: %s\n", status.ToString().c_str());
    return 1;
  }

  apm::AgentFleet fleet(fleet_config);
  printf("fleet: %d hosts x %d metrics @ %us intervals = %.0f "
         "measurements/sec sustained\n",
         fleet_config.hosts, fleet_config.metrics_per_host,
         fleet_config.interval_seconds, fleet.measurements_per_second());

  // Live triggers (Section 2: "metrics are monitored by certain triggers
  // that issue notifications in extreme cases"): watch one metric per
  // host for a high-threshold breach sustained over two intervals.
  apm::TriggerEngine triggers;
  for (int host = 0; host < fleet_config.hosts; host++) {
    apm::TriggerRule rule;
    rule.metric = fleet.MetricName(host, 1);
    rule.threshold = 95.0;
    rule.consecutive_intervals = 2;
    triggers.AddRule(rule);
  }

  const uint64_t t0 = 1700000000;  // fixed epoch for reproducible keys
  uint64_t written = 0;
  uint64_t ingest_start = NowMicros();
  for (int i = 0; i < intervals; i++) {
    uint64_t ts = t0 + static_cast<uint64_t>(i) * fleet_config.interval_seconds;
    for (const apm::Measurement& m : fleet.Tick(ts)) {
      status = apm::MeasurementCodec::Write(db.get(), "apm", m);
      if (!status.ok()) {
        fprintf(stderr, "ingest: %s\n", status.ToString().c_str());
        return 1;
      }
      written++;
      for (const apm::Notification& n : triggers.Observe(m)) {
        printf("ALERT  %s = %.2f > %.1f at t=%llu (%d intervals)\n",
               n.metric.c_str(), n.value, n.threshold,
               static_cast<unsigned long long>(n.timestamp),
               n.breached_intervals);
      }
    }
  }
  double ingest_seconds =
      static_cast<double>(NowMicros() - ingest_start) / 1e6;
  printf("ingested %llu measurements (%d intervals) in %.2fs "
         "(%.0f inserts/sec through the embedded store); %llu alerts "
         "fired\n",
         static_cast<unsigned long long>(written), intervals, ingest_seconds,
         static_cast<double>(written) / ingest_seconds,
         static_cast<unsigned long long>(triggers.notifications_fired()));

  // On-line query 1: "maximum number of connections on host X within the
  // last 10 minutes" -> max over one metric's recent window.
  uint64_t t_end = t0 + static_cast<uint64_t>(intervals - 1) *
                            fleet_config.interval_seconds;
  uint64_t t_window = t_end >= 600 ? t_end - 600 : 0;
  std::string metric = fleet.MetricName(3, 7);
  apm::WindowAggregate window;
  status = apm::WindowQuery(db.get(), "apm", metric, t_window, t_end, &window);
  if (status.ok()) {
    printf("\nQ1  max(%s) over last 10 min: %.2f  (%d samples, avg %.2f)\n",
           metric.c_str(), window.max, window.samples, window.avg);
  } else {
    printf("\nQ1  %s\n", status.ToString().c_str());
  }

  // On-line query 2: "average CPU utilization of Web servers of type Y
  // within the last 15 minutes" -> fleet average across hosts.
  std::vector<std::string> web_servers;
  for (int host = 0; host < fleet_config.hosts; host += 2) {
    web_servers.push_back(fleet.MetricName(host, 0));
  }
  uint64_t t_window15 = t_end >= 900 ? t_end - 900 : 0;
  apm::WindowAggregate fleet_avg;
  status = apm::FleetAverage(db.get(), "apm", web_servers, t_window15, t_end,
                             &fleet_avg);
  if (status.ok()) {
    printf("Q2  avg(metric0 across %zu web servers) over last 15 min: "
           "%.2f  (min %.2f, max %.2f, %d samples)\n",
           web_servers.size(), fleet_avg.avg, fleet_avg.min, fleet_avg.max,
           fleet_avg.samples);
  } else {
    printf("Q2  %s\n", status.ToString().c_str());
  }

  // Archive query (Section 2's analytical class): a bucketed series over
  // the full retained history of one metric.
  std::vector<apm::SeriesPoint> series;
  status = apm::ArchiveSeries(db.get(), "apm", fleet.MetricName(0, 0), t0,
                              t_end, 60, &series);
  if (status.ok()) {
    printf("Q3  archive series of %s (60s buckets): %zu buckets, first "
           "avg=%.2f, last avg=%.2f\n",
           fleet.MetricName(0, 0).c_str(), series.size(),
           series.front().avg, series.back().avg);
  } else {
    printf("Q3  %s\n", status.ToString().c_str());
  }

  db.reset();
  Env::Default()->RemoveDirRecursively(dir);
  return 0;
}
