// Quickstart: open an embedded store, write and read APM-style records
// through the public ycsb::DB API, and run a small benchmark against it.
//
//   ./quickstart [store=cassandra] [records=5000]

#include <cstdio>
#include <memory>
#include <string>

#include "common/env.h"
#include "common/properties.h"
#include "stores/factory.h"
#include "ycsb/client.h"
#include "ycsb/workload.h"

using namespace apmbench;

int main(int argc, char** argv) {
  Properties args;
  for (int i = 1; i < argc; i++) {
    if (!args.ParseArg(argv[i]).ok()) {
      fprintf(stderr, "usage: %s [store=cassandra] [records=5000]\n",
              argv[0]);
      return 2;
    }
  }
  const std::string store_name = args.GetString("store", "cassandra");
  const int64_t records = args.GetInt("records", 5000);

  // 1. Open a store (a 3-node embedded deployment of the chosen
  //    architecture) under a scratch directory.
  std::string dir = "/tmp/apmbench-quickstart";
  Env::Default()->RemoveDirRecursively(dir);
  stores::StoreOptions options;
  options.base_dir = dir;
  options.num_nodes = 3;
  std::unique_ptr<ycsb::DB> db;
  Status status = stores::CreateStore(store_name, options, &db);
  if (!status.ok()) {
    fprintf(stderr, "open %s: %s\n", store_name.c_str(),
            status.ToString().c_str());
    return 1;
  }
  printf("opened a 3-node embedded '%s' store under %s\n",
         store_name.c_str(), dir.c_str());

  // 2. Basic CRUD through the DB interface.
  ycsb::Record record = {{"field0", "42.5      "},
                         {"field1", "40.1      "},
                         {"field2", "44.0      "},
                         {"field3", "1332988833"},
                         {"field4", "10        "}};
  status = db->Insert("usertable", "userdemo00000000000000001", record);
  printf("insert: %s\n", status.ToString().c_str());

  ycsb::Record read_back;
  status = db->Read("usertable", "userdemo00000000000000001", &read_back);
  printf("read:   %s (%zu fields)\n", status.ToString().c_str(),
         read_back.size());

  // 3. Load a YCSB dataset and run the paper's Workload W (the APM mix:
  //    99% inserts) for a couple of seconds.
  Properties props;
  Status preset = ycsb::CoreWorkload::Table1Preset("W", &props);
  if (!preset.ok()) return 1;
  props.Set("recordcount", std::to_string(records));
  ycsb::CoreWorkload workload(props);

  printf("loading %lld records...\n", static_cast<long long>(records));
  status = ycsb::LoadDatabase(db.get(), &workload, 4);
  if (!status.ok()) {
    fprintf(stderr, "load: %s\n", status.ToString().c_str());
    return 1;
  }

  ycsb::RunConfig config;
  config.threads = 4;
  config.duration_seconds = 2.0;
  ycsb::RunResult result;
  status = ycsb::RunWorkload(db.get(), &workload, config, &result);
  if (!status.ok()) {
    fprintf(stderr, "run: %s\n", status.ToString().c_str());
    return 1;
  }
  printf("\nWorkload W against %s:\n%s", store_name.c_str(),
         result.Summary().c_str());

  uint64_t disk = 0;
  if (db->DiskUsage(&disk).ok() && disk > 0) {
    printf("disk usage: %.1f MB\n", static_cast<double>(disk) / 1e6);
  }
  db.reset();
  Env::Default()->RemoveDirRecursively(dir);
  return 0;
}
