// Hosts any of the embedded stores behind the epoll binary-protocol
// server (src/net), so YCSB clients can drive it over TCP:
//
//   ./store_server store=cassandra dir=/tmp/db nodes=4 port=7421
//   ./ycsb_cli load store=remote addr=127.0.0.1:7421 connections=64 ...
//
// port=0 binds an ephemeral port; portfile=F writes the bound port there
// once the server is listening (how scripts and CI synchronize startup).
// seconds=S exits after S seconds; otherwise the server runs until
// SIGINT/SIGTERM. See docs/serving.md.

#include <chrono>
#include <csignal>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>

#include "common/properties.h"
#include "net/server.h"
#include "stores/factory.h"

using namespace apmbench;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

int Usage(const char* argv0) {
  fprintf(stderr,
          "usage: %s [store=<name>] [dir=<path>] [nodes=N] [host=H] "
          "[port=P] [portfile=F]\n"
          "          [event_threads=N] [workers=N] [pipeline=N] "
          "[seconds=S] [<store property>=<value> ...]\n"
          "stores: cassandra hbase voldemort redis voltdb mysql\n",
          argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Properties args;
  for (int i = 1; i < argc; i++) {
    if (!args.ParseArg(argv[i]).ok()) return Usage(argv[0]);
  }

  stores::StoreOptions store_options;
  store_options.base_dir = args.GetString("dir", "/tmp/apmbench-served");
  store_options.num_nodes = static_cast<int>(args.GetInt("nodes", 1));
  store_options.mysql_limit_scans = args.GetBool("mysql_limit_scans", false);
  store_options.redis_aof = args.GetBool("redis_aof", false);
  if (args.GetString("compression") == "lz") {
    store_options.lsm_compression = CompressionType::kLz;
  }
  std::string store_name = args.GetString("store", "cassandra");
  std::unique_ptr<ycsb::DB> db;
  Status status = stores::CreateStore(store_name, store_options, &db);
  if (!status.ok()) {
    fprintf(stderr, "open %s: %s\n", store_name.c_str(),
            status.ToString().c_str());
    return 1;
  }

  net::ServerOptions server_options;
  server_options.host = args.GetString("host", "127.0.0.1");
  server_options.port = static_cast<int>(args.GetInt("port", 7421));
  server_options.event_threads =
      static_cast<int>(args.GetInt("event_threads", 2));
  server_options.worker_threads = static_cast<int>(args.GetInt("workers", 8));
  server_options.max_pipeline =
      static_cast<size_t>(args.GetInt("pipeline", 1024));
  net::Server server(server_options, db.get());
  status = server.Start();
  if (!status.ok()) {
    fprintf(stderr, "start: %s\n", status.ToString().c_str());
    return 1;
  }
  printf("[store_server] %s on %s, listening on port %d "
         "(%d event threads, %d workers)\n",
         store_name.c_str(), store_options.base_dir.c_str(), server.port(),
         server_options.event_threads, server_options.worker_threads);
  fflush(stdout);
  std::string portfile = args.GetString("portfile", "");
  if (!portfile.empty()) {
    FILE* f = fopen(portfile.c_str(), "w");
    if (f == nullptr) {
      fprintf(stderr, "cannot write portfile %s\n", portfile.c_str());
      return 1;
    }
    fprintf(f, "%d\n", server.port());
    fclose(f);
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  double seconds = args.GetDouble("seconds", 0.0);
  double elapsed = 0.0;
  while (!g_stop && (seconds <= 0.0 || elapsed < seconds)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    elapsed += 0.1;
  }

  net::Server::Stats stats = server.GetStats();
  server.Stop();
  printf("[store_server] shut down: %llu connections, %llu requests, "
         "%llu batches, %.1f MB in, %.1f MB out, %llu bad frames\n",
         static_cast<unsigned long long>(stats.accepted),
         static_cast<unsigned long long>(stats.requests),
         static_cast<unsigned long long>(stats.batches),
         static_cast<double>(stats.bytes_in) / 1e6,
         static_cast<double>(stats.bytes_out) / 1e6,
         static_cast<unsigned long long>(stats.bad_frames));
  return 0;
}
