// Mini in-process reproduction of the paper's comparison: runs one
// workload against all six embedded stores (real engines, real files) and
// prints a side-by-side table. Useful for sanity-checking the relative
// behaviors on a laptop before reaching for the cluster simulator.
//
//   ./store_comparison [workload=W] [records=10000] [seconds=2]

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/properties.h"
#include "stores/factory.h"
#include "ycsb/client.h"
#include "ycsb/workload.h"

using namespace apmbench;

int main(int argc, char** argv) {
  Properties args;
  for (int i = 1; i < argc; i++) {
    if (!args.ParseArg(argv[i]).ok()) {
      fprintf(stderr,
              "usage: %s [workload=W] [records=10000] [seconds=2]\n",
              argv[0]);
      return 2;
    }
  }
  const std::string workload_name = args.GetString("workload", "W");
  const int64_t records = args.GetInt("records", 10000);
  const double seconds = args.GetDouble("seconds", 2.0);

  printf("Embedded store comparison: workload %s, %lld records, %.1fs per "
         "store (2 nodes each)\n\n",
         workload_name.c_str(), static_cast<long long>(records), seconds);
  printf("%-11s %12s %12s %12s %12s %10s\n", "store", "ops/sec", "read ms",
         "write ms", "scan ms", "disk MB");

  for (const std::string& store_name : stores::StoreNames()) {
    Properties props;
    Status status = ycsb::CoreWorkload::Table1Preset(workload_name, &props);
    if (!status.ok()) {
      fprintf(stderr, "%s\n", status.ToString().c_str());
      return 2;
    }
    bool has_scans = props.GetDouble("scanproportion") > 0;
    if (has_scans && !stores::StoreSupportsScans(store_name)) {
      printf("%-11s %12s (no scan support, as in the paper)\n",
             store_name.c_str(), "-");
      continue;
    }

    std::string dir = "/tmp/apmbench-comparison";
    Env::Default()->RemoveDirRecursively(dir);
    stores::StoreOptions options;
    options.base_dir = dir;
    options.num_nodes = 2;
    std::unique_ptr<ycsb::DB> db;
    status = stores::CreateStore(store_name, options, &db);
    if (!status.ok()) {
      printf("%-11s open failed: %s\n", store_name.c_str(),
             status.ToString().c_str());
      continue;
    }

    props.Set("recordcount", std::to_string(records));
    ycsb::CoreWorkload workload(props);
    status = ycsb::LoadDatabase(db.get(), &workload, 4);
    if (!status.ok()) {
      printf("%-11s load failed: %s\n", store_name.c_str(),
             status.ToString().c_str());
      continue;
    }

    ycsb::RunConfig config;
    config.threads = 8;
    config.duration_seconds = seconds;
    ycsb::RunResult result;
    status = ycsb::RunWorkload(db.get(), &workload, config, &result);
    if (!status.ok()) {
      printf("%-11s run failed: %s\n", store_name.c_str(),
             status.ToString().c_str());
      continue;
    }

    uint64_t disk = 0;
    db->DiskUsage(&disk);
    auto ms_or_dash = [&](ycsb::OpType type) {
      double ms = result.MeanLatencyMs(type);
      char buf[32];
      if (ms <= 0) return std::string("-");
      snprintf(buf, sizeof(buf), "%.3f", ms);
      return std::string(buf);
    };
    printf("%-11s %12.0f %12s %12s %12s %10.1f\n", store_name.c_str(),
           result.throughput_ops_sec, ms_or_dash(ycsb::OpType::kRead).c_str(),
           ms_or_dash(ycsb::OpType::kInsert).c_str(),
           ms_or_dash(ycsb::OpType::kScan).c_str(),
           static_cast<double>(disk) / 1e6);
    db.reset();
    Env::Default()->RemoveDirRecursively(dir);
  }
  printf("\nNote: these are real single-process engines; the paper's "
         "multi-node scaling figures come from bench/fig_cluster_m.\n");
  return 0;
}
