// A YCSB-style command-line benchmark driver, mirroring the original
// tool's load/run phases:
//
//   ./ycsb_cli load store=cassandra dir=/tmp/db recordcount=100000
//   ./ycsb_cli run  store=cassandra dir=/tmp/db workload=W threads=32 seconds=30
//   ./ycsb_cli run  ... propertyfile=myworkload.properties
//   ./ycsb_cli run  ... target=50000 warmup=5 interval=1 series_json=run.json
//
// With no arguments it runs a short self-contained demo (load + run).
// Any CoreWorkload property (readproportion=, requestdistribution=, ...)
// can be passed directly as key=value.
//
// Paced runs (target=) record both measured and intended latency; with
// interval=S the runner collects a per-window time series (throughput,
// p50/p95/p99 of both latencies) exportable as JSON (series_json=) or CSV
// (series_csv=); "-" writes to stdout. bench/fig_bounded consumes the
// JSON (see docs/measurement.md).

#include <cstdio>
#include <memory>
#include <string>

#include "common/clock.h"
#include "common/env.h"
#include "common/properties.h"
#include "net/remote_store.h"
#include "stores/factory.h"
#include "ycsb/client.h"
#include "ycsb/timeseries.h"
#include "ycsb/workload.h"

using namespace apmbench;

namespace {

int Usage(const char* argv0) {
  fprintf(stderr,
          "usage: %s [load|run|demo] [store=<name>] [dir=<path>] "
          "[nodes=N] [workload=R|RW|W|RS|RSW] [threads=N]\n"
          "          [recordcount=N] [operationcount=N] [seconds=S] "
          "[target=OPS] [warmup=S] [interval=S] [status=S]\n"
          "          [series_json=F|-] [series_csv=F|-] [propertyfile=F] "
          "[<property>=<value> ...]\n"
          "stores: cassandra hbase voldemort redis voltdb mysql\n"
          "        remote (addr=host:port connections=N, see store_server)\n",
          argv0);
  return 2;
}

/// store=remote drives a store_server over the binary protocol instead of
/// an embedded engine: addr=host:port connections=N [pipeline=N].
Status OpenRemoteStore(const Properties& args,
                       std::unique_ptr<ycsb::DB>* db) {
  net::ClientOptions options;
  std::string addr = args.GetString("addr", "127.0.0.1:7421");
  size_t colon = addr.rfind(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument("addr must be host:port, got " + addr);
  }
  options.host = addr.substr(0, colon);
  options.port = std::stoi(addr.substr(colon + 1));
  options.connections = static_cast<int>(args.GetInt("connections", 8));
  options.max_pipeline =
      static_cast<size_t>(args.GetInt("pipeline", 128));
  std::unique_ptr<net::RemoteStore> remote;
  APM_RETURN_IF_ERROR(net::RemoteStore::Open(options, &remote));
  *db = std::move(remote);
  return Status::OK();
}

Status OpenStore(const Properties& args, std::unique_ptr<ycsb::DB>* db) {
  if (args.GetString("store") == "remote") return OpenRemoteStore(args, db);
  stores::StoreOptions options;
  options.base_dir = args.GetString("dir", "/tmp/apmbench-ycsb");
  options.num_nodes = static_cast<int>(args.GetInt("nodes", 1));
  options.mysql_limit_scans = args.GetBool("mysql_limit_scans", false);
  options.redis_aof = args.GetBool("redis_aof", false);
  if (args.GetString("compression") == "lz") {
    options.lsm_compression = CompressionType::kLz;
  }
  return stores::CreateStore(args.GetString("store", "cassandra"), options,
                             db);
}

Status MakeWorkloadProps(const Properties& args, Properties* props) {
  std::string workload_name = args.GetString("workload", "");
  if (!workload_name.empty()) {
    APM_RETURN_IF_ERROR(
        ycsb::CoreWorkload::Table1Preset(workload_name, props));
  }
  // Pass-through of explicit workload properties (override the preset).
  props->Merge(args);
  return ycsb::CoreWorkload::Validate(*props);
}

/// Writes `content` to `path`, or to stdout when path is "-".
int WriteOutput(const std::string& path, const std::string& content,
                const char* what) {
  if (path == "-") {
    printf("%s", content.c_str());
    return 0;
  }
  FILE* f = fopen(path.c_str(), "w");
  if (f == nullptr) {
    fprintf(stderr, "cannot write %s to %s\n", what, path.c_str());
    return 1;
  }
  fwrite(content.data(), 1, content.size(), f);
  fclose(f);
  printf("[run] wrote %s to %s\n", what, path.c_str());
  return 0;
}

int DoLoad(const Properties& args) {
  std::unique_ptr<ycsb::DB> db;
  Status status = OpenStore(args, &db);
  if (!status.ok()) {
    fprintf(stderr, "open: %s\n", status.ToString().c_str());
    return 1;
  }
  Properties props;
  status = MakeWorkloadProps(args, &props);
  if (!status.ok()) {
    fprintf(stderr, "workload: %s\n", status.ToString().c_str());
    return 1;
  }
  ycsb::CoreWorkload workload(props);
  int threads = static_cast<int>(args.GetInt("threads", 8));
  printf("[load] %llu records into %s (%lld nodes), %d loader threads\n",
         static_cast<unsigned long long>(workload.record_count()),
         args.GetString("store", "cassandra").c_str(),
         static_cast<long long>(args.GetInt("nodes", 1)), threads);
  uint64_t start = NowMicros();
  status = ycsb::LoadDatabase(db.get(), &workload, threads);
  if (!status.ok()) {
    fprintf(stderr, "load: %s\n", status.ToString().c_str());
    return 1;
  }
  double seconds = static_cast<double>(NowMicros() - start) / 1e6;
  printf("[load] done in %.2fs (%.0f inserts/sec)\n", seconds,
         static_cast<double>(workload.record_count()) / seconds);
  uint64_t disk = 0;
  if (db->DiskUsage(&disk).ok() && disk > 0) {
    printf("[load] disk usage %.1f MB (%.1f bytes/record)\n",
           static_cast<double>(disk) / 1e6,
           static_cast<double>(disk) /
               static_cast<double>(workload.record_count()));
  }
  return 0;
}

int DoRun(const Properties& args) {
  std::unique_ptr<ycsb::DB> db;
  Status status = OpenStore(args, &db);
  if (!status.ok()) {
    fprintf(stderr, "open: %s\n", status.ToString().c_str());
    return 1;
  }
  Properties props;
  status = MakeWorkloadProps(args, &props);
  if (!status.ok()) {
    fprintf(stderr, "workload: %s\n", status.ToString().c_str());
    return 1;
  }
  ycsb::CoreWorkload workload(props);
  ycsb::RunConfig config;
  config.threads = static_cast<int>(args.GetInt("threads", 8));
  config.operation_count =
      static_cast<uint64_t>(args.GetInt("operationcount", 0));
  config.duration_seconds = args.GetDouble("seconds", 10.0);
  config.warmup_seconds = args.GetDouble("warmup", 0.0);
  config.target_ops_per_sec = args.GetDouble("target", 0.0);
  std::string series_json = args.GetString("series_json", "");
  std::string series_csv = args.GetString("series_csv", "");
  // A series export without an explicit window defaults to 1-second
  // windows (SciTS-style latency-over-time reporting).
  double default_window =
      !series_json.empty() || !series_csv.empty() ? 1.0 : 0.0;
  config.time_series_window_seconds =
      args.GetDouble("interval", default_window);
  config.status_interval_seconds = args.GetDouble("status", 0.0);
  if (config.status_interval_seconds > 0) {
    config.status_callback = [](double elapsed, uint64_t total,
                                double rate) {
      printf("[status] t=%.1fs ops=%llu cur=%.0f ops/sec\n", elapsed,
             static_cast<unsigned long long>(total), rate);
      fflush(stdout);
    };
    config.window_callback = [](const ycsb::TimeSeriesPoint& p) {
      printf("[status] window t=%.1fs %.0f ops/sec p99=%lluus "
             "intended_p99=%lluus\n",
             p.t_seconds, p.ops_per_sec,
             static_cast<unsigned long long>(p.measured_p99_us),
             static_cast<unsigned long long>(p.intended_p99_us));
      fflush(stdout);
    };
  }
  printf("[run] store=%s workload=%s threads=%d %s\n",
         args.GetString("store", "cassandra").c_str(),
         args.GetString("workload", "(custom)").c_str(), config.threads,
         config.operation_count > 0
             ? ("ops=" + std::to_string(config.operation_count)).c_str()
             : ("seconds=" + std::to_string(config.duration_seconds)).c_str());
  ycsb::RunResult result;
  status = ycsb::RunWorkload(db.get(), &workload, config, &result);
  if (!status.ok()) {
    fprintf(stderr, "run: %s\n", status.ToString().c_str());
    return 1;
  }
  printf("%s", result.Summary().c_str());
  int rc = 0;
  if (!series_json.empty()) {
    rc |= WriteOutput(series_json, result.time_series.ToJson(),
                      "time series JSON");
  }
  if (!series_csv.empty()) {
    rc |= WriteOutput(series_csv, result.time_series.ToCsv(),
                      "time series CSV");
  }
  return rc;
}

int DoDemo() {
  printf("No arguments: running the built-in demo (Workload W on an "
         "embedded 2-node cassandra store).\n\n");
  Env::Default()->RemoveDirRecursively("/tmp/apmbench-ycsb");
  Properties args;
  args.Set("store", "cassandra");
  args.Set("nodes", "2");
  args.Set("workload", "W");
  args.Set("recordcount", "20000");
  args.Set("seconds", "2");
  int rc = DoLoad(args);
  if (rc != 0) return rc;
  rc = DoRun(args);
  Env::Default()->RemoveDirRecursively("/tmp/apmbench-ycsb");
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return DoDemo();
  std::string command = argv[1];
  Properties args;
  for (int i = 2; i < argc; i++) {
    if (!args.ParseArg(argv[i]).ok()) return Usage(argv[0]);
  }
  if (args.Contains("propertyfile")) {
    Properties file_props;
    Status status = file_props.LoadFile(args.GetString("propertyfile"));
    if (!status.ok()) {
      fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    file_props.Merge(args);  // command line wins
    args = file_props;
  }
  if (command == "load") return DoLoad(args);
  if (command == "run") return DoRun(args);
  if (command == "demo") return DoDemo();
  return Usage(argv[0]);
}
