#include "cluster/membership.h"

#include <cassert>

#include "common/clock.h"

namespace apmbench::cluster {

Membership::Membership(int num_nodes, MembershipOptions options)
    : options_(std::move(options)),
      nodes_(static_cast<size_t>(num_nodes)) {
  assert(num_nodes > 0);
  if (options_.error_threshold < 1) options_.error_threshold = 1;
}

uint64_t Membership::Now() const {
  return options_.now_micros ? options_.now_micros() : NowMicros();
}

Membership::NodeState Membership::StateOfLocked(const Node& n) const {
  if (!n.down) return NodeState::kUp;
  if (Now() >= n.down_since + options_.probation_micros) {
    return NodeState::kProbation;
  }
  return NodeState::kDown;
}

Membership::NodeState Membership::StateOf(int node) const {
  std::lock_guard<std::mutex> lock(mu_);
  return StateOfLocked(nodes_[static_cast<size_t>(node)]);
}

bool Membership::IsLive(int node) const {
  std::lock_guard<std::mutex> lock(mu_);
  return !nodes_[static_cast<size_t>(node)].down;
}

bool Membership::TryClaimProbe(int node) {
  std::lock_guard<std::mutex> lock(mu_);
  Node& n = nodes_[static_cast<size_t>(node)];
  if (StateOfLocked(n) != NodeState::kProbation || n.probe_inflight) {
    return false;
  }
  n.probe_inflight = true;
  counters_.probes_claimed++;
  return true;
}

void Membership::ReportSuccess(int node) {
  std::lock_guard<std::mutex> lock(mu_);
  Node& n = nodes_[static_cast<size_t>(node)];
  n.consecutive_errors = 0;
  n.probe_inflight = false;
  if (n.down) {
    n.down = false;
    counters_.transitions_up++;
    recovered_.push_back(node);
  }
}

void Membership::MarkDownLocked(Node* n) {
  n->consecutive_errors = 0;
  n->probe_inflight = false;
  n->down_since = Now();
  if (!n->down) {
    n->down = true;
    counters_.transitions_down++;
  }
}

void Membership::ReportError(int node) {
  std::lock_guard<std::mutex> lock(mu_);
  Node& n = nodes_[static_cast<size_t>(node)];
  if (n.down) {
    // A failed probe (or a straggler request issued before the node went
    // down): restart the probation timer.
    MarkDownLocked(&n);
    return;
  }
  if (++n.consecutive_errors >= options_.error_threshold) {
    MarkDownLocked(&n);
  }
}

void Membership::MarkDown(int node) {
  std::lock_guard<std::mutex> lock(mu_);
  MarkDownLocked(&nodes_[static_cast<size_t>(node)]);
}

std::vector<int> Membership::TakeRecovered() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<int> out;
  out.swap(recovered_);
  return out;
}

Membership::Counters Membership::GetCounters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

}  // namespace apmbench::cluster
