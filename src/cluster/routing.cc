#include "cluster/routing.h"

#include <algorithm>
#include <cassert>

#include "common/hash.h"
#include "common/random.h"

namespace apmbench::cluster {

uint64_t RingHash(const Slice& key) {
  return MurmurHash64A(key.data(), key.size(), 0x1234ABCD);
}

namespace {

uint64_t KeyHash64(const Slice& key) { return RingHash(key); }

}  // namespace

TokenRing::TokenRing(int num_nodes, TokenAssignment assignment, uint64_t seed)
    : num_nodes_(num_nodes) {
  assert(num_nodes > 0);
  if (assignment == TokenAssignment::kBalanced) {
    // Evenly spaced tokens: node i owns exactly 1/n of the ring.
    uint64_t step = UINT64_MAX / static_cast<uint64_t>(num_nodes);
    for (int i = 0; i < num_nodes; i++) {
      ring_[static_cast<uint64_t>(i + 1) * step] = i;
    }
  } else {
    Random rng(seed);
    for (int i = 0; i < num_nodes; i++) {
      uint64_t token;
      do {
        token = rng.Next();
      } while (ring_.count(token) != 0);
      ring_[token] = i;
    }
  }
}

int TokenRing::Route(const Slice& key) const {
  uint64_t hash = KeyHash64(key);
  auto it = ring_.lower_bound(hash);
  if (it == ring_.end()) it = ring_.begin();
  return it->second;
}

std::vector<int> TokenRing::RouteReplicas(const Slice& key,
                                          int replication_factor) const {
  std::vector<int> replicas;
  uint64_t hash = KeyHash64(key);
  auto it = ring_.lower_bound(hash);
  if (it == ring_.end()) it = ring_.begin();
  while (static_cast<int>(replicas.size()) <
             std::min(replication_factor, num_nodes_)) {
    if (std::find(replicas.begin(), replicas.end(), it->second) ==
        replicas.end()) {
      replicas.push_back(it->second);
    }
    ++it;
    if (it == ring_.end()) it = ring_.begin();
  }
  return replicas;
}

std::vector<double> TokenRing::OwnershipShares() const {
  std::vector<double> shares(static_cast<size_t>(num_nodes_), 0.0);
  const double full = static_cast<double>(UINT64_MAX);
  uint64_t prev = 0;
  // Arc (prev_token, token] belongs to the node at `token`; the wrap-around
  // arc (last_token, 2^64) ∪ [0, first_token] belongs to the first node.
  for (auto it = ring_.begin(); it != ring_.end(); ++it) {
    shares[static_cast<size_t>(it->second)] +=
        static_cast<double>(it->first - prev) / full;
    prev = it->first;
  }
  shares[static_cast<size_t>(ring_.begin()->second)] +=
      static_cast<double>(UINT64_MAX - prev) / full;
  return shares;
}

JedisShardRing::JedisShardRing(int num_shards) : num_shards_(num_shards) {
  assert(num_shards > 0);
  // Jedis Sharded.initialize(): 160 virtual nodes per (weight-1) shard at
  // hash("SHARD-<i>-NODE-<n>"), MurmurHash 64A with the seed Jedis uses.
  for (int i = 0; i < num_shards; i++) {
    for (int n = 0; n < 160; n++) {
      std::string vnode =
          "SHARD-" + std::to_string(i) + "-NODE-" + std::to_string(n);
      int64_t hash = static_cast<int64_t>(
          MurmurHash64A(vnode.data(), vnode.size(), 0x1234ABCD));
      ring_[hash] = i;
    }
  }
}

int JedisShardRing::Route(const Slice& key) const {
  int64_t hash =
      static_cast<int64_t>(MurmurHash64A(key.data(), key.size(), 0x1234ABCD));
  auto it = ring_.lower_bound(hash);  // Jedis: tailMap(hash).firstKey()
  if (it == ring_.end()) it = ring_.begin();
  return it->second;
}

std::vector<double> JedisShardRing::OwnershipShares() const {
  std::vector<double> shares(static_cast<size_t>(num_shards_), 0.0);
  const double full = 18446744073709551616.0;  // 2^64
  int64_t prev = INT64_MIN;
  for (auto it = ring_.begin(); it != ring_.end(); ++it) {
    shares[static_cast<size_t>(it->second)] +=
        static_cast<double>(static_cast<uint64_t>(it->first) -
                            static_cast<uint64_t>(prev)) /
        full;
    prev = it->first;
  }
  // Wrap-around arc goes to the first virtual node.
  shares[static_cast<size_t>(ring_.begin()->second)] +=
      static_cast<double>(static_cast<uint64_t>(INT64_MAX) -
                          static_cast<uint64_t>(prev) + 1) /
      full;
  return shares;
}

int ModuloSharder::Route(const Slice& key) const {
  uint64_t hash = MurmurHash64A(key.data(), key.size(), 0x9747b28c);
  return static_cast<int>(hash % static_cast<uint64_t>(num_shards_));
}

RegionMap::RegionMap(std::vector<std::string> boundaries, int num_servers)
    : boundaries_(std::move(boundaries)), num_servers_(num_servers) {
  assert(num_servers > 0);
  assert(std::is_sorted(boundaries_.begin(), boundaries_.end()));
}

RegionMap RegionMap::FromSample(std::vector<std::string> sample,
                                int num_regions, int num_servers) {
  std::sort(sample.begin(), sample.end());
  std::vector<std::string> boundaries;
  if (num_regions > 1 && !sample.empty()) {
    for (int i = 1; i < num_regions; i++) {
      size_t index = sample.size() * static_cast<size_t>(i) /
                     static_cast<size_t>(num_regions);
      boundaries.push_back(sample[index]);
    }
    boundaries.erase(std::unique(boundaries.begin(), boundaries.end()),
                     boundaries.end());
  }
  return RegionMap(std::move(boundaries), num_servers);
}

int RegionMap::RegionOf(const Slice& key) const {
  // Region i spans [boundaries_[i-1], boundaries_[i]).
  auto it = std::upper_bound(
      boundaries_.begin(), boundaries_.end(), key,
      [](const Slice& k, const std::string& b) { return k < Slice(b); });
  return static_cast<int>(it - boundaries_.begin());
}

int RegionMap::Route(const Slice& key) const {
  return RegionOf(key) % num_servers_;
}

std::vector<int> RegionMap::RouteScan(const Slice& start,
                                      const Slice& end_key) const {
  int first = RegionOf(start);
  int last = end_key.empty() ? num_regions() - 1 : RegionOf(end_key);
  std::vector<int> servers;
  for (int region = first; region <= last; region++) {
    int server = region % num_servers_;
    if (std::find(servers.begin(), servers.end(), server) == servers.end()) {
      servers.push_back(server);
      if (static_cast<int>(servers.size()) == num_servers_) break;
    }
  }
  return servers;
}

std::vector<int> RegionMap::RouteScan(const Slice& start, int count) const {
  int first = RegionOf(start);
  int last = std::min(num_regions() - 1,
                      first + std::max(0, count - 1));
  std::vector<int> servers;
  for (int region = first; region <= last; region++) {
    int server = region % num_servers_;
    if (std::find(servers.begin(), servers.end(), server) == servers.end()) {
      servers.push_back(server);
      if (static_cast<int>(servers.size()) == num_servers_) break;
    }
  }
  return servers;
}

PartitionRing::PartitionRing(int num_nodes, int partitions_per_node,
                             uint64_t seed)
    : num_nodes_(num_nodes), partitions_per_node_(partitions_per_node) {
  assert(num_nodes > 0 && partitions_per_node > 0);
  // Voldemort randomly permutes partition tokens at cluster-definition
  // time; we place partitions evenly but shuffle ownership, which gives
  // each node `partitions_per_node` equal arcs.
  int total = num_nodes * partitions_per_node;
  std::vector<int> partitions(static_cast<size_t>(total));
  for (int p = 0; p < total; p++) partitions[static_cast<size_t>(p)] = p;
  Random rng(seed);
  for (size_t i = partitions.size(); i > 1; i--) {
    std::swap(partitions[i - 1], partitions[rng.Uniform(i)]);
  }
  uint64_t step = UINT64_MAX / static_cast<uint64_t>(total);
  for (int slot = 0; slot < total; slot++) {
    ring_[static_cast<uint64_t>(slot + 1) * step] =
        partitions[static_cast<size_t>(slot)];
  }
}

int PartitionRing::RoutePartition(const Slice& key) const {
  uint64_t hash = KeyHash64(key);
  auto it = ring_.lower_bound(hash);
  if (it == ring_.end()) it = ring_.begin();
  return it->second;
}

int PartitionRing::NodeOfPartition(int partition) const {
  // Partitions are striped across nodes: partition p lives on node
  // p % num_nodes (Voldemort's default layout for N partitions per node).
  return partition % num_nodes_;
}

std::vector<double> PartitionRing::OwnershipShares() const {
  std::vector<double> shares(static_cast<size_t>(num_nodes_), 0.0);
  const double full = static_cast<double>(UINT64_MAX);
  uint64_t prev = 0;
  for (auto it = ring_.begin(); it != ring_.end(); ++it) {
    shares[static_cast<size_t>(NodeOfPartition(it->second))] +=
        static_cast<double>(it->first - prev) / full;
    prev = it->first;
  }
  shares[static_cast<size_t>(NodeOfPartition(ring_.begin()->second))] +=
      static_cast<double>(UINT64_MAX - prev) / full;
  return shares;
}

double KeyMovementFraction(
    const std::function<int(const Slice&)>& route_before,
    const std::function<int(const Slice&)>& route_after, int samples) {
  if (samples <= 0) return 0;
  int moved = 0;
  for (int i = 0; i < samples; i++) {
    std::string key =
        "user" + std::to_string(static_cast<uint64_t>(i) * 2654435761u);
    if (route_before(key) != route_after(key)) moved++;
  }
  return static_cast<double>(moved) / samples;
}

}  // namespace apmbench::cluster
