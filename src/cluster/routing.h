#ifndef APMBENCH_CLUSTER_ROUTING_H_
#define APMBENCH_CLUSTER_ROUTING_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/slice.h"

namespace apmbench::cluster {

/// The 64-bit key hash every hash-partitioned router here places on its
/// ring. Exported so replica-aware layers (anti-entropy repair) can
/// bucket keys into the same hash space the ring partitions.
uint64_t RingHash(const Slice& key);

/// Cassandra-style token ring: each node owns the arc of the hash ring
/// ending at its token. The paper found the default *random* token
/// selection "frequently resulted in a highly unbalanced workload" and
/// assigned balanced tokens manually before loading; both modes are
/// provided (and compared in tests and the ablation bench).
class TokenRing {
 public:
  enum class TokenAssignment { kRandom, kBalanced };

  TokenRing(int num_nodes, TokenAssignment assignment, uint64_t seed);

  /// Node owning `key`.
  int Route(const Slice& key) const;

  /// The `replication_factor` distinct nodes holding `key` (ring walk, as
  /// Cassandra's SimpleStrategy places replicas).
  std::vector<int> RouteReplicas(const Slice& key,
                                 int replication_factor) const;

  /// Fraction of the hash space owned by each node; balanced assignment
  /// yields 1/n each, random assignment yields the skew the paper warns
  /// about.
  std::vector<double> OwnershipShares() const;

  int num_nodes() const { return num_nodes_; }

 private:
  int num_nodes_;
  /// token -> node, ordered.
  std::map<uint64_t, int> ring_;
};

/// Faithful reimplementation of the Jedis `Sharded` router the paper used
/// for Redis: 160 virtual nodes per shard, placed at
/// MurmurHash64A("SHARD-<i>-NODE-<n>") on a *signed* 64-bit ring (Java
/// long ordering), keys routed to the first virtual node at or after
/// their hash. Its placement is what left the paper's 12-node Redis
/// setup unbalanced enough to drive one node out of memory.
class JedisShardRing {
 public:
  explicit JedisShardRing(int num_shards);

  int Route(const Slice& key) const;

  /// Fraction of the (signed) hash ring owned by each shard — the key
  /// share each Redis instance receives under uniform keys.
  std::vector<double> OwnershipShares() const;

  int num_shards() const { return num_shards_; }

 private:
  int num_shards_;
  /// virtual-node hash -> shard index, signed ordering as in Java.
  std::map<int64_t, int> ring_;
};

/// Hash-modulo sharding as used by the YCSB RDBMS client for MySQL; for
/// uniformly distributed keys this balances almost perfectly, which is
/// why the paper saw near-linear MySQL scaling while Redis stalled.
class ModuloSharder {
 public:
  explicit ModuloSharder(int num_shards) : num_shards_(num_shards) {}

  int Route(const Slice& key) const;

  int num_shards() const { return num_shards_; }

 private:
  int num_shards_;
};

/// HBase-style ordered regions: the key space is split at boundary keys
/// into contiguous regions, each hosted by a region server. Ordered
/// partitioning is what gives HBase cheap range scans (the scan touches
/// one or a few regions) at the cost of hot-spotting under skewed keys.
class RegionMap {
 public:
  /// Builds `num_regions` regions from explicit split keys
  /// (`boundaries[i]` is the first key of region i+1) and assigns them
  /// round-robin to `num_servers` servers.
  RegionMap(std::vector<std::string> boundaries, int num_servers);

  /// Builds regions by sampling: splits `sample` (sorted or not) into
  /// equal-count regions.
  static RegionMap FromSample(std::vector<std::string> sample,
                              int num_regions, int num_servers);

  /// Region index containing `key`.
  int RegionOf(const Slice& key) const;
  /// Server hosting `key`.
  int Route(const Slice& key) const;
  /// Servers covering a scan from `start` up to (and including) the
  /// region holding `end_key` — empty `end_key` means the scan is
  /// unbounded and every region from `start` onward may be touched. The
  /// walk visits each covered region in order, deduplicating servers,
  /// and stops early once every server is included. (The pre-fix version
  /// returned only the start region's server plus one neighbor, so any
  /// scan crossing two or more boundaries silently missed servers.)
  std::vector<int> RouteScan(const Slice& start,
                             const Slice& end_key = Slice()) const;
  /// Servers covering a scan of up to `count` rows from `start`. Regions
  /// partition the sample population evenly (FromSample), so the worst
  /// case is one row per region: the walk covers min(count, remaining)
  /// regions.
  std::vector<int> RouteScan(const Slice& start, int count) const;

  int num_regions() const { return static_cast<int>(boundaries_.size()) + 1; }
  int num_servers() const { return num_servers_; }

  /// First key NOT in region `i`; empty for the last (unbounded) region.
  std::string RegionEndKey(int region) const {
    return region < static_cast<int>(boundaries_.size())
               ? boundaries_[static_cast<size_t>(region)]
               : std::string();
  }

 private:
  std::vector<std::string> boundaries_;
  int num_servers_;
};

/// Voldemort-style partition ring: a fixed set of partitions (the paper
/// configured two per node) is scattered on a hash ring; keys map to
/// partitions, partitions map to nodes. Cluster growth reassigns
/// partitions rather than rehashing keys.
class PartitionRing {
 public:
  PartitionRing(int num_nodes, int partitions_per_node, uint64_t seed);

  int RoutePartition(const Slice& key) const;
  int NodeOfPartition(int partition) const;
  int Route(const Slice& key) const {
    return NodeOfPartition(RoutePartition(key));
  }

  /// Hash-space share per node.
  std::vector<double> OwnershipShares() const;

  int num_nodes() const { return num_nodes_; }
  int num_partitions() const { return num_nodes_ * partitions_per_node_; }

 private:
  int num_nodes_;
  int partitions_per_node_;
  /// token -> partition id.
  std::map<uint64_t, int> ring_;
};

/// Fraction of (uniformly sampled YCSB-style) keys whose owner changes
/// between two router configurations — the data-movement cost of growing
/// a cluster. Quantifies the elasticity claims around the paper:
/// consistent-hash rings move ~1/(n+1) of keys per added node, modulo
/// sharding moves ~n/(n+1), and Cassandra's *balanced* token assignment
/// must repartition heavily (the "costly repartitioning" of Section 6).
double KeyMovementFraction(
    const std::function<int(const Slice&)>& route_before,
    const std::function<int(const Slice&)>& route_after,
    int samples = 20000);

}  // namespace apmbench::cluster

#endif  // APMBENCH_CLUSTER_ROUTING_H_
