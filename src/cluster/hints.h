#ifndef APMBENCH_CLUSTER_HINTS_H_
#define APMBENCH_CLUSTER_HINTS_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "common/env.h"
#include "common/group_commit.h"
#include "common/slice.h"
#include "common/status.h"

namespace apmbench::cluster {

/// Durable hinted-handoff queue for one target node (Cassandra's hinted
/// handoff): when a write cannot reach one of its replicas, the
/// coordinator appends the operation here — group-committed and fsynced,
/// so acknowledging the write to the client is safe — and replays the
/// queue in order once the node is marked live again.
///
/// Records are framed like the engines' WALs ([masked crc32c][length]
/// [payload]); the payload is (op, key, value). A torn tail from a crash
/// mid-append is dropped on open (that hint's write was never
/// acknowledged, because Append returns only after the fsync); mid-log
/// damage surfaces as Corruption.
///
/// Replay deletes the log only after every hint applied cleanly, so a
/// crash mid-replay keeps the full queue and the next replay starts over.
/// That makes replay at-least-once; hints are last-write-wins puts and
/// blind deletes applied in append order, so re-applying a prefix is
/// idempotent as long as no *newer* direct write raced in between — the
/// store guarantees that by routing writes for a node back through its
/// hint queue until the queue is empty (see CassandraStore).
///
/// Thread-safe; Append blocks while a Replay is in progress (and vice
/// versa), which is what preserves the append order == apply order
/// invariant.
class HintLog {
 public:
  enum class OpKind : uint8_t { kPut = 1, kDelete = 2 };

  struct Hint {
    OpKind op;
    Slice key;
    Slice value;  // empty for kDelete
  };

  /// `path` is the queue's backing file, created lazily on first Append.
  HintLog(Env* env, std::string path);

  /// Counts hints already on disk (recovery after restart/crash). Call
  /// once before use; a missing file is an empty queue.
  Status Open();

  /// Durably queues one hint; returns only after the record is fsynced.
  Status Append(OpKind op, const Slice& key, const Slice& value);

  /// Applies every queued hint in append order through `apply`, then
  /// truncates the queue. Stops at the first failing apply, keeping the
  /// whole queue for a retry. No-op when empty.
  Status Replay(const std::function<Status(const Hint&)>& apply);

  /// Hints currently queued (durable but not yet replayed).
  uint64_t pending() const;

  const std::string& path() const { return path_; }

 private:
  /// Requires mu_ held. Opens the group-commit writer if needed.
  Status EnsureWriterLocked();

  /// Parses `contents`, invoking `consume` per record. A torn tail is
  /// tolerated and counted; mid-log damage returns Corruption.
  static Status ParseAll(const std::string& contents,
                         const std::function<Status(const Hint&)>& consume,
                         uint64_t* records, uint64_t* dropped_bytes);

  Env* const env_;
  const std::string path_;
  mutable std::mutex mu_;
  std::unique_ptr<GroupCommitLog> log_;
  uint64_t pending_ = 0;
};

}  // namespace apmbench::cluster

#endif  // APMBENCH_CLUSTER_HINTS_H_
