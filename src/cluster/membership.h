#ifndef APMBENCH_CLUSTER_MEMBERSHIP_H_
#define APMBENCH_CLUSTER_MEMBERSHIP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"

namespace apmbench::cluster {

/// Tuning for the per-node liveness tracker.
struct MembershipOptions {
  /// Consecutive failed operations against a node before it is marked
  /// down. 1 marks a node down on its first error.
  int error_threshold = 3;

  /// How long a node stays down before a single probe request may be
  /// sent its way. A successful probe marks the node up; a failed probe
  /// restarts the probation timer.
  uint64_t probation_micros = 500 * 1000;

  /// Injectable clock (microseconds, monotonic) so tests can drive the
  /// down -> probation transition deterministically. Null uses NowMicros.
  std::function<uint64_t()> now_micros;
};

/// Per-node liveness state for a store's simulated cluster, in the style
/// of Cassandra's failure detector (simplified: error-threshold marking
/// plus timed probation instead of phi-accrual). The store adapters report
/// every node operation's outcome; routing layers consult IsLive /
/// TryClaimProbe to steer requests away from dead nodes while still
/// letting exactly one request at a time probe a node whose probation
/// expired.
///
/// Thread-safe: operations fan out from many client threads at once.
class Membership {
 public:
  enum class NodeState { kUp, kDown, kProbation };

  Membership(int num_nodes, MembershipOptions options);

  /// Current state; kProbation means the node is down but its probation
  /// window has elapsed, so a probe may be claimed.
  NodeState StateOf(int node) const;

  /// True when the node is up (probation is not live: callers must claim
  /// a probe to touch a down node).
  bool IsLive(int node) const;

  /// Claims the single in-flight probe of a node in probation. Returns
  /// true for exactly one caller per probation window; that caller must
  /// follow up with ReportSuccess or ReportError for the node.
  bool TryClaimProbe(int node);

  /// A node operation completed (any definitive answer, including
  /// NotFound). Resets the error streak; a down node becomes up.
  void ReportSuccess(int node);

  /// A node operation failed (IOError-style). At error_threshold
  /// consecutive errors the node is marked down; a failed probe sends the
  /// node straight back down with a fresh probation timer.
  void ReportError(int node);

  /// Marks the node down immediately (deterministic fault injection and
  /// administrative down), regardless of the error streak.
  void MarkDown(int node);

  /// Nodes that transitioned down -> up since the last call, in
  /// transition order; the hinted-handoff layer drains this to trigger
  /// hint replay exactly once per recovery.
  std::vector<int> TakeRecovered();

  struct Counters {
    uint64_t transitions_down = 0;
    uint64_t transitions_up = 0;
    uint64_t probes_claimed = 0;
  };
  Counters GetCounters() const;

  int num_nodes() const { return static_cast<int>(nodes_.size()); }

 private:
  struct Node {
    bool down = false;
    int consecutive_errors = 0;
    uint64_t down_since = 0;
    bool probe_inflight = false;
  };

  uint64_t Now() const;
  /// Requires mu_ held.
  NodeState StateOfLocked(const Node& n) const;
  void MarkDownLocked(Node* n);

  MembershipOptions options_;
  mutable std::mutex mu_;
  std::vector<Node> nodes_;
  std::vector<int> recovered_;
  Counters counters_;
};

/// FaultInjectionEnv-style seam for node-level faults: tests and benches
/// kill whole nodes deterministically, and the store adapters consult the
/// seam before every node operation — the node analogue of failing a
/// filesystem call. Kill/Revive may race with operations in flight; the
/// flags are atomic and an operation observes the node as killed or not,
/// never a torn state.
class NodeFaultSeam {
 public:
  explicit NodeFaultSeam(int num_nodes)
      : killed_(std::make_unique<std::atomic<bool>[]>(
            static_cast<size_t>(num_nodes))),
        num_nodes_(num_nodes) {
    for (int i = 0; i < num_nodes; i++) killed_[i].store(false);
  }

  void Kill(int node) {
    killed_[static_cast<size_t>(node)].store(true, std::memory_order_relaxed);
  }
  void Revive(int node) {
    killed_[static_cast<size_t>(node)].store(false,
                                             std::memory_order_relaxed);
  }
  bool IsKilled(int node) const {
    return killed_[static_cast<size_t>(node)].load(std::memory_order_relaxed);
  }
  /// OK, or the IOError a request against a dead node would see.
  Status Check(int node) const {
    if (IsKilled(node)) {
      return Status::IOError("injected node fault: node " +
                             std::to_string(node) + " is down");
    }
    return Status::OK();
  }

 private:
  std::unique_ptr<std::atomic<bool>[]> killed_;
  int num_nodes_;
};

}  // namespace apmbench::cluster

#endif  // APMBENCH_CLUSTER_MEMBERSHIP_H_
