#include "cluster/hints.h"

#include "common/coding.h"
#include "common/crc32.h"

namespace apmbench::cluster {

namespace {
constexpr size_t kFrameHeader = 8;  // masked crc32c (4) + length (4)
}

HintLog::HintLog(Env* env, std::string path)
    : env_(env), path_(std::move(path)) {}

Status HintLog::Open() {
  std::lock_guard<std::mutex> lock(mu_);
  pending_ = 0;
  if (!env_->FileExists(path_)) return Status::OK();
  std::string contents;
  APM_RETURN_IF_ERROR(env_->ReadFileToString(path_, &contents));
  uint64_t records = 0, dropped = 0;
  APM_RETURN_IF_ERROR(ParseAll(
      contents, [](const Hint&) { return Status::OK(); }, &records,
      &dropped));
  pending_ = records;
  return Status::OK();
}

Status HintLog::EnsureWriterLocked() {
  if (log_ != nullptr) return Status::OK();
  std::unique_ptr<WritableFile> file;
  APM_RETURN_IF_ERROR(env_->NewAppendableFile(path_, &file));
  log_ = std::make_unique<GroupCommitLog>(std::move(file));
  return Status::OK();
}

Status HintLog::Append(OpKind op, const Slice& key, const Slice& value) {
  std::string payload;
  payload.push_back(static_cast<char>(op));
  PutLengthPrefixedSlice(&payload, key);
  PutLengthPrefixedSlice(&payload, value);
  std::string record;
  PutFixed32(&record, MaskCrc(Crc32c(payload.data(), payload.size())));
  PutFixed32(&record, static_cast<uint32_t>(payload.size()));
  record.append(payload);

  std::lock_guard<std::mutex> lock(mu_);
  APM_RETURN_IF_ERROR(EnsureWriterLocked());
  // sync=true: the hint substitutes for a replica ack, so it must be as
  // durable as the write it stands in for.
  APM_RETURN_IF_ERROR(log_->Append(Slice(record), /*sync=*/true));
  pending_++;
  return Status::OK();
}

Status HintLog::ParseAll(const std::string& contents,
                         const std::function<Status(const Hint&)>& consume,
                         uint64_t* records, uint64_t* dropped_bytes) {
  *records = 0;
  *dropped_bytes = 0;
  size_t offset = 0;
  while (offset < contents.size()) {
    if (contents.size() - offset < kFrameHeader) {
      *dropped_bytes = contents.size() - offset;  // torn header
      return Status::OK();
    }
    Slice header(contents.data() + offset, kFrameHeader);
    uint32_t masked = 0, length = 0;
    GetFixed32(&header, &masked);
    GetFixed32(&header, &length);
    if (contents.size() - offset - kFrameHeader < length) {
      *dropped_bytes = contents.size() - offset;  // torn payload
      return Status::OK();
    }
    const char* payload = contents.data() + offset + kFrameHeader;
    if (UnmaskCrc(masked) != Crc32c(payload, length)) {
      // CRC failure at the very end is a torn append; anything with data
      // after it is real damage.
      if (offset + kFrameHeader + length == contents.size()) {
        *dropped_bytes = contents.size() - offset;
        return Status::OK();
      }
      return Status::Corruption("hint log damaged mid-file");
    }
    Slice body(payload, length);
    if (body.empty()) return Status::Corruption("empty hint record");
    Hint hint;
    hint.op = static_cast<OpKind>(body[0]);
    body.RemovePrefix(1);
    if ((hint.op != OpKind::kPut && hint.op != OpKind::kDelete) ||
        !GetLengthPrefixedSlice(&body, &hint.key) ||
        !GetLengthPrefixedSlice(&body, &hint.value) || !body.empty()) {
      return Status::Corruption("undecodable hint record");
    }
    APM_RETURN_IF_ERROR(consume(hint));
    (*records)++;
    offset += kFrameHeader + length;
  }
  return Status::OK();
}

Status HintLog::Replay(const std::function<Status(const Hint&)>& apply) {
  std::lock_guard<std::mutex> lock(mu_);
  if (pending_ == 0) return Status::OK();
  // Close the writer so the file contents are complete and a fresh log
  // can be created after truncation.
  if (log_ != nullptr) {
    APM_RETURN_IF_ERROR(log_->Close());
    log_.reset();
  }
  std::string contents;
  APM_RETURN_IF_ERROR(env_->ReadFileToString(path_, &contents));
  uint64_t records = 0, dropped = 0;
  APM_RETURN_IF_ERROR(ParseAll(contents, apply, &records, &dropped));
  // Every hint applied: drop the queue. A failure above returned before
  // this point, keeping the file intact for the next replay.
  APM_RETURN_IF_ERROR(env_->RemoveFile(path_));
  pending_ = 0;
  return Status::OK();
}

uint64_t HintLog::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_;
}

}  // namespace apmbench::cluster
