#include "btree/btree.h"

#include <algorithm>
#include <cassert>

#include "btree/node.h"
#include "common/coding.h"
#include "common/crc32.h"
#include "common/logging.h"

namespace apmbench::btree {

namespace {

constexpr uint8_t kBinlogPut = 1;
constexpr uint8_t kBinlogDelete = 2;

size_t LeafCellBytes(size_t klen, size_t vlen) {
  return static_cast<size_t>(VarintLength(klen)) + klen +
         static_cast<size_t>(VarintLength(vlen)) + vlen;
}

size_t InternalCellBytes(size_t klen) {
  return static_cast<size_t>(VarintLength(klen)) + klen + 4;
}

}  // namespace

Status Binlog::Open(Env* env, const std::string& path,
                    std::unique_ptr<Binlog>* binlog) {
  std::unique_ptr<WritableFile> file;
  APM_RETURN_IF_ERROR(env->NewAppendableFile(path, &file));
  binlog->reset(new Binlog(std::move(file)));
  return Status::OK();
}

GroupCommitLog::Ticket Binlog::Enqueue(uint8_t op, const Slice& key,
                                       const Slice& value, bool sync) {
  std::string payload;
  payload.push_back(static_cast<char>(op));
  PutLengthPrefixedSlice(&payload, key);
  PutLengthPrefixedSlice(&payload, value);
  std::string framed;
  PutFixed32(&framed, MaskCrc(Crc32c(payload.data(), payload.size())));
  PutFixed32(&framed, static_cast<uint32_t>(payload.size()));
  framed.append(payload);
  return log_->Enqueue(framed, sync);
}

GroupCommitLog::Ticket Binlog::EnqueuePut(const Slice& key, const Slice& value,
                                          bool sync) {
  return Enqueue(kBinlogPut, key, value, sync);
}

GroupCommitLog::Ticket Binlog::EnqueueDelete(const Slice& key, bool sync) {
  return Enqueue(kBinlogDelete, key, Slice(), sync);
}

Status Binlog::Commit(GroupCommitLog::Ticket ticket) {
  return log_->Commit(ticket);
}

Status Binlog::AppendPut(const Slice& key, const Slice& value, bool sync) {
  return Commit(EnqueuePut(key, value, sync));
}

Status Binlog::AppendDelete(const Slice& key, bool sync) {
  return Commit(EnqueueDelete(key, sync));
}

uint64_t Binlog::Size() const { return log_->Size(); }

GroupCommitLog::Stats Binlog::GetStats() const { return log_->GetStats(); }

BTree::BTree(const Options& options) : options_(options) {
  env_ = options_.env != nullptr ? options_.env : Env::Default();
}

Status BTree::Open(const Options& options, std::unique_ptr<BTree>* tree) {
  std::unique_ptr<BTree> t(new BTree(options));
  PagerOptions pager_options;
  pager_options.path = options.path;
  pager_options.env = t->env_;
  pager_options.page_size = options.page_size;
  pager_options.buffer_pool_bytes = options.buffer_pool_bytes;
  pager_options.pool_shard_bits = options.pool_shard_bits;
  bool created = false;
  APM_RETURN_IF_ERROR(Pager::Open(pager_options, &created, &t->pager_));
  t->num_keys_ = t->pager_->user_counter();
  if (!options.binlog_path.empty()) {
    APM_RETURN_IF_ERROR(
        Binlog::Open(t->env_, options.binlog_path, &t->binlog_));
  }
  *tree = std::move(t);
  return Status::OK();
}

size_t BTree::MaxCellBytes() const { return options_.page_size / 4; }

Status BTree::FindLeaf(const Slice& key, Pager::PageHandle* leaf) {
  uint32_t page_id = pager_->root();
  if (page_id == 0) return Status::NotFound("empty tree");
  for (;;) {
    Pager::PageHandle handle;
    APM_RETURN_IF_ERROR(pager_->FetchPage(page_id, &handle));
    NodeRef node(handle.data(), options_.page_size);
    if (node.is_leaf()) {
      *leaf = std::move(handle);
      return Status::OK();
    }
    // Route to the first child whose separator exceeds the key.
    int n = node.nkeys();
    int i = node.LowerBound(key);
    if (i < n && node.KeyAt(i) == key) i++;
    page_id = (i < n) ? node.ChildAt(i) : node.right();
  }
}

Status BTree::Get(const Slice& key, std::string* value) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  Pager::PageHandle leaf;
  Status s = FindLeaf(key, &leaf);
  if (s.IsNotFound()) return Status::NotFound();
  APM_RETURN_IF_ERROR(s);
  NodeRef node(leaf.data(), options_.page_size);
  int i = node.LowerBound(key);
  if (i < node.nkeys() && node.KeyAt(i) == key) {
    Slice v = node.ValueAt(i);
    value->assign(v.data(), v.size());
    return Status::OK();
  }
  return Status::NotFound();
}

Status BTree::Scan(const Slice& start, int count,
                   std::vector<std::pair<std::string, std::string>>* out) {
  out->clear();
  std::shared_lock<std::shared_mutex> lock(mu_);
  Pager::PageHandle leaf;
  Status s = FindLeaf(start, &leaf);
  if (s.IsNotFound()) return Status::OK();
  APM_RETURN_IF_ERROR(s);

  NodeRef node(leaf.data(), options_.page_size);
  int i = node.LowerBound(start);
  while (static_cast<int>(out->size()) < count) {
    if (i >= node.nkeys()) {
      uint32_t next = node.right();
      if (next == 0) break;
      Pager::PageHandle next_handle;
      APM_RETURN_IF_ERROR(pager_->FetchPage(next, &next_handle));
      leaf = std::move(next_handle);
      node = NodeRef(leaf.data(), options_.page_size);
      i = 0;
      continue;
    }
    out->emplace_back(node.KeyAt(i).ToString(), node.ValueAt(i).ToString());
    i++;
  }
  return Status::OK();
}

Status BTree::Put(const Slice& key, const Slice& value) {
  if (LeafCellBytes(key.size(), value.size()) > MaxCellBytes()) {
    return Status::InvalidArgument("record too large for page");
  }
  GroupCommitLog::Ticket ticket = 0;
  bool logged = false;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    APM_RETURN_IF_ERROR(PutLocked(key, value));
    pager_->set_user_counter(num_keys_);
    if (binlog_ != nullptr) {
      // Reserve binlog order under the lock; pay the I/O after releasing
      // it so concurrent writers' records share one append/fsync.
      ticket = binlog_->EnqueuePut(key, value, options_.sync_binlog);
      logged = true;
    }
  }
  if (logged) return binlog_->Commit(ticket);
  return Status::OK();
}

Status BTree::PutLocked(const Slice& key, const Slice& value) {
  if (pager_->root() == 0) {
    uint32_t root_id;
    Pager::PageHandle handle;
    APM_RETURN_IF_ERROR(pager_->NewPage(&root_id, &handle));
    NodeRef node(handle.data(), options_.page_size);
    node.Init(NodeRef::kLeaf);
    bool ok = node.InsertLeaf(key, value);
    APM_CHECK(ok);
    handle.MarkDirty();
    pager_->set_root(root_id);
    num_keys_++;
    return Status::OK();
  }

  SplitResult split;
  APM_RETURN_IF_ERROR(InsertRec(pager_->root(), key, value, &split));
  if (split.happened) {
    // Grow the tree: fresh internal root with two children.
    uint32_t new_root_id;
    Pager::PageHandle handle;
    APM_RETURN_IF_ERROR(pager_->NewPage(&new_root_id, &handle));
    NodeRef root(handle.data(), options_.page_size);
    root.Init(NodeRef::kInternal);
    bool ok = root.InsertInternal(Slice(split.promoted_key), pager_->root());
    APM_CHECK(ok);
    root.set_right(split.right_page);
    handle.MarkDirty();
    pager_->set_root(new_root_id);
  }
  return Status::OK();
}

Status BTree::InsertRec(uint32_t page_id, const Slice& key,
                        const Slice& value, SplitResult* split) {
  Pager::PageHandle handle;
  APM_RETURN_IF_ERROR(pager_->FetchPage(page_id, &handle));
  NodeRef node(handle.data(), options_.page_size);

  if (node.is_leaf()) {
    handle.MarkDirty();
    int i = node.LowerBound(key);
    bool exists = i < node.nkeys() && node.KeyAt(i) == key;
    if (exists) {
      if (node.UpdateLeaf(i, value)) return Status::OK();
      // The old cell was removed and the new value does not fit: fall
      // through to the splitting insert below.
    } else {
      num_keys_++;
      if (node.InsertLeaf(key, value)) return Status::OK();
    }
    return SplitLeafAndInsert(&handle, key, value, split);
  }

  // Internal node: route and recurse.
  int n = node.nkeys();
  int i = node.LowerBound(key);
  if (i < n && node.KeyAt(i) == key) i++;
  int route = i;  // n means the rightmost child
  uint32_t child = (route < n) ? node.ChildAt(route) : node.right();

  SplitResult child_split;
  APM_RETURN_IF_ERROR(InsertRec(child, key, value, &child_split));
  if (!child_split.happened) return Status::OK();

  // The child split into (child: keys < k) and (right_page: keys >= k).
  // Rebuild this node's cell vector with the extra separator. Internal
  // nodes only change on child splits, so the O(page) rebuild is off the
  // hot path.
  handle.MarkDirty();
  struct Cell {
    std::string key;
    uint32_t child;
  };
  std::vector<Cell> cells;
  cells.reserve(static_cast<size_t>(n) + 1);
  for (int j = 0; j < n; j++) {
    cells.push_back({node.KeyAt(j).ToString(), node.ChildAt(j)});
  }
  uint32_t rightmost = node.right();

  if (route < n) {
    cells.insert(cells.begin() + route,
                 {child_split.promoted_key, child});
    cells[static_cast<size_t>(route) + 1].child = child_split.right_page;
  } else {
    cells.push_back({child_split.promoted_key, child});
    rightmost = child_split.right_page;
  }

  // Does everything fit back into one page?
  size_t total = NodeRef::kHeaderSize;
  for (const auto& cell : cells) {
    total += 2 + InternalCellBytes(cell.key.size());
  }
  if (total <= options_.page_size) {
    node.Init(NodeRef::kInternal);
    for (const auto& cell : cells) {
      bool ok = node.InsertInternal(Slice(cell.key), cell.child);
      APM_CHECK(ok);
    }
    node.set_right(rightmost);
    return Status::OK();
  }

  // Split this internal node: the median separator moves up.
  size_t median = cells.size() / 2;
  uint32_t new_page_id;
  Pager::PageHandle new_handle;
  APM_RETURN_IF_ERROR(pager_->NewPage(&new_page_id, &new_handle));
  NodeRef right_node(new_handle.data(), options_.page_size);
  right_node.Init(NodeRef::kInternal);
  for (size_t j = median + 1; j < cells.size(); j++) {
    bool ok = right_node.InsertInternal(Slice(cells[j].key), cells[j].child);
    APM_CHECK(ok);
  }
  right_node.set_right(rightmost);
  new_handle.MarkDirty();

  node.Init(NodeRef::kInternal);
  for (size_t j = 0; j < median; j++) {
    bool ok = node.InsertInternal(Slice(cells[j].key), cells[j].child);
    APM_CHECK(ok);
  }
  node.set_right(cells[median].child);

  split->happened = true;
  split->promoted_key = cells[median].key;
  split->right_page = new_page_id;
  return Status::OK();
}

Status BTree::SplitLeafAndInsert(Pager::PageHandle* node_handle,
                                 const Slice& key, const Slice& value,
                                 SplitResult* split) {
  NodeRef node(node_handle->data(), options_.page_size);
  int n = node.nkeys();
  std::vector<std::pair<std::string, std::string>> cells;
  cells.reserve(static_cast<size_t>(n) + 1);
  for (int j = 0; j < n; j++) {
    cells.emplace_back(node.KeyAt(j).ToString(), node.ValueAt(j).ToString());
  }
  // Insert the new record at its sorted position (the key is absent: an
  // equal key was either updated in place or removed before we got here).
  auto it = std::lower_bound(
      cells.begin(), cells.end(), key,
      [](const auto& cell, const Slice& k) { return Slice(cell.first) < k; });
  cells.insert(it, {key.ToString(), value.ToString()});

  size_t median = cells.size() / 2;
  uint32_t new_page_id;
  Pager::PageHandle new_handle;
  APM_RETURN_IF_ERROR(pager_->NewPage(&new_page_id, &new_handle));
  NodeRef right_node(new_handle.data(), options_.page_size);
  right_node.Init(NodeRef::kLeaf);
  for (size_t j = median; j < cells.size(); j++) {
    bool ok = right_node.InsertLeaf(Slice(cells[j].first),
                                    Slice(cells[j].second));
    APM_CHECK(ok);
  }
  right_node.set_right(node.right());
  new_handle.MarkDirty();

  uint32_t old_right = new_page_id;
  node.Init(NodeRef::kLeaf);
  for (size_t j = 0; j < median; j++) {
    bool ok = node.InsertLeaf(Slice(cells[j].first), Slice(cells[j].second));
    APM_CHECK(ok);
  }
  node.set_right(old_right);
  node_handle->MarkDirty();

  split->happened = true;
  split->promoted_key = cells[median].first;
  split->right_page = new_page_id;
  return Status::OK();
}

Status BTree::Delete(const Slice& key) {
  GroupCommitLog::Ticket ticket = 0;
  bool logged = false;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    Pager::PageHandle leaf;
    Status s = FindLeaf(key, &leaf);
    if (s.IsNotFound()) return Status::NotFound();
    APM_RETURN_IF_ERROR(s);
    NodeRef node(leaf.data(), options_.page_size);
    int i = node.LowerBound(key);
    if (i >= node.nkeys() || node.KeyAt(i) != key) return Status::NotFound();
    node.Remove(i);
    leaf.MarkDirty();
    num_keys_--;
    pager_->set_user_counter(num_keys_);
    if (binlog_ != nullptr) {
      ticket = binlog_->EnqueueDelete(key, options_.sync_binlog);
      logged = true;
    }
  }
  if (logged) return binlog_->Commit(ticket);
  return Status::OK();
}

Status BTree::Checkpoint() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  return pager_->Checkpoint();
}

BTree::Stats BTree::GetStats() {
  std::shared_lock<std::shared_mutex> lock(mu_);
  Stats stats;
  stats.pool_hits = pager_->pool_hits();
  stats.pool_misses = pager_->pool_misses();
  stats.page_count = pager_->page_count();
  stats.num_keys = num_keys_;
  if (binlog_ != nullptr) {
    stats.binlog_bytes = binlog_->Size();
    GroupCommitLog::Stats log_stats = binlog_->GetStats();
    stats.binlog_appends = log_stats.appends;
    stats.binlog_groups = log_stats.groups;
    stats.binlog_synced_groups = log_stats.synced_groups;
  }
  // Height: walk the leftmost spine.
  int height = 0;
  uint32_t page_id = pager_->root();
  while (page_id != 0) {
    height++;
    Pager::PageHandle handle;
    if (!pager_->FetchPage(page_id, &handle).ok()) break;
    NodeRef node(handle.data(), options_.page_size);
    if (node.is_leaf()) break;
    page_id = node.nkeys() > 0 ? node.ChildAt(0) : node.right();
  }
  stats.height = height;
  return stats;
}

Status BTree::DiskUsage(uint64_t* bytes) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  uint64_t page_file = 0;
  APM_RETURN_IF_ERROR(env_->GetFileSize(options_.path, &page_file));
  *bytes = page_file + (binlog_ != nullptr ? binlog_->Size() : 0);
  return Status::OK();
}

}  // namespace apmbench::btree
