#ifndef APMBENCH_BTREE_BTREE_H_
#define APMBENCH_BTREE_BTREE_H_

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "btree/pager.h"
#include "common/group_commit.h"
#include "common/slice.h"
#include "common/status.h"

namespace apmbench::btree {

/// B+tree engine configuration.
struct Options {
  /// Page file path. Must be set.
  std::string path;
  Env* env = nullptr;
  size_t page_size = 4096;
  /// Buffer pool capacity (InnoDB's innodb_buffer_pool_size analogue).
  size_t buffer_pool_bytes = 32 * 1024 * 1024;
  /// log2 of the number of buffer-pool shards (InnoDB's
  /// innodb_buffer_pool_instances analogue); see PagerOptions.
  int pool_shard_bits = 4;
  /// When set, every mutation is appended to a binary log at this path,
  /// reproducing MySQL's binlog (the paper notes it doubles disk usage).
  std::string binlog_path;
  /// fsync the binlog on every mutation.
  bool sync_binlog = false;
};

/// Durable write-ahead statement log used by the MySQL-like store.
/// Backed by a GroupCommitLog: records enqueued by concurrent mutators
/// are written (and fsynced, with sync_binlog) by one leader per round,
/// MySQL's binlog group commit. Enqueue/Commit are split so the tree can
/// reserve log order while holding its write lock and pay the I/O after
/// releasing it.
class Binlog {
 public:
  static Status Open(Env* env, const std::string& path,
                     std::unique_ptr<Binlog>* binlog);

  Status AppendPut(const Slice& key, const Slice& value, bool sync);
  Status AppendDelete(const Slice& key, bool sync);

  /// Queues a framed record without doing I/O; cheap enough to call under
  /// the tree's write lock so binlog order matches apply order.
  GroupCommitLog::Ticket EnqueuePut(const Slice& key, const Slice& value,
                                    bool sync);
  GroupCommitLog::Ticket EnqueueDelete(const Slice& key, bool sync);
  /// Waits until the record behind `ticket` is on disk (joining or leading
  /// a group commit). Call without the tree lock held.
  Status Commit(GroupCommitLog::Ticket ticket);

  uint64_t Size() const;
  GroupCommitLog::Stats GetStats() const;

 private:
  explicit Binlog(std::unique_ptr<WritableFile> file)
      : log_(std::make_unique<GroupCommitLog>(std::move(file))) {}

  GroupCommitLog::Ticket Enqueue(uint8_t op, const Slice& key,
                                 const Slice& value, bool sync);

  std::unique_ptr<GroupCommitLog> log_;
};

/// An on-disk B+tree with a buffer pool: the storage architecture of
/// InnoDB (MySQL) and BerkeleyDB (Project Voldemort's storage engine).
/// Point reads and writes are O(height); range scans walk the leaf chain.
///
/// Durability model: pages are flushed on Checkpoint() and on close; the
/// optional binlog provides a durable mutation record as in MySQL.
/// Deletions do not rebalance (underfull pages are permitted, as in many
/// production trees that defer merging); the ordering invariants are
/// preserved.
///
/// Thread-safety: all public methods are safe to call concurrently.
/// Readers (Get/Scan/GetStats/DiskUsage) hold a shared lock and run in
/// parallel — the buffer pool has its own internal latch — while mutators
/// (Put/Delete/Checkpoint) hold the lock exclusively. Binlog I/O happens
/// after the write lock is released, with concurrent mutators' records
/// merged into one append (+ one fsync under sync_binlog) by group
/// commit. See docs/concurrency.md.
class BTree {
 public:
  struct Stats {
    uint64_t pool_hits = 0;
    uint64_t pool_misses = 0;
    uint32_t page_count = 0;
    int height = 0;
    uint64_t num_keys = 0;
    uint64_t binlog_bytes = 0;
    /// Binlog group commit: appends is records written, groups is leader
    /// rounds (== write+fsync batches). appends > groups means batching.
    uint64_t binlog_appends = 0;
    uint64_t binlog_groups = 0;
    uint64_t binlog_synced_groups = 0;
  };

  static Status Open(const Options& options, std::unique_ptr<BTree>* tree);

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  /// Inserts or replaces `key`.
  Status Put(const Slice& key, const Slice& value);

  /// NotFound when absent.
  Status Get(const Slice& key, std::string* value);

  Status Delete(const Slice& key);

  /// Collects up to `count` records with key >= start in key order.
  Status Scan(const Slice& start, int count,
              std::vector<std::pair<std::string, std::string>>* out);

  /// Flushes all dirty pages and the metadata page.
  Status Checkpoint();

  Stats GetStats();

  /// Bytes on disk: page file plus binlog.
  Status DiskUsage(uint64_t* bytes);

 private:
  struct SplitResult {
    bool happened = false;
    std::string promoted_key;
    uint32_t right_page = 0;
  };

  explicit BTree(const Options& options);

  Status PutLocked(const Slice& key, const Slice& value);
  Status InsertRec(uint32_t page_id, const Slice& key, const Slice& value,
                   SplitResult* split);
  Status SplitLeafAndInsert(Pager::PageHandle* node_handle, const Slice& key,
                            const Slice& value, SplitResult* split);
  /// Descends to the leaf that may contain `key`.
  Status FindLeaf(const Slice& key, Pager::PageHandle* leaf);
  size_t MaxCellBytes() const;

  Options options_;
  Env* env_;
  /// Reader/writer lock over tree structure and page contents; see the
  /// class comment. PutLocked/InsertRec/FindLeaf require it held.
  std::shared_mutex mu_;
  std::unique_ptr<Pager> pager_;
  std::unique_ptr<Binlog> binlog_;
  uint64_t num_keys_ = 0;
};

}  // namespace apmbench::btree

#endif  // APMBENCH_BTREE_BTREE_H_
