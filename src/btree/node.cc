#include "btree/node.h"

#include <cassert>
#include <cstring>

#include "common/coding.h"

namespace apmbench::btree {

namespace {

// Header field offsets.
constexpr size_t kTypeOff = 0;       // u8
constexpr size_t kNKeysOff = 1;      // u16
constexpr size_t kRightOff = 3;      // u32
constexpr size_t kCellStartOff = 7;  // u16
constexpr size_t kFragOff = 9;       // u16

uint16_t LoadU16(const char* p) {
  return static_cast<uint16_t>(static_cast<unsigned char>(p[0]) |
                               (static_cast<unsigned char>(p[1]) << 8));
}
void StoreU16(char* p, uint16_t v) {
  p[0] = static_cast<char>(v & 0xff);
  p[1] = static_cast<char>(v >> 8);
}

}  // namespace

void NodeRef::Init(uint8_t type) {
  memset(data_, 0, page_size_);
  set_type(type);
  set_nkeys(0);
  set_cell_start(static_cast<uint16_t>(page_size_));
  set_frag(0);
  set_right(0);
}

uint8_t NodeRef::type() const {
  return static_cast<uint8_t>(data_[kTypeOff]);
}
void NodeRef::set_type(uint8_t t) { data_[kTypeOff] = static_cast<char>(t); }

uint16_t NodeRef::nkeys() const { return LoadU16(data_ + kNKeysOff); }
void NodeRef::set_nkeys(uint16_t n) { StoreU16(data_ + kNKeysOff, n); }

uint32_t NodeRef::right() const { return DecodeFixed32(data_ + kRightOff); }
void NodeRef::set_right(uint32_t page_id) {
  EncodeFixed32(data_ + kRightOff, page_id);
}

uint16_t NodeRef::cell_start() const {
  return LoadU16(data_ + kCellStartOff);
}
void NodeRef::set_cell_start(uint16_t off) {
  StoreU16(data_ + kCellStartOff, off);
}

uint16_t NodeRef::frag() const { return LoadU16(data_ + kFragOff); }
void NodeRef::set_frag(uint16_t f) { StoreU16(data_ + kFragOff, f); }

uint16_t NodeRef::SlotAt(int i) const {
  return LoadU16(data_ + kHeaderSize + 2 * static_cast<size_t>(i));
}
void NodeRef::SetSlotAt(int i, uint16_t off) {
  StoreU16(data_ + kHeaderSize + 2 * static_cast<size_t>(i), off);
}

Slice NodeRef::KeyAt(int i) const {
  Slice in(data_ + SlotAt(i), page_size_ - SlotAt(i));
  uint32_t klen = 0;
  GetVarint32(&in, &klen);
  return Slice(in.data(), klen);
}

Slice NodeRef::ValueAt(int i) const {
  assert(is_leaf());
  Slice in(data_ + SlotAt(i), page_size_ - SlotAt(i));
  uint32_t klen = 0, vlen = 0;
  GetVarint32(&in, &klen);
  in.RemovePrefix(klen);
  GetVarint32(&in, &vlen);
  return Slice(in.data(), vlen);
}

uint32_t NodeRef::ChildAt(int i) const {
  assert(!is_leaf());
  Slice in(data_ + SlotAt(i), page_size_ - SlotAt(i));
  uint32_t klen = 0;
  GetVarint32(&in, &klen);
  in.RemovePrefix(klen);
  return DecodeFixed32(in.data());
}

void NodeRef::SetChildAt(int i, uint32_t child) {
  assert(!is_leaf());
  Slice in(data_ + SlotAt(i), page_size_ - SlotAt(i));
  uint32_t klen = 0;
  GetVarint32(&in, &klen);
  in.RemovePrefix(klen);
  EncodeFixed32(const_cast<char*>(in.data()), child);
}

int NodeRef::LowerBound(const Slice& key) const {
  int lo = 0, hi = nkeys();
  while (lo < hi) {
    int mid = lo + (hi - lo) / 2;
    if (KeyAt(mid).Compare(key) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

size_t NodeRef::CellSize(uint16_t off) const {
  Slice in(data_ + off, page_size_ - off);
  const char* begin = in.data();
  uint32_t klen = 0;
  GetVarint32(&in, &klen);
  in.RemovePrefix(klen);
  if (is_leaf()) {
    uint32_t vlen = 0;
    GetVarint32(&in, &vlen);
    in.RemovePrefix(vlen);
  } else {
    in.RemovePrefix(4);
  }
  return static_cast<size_t>(in.data() - begin);
}

size_t NodeRef::FreeSpace() const {
  size_t slots_end = kHeaderSize + 2 * static_cast<size_t>(nkeys());
  return cell_start() - slots_end;
}

size_t NodeRef::FragBytes() const { return frag(); }

bool NodeRef::HasRoomFor(size_t cell_bytes) const {
  return FreeSpace() + FragBytes() >= cell_bytes + 2;
}

void NodeRef::Compact() {
  // Copy live cells out, then lay them back contiguously from the end.
  int n = nkeys();
  std::vector<std::string> cells(static_cast<size_t>(n));
  for (int i = 0; i < n; i++) {
    uint16_t off = SlotAt(i);
    size_t size = CellSize(off);
    cells[static_cast<size_t>(i)].assign(data_ + off, size);
  }
  uint16_t write = static_cast<uint16_t>(page_size_);
  for (int i = 0; i < n; i++) {
    const std::string& cell = cells[static_cast<size_t>(i)];
    write = static_cast<uint16_t>(write - cell.size());
    memcpy(data_ + write, cell.data(), cell.size());
    SetSlotAt(i, write);
  }
  set_cell_start(write);
  set_frag(0);
}

bool NodeRef::AppendCell(const char* cell, size_t size, uint16_t* off) {
  size_t slots_end = kHeaderSize + 2 * static_cast<size_t>(nkeys());
  if (cell_start() < slots_end + size + 2) {
    if (FreeSpace() + FragBytes() < size + 2) return false;
    Compact();
    if (cell_start() < slots_end + size + 2) return false;
  }
  uint16_t write = static_cast<uint16_t>(cell_start() - size);
  memcpy(data_ + write, cell, size);
  set_cell_start(write);
  *off = write;
  return true;
}

bool NodeRef::InsertCellAt(int index, const std::string& cell) {
  uint16_t off;
  if (!AppendCell(cell.data(), cell.size(), &off)) return false;
  int n = nkeys();
  for (int i = n; i > index; i--) {
    SetSlotAt(i, SlotAt(i - 1));
  }
  SetSlotAt(index, off);
  set_nkeys(static_cast<uint16_t>(n + 1));
  return true;
}

std::string NodeRef::EncodeLeafCell(const Slice& key,
                                    const Slice& value) const {
  std::string cell;
  PutVarint32(&cell, static_cast<uint32_t>(key.size()));
  cell.append(key.data(), key.size());
  PutVarint32(&cell, static_cast<uint32_t>(value.size()));
  cell.append(value.data(), value.size());
  return cell;
}

std::string NodeRef::EncodeInternalCell(const Slice& key,
                                        uint32_t child) const {
  std::string cell;
  PutVarint32(&cell, static_cast<uint32_t>(key.size()));
  cell.append(key.data(), key.size());
  char buf[4];
  EncodeFixed32(buf, child);
  cell.append(buf, 4);
  return cell;
}

bool NodeRef::InsertLeaf(const Slice& key, const Slice& value) {
  std::string cell = EncodeLeafCell(key, value);
  return InsertCellAt(LowerBound(key), cell);
}

bool NodeRef::UpdateLeaf(int i, const Slice& value) {
  std::string key = KeyAt(i).ToString();
  Remove(i);
  std::string cell = EncodeLeafCell(Slice(key), value);
  return InsertCellAt(i, cell);
}

bool NodeRef::InsertInternal(const Slice& key, uint32_t child) {
  std::string cell = EncodeInternalCell(key, child);
  return InsertCellAt(LowerBound(key), cell);
}

void NodeRef::Remove(int i) {
  uint16_t off = SlotAt(i);
  size_t size = CellSize(off);
  set_frag(static_cast<uint16_t>(frag() + size));
  if (off == cell_start()) {
    // The cell sits at the edge of the cell area; reclaim it directly.
    set_cell_start(static_cast<uint16_t>(off + size));
    set_frag(static_cast<uint16_t>(frag() - size));
  }
  int n = nkeys();
  for (int j = i; j < n - 1; j++) {
    SetSlotAt(j, SlotAt(j + 1));
  }
  set_nkeys(static_cast<uint16_t>(n - 1));
}

std::string NodeRef::SplitInto(NodeRef* dst) {
  int n = nkeys();
  int split = n / 2;
  // Copy the upper half into dst.
  for (int i = split; i < n; i++) {
    uint16_t off = SlotAt(i);
    size_t size = CellSize(off);
    uint16_t dst_off;
    bool ok = dst->AppendCell(data_ + off, size, &dst_off);
    assert(ok);
    (void)ok;
    dst->SetSlotAt(i - split, dst_off);
  }
  dst->set_nkeys(static_cast<uint16_t>(n - split));
  // Shrink this node; the removed cells become fragmentation.
  size_t removed = 0;
  for (int i = split; i < n; i++) removed += CellSize(SlotAt(i));
  set_frag(static_cast<uint16_t>(frag() + removed));
  set_nkeys(static_cast<uint16_t>(split));
  Compact();
  return dst->KeyAt(0).ToString();
}

}  // namespace apmbench::btree
