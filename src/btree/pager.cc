#include "btree/pager.h"

#include <algorithm>
#include <cstring>

#include "common/cache.h"
#include "common/coding.h"
#include "common/logging.h"

namespace apmbench::btree {

namespace {
constexpr uint64_t kPagerMagic = 0x41504d4254524545ull;  // "APMBTREE"
}  // namespace

void Pager::PageHandle::MarkDirty() {
  if (pager_ != nullptr) pager_->SetDirty(page_id_);
}

void Pager::PageHandle::Release() {
  if (pager_ != nullptr && data_ != nullptr) {
    pager_->Unpin(page_id_);
  }
  pager_ = nullptr;
  data_ = nullptr;
}

Pager::Pager(const PagerOptions& options) : options_(options) {
  env_ = options_.env != nullptr ? options_.env : Env::Default();
  shard_bits_ = std::max(0, std::min(options_.pool_shard_bits, 8));
  size_t frame_count = options_.buffer_pool_bytes / options_.page_size;
  if (frame_count < 8) frame_count = 8;
  // Every shard needs enough frames to pin a root-to-leaf path; drop
  // shards for tiny pools instead of inflating the configured capacity
  // (InnoDB likewise ignores buffer_pool_instances for small pools).
  while (shard_bits_ > 0 && (frame_count >> shard_bits_) < 8) {
    shard_bits_--;
  }
  size_t num_shards = size_t{1} << shard_bits_;
  size_t frames_per_shard = std::max<size_t>(8, frame_count / num_shards);
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; i++) {
    auto shard = std::make_unique<Shard>();
    shard->frames.resize(frames_per_shard);
    shards_.push_back(std::move(shard));
  }
}

Pager::Shard& Pager::ShardFor(uint32_t page_id) {
  uint32_t hash = CacheKeyHash(/*owner=*/page_id, /*offset=*/0);
  return *shards_[CacheShardOf(hash, shard_bits_)];
}

Pager::~Pager() {
  Status s = Checkpoint();
  if (!s.ok()) {
    APM_LOG_ERROR("pager checkpoint on close failed: %s",
                  s.ToString().c_str());
  }
}

Status Pager::Open(const PagerOptions& options, bool* created,
                   std::unique_ptr<Pager>* pager) {
  if (options.path.empty()) {
    return Status::InvalidArgument("PagerOptions::path must be set");
  }
  std::unique_ptr<Pager> p(new Pager(options));
  *created = !p->env_->FileExists(options.path);
  APM_RETURN_IF_ERROR(p->env_->NewRandomRWFile(options.path, &p->file_));
  if (*created) {
    APM_RETURN_IF_ERROR(p->WriteMeta());
  } else {
    APM_RETURN_IF_ERROR(p->LoadMeta());
  }
  *pager = std::move(p);
  return Status::OK();
}

Status Pager::LoadMeta() {
  std::vector<char> buf(options_.page_size);
  Slice result;
  APM_RETURN_IF_ERROR(file_->Read(0, options_.page_size, &result, buf.data()));
  if (result.size() < 32) return Status::Corruption("meta page too short");
  Slice in = result;
  uint64_t magic;
  uint32_t page_size;
  GetFixed64(&in, &magic);
  GetFixed32(&in, &page_size);
  if (magic != kPagerMagic) return Status::Corruption("bad pager magic");
  if (page_size != options_.page_size) {
    return Status::InvalidArgument("page size mismatch");
  }
  GetFixed32(&in, &page_count_);
  GetFixed32(&in, &root_);
  GetFixed64(&in, &user_counter_);
  meta_dirty_ = false;
  return Status::OK();
}

Status Pager::WriteMeta() {
  std::string page(options_.page_size, '\0');
  std::string header;
  PutFixed64(&header, kPagerMagic);
  PutFixed32(&header, static_cast<uint32_t>(options_.page_size));
  PutFixed32(&header, page_count_);
  PutFixed32(&header, root_);
  PutFixed64(&header, user_counter_);
  memcpy(page.data(), header.data(), header.size());
  APM_RETURN_IF_ERROR(file_->Write(0, Slice(page)));
  meta_dirty_ = false;
  return Status::OK();
}

Status Pager::ReadPageFromDisk(uint32_t page_id, char* data) {
  Slice result;
  APM_RETURN_IF_ERROR(file_->Read(
      static_cast<uint64_t>(page_id) * options_.page_size, options_.page_size,
      &result, data));
  if (result.size() != options_.page_size) {
    return Status::Corruption("short page read");
  }
  if (result.data() != data) {
    memcpy(data, result.data(), options_.page_size);
  }
  return Status::OK();
}

Status Pager::WritePageToDisk(uint32_t page_id, const char* data) {
  return file_->Write(static_cast<uint64_t>(page_id) * options_.page_size,
                      Slice(data, options_.page_size));
}

void Pager::TouchLru(Shard* shard, size_t frame_index) {
  Frame& frame = shard->frames[frame_index];
  if (frame.in_lru) {
    shard->lru.splice(shard->lru.begin(), shard->lru, frame.lru_it);
  } else {
    shard->lru.push_front(frame_index);
    frame.lru_it = shard->lru.begin();
    frame.in_lru = true;
  }
}

Status Pager::GetFreeFrame(Shard* shard, size_t* frame_index) {
  // First hand out a frame that has never been used.
  if (shard->next_unused < shard->frames.size()) {
    size_t index = shard->next_unused++;
    shard->frames[index].data = std::make_unique<char[]>(options_.page_size);
    *frame_index = index;
    return Status::OK();
  }
  // Evict the least recently used unpinned page.
  for (auto it = shard->lru.rbegin(); it != shard->lru.rend(); ++it) {
    size_t index = *it;
    Frame& frame = shard->frames[index];
    if (frame.pins > 0) continue;
    if (frame.dirty) {
      APM_RETURN_IF_ERROR(WritePageToDisk(frame.page_id, frame.data.get()));
      frame.dirty = false;
    }
    shard->page_table.erase(frame.page_id);
    shard->lru.erase(frame.lru_it);
    frame.in_lru = false;
    *frame_index = index;
    return Status::OK();
  }
  return Status::Busy("buffer pool exhausted: all pages pinned");
}

Status Pager::FetchPage(uint32_t page_id, PageHandle* handle) {
  Shard& shard = ShardFor(page_id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.page_table.find(page_id);
  if (it != shard.page_table.end()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    Frame& frame = shard.frames[it->second];
    frame.pins++;
    TouchLru(&shard, it->second);
    *handle = PageHandle(this, page_id, frame.data.get());
    return Status::OK();
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  size_t index;
  APM_RETURN_IF_ERROR(GetFreeFrame(&shard, &index));
  Frame& frame = shard.frames[index];
  APM_RETURN_IF_ERROR(ReadPageFromDisk(page_id, frame.data.get()));
  frame.page_id = page_id;
  frame.dirty = false;
  frame.pins = 1;
  shard.page_table[page_id] = index;
  TouchLru(&shard, index);
  *handle = PageHandle(this, page_id, frame.data.get());
  return Status::OK();
}

Status Pager::NewPage(uint32_t* page_id, PageHandle* handle) {
  // page_count_ / meta_dirty_ are guarded by the BTree's exclusive lock
  // (NewPage is only reachable from mutators); only the frame bookkeeping
  // needs the shard mutex.
  *page_id = page_count_++;
  meta_dirty_ = true;
  Shard& shard = ShardFor(*page_id);
  std::lock_guard<std::mutex> lock(shard.mu);
  size_t index;
  APM_RETURN_IF_ERROR(GetFreeFrame(&shard, &index));
  Frame& frame = shard.frames[index];
  memset(frame.data.get(), 0, options_.page_size);
  frame.page_id = *page_id;
  frame.dirty = true;
  frame.pins = 1;
  shard.page_table[*page_id] = index;
  TouchLru(&shard, index);
  *handle = PageHandle(this, *page_id, frame.data.get());
  return Status::OK();
}

void Pager::Unpin(uint32_t page_id) {
  Shard& shard = ShardFor(page_id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.page_table.find(page_id);
  if (it == shard.page_table.end()) return;
  Frame& frame = shard.frames[it->second];
  APM_CHECK(frame.pins > 0);
  frame.pins--;
}

void Pager::SetDirty(uint32_t page_id) {
  Shard& shard = ShardFor(page_id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.page_table.find(page_id);
  if (it == shard.page_table.end()) return;
  shard.frames[it->second].dirty = true;
}

Status Pager::Checkpoint() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (Frame& frame : shard->frames) {
      if (frame.data != nullptr && frame.dirty) {
        APM_RETURN_IF_ERROR(WritePageToDisk(frame.page_id, frame.data.get()));
        frame.dirty = false;
      }
    }
  }
  if (meta_dirty_) {
    APM_RETURN_IF_ERROR(WriteMeta());
  }
  return file_->Sync();
}

}  // namespace apmbench::btree
