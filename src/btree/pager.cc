#include "btree/pager.h"

#include <cstring>

#include "common/coding.h"
#include "common/logging.h"

namespace apmbench::btree {

namespace {
constexpr uint64_t kPagerMagic = 0x41504d4254524545ull;  // "APMBTREE"
}  // namespace

void Pager::PageHandle::MarkDirty() {
  if (pager_ != nullptr) pager_->SetDirty(page_id_);
}

void Pager::PageHandle::Release() {
  if (pager_ != nullptr && data_ != nullptr) {
    pager_->Unpin(page_id_);
  }
  pager_ = nullptr;
  data_ = nullptr;
}

Pager::Pager(const PagerOptions& options) : options_(options) {
  env_ = options_.env != nullptr ? options_.env : Env::Default();
  size_t frame_count = options_.buffer_pool_bytes / options_.page_size;
  if (frame_count < 8) frame_count = 8;
  frames_.resize(frame_count);
}

Pager::~Pager() {
  Status s = Checkpoint();
  if (!s.ok()) {
    APM_LOG_ERROR("pager checkpoint on close failed: %s",
                  s.ToString().c_str());
  }
}

Status Pager::Open(const PagerOptions& options, bool* created,
                   std::unique_ptr<Pager>* pager) {
  if (options.path.empty()) {
    return Status::InvalidArgument("PagerOptions::path must be set");
  }
  std::unique_ptr<Pager> p(new Pager(options));
  *created = !p->env_->FileExists(options.path);
  APM_RETURN_IF_ERROR(p->env_->NewRandomRWFile(options.path, &p->file_));
  if (*created) {
    APM_RETURN_IF_ERROR(p->WriteMeta());
  } else {
    APM_RETURN_IF_ERROR(p->LoadMeta());
  }
  *pager = std::move(p);
  return Status::OK();
}

Status Pager::LoadMeta() {
  std::vector<char> buf(options_.page_size);
  Slice result;
  APM_RETURN_IF_ERROR(file_->Read(0, options_.page_size, &result, buf.data()));
  if (result.size() < 32) return Status::Corruption("meta page too short");
  Slice in = result;
  uint64_t magic;
  uint32_t page_size;
  GetFixed64(&in, &magic);
  GetFixed32(&in, &page_size);
  if (magic != kPagerMagic) return Status::Corruption("bad pager magic");
  if (page_size != options_.page_size) {
    return Status::InvalidArgument("page size mismatch");
  }
  GetFixed32(&in, &page_count_);
  GetFixed32(&in, &root_);
  GetFixed64(&in, &user_counter_);
  meta_dirty_ = false;
  return Status::OK();
}

Status Pager::WriteMeta() {
  std::string page(options_.page_size, '\0');
  std::string header;
  PutFixed64(&header, kPagerMagic);
  PutFixed32(&header, static_cast<uint32_t>(options_.page_size));
  PutFixed32(&header, page_count_);
  PutFixed32(&header, root_);
  PutFixed64(&header, user_counter_);
  memcpy(page.data(), header.data(), header.size());
  APM_RETURN_IF_ERROR(file_->Write(0, Slice(page)));
  meta_dirty_ = false;
  return Status::OK();
}

Status Pager::ReadPageFromDisk(uint32_t page_id, char* data) {
  Slice result;
  APM_RETURN_IF_ERROR(file_->Read(
      static_cast<uint64_t>(page_id) * options_.page_size, options_.page_size,
      &result, data));
  if (result.size() != options_.page_size) {
    return Status::Corruption("short page read");
  }
  if (result.data() != data) {
    memcpy(data, result.data(), options_.page_size);
  }
  return Status::OK();
}

Status Pager::WritePageToDisk(uint32_t page_id, const char* data) {
  return file_->Write(static_cast<uint64_t>(page_id) * options_.page_size,
                      Slice(data, options_.page_size));
}

void Pager::TouchLru(size_t frame_index) {
  Frame& frame = frames_[frame_index];
  if (frame.in_lru) {
    lru_.splice(lru_.begin(), lru_, frame.lru_it);
  } else {
    lru_.push_front(frame_index);
    frame.lru_it = lru_.begin();
    frame.in_lru = true;
  }
}

Status Pager::GetFreeFrame(size_t* frame_index) {
  // First look for a frame that has never been used.
  for (size_t i = 0; i < frames_.size(); i++) {
    if (frames_[i].data == nullptr) {
      frames_[i].data = std::make_unique<char[]>(options_.page_size);
      *frame_index = i;
      return Status::OK();
    }
  }
  // Evict the least recently used unpinned page.
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    size_t index = *it;
    Frame& frame = frames_[index];
    if (frame.pins > 0) continue;
    if (frame.dirty) {
      APM_RETURN_IF_ERROR(WritePageToDisk(frame.page_id, frame.data.get()));
      frame.dirty = false;
    }
    page_table_.erase(frame.page_id);
    lru_.erase(frame.lru_it);
    frame.in_lru = false;
    *frame_index = index;
    return Status::OK();
  }
  return Status::Busy("buffer pool exhausted: all pages pinned");
}

Status Pager::FetchPage(uint32_t page_id, PageHandle* handle) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = page_table_.find(page_id);
  if (it != page_table_.end()) {
    hits_++;
    Frame& frame = frames_[it->second];
    frame.pins++;
    TouchLru(it->second);
    *handle = PageHandle(this, page_id, frame.data.get());
    return Status::OK();
  }
  misses_++;
  size_t index;
  APM_RETURN_IF_ERROR(GetFreeFrame(&index));
  Frame& frame = frames_[index];
  APM_RETURN_IF_ERROR(ReadPageFromDisk(page_id, frame.data.get()));
  frame.page_id = page_id;
  frame.dirty = false;
  frame.pins = 1;
  page_table_[page_id] = index;
  TouchLru(index);
  *handle = PageHandle(this, page_id, frame.data.get());
  return Status::OK();
}

Status Pager::NewPage(uint32_t* page_id, PageHandle* handle) {
  std::lock_guard<std::mutex> lock(mu_);
  *page_id = page_count_++;
  meta_dirty_ = true;
  size_t index;
  APM_RETURN_IF_ERROR(GetFreeFrame(&index));
  Frame& frame = frames_[index];
  memset(frame.data.get(), 0, options_.page_size);
  frame.page_id = *page_id;
  frame.dirty = true;
  frame.pins = 1;
  page_table_[*page_id] = index;
  TouchLru(index);
  *handle = PageHandle(this, *page_id, frame.data.get());
  return Status::OK();
}

void Pager::Unpin(uint32_t page_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = page_table_.find(page_id);
  if (it == page_table_.end()) return;
  Frame& frame = frames_[it->second];
  APM_CHECK(frame.pins > 0);
  frame.pins--;
}

void Pager::SetDirty(uint32_t page_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = page_table_.find(page_id);
  if (it == page_table_.end()) return;
  frames_[it->second].dirty = true;
}

Status Pager::Checkpoint() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Frame& frame : frames_) {
    if (frame.data != nullptr && frame.dirty) {
      APM_RETURN_IF_ERROR(WritePageToDisk(frame.page_id, frame.data.get()));
      frame.dirty = false;
    }
  }
  if (meta_dirty_) {
    APM_RETURN_IF_ERROR(WriteMeta());
  }
  return file_->Sync();
}

}  // namespace apmbench::btree
