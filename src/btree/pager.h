#ifndef APMBENCH_BTREE_PAGER_H_
#define APMBENCH_BTREE_PAGER_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/env.h"
#include "common/status.h"

namespace apmbench::btree {

/// Pager configuration.
struct PagerOptions {
  std::string path;
  Env* env = nullptr;
  size_t page_size = 4096;
  /// Buffer pool capacity; InnoDB's central tuning knob, sized to the
  /// machine's memory in the paper's MySQL setup.
  size_t buffer_pool_bytes = 32 * 1024 * 1024;
  /// log2 of the number of buffer-pool shards (InnoDB's
  /// innodb_buffer_pool_instances analogue). Pages hash to a shard, each
  /// with its own mutex, frame array, page table, and LRU list, so
  /// concurrent readers on different pages rarely contend. Clamped to
  /// [0, 8].
  int pool_shard_bits = 4;
};

/// Page file + sharded LRU buffer pool. Page 0 is the metadata page
/// (magic, page size, page count, root page id); pages are fetched into
/// pinned frames and written back on eviction or checkpoint.
///
/// Thread-safety: pool bookkeeping (page table, LRU, pins) is sharded by
/// page-id hash — the same shard map as common/cache.h — with one mutex
/// per shard, so concurrent *readers* of the owning BTree fetch pages in
/// parallel and only collide when two pages land in the same shard. A
/// shard's mutex is held only for the lookup / eviction, never while
/// callers use the page data; hit/miss counters are atomics. Page
/// *contents* and the meta fields (root, page count, user counter) are
/// protected by the BTree's reader/writer lock: mutators hold it
/// exclusively, so a pinned page is immutable while shared-lock readers
/// look at it. Eviction only touches unpinned frames, so it never writes
/// a page a reader is using.
class Pager {
 public:
  static constexpr uint32_t kMetaPage = 0;

  /// Opens (or creates) the page file; `*created` reports a fresh file.
  static Status Open(const PagerOptions& options, bool* created,
                     std::unique_ptr<Pager>* pager);

  ~Pager();

  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  /// RAII pin on a buffered page. MarkDirty before mutating `data`.
  class PageHandle {
   public:
    PageHandle() = default;
    PageHandle(Pager* pager, uint32_t page_id, char* data)
        : pager_(pager), page_id_(page_id), data_(data) {}
    ~PageHandle() { Release(); }

    PageHandle(PageHandle&& other) noexcept { *this = std::move(other); }
    PageHandle& operator=(PageHandle&& other) noexcept {
      Release();
      pager_ = other.pager_;
      page_id_ = other.page_id_;
      data_ = other.data_;
      other.pager_ = nullptr;
      other.data_ = nullptr;
      return *this;
    }
    PageHandle(const PageHandle&) = delete;
    PageHandle& operator=(const PageHandle&) = delete;

    char* data() const { return data_; }
    uint32_t page_id() const { return page_id_; }
    bool valid() const { return data_ != nullptr; }
    void MarkDirty();

   private:
    void Release();

    Pager* pager_ = nullptr;
    uint32_t page_id_ = 0;
    char* data_ = nullptr;
  };

  Status FetchPage(uint32_t page_id, PageHandle* handle);
  /// Allocates a fresh page at the end of the file. Writer-side only
  /// (callers hold the BTree's exclusive lock, which guards page_count_).
  Status NewPage(uint32_t* page_id, PageHandle* handle);

  /// Writes all dirty pages (and the meta page) to disk and syncs.
  Status Checkpoint();

  uint32_t root() const { return root_; }
  void set_root(uint32_t root) {
    root_ = root;
    meta_dirty_ = true;
  }

  /// An opaque 64-bit value persisted in the meta page for the owner
  /// (the B+tree stores its key count here).
  uint64_t user_counter() const { return user_counter_; }
  void set_user_counter(uint64_t v) {
    if (v != user_counter_) {
      user_counter_ = v;
      meta_dirty_ = true;
    }
  }
  uint32_t page_count() const { return page_count_; }
  size_t page_size() const { return options_.page_size; }
  int num_shards() const { return static_cast<int>(shards_.size()); }

  uint64_t pool_hits() const {
    return hits_.load(std::memory_order_relaxed);
  }
  uint64_t pool_misses() const {
    return misses_.load(std::memory_order_relaxed);
  }

 private:
  struct Frame {
    uint32_t page_id = 0;
    std::unique_ptr<char[]> data;
    bool dirty = false;
    int pins = 0;
    std::list<size_t>::iterator lru_it;
    bool in_lru = false;
  };

  /// One buffer-pool instance: frames, page table, and LRU list under a
  /// private mutex. Pages map to shards by hashed page id.
  struct Shard {
    mutable std::mutex mu;
    std::vector<Frame> frames;
    size_t next_unused = 0;  // frames[0..next_unused) have been allocated
    std::unordered_map<uint32_t, size_t> page_table;
    std::list<size_t> lru;  // frame indices, front = most recent
  };

  explicit Pager(const PagerOptions& options);

  Shard& ShardFor(uint32_t page_id);

  Status LoadMeta();
  Status WriteMeta();
  Status ReadPageFromDisk(uint32_t page_id, char* data);
  Status WritePageToDisk(uint32_t page_id, const char* data);
  /// Finds a reusable frame in `shard`, evicting the LRU unpinned page if
  /// needed. Called with the shard mutex held.
  Status GetFreeFrame(Shard* shard, size_t* frame_index);
  void Unpin(uint32_t page_id);
  void SetDirty(uint32_t page_id);
  static void TouchLru(Shard* shard, size_t frame_index);

  PagerOptions options_;
  Env* env_ = nullptr;
  std::unique_ptr<RandomRWFile> file_;

  int shard_bits_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;

  /// Meta fields are writer-side state guarded by the owning BTree's
  /// exclusive lock, not by any shard mutex.
  uint32_t page_count_ = 1;  // page 0 is meta
  uint32_t root_ = 0;        // 0 = empty tree
  uint64_t user_counter_ = 0;
  bool meta_dirty_ = true;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

}  // namespace apmbench::btree

#endif  // APMBENCH_BTREE_PAGER_H_
