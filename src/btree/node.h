#ifndef APMBENCH_BTREE_NODE_H_
#define APMBENCH_BTREE_NODE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/slice.h"

namespace apmbench::btree {

/// Slotted-page layout shared by leaf and internal B+tree nodes, in the
/// style of InnoDB/SQLite pages:
///
///   [header 16B][slot array: u16 * nkeys][ ...free... ][cells]
///
/// Cells grow down from the page end; slots grow up after the header and
/// hold the byte offset of each cell, kept sorted by key. Deleting a cell
/// removes its slot and adds its bytes to `frag`; when free space runs
/// out, the page is compacted in place.
///
/// Leaf cell:     varint klen | key | varint vlen | value
/// Internal cell: varint klen | key | u32 child-page-id
///
/// An internal node with n keys has n+1 children: cell i's child holds
/// keys < key_i; the header's `right` field is the rightmost child
/// (keys >= key_{n-1}). In leaves `right` is the next-leaf sibling (0 when
/// none; page 0 is the metadata page so it never appears as a sibling).
class NodeRef {
 public:
  static constexpr size_t kHeaderSize = 16;
  static constexpr uint8_t kLeaf = 1;
  static constexpr uint8_t kInternal = 2;

  NodeRef(char* data, size_t page_size) : data_(data), page_size_(page_size) {}

  /// Formats a fresh page.
  void Init(uint8_t type);

  uint8_t type() const;
  bool is_leaf() const { return type() == kLeaf; }
  uint16_t nkeys() const;
  uint32_t right() const;
  void set_right(uint32_t page_id);

  /// Key of cell `i` (0 <= i < nkeys).
  Slice KeyAt(int i) const;
  /// Leaf only: value of cell `i`.
  Slice ValueAt(int i) const;
  /// Internal only: child pointer of cell `i`.
  uint32_t ChildAt(int i) const;
  /// Internal only: overwrites the child pointer of cell `i` in place.
  void SetChildAt(int i, uint32_t child);

  /// Smallest index with KeyAt(i) >= key, or nkeys() when none.
  int LowerBound(const Slice& key) const;

  /// Inserts a leaf cell at the sorted position; returns false when the
  /// page is full even after compaction (caller must split).
  bool InsertLeaf(const Slice& key, const Slice& value);
  /// Replaces the value of cell `i`. Returns false when the new value no
  /// longer fits, in which case the old cell has already been removed and
  /// the caller must re-insert through the splitting path.
  bool UpdateLeaf(int i, const Slice& value);
  /// Inserts an internal cell (key, left-child) at the sorted position.
  bool InsertInternal(const Slice& key, uint32_t child);

  /// Removes cell `i`.
  void Remove(int i);

  /// Moves the upper half of the cells into `dst` (same type, freshly
  /// initialized) and returns the first key now in `dst`.
  std::string SplitInto(NodeRef* dst);

  /// Bytes available for one more cell (including its slot).
  size_t FreeSpace() const;
  /// Bytes reclaimable by compaction.
  size_t FragBytes() const;

  /// True when the node has room for a cell of the given payload size.
  bool HasRoomFor(size_t cell_bytes) const;

  /// Rewrites the page dropping fragmentation.
  void Compact();

 private:
  uint16_t cell_start() const;
  void set_type(uint8_t t);
  void set_nkeys(uint16_t n);
  void set_cell_start(uint16_t off);
  uint16_t frag() const;
  void set_frag(uint16_t f);
  uint16_t SlotAt(int i) const;
  void SetSlotAt(int i, uint16_t off);
  /// Size in bytes of the cell at offset `off`.
  size_t CellSize(uint16_t off) const;
  /// Appends raw cell bytes to the cell area; returns its offset.
  bool AppendCell(const char* cell, size_t size, uint16_t* off);
  bool InsertCellAt(int index, const std::string& cell);
  std::string EncodeLeafCell(const Slice& key, const Slice& value) const;
  std::string EncodeInternalCell(const Slice& key, uint32_t child) const;

  char* data_;
  size_t page_size_;
};

}  // namespace apmbench::btree

#endif  // APMBENCH_BTREE_NODE_H_
