#include "stores/redis_store.h"

#include <algorithm>

namespace apmbench::stores {

RedisStore::RedisStore(const StoreOptions& options)
    : options_(options),
      ring_(options.num_nodes),
      fanout_(options.fanout_threads > 0
                  ? options.fanout_threads
                  : FanoutExecutor::DefaultPoolSize(options.num_nodes)) {}

Status RedisStore::Open(const StoreOptions& options,
                        std::unique_ptr<RedisStore>* store) {
  if (options.redis_aof && options.base_dir.empty()) {
    return Status::InvalidArgument("AOF requires StoreOptions::base_dir");
  }
  std::unique_ptr<RedisStore> s(new RedisStore(options));
  Env* env = options.env != nullptr ? options.env : Env::Default();
  for (int i = 0; i < options.num_nodes; i++) {
    hashkv::Options kv_options;
    kv_options.env = options.env;
    if (options.redis_aof) {
      std::string dir = options.base_dir + "/node" + std::to_string(i);
      APM_RETURN_IF_ERROR(env->CreateDirIfMissing(dir));
      kv_options.aof_path = dir + "/appendonly.aof";
    }
    std::unique_ptr<hashkv::HashKV> kv;
    APM_RETURN_IF_ERROR(hashkv::HashKV::Open(kv_options, &kv));
    s->nodes_.push_back(std::move(kv));
  }
  *store = std::move(s);
  return Status::OK();
}

Status RedisStore::Read(const std::string& table, const Slice& key,
                        ycsb::Record* record) {
  (void)table;
  int node = ring_.Route(key);
  std::string value;
  APM_RETURN_IF_ERROR(nodes_[static_cast<size_t>(node)]->Get(key, &value));
  if (!ycsb::DecodeRecord(Slice(value), record)) {
    return Status::Corruption("undecodable record");
  }
  return Status::OK();
}

Status RedisStore::ScanKeyed(const std::string& table,
                             const Slice& start_key, int count,
                             std::vector<ycsb::KeyedRecord>* records) {
  (void)table;
  records->clear();
  // Hash sharding scatters the key range: the client queries every
  // instance's sorted index in parallel and k-way merges (the YCSB Redis
  // client keeps an index sorted set per instance for exactly this). The
  // merge stops once `count` globally-smallest keys are emitted, so a
  // shard's surplus candidates are never decoded.
  std::vector<std::vector<std::pair<std::string, std::string>>> runs(
      nodes_.size());
  std::vector<FanoutExecutor::Task> tasks;
  tasks.reserve(nodes_.size());
  for (size_t i = 0; i < nodes_.size(); i++) {
    tasks.push_back([this, &runs, &start_key, count, i]() {
      return nodes_[i]->Scan(start_key, count, &runs[i]);
    });
  }
  APM_RETURN_IF_ERROR(fanout_.RunAll(std::move(tasks)));
  std::vector<std::pair<std::string, std::string>> merged;
  MergeSortedRuns(
      &runs, static_cast<size_t>(count), /*dedup=*/false,
      [](const auto& kv) -> const std::string& { return kv.first; }, &merged);
  records->reserve(merged.size());
  for (const auto& [key, value] : merged) {
    ycsb::KeyedRecord entry;
    entry.key = key;
    if (!ycsb::DecodeRecord(Slice(value), &entry.record)) {
      return Status::Corruption("undecodable record in scan");
    }
    records->push_back(std::move(entry));
  }
  return Status::OK();
}

Status RedisStore::Insert(const std::string& table, const Slice& key,
                          const ycsb::Record& record) {
  (void)table;
  std::string value;
  ycsb::EncodeRecord(record, &value);
  int node = ring_.Route(key);
  return nodes_[static_cast<size_t>(node)]->Set(key, Slice(value));
}

Status RedisStore::Update(const std::string& table, const Slice& key,
                          const ycsb::Record& record) {
  return Insert(table, key, record);
}

Status RedisStore::Delete(const std::string& table, const Slice& key) {
  (void)table;
  int node = ring_.Route(key);
  return nodes_[static_cast<size_t>(node)]->Del(key);
}

Status RedisStore::DiskUsage(uint64_t* bytes) {
  // In-memory store; with AOF enabled, report the AOF bytes.
  *bytes = 0;
  for (auto& node : nodes_) {
    *bytes += node->GetStats().aof_bytes;
  }
  return Status::OK();
}

hashkv::HashKV::Stats RedisStore::NodeStats(int node) {
  return nodes_[static_cast<size_t>(node)]->GetStats();
}

}  // namespace apmbench::stores
