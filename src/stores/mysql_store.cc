#include "stores/mysql_store.h"

#include <limits>

#include "common/coding.h"

namespace apmbench::stores {

MySQLStore::MySQLStore(const StoreOptions& options)
    : options_(options),
      sharder_(options.num_nodes),
      fanout_(options.fanout_threads > 0
                  ? options.fanout_threads
                  : FanoutExecutor::DefaultPoolSize(options.num_nodes)) {}

Status MySQLStore::Open(const StoreOptions& options,
                        std::unique_ptr<MySQLStore>* store) {
  if (options.base_dir.empty()) {
    return Status::InvalidArgument("StoreOptions::base_dir must be set");
  }
  std::unique_ptr<MySQLStore> s(new MySQLStore(options));
  Env* env = options.env != nullptr ? options.env : Env::Default();
  for (int i = 0; i < options.num_nodes; i++) {
    std::string dir = options.base_dir + "/node" + std::to_string(i);
    APM_RETURN_IF_ERROR(env->CreateDirIfMissing(dir));
    btree::Options db_options;
    db_options.path = dir + "/innodb.db";
    db_options.env = options.env;
    db_options.buffer_pool_bytes = options.buffer_pool_bytes;
    // One shard-bits knob drives both engines' caches: the lsm block
    // cache and the btree buffer pool share the shard map.
    db_options.pool_shard_bits = options.block_cache_shard_bits;
    if (options.mysql_binlog) {
      db_options.binlog_path = dir + "/binlog.001";
    }
    std::unique_ptr<btree::BTree> db;
    APM_RETURN_IF_ERROR(btree::BTree::Open(db_options, &db));
    s->nodes_.push_back(std::move(db));
  }
  *store = std::move(s);
  return Status::OK();
}

namespace {

// InnoDB's compact row format spends ~18 bytes per row beyond the user
// columns: a 5-byte record header, the 6-byte transaction id, and the
// 7-byte rollback pointer. Stored verbatim so the page-file (and the
// binlog, which logs the same row image) reflects the real footprint.
constexpr size_t kInnoDbRowHeader = 5 + 6 + 7;

void EncodeInnoDbRow(const ycsb::Record& record, std::string* out) {
  out->clear();
  out->append(kInnoDbRowHeader, '\0');
  std::string payload;
  ycsb::EncodeRecord(record, &payload);
  out->append(payload);
}

bool DecodeInnoDbRow(const Slice& data, ycsb::Record* record) {
  if (data.size() < kInnoDbRowHeader) return false;
  return ycsb::DecodeRecord(
      Slice(data.data() + kInnoDbRowHeader, data.size() - kInnoDbRowHeader),
      record);
}

}  // namespace

Status MySQLStore::Read(const std::string& table, const Slice& key,
                        ycsb::Record* record) {
  (void)table;
  int node = sharder_.Route(key);
  std::string value;
  APM_RETURN_IF_ERROR(nodes_[static_cast<size_t>(node)]->Get(key, &value));
  if (!DecodeInnoDbRow(Slice(value), record)) {
    return Status::Corruption("undecodable record");
  }
  return Status::OK();
}

Status MySQLStore::ScanKeyed(const std::string& table,
                             const Slice& start_key, int count,
                             std::vector<ycsb::KeyedRecord>* records) {
  (void)table;
  records->clear();
  // The YCSB RDBMS client sends the scan to the shard holding the start
  // key only (hash sharding makes a complete ordered scan impossible
  // anyway) as SELECT ... WHERE key >= start — without a LIMIT unless the
  // ablation flag is set.
  int node = sharder_.Route(start_key);
  int fetch = options_.mysql_limit_scans
                  ? count
                  : std::numeric_limits<int>::max();
  std::vector<std::pair<std::string, std::string>> rows;
  APM_RETURN_IF_ERROR(
      nodes_[static_cast<size_t>(node)]->Scan(start_key, fetch, &rows));
  int keep = std::min<int>(count, static_cast<int>(rows.size()));
  records->reserve(static_cast<size_t>(keep));
  for (int i = 0; i < keep; i++) {
    ycsb::KeyedRecord entry;
    entry.key = rows[static_cast<size_t>(i)].first;
    if (!DecodeInnoDbRow(Slice(rows[static_cast<size_t>(i)].second),
                         &entry.record)) {
      return Status::Corruption("undecodable record in scan");
    }
    records->push_back(std::move(entry));
  }
  return Status::OK();
}

Status MySQLStore::Insert(const std::string& table, const Slice& key,
                          const ycsb::Record& record) {
  (void)table;
  std::string value;
  EncodeInnoDbRow(record, &value);
  int node = sharder_.Route(key);
  return nodes_[static_cast<size_t>(node)]->Put(key, Slice(value));
}

Status MySQLStore::Update(const std::string& table, const Slice& key,
                          const ycsb::Record& record) {
  return Insert(table, key, record);
}

Status MySQLStore::Delete(const std::string& table, const Slice& key) {
  (void)table;
  int node = sharder_.Route(key);
  return nodes_[static_cast<size_t>(node)]->Delete(key);
}

Status MySQLStore::DiskUsage(uint64_t* bytes) {
  // Scans stay single-shard by design (the paper's RS collapse depends
  // on it); the multi-node operation here is the disk sweep.
  std::vector<uint64_t> per_node(nodes_.size(), 0);
  std::vector<FanoutExecutor::Task> tasks;
  tasks.reserve(nodes_.size());
  for (size_t i = 0; i < nodes_.size(); i++) {
    tasks.push_back(
        [this, &per_node, i]() { return nodes_[i]->DiskUsage(&per_node[i]); });
  }
  APM_RETURN_IF_ERROR(fanout_.RunAll(std::move(tasks)));
  *bytes = 0;
  for (uint64_t node_bytes : per_node) *bytes += node_bytes;
  return Status::OK();
}

btree::BTree::Stats MySQLStore::NodeStats(int node) {
  return nodes_[static_cast<size_t>(node)]->GetStats();
}

}  // namespace apmbench::stores
