#include "stores/cassandra_store.h"

#include <algorithm>

#include "common/clock.h"
#include "common/coding.h"
#include "common/rate_limiter.h"

namespace apmbench::stores {

CassandraStore::CassandraStore(const StoreOptions& options)
    : options_(options),
      ring_(options.num_nodes, cluster::TokenRing::TokenAssignment::kBalanced,
            /*seed=*/1),
      replication_factor_(
          std::max(1, std::min(options.replication_factor,
                               options.num_nodes))),
      fanout_(options.fanout_threads > 0
                  ? options.fanout_threads
                  : FanoutExecutor::DefaultPoolSize(options.num_nodes)) {}

Status CassandraStore::Open(const StoreOptions& options,
                            std::unique_ptr<CassandraStore>* store) {
  if (options.base_dir.empty()) {
    return Status::InvalidArgument("StoreOptions::base_dir must be set");
  }
  std::unique_ptr<CassandraStore> s(new CassandraStore(options));
  // One token bucket for the whole store: the simulated nodes share one
  // machine's disk, so their background I/O draws from one budget.
  std::shared_ptr<RateLimiter> rate_limiter;
  if (options.lsm_rate_limit_bytes_per_sec > 0) {
    rate_limiter =
        std::make_shared<RateLimiter>(options.lsm_rate_limit_bytes_per_sec);
  }
  for (int i = 0; i < options.num_nodes; i++) {
    lsm::Options db_options;
    db_options.dir = options.base_dir + "/node" + std::to_string(i);
    db_options.env = options.env;
    db_options.memtable_bytes = options.memtable_bytes;
    db_options.block_cache_bytes = options.block_cache_bytes;
    db_options.block_cache_shard_bits = options.block_cache_shard_bits;
    db_options.bloom_bits_per_key = options.bloom_bits_per_key;
    db_options.compression = options.lsm_compression;
    db_options.compaction_style = lsm::CompactionStyle::kSizeTiered;
    db_options.compaction_threads = options.lsm_compaction_threads;
    db_options.level0_slowdown_trigger = options.lsm_level0_slowdown_trigger;
    db_options.level0_stop_trigger = options.lsm_level0_stop_trigger;
    db_options.rate_limiter = rate_limiter;
    std::unique_ptr<lsm::DB> db;
    APM_RETURN_IF_ERROR(lsm::DB::Open(db_options, &db));
    s->nodes_.push_back(std::move(db));
  }
  *store = std::move(s);
  return Status::OK();
}

namespace {

// Cassandra 1.0 serializes each column as (name, flags, timestamp,
// value); the per-column timestamp is what drives last-write-wins
// reconciliation — and part of why Figure 17's on-disk footprint is a
// multiple of the 75-byte raw record.
void EncodeRow(const ycsb::Record& record, std::string* out) {
  out->clear();
  PutVarint32(out, static_cast<uint32_t>(record.size()));
  uint64_t now = NowMicros();
  for (const auto& [name, value] : record) {
    PutLengthPrefixedSlice(out, Slice(name));
    out->push_back('\0');  // column flags
    PutFixed64(out, now);  // column timestamp
    PutLengthPrefixedSlice(out, Slice(value));
  }
}

bool DecodeRow(const Slice& data, ycsb::Record* record) {
  record->clear();
  Slice in = data;
  uint32_t count;
  if (!GetVarint32(&in, &count)) return false;
  record->reserve(count);
  for (uint32_t i = 0; i < count; i++) {
    Slice name, value;
    uint64_t timestamp;
    if (!GetLengthPrefixedSlice(&in, &name) || in.empty()) return false;
    in.RemovePrefix(1);  // flags
    if (!GetFixed64(&in, &timestamp) ||
        !GetLengthPrefixedSlice(&in, &value)) {
      return false;
    }
    record->emplace_back(name.ToString(), value.ToString());
  }
  return true;
}

}  // namespace

Status CassandraStore::Read(const std::string& table, const Slice& key,
                            ycsb::Record* record) {
  (void)table;
  int node = ring_.Route(key);
  std::string value;
  APM_RETURN_IF_ERROR(
      nodes_[static_cast<size_t>(node)]->Get(lsm::ReadOptions(), key, &value));
  if (!DecodeRow(Slice(value), record)) {
    return Status::Corruption("undecodable record");
  }
  return Status::OK();
}

Status CassandraStore::ScanKeyed(const std::string& table,
                                 const Slice& start_key, int count,
                                 std::vector<ycsb::KeyedRecord>* records) {
  (void)table;
  records->clear();
  // Random partitioning scatters the key range over every node; the
  // coordinator queries all nodes in parallel and k-way merges the
  // sorted candidate runs, deduplicating the keys replicas contribute
  // twice and stopping at `count` globally-smallest keys.
  std::vector<std::vector<std::pair<std::string, std::string>>> runs(
      nodes_.size());
  std::vector<FanoutExecutor::Task> tasks;
  tasks.reserve(nodes_.size());
  for (size_t i = 0; i < nodes_.size(); i++) {
    tasks.push_back([this, &runs, &start_key, count, i]() {
      return nodes_[i]->Scan(lsm::ReadOptions(), start_key, count, &runs[i]);
    });
  }
  APM_RETURN_IF_ERROR(fanout_.RunAll(std::move(tasks)));
  std::vector<std::pair<std::string, std::string>> merged;
  MergeSortedRuns(
      &runs, static_cast<size_t>(count), /*dedup=*/true,
      [](const auto& kv) -> const std::string& { return kv.first; }, &merged);
  records->reserve(merged.size());
  for (const auto& [key, value] : merged) {
    ycsb::KeyedRecord entry;
    entry.key = key;
    if (!DecodeRow(Slice(value), &entry.record)) {
      return Status::Corruption("undecodable record in scan");
    }
    records->push_back(std::move(entry));
  }
  return Status::OK();
}

Status CassandraStore::Insert(const std::string& table, const Slice& key,
                              const ycsb::Record& record) {
  (void)table;
  std::string value;
  EncodeRow(record, &value);
  // SimpleStrategy ring walk: the write lands on every replica, issued
  // in parallel as a coordinator does (consistency ALL: every replica
  // must acknowledge).
  std::vector<int> replicas = ring_.RouteReplicas(key, replication_factor_);
  if (replicas.size() == 1) {
    return nodes_[static_cast<size_t>(replicas[0])]->Put(key, Slice(value));
  }
  std::vector<FanoutExecutor::Task> tasks;
  tasks.reserve(replicas.size());
  for (int node : replicas) {
    tasks.push_back([this, node, &key, &value]() {
      return nodes_[static_cast<size_t>(node)]->Put(key, Slice(value));
    });
  }
  return fanout_.RunAll(std::move(tasks));
}

Status CassandraStore::Update(const std::string& table, const Slice& key,
                              const ycsb::Record& record) {
  // Cassandra updates are writes (last-write-wins cells).
  return Insert(table, key, record);
}

Status CassandraStore::Delete(const std::string& table, const Slice& key) {
  (void)table;
  std::vector<int> replicas = ring_.RouteReplicas(key, replication_factor_);
  if (replicas.size() == 1) {
    return nodes_[static_cast<size_t>(replicas[0])]->Delete(key);
  }
  std::vector<FanoutExecutor::Task> tasks;
  tasks.reserve(replicas.size());
  for (int node : replicas) {
    tasks.push_back([this, node, &key]() {
      return nodes_[static_cast<size_t>(node)]->Delete(key);
    });
  }
  return fanout_.RunAll(std::move(tasks));
}

Status CassandraStore::DiskUsage(uint64_t* bytes) {
  // Every node walks its directory tree; fan the walks out in parallel.
  std::vector<uint64_t> per_node(nodes_.size(), 0);
  std::vector<FanoutExecutor::Task> tasks;
  tasks.reserve(nodes_.size());
  for (size_t i = 0; i < nodes_.size(); i++) {
    tasks.push_back(
        [this, &per_node, i]() { return nodes_[i]->DiskUsage(&per_node[i]); });
  }
  APM_RETURN_IF_ERROR(fanout_.RunAll(std::move(tasks)));
  *bytes = 0;
  for (uint64_t node_bytes : per_node) *bytes += node_bytes;
  return Status::OK();
}

lsm::DB::Stats CassandraStore::NodeStats(int node) {
  return nodes_[static_cast<size_t>(node)]->GetStats();
}

Status CassandraStore::VerifyIntegrity() {
  for (auto& node : nodes_) {
    APM_RETURN_IF_ERROR(node->VerifyIntegrity());
  }
  return Status::OK();
}

}  // namespace apmbench::stores
