#include "stores/cassandra_store.h"

#include <algorithm>
#include <utility>

#include "common/clock.h"
#include "common/coding.h"
#include "common/hash.h"
#include "common/rate_limiter.h"

namespace apmbench::stores {

namespace {

cluster::MembershipOptions MembershipOptionsFrom(const StoreOptions& options) {
  cluster::MembershipOptions m;
  m.error_threshold = std::max(1, options.membership_error_threshold);
  m.probation_micros = options.membership_probation_micros;
  return m;
}

int DigestBitsFrom(int buckets) {
  // Round the knob down to a power of two so a bucket is a hash prefix;
  // clamp to [1, 2^16] leaves.
  int bits = 0;
  while ((1 << (bits + 1)) <= std::max(1, buckets) && bits < 16) bits++;
  return bits;
}

}  // namespace

CassandraStore::CassandraStore(const StoreOptions& options)
    : options_(options),
      ring_(options.num_nodes, cluster::TokenRing::TokenAssignment::kBalanced,
            /*seed=*/1),
      replication_factor_(
          std::max(1, std::min(options.replication_factor,
                               options.num_nodes))),
      digest_bits_(DigestBitsFrom(options.repair_digest_buckets)),
      fault_seam_(options.num_nodes),
      membership_(options.num_nodes, MembershipOptionsFrom(options)),
      fanout_(options.fanout_threads > 0
                  ? options.fanout_threads
                  : FanoutExecutor::DefaultPoolSize(options.num_nodes)) {}

Status CassandraStore::Open(const StoreOptions& options,
                            std::unique_ptr<CassandraStore>* store) {
  if (options.base_dir.empty()) {
    return Status::InvalidArgument("StoreOptions::base_dir must be set");
  }
  std::unique_ptr<CassandraStore> s(new CassandraStore(options));
  s->env_ = options.env != nullptr ? options.env : Env::Default();
  // One token bucket for the whole store: the simulated nodes share one
  // machine's disk, so their background I/O draws from one budget.
  std::shared_ptr<RateLimiter> rate_limiter;
  if (options.lsm_rate_limit_bytes_per_sec > 0) {
    rate_limiter =
        std::make_shared<RateLimiter>(options.lsm_rate_limit_bytes_per_sec);
  }
  for (int i = 0; i < options.num_nodes; i++) {
    lsm::Options db_options;
    db_options.dir = options.base_dir + "/node" + std::to_string(i);
    db_options.env = options.env;
    db_options.memtable_bytes = options.memtable_bytes;
    db_options.block_cache_bytes = options.block_cache_bytes;
    db_options.block_cache_shard_bits = options.block_cache_shard_bits;
    db_options.bloom_bits_per_key = options.bloom_bits_per_key;
    db_options.format_version = options.lsm_format_version;
    db_options.block_restart_interval = options.lsm_block_restart_interval;
    db_options.prefix_bloom_length = options.lsm_prefix_bloom_length;
    db_options.arena_block_bytes = options.lsm_arena_block_bytes;
    db_options.memtable_shards = options.lsm_memtable_shards;
    db_options.compression = options.lsm_compression;
    db_options.compaction_style = lsm::CompactionStyle::kSizeTiered;
    db_options.compaction_threads = options.lsm_compaction_threads;
    db_options.level0_slowdown_trigger = options.lsm_level0_slowdown_trigger;
    db_options.level0_stop_trigger = options.lsm_level0_stop_trigger;
    db_options.rate_limiter = rate_limiter;
    std::unique_ptr<lsm::DB> db;
    APM_RETURN_IF_ERROR(lsm::DB::Open(db_options, &db));
    s->nodes_.push_back(std::move(db));
  }
  // Hint queues live beside the node directories and survive restarts:
  // Open() recovers the pending counts from disk.
  APM_RETURN_IF_ERROR(s->env_->CreateDirIfMissing(options.base_dir));
  const std::string hints_dir = options.base_dir + "/hints";
  APM_RETURN_IF_ERROR(s->env_->CreateDirIfMissing(hints_dir));
  for (int i = 0; i < options.num_nodes; i++) {
    auto log = std::make_unique<cluster::HintLog>(
        s->env_, hints_dir + "/node" + std::to_string(i) + ".hints");
    APM_RETURN_IF_ERROR(log->Open());
    s->hints_.push_back(std::move(log));
  }
  *store = std::move(s);
  return Status::OK();
}

namespace {

// Cassandra 1.0 serializes each column as (name, flags, timestamp,
// value); the per-column timestamp is what drives last-write-wins
// reconciliation — and part of why Figure 17's on-disk footprint is a
// multiple of the 75-byte raw record.
void EncodeRow(const ycsb::Record& record, std::string* out) {
  out->clear();
  PutVarint32(out, static_cast<uint32_t>(record.size()));
  uint64_t now = NowMicros();
  for (const auto& [name, value] : record) {
    PutLengthPrefixedSlice(out, Slice(name));
    out->push_back('\0');  // column flags
    PutFixed64(out, now);  // column timestamp
    PutLengthPrefixedSlice(out, Slice(value));
  }
}

bool DecodeRow(const Slice& data, ycsb::Record* record) {
  record->clear();
  Slice in = data;
  uint32_t count;
  if (!GetVarint32(&in, &count)) return false;
  record->reserve(count);
  for (uint32_t i = 0; i < count; i++) {
    Slice name, value;
    uint64_t timestamp;
    if (!GetLengthPrefixedSlice(&in, &name) || in.empty()) return false;
    in.RemovePrefix(1);  // flags
    if (!GetFixed64(&in, &timestamp) ||
        !GetLengthPrefixedSlice(&in, &value)) {
      return false;
    }
    record->emplace_back(name.ToString(), value.ToString());
  }
  return true;
}

// Write timestamp of an encoded row (every column of a row shares one);
// 0 for undecodable rows, which then lose reconciliation.
uint64_t RowTimestamp(const Slice& data) {
  Slice in = data;
  uint32_t count;
  Slice name;
  uint64_t timestamp;
  if (!GetVarint32(&in, &count) || count == 0) return 0;
  if (!GetLengthPrefixedSlice(&in, &name) || in.empty()) return 0;
  in.RemovePrefix(1);  // flags
  if (!GetFixed64(&in, &timestamp)) return 0;
  return timestamp;
}

// Last-write-wins between two encoded rows: newer column timestamp, then
// larger value bytes as a deterministic tie-break (Cassandra does the
// same for identical timestamps).
bool RowWins(const std::string& a, const std::string& b) {
  uint64_t ta = RowTimestamp(Slice(a));
  uint64_t tb = RowTimestamp(Slice(b));
  if (ta != tb) return ta > tb;
  return a > b;
}

// Digest of one (key, value) entry: XOR-combining these per bucket lets
// two replicas compare content without shipping it. Seeding with the
// ring hash ties the value to its key, so swapped values across keys
// cannot cancel.
uint64_t EntryDigest(const Slice& key, const Slice& value) {
  return MurmurHash64A(value.data(), value.size(), cluster::RingHash(key));
}

Status NodeDownError(int node) {
  return Status::IOError("node " + std::to_string(node) + " is down");
}

}  // namespace

Status CassandraStore::NodeGet(int node, const Slice& key,
                               std::string* value) {
  Status s = fault_seam_.Check(node);
  if (s.ok()) {
    s = nodes_[static_cast<size_t>(node)]->Get(lsm::ReadOptions(), key,
                                               value);
  }
  if (s.ok() || s.IsNotFound()) {
    membership_.ReportSuccess(node);
  } else {
    membership_.ReportError(node);
  }
  return s;
}

Status CassandraStore::NodePut(int node, const Slice& key,
                               const Slice& value) {
  Status s = fault_seam_.Check(node);
  if (s.ok()) s = nodes_[static_cast<size_t>(node)]->Put(key, value);
  if (s.ok()) {
    membership_.ReportSuccess(node);
  } else {
    membership_.ReportError(node);
  }
  return s;
}

Status CassandraStore::NodeDelete(int node, const Slice& key) {
  Status s = fault_seam_.Check(node);
  if (s.ok()) s = nodes_[static_cast<size_t>(node)]->Delete(key);
  if (s.ok()) {
    membership_.ReportSuccess(node);
  } else {
    membership_.ReportError(node);
  }
  return s;
}

Status CassandraStore::NodeScan(
    int node, const Slice& start, int count,
    std::vector<std::pair<std::string, std::string>>* out) {
  Status s = fault_seam_.Check(node);
  if (s.ok()) {
    s = nodes_[static_cast<size_t>(node)]->Scan(lsm::ReadOptions(), start,
                                                count, out);
  }
  if (s.ok()) {
    membership_.ReportSuccess(node);
  } else {
    membership_.ReportError(node);
  }
  return s;
}

Status CassandraStore::ReplayHintsFor(int node) {
  uint64_t applied = 0;
  Status s = hints_[static_cast<size_t>(node)]->Replay(
      [&](const cluster::HintLog::Hint& hint) {
        Status as = hint.op == cluster::HintLog::OpKind::kPut
                        ? NodePut(node, hint.key, hint.value)
                        : NodeDelete(node, hint.key);
        if (as.ok()) applied++;
        return as;
      });
  // Count applies even when the run fails part-way: replay is
  // at-least-once and the whole queue is retried later.
  hints_replayed_.fetch_add(applied, std::memory_order_relaxed);
  return s;
}

void CassandraStore::DrainRecovered() {
  if (!options_.hinted_handoff) return;
  for (int node : membership_.TakeRecovered()) {
    if (hints_[static_cast<size_t>(node)]->pending() == 0) continue;
    // Best effort: a failing replay re-marks the node through the
    // applies' error reports and keeps the queue; the write path also
    // drains opportunistically, so no recovery is permanently missed.
    ReplayHintsFor(node);
  }
}

Status CassandraStore::Read(const std::string& table, const Slice& key,
                            ycsb::Record* record) {
  (void)table;
  // Consistency ONE with failover: first live replica in ring-walk order
  // answers; down nodes are skipped unless this request claims their
  // probation probe. NotFound is a definitive answer but a later replica
  // may still hold the row (the node recovered with hints or repair
  // outstanding), so keep walking and remember who to read-repair.
  std::vector<int> replicas = ring_.RouteReplicas(key, replication_factor_);
  std::string value;
  int winner = -1;
  bool any_answered = false;
  Status last_error;
  std::vector<int> stale;  // replicas that answered NotFound before the winner
  for (size_t i = 0; i < replicas.size(); i++) {
    int node = replicas[i];
    if (!membership_.IsLive(node) && !membership_.TryClaimProbe(node)) {
      last_error = NodeDownError(node);
      continue;
    }
    std::string v;
    Status s = NodeGet(node, key, &v);
    if (s.ok()) {
      winner = node;
      value = std::move(v);
      if (i > 0) failed_over_reads_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    if (s.IsNotFound()) {
      any_answered = true;
      stale.push_back(node);
      continue;
    }
    last_error = s;
  }
  DrainRecovered();
  if (winner < 0) {
    if (any_answered) return Status::NotFound("key not found: " + key.ToString());
    return last_error.ok() ? Status::IOError("no live replica") : last_error;
  }
  if (!DecodeRow(Slice(value), record)) {
    return Status::Corruption("undecodable record");
  }
  if (options_.read_repair) {
    // Write the winning row back to the replicas that missed it; they
    // answered, so they are reachable right now.
    for (int node : stale) {
      if (NodePut(node, key, Slice(value)).ok()) {
        read_repairs_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  return Status::OK();
}

Status CassandraStore::ReadAt(int node, const Slice& key,
                              ycsb::Record* record) {
  APM_RETURN_IF_ERROR(fault_seam_.Check(node));
  std::string value;
  APM_RETURN_IF_ERROR(
      nodes_[static_cast<size_t>(node)]->Get(lsm::ReadOptions(), key, &value));
  if (!DecodeRow(Slice(value), record)) {
    return Status::Corruption("undecodable record");
  }
  return Status::OK();
}

Status CassandraStore::ScanKeyed(const std::string& table,
                                 const Slice& start_key, int count,
                                 std::vector<ycsb::KeyedRecord>* records) {
  (void)table;
  records->clear();
  // Random partitioning scatters the key range over every node; the
  // coordinator queries the live nodes in parallel and k-way merges the
  // sorted candidate runs, deduplicating the keys replicas contribute
  // twice and stopping at `count` globally-smallest keys. Every key has
  // replication_factor replicas on distinct nodes, so up to rf - 1
  // unreachable nodes still leave one live run per key.
  std::vector<std::vector<std::pair<std::string, std::string>>> runs(
      nodes_.size());
  std::vector<FanoutExecutor::Task> tasks;
  std::vector<int> task_nodes;
  int unreachable = 0;
  Status first_error;
  tasks.reserve(nodes_.size());
  for (size_t i = 0; i < nodes_.size(); i++) {
    int node = static_cast<int>(i);
    if (!membership_.IsLive(node) && !membership_.TryClaimProbe(node)) {
      unreachable++;
      if (first_error.ok()) first_error = NodeDownError(node);
      continue;
    }
    task_nodes.push_back(node);
    tasks.push_back([this, &runs, &start_key, count, i, node]() {
      return NodeScan(node, start_key, count, &runs[i]);
    });
  }
  std::vector<Status> statuses;
  fanout_.RunAll(std::move(tasks), &statuses);
  for (size_t t = 0; t < statuses.size(); t++) {
    if (!statuses[t].ok()) {
      unreachable++;
      if (first_error.ok()) first_error = statuses[t];
      runs[static_cast<size_t>(task_nodes[t])].clear();
    }
  }
  DrainRecovered();
  if (unreachable >= replication_factor_) return first_error;
  std::vector<std::pair<std::string, std::string>> merged;
  MergeSortedRuns(
      &runs, static_cast<size_t>(count), /*dedup=*/true,
      [](const auto& kv) -> const std::string& { return kv.first; }, &merged);
  records->reserve(merged.size());
  for (const auto& [key, value] : merged) {
    ycsb::KeyedRecord entry;
    entry.key = key;
    if (!DecodeRow(Slice(value), &entry.record)) {
      return Status::Corruption("undecodable record in scan");
    }
    records->push_back(std::move(entry));
  }
  return Status::OK();
}

void CassandraStore::WriteOneReplica(int node, cluster::HintLog::OpKind op,
                                     const Slice& key, const Slice& value,
                                     ReplicaOutcome* out) {
  out->node = node;
  bool reachable =
      membership_.IsLive(node) || membership_.TryClaimProbe(node);
  Status s;
  if (reachable && options_.hinted_handoff &&
      hints_[static_cast<size_t>(node)]->pending() > 0) {
    // Queued hints must land before this write or a later replay would
    // clobber it with older data; drain them now, then write directly.
    s = ReplayHintsFor(node);
    reachable = s.ok();
  }
  if (reachable) {
    s = op == cluster::HintLog::OpKind::kPut ? NodePut(node, key, value)
                                             : NodeDelete(node, key);
  } else if (s.ok()) {
    s = NodeDownError(node);
  }
  if (s.ok()) {
    out->status = Status::OK();
    return;
  }
  if (options_.hinted_handoff) {
    Status hs = hints_[static_cast<size_t>(node)]->Append(op, key, value);
    if (hs.ok()) {
      out->status = s;
      out->hinted = true;
      hints_queued_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    out->status = hs;  // not even hinted: real divergence
    return;
  }
  out->status = s;
}

Status CassandraStore::WriteReplicated(const Slice& key,
                                       cluster::HintLog::OpKind op,
                                       const std::string& value,
                                       WriteReport* report) {
  // SimpleStrategy ring walk: the write goes to every replica in
  // parallel as a coordinator does. Acknowledgment needs one direct ack
  // plus a durable hint for every replica that missed it — then no acked
  // write can be lost to a single node failure.
  std::vector<int> replicas = ring_.RouteReplicas(key, replication_factor_);
  report->replicas.assign(replicas.size(), ReplicaOutcome());
  if (replicas.size() == 1) {
    WriteOneReplica(replicas[0], op, key, Slice(value),
                    &report->replicas[0]);
  } else {
    std::vector<FanoutExecutor::Task> tasks;
    tasks.reserve(replicas.size());
    for (size_t slot = 0; slot < replicas.size(); slot++) {
      tasks.push_back([this, &replicas, &report, op, &key, &value, slot]() {
        WriteOneReplica(replicas[slot], op, key, Slice(value),
                        &report->replicas[slot]);
        return Status::OK();
      });
    }
    fanout_.RunAll(std::move(tasks));
  }
  for (const ReplicaOutcome& out : report->replicas) {
    if (out.status.ok()) {
      report->acked++;
    } else if (out.hinted) {
      report->hinted++;
    } else {
      report->failed++;
    }
  }
  DrainRecovered();
  if (report->acked > 0 && report->failed == 0) return Status::OK();
  for (const ReplicaOutcome& out : report->replicas) {
    if (!out.status.ok()) return out.status;
  }
  return Status::IOError("write not acknowledged");
}

Status CassandraStore::Insert(const std::string& table, const Slice& key,
                              const ycsb::Record& record) {
  WriteReport report;
  return InsertWithReport(table, key, record, &report);
}

Status CassandraStore::InsertWithReport(const std::string& table,
                                        const Slice& key,
                                        const ycsb::Record& record,
                                        WriteReport* report) {
  (void)table;
  *report = WriteReport();
  std::string value;
  EncodeRow(record, &value);
  return WriteReplicated(key, cluster::HintLog::OpKind::kPut, value, report);
}

Status CassandraStore::Update(const std::string& table, const Slice& key,
                              const ycsb::Record& record) {
  // Cassandra updates are writes (last-write-wins cells).
  return Insert(table, key, record);
}

Status CassandraStore::Delete(const std::string& table, const Slice& key) {
  WriteReport report;
  return DeleteWithReport(table, key, &report);
}

Status CassandraStore::DeleteWithReport(const std::string& table,
                                        const Slice& key,
                                        WriteReport* report) {
  (void)table;
  *report = WriteReport();
  return WriteReplicated(key, cluster::HintLog::OpKind::kDelete,
                         std::string(), report);
}

Status CassandraStore::FlushHints() {
  if (!options_.hinted_handoff) return Status::OK();
  Status first;
  for (size_t node = 0; node < hints_.size(); node++) {
    if (hints_[node]->pending() == 0) continue;
    int n = static_cast<int>(node);
    if (!membership_.IsLive(n) && !membership_.TryClaimProbe(n)) {
      if (first.ok()) first = NodeDownError(n);
      continue;
    }
    Status s = ReplayHintsFor(n);
    if (first.ok() && !s.ok()) first = s;
  }
  membership_.TakeRecovered();  // replayed above; don't double-drain
  return first;
}

uint64_t CassandraStore::PendingHints(int node) const {
  return hints_[static_cast<size_t>(node)]->pending();
}

Status CassandraStore::ComputeDigests(
    std::vector<std::vector<std::vector<uint64_t>>>* digests,
    std::vector<bool>* scanned) {
  const size_t buckets = 1u << digest_bits_;
  const int n_nodes = static_cast<int>(nodes_.size());
  digests->assign(
      static_cast<size_t>(n_nodes),
      std::vector<std::vector<uint64_t>>(
          static_cast<size_t>(n_nodes), std::vector<uint64_t>(buckets, 0)));
  scanned->assign(static_cast<size_t>(n_nodes), false);
  for (int node = 0; node < n_nodes; node++) {
    if (!membership_.IsLive(node) && !membership_.TryClaimProbe(node)) {
      continue;
    }
    Status s = fault_seam_.Check(node);
    if (!s.ok()) {
      membership_.ReportError(node);
      continue;
    }
    auto it = nodes_[static_cast<size_t>(node)]->NewSnapshotIterator(
        lsm::ReadOptions());
    for (it->SeekToFirst(); it->Valid(); it->Next()) {
      std::vector<int> owners =
          ring_.RouteReplicas(it->key(), replication_factor_);
      if (std::find(owners.begin(), owners.end(), node) == owners.end()) {
        continue;  // stray row this node no longer owns
      }
      uint64_t digest = EntryDigest(it->key(), it->value());
      size_t bucket = digest_bits_ == 0
                          ? 0
                          : cluster::RingHash(it->key()) >> (64 - digest_bits_);
      for (int peer : owners) {
        if (peer == node) continue;
        (*digests)[static_cast<size_t>(node)][static_cast<size_t>(peer)]
                  [bucket] ^= digest;
      }
    }
    s = it->status();
    if (!s.ok()) {
      membership_.ReportError(node);
      return s;
    }
    membership_.ReportSuccess(node);
    (*scanned)[static_cast<size_t>(node)] = true;
  }
  return Status::OK();
}

Status CassandraStore::CollectBucketRows(
    int node, int peer, const std::vector<bool>& buckets,
    std::map<std::string, std::string>* rows) {
  APM_RETURN_IF_ERROR(fault_seam_.Check(node));
  auto it = nodes_[static_cast<size_t>(node)]->NewSnapshotIterator(
      lsm::ReadOptions());
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    size_t bucket = digest_bits_ == 0
                        ? 0
                        : cluster::RingHash(it->key()) >> (64 - digest_bits_);
    if (!buckets[bucket]) continue;
    std::vector<int> owners =
        ring_.RouteReplicas(it->key(), replication_factor_);
    if (std::find(owners.begin(), owners.end(), node) == owners.end() ||
        std::find(owners.begin(), owners.end(), peer) == owners.end()) {
      continue;
    }
    (*rows)[it->key().ToString()] = it->value().ToString();
  }
  return it->status();
}

Status CassandraStore::Repair(RepairStats* stats) {
  RepairStats local;
  Status first_error;
  if (replication_factor_ > 1) {
    std::vector<std::vector<std::vector<uint64_t>>> digests;
    std::vector<bool> scanned;
    APM_RETURN_IF_ERROR(ComputeDigests(&digests, &scanned));
    const size_t buckets = 1u << digest_bits_;
    const int n_nodes = static_cast<int>(nodes_.size());
    for (int a = 0; a < n_nodes; a++) {
      for (int b = a + 1; b < n_nodes; b++) {
        if (!scanned[static_cast<size_t>(a)] ||
            !scanned[static_cast<size_t>(b)]) {
          continue;
        }
        local.pairs_compared++;
        std::vector<bool> diverged(buckets, false);
        size_t n_diverged = 0;
        for (size_t bucket = 0; bucket < buckets; bucket++) {
          if (digests[static_cast<size_t>(a)][static_cast<size_t>(b)]
                     [bucket] !=
              digests[static_cast<size_t>(b)][static_cast<size_t>(a)]
                     [bucket]) {
            diverged[bucket] = true;
            n_diverged++;
          }
        }
        if (n_diverged == 0) continue;
        local.buckets_diverged += n_diverged;
        // Only the diverged buckets' rows cross the wire: collect both
        // sides, union the keys, ship the last-write-wins version to
        // whichever side is stale or missing it.
        std::map<std::string, std::string> rows_a, rows_b;
        Status s = CollectBucketRows(a, b, diverged, &rows_a);
        if (s.ok()) s = CollectBucketRows(b, a, diverged, &rows_b);
        if (!s.ok()) {
          if (first_error.ok()) first_error = s;
          continue;
        }
        auto ship = [&](int target, const std::string& key,
                        const std::string& row) {
          Status ps = NodePut(target, key, Slice(row));
          if (ps.ok()) {
            local.rows_shipped++;
          } else if (first_error.ok()) {
            first_error = ps;
          }
        };
        for (const auto& [key, row_a] : rows_a) {
          auto it_b = rows_b.find(key);
          if (it_b == rows_b.end()) {
            ship(b, key, row_a);
          } else if (row_a != it_b->second) {
            if (RowWins(row_a, it_b->second)) {
              ship(b, key, row_a);
            } else {
              ship(a, key, it_b->second);
            }
          }
        }
        for (const auto& [key, row_b] : rows_b) {
          if (rows_a.find(key) == rows_a.end()) ship(a, key, row_b);
        }
      }
    }
  }
  DrainRecovered();
  if (stats != nullptr) *stats = local;
  return first_error;
}

Status CassandraStore::CheckReplicasConverged(bool* converged) {
  *converged = true;
  if (replication_factor_ <= 1) return Status::OK();
  std::vector<std::vector<std::vector<uint64_t>>> digests;
  std::vector<bool> scanned;
  APM_RETURN_IF_ERROR(ComputeDigests(&digests, &scanned));
  const size_t buckets = 1u << digest_bits_;
  const int n_nodes = static_cast<int>(nodes_.size());
  for (int a = 0; a < n_nodes; a++) {
    if (!scanned[static_cast<size_t>(a)]) {
      return Status::IOError("node " + std::to_string(a) +
                             " unreachable during convergence check");
    }
  }
  for (int a = 0; a < n_nodes && *converged; a++) {
    for (int b = a + 1; b < n_nodes && *converged; b++) {
      for (size_t bucket = 0; bucket < buckets; bucket++) {
        if (digests[static_cast<size_t>(a)][static_cast<size_t>(b)][bucket] !=
            digests[static_cast<size_t>(b)][static_cast<size_t>(a)][bucket]) {
          *converged = false;
          break;
        }
      }
    }
  }
  return Status::OK();
}

Status CassandraStore::DiskUsage(uint64_t* bytes) {
  // Every node walks its directory tree; fan the walks out in parallel.
  std::vector<uint64_t> per_node(nodes_.size(), 0);
  std::vector<FanoutExecutor::Task> tasks;
  tasks.reserve(nodes_.size());
  for (size_t i = 0; i < nodes_.size(); i++) {
    tasks.push_back(
        [this, &per_node, i]() { return nodes_[i]->DiskUsage(&per_node[i]); });
  }
  APM_RETURN_IF_ERROR(fanout_.RunAll(std::move(tasks)));
  *bytes = 0;
  for (uint64_t node_bytes : per_node) *bytes += node_bytes;
  return Status::OK();
}

lsm::DB::Stats CassandraStore::NodeStats(int node) {
  return nodes_[static_cast<size_t>(node)]->GetStats();
}

Status CassandraStore::VerifyIntegrity() {
  for (auto& node : nodes_) {
    APM_RETURN_IF_ERROR(node->VerifyIntegrity());
  }
  return Status::OK();
}

ClusterStats CassandraStore::GetClusterStats() const {
  ClusterStats stats;
  stats.failed_over_reads =
      failed_over_reads_.load(std::memory_order_relaxed);
  stats.read_repairs = read_repairs_.load(std::memory_order_relaxed);
  stats.hints_queued = hints_queued_.load(std::memory_order_relaxed);
  stats.hints_replayed = hints_replayed_.load(std::memory_order_relaxed);
  for (const auto& log : hints_) stats.hints_pending += log->pending();
  stats.membership = membership_.GetCounters();
  return stats;
}

}  // namespace apmbench::stores
