#include "stores/factory.h"

#include "stores/cassandra_store.h"
#include "stores/hbase_store.h"
#include "stores/mysql_store.h"
#include "stores/redis_store.h"
#include "stores/voldemort_store.h"
#include "stores/voltdb_store.h"

namespace apmbench::stores {

bool StoreSupportsScans(const std::string& name) {
  return name != "voldemort";
}

Status CreateStore(const std::string& name, const StoreOptions& options,
                   std::unique_ptr<ycsb::DB>* db) {
  if (name == "cassandra") {
    std::unique_ptr<CassandraStore> store;
    APM_RETURN_IF_ERROR(CassandraStore::Open(options, &store));
    *db = std::move(store);
    return Status::OK();
  }
  if (name == "hbase") {
    std::unique_ptr<HBaseStore> store;
    APM_RETURN_IF_ERROR(HBaseStore::Open(options, &store));
    *db = std::move(store);
    return Status::OK();
  }
  if (name == "voldemort") {
    std::unique_ptr<VoldemortStore> store;
    APM_RETURN_IF_ERROR(VoldemortStore::Open(options, &store));
    *db = std::move(store);
    return Status::OK();
  }
  if (name == "redis") {
    std::unique_ptr<RedisStore> store;
    APM_RETURN_IF_ERROR(RedisStore::Open(options, &store));
    *db = std::move(store);
    return Status::OK();
  }
  if (name == "voltdb") {
    std::unique_ptr<VoltDBStore> store;
    APM_RETURN_IF_ERROR(VoltDBStore::Open(options, &store));
    *db = std::move(store);
    return Status::OK();
  }
  if (name == "mysql") {
    std::unique_ptr<MySQLStore> store;
    APM_RETURN_IF_ERROR(MySQLStore::Open(options, &store));
    *db = std::move(store);
    return Status::OK();
  }
  return Status::InvalidArgument("unknown store: " + name);
}

}  // namespace apmbench::stores
