#ifndef APMBENCH_STORES_FACTORY_H_
#define APMBENCH_STORES_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "stores/store_options.h"
#include "ycsb/db.h"

namespace apmbench::stores {

/// The six systems the paper benchmarks, by their paper names.
inline const std::vector<std::string>& StoreNames() {
  static const std::vector<std::string>* names = new std::vector<std::string>{
      "cassandra", "hbase", "voldemort", "redis", "voltdb", "mysql"};
  return *names;
}

/// Whether the store's YCSB binding supports scans (Voldemort's does not;
/// the paper omits it from workloads RS and RSW).
bool StoreSupportsScans(const std::string& name);

/// Instantiates a store by paper name ("cassandra", "hbase", "voldemort",
/// "redis", "voltdb", "mysql").
Status CreateStore(const std::string& name, const StoreOptions& options,
                   std::unique_ptr<ycsb::DB>* db);

}  // namespace apmbench::stores

#endif  // APMBENCH_STORES_FACTORY_H_
