#ifndef APMBENCH_STORES_REDIS_STORE_H_
#define APMBENCH_STORES_REDIS_STORE_H_

#include <memory>
#include <vector>

#include "cluster/routing.h"
#include "common/fanout.h"
#include "hashkv/hashkv.h"
#include "stores/store_options.h"
#include "ycsb/db.h"

namespace apmbench::stores {

/// Redis-architecture store: independent single-node in-memory instances
/// (dict + skip-list key index, optional AOF) sharded on the client side
/// by the Jedis ring — the exact deployment the paper ran after the Redis
/// cluster version proved unusable. The Jedis ring's imbalance is visible
/// through `ring().OwnershipShares()`.
///
/// Thread-safety: the adapter adds no locking — the shard ring is
/// immutable after Open, and concurrency is handled by HashKV's
/// reader/writer lock and group-committed AOF (see docs/concurrency.md).
class RedisStore final : public ycsb::DB {
 public:
  static Status Open(const StoreOptions& options,
                     std::unique_ptr<RedisStore>* store);

  Status Read(const std::string& table, const Slice& key,
              ycsb::Record* record) override;
  Status ScanKeyed(const std::string& table, const Slice& start_key,
                   int count,
                   std::vector<ycsb::KeyedRecord>* records) override;
  Status Insert(const std::string& table, const Slice& key,
                const ycsb::Record& record) override;
  Status Update(const std::string& table, const Slice& key,
                const ycsb::Record& record) override;
  Status Delete(const std::string& table, const Slice& key) override;
  Status DiskUsage(uint64_t* bytes) override;

  hashkv::HashKV::Stats NodeStats(int node);
  const cluster::JedisShardRing& ring() const { return ring_; }

 private:
  explicit RedisStore(const StoreOptions& options);

  StoreOptions options_;
  cluster::JedisShardRing ring_;
  FanoutExecutor fanout_;
  std::vector<std::unique_ptr<hashkv::HashKV>> nodes_;
};

}  // namespace apmbench::stores

#endif  // APMBENCH_STORES_REDIS_STORE_H_
