#ifndef APMBENCH_STORES_VOLDEMORT_STORE_H_
#define APMBENCH_STORES_VOLDEMORT_STORE_H_

#include <memory>
#include <vector>

#include "btree/btree.h"
#include "cluster/routing.h"
#include "common/fanout.h"
#include "stores/store_options.h"
#include "ycsb/db.h"

namespace apmbench::stores {

/// Project-Voldemort-architecture store: a distributed persistent hash
/// table over a partition ring (the paper configured two partitions per
/// node) with a BerkeleyDB-style B+tree as the node-local storage engine.
/// Scans return NotSupported: the Voldemort YCSB client has no scan
/// operation, which is why the paper omits Voldemort from workloads RS
/// and RSW.
///
/// Thread-safety: the adapter adds no locking — the partition ring is
/// immutable after Open, and concurrency is handled by the B+tree's
/// reader/writer lock and group-committed binlog (see
/// docs/concurrency.md).
class VoldemortStore final : public ycsb::DB {
 public:
  static Status Open(const StoreOptions& options,
                     std::unique_ptr<VoldemortStore>* store);

  Status Read(const std::string& table, const Slice& key,
              ycsb::Record* record) override;
  Status ScanKeyed(const std::string& table, const Slice& start_key,
                   int count,
                   std::vector<ycsb::KeyedRecord>* records) override;
  Status Insert(const std::string& table, const Slice& key,
                const ycsb::Record& record) override;
  Status Update(const std::string& table, const Slice& key,
                const ycsb::Record& record) override;
  Status Delete(const std::string& table, const Slice& key) override;
  Status DiskUsage(uint64_t* bytes) override;

  btree::BTree::Stats NodeStats(int node);
  const cluster::PartitionRing& ring() const { return ring_; }

 private:
  explicit VoldemortStore(const StoreOptions& options);

  StoreOptions options_;
  cluster::PartitionRing ring_;
  FanoutExecutor fanout_;
  std::vector<std::unique_ptr<btree::BTree>> nodes_;
};

}  // namespace apmbench::stores

#endif  // APMBENCH_STORES_VOLDEMORT_STORE_H_
