#ifndef APMBENCH_STORES_CASSANDRA_STORE_H_
#define APMBENCH_STORES_CASSANDRA_STORE_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/hints.h"
#include "cluster/membership.h"
#include "cluster/routing.h"
#include "common/fanout.h"
#include "lsm/db.h"
#include "stores/store_options.h"
#include "ycsb/db.h"

namespace apmbench::stores {

/// Outcome of one replica of a replicated write.
struct ReplicaOutcome {
  int node = -1;
  /// OK when the replica took the write directly; otherwise the direct
  /// write's error (or, when the fallback hint append itself failed, that
  /// append's error).
  Status status;
  /// The write was durably queued as a hint for this replica.
  bool hinted = false;
};

/// Per-replica visibility for replicated writes. FanoutExecutor::RunAll
/// collapses a fan-out to its first error, which hides *which* replicas
/// kept the write; this report keeps every outcome so callers (and tests)
/// can see a 1-of-3 partial write instead of a bare error.
struct WriteReport {
  std::vector<ReplicaOutcome> replicas;
  int acked = 0;   ///< replicas that took the write directly
  int hinted = 0;  ///< replicas covered by a durable hint instead
  int failed = 0;  ///< replicas with neither ack nor hint (divergence)

  bool fully_acked() const { return acked > 0 && hinted == 0 && failed == 0; }
};

/// Counters from one anti-entropy Repair() pass.
struct RepairStats {
  uint64_t pairs_compared = 0;    ///< replica pairs whose digests were diffed
  uint64_t buckets_diverged = 0;  ///< digest leaves that disagreed
  uint64_t rows_shipped = 0;      ///< rows written to bring replicas level
};

/// Snapshot of the store's cluster-lifecycle counters.
struct ClusterStats {
  uint64_t failed_over_reads = 0;  ///< reads served by a non-first replica
  uint64_t read_repairs = 0;       ///< stale replicas fixed by the read path
  uint64_t hints_queued = 0;
  uint64_t hints_replayed = 0;
  uint64_t hints_pending = 0;  ///< durable but not yet replayed, all nodes
  cluster::Membership::Counters membership;
};

/// Cassandra-architecture store: one LSM engine (commit log + memtable +
/// size-tiered SSTables) per node, keys placed on a token ring. The paper
/// assigned balanced tokens before loading ("an optimal set of tokens");
/// this store does the same. Scans fan out to every node (the random
/// partitioner gives no single-node key locality) and merge, as a
/// Cassandra coordinator does for range slices.
///
/// With replication_factor > 1 the store also implements the cluster
/// lifecycle (docs/cluster.md): per-node liveness tracking with timed
/// probation (cluster::Membership), read failover along the replica walk
/// with optional read repair, hinted handoff for unreachable replicas
/// (durable cluster::HintLog per node, replayed on recovery), and
/// Merkle-style anti-entropy via Repair().
///
/// Thread-safety: routing state is immutable after Open; membership and
/// hint queues carry their own locks; engine concurrency is handled by
/// the LSM's writer queue and lock-free reads (see docs/concurrency.md).
class CassandraStore final : public ycsb::DB {
 public:
  static Status Open(const StoreOptions& options,
                     std::unique_ptr<CassandraStore>* store);

  /// Consistency ONE with failover: tries replicas in ring-walk order,
  /// skipping nodes marked down (unless a probation probe is claimed),
  /// and returns the first replica's row. Replicas that answer NotFound
  /// before the winner get the row written back when read_repair is on.
  Status Read(const std::string& table, const Slice& key,
              ycsb::Record* record) override;
  /// Fans out to live nodes and k-way merges; tolerates up to
  /// replication_factor - 1 unreachable nodes (every key still has a
  /// live replica), errors beyond that.
  Status ScanKeyed(const std::string& table, const Slice& start_key,
                   int count,
                   std::vector<ycsb::KeyedRecord>* records) override;
  Status Insert(const std::string& table, const Slice& key,
                const ycsb::Record& record) override;
  Status Update(const std::string& table, const Slice& key,
                const ycsb::Record& record) override;
  /// Cassandra deletes are blind tombstone writes: they succeed whether
  /// or not the key exists (no read-before-write).
  Status Delete(const std::string& table, const Slice& key) override;
  Status DiskUsage(uint64_t* bytes) override;

  /// Insert with per-replica outcomes. OK iff at least one replica took
  /// the write directly and every other replica is covered by a durable
  /// hint; like Cassandra, a write that fails this bar is NOT rolled
  /// back on the replicas that did take it (the report shows them).
  Status InsertWithReport(const std::string& table, const Slice& key,
                          const ycsb::Record& record, WriteReport* report);
  /// Delete with per-replica outcomes; same acknowledgment rule.
  Status DeleteWithReport(const std::string& table, const Slice& key,
                          WriteReport* report);

  /// Reads `key` from one specific node, no failover, no membership
  /// side effects — the observation seam tests and repair tooling use to
  /// ask "what does replica n actually hold?". NotFound when the node
  /// lacks the key; IOError when the node is killed.
  Status ReadAt(int node, const Slice& key, ycsb::Record* record);

  /// Replays every node's pending hints now (nodes must be up or
  /// probe-able). Returns the first failure but attempts every node.
  Status FlushHints();
  /// Hints durably queued for `node` and not yet replayed.
  uint64_t PendingHints(int node) const;

  /// One anti-entropy pass (Cassandra's nodetool repair, simplified):
  /// every replica pair exchanges per-bucket digests over the keys they
  /// both own (repair_digest_buckets Merkle leaves over RingHash), and
  /// only the diverged buckets' rows are compared row-by-row, shipping
  /// the newest version (column timestamp, then value bytes) to the
  /// stale or missing side. Add-only: repair cannot distinguish "never
  /// wrote" from "deleted and compacted", so it never removes rows —
  /// deletes are made durable by hints, not repair (docs/cluster.md).
  Status Repair(RepairStats* stats = nullptr);

  /// Digest pass only: *converged is true when every replica pair's
  /// buckets agree. Errors if any node is unreachable.
  Status CheckReplicasConverged(bool* converged);

  /// Engine stats of one node, for calibration and tests.
  lsm::DB::Stats NodeStats(int node);
  /// Scrubs every node's engine (checksums, ordering, manifest
  /// agreement); Corruption on the first violation.
  Status VerifyIntegrity();
  const cluster::TokenRing& ring() const { return ring_; }
  cluster::Membership& membership() { return membership_; }
  ClusterStats GetClusterStats() const;

  /// Deterministic node-fault seam: a killed node fails every operation
  /// with IOError until revived, exactly as tests and the kill-a-node
  /// bench need (see cluster::NodeFaultSeam). Killing only flips the
  /// seam — membership still discovers the death through failed
  /// operations, as it would a real crash.
  void KillNode(int node) { fault_seam_.Kill(node); }
  void ReviveNode(int node) { fault_seam_.Revive(node); }

 private:
  explicit CassandraStore(const StoreOptions& options);

  /// Node-level ops: fault seam, engine call, membership report (OK and
  /// NotFound are definitive answers; anything else is an error).
  Status NodeGet(int node, const Slice& key, std::string* value);
  Status NodePut(int node, const Slice& key, const Slice& value);
  Status NodeDelete(int node, const Slice& key);
  Status NodeScan(int node, const Slice& start, int count,
                  std::vector<std::pair<std::string, std::string>>* out);

  /// Shared Insert/Delete path: fan the op to every replica; unreachable
  /// or failing replicas fall back to a durable hint.
  Status WriteReplicated(const Slice& key, cluster::HintLog::OpKind op,
                         const std::string& value, WriteReport* report);
  /// One replica's slice of WriteReplicated.
  void WriteOneReplica(int node, cluster::HintLog::OpKind op,
                       const Slice& key, const Slice& value,
                       ReplicaOutcome* out);

  /// Applies `node`'s queued hints in order (at-least-once; see HintLog).
  Status ReplayHintsFor(int node);
  /// Replays hints of nodes that just transitioned down -> up. Called at
  /// the end of public operations, outside any hint-log callback.
  void DrainRecovered();

  /// Phase 1 of Repair: per-node, per-peer, per-bucket XOR digests over
  /// the keys both nodes replicate. scanned[n] is false when node n was
  /// unreachable (its pairs are skipped).
  Status ComputeDigests(
      std::vector<std::vector<std::vector<uint64_t>>>* digests,
      std::vector<bool>* scanned);
  /// Rows of `node` owned by both `node` and `peer` falling in the
  /// marked buckets.
  Status CollectBucketRows(int node, int peer,
                           const std::vector<bool>& buckets,
                           std::map<std::string, std::string>* rows);

  int digest_bits() const { return digest_bits_; }

  StoreOptions options_;
  cluster::TokenRing ring_;
  int replication_factor_;
  int digest_bits_;  ///< log2 of the repair digest bucket count
  cluster::NodeFaultSeam fault_seam_;
  cluster::Membership membership_;
  FanoutExecutor fanout_;
  Env* env_ = nullptr;
  std::vector<std::unique_ptr<lsm::DB>> nodes_;
  std::vector<std::unique_ptr<cluster::HintLog>> hints_;

  std::atomic<uint64_t> failed_over_reads_{0};
  std::atomic<uint64_t> read_repairs_{0};
  std::atomic<uint64_t> hints_queued_{0};
  std::atomic<uint64_t> hints_replayed_{0};
};

}  // namespace apmbench::stores

#endif  // APMBENCH_STORES_CASSANDRA_STORE_H_
