#ifndef APMBENCH_STORES_CASSANDRA_STORE_H_
#define APMBENCH_STORES_CASSANDRA_STORE_H_

#include <memory>
#include <vector>

#include "cluster/routing.h"
#include "common/fanout.h"
#include "lsm/db.h"
#include "stores/store_options.h"
#include "ycsb/db.h"

namespace apmbench::stores {

/// Cassandra-architecture store: one LSM engine (commit log + memtable +
/// size-tiered SSTables) per node, keys placed on a token ring. The paper
/// assigned balanced tokens before loading ("an optimal set of tokens");
/// this store does the same. Scans fan out to every node (the random
/// partitioner gives no single-node key locality) and merge, as a
/// Cassandra coordinator does for range slices.
///
/// Thread-safety: the adapter adds no locking — routing state is
/// immutable after Open, and concurrency is handled by the LSM engine's
/// writer queue and lock-free reads (see docs/concurrency.md).
class CassandraStore final : public ycsb::DB {
 public:
  static Status Open(const StoreOptions& options,
                     std::unique_ptr<CassandraStore>* store);

  Status Read(const std::string& table, const Slice& key,
              ycsb::Record* record) override;
  Status ScanKeyed(const std::string& table, const Slice& start_key,
                   int count,
                   std::vector<ycsb::KeyedRecord>* records) override;
  Status Insert(const std::string& table, const Slice& key,
                const ycsb::Record& record) override;
  Status Update(const std::string& table, const Slice& key,
                const ycsb::Record& record) override;
  /// Cassandra deletes are blind tombstone writes: they succeed whether
  /// or not the key exists (no read-before-write).
  Status Delete(const std::string& table, const Slice& key) override;
  Status DiskUsage(uint64_t* bytes) override;

  /// Engine stats of one node, for calibration and tests.
  lsm::DB::Stats NodeStats(int node);
  /// Scrubs every node's engine (checksums, ordering, manifest
  /// agreement); Corruption on the first violation.
  Status VerifyIntegrity();
  const cluster::TokenRing& ring() const { return ring_; }

 private:
  explicit CassandraStore(const StoreOptions& options);

  StoreOptions options_;
  cluster::TokenRing ring_;
  int replication_factor_;
  FanoutExecutor fanout_;
  std::vector<std::unique_ptr<lsm::DB>> nodes_;
};

}  // namespace apmbench::stores

#endif  // APMBENCH_STORES_CASSANDRA_STORE_H_
