#ifndef APMBENCH_STORES_VOLTDB_STORE_H_
#define APMBENCH_STORES_VOLTDB_STORE_H_

#include <memory>

#include "stores/store_options.h"
#include "volt/volt.h"
#include "ycsb/db.h"

namespace apmbench::stores {

/// VoltDB-architecture store: one partitioned in-memory engine whose
/// site count is nodes x sites-per-host (the paper ran 6 sites per host).
/// Reads, writes, and deletes are single-partition stored procedures;
/// scans are multi-partition transactions. The store is in-memory only,
/// as the paper ran it (no snapshot/command-log configured).
///
/// Thread-safety: the adapter adds no locking — concurrency is handled by
/// the engine's lock-free per-partition submission queues (see
/// docs/concurrency.md).
class VoltDBStore final : public ycsb::DB {
 public:
  static Status Open(const StoreOptions& options,
                     std::unique_ptr<VoltDBStore>* store);

  Status Read(const std::string& table, const Slice& key,
              ycsb::Record* record) override;
  Status ScanKeyed(const std::string& table, const Slice& start_key,
                   int count,
                   std::vector<ycsb::KeyedRecord>* records) override;
  Status Insert(const std::string& table, const Slice& key,
                const ycsb::Record& record) override;
  Status Update(const std::string& table, const Slice& key,
                const ycsb::Record& record) override;
  Status Delete(const std::string& table, const Slice& key) override;

  volt::VoltEngine::Stats EngineStats() { return engine_->GetStats(); }

 private:
  explicit VoltDBStore(const StoreOptions& options);

  std::unique_ptr<volt::VoltEngine> engine_;
};

}  // namespace apmbench::stores

#endif  // APMBENCH_STORES_VOLTDB_STORE_H_
