#ifndef APMBENCH_STORES_MYSQL_STORE_H_
#define APMBENCH_STORES_MYSQL_STORE_H_

#include <memory>
#include <vector>

#include "btree/btree.h"
#include "cluster/routing.h"
#include "common/fanout.h"
#include "stores/store_options.h"
#include "ycsb/db.h"

namespace apmbench::stores {

/// MySQL/InnoDB-architecture store: independent single-node B+tree
/// engines with buffer pools and binary logs, sharded on the client side
/// by key hash (the YCSB RDBMS client's scheme — well balanced, unlike
/// the Jedis ring).
///
/// Scan semantics reproduce the client behavior the paper blames for
/// MySQL's scan collapse: the scan runs as `key >= start` on the shard of
/// the start key with *no LIMIT*, dragging the shard's whole tail;
/// `StoreOptions::mysql_limit_scans` enables the fixed query for the
/// ablation comparison.
///
/// Thread-safety: the adapter adds no locking — sharding is stateless,
/// and concurrency is handled by the B+tree's reader/writer lock and
/// group-committed binlog (see docs/concurrency.md).
class MySQLStore final : public ycsb::DB {
 public:
  static Status Open(const StoreOptions& options,
                     std::unique_ptr<MySQLStore>* store);

  Status Read(const std::string& table, const Slice& key,
              ycsb::Record* record) override;
  Status ScanKeyed(const std::string& table, const Slice& start_key,
                   int count,
                   std::vector<ycsb::KeyedRecord>* records) override;
  Status Insert(const std::string& table, const Slice& key,
                const ycsb::Record& record) override;
  Status Update(const std::string& table, const Slice& key,
                const ycsb::Record& record) override;
  Status Delete(const std::string& table, const Slice& key) override;
  Status DiskUsage(uint64_t* bytes) override;

  btree::BTree::Stats NodeStats(int node);
  const cluster::ModuloSharder& sharder() const { return sharder_; }

 private:
  explicit MySQLStore(const StoreOptions& options);

  StoreOptions options_;
  cluster::ModuloSharder sharder_;
  FanoutExecutor fanout_;
  std::vector<std::unique_ptr<btree::BTree>> nodes_;
};

}  // namespace apmbench::stores

#endif  // APMBENCH_STORES_MYSQL_STORE_H_
