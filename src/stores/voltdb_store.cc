#include "stores/voltdb_store.h"

namespace apmbench::stores {

VoltDBStore::VoltDBStore(const StoreOptions& options) {
  volt::Options engine_options;
  engine_options.sites_per_host =
      options.num_nodes * options.volt_sites_per_host;
  engine_ = std::make_unique<volt::VoltEngine>(engine_options);
}

Status VoltDBStore::Open(const StoreOptions& options,
                         std::unique_ptr<VoltDBStore>* store) {
  store->reset(new VoltDBStore(options));
  return Status::OK();
}

Status VoltDBStore::Read(const std::string& table, const Slice& key,
                         ycsb::Record* record) {
  (void)table;
  std::string value;
  APM_RETURN_IF_ERROR(engine_->Get(key, &value));
  if (!ycsb::DecodeRecord(Slice(value), record)) {
    return Status::Corruption("undecodable record");
  }
  return Status::OK();
}

Status VoltDBStore::ScanKeyed(const std::string& table,
                              const Slice& start_key, int count,
                              std::vector<ycsb::KeyedRecord>* records) {
  (void)table;
  records->clear();
  std::vector<std::pair<std::string, std::string>> rows;
  APM_RETURN_IF_ERROR(engine_->Scan(start_key, count, &rows));
  records->reserve(rows.size());
  for (const auto& [key, value] : rows) {
    ycsb::KeyedRecord entry;
    entry.key = key;
    if (!ycsb::DecodeRecord(Slice(value), &entry.record)) {
      return Status::Corruption("undecodable record in scan");
    }
    records->push_back(std::move(entry));
  }
  return Status::OK();
}

Status VoltDBStore::Insert(const std::string& table, const Slice& key,
                           const ycsb::Record& record) {
  (void)table;
  std::string value;
  ycsb::EncodeRecord(record, &value);
  return engine_->Put(key, Slice(value));
}

Status VoltDBStore::Update(const std::string& table, const Slice& key,
                           const ycsb::Record& record) {
  return Insert(table, key, record);
}

Status VoltDBStore::Delete(const std::string& table, const Slice& key) {
  (void)table;
  return engine_->Delete(key);
}

}  // namespace apmbench::stores
