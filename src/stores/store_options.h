#ifndef APMBENCH_STORES_STORE_OPTIONS_H_
#define APMBENCH_STORES_STORE_OPTIONS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/compression.h"

namespace apmbench {
class Env;
}

namespace apmbench::stores {

/// Shared configuration for the six embedded stores. Each store lays its
/// node-local engines out under `base_dir/node<i>/`.
struct StoreOptions {
  /// Root directory for persistent engines. Must be set for the stores
  /// that touch disk (cassandra, hbase, voldemort, mysql; redis only when
  /// AOF is enabled).
  std::string base_dir;

  /// Simulated cluster size: the store runs one engine instance per node
  /// and routes between them exactly as the paper's deployments did.
  int num_nodes = 1;

  /// Replicas per key for the Cassandra-like store (the paper runs 1;
  /// Section 8 lists replication as future work). Writes go to every
  /// live replica; reads take the first live replica in ring order and
  /// fail over to the next on error (see docs/cluster.md).
  int replication_factor = 1;

  /// Cluster lifecycle knobs (Cassandra-like store; see docs/cluster.md).
  /// Consecutive failed operations before a node is marked down.
  int membership_error_threshold = 3;
  /// How long a down node waits before a single probe may test it again.
  uint64_t membership_probation_micros = 500 * 1000;
  /// Queue writes for unreachable replicas as durable hints, replayed
  /// when the replica recovers; off turns a partial rf>1 write into a
  /// reported error (divergence stays visible via the write report).
  bool hinted_handoff = true;
  /// Repair stale or missing replicas discovered on the read path by
  /// writing the winning row back to them.
  bool read_repair = true;
  /// Merkle-style digest leaves per node pair in CassandraStore::Repair;
  /// more buckets ship finer-grained differing ranges.
  int repair_digest_buckets = 64;

  Env* env = nullptr;

  /// Threads in the store's fan-out executor, used to issue multi-node
  /// operations (cross-shard scans, replica writes, disk-usage sweeps) to
  /// every node in parallel. 0 sizes the pool to num_nodes - 1 (capped) —
  /// the calling thread participates, so that covers a full fan-out.
  int fanout_threads = 0;

  /// LSM engines (cassandra-like, hbase-like).
  size_t memtable_bytes = 8 * 1024 * 1024;
  size_t block_cache_bytes = 32 * 1024 * 1024;
  /// log2 of each node's block cache shard count (see lsm::Options).
  int block_cache_shard_bits = 4;
  int bloom_bits_per_key = 10;
  /// SSTable format written by flushes and compactions (see
  /// lsm::Options::format_version): 1 = plain blocks, 2 =
  /// prefix-compressed restart-point blocks with a versioned footer.
  /// Readers always understand both.
  uint32_t lsm_format_version = 2;
  /// Entries between restart points in a v2 block (lsm::Options).
  int lsm_block_restart_interval = 16;
  /// When > 0, v2 tables also carry a bloom filter over this many leading
  /// key bytes so bounded scans can skip tables (lsm::Options).
  size_t lsm_prefix_bloom_length = 0;
  /// Arena block size for memtable bump allocation (lsm::Options).
  size_t lsm_arena_block_bytes = 4 * 1024;
  /// Hash-partitioned shards in each node's live memtable; group commits
  /// apply shards in parallel across the group's writer threads. Must be
  /// a power of two in [1, 64] (lsm::Options::memtable_shards).
  int lsm_memtable_shards = 8;
  /// SSTable block compression (the paper runs uncompressed; Section 8
  /// lists the compression tradeoff as future work).
  CompressionType lsm_compression = CompressionType::kNone;
  /// Compaction pool size per LSM node (flushes always get a dedicated
  /// thread; see lsm::Options::compaction_threads).
  int lsm_compaction_threads = 2;
  /// Parallel subcompactions per leveled compaction job (HBase-like
  /// store); 1 disables splitting.
  int lsm_subcompactions = 1;
  /// Write admission control per node: L0 sorted-run counts at which
  /// writes are first delayed (~1ms once per write) and then blocked
  /// until compaction catches up. 0 disables a trigger.
  int lsm_level0_slowdown_trigger = 20;
  int lsm_level0_stop_trigger = 36;
  /// Background-I/O (flush + compaction) byte budget per second, shared
  /// by every node of the store through one token bucket. 0 = unlimited.
  uint64_t lsm_rate_limit_bytes_per_sec = 0;

  /// B+tree engines (mysql-like, voldemort-like).
  size_t buffer_pool_bytes = 32 * 1024 * 1024;

  /// Redis-like store: enable the append-only file.
  bool redis_aof = false;

  /// VoltDB-like store: execution sites per host (partitions per node).
  int volt_sites_per_host = 6;

  /// HBase-like store: pre-split regions per region server.
  int regions_per_server = 8;

  /// MySQL-like store: when false (the default, matching the paper's YCSB
  /// RDBMS client), a scan issues "key >= start" with no LIMIT and drags
  /// the whole tail of the shard — the behavior behind MySQL's collapse
  /// in workloads RS/RSW. Set true for the LIMIT-clause ablation.
  bool mysql_limit_scans = false;

  /// MySQL-like store: write a binary log (doubles disk usage, Fig. 17).
  bool mysql_binlog = true;

  /// Sample keys used to pre-split HBase regions; when empty a sample of
  /// the YCSB key space is generated internally.
  std::vector<std::string> region_split_sample;
};

}  // namespace apmbench::stores

#endif  // APMBENCH_STORES_STORE_OPTIONS_H_
