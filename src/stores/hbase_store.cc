#include "stores/hbase_store.h"

#include <algorithm>

#include "common/clock.h"
#include "common/coding.h"
#include "common/hash.h"
#include "common/rate_limiter.h"

namespace apmbench::stores {

namespace {

constexpr char kFamily[] = "f";
/// Cells fetched per engine scan batch while assembling rows.
constexpr int kCellBatch = 256;

/// HBase's on-disk KeyValue carries full framing around every cell:
/// key length (4), value length (4), row length (2), family length (1),
/// type (1), and the 8-byte timestamp. We store that framing verbatim —
/// it is the structural reason a 75-byte record costs HBase several
/// hundred bytes on disk (Figure 17).
constexpr size_t kKeyValueFraming = 4 + 4 + 2 + 1 + 1 + 8;

std::string EncodeCellValue(const Slice& row_key, const Slice& value) {
  std::string out;
  PutFixed32(&out, static_cast<uint32_t>(row_key.size() + 2 + 8));
  PutFixed32(&out, static_cast<uint32_t>(value.size()));
  out.push_back(static_cast<char>(row_key.size() & 0xff));
  out.push_back(static_cast<char>((row_key.size() >> 8) & 0xff));
  out.push_back(1);  // family length
  out.push_back(4);  // type = Put
  PutFixed64(&out, NowMicros());
  out.append(value.data(), value.size());
  return out;
}

bool DecodeCellValue(const Slice& cell_value, Slice* value) {
  if (cell_value.size() < kKeyValueFraming) return false;
  *value = Slice(cell_value.data() + kKeyValueFraming,
                 cell_value.size() - kKeyValueFraming);
  return true;
}

/// Cursor for resuming a cell scan strictly after `last_cell_key`:
/// appending the minimum byte yields the smallest key greater than it.
/// (Appending '\x01' — the old cursor — skipped any cell key extending
/// `last_cell_key` with a NUL byte when a page ended exactly there.)
std::string NextCellCursor(const std::string& last_cell_key) {
  return last_cell_key + '\0';
}

/// Default pre-split sample: the YCSB key space ("user" + FNV-hashed
/// sequence numbers), which is what the benchmark loads.
std::vector<std::string> DefaultSplitSample() {
  std::vector<std::string> sample;
  sample.reserve(4096);
  for (uint64_t i = 0; i < 4096; i++) {
    uint64_t hashed = apmbench::FnvHash64(i);
    std::string digits = std::to_string(hashed);
    std::string key = "user";
    int pad = 25 - 4 - static_cast<int>(digits.size());
    for (int j = 0; j < pad; j++) key.push_back('0');
    key.append(digits);
    sample.push_back(std::move(key));
  }
  return sample;
}

}  // namespace

std::string HBaseStore::CellKey(const Slice& row, const Slice& qualifier) {
  std::string key = row.ToString();
  key.push_back('\0');
  key.append(kFamily);
  key.push_back(':');
  key.append(qualifier.data(), qualifier.size());
  return key;
}

bool HBaseStore::ParseCellKey(const Slice& cell_key, Slice* row,
                              Slice* qualifier) {
  const char* sep = static_cast<const char*>(
      memchr(cell_key.data(), '\0', cell_key.size()));
  if (sep == nullptr) return false;
  size_t row_len = static_cast<size_t>(sep - cell_key.data());
  *row = Slice(cell_key.data(), row_len);
  // Skip '\0' + family + ':'.
  size_t prefix = row_len + 1 + sizeof(kFamily) - 1 + 1;
  if (cell_key.size() < prefix) return false;
  *qualifier = Slice(cell_key.data() + prefix, cell_key.size() - prefix);
  return true;
}

HBaseStore::HBaseStore(const StoreOptions& options,
                       cluster::RegionMap regions)
    : options_(options),
      regions_(std::move(regions)),
      fanout_(options.fanout_threads > 0
                  ? options.fanout_threads
                  : FanoutExecutor::DefaultPoolSize(options.num_nodes)) {}

Status HBaseStore::Open(const StoreOptions& options,
                        std::unique_ptr<HBaseStore>* store) {
  if (options.base_dir.empty()) {
    return Status::InvalidArgument("StoreOptions::base_dir must be set");
  }
  std::vector<std::string> sample = options.region_split_sample;
  if (sample.empty()) sample = DefaultSplitSample();
  int num_regions = options.num_nodes * options.regions_per_server;
  cluster::RegionMap regions = cluster::RegionMap::FromSample(
      std::move(sample), num_regions, options.num_nodes);

  std::unique_ptr<HBaseStore> s(new HBaseStore(options, std::move(regions)));
  // One token bucket for the whole store: the region servers share one
  // machine's disk, so their background I/O draws from one budget.
  std::shared_ptr<RateLimiter> rate_limiter;
  if (options.lsm_rate_limit_bytes_per_sec > 0) {
    rate_limiter =
        std::make_shared<RateLimiter>(options.lsm_rate_limit_bytes_per_sec);
  }
  for (int i = 0; i < options.num_nodes; i++) {
    lsm::Options db_options;
    db_options.dir = options.base_dir + "/node" + std::to_string(i);
    db_options.env = options.env;
    db_options.memtable_bytes = options.memtable_bytes;
    db_options.block_cache_bytes = options.block_cache_bytes;
    db_options.block_cache_shard_bits = options.block_cache_shard_bits;
    db_options.bloom_bits_per_key = options.bloom_bits_per_key;
    db_options.format_version = options.lsm_format_version;
    db_options.block_restart_interval = options.lsm_block_restart_interval;
    db_options.prefix_bloom_length = options.lsm_prefix_bloom_length;
    db_options.arena_block_bytes = options.lsm_arena_block_bytes;
    db_options.memtable_shards = options.lsm_memtable_shards;
    db_options.compression = options.lsm_compression;
    db_options.compaction_style = lsm::CompactionStyle::kLeveled;
    db_options.compaction_threads = options.lsm_compaction_threads;
    db_options.subcompactions = options.lsm_subcompactions;
    db_options.level0_slowdown_trigger = options.lsm_level0_slowdown_trigger;
    db_options.level0_stop_trigger = options.lsm_level0_stop_trigger;
    db_options.rate_limiter = rate_limiter;
    std::unique_ptr<lsm::DB> db;
    APM_RETURN_IF_ERROR(lsm::DB::Open(db_options, &db));
    s->nodes_.push_back(std::move(db));
  }
  *store = std::move(s);
  return Status::OK();
}

Status HBaseStore::Insert(const std::string& table, const Slice& key,
                          const ycsb::Record& record) {
  (void)table;
  int node = regions_.Route(key);
  lsm::DB* db = nodes_[static_cast<size_t>(node)].get();
  // A row put is atomic in HBase: all cells go through one WAL append.
  lsm::WriteBatch batch;
  for (const auto& [field, value] : record) {
    std::string cell_key = CellKey(key, Slice(field));
    std::string cell_value = EncodeCellValue(key, Slice(value));
    batch.Put(Slice(cell_key), Slice(cell_value));
  }
  return db->Write(batch);
}

Status HBaseStore::Update(const std::string& table, const Slice& key,
                          const ycsb::Record& record) {
  // HBase puts write new cell versions; identical path.
  return Insert(table, key, record);
}

Status HBaseStore::Read(const std::string& table, const Slice& key,
                        ycsb::Record* record) {
  (void)table;
  record->clear();
  int node = regions_.Route(key);
  lsm::DB* db = nodes_[static_cast<size_t>(node)].get();
  std::string prefix = key.ToString();
  prefix.push_back('\0');
  // Page through the row's cells: a wide row can span engine scan
  // batches, and stopping after one batch would silently truncate it.
  std::string scan_from = prefix;
  for (;;) {
    std::vector<std::pair<std::string, std::string>> cells;
    APM_RETURN_IF_ERROR(
        db->Scan(lsm::ReadOptions(), Slice(scan_from), kCellBatch, &cells));
    bool past_row = false;
    for (const auto& [cell_key, cell_value] : cells) {
      if (!Slice(cell_key).StartsWith(Slice(prefix))) {
        past_row = true;
        break;
      }
      Slice row, qualifier, value;
      if (!ParseCellKey(Slice(cell_key), &row, &qualifier) ||
          !DecodeCellValue(Slice(cell_value), &value)) {
        return Status::Corruption("bad cell");
      }
      record->emplace_back(qualifier.ToString(), value.ToString());
    }
    if (past_row || static_cast<int>(cells.size()) < kCellBatch) break;
    scan_from = NextCellCursor(cells.back().first);
  }
  if (record->empty()) return Status::NotFound();
  return Status::OK();
}

Status HBaseStore::CollectRows(
    int node, const std::string& cursor, const std::string& region_end,
    int max_rows, std::vector<std::pair<std::string, ycsb::Record>>* rows) {
  lsm::DB* db = nodes_[static_cast<size_t>(node)].get();
  std::string scan_from = cursor;
  std::string current_row;
  ycsb::Record current_record;
  for (;;) {
    std::vector<std::pair<std::string, std::string>> cells;
    APM_RETURN_IF_ERROR(
        db->Scan(lsm::ReadOptions(), Slice(scan_from), kCellBatch, &cells));
    if (cells.empty()) break;
    for (const auto& [cell_key, cell_value] : cells) {
      Slice row, qualifier, value;
      if (!ParseCellKey(Slice(cell_key), &row, &qualifier)) {
        continue;  // not a cell (defensive)
      }
      if (!region_end.empty() && row.Compare(Slice(region_end)) >= 0) {
        // Past this region: flush the open row and stop.
        if (!current_row.empty() &&
            static_cast<int>(rows->size()) < max_rows) {
          rows->emplace_back(current_row, std::move(current_record));
        }
        return Status::OK();
      }
      if (row.ToView() != current_row) {
        if (!current_row.empty()) {
          rows->emplace_back(current_row, std::move(current_record));
          current_record = ycsb::Record();
          if (static_cast<int>(rows->size()) >= max_rows) {
            return Status::OK();
          }
        }
        current_row = row.ToString();
      }
      if (!DecodeCellValue(Slice(cell_value), &value)) {
        return Status::Corruption("bad cell value");
      }
      current_record.emplace_back(qualifier.ToString(), value.ToString());
    }
    if (static_cast<int>(cells.size()) < kCellBatch) break;  // exhausted
    scan_from = NextCellCursor(cells.back().first);
  }
  if (!current_row.empty() && static_cast<int>(rows->size()) < max_rows) {
    rows->emplace_back(current_row, std::move(current_record));
  }
  return Status::OK();
}

Status HBaseStore::ScanKeyed(const std::string& table,
                             const Slice& start_key, int count,
                             std::vector<ycsb::KeyedRecord>* records) {
  (void)table;
  records->clear();
  // Ordered regions partition the key space, so a wave of consecutive
  // regions can be scanned in parallel and concatenated in region order
  // — the parallel-scanner pattern of HBase clients. Each wave spans up
  // to one region per region server; most 50-record scans finish in the
  // first wave's first region, the rest walk on wave by wave.
  std::vector<std::pair<std::string, ycsb::Record>> rows;
  int region = regions_.RegionOf(start_key);
  std::string cursor = start_key.ToString();
  while (static_cast<int>(rows.size()) < count &&
         region < regions_.num_regions()) {
    const int wave = std::min(regions_.num_regions() - region,
                              std::max(1, regions_.num_servers()));
    std::vector<std::vector<std::pair<std::string, ycsb::Record>>> runs(
        static_cast<size_t>(wave));
    std::vector<FanoutExecutor::Task> tasks;
    tasks.reserve(static_cast<size_t>(wave));
    const int want = count - static_cast<int>(rows.size());
    for (int w = 0; w < wave; w++) {
      const int r = region + w;
      std::string from = w == 0 ? cursor : regions_.RegionEndKey(r - 1);
      tasks.push_back([this, &runs, w, r, from = std::move(from), want]() {
        return CollectRows(r % regions_.num_servers(), from,
                           regions_.RegionEndKey(r), want, &runs[w]);
      });
    }
    APM_RETURN_IF_ERROR(fanout_.RunAll(std::move(tasks)));
    for (auto& run : runs) {
      for (auto& row : run) {
        if (static_cast<int>(rows.size()) >= count) break;
        rows.push_back(std::move(row));
      }
    }
    region += wave;
    cursor = regions_.RegionEndKey(region - 1);
  }
  records->reserve(rows.size());
  for (auto& [row, record] : rows) {
    records->push_back(ycsb::KeyedRecord{row, std::move(record)});
  }
  return Status::OK();
}

Status HBaseStore::Delete(const std::string& table, const Slice& key) {
  (void)table;
  int node = regions_.Route(key);
  lsm::DB* db = nodes_[static_cast<size_t>(node)].get();
  std::string prefix = key.ToString();
  prefix.push_back('\0');
  // Page like Read does: deleting only the first batch of a wide row
  // would leave the tail behind and resurrect the row on the next read.
  lsm::WriteBatch batch;
  std::string scan_from = prefix;
  for (;;) {
    std::vector<std::pair<std::string, std::string>> cells;
    APM_RETURN_IF_ERROR(
        db->Scan(lsm::ReadOptions(), Slice(scan_from), kCellBatch, &cells));
    bool past_row = false;
    for (const auto& [cell_key, cell_value] : cells) {
      (void)cell_value;
      if (!Slice(cell_key).StartsWith(Slice(prefix))) {
        past_row = true;
        break;
      }
      batch.Delete(Slice(cell_key));
    }
    if (past_row || static_cast<int>(cells.size()) < kCellBatch) break;
    scan_from = NextCellCursor(cells.back().first);
  }
  if (batch.Count() == 0) return Status::NotFound();
  return db->Write(batch);
}

Status HBaseStore::DiskUsage(uint64_t* bytes) {
  std::vector<uint64_t> per_node(nodes_.size(), 0);
  std::vector<FanoutExecutor::Task> tasks;
  tasks.reserve(nodes_.size());
  for (size_t i = 0; i < nodes_.size(); i++) {
    tasks.push_back(
        [this, &per_node, i]() { return nodes_[i]->DiskUsage(&per_node[i]); });
  }
  APM_RETURN_IF_ERROR(fanout_.RunAll(std::move(tasks)));
  *bytes = 0;
  for (uint64_t node_bytes : per_node) *bytes += node_bytes;
  return Status::OK();
}

lsm::DB::Stats HBaseStore::NodeStats(int node) {
  return nodes_[static_cast<size_t>(node)]->GetStats();
}

Status HBaseStore::VerifyIntegrity() {
  for (auto& node : nodes_) {
    APM_RETURN_IF_ERROR(node->VerifyIntegrity());
  }
  return Status::OK();
}

}  // namespace apmbench::stores
