#include "stores/voldemort_store.h"

#include "common/clock.h"
#include "common/coding.h"

namespace apmbench::stores {

VoldemortStore::VoldemortStore(const StoreOptions& options)
    : options_(options),
      ring_(options.num_nodes, /*partitions_per_node=*/2, /*seed=*/11),
      fanout_(options.fanout_threads > 0
                  ? options.fanout_threads
                  : FanoutExecutor::DefaultPoolSize(options.num_nodes)) {}

Status VoldemortStore::Open(const StoreOptions& options,
                            std::unique_ptr<VoldemortStore>* store) {
  if (options.base_dir.empty()) {
    return Status::InvalidArgument("StoreOptions::base_dir must be set");
  }
  std::unique_ptr<VoldemortStore> s(new VoldemortStore(options));
  Env* env = options.env != nullptr ? options.env : Env::Default();
  for (int i = 0; i < options.num_nodes; i++) {
    std::string dir = options.base_dir + "/node" + std::to_string(i);
    APM_RETURN_IF_ERROR(env->CreateDirIfMissing(dir));
    btree::Options db_options;
    db_options.path = dir + "/bdb.db";
    db_options.env = options.env;
    db_options.buffer_pool_bytes = options.buffer_pool_bytes;
    db_options.pool_shard_bits = options.block_cache_shard_bits;
    std::unique_ptr<btree::BTree> db;
    APM_RETURN_IF_ERROR(btree::BTree::Open(db_options, &db));
    s->nodes_.push_back(std::move(db));
  }
  *store = std::move(s);
  return Status::OK();
}

namespace {

// Voldemort stores each value as a Versioned<byte[]>: a vector clock
// (node-id/version entries plus a timestamp) precedes the payload, and
// BerkeleyDB JE wraps each log entry in its own ~30-byte header
// (checksum, LSN, entry type, transaction metadata). Both are written
// verbatim so the on-disk footprint reflects the real deployment
// (Figure 17).
constexpr size_t kBdbLogHeader = 30;

void EncodeVersioned(int node_id, const ycsb::Record& record,
                     std::string* out) {
  out->clear();
  out->append(kBdbLogHeader, '\0');
  PutFixed32(out, 1);  // vector clock entries
  PutFixed32(out, static_cast<uint32_t>(node_id));
  PutFixed64(out, 1);          // version
  PutFixed64(out, NowMicros());  // clock timestamp
  std::string payload;
  ycsb::EncodeRecord(record, &payload);
  out->append(payload);
}

bool DecodeVersioned(const Slice& data, ycsb::Record* record) {
  const size_t header = kBdbLogHeader + 4 + 4 + 8 + 8;
  if (data.size() < header) return false;
  return ycsb::DecodeRecord(
      Slice(data.data() + header, data.size() - header), record);
}

}  // namespace

Status VoldemortStore::Read(const std::string& table, const Slice& key,
                            ycsb::Record* record) {
  (void)table;
  int node = ring_.Route(key);
  std::string value;
  APM_RETURN_IF_ERROR(nodes_[static_cast<size_t>(node)]->Get(key, &value));
  if (!DecodeVersioned(Slice(value), record)) {
    return Status::Corruption("undecodable record");
  }
  return Status::OK();
}

Status VoldemortStore::ScanKeyed(const std::string& table,
                                 const Slice& start_key, int count,
                                 std::vector<ycsb::KeyedRecord>* records) {
  (void)table;
  (void)start_key;
  (void)count;
  records->clear();
  return Status::NotSupported(
      "the Voldemort YCSB client does not support scans");
}

Status VoldemortStore::Insert(const std::string& table, const Slice& key,
                              const ycsb::Record& record) {
  (void)table;
  int node = ring_.Route(key);
  std::string value;
  EncodeVersioned(node, record, &value);
  return nodes_[static_cast<size_t>(node)]->Put(key, Slice(value));
}

Status VoldemortStore::Update(const std::string& table, const Slice& key,
                              const ycsb::Record& record) {
  return Insert(table, key, record);
}

Status VoldemortStore::Delete(const std::string& table, const Slice& key) {
  (void)table;
  int node = ring_.Route(key);
  return nodes_[static_cast<size_t>(node)]->Delete(key);
}

Status VoldemortStore::DiskUsage(uint64_t* bytes) {
  // Scans stay NotSupported (matching the Voldemort YCSB client); the
  // multi-node operation here is the disk sweep.
  std::vector<uint64_t> per_node(nodes_.size(), 0);
  std::vector<FanoutExecutor::Task> tasks;
  tasks.reserve(nodes_.size());
  for (size_t i = 0; i < nodes_.size(); i++) {
    tasks.push_back(
        [this, &per_node, i]() { return nodes_[i]->DiskUsage(&per_node[i]); });
  }
  APM_RETURN_IF_ERROR(fanout_.RunAll(std::move(tasks)));
  *bytes = 0;
  for (uint64_t node_bytes : per_node) *bytes += node_bytes;
  return Status::OK();
}

btree::BTree::Stats VoldemortStore::NodeStats(int node) {
  return nodes_[static_cast<size_t>(node)]->GetStats();
}

}  // namespace apmbench::stores
