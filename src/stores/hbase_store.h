#ifndef APMBENCH_STORES_HBASE_STORE_H_
#define APMBENCH_STORES_HBASE_STORE_H_

#include <memory>
#include <string>
#include <vector>

#include "cluster/routing.h"
#include "common/fanout.h"
#include "lsm/db.h"
#include "stores/store_options.h"
#include "ycsb/db.h"

namespace apmbench::stores {

/// HBase-architecture store: ordered regions pre-split over region
/// servers, each server an LSM engine with leveled merges, and — the
/// detail that drives HBase's storage profile — *per-cell* storage: every
/// field of a record is a separate KeyValue carrying the full row key,
/// column family, qualifier, and timestamp. That per-cell schema is why
/// the paper measured HBase at 7.5 GB per node for 700 MB of raw data
/// (Figure 17). Ordered partitioning keeps scans region-local.
///
/// Thread-safety: the adapter adds no locking — the region map is
/// immutable after Open, and concurrency is handled by the LSM engine's
/// writer queue and lock-free reads (see docs/concurrency.md).
class HBaseStore final : public ycsb::DB {
 public:
  static Status Open(const StoreOptions& options,
                     std::unique_ptr<HBaseStore>* store);

  Status Read(const std::string& table, const Slice& key,
              ycsb::Record* record) override;
  Status ScanKeyed(const std::string& table, const Slice& start_key,
                   int count,
                   std::vector<ycsb::KeyedRecord>* records) override;
  Status Insert(const std::string& table, const Slice& key,
                const ycsb::Record& record) override;
  Status Update(const std::string& table, const Slice& key,
                const ycsb::Record& record) override;
  Status Delete(const std::string& table, const Slice& key) override;
  Status DiskUsage(uint64_t* bytes) override;

  lsm::DB::Stats NodeStats(int node);
  /// Scrubs every node's engine (checksums, ordering, manifest
  /// agreement); Corruption on the first violation.
  Status VerifyIntegrity();
  const cluster::RegionMap& regions() const { return regions_; }

  /// Cell key layout: row + '\0' + family ':' qualifier. Exposed for
  /// tests.
  static std::string CellKey(const Slice& row, const Slice& qualifier);
  /// Splits a cell key back into (row, qualifier); false if malformed.
  static bool ParseCellKey(const Slice& cell_key, Slice* row,
                           Slice* qualifier);

 private:
  HBaseStore(const StoreOptions& options, cluster::RegionMap regions);

  /// Collects whole rows from one node starting at `cursor`, stopping at
  /// `region_end` (exclusive; empty = unbounded) or `max_rows`.
  Status CollectRows(int node, const std::string& cursor,
                     const std::string& region_end, int max_rows,
                     std::vector<std::pair<std::string, ycsb::Record>>* rows);

  StoreOptions options_;
  cluster::RegionMap regions_;
  FanoutExecutor fanout_;
  std::vector<std::unique_ptr<lsm::DB>> nodes_;
};

}  // namespace apmbench::stores

#endif  // APMBENCH_STORES_HBASE_STORE_H_
