#include "ycsb/db.h"

#include "common/coding.h"

namespace apmbench::ycsb {

const char* OpTypeName(OpType type) {
  switch (type) {
    case OpType::kRead:
      return "READ";
    case OpType::kUpdate:
      return "UPDATE";
    case OpType::kInsert:
      return "INSERT";
    case OpType::kScan:
      return "SCAN";
    case OpType::kDelete:
      return "DELETE";
  }
  return "UNKNOWN";
}

Status DB::Scan(const std::string& table, const Slice& start_key, int count,
                std::vector<Record>* records) {
  records->clear();
  std::vector<KeyedRecord> keyed;
  APM_RETURN_IF_ERROR(ScanKeyed(table, start_key, count, &keyed));
  records->reserve(keyed.size());
  for (auto& entry : keyed) {
    records->push_back(std::move(entry.record));
  }
  return Status::OK();
}

void EncodeRecord(const Record& record, std::string* out) {
  out->clear();
  PutVarint32(out, static_cast<uint32_t>(record.size()));
  for (const auto& [field, value] : record) {
    PutLengthPrefixedSlice(out, Slice(field));
    PutLengthPrefixedSlice(out, Slice(value));
  }
}

bool DecodeRecord(const Slice& data, Record* record) {
  record->clear();
  Slice in = data;
  uint32_t count;
  if (!GetVarint32(&in, &count)) return false;
  // A field needs at least two bytes (two length prefixes), so a count
  // beyond the remaining bytes is malformed — reject it before reserving
  // rather than letting a hostile prefix drive a huge allocation.
  if (count > in.size()) return false;
  record->reserve(count);
  for (uint32_t i = 0; i < count; i++) {
    Slice field, value;
    if (!GetLengthPrefixedSlice(&in, &field) ||
        !GetLengthPrefixedSlice(&in, &value)) {
      return false;
    }
    record->emplace_back(field.ToString(), value.ToString());
  }
  return true;
}

}  // namespace apmbench::ycsb
