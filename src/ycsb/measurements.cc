#include "ycsb/measurements.h"

#include <cstdio>

namespace apmbench::ycsb {

void Measurements::Record(OpType type, uint64_t latency_us, bool ok) {
  size_t index = static_cast<size_t>(type);
  histograms_[index].Add(latency_us);
  if (ok) {
    ok_counts_[index]++;
  } else {
    error_counts_[index]++;
  }
}

void Measurements::Merge(const Measurements& other) {
  for (size_t i = 0; i < histograms_.size(); i++) {
    histograms_[i].Merge(other.histograms_[i]);
    ok_counts_[i] += other.ok_counts_[i];
    error_counts_[i] += other.error_counts_[i];
  }
  read_misses_ += other.read_misses_;
}

void Measurements::Reset() {
  for (size_t i = 0; i < histograms_.size(); i++) {
    histograms_[i].Reset();
    ok_counts_[i] = 0;
    error_counts_[i] = 0;
  }
  read_misses_ = 0;
}

uint64_t Measurements::total_ops() const {
  uint64_t total = 0;
  for (size_t i = 0; i < histograms_.size(); i++) {
    total += ok_counts_[i] + error_counts_[i];
  }
  return total;
}

std::string Measurements::Summary() const {
  std::string out;
  char line[256];
  for (int i = 0; i < kNumOpTypes; i++) {
    const Histogram& h = histograms_[static_cast<size_t>(i)];
    if (h.count() == 0) continue;
    snprintf(line, sizeof(line),
             "%-6s count=%llu mean=%.1fus p95=%lluus p99=%lluus max=%lluus "
             "errors=%llu\n",
             OpTypeName(static_cast<OpType>(i)),
             static_cast<unsigned long long>(h.count()), h.Mean(),
             static_cast<unsigned long long>(h.Percentile(0.95)),
             static_cast<unsigned long long>(h.Percentile(0.99)),
             static_cast<unsigned long long>(h.max()),
             static_cast<unsigned long long>(
                 error_counts_[static_cast<size_t>(i)]));
    out += line;
  }
  if (read_misses_ > 0) {
    snprintf(line, sizeof(line), "read misses=%llu\n",
             static_cast<unsigned long long>(read_misses_));
    out += line;
  }
  return out;
}

}  // namespace apmbench::ycsb
