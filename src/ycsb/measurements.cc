#include "ycsb/measurements.h"

#include <cstdio>

namespace apmbench::ycsb {

void Measurements::Record(OpType type, uint64_t measured_us,
                          uint64_t intended_us, bool ok) {
  size_t index = static_cast<size_t>(type);
  histograms_[index].Add(measured_us);
  intended_histograms_[index].Add(intended_us);
  if (ok) {
    ok_counts_[index]++;
  } else {
    error_counts_[index]++;
  }
}

void Measurements::Merge(const Measurements& other) {
  for (size_t i = 0; i < histograms_.size(); i++) {
    histograms_[i].Merge(other.histograms_[i]);
    intended_histograms_[i].Merge(other.intended_histograms_[i]);
    ok_counts_[i] += other.ok_counts_[i];
    error_counts_[i] += other.error_counts_[i];
  }
  read_misses_ += other.read_misses_;
  track_intended_ = track_intended_ || other.track_intended_;
}

void Measurements::Reset() {
  for (size_t i = 0; i < histograms_.size(); i++) {
    histograms_[i].Reset();
    intended_histograms_[i].Reset();
    ok_counts_[i] = 0;
    error_counts_[i] = 0;
  }
  read_misses_ = 0;
  track_intended_ = false;
}

uint64_t Measurements::total_ops() const {
  uint64_t total = 0;
  for (size_t i = 0; i < histograms_.size(); i++) {
    total += ok_counts_[i] + error_counts_[i];
  }
  return total;
}

Histogram Measurements::MergedHistogram() const {
  Histogram merged;
  for (const Histogram& h : histograms_) merged.Merge(h);
  return merged;
}

Histogram Measurements::MergedIntendedHistogram() const {
  Histogram merged;
  for (const Histogram& h : intended_histograms_) merged.Merge(h);
  return merged;
}

std::string Measurements::Summary() const {
  std::string out;
  char line[256];
  for (int i = 0; i < kNumOpTypes; i++) {
    const Histogram& h = histograms_[static_cast<size_t>(i)];
    if (h.count() == 0) continue;
    snprintf(line, sizeof(line),
             "%-10s count=%llu mean=%.1fus p95=%lluus p99=%lluus max=%lluus "
             "errors=%llu\n",
             OpTypeName(static_cast<OpType>(i)),
             static_cast<unsigned long long>(h.count()), h.Mean(),
             static_cast<unsigned long long>(h.Percentile(0.95)),
             static_cast<unsigned long long>(h.Percentile(0.99)),
             static_cast<unsigned long long>(h.max()),
             static_cast<unsigned long long>(
                 error_counts_[static_cast<size_t>(i)]));
    out += line;
    if (track_intended_) {
      const Histogram& ih = intended_histograms_[static_cast<size_t>(i)];
      std::string label = std::string(OpTypeName(static_cast<OpType>(i)));
      label += "(int)";
      snprintf(line, sizeof(line),
               "%-10s count=%llu mean=%.1fus p95=%lluus p99=%lluus "
               "max=%lluus\n",
               label.c_str(), static_cast<unsigned long long>(ih.count()),
               ih.Mean(),
               static_cast<unsigned long long>(ih.Percentile(0.95)),
               static_cast<unsigned long long>(ih.Percentile(0.99)),
               static_cast<unsigned long long>(ih.max()));
      out += line;
    }
  }
  if (read_misses_ > 0) {
    snprintf(line, sizeof(line), "read misses=%llu\n",
             static_cast<unsigned long long>(read_misses_));
    out += line;
  }
  return out;
}

void IntervalCollector::ReportWindow(uint64_t index, uint64_t ops,
                                     const Histogram& measured,
                                     const Histogram& intended) {
  if (!enabled() || ops == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (windows_.size() <= index) windows_.resize(index + 1);
  Window& w = windows_[index];
  w.ops += ops;
  w.measured.Merge(measured);
  w.intended.Merge(intended);
}

TimeSeriesPoint IntervalCollector::MakePoint(uint64_t index,
                                             double duration) const {
  const Window& w = windows_[index];
  TimeSeriesPoint p;
  // Window end; for a clamped final window this is the actual end of the
  // measured phase, not the nominal boundary.
  p.t_seconds = static_cast<double>(index) * window_seconds_ + duration;
  p.window_seconds = duration;
  p.ops = w.ops;
  p.ops_per_sec = duration > 0 ? static_cast<double>(w.ops) / duration : 0;
  p.measured_p50_us = w.measured.Percentile(0.50);
  p.measured_p95_us = w.measured.Percentile(0.95);
  p.measured_p99_us = w.measured.Percentile(0.99);
  p.measured_max_us = w.measured.max();
  p.intended_p50_us = w.intended.Percentile(0.50);
  p.intended_p95_us = w.intended.Percentile(0.95);
  p.intended_p99_us = w.intended.Percentile(0.99);
  p.intended_max_us = w.intended.max();
  return p;
}

bool IntervalCollector::WindowSnapshot(uint64_t index,
                                       TimeSeriesPoint* point) const {
  if (!enabled()) return false;
  std::lock_guard<std::mutex> lock(mu_);
  if (index >= windows_.size() || windows_[index].ops == 0) return false;
  *point = MakePoint(index, window_seconds_);
  return true;
}

uint64_t IntervalCollector::NumWindows() const {
  std::lock_guard<std::mutex> lock(mu_);
  return windows_.size();
}

TimeSeries IntervalCollector::ToTimeSeries(
    double measured_elapsed_seconds) const {
  TimeSeries series;
  series.window_seconds = window_seconds_;
  if (!enabled()) return series;
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < windows_.size(); i++) {
    double start = static_cast<double>(i) * window_seconds_;
    double duration = window_seconds_;
    if (measured_elapsed_seconds > start &&
        measured_elapsed_seconds < start + window_seconds_) {
      duration = measured_elapsed_seconds - start;  // final partial window
    }
    series.points.push_back(MakePoint(i, duration));
  }
  return series;
}

}  // namespace apmbench::ycsb
