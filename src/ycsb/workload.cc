#include "ycsb/workload.h"

#include <algorithm>
#include <cctype>

#include "common/hash.h"

namespace apmbench::ycsb {

namespace {

/// Raw operation proportions in draw order; shared by the constructor
/// and Validate so they can never disagree.
struct Proportions {
  double read, update, scan, insert, del;
  double Sum() const { return read + update + scan + insert + del; }
};

Proportions ReadProportions(const Properties& properties) {
  return Proportions{properties.GetDouble("readproportion", 0.95),
                     properties.GetDouble("updateproportion", 0.0),
                     properties.GetDouble("scanproportion", 0.0),
                     properties.GetDouble("insertproportion", 0.05),
                     properties.GetDouble("deleteproportion", 0.0)};
}

}  // namespace

Status CoreWorkload::Validate(const Properties& properties) {
  Proportions p = ReadProportions(properties);
  for (double v : {p.read, p.update, p.scan, p.insert, p.del}) {
    if (v < 0) {
      return Status::InvalidArgument("negative operation proportion");
    }
  }
  if (p.Sum() <= 0) {
    return Status::InvalidArgument("all operation proportions are zero");
  }
  if (properties.GetInt("keylength", 25) < kMinKeyLength) {
    return Status::InvalidArgument(
        "keylength below " + std::to_string(kMinKeyLength) +
        " would truncate keys and alias distinct records");
  }
  return Status::OK();
}

CoreWorkload::CoreWorkload(const Properties& properties) {
  table_ = properties.GetString("table", "usertable");
  record_count_ =
      static_cast<uint64_t>(properties.GetInt("recordcount", 1000));
  field_count_ = static_cast<int>(properties.GetInt("fieldcount", 5));
  field_length_ = static_cast<int>(properties.GetInt("fieldlength", 10));
  // Clamp rather than truncate: BuildKeyName never aliases keys (Validate
  // reports the misconfiguration to drivers that care).
  key_length_ = std::max(
      static_cast<int>(properties.GetInt("keylength", 25)), kMinKeyLength);
  max_scan_length_ = static_cast<int>(properties.GetInt("maxscanlength", 50));

  // Normalize the mix so the cumulative thresholds always span [0, 1]:
  // proportions summing to s != 1 are scaled by 1/s. Negative values are
  // clamped to 0 and an all-zero mix degrades to read-only (Validate
  // rejects both up front).
  Proportions p = ReadProportions(properties);
  p.read = std::max(p.read, 0.0);
  p.update = std::max(p.update, 0.0);
  p.scan = std::max(p.scan, 0.0);
  p.insert = std::max(p.insert, 0.0);
  p.del = std::max(p.del, 0.0);
  double sum = p.Sum();
  if (sum <= 0) {
    p.read = 1.0;
    sum = 1.0;
  }
  cum_read_ = p.read / sum;
  cum_update_ = cum_read_ + p.update / sum;
  cum_scan_ = cum_update_ + p.scan / sum;
  cum_insert_ = cum_scan_ + p.insert / sum;
  // Guard against floating-point shortfall: when delete has no mass the
  // insert threshold must be exactly 1 so no draw can land in the delete
  // slot (and likewise up the chain for trailing zero proportions).
  if (p.del <= 0) {
    cum_insert_ = 1.0;
    if (p.insert <= 0) {
      cum_scan_ = 1.0;
      if (p.scan <= 0) {
        cum_update_ = 1.0;
        if (p.update <= 0) cum_read_ = 1.0;
      }
    }
  }

  ordered_inserts_ =
      properties.GetString("insertorder", "hashed") == "ordered";
  hotspot_data_fraction_ =
      properties.GetDouble("hotspotdatafraction", 0.2);
  hotspot_opn_fraction_ = properties.GetDouble("hotspotopnfraction", 0.8);

  std::string dist = properties.GetString("requestdistribution", "uniform");
  if (dist == "hotspot") {
    request_distribution_ = Distribution::kHotspot;
  } else if (dist == "zipfian") {
    request_distribution_ = Distribution::kZipfian;
    zipfian_ = std::make_unique<ScrambledZipfianGenerator>(
        0, record_count_ > 0 ? record_count_ : 1);
  } else if (dist == "latest") {
    request_distribution_ = Distribution::kLatest;
    latest_zipfian_ = std::make_unique<ZipfianGenerator>(
        0, record_count_ > 0 ? record_count_ : 1);
  } else {
    request_distribution_ = Distribution::kUniform;
  }

  uint64_t insert_start =
      static_cast<uint64_t>(properties.GetInt("insertstart", 0));
  insert_sequence_.store(record_count_ + insert_start);
}

std::string CoreWorkload::BuildKeyName(uint64_t keynum) const {
  // YCSB hashes the sequence number so inserts scatter over the key space
  // ("hashed" insert order), then prefixes with "user". We zero-pad to a
  // fixed keylength, giving the paper's 25-byte keys. With
  // insertorder=ordered the sequence number is used directly (keys arrive
  // in key order — worst case for range-partitioned stores like HBase).
  uint64_t hashed = ordered_inserts_ ? keynum : FnvHash64(keynum);
  std::string digits = std::to_string(hashed);
  std::string key = "user";
  // key_length_ >= kMinKeyLength = 4 + 20 digits (the constructor clamps),
  // so the zero-padded numeric part always fits without truncation and
  // distinct keynums can never alias.
  int pad = key_length_ - static_cast<int>(key.size()) -
            static_cast<int>(digits.size());
  for (int i = 0; i < pad; i++) key.push_back('0');
  key.append(digits);
  return key;
}

Record CoreWorkload::BuildRecord(Random* rng) const {
  Record record;
  record.reserve(static_cast<size_t>(field_count_));
  for (int i = 0; i < field_count_; i++) {
    std::string value(static_cast<size_t>(field_length_), '\0');
    for (char& c : value) {
      c = static_cast<char>('a' + rng->Uniform(26));
    }
    record.emplace_back("field" + std::to_string(i), std::move(value));
  }
  return record;
}

OpType CoreWorkload::NextOperation(Random* rng) {
  double r = rng->NextDouble();
  if (r < cum_read_) return OpType::kRead;
  if (r < cum_update_) return OpType::kUpdate;
  if (r < cum_scan_) return OpType::kScan;
  if (r < cum_insert_) return OpType::kInsert;
  return OpType::kDelete;
}

uint64_t CoreWorkload::NextTransactionKeyNum(Random* rng) {
  uint64_t bound = insert_sequence_.load(std::memory_order_relaxed);
  if (bound == 0) return 0;
  switch (request_distribution_) {
    case Distribution::kUniform:
      return rng->Uniform(bound);
    case Distribution::kZipfian: {
      // Drawn over the initial keyspace; new inserts are not hot.
      uint64_t v = zipfian_->Next(rng);
      return v % bound;
    }
    case Distribution::kLatest: {
      uint64_t off = latest_zipfian_->Next(rng);
      return bound - 1 - (off % bound);
    }
    case Distribution::kHotspot: {
      // hotspotopnfraction of requests hit the first
      // hotspotdatafraction of the keyspace.
      uint64_t hot = static_cast<uint64_t>(
          hotspot_data_fraction_ * static_cast<double>(bound));
      if (hot == 0) hot = 1;
      if (rng->NextDouble() < hotspot_opn_fraction_) {
        return rng->Uniform(hot);
      }
      return bound == hot ? rng->Uniform(bound)
                          : hot + rng->Uniform(bound - hot);
    }
  }
  return 0;
}

uint64_t CoreWorkload::NextInsertKeyNum() {
  return insert_sequence_.fetch_add(1, std::memory_order_relaxed);
}

int CoreWorkload::NextScanLength(Random* rng) {
  (void)rng;
  // The paper fixes the scan length at 50 records; a distribution hook
  // can be added here without touching callers.
  return max_scan_length_;
}

Status CoreWorkload::Table1Preset(const std::string& name,
                                  Properties* props) {
  std::string upper = name;
  std::transform(upper.begin(), upper.end(), upper.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  // Table 1: Workload -> % Read, % Scans, % Inserts.
  double read = 0, scan = 0, insert = 0;
  if (upper == "R") {
    read = 0.95;
    insert = 0.05;
  } else if (upper == "RW") {
    read = 0.50;
    insert = 0.50;
  } else if (upper == "W") {
    read = 0.01;
    insert = 0.99;
  } else if (upper == "RS") {
    read = 0.47;
    scan = 0.47;
    insert = 0.06;
  } else if (upper == "RSW") {
    read = 0.25;
    scan = 0.25;
    insert = 0.50;
  } else {
    return Status::InvalidArgument("unknown Table 1 workload: " + name);
  }
  char buf[32];
  snprintf(buf, sizeof(buf), "%.2f", read);
  props->Set("readproportion", buf);
  snprintf(buf, sizeof(buf), "%.2f", scan);
  props->Set("scanproportion", buf);
  snprintf(buf, sizeof(buf), "%.2f", insert);
  props->Set("insertproportion", buf);
  props->Set("updateproportion", "0");
  props->Set("deleteproportion", "0");
  // The paper's record shape and scan length.
  props->Set("fieldcount", "5");
  props->Set("fieldlength", "10");
  props->Set("keylength", "25");
  props->Set("maxscanlength", "50");
  props->Set("requestdistribution", "uniform");
  return Status::OK();
}

}  // namespace apmbench::ycsb
