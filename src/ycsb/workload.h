#ifndef APMBENCH_YCSB_WORKLOAD_H_
#define APMBENCH_YCSB_WORKLOAD_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/properties.h"
#include "common/random.h"
#include "ycsb/db.h"

namespace apmbench::ycsb {

/// The workload generator, equivalent to YCSB's CoreWorkload: a
/// configurable mix of CRUD+scan operations over synthetic records.
///
/// Record shape follows the paper's APM benchmark: a 25-byte alphanumeric
/// key and 5 fields of 10 bytes each (75-byte raw records, Figure 2's
/// measurement mapped onto the generic data model).
///
/// Recognized properties (YCSB names):
///   table, recordcount, fieldcount, fieldlength, keylength,
///   readproportion, updateproportion, insertproportion, scanproportion,
///   deleteproportion,
///   requestdistribution (uniform|zipfian|latest|hotspot),
///   hotspotdatafraction, hotspotopnfraction,
///   insertorder (hashed|ordered), maxscanlength, insertstart
///
/// Thread-safety: NextOperation/Next*Key take a caller-owned Random so
/// client threads generate independently; the insert sequence is shared
/// and atomic.
class CoreWorkload {
 public:
  /// Keys are "user" + a zero-padded decimal sequence/hash; a uint64
  /// needs up to 20 digits, so any shorter key length would have to
  /// truncate and could alias distinct keys.
  static constexpr int kKeyPrefixLength = 4;
  static constexpr int kMinKeyLength = kKeyPrefixLength + 20;

  /// Rejects configurations the constructor would have to silently
  /// repair: negative or all-zero operation proportions, and keylength
  /// below kMinKeyLength (which would truncate and alias keys). Drivers
  /// should call this before constructing.
  static Status Validate(const Properties& properties);

  explicit CoreWorkload(const Properties& properties);

  /// Key of record number `keynum` ("user" + zero-padded FNV hash,
  /// `keylength` bytes total).
  std::string BuildKeyName(uint64_t keynum) const;

  /// A full record with `fieldcount` random fields of `fieldlength` bytes.
  Record BuildRecord(Random* rng) const;

  /// Draws the next operation type from the configured mix.
  OpType NextOperation(Random* rng);

  /// Record number for a read/update/scan-start, over the keys inserted
  /// so far.
  uint64_t NextTransactionKeyNum(Random* rng);

  /// Claims the next record number for an insert.
  uint64_t NextInsertKeyNum();

  /// Scan length for the next scan operation (the paper fixes 50).
  int NextScanLength(Random* rng);

  uint64_t record_count() const { return record_count_; }
  const std::string& table() const { return table_; }
  int field_count() const { return field_count_; }
  int field_length() const { return field_length_; }

  /// Table 1 of the paper: the five APM workload mixes. `name` is one of
  /// R, RW, W, RS, RSW (case-insensitive).
  static Status Table1Preset(const std::string& name, Properties* props);

 private:
  enum class Distribution { kUniform, kZipfian, kLatest, kHotspot };

  std::string table_;
  uint64_t record_count_;
  int field_count_;
  int field_length_;
  int key_length_;
  int max_scan_length_;
  bool ordered_inserts_;
  double hotspot_data_fraction_;
  double hotspot_opn_fraction_;
  /// Cumulative operation-mix thresholds over [0, 1), normalized at
  /// construction in draw order read, update, scan, insert, delete (the
  /// delete threshold is implicitly 1). NextOperation draws one uniform
  /// and walks these, so proportions that sum to less than 1 are scaled
  /// up instead of the residual mass leaking into one operation type.
  double cum_read_, cum_update_, cum_scan_, cum_insert_;
  Distribution request_distribution_;
  std::unique_ptr<ScrambledZipfianGenerator> zipfian_;
  std::unique_ptr<ZipfianGenerator> latest_zipfian_;
  std::atomic<uint64_t> insert_sequence_;
};

}  // namespace apmbench::ycsb

#endif  // APMBENCH_YCSB_WORKLOAD_H_
