#ifndef APMBENCH_YCSB_TIMESERIES_H_
#define APMBENCH_YCSB_TIMESERIES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace apmbench::ycsb {

/// One measurement window of a benchmark run: throughput plus measured
/// and intended latency percentiles (microseconds). `t_seconds` is the
/// window's END, relative to the start of the measured (post-warmup)
/// phase, so a 1-second window series reads t=1,2,3,...
struct TimeSeriesPoint {
  double t_seconds = 0.0;
  double window_seconds = 0.0;
  uint64_t ops = 0;
  double ops_per_sec = 0.0;
  uint64_t measured_p50_us = 0;
  uint64_t measured_p95_us = 0;
  uint64_t measured_p99_us = 0;
  uint64_t measured_max_us = 0;
  uint64_t intended_p50_us = 0;
  uint64_t intended_p95_us = 0;
  uint64_t intended_p99_us = 0;
  uint64_t intended_max_us = 0;
};

/// A latency-over-time series (SciTS-style reporting): what the bounded
/// throughput figures plot instead of a single end-of-run aggregate.
/// Produced by the runner's IntervalCollector; serializable to JSON and
/// CSV so figure harnesses and external plotters can consume it.
struct TimeSeries {
  double window_seconds = 0.0;
  std::vector<TimeSeriesPoint> points;

  bool empty() const { return points.empty(); }

  /// JSON document:
  ///   {"window_seconds": 1.0,
  ///    "points": [{"t": 1.0, "ops": 950, "ops_per_sec": 950.0,
  ///                "measured": {"p50":..., "p95":..., "p99":..., "max":...},
  ///                "intended": {...}}, ...]}
  std::string ToJson() const;

  /// CSV with a header row:
  ///   t_seconds,ops,ops_per_sec,measured_p50_us,...,intended_max_us
  std::string ToCsv() const;

  /// Parses a document produced by ToJson(). Tolerates whitespace and
  /// reordered keys; unknown keys are an error (the format is ours).
  static Status FromJson(const std::string& json, TimeSeries* out);
};

}  // namespace apmbench::ycsb

#endif  // APMBENCH_YCSB_TIMESERIES_H_
