#ifndef APMBENCH_YCSB_DB_H_
#define APMBENCH_YCSB_DB_H_

#include <string>
#include <utility>
#include <vector>

#include "common/slice.h"
#include "common/status.h"

namespace apmbench::ycsb {

/// A record is an ordered list of (field name, value) pairs, matching
/// YCSB's data model: records have a fixed number of fields and are
/// logically indexed by a key.
using Record = std::vector<std::pair<std::string, std::string>>;

/// A scan result entry: the record plus its key (the key is needed by
/// range consumers such as the APM window queries; plain YCSB drivers use
/// the record-only Scan wrapper).
struct KeyedRecord {
  std::string key;
  Record record;
};

/// The operation mix executed by a workload (CRUD + scan).
enum class OpType {
  kRead = 0,
  kUpdate = 1,
  kInsert = 2,
  kScan = 3,
  kDelete = 4,
};

constexpr int kNumOpTypes = 5;

const char* OpTypeName(OpType type);

/// The storage-system binding interface, equivalent to YCSB's `DB` class.
/// One instance serves all client threads; implementations must be
/// thread-safe.
class DB {
 public:
  virtual ~DB() = default;

  /// Called once before the workload starts.
  virtual Status Init() { return Status::OK(); }

  /// Reads the record stored under `key`. NotFound when absent.
  virtual Status Read(const std::string& table, const Slice& key,
                      Record* record) = 0;

  /// Reads up to `count` records with key >= start_key in key order,
  /// returning keys alongside records.
  virtual Status ScanKeyed(const std::string& table, const Slice& start_key,
                           int count, std::vector<KeyedRecord>* records) = 0;

  /// YCSB-shaped scan (records only); forwards to ScanKeyed.
  Status Scan(const std::string& table, const Slice& start_key, int count,
              std::vector<Record>* records);

  /// Inserts a new record (APM data is append-only: inserts dominate).
  virtual Status Insert(const std::string& table, const Slice& key,
                        const Record& record) = 0;

  /// Replaces the record stored under `key`.
  virtual Status Update(const std::string& table, const Slice& key,
                        const Record& record) = 0;

  virtual Status Delete(const std::string& table, const Slice& key) = 0;

  /// Bytes of durable storage used, for the disk-usage experiment
  /// (Figure 17). Stores without a disk footprint return 0.
  virtual Status DiskUsage(uint64_t* bytes) {
    *bytes = 0;
    return Status::OK();
  }
};

/// Default record serialization (length-prefixed field/value pairs) used
/// by stores that keep whole records as opaque values. Stores modeling
/// per-cell layouts (the HBase-like store) use their own codecs.
void EncodeRecord(const Record& record, std::string* out);
bool DecodeRecord(const Slice& data, Record* record);

}  // namespace apmbench::ycsb

#endif  // APMBENCH_YCSB_DB_H_
