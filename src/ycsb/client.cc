#include "ycsb/client.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/clock.h"

namespace apmbench::ycsb {

double RunResult::MeanLatencyMs(OpType type) const {
  const Histogram& h = measurements.histogram(type);
  return h.count() == 0 ? 0.0 : h.Mean() / 1000.0;
}

std::string RunResult::Summary() const {
  char head[128];
  snprintf(head, sizeof(head), "throughput=%.0f ops/sec elapsed=%.1fs\n",
           throughput_ops_sec, elapsed_seconds);
  return head + measurements.Summary();
}

Status LoadDatabase(DB* db, CoreWorkload* workload, int threads,
                    uint64_t seed) {
  APM_RETURN_IF_ERROR(db->Init());
  uint64_t total = workload->record_count();
  if (threads < 1) threads = 1;
  std::atomic<uint64_t> next{0};
  std::vector<Status> statuses(static_cast<size_t>(threads));
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; t++) {
    workers.emplace_back([&, t]() {
      Random rng(seed + static_cast<uint64_t>(t) * 7919);
      for (;;) {
        uint64_t keynum = next.fetch_add(1, std::memory_order_relaxed);
        if (keynum >= total) break;
        std::string key = workload->BuildKeyName(keynum);
        Record record = workload->BuildRecord(&rng);
        Status s = db->Insert(workload->table(), Slice(key), record);
        if (!s.ok()) {
          statuses[static_cast<size_t>(t)] = s;
          break;
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  return Status::OK();
}

namespace {

/// One closed-loop client connection.
class ClientThread {
 public:
  /// Operations completed so far (read by the status reporter).
  uint64_t ops_done() const {
    return ops_done_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> ops_done_{0};

 public:
  ClientThread(DB* db, CoreWorkload* workload, uint64_t seed,
               double target_ops_per_sec)
      : db_(db),
        workload_(workload),
        rng_(seed),
        target_interval_us_(target_ops_per_sec > 0
                                ? 1e6 / target_ops_per_sec
                                : 0.0) {}

  /// Runs until `stop` is set or `ops_budget` operations are done
  /// (budget of 0 means unbounded).
  void Run(const std::atomic<bool>& stop, std::atomic<int64_t>* ops_budget) {
    uint64_t next_deadline = NowMicros();
    while (!stop.load(std::memory_order_relaxed)) {
      if (ops_budget != nullptr) {
        if (ops_budget->fetch_sub(1, std::memory_order_relaxed) <= 0) break;
      }
      if (target_interval_us_ > 0) {
        // Open-loop pacing for the bounded-throughput experiments.
        next_deadline += static_cast<uint64_t>(target_interval_us_);
        uint64_t now = NowMicros();
        if (now < next_deadline) {
          std::this_thread::sleep_for(
              std::chrono::microseconds(next_deadline - now));
        }
      }
      DoOne();
    }
  }

  Measurements* measurements() { return &measurements_; }

 private:
  void DoOne() {
    OpType op = workload_->NextOperation(&rng_);
    uint64_t start = NowMicros();
    bool ok = true;
    switch (op) {
      case OpType::kRead: {
        std::string key =
            workload_->BuildKeyName(workload_->NextTransactionKeyNum(&rng_));
        Record record;
        Status s = db_->Read(workload_->table(), Slice(key), &record);
        if (s.IsNotFound()) {
          measurements_.RecordReadMiss();
        } else {
          ok = s.ok();
        }
        break;
      }
      case OpType::kUpdate: {
        std::string key =
            workload_->BuildKeyName(workload_->NextTransactionKeyNum(&rng_));
        Record record = workload_->BuildRecord(&rng_);
        ok = db_->Update(workload_->table(), Slice(key), record).ok();
        break;
      }
      case OpType::kInsert: {
        std::string key =
            workload_->BuildKeyName(workload_->NextInsertKeyNum());
        Record record = workload_->BuildRecord(&rng_);
        ok = db_->Insert(workload_->table(), Slice(key), record).ok();
        break;
      }
      case OpType::kScan: {
        std::string key =
            workload_->BuildKeyName(workload_->NextTransactionKeyNum(&rng_));
        std::vector<Record> records;
        ok = db_->Scan(workload_->table(), Slice(key),
                       workload_->NextScanLength(&rng_), &records)
                 .ok();
        break;
      }
      case OpType::kDelete: {
        std::string key =
            workload_->BuildKeyName(workload_->NextTransactionKeyNum(&rng_));
        Status s = db_->Delete(workload_->table(), Slice(key));
        ok = s.ok() || s.IsNotFound();
        break;
      }
    }
    uint64_t latency = NowMicros() - start;
    measurements_.Record(op, latency, ok);
    ops_done_.fetch_add(1, std::memory_order_relaxed);
  }

  DB* db_;
  CoreWorkload* workload_;
  Random rng_;
  Measurements measurements_;
  double target_interval_us_;
};

}  // namespace

Status RunWorkload(DB* db, CoreWorkload* workload, const RunConfig& config,
                   RunResult* result) {
  APM_RETURN_IF_ERROR(db->Init());
  int threads = config.threads < 1 ? 1 : config.threads;

  std::vector<std::unique_ptr<ClientThread>> clients;
  clients.reserve(static_cast<size_t>(threads));
  double per_thread_target =
      config.target_ops_per_sec > 0 ? config.target_ops_per_sec / threads
                                    : 0.0;
  for (int t = 0; t < threads; t++) {
    clients.push_back(std::make_unique<ClientThread>(
        db, workload, config.seed + static_cast<uint64_t>(t) * 104729,
        per_thread_target));
  }

  std::atomic<bool> stop{false};
  std::atomic<int64_t> budget{
      config.operation_count > 0
          ? static_cast<int64_t>(config.operation_count)
          : 0};
  std::atomic<int64_t>* budget_ptr =
      config.operation_count > 0 ? &budget : nullptr;

  uint64_t start = NowMicros();
  std::vector<std::thread> workers;
  workers.reserve(clients.size());
  for (auto& client : clients) {
    workers.emplace_back(
        [&stop, budget_ptr, c = client.get()]() { c->Run(stop, budget_ptr); });
  }

  // Optional periodic status reporting (the YCSB status thread).
  std::thread status_thread;
  std::atomic<bool> status_stop{false};
  if (config.status_interval_seconds > 0 && config.status_callback) {
    status_thread = std::thread([&]() {
      uint64_t last_total = 0;
      double elapsed = 0;
      while (!status_stop.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::duration<double>(
            config.status_interval_seconds));
        elapsed += config.status_interval_seconds;
        uint64_t total = 0;
        for (auto& client : clients) total += client->ops_done();
        config.status_callback(
            elapsed, total,
            static_cast<double>(total - last_total) /
                config.status_interval_seconds);
        last_total = total;
      }
    });
  }

  if (config.operation_count == 0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(config.duration_seconds));
    stop.store(true, std::memory_order_relaxed);
  }
  for (auto& worker : workers) worker.join();
  status_stop.store(true, std::memory_order_relaxed);
  if (status_thread.joinable()) status_thread.join();
  uint64_t end = NowMicros();

  result->measurements.Reset();
  for (auto& client : clients) {
    result->measurements.Merge(*client->measurements());
  }
  result->elapsed_seconds = static_cast<double>(end - start) / 1e6;
  result->throughput_ops_sec =
      result->elapsed_seconds > 0
          ? static_cast<double>(result->measurements.total_ops()) /
                result->elapsed_seconds
          : 0.0;
  return Status::OK();
}

}  // namespace apmbench::ycsb
