#include "ycsb/client.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/clock.h"

namespace apmbench::ycsb {

double RunResult::MeanLatencyMs(OpType type) const {
  const Histogram& h = measurements.histogram(type);
  return h.count() == 0 ? 0.0 : h.Mean() / 1000.0;
}

std::string RunResult::Summary() const {
  char head[160];
  snprintf(head, sizeof(head),
           "throughput=%.0f ops/sec elapsed=%.1fs warmup_ops=%llu\n",
           throughput_ops_sec, elapsed_seconds,
           static_cast<unsigned long long>(warmup_ops));
  return head + measurements.Summary();
}

Status LoadDatabase(DB* db, CoreWorkload* workload, int threads,
                    uint64_t seed) {
  APM_RETURN_IF_ERROR(db->Init());
  uint64_t total = workload->record_count();
  if (threads < 1) threads = 1;
  std::atomic<uint64_t> next{0};
  // One thread's failure aborts the whole load: continuing would waste
  // minutes loading a store that the run phase cannot use anyway.
  std::atomic<bool> abort{false};
  std::vector<Status> statuses(static_cast<size_t>(threads));
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; t++) {
    workers.emplace_back([&, t]() {
      Random rng(seed + static_cast<uint64_t>(t) * 7919);
      while (!abort.load(std::memory_order_relaxed)) {
        uint64_t keynum = next.fetch_add(1, std::memory_order_relaxed);
        if (keynum >= total) break;
        std::string key = workload->BuildKeyName(keynum);
        Record record = workload->BuildRecord(&rng);
        Status s = db->Insert(workload->table(), Slice(key), record);
        if (!s.ok()) {
          statuses[static_cast<size_t>(t)] = s;
          abort.store(true, std::memory_order_relaxed);
          break;
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  return Status::OK();
}

namespace {

/// Sleeps until `deadline_us` on the monotonic clock, waking at most
/// every 10 ms to observe `stop`. Returns false when stopped early.
bool SleepUntil(uint64_t deadline_us, const std::atomic<bool>& stop) {
  for (;;) {
    uint64_t now = NowMicros();
    if (now >= deadline_us) return true;
    uint64_t chunk = std::min<uint64_t>(deadline_us - now, 10'000);
    std::this_thread::sleep_for(std::chrono::microseconds(chunk));
    if (stop.load(std::memory_order_relaxed)) return false;
  }
}

/// Claims one operation from the shared budget, or reports exhaustion.
/// Compare-exchange (rather than fetch_sub) so a thread that merely
/// observes an exhausted budget never decrements it — every successful
/// claim corresponds to exactly one executed operation.
bool ClaimOp(std::atomic<int64_t>* budget) {
  if (budget == nullptr) return true;
  int64_t current = budget->load(std::memory_order_relaxed);
  while (current > 0) {
    if (budget->compare_exchange_weak(current, current - 1,
                                      std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

/// Thread-local accumulation for the shared IntervalCollector: one lock
/// acquisition per completed window instead of per operation.
class WindowAccumulator {
 public:
  WindowAccumulator(IntervalCollector* collector, uint64_t measure_start_us)
      : collector_(collector),
        measure_start_us_(measure_start_us),
        window_us_(collector->enabled()
                       ? static_cast<uint64_t>(
                             collector->window_seconds() * 1e6)
                       : 0) {}

  void Record(uint64_t end_us, uint64_t measured_us, uint64_t intended_us) {
    if (window_us_ == 0 || end_us < measure_start_us_) return;
    uint64_t index = (end_us - measure_start_us_) / window_us_;
    if (index != current_ && ops_ > 0) Flush();
    current_ = index;
    ops_++;
    measured_.Add(measured_us);
    intended_.Add(intended_us);
  }

  void Flush() {
    if (window_us_ == 0 || ops_ == 0) return;
    collector_->ReportWindow(current_, ops_, measured_, intended_);
    ops_ = 0;
    measured_.Reset();
    intended_.Reset();
  }

 private:
  IntervalCollector* collector_;
  uint64_t measure_start_us_;
  uint64_t window_us_;
  uint64_t current_ = 0;
  uint64_t ops_ = 0;
  Histogram measured_;
  Histogram intended_;
};

/// One closed-loop client connection.
class ClientThread {
 public:
  /// Operations completed so far including warmup (read by the status
  /// reporter).
  uint64_t ops_done() const {
    return ops_done_.load(std::memory_order_relaxed);
  }
  uint64_t warmup_ops() const { return warmup_ops_; }

 private:
  std::atomic<uint64_t> ops_done_{0};

 public:
  ClientThread(DB* db, CoreWorkload* workload, uint64_t seed,
               double target_ops_per_sec, uint64_t run_start_us,
               uint64_t measure_start_us, IntervalCollector* collector)
      : db_(db),
        workload_(workload),
        rng_(seed),
        target_interval_us_(target_ops_per_sec > 0
                                ? 1e6 / target_ops_per_sec
                                : 0.0),
        run_start_us_(run_start_us),
        measure_start_us_(measure_start_us),
        windows_(collector, measure_start_us) {
    measurements_.set_track_intended(target_interval_us_ > 0);
  }

  /// Runs until `stop` is set or `ops_budget` operations are done
  /// (budget of nullptr means unbounded).
  void Run(const std::atomic<bool>& stop, std::atomic<int64_t>* ops_budget) {
    // Open-loop pacing for the bounded-throughput experiments: the
    // schedule advances at the target rate no matter how slow the store
    // is, so a stall queues requests instead of silently pausing the
    // arrival process (coordinated omission). Threads start at a random
    // phase within one interval to avoid lockstep arrivals.
    double deadline_us = static_cast<double>(run_start_us_);
    if (target_interval_us_ > 0) {
      deadline_us +=
          rng_.NextDouble() * target_interval_us_;
    }
    for (;;) {
      if (stop.load(std::memory_order_relaxed)) break;
      uint64_t scheduled = 0;
      if (target_interval_us_ > 0) {
        scheduled = static_cast<uint64_t>(deadline_us);
        deadline_us += target_interval_us_;
        // Sleep happens BEFORE the budget claim: a run stopped mid-sleep
        // leaves the budget untouched, so operation_count is consumed
        // only by operations that actually execute.
        if (!SleepUntil(scheduled, stop)) break;
      }
      if (!ClaimOp(ops_budget)) break;
      DoOne(scheduled);
    }
    windows_.Flush();
  }

  Measurements* measurements() { return &measurements_; }

 private:
  void DoOne(uint64_t scheduled_us) {
    OpType op = workload_->NextOperation(&rng_);
    uint64_t start = NowMicros();
    bool ok = true;
    switch (op) {
      case OpType::kRead: {
        std::string key =
            workload_->BuildKeyName(workload_->NextTransactionKeyNum(&rng_));
        Record record;
        Status s = db_->Read(workload_->table(), Slice(key), &record);
        if (s.IsNotFound()) {
          read_miss_ = true;
        } else {
          ok = s.ok();
        }
        break;
      }
      case OpType::kUpdate: {
        std::string key =
            workload_->BuildKeyName(workload_->NextTransactionKeyNum(&rng_));
        Record record = workload_->BuildRecord(&rng_);
        ok = db_->Update(workload_->table(), Slice(key), record).ok();
        break;
      }
      case OpType::kInsert: {
        std::string key =
            workload_->BuildKeyName(workload_->NextInsertKeyNum());
        Record record = workload_->BuildRecord(&rng_);
        ok = db_->Insert(workload_->table(), Slice(key), record).ok();
        break;
      }
      case OpType::kScan: {
        std::string key =
            workload_->BuildKeyName(workload_->NextTransactionKeyNum(&rng_));
        std::vector<Record> records;
        ok = db_->Scan(workload_->table(), Slice(key),
                       workload_->NextScanLength(&rng_), &records)
                 .ok();
        break;
      }
      case OpType::kDelete: {
        std::string key =
            workload_->BuildKeyName(workload_->NextTransactionKeyNum(&rng_));
        Status s = db_->Delete(workload_->table(), Slice(key));
        ok = s.ok() || s.IsNotFound();
        break;
      }
    }
    uint64_t end = NowMicros();
    uint64_t measured = end - start;
    // Intended latency is anchored at the pacer's schedule, not the actual
    // issue time: end - scheduled = queueing delay + service time.
    uint64_t intended =
        scheduled_us > 0 ? end - scheduled_us : measured;
    ops_done_.fetch_add(1, std::memory_order_relaxed);
    if (end < measure_start_us_) {
      warmup_ops_++;
      read_miss_ = false;
      return;
    }
    if (read_miss_) {
      measurements_.RecordReadMiss();
      read_miss_ = false;
    }
    measurements_.Record(op, measured, intended, ok);
    windows_.Record(end, measured, intended);
  }

  DB* db_;
  CoreWorkload* workload_;
  Random rng_;
  Measurements measurements_;
  double target_interval_us_;
  uint64_t run_start_us_;
  uint64_t measure_start_us_;
  uint64_t warmup_ops_ = 0;
  bool read_miss_ = false;
  WindowAccumulator windows_;
};

}  // namespace

Status RunWorkload(DB* db, CoreWorkload* workload, const RunConfig& config,
                   RunResult* result) {
  APM_RETURN_IF_ERROR(db->Init());
  int threads = config.threads < 1 ? 1 : config.threads;
  double warmup_seconds = config.warmup_seconds > 0 ? config.warmup_seconds
                                                    : 0.0;

  uint64_t run_start = NowMicros();
  uint64_t measure_start =
      run_start + static_cast<uint64_t>(warmup_seconds * 1e6);
  IntervalCollector collector(config.time_series_window_seconds);

  std::vector<std::unique_ptr<ClientThread>> clients;
  clients.reserve(static_cast<size_t>(threads));
  double per_thread_target =
      config.target_ops_per_sec > 0 ? config.target_ops_per_sec / threads
                                    : 0.0;
  for (int t = 0; t < threads; t++) {
    clients.push_back(std::make_unique<ClientThread>(
        db, workload, config.seed + static_cast<uint64_t>(t) * 104729,
        per_thread_target, run_start, measure_start, &collector));
  }

  std::atomic<bool> stop{false};
  std::atomic<int64_t> budget{
      config.operation_count > 0
          ? static_cast<int64_t>(config.operation_count)
          : 0};
  std::atomic<int64_t>* budget_ptr =
      config.operation_count > 0 ? &budget : nullptr;

  std::vector<std::thread> workers;
  workers.reserve(clients.size());
  for (auto& client : clients) {
    workers.emplace_back(
        [&stop, budget_ptr, c = client.get()]() { c->Run(stop, budget_ptr); });
  }

  // Periodic status reporting (the YCSB status thread). Tick times are
  // anchored to the monotonic clock at run start — sleep overshoot makes
  // a tick late but never accumulates into drifting "elapsed" values —
  // and rates are computed over the actually observed inter-tick time.
  std::thread status_thread;
  std::atomic<bool> status_stop{false};
  if (config.status_interval_seconds > 0 &&
      (config.status_callback || config.window_callback)) {
    status_thread = std::thread([&]() {
      const uint64_t interval_us =
          static_cast<uint64_t>(config.status_interval_seconds * 1e6);
      const uint64_t window_us =
          collector.enabled()
              ? static_cast<uint64_t>(collector.window_seconds() * 1e6)
              : 0;
      uint64_t last_total = 0;
      uint64_t last_now = run_start;
      uint64_t tick = 1;
      int64_t last_window = -1;
      if (!SleepUntil(run_start + tick * interval_us, status_stop)) return;
      for (;;) {
        uint64_t now = NowMicros();
        uint64_t total = 0;
        for (auto& client : clients) total += client->ops_done();
        if (config.status_callback) {
          double dt = static_cast<double>(now - last_now) / 1e6;
          config.status_callback(
              static_cast<double>(now - run_start) / 1e6, total,
              dt > 0 ? static_cast<double>(total - last_total) / dt : 0.0);
        }
        if (config.window_callback && window_us > 0 && now > measure_start) {
          // Latest window all threads have plausibly flushed. Threads
          // flush a window lazily on their first completion beyond it,
          // and status ticks land exactly on window boundaries, so give
          // each boundary a full extra window before reporting it.
          int64_t complete =
              static_cast<int64_t>((now - measure_start) / window_us) - 2;
          if (complete > last_window) {
            TimeSeriesPoint point;
            if (collector.WindowSnapshot(static_cast<uint64_t>(complete),
                                         &point)) {
              config.window_callback(point);
              last_window = complete;
            }
          }
        }
        last_total = total;
        last_now = now;
        tick = (now - run_start) / interval_us + 1;  // skip missed ticks
        if (!SleepUntil(run_start + tick * interval_us, status_stop)) break;
      }
    });
  }

  if (config.operation_count == 0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(
        warmup_seconds + config.duration_seconds));
    stop.store(true, std::memory_order_relaxed);
  }
  for (auto& worker : workers) worker.join();
  status_stop.store(true, std::memory_order_relaxed);
  if (status_thread.joinable()) status_thread.join();
  uint64_t end = NowMicros();

  result->measurements.Reset();
  result->warmup_ops = 0;
  for (auto& client : clients) {
    result->measurements.Merge(*client->measurements());
    result->warmup_ops += client->warmup_ops();
  }
  // Throughput over the measured phase only; a run that ended inside the
  // warmup window measured nothing.
  result->elapsed_seconds =
      end > measure_start ? static_cast<double>(end - measure_start) / 1e6
                          : 0.0;
  result->throughput_ops_sec =
      result->elapsed_seconds > 0
          ? static_cast<double>(result->measurements.total_ops()) /
                result->elapsed_seconds
          : 0.0;
  result->time_series = collector.ToTimeSeries(result->elapsed_seconds);
  return Status::OK();
}

}  // namespace apmbench::ycsb
