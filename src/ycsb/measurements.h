#ifndef APMBENCH_YCSB_MEASUREMENTS_H_
#define APMBENCH_YCSB_MEASUREMENTS_H_

#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "ycsb/db.h"
#include "ycsb/timeseries.h"

namespace apmbench::ycsb {

/// Latency and outcome accounting for one client thread; merged across
/// threads when a run finishes. Latencies are recorded in microseconds.
///
/// Two latencies are tracked per operation (HdrHistogram/YCSB style):
///   - measured: completion minus the instant the request was actually
///     issued (service time only);
///   - intended: completion minus the instant the request was *scheduled*
///     to be issued by the open-loop pacer. When the store stalls, queued
///     requests carry their queueing delay here — the coordinated-omission
///     correction. In unthrottled runs the two are identical.
class Measurements {
 public:
  void Record(OpType type, uint64_t measured_us, uint64_t intended_us,
              bool ok);
  /// Convenience for unpaced callers: intended == measured.
  void Record(OpType type, uint64_t latency_us, bool ok) {
    Record(type, latency_us, latency_us, ok);
  }
  /// A read that returned NotFound (possible when reads race in-flight
  /// inserts); counted separately, not as an error.
  void RecordReadMiss() { read_misses_++; }

  void Merge(const Measurements& other);
  void Reset();

  const Histogram& histogram(OpType type) const {
    return histograms_[static_cast<size_t>(type)];
  }
  const Histogram& intended_histogram(OpType type) const {
    return intended_histograms_[static_cast<size_t>(type)];
  }
  /// All operation types merged into one histogram (what the time-series
  /// windows and the coordinated-omission comparisons report).
  Histogram MergedHistogram() const;
  Histogram MergedIntendedHistogram() const;

  uint64_t ok_count(OpType type) const {
    return ok_counts_[static_cast<size_t>(type)];
  }
  uint64_t error_count(OpType type) const {
    return error_counts_[static_cast<size_t>(type)];
  }
  uint64_t total_ops() const;
  uint64_t read_misses() const { return read_misses_; }

  /// Marks this run as paced: Summary() then reports intended latency
  /// alongside measured. Merge() propagates the flag.
  void set_track_intended(bool track) { track_intended_ = track; }
  bool track_intended() const { return track_intended_; }

  /// One line per op type with count/mean/percentiles; paced runs add an
  /// intended-latency line per op type.
  std::string Summary() const;

 private:
  std::array<Histogram, kNumOpTypes> histograms_;
  std::array<Histogram, kNumOpTypes> intended_histograms_;
  std::array<uint64_t, kNumOpTypes> ok_counts_{};
  std::array<uint64_t, kNumOpTypes> error_counts_{};
  uint64_t read_misses_ = 0;
  bool track_intended_ = false;
};

/// Thread-safe per-window accumulator behind the latency-over-time series.
/// Client threads batch a window's worth of observations locally and
/// publish each completed window with ReportWindow (one lock acquisition
/// per thread per window); the status thread and the end-of-run exporter
/// read snapshots. Window 0 starts at the end of warmup.
class IntervalCollector {
 public:
  /// A collector with window_seconds <= 0 is disabled: ReportWindow is a
  /// no-op and ToTimeSeries returns an empty series.
  explicit IntervalCollector(double window_seconds)
      : window_seconds_(window_seconds) {}

  bool enabled() const { return window_seconds_ > 0; }
  double window_seconds() const { return window_seconds_; }

  /// Merges one thread's accumulation for window `index` (0-based).
  void ReportWindow(uint64_t index, uint64_t ops, const Histogram& measured,
                    const Histogram& intended);

  /// Best-effort stats for one window, for live status reporting (threads
  /// that have not flushed the window yet are simply not included).
  /// Returns false when the window has no data.
  bool WindowSnapshot(uint64_t index, TimeSeriesPoint* point) const;

  /// Number of windows that have received at least one report.
  uint64_t NumWindows() const;

  /// Exports the full series; `measured_elapsed_seconds` clamps the final
  /// (possibly partial) window's duration so its ops/sec is not inflated.
  TimeSeries ToTimeSeries(double measured_elapsed_seconds) const;

 private:
  struct Window {
    uint64_t ops = 0;
    Histogram measured;
    Histogram intended;
  };

  TimeSeriesPoint MakePoint(uint64_t index, double duration) const;

  double window_seconds_;
  mutable std::mutex mu_;
  std::vector<Window> windows_;
};

}  // namespace apmbench::ycsb

#endif  // APMBENCH_YCSB_MEASUREMENTS_H_
