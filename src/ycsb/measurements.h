#ifndef APMBENCH_YCSB_MEASUREMENTS_H_
#define APMBENCH_YCSB_MEASUREMENTS_H_

#include <array>
#include <cstdint>
#include <string>

#include "common/histogram.h"
#include "ycsb/db.h"

namespace apmbench::ycsb {

/// Latency and outcome accounting for one client thread; merged across
/// threads when a run finishes. Latencies are recorded in microseconds.
class Measurements {
 public:
  void Record(OpType type, uint64_t latency_us, bool ok);
  /// A read that returned NotFound (possible when reads race in-flight
  /// inserts); counted separately, not as an error.
  void RecordReadMiss() { read_misses_++; }

  void Merge(const Measurements& other);
  void Reset();

  const Histogram& histogram(OpType type) const {
    return histograms_[static_cast<size_t>(type)];
  }
  uint64_t ok_count(OpType type) const {
    return ok_counts_[static_cast<size_t>(type)];
  }
  uint64_t error_count(OpType type) const {
    return error_counts_[static_cast<size_t>(type)];
  }
  uint64_t total_ops() const;
  uint64_t read_misses() const { return read_misses_; }

  /// One line per op type with count/mean/percentiles.
  std::string Summary() const;

 private:
  std::array<Histogram, kNumOpTypes> histograms_;
  std::array<uint64_t, kNumOpTypes> ok_counts_{};
  std::array<uint64_t, kNumOpTypes> error_counts_{};
  uint64_t read_misses_ = 0;
};

}  // namespace apmbench::ycsb

#endif  // APMBENCH_YCSB_MEASUREMENTS_H_
