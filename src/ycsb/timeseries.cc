#include "ycsb/timeseries.h"

#include <cstdio>
#include <cstdlib>

namespace apmbench::ycsb {

namespace {

void AppendLatencyObject(std::string* out, uint64_t p50, uint64_t p95,
                         uint64_t p99, uint64_t max) {
  char buf[160];
  snprintf(buf, sizeof(buf),
           "{\"p50\": %llu, \"p95\": %llu, \"p99\": %llu, \"max\": %llu}",
           static_cast<unsigned long long>(p50),
           static_cast<unsigned long long>(p95),
           static_cast<unsigned long long>(p99),
           static_cast<unsigned long long>(max));
  out->append(buf);
}

/// A cursor over the fixed TimeSeries JSON schema. Only what ToJson()
/// emits is supported: objects, arrays, unescaped string keys, numbers.
class JsonCursor {
 public:
  explicit JsonCursor(const std::string& s) : s_(s) {}

  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      pos_++;
    }
  }

  bool Eat(char c) {
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == c) {
      pos_++;
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    if (Eat(c)) return Status::OK();
    char msg[64];
    snprintf(msg, sizeof(msg), "time series JSON: expected '%c' at offset %zu",
             c, pos_);
    return Status::Corruption(msg);
  }

  Status ParseKey(std::string* out) {
    APM_RETURN_IF_ERROR(Expect('"'));
    out->clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      out->push_back(s_[pos_++]);
    }
    return Expect('"');
  }

  Status ParseNumber(double* out) {
    SkipWs();
    const char* start = s_.c_str() + pos_;
    char* end = nullptr;
    *out = strtod(start, &end);
    if (end == start) {
      return Status::Corruption("time series JSON: expected a number");
    }
    pos_ += static_cast<size_t>(end - start);
    return Status::OK();
  }

 private:
  const std::string& s_;
  size_t pos_ = 0;
};

Status ParseLatencyObject(JsonCursor* cur, uint64_t* p50, uint64_t* p95,
                          uint64_t* p99, uint64_t* max) {
  APM_RETURN_IF_ERROR(cur->Expect('{'));
  std::string key;
  do {
    APM_RETURN_IF_ERROR(cur->ParseKey(&key));
    APM_RETURN_IF_ERROR(cur->Expect(':'));
    double v = 0;
    APM_RETURN_IF_ERROR(cur->ParseNumber(&v));
    uint64_t u = v < 0 ? 0 : static_cast<uint64_t>(v);
    if (key == "p50") {
      *p50 = u;
    } else if (key == "p95") {
      *p95 = u;
    } else if (key == "p99") {
      *p99 = u;
    } else if (key == "max") {
      *max = u;
    } else {
      return Status::Corruption("time series JSON: unknown latency key " +
                                key);
    }
  } while (cur->Eat(','));
  return cur->Expect('}');
}

Status ParsePoint(JsonCursor* cur, TimeSeriesPoint* point) {
  APM_RETURN_IF_ERROR(cur->Expect('{'));
  std::string key;
  do {
    APM_RETURN_IF_ERROR(cur->ParseKey(&key));
    APM_RETURN_IF_ERROR(cur->Expect(':'));
    if (key == "measured") {
      APM_RETURN_IF_ERROR(ParseLatencyObject(
          cur, &point->measured_p50_us, &point->measured_p95_us,
          &point->measured_p99_us, &point->measured_max_us));
    } else if (key == "intended") {
      APM_RETURN_IF_ERROR(ParseLatencyObject(
          cur, &point->intended_p50_us, &point->intended_p95_us,
          &point->intended_p99_us, &point->intended_max_us));
    } else {
      double v = 0;
      APM_RETURN_IF_ERROR(cur->ParseNumber(&v));
      if (key == "t") {
        point->t_seconds = v;
      } else if (key == "window_seconds") {
        point->window_seconds = v;
      } else if (key == "ops") {
        point->ops = v < 0 ? 0 : static_cast<uint64_t>(v);
      } else if (key == "ops_per_sec") {
        point->ops_per_sec = v;
      } else {
        return Status::Corruption("time series JSON: unknown point key " +
                                  key);
      }
    }
  } while (cur->Eat(','));
  return cur->Expect('}');
}

}  // namespace

std::string TimeSeries::ToJson() const {
  std::string out;
  char buf[256];
  snprintf(buf, sizeof(buf), "{\"window_seconds\": %.6g, \"points\": [",
           window_seconds);
  out = buf;
  for (size_t i = 0; i < points.size(); i++) {
    const TimeSeriesPoint& p = points[i];
    if (i > 0) out += ",";
    snprintf(buf, sizeof(buf),
             "\n  {\"t\": %.6g, \"window_seconds\": %.6g, \"ops\": %llu, "
             "\"ops_per_sec\": %.2f, \"measured\": ",
             p.t_seconds, p.window_seconds,
             static_cast<unsigned long long>(p.ops), p.ops_per_sec);
    out += buf;
    AppendLatencyObject(&out, p.measured_p50_us, p.measured_p95_us,
                        p.measured_p99_us, p.measured_max_us);
    out += ", \"intended\": ";
    AppendLatencyObject(&out, p.intended_p50_us, p.intended_p95_us,
                        p.intended_p99_us, p.intended_max_us);
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

std::string TimeSeries::ToCsv() const {
  std::string out =
      "t_seconds,ops,ops_per_sec,"
      "measured_p50_us,measured_p95_us,measured_p99_us,measured_max_us,"
      "intended_p50_us,intended_p95_us,intended_p99_us,intended_max_us\n";
  char buf[256];
  for (const TimeSeriesPoint& p : points) {
    snprintf(buf, sizeof(buf),
             "%.6g,%llu,%.2f,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu\n",
             p.t_seconds, static_cast<unsigned long long>(p.ops),
             p.ops_per_sec, static_cast<unsigned long long>(p.measured_p50_us),
             static_cast<unsigned long long>(p.measured_p95_us),
             static_cast<unsigned long long>(p.measured_p99_us),
             static_cast<unsigned long long>(p.measured_max_us),
             static_cast<unsigned long long>(p.intended_p50_us),
             static_cast<unsigned long long>(p.intended_p95_us),
             static_cast<unsigned long long>(p.intended_p99_us),
             static_cast<unsigned long long>(p.intended_max_us));
    out += buf;
  }
  return out;
}

Status TimeSeries::FromJson(const std::string& json, TimeSeries* out) {
  out->window_seconds = 0;
  out->points.clear();
  JsonCursor cur(json);
  APM_RETURN_IF_ERROR(cur.Expect('{'));
  std::string key;
  do {
    APM_RETURN_IF_ERROR(cur.ParseKey(&key));
    APM_RETURN_IF_ERROR(cur.Expect(':'));
    if (key == "window_seconds") {
      APM_RETURN_IF_ERROR(cur.ParseNumber(&out->window_seconds));
    } else if (key == "points") {
      APM_RETURN_IF_ERROR(cur.Expect('['));
      if (!cur.Eat(']')) {
        do {
          TimeSeriesPoint point;
          APM_RETURN_IF_ERROR(ParsePoint(&cur, &point));
          out->points.push_back(point);
        } while (cur.Eat(','));
        APM_RETURN_IF_ERROR(cur.Expect(']'));
      }
    } else {
      return Status::Corruption("time series JSON: unknown key " + key);
    }
  } while (cur.Eat(','));
  return cur.Expect('}');
}

}  // namespace apmbench::ycsb
