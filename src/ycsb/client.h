#ifndef APMBENCH_YCSB_CLIENT_H_
#define APMBENCH_YCSB_CLIENT_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/status.h"
#include "ycsb/db.h"
#include "ycsb/measurements.h"
#include "ycsb/timeseries.h"
#include "ycsb/workload.h"

namespace apmbench::ycsb {

/// Benchmark-run parameters (YCSB's client knobs). Either a fixed
/// operation count or a wall-clock duration bounds the run; the paper
/// runs each configuration for 600 seconds at maximum throughput.
struct RunConfig {
  /// Simulated client connections; the paper uses 128 per server node.
  int threads = 8;
  /// Total operations; 0 means duration-bound. Warmup operations count
  /// against this budget (use duration-bound runs with warmup).
  uint64_t operation_count = 0;
  /// Measured run length when operation_count is 0, excluding warmup
  /// (total wall clock is warmup_seconds + duration_seconds).
  double duration_seconds = 10.0;
  /// Operations completing during the first warmup_seconds are executed
  /// but excluded from the merged histograms, the time series, and the
  /// reported throughput (they are tallied in RunResult::warmup_ops).
  double warmup_seconds = 0.0;
  /// Target aggregate throughput (ops/sec); 0 means unthrottled (the
  /// paper's "maximum sustainable throughput" mode). Figures 15/16 sweep
  /// this between 50% and 95% of the maximum. Paced runs schedule
  /// operations open-loop and record both measured and intended latency
  /// (see Measurements), so stalls surface as queueing delay instead of
  /// being coordinated-omission'd away.
  double target_ops_per_sec = 0.0;
  /// When > 0, collect a per-window latency/throughput time series
  /// (RunResult::time_series) with this window length. Costs ~70 KB of
  /// histogram memory per window; 0 disables collection.
  double time_series_window_seconds = 0.0;
  uint64_t seed = 42;
  /// When > 0 and status_callback is set, the runner reports progress
  /// every interval (elapsed seconds, total ops, ops/sec over the last
  /// interval) — YCSB's periodic status line. Ticks are anchored to the
  /// monotonic clock at run start, so reported elapsed time does not
  /// drift with sleep overshoot.
  double status_interval_seconds = 0.0;
  std::function<void(double elapsed_seconds, uint64_t total_ops,
                     double interval_ops_sec)>
      status_callback;
  /// Optional richer status hook: called at each status tick with the
  /// latest completed time-series window (requires
  /// time_series_window_seconds > 0; windows threads have not flushed
  /// yet are skipped).
  std::function<void(const TimeSeriesPoint&)> window_callback;
};

/// Outcome of one run. Throughput and elapsed time cover the measured
/// (post-warmup) phase only.
struct RunResult {
  double throughput_ops_sec = 0.0;
  double elapsed_seconds = 0.0;
  /// Operations executed during warmup (excluded from measurements).
  uint64_t warmup_ops = 0;
  Measurements measurements;
  /// Per-window latency/throughput series; empty unless
  /// RunConfig::time_series_window_seconds > 0.
  TimeSeries time_series;

  /// Mean latency in ms for one operation type (0 when none executed).
  double MeanLatencyMs(OpType type) const;
  std::string Summary() const;
};

/// Loads `workload.record_count()` records into `db` using `threads`
/// parallel loaders (the YCSB load phase). The first insert failure
/// aborts all loader threads and is returned.
Status LoadDatabase(DB* db, CoreWorkload* workload, int threads,
                    uint64_t seed = 7);

/// Executes the transaction phase: `config.threads` closed-loop clients
/// issuing the workload mix against `db`, measuring every operation.
Status RunWorkload(DB* db, CoreWorkload* workload, const RunConfig& config,
                   RunResult* result);

}  // namespace apmbench::ycsb

#endif  // APMBENCH_YCSB_CLIENT_H_
