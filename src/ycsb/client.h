#ifndef APMBENCH_YCSB_CLIENT_H_
#define APMBENCH_YCSB_CLIENT_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/status.h"
#include "ycsb/db.h"
#include "ycsb/measurements.h"
#include "ycsb/workload.h"

namespace apmbench::ycsb {

/// Benchmark-run parameters (YCSB's client knobs). Either a fixed
/// operation count or a wall-clock duration bounds the run; the paper
/// runs each configuration for 600 seconds at maximum throughput.
struct RunConfig {
  /// Simulated client connections; the paper uses 128 per server node.
  int threads = 8;
  /// Total operations; 0 means duration-bound.
  uint64_t operation_count = 0;
  /// Run length when operation_count is 0.
  double duration_seconds = 10.0;
  /// Target aggregate throughput (ops/sec); 0 means unthrottled (the
  /// paper's "maximum sustainable throughput" mode). Figures 15/16 sweep
  /// this between 50% and 95% of the maximum.
  double target_ops_per_sec = 0.0;
  uint64_t seed = 42;
  /// When > 0 and status_callback is set, the runner reports progress
  /// every interval (elapsed seconds, total ops, ops/sec over the last
  /// interval) — YCSB's periodic status line.
  double status_interval_seconds = 0.0;
  std::function<void(double elapsed_seconds, uint64_t total_ops,
                     double interval_ops_sec)>
      status_callback;
};

/// Outcome of one run.
struct RunResult {
  double throughput_ops_sec = 0.0;
  double elapsed_seconds = 0.0;
  Measurements measurements;

  /// Mean latency in ms for one operation type (0 when none executed).
  double MeanLatencyMs(OpType type) const;
  std::string Summary() const;
};

/// Loads `workload.record_count()` records into `db` using `threads`
/// parallel loaders (the YCSB load phase).
Status LoadDatabase(DB* db, CoreWorkload* workload, int threads,
                    uint64_t seed = 7);

/// Executes the transaction phase: `config.threads` closed-loop clients
/// issuing the workload mix against `db`, measuring every operation.
Status RunWorkload(DB* db, CoreWorkload* workload, const RunConfig& config,
                   RunResult* result);

}  // namespace apmbench::ycsb

#endif  // APMBENCH_YCSB_CLIENT_H_
