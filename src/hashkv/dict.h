#ifndef APMBENCH_HASHKV_DICT_H_
#define APMBENCH_HASHKV_DICT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/slice.h"

namespace apmbench::hashkv {

/// A chained hash table with Redis-style incremental rehashing: when the
/// load factor reaches 1, a second table of twice the size is allocated
/// and buckets migrate one step per operation, so no single request pays
/// the full rehash cost (the behavior that keeps Redis latency flat).
class Dict {
 public:
  explicit Dict(size_t initial_buckets = 16);
  ~Dict();

  Dict(const Dict&) = delete;
  Dict& operator=(const Dict&) = delete;

  /// Inserts or overwrites; returns true when the key is new.
  bool Set(const Slice& key, const Slice& value);

  /// Returns the stored value pointer or nullptr. Valid until the next
  /// mutation of this key.
  const std::string* Get(const Slice& key) const;

  /// Removes the key; returns true when it was present.
  bool Del(const Slice& key);

  size_t size() const { return size_; }
  bool rehashing() const { return rehash_index_ >= 0; }
  size_t bucket_count() const;

  /// Approximate heap bytes used by entries (keys + values + overhead).
  size_t MemoryBytes() const { return memory_bytes_; }

 private:
  struct Entry {
    std::string key;
    std::string value;
    Entry* next = nullptr;
  };
  struct HashTable {
    std::vector<Entry*> buckets;
    size_t used = 0;
  };

  static uint32_t HashKey(const Slice& key);
  void RehashStep();
  void StartRehash();
  Entry** FindRef(HashTable* table, const Slice& key, uint32_t hash) const;
  static void FreeTable(HashTable* table);

  HashTable ht_[2];
  /// Bucket index currently being migrated, or -1 when not rehashing.
  int64_t rehash_index_ = -1;
  size_t size_ = 0;
  size_t memory_bytes_ = 0;
};

}  // namespace apmbench::hashkv

#endif  // APMBENCH_HASHKV_DICT_H_
