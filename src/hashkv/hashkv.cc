#include "hashkv/hashkv.h"

#include "common/coding.h"
#include "common/crc32.h"
#include "common/logging.h"

namespace apmbench::hashkv {

namespace {
constexpr uint8_t kAofSet = 1;
constexpr uint8_t kAofDel = 2;
}  // namespace

HashKV::HashKV(const Options& options)
    : options_(options), dict_(options.initial_buckets) {
  env_ = options_.env != nullptr ? options_.env : Env::Default();
}

Status HashKV::Open(const Options& options, std::unique_ptr<HashKV>* store) {
  std::unique_ptr<HashKV> kv(new HashKV(options));
  if (!options.aof_path.empty()) {
    APM_RETURN_IF_ERROR(kv->ReplayAof());
    std::unique_ptr<WritableFile> file;
    APM_RETURN_IF_ERROR(kv->env_->NewAppendableFile(options.aof_path, &file));
    kv->aof_ = std::make_shared<GroupCommitLog>(std::move(file));
  }
  *store = std::move(kv);
  return Status::OK();
}

HashKV::~HashKV() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (aof_ == nullptr) return;
  Status s = aof_->Close();  // drains pending records, syncs, closes
  if (!s.ok()) {
    APM_LOG_WARN("hashkv: AOF sync/close failed at shutdown: %s",
                 s.ToString().c_str());
  }
}

Status HashKV::ReplayAof() {
  if (!env_->FileExists(options_.aof_path)) return Status::OK();
  std::string contents;
  APM_RETURN_IF_ERROR(env_->ReadFileToString(options_.aof_path, &contents));
  size_t offset = 0;
  while (offset + 8 <= contents.size()) {
    uint32_t masked_crc = DecodeFixed32(contents.data() + offset);
    uint32_t length = DecodeFixed32(contents.data() + offset + 4);
    if (offset + 8 + length > contents.size()) break;  // torn tail
    const char* data = contents.data() + offset + 8;
    if (UnmaskCrc(masked_crc) != Crc32c(data, length)) break;
    Slice in(data, length);
    if (in.empty()) break;
    uint8_t op = static_cast<uint8_t>(in[0]);
    in.RemovePrefix(1);
    Slice key, value;
    if (!GetLengthPrefixedSlice(&in, &key) ||
        !GetLengthPrefixedSlice(&in, &value)) {
      break;
    }
    if (op == kAofSet) {
      if (dict_.Set(key, value)) index_.Insert(key.ToString(), 0);
    } else if (op == kAofDel) {
      if (dict_.Del(key)) index_.Erase(key.ToString());
    }
    offset += 8 + length;
  }
  return Status::OK();
}

GroupCommitLog::Ticket HashKV::EnqueueAofLocked(uint8_t op, const Slice& key,
                                                const Slice& value) {
  std::string payload;
  payload.push_back(static_cast<char>(op));
  PutLengthPrefixedSlice(&payload, key);
  PutLengthPrefixedSlice(&payload, value);
  std::string framed;
  PutFixed32(&framed, MaskCrc(Crc32c(payload.data(), payload.size())));
  PutFixed32(&framed, static_cast<uint32_t>(payload.size()));
  framed.append(payload);
  return aof_->Enqueue(framed, options_.sync_aof);
}

Status HashKV::Set(const Slice& key, const Slice& value) {
  std::shared_ptr<GroupCommitLog> log;
  GroupCommitLog::Ticket ticket = 0;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    if (dict_.Set(key, value)) {
      index_.Insert(key.ToString(), 0);
    }
    if (aof_ != nullptr) {
      log = aof_;
      ticket = EnqueueAofLocked(kAofSet, key, value);
    }
  }
  if (log != nullptr) return log->Commit(ticket);
  return Status::OK();
}

Status HashKV::Get(const Slice& key, std::string* value) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const std::string* stored = dict_.Get(key);
  if (stored == nullptr) return Status::NotFound();
  *value = *stored;
  return Status::OK();
}

Status HashKV::Del(const Slice& key) {
  std::shared_ptr<GroupCommitLog> log;
  GroupCommitLog::Ticket ticket = 0;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    if (!dict_.Del(key)) return Status::NotFound();
    index_.Erase(key.ToString());
    if (aof_ != nullptr) {
      log = aof_;
      ticket = EnqueueAofLocked(kAofDel, key, Slice());
    }
  }
  if (log != nullptr) return log->Commit(ticket);
  return Status::OK();
}

Status HashKV::Scan(const Slice& start, int count,
                    std::vector<std::pair<std::string, std::string>>* out) {
  out->clear();
  std::shared_lock<std::shared_mutex> lock(mu_);
  KeyIndex::Iterator iter(&index_);
  iter.Seek(start.ToString());
  while (iter.Valid() && static_cast<int>(out->size()) < count) {
    const std::string* value = dict_.Get(Slice(iter.key()));
    if (value != nullptr) {
      out->emplace_back(iter.key(), *value);
    }
    iter.Next();
  }
  return Status::OK();
}

namespace {
constexpr uint64_t kSnapshotMagic = 0x41504d524442310aull;  // "APMRDB1\n"
}  // namespace

Status HashKV::SaveSnapshot(const std::string& path) {
  // Read-only: a snapshot runs alongside other readers (like BGSAVE,
  // minus the fork).
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::string body;
  PutFixed64(&body, kSnapshotMagic);
  PutFixed64(&body, dict_.size());
  // Iterate via the sorted index so snapshots are deterministic.
  KeyIndex::Iterator iter(&index_);
  for (iter.SeekToFirst(); iter.Valid(); iter.Next()) {
    const std::string* value = dict_.Get(Slice(iter.key()));
    if (value == nullptr) continue;
    PutLengthPrefixedSlice(&body, Slice(iter.key()));
    PutLengthPrefixedSlice(&body, Slice(*value));
  }
  PutFixed32(&body, MaskCrc(Crc32c(body.data(), body.size())));
  std::string tmp = path + ".tmp";
  APM_RETURN_IF_ERROR(env_->WriteStringToFile(tmp, Slice(body)));
  APM_RETURN_IF_ERROR(env_->RenameFile(tmp, path));
  // Make the rename itself durable; without the directory fsync a power
  // loss can leave neither the old nor the new snapshot visible.
  size_t slash = path.rfind('/');
  if (slash != std::string::npos && slash > 0) {
    APM_RETURN_IF_ERROR(env_->SyncDir(path.substr(0, slash)));
  }
  return Status::OK();
}

Status HashKV::LoadSnapshot(const std::string& path) {
  std::string body;
  APM_RETURN_IF_ERROR(env_->ReadFileToString(path, &body));
  if (body.size() < 8 + 8 + 4) return Status::Corruption("snapshot too short");
  uint32_t stored = UnmaskCrc(DecodeFixed32(body.data() + body.size() - 4));
  if (stored != Crc32c(body.data(), body.size() - 4)) {
    return Status::Corruption("snapshot checksum mismatch");
  }
  Slice in(body.data(), body.size() - 4);
  uint64_t magic, count;
  GetFixed64(&in, &magic);
  if (magic != kSnapshotMagic) return Status::Corruption("bad snapshot magic");
  GetFixed64(&in, &count);

  std::unique_lock<std::shared_mutex> lock(mu_);
  // Replace contents.
  std::vector<std::string> existing;
  {
    KeyIndex::Iterator iter(&index_);
    for (iter.SeekToFirst(); iter.Valid(); iter.Next()) {
      existing.push_back(iter.key());
    }
  }
  for (const std::string& key : existing) {
    dict_.Del(Slice(key));
    index_.Erase(key);
  }
  for (uint64_t i = 0; i < count; i++) {
    Slice key, value;
    if (!GetLengthPrefixedSlice(&in, &key) ||
        !GetLengthPrefixedSlice(&in, &value)) {
      return Status::Corruption("truncated snapshot entry");
    }
    if (dict_.Set(key, value)) index_.Insert(key.ToString(), 0);
  }
  return Status::OK();
}

Status HashKV::RewriteAof() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (aof_ == nullptr) return Status::OK();
  // Write the compacted log to a temp file, then swap it in.
  std::string tmp = options_.aof_path + ".rewrite";
  std::unique_ptr<WritableFile> fresh;
  APM_RETURN_IF_ERROR(env_->NewWritableFile(tmp, &fresh));
  KeyIndex::Iterator iter(&index_);
  for (iter.SeekToFirst(); iter.Valid(); iter.Next()) {
    const std::string* value = dict_.Get(Slice(iter.key()));
    if (value == nullptr) continue;
    std::string payload;
    payload.push_back(static_cast<char>(kAofSet));
    PutLengthPrefixedSlice(&payload, Slice(iter.key()));
    PutLengthPrefixedSlice(&payload, Slice(*value));
    std::string framed;
    PutFixed32(&framed, MaskCrc(Crc32c(payload.data(), payload.size())));
    PutFixed32(&framed, static_cast<uint32_t>(payload.size()));
    framed.append(payload);
    APM_RETURN_IF_ERROR(fresh->Append(framed));
  }
  APM_RETURN_IF_ERROR(fresh->Sync());
  APM_RETURN_IF_ERROR(fresh->Close());
  // Close drains any records still staged in the group-commit buffer and
  // fsyncs before the swap. Mutators that enqueued before we took the
  // write lock hold their own reference to the old log; their Commit sees
  // the records already durable and returns immediately.
  APM_RETURN_IF_ERROR(aof_->Close());
  auto reopen_as_log = [this](std::shared_ptr<GroupCommitLog>* out) {
    std::unique_ptr<WritableFile> file;
    APM_RETURN_IF_ERROR(env_->NewAppendableFile(options_.aof_path, &file));
    *out = std::make_shared<GroupCommitLog>(std::move(file));
    return Status::OK();
  };
  Status s = env_->RenameFile(tmp, options_.aof_path);
  if (!s.ok()) {
    // The old AOF is intact on disk but its handle is closed; reopen it so
    // subsequent mutations keep appending instead of writing into a closed
    // file, and surface the rewrite failure to the caller.
    Status reopen = reopen_as_log(&aof_);
    if (!reopen.ok()) {
      APM_LOG_ERROR("hashkv: cannot reopen AOF after failed rewrite: %s",
                    reopen.ToString().c_str());
      aof_.reset();
    }
    env_->RemoveFile(tmp);
    return s;
  }
  return reopen_as_log(&aof_);
}

HashKV::Stats HashKV::GetStats() {
  std::shared_lock<std::shared_mutex> lock(mu_);
  Stats stats;
  stats.num_keys = dict_.size();
  stats.bucket_count = dict_.bucket_count();
  stats.rehashing = dict_.rehashing();
  stats.memory_bytes = dict_.MemoryBytes();
  if (aof_ != nullptr) {
    stats.aof_bytes = aof_->Size();
    GroupCommitLog::Stats log_stats = aof_->GetStats();
    stats.aof_appends = log_stats.appends;
    stats.aof_groups = log_stats.groups;
    stats.aof_synced_groups = log_stats.synced_groups;
  }
  return stats;
}

}  // namespace apmbench::hashkv
