#include "hashkv/dict.h"

#include "common/hash.h"

namespace apmbench::hashkv {

namespace {
constexpr size_t kEntryOverhead = 48;
}  // namespace

Dict::Dict(size_t initial_buckets) {
  size_t n = 1;
  while (n < initial_buckets) n <<= 1;
  ht_[0].buckets.assign(n, nullptr);
}

Dict::~Dict() {
  FreeTable(&ht_[0]);
  FreeTable(&ht_[1]);
}

void Dict::FreeTable(HashTable* table) {
  for (Entry* entry : table->buckets) {
    while (entry != nullptr) {
      Entry* next = entry->next;
      delete entry;
      entry = next;
    }
  }
  table->buckets.clear();
  table->used = 0;
}

uint32_t Dict::HashKey(const Slice& key) {
  return MurmurHash3_32(key.data(), key.size(), 0x9747b28c);
}

size_t Dict::bucket_count() const {
  return ht_[0].buckets.size() + ht_[1].buckets.size();
}

void Dict::StartRehash() {
  ht_[1].buckets.assign(ht_[0].buckets.size() * 2, nullptr);
  rehash_index_ = 0;
}

void Dict::RehashStep() {
  if (rehash_index_ < 0) return;
  // Migrate up to one non-empty bucket (plus skip a bounded number of
  // empty ones), as redis dictRehash does.
  int empty_visits = 10;
  while (empty_visits-- > 0 &&
         rehash_index_ < static_cast<int64_t>(ht_[0].buckets.size())) {
    Entry*& bucket = ht_[0].buckets[static_cast<size_t>(rehash_index_)];
    if (bucket == nullptr) {
      rehash_index_++;
      continue;
    }
    while (bucket != nullptr) {
      Entry* entry = bucket;
      bucket = entry->next;
      uint32_t hash = HashKey(Slice(entry->key));
      size_t index = hash & (ht_[1].buckets.size() - 1);
      entry->next = ht_[1].buckets[index];
      ht_[1].buckets[index] = entry;
      ht_[0].used--;
      ht_[1].used++;
    }
    rehash_index_++;
    break;
  }
  if (rehash_index_ >= static_cast<int64_t>(ht_[0].buckets.size())) {
    // Rehash complete; promote table 1.
    ht_[0].buckets = std::move(ht_[1].buckets);
    ht_[0].used = ht_[1].used;
    ht_[1].buckets.clear();
    ht_[1].used = 0;
    rehash_index_ = -1;
  }
}

Dict::Entry** Dict::FindRef(HashTable* table, const Slice& key,
                            uint32_t hash) const {
  if (table->buckets.empty()) return nullptr;
  size_t index = hash & (table->buckets.size() - 1);
  Entry** ref = &table->buckets[index];
  while (*ref != nullptr) {
    if (Slice((*ref)->key) == key) return ref;
    ref = &(*ref)->next;
  }
  return nullptr;
}

bool Dict::Set(const Slice& key, const Slice& value) {
  RehashStep();
  uint32_t hash = HashKey(key);
  for (int t = 0; t < 2; t++) {
    HashTable* table = &ht_[t];
    Entry** ref = FindRef(table, key, hash);
    if (ref != nullptr) {
      memory_bytes_ -= (*ref)->value.size();
      (*ref)->value = value.ToString();
      memory_bytes_ += value.size();
      return false;
    }
    if (rehash_index_ < 0) break;  // only table 0 when not rehashing
  }
  // Insert into the newest table.
  HashTable* target = rehashing() ? &ht_[1] : &ht_[0];
  size_t index = hash & (target->buckets.size() - 1);
  Entry* entry = new Entry();
  entry->key = key.ToString();
  entry->value = value.ToString();
  entry->next = target->buckets[index];
  target->buckets[index] = entry;
  target->used++;
  size_++;
  memory_bytes_ += key.size() + value.size() + kEntryOverhead;
  if (!rehashing() && ht_[0].used >= ht_[0].buckets.size()) {
    StartRehash();
  }
  return true;
}

const std::string* Dict::Get(const Slice& key) const {
  uint32_t hash = HashKey(key);
  for (int t = 0; t < 2; t++) {
    Entry** ref = FindRef(const_cast<HashTable*>(&ht_[t]), key, hash);
    if (ref != nullptr) return &(*ref)->value;
    if (rehash_index_ < 0) break;
  }
  return nullptr;
}

bool Dict::Del(const Slice& key) {
  RehashStep();
  uint32_t hash = HashKey(key);
  for (int t = 0; t < 2; t++) {
    Entry** ref = FindRef(&ht_[t], key, hash);
    if (ref != nullptr) {
      Entry* entry = *ref;
      *ref = entry->next;
      memory_bytes_ -= entry->key.size() + entry->value.size() +
                       kEntryOverhead;
      delete entry;
      ht_[t].used--;
      size_--;
      return true;
    }
    if (rehash_index_ < 0) break;
  }
  return false;
}

}  // namespace apmbench::hashkv
