#ifndef APMBENCH_HASHKV_HASHKV_H_
#define APMBENCH_HASHKV_HASHKV_H_

#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/env.h"
#include "common/skiplist.h"
#include "common/slice.h"
#include "common/status.h"
#include "hashkv/dict.h"

namespace apmbench::hashkv {

/// HashKV engine configuration.
struct Options {
  Env* env = nullptr;
  /// When set, every mutation is appended to a Redis-style append-only
  /// file, replayed on open. Empty disables persistence (pure in-memory,
  /// as the paper ran Redis).
  std::string aof_path;
  /// fsync the AOF on every mutation (appendfsync always).
  bool sync_aof = false;
  size_t initial_buckets = 16;
};

/// A Redis-architecture in-memory store: a chained hash table with
/// incremental rehash holds the records, a skip list (the structure behind
/// Redis sorted sets) indexes the keys for range scans — mirroring how the
/// YCSB Redis binding pairs each record with a sorted-set index entry —
/// and an optional append-only file provides persistence.
///
/// Thread-safety: all public methods are safe to call concurrently
/// (internally serialized, matching Redis' single-threaded execution).
class HashKV {
 public:
  struct Stats {
    size_t num_keys = 0;
    size_t bucket_count = 0;
    bool rehashing = false;
    size_t memory_bytes = 0;
    uint64_t aof_bytes = 0;
  };

  static Status Open(const Options& options, std::unique_ptr<HashKV>* store);

  /// Syncs the AOF so a clean shutdown never loses acknowledged
  /// mutations, even with sync_aof=false.
  ~HashKV();

  HashKV(const HashKV&) = delete;
  HashKV& operator=(const HashKV&) = delete;

  Status Set(const Slice& key, const Slice& value);
  Status Get(const Slice& key, std::string* value);
  Status Del(const Slice& key);

  /// Redis SAVE: writes a point-in-time snapshot of the whole dataset to
  /// `path` (atomically, via temp file + rename).
  Status SaveSnapshot(const std::string& path);

  /// Loads a snapshot written by SaveSnapshot, replacing current
  /// contents. Used instead of AOF replay when both exist.
  Status LoadSnapshot(const std::string& path);

  /// Redis BGREWRITEAOF (done inline): rewrites the append-only file to
  /// contain exactly one Set per live key, discarding the operation
  /// history. No-op without an AOF.
  Status RewriteAof();

  /// Up to `count` records with key >= start in key order (served from
  /// the skip-list index).
  Status Scan(const Slice& start, int count,
              std::vector<std::pair<std::string, std::string>>* out);

  Stats GetStats();

 private:
  struct KeyCompare {
    int operator()(const std::string& a, const std::string& b) const {
      return Slice(a).Compare(Slice(b));
    }
  };
  using KeyIndex = SkipList<std::string, char, KeyCompare>;

  explicit HashKV(const Options& options);

  Status ReplayAof();
  Status AppendAof(uint8_t op, const Slice& key, const Slice& value);

  Options options_;
  Env* env_;
  std::mutex mu_;
  Dict dict_;
  KeyIndex index_;
  std::unique_ptr<WritableFile> aof_;
};

}  // namespace apmbench::hashkv

#endif  // APMBENCH_HASHKV_HASHKV_H_
