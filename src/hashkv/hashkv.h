#ifndef APMBENCH_HASHKV_HASHKV_H_
#define APMBENCH_HASHKV_HASHKV_H_

#include <memory>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/env.h"
#include "common/group_commit.h"
#include "common/skiplist.h"
#include "common/slice.h"
#include "common/status.h"
#include "hashkv/dict.h"

namespace apmbench::hashkv {

/// HashKV engine configuration.
struct Options {
  Env* env = nullptr;
  /// When set, every mutation is appended to a Redis-style append-only
  /// file, replayed on open. Empty disables persistence (pure in-memory,
  /// as the paper ran Redis).
  std::string aof_path;
  /// fsync the AOF on every mutation (appendfsync always).
  bool sync_aof = false;
  size_t initial_buckets = 16;
};

/// A Redis-architecture in-memory store: a chained hash table with
/// incremental rehash holds the records, a skip list (the structure behind
/// Redis sorted sets) indexes the keys for range scans — mirroring how the
/// YCSB Redis binding pairs each record with a sorted-set index entry —
/// and an optional append-only file provides persistence.
///
/// Thread-safety: all public methods are safe to call concurrently.
/// Readers (Get/Scan/GetStats/SaveSnapshot) hold a shared lock and run in
/// parallel — like Redis 6's I/O threads, execution stays simple but reads
/// scale. Mutators hold the lock exclusively; the incremental rehash step
/// only runs inside Dict::Set/Del, so it is confined to the write path and
/// never races a reader. AOF records are enqueued under the write lock
/// (fixing log order) and committed after releasing it, so concurrent
/// mutators share one append — and one fsync under appendfsync-always —
/// via group commit. See docs/concurrency.md.
class HashKV {
 public:
  struct Stats {
    size_t num_keys = 0;
    size_t bucket_count = 0;
    bool rehashing = false;
    size_t memory_bytes = 0;
    uint64_t aof_bytes = 0;
    /// AOF group commit: appends is records enqueued, groups is leader
    /// write rounds. appends > groups means batching happened.
    uint64_t aof_appends = 0;
    uint64_t aof_groups = 0;
    uint64_t aof_synced_groups = 0;
  };

  static Status Open(const Options& options, std::unique_ptr<HashKV>* store);

  /// Syncs the AOF so a clean shutdown never loses acknowledged
  /// mutations, even with sync_aof=false.
  ~HashKV();

  HashKV(const HashKV&) = delete;
  HashKV& operator=(const HashKV&) = delete;

  Status Set(const Slice& key, const Slice& value);
  Status Get(const Slice& key, std::string* value);
  Status Del(const Slice& key);

  /// Redis SAVE: writes a point-in-time snapshot of the whole dataset to
  /// `path` (atomically, via temp file + rename).
  Status SaveSnapshot(const std::string& path);

  /// Loads a snapshot written by SaveSnapshot, replacing current
  /// contents. Used instead of AOF replay when both exist.
  Status LoadSnapshot(const std::string& path);

  /// Redis BGREWRITEAOF (done inline): rewrites the append-only file to
  /// contain exactly one Set per live key, discarding the operation
  /// history. No-op without an AOF.
  Status RewriteAof();

  /// Up to `count` records with key >= start in key order (served from
  /// the skip-list index).
  Status Scan(const Slice& start, int count,
              std::vector<std::pair<std::string, std::string>>* out);

  Stats GetStats();

 private:
  struct KeyCompare {
    int operator()(const std::string& a, const std::string& b) const {
      return Slice(a).Compare(Slice(b));
    }
  };
  using KeyIndex = SkipList<std::string, char, KeyCompare>;

  explicit HashKV(const Options& options);

  Status ReplayAof();
  /// Stages one framed AOF record; requires mu_ held exclusively (record
  /// order must match apply order). Commit the returned ticket after
  /// releasing mu_.
  GroupCommitLog::Ticket EnqueueAofLocked(uint8_t op, const Slice& key,
                                          const Slice& value);

  Options options_;
  Env* env_;
  std::shared_mutex mu_;
  Dict dict_;
  KeyIndex index_;
  /// shared_ptr because RewriteAof swaps in a fresh log while mutators
  /// that already released mu_ may still be committing against the old
  /// one; they hold their own reference.
  std::shared_ptr<GroupCommitLog> aof_;
};

}  // namespace apmbench::hashkv

#endif  // APMBENCH_HASHKV_HASHKV_H_
