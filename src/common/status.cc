#include "common/status.h"

namespace apmbench {

namespace {

const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kNotFound:
      return "NotFound";
    case Status::Code::kCorruption:
      return "Corruption";
    case Status::Code::kInvalidArgument:
      return "InvalidArgument";
    case Status::Code::kIOError:
      return "IOError";
    case Status::Code::kNotSupported:
      return "NotSupported";
    case Status::Code::kBusy:
      return "Busy";
    case Status::Code::kAborted:
      return "Aborted";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = CodeName(code_);
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

}  // namespace apmbench
