#include "common/compression.h"

#include <cstring>
#include <vector>

#include "common/coding.h"

namespace apmbench::lz {

namespace {

constexpr int kHashBits = 14;
constexpr size_t kHashSize = 1u << kHashBits;

inline uint32_t Load32(const char* p) {
  uint32_t v;
  memcpy(&v, p, 4);
  return v;
}

inline uint32_t HashQuad(uint32_t v) {
  return (v * 0x9E3779B1u) >> (32 - kHashBits);
}

/// Emits a literal run [begin, end), splitting at the 128-byte token cap.
void EmitLiterals(const char* begin, const char* end, std::string* out) {
  while (begin < end) {
    size_t run = static_cast<size_t>(end - begin);
    if (run > 128) run = 128;
    out->push_back(static_cast<char>(run - 1));
    out->append(begin, run);
    begin += run;
  }
}

}  // namespace

size_t MaxCompressedLength(size_t raw_len) {
  // Worst case: all literals, one control byte per 128 bytes, plus the
  // varint header.
  return raw_len + raw_len / 128 + 16;
}

void Compress(const Slice& input, std::string* out) {
  out->clear();
  out->reserve(MaxCompressedLength(input.size()));
  PutVarint64(out, input.size());
  const char* base = input.data();
  const size_t n = input.size();
  if (n < kMinMatch) {
    EmitLiterals(base, base + n, out);
    return;
  }

  // table[h] = most recent position whose 4-byte hash is h.
  std::vector<uint32_t> table(kHashSize, 0);
  std::vector<bool> valid(kHashSize, false);

  size_t pos = 0;
  size_t literal_start = 0;
  const size_t limit = n - kMinMatch + 1;
  while (pos < limit) {
    uint32_t quad = Load32(base + pos);
    uint32_t hash = HashQuad(quad);
    size_t candidate = table[hash];
    bool hit = valid[hash] && candidate < pos &&
               Load32(base + candidate) == quad;
    table[hash] = static_cast<uint32_t>(pos);
    valid[hash] = true;
    if (!hit) {
      pos++;
      continue;
    }
    // Extend the match.
    size_t match_len = kMinMatch;
    size_t max_len = n - pos;
    if (max_len > kMaxMatch) max_len = kMaxMatch;
    while (match_len < max_len &&
           base[candidate + match_len] == base[pos + match_len]) {
      match_len++;
    }
    EmitLiterals(base + literal_start, base + pos, out);
    out->push_back(
        static_cast<char>(0x80 | (match_len - kMinMatch)));
    PutVarint32(out, static_cast<uint32_t>(pos - candidate));
    pos += match_len;
    literal_start = pos;
  }
  EmitLiterals(base + literal_start, base + n, out);
}

bool Uncompress(const Slice& input, std::string* out) {
  out->clear();
  Slice in = input;
  uint64_t raw_len;
  if (!GetVarint64(&in, &raw_len)) return false;
  // Guard against absurd headers on corrupt data (1 GB cap).
  if (raw_len > (1ull << 30)) return false;
  out->reserve(raw_len);
  while (!in.empty()) {
    uint8_t control = static_cast<uint8_t>(in[0]);
    in.RemovePrefix(1);
    if (control < 0x80) {
      size_t run = static_cast<size_t>(control) + 1;
      if (in.size() < run || out->size() + run > raw_len) return false;
      out->append(in.data(), run);
      in.RemovePrefix(run);
    } else {
      size_t match_len = static_cast<size_t>(control & 0x7f) + kMinMatch;
      uint32_t distance;
      if (!GetVarint32(&in, &distance) || distance == 0 ||
          distance > out->size() || out->size() + match_len > raw_len) {
        return false;
      }
      // Byte-by-byte: overlapping copies (distance < match_len) repeat
      // the pattern, as in every LZ decoder.
      size_t from = out->size() - distance;
      for (size_t i = 0; i < match_len; i++) {
        out->push_back((*out)[from + i]);
      }
    }
  }
  return out->size() == raw_len;
}

}  // namespace apmbench::lz
