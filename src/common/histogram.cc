#include "common/histogram.h"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace apmbench {

Histogram::Histogram()
    : buckets_(kBucketGroups * kSubBuckets, 0) {}

size_t Histogram::BucketIndex(uint64_t value) const {
  if (value == 0) value = 1;
  // Group g covers values with bit_width in [kSubBucketBits + g,
  // kSubBucketBits + g + 1); within a group, values map linearly onto
  // kSubBuckets sub-buckets.
  int width = std::bit_width(value);
  int group = width <= kSubBucketBits ? 0 : width - kSubBucketBits;
  if (group >= kBucketGroups) {
    group = kBucketGroups - 1;
    // Saturate at the top sub-bucket.
    return static_cast<size_t>(group) * kSubBuckets + (kSubBuckets - 1);
  }
  uint64_t sub;
  if (group == 0) {
    sub = value & (kSubBuckets - 1);
  } else {
    sub = (value >> (group - 1)) & (kSubBuckets - 1);
  }
  return static_cast<size_t>(group) * kSubBuckets + sub;
}

uint64_t Histogram::BucketUpperBound(size_t index) const {
  size_t group = index / kSubBuckets;
  uint64_t sub = index % kSubBuckets;
  if (group == 0) return sub;
  // Inverse of BucketIndex: highest value mapping to this bucket.
  uint64_t base = kSubBuckets << (group - 1);
  (void)base;
  uint64_t unit = 1ULL << (group - 1);
  uint64_t high_bit = 1ULL << (kSubBucketBits + group - 1);
  return high_bit + sub * unit + (unit - 1);
}

void Histogram::Add(uint64_t value) {
  buckets_[BucketIndex(value)]++;
  count_++;
  sum_ += static_cast<double>(value);
  min_ = std::min(min_, value == 0 ? uint64_t{1} : value);
  max_ = std::max(max_, value);
}

void Histogram::Add(uint64_t value, uint64_t n) {
  if (n == 0) return;
  buckets_[BucketIndex(value)] += n;
  count_ += n;
  sum_ += static_cast<double>(value) * static_cast<double>(n);
  min_ = std::min(min_, value == 0 ? uint64_t{1} : value);
  max_ = std::max(max_, value);
}

void Histogram::Merge(const Histogram& other) {
  for (size_t i = 0; i < buckets_.size(); i++) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = UINT64_MAX;
  max_ = 0;
}

void Histogram::Swap(Histogram* other) noexcept {
  buckets_.swap(other->buckets_);
  std::swap(count_, other->count_);
  std::swap(sum_, other->sum_);
  std::swap(min_, other->min_);
  std::swap(max_, other->max_);
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

uint64_t Histogram::Percentile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  uint64_t threshold =
      static_cast<uint64_t>(q * static_cast<double>(count_) + 0.5);
  if (threshold == 0) threshold = 1;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets_.size(); i++) {
    cumulative += buckets_[i];
    if (cumulative >= threshold) {
      // The final bucket saturates (values above ~2^40); its nominal
      // upper bound is meaningless, so report the observed maximum.
      if (i == buckets_.size() - 1) return max_;
      return std::min(BucketUpperBound(i), max_);
    }
  }
  return max_;
}

std::string Histogram::ToString() const {
  char buf[256];
  snprintf(buf, sizeof(buf),
           "count=%llu mean=%.2f min=%llu p50=%llu p95=%llu p99=%llu "
           "p999=%llu max=%llu",
           static_cast<unsigned long long>(count_), Mean(),
           static_cast<unsigned long long>(min()),
           static_cast<unsigned long long>(Percentile(0.50)),
           static_cast<unsigned long long>(Percentile(0.95)),
           static_cast<unsigned long long>(Percentile(0.99)),
           static_cast<unsigned long long>(Percentile(0.999)),
           static_cast<unsigned long long>(max_));
  return buf;
}

}  // namespace apmbench
