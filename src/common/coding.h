#ifndef APMBENCH_COMMON_CODING_H_
#define APMBENCH_COMMON_CODING_H_

#include <cstdint>
#include <string>

#include "common/slice.h"

namespace apmbench {

/// Little-endian fixed-width and varint encodings shared by the on-disk
/// formats of the storage engines (log records, SSTable blocks, pages).

void PutFixed32(std::string* dst, uint32_t value);
void PutFixed64(std::string* dst, uint64_t value);
void PutVarint32(std::string* dst, uint32_t value);
void PutVarint64(std::string* dst, uint64_t value);
/// Appends varint length followed by the bytes of `value`.
void PutLengthPrefixedSlice(std::string* dst, const Slice& value);

uint32_t DecodeFixed32(const char* ptr);
uint64_t DecodeFixed64(const char* ptr);
void EncodeFixed32(char* dst, uint32_t value);
void EncodeFixed64(char* dst, uint64_t value);

/// Each GetXxx consumes bytes from the front of `input` on success and
/// returns false (leaving `input` unspecified) on malformed data.
bool GetFixed32(Slice* input, uint32_t* value);
bool GetFixed64(Slice* input, uint64_t* value);
bool GetVarint32(Slice* input, uint32_t* value);
bool GetVarint64(Slice* input, uint64_t* value);
bool GetLengthPrefixedSlice(Slice* input, Slice* result);

/// Raw-pointer variants for hot decode paths (memtable entries, block
/// scans) that cannot afford Slice bookkeeping. Encode returns the byte
/// past the encoding; Get returns nullptr on truncated/malformed input.
char* EncodeVarint32(char* dst, uint32_t value);
char* EncodeVarint64(char* dst, uint64_t value);
const char* GetVarint32Ptr(const char* p, const char* limit, uint32_t* value);
const char* GetVarint64Ptr(const char* p, const char* limit, uint64_t* value);

/// Number of bytes a varint encoding of `value` occupies.
int VarintLength(uint64_t value);

}  // namespace apmbench

#endif  // APMBENCH_COMMON_CODING_H_
