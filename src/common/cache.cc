#include "common/cache.h"

#include <cassert>
#include <unordered_map>
#include <vector>

namespace apmbench {

uint32_t CacheKeyHash(uint64_t owner, uint64_t offset) {
  // splitmix64 finalizer over the combined key; the top bits (used for
  // shard selection) are as well-mixed as the bottom bits (used for the
  // per-shard hash table).
  uint64_t x = owner * 0x9e3779b97f4a7c15ULL ^ offset;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<uint32_t>(x >> 32);
}

/// An entry in the cache. Doubly linked on exactly one of the shard's two
/// circular lists (lru_: refs == 1, evictable; in_use_: refs >= 2,
/// pinned) while in_cache, and always on its owner's list. `refs` counts
/// the cache's own reference (while in_cache) plus one per outstanding
/// handle.
struct ShardedLRUCache::Handle {
  uint64_t owner;
  uint64_t offset;
  void* value;
  Deleter deleter;
  size_t charge;
  uint32_t hash;
  uint32_t refs;
  bool in_cache;
  Handle* next;
  Handle* prev;
  Handle* owner_next;
  Handle* owner_prev;
};

struct ShardedLRUCache::Shard {
  struct Key {
    uint64_t owner;
    uint64_t offset;
    bool operator==(const Key& o) const {
      return owner == o.owner && offset == o.offset;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return CacheKeyHash(k.owner, k.offset);
    }
  };
  /// Dummy head of a circular doubly linked list of owner entries.
  struct OwnerList {
    Handle head;
    OwnerList() {
      head.owner_next = &head;
      head.owner_prev = &head;
    }
  };

  std::mutex mu;
  size_t capacity = 0;
  size_t usage = 0;
  Handle lru;     // dummy head; lru.next is oldest
  Handle in_use;  // dummy head; order irrelevant
  std::unordered_map<Key, Handle*, KeyHash> table;
  std::unordered_map<uint64_t, OwnerList> owners;

  Shard() {
    lru.next = &lru;
    lru.prev = &lru;
    in_use.next = &in_use;
    in_use.prev = &in_use;
  }

  static void ListRemove(Handle* e) {
    e->next->prev = e->prev;
    e->prev->next = e->next;
  }
  static void ListAppend(Handle* list, Handle* e) {
    // Make e the newest entry (list->prev side).
    e->next = list;
    e->prev = list->prev;
    e->prev->next = e;
    e->next->prev = e;
  }

  void OwnerListAdd(Handle* e) {
    Handle* head = &owners[e->owner].head;
    e->owner_next = head->owner_next;
    e->owner_prev = head;
    e->owner_next->owner_prev = e;
    head->owner_next = e;
  }
  void OwnerListRemove(Handle* e) {
    e->owner_next->owner_prev = e->owner_prev;
    e->owner_prev->owner_next = e->owner_next;
    Handle* head = &owners[e->owner].head;
    if (head->owner_next == head) owners.erase(e->owner);
  }

  /// Drops one reference. Requires mu held; the deleter runs under the
  /// lock (values are plain buffers; deleters never re-enter the cache).
  void Unref(Handle* e) {
    assert(e->refs > 0);
    e->refs--;
    if (e->refs == 0) {
      assert(!e->in_cache);
      (*e->deleter)(e->value);
      delete e;
    } else if (e->in_cache && e->refs == 1) {
      // No outstanding handles: back onto the LRU list, evictable again.
      ListRemove(e);
      ListAppend(&lru, e);
    }
  }

  void Ref(Handle* e) {
    if (e->in_cache && e->refs == 1) {
      // Becomes pinned: off the LRU list so eviction cannot touch it.
      ListRemove(e);
      ListAppend(&in_use, e);
    }
    e->refs++;
  }

  /// Detaches `e` from the cache (table entry already removed by the
  /// caller). Requires mu held.
  void FinishErase(Handle* e) {
    assert(e->in_cache);
    e->in_cache = false;
    ListRemove(e);
    OwnerListRemove(e);
    usage -= e->charge;
    Unref(e);
  }
};

ShardedLRUCache::ShardedLRUCache(size_t capacity_bytes, int shard_bits)
    : capacity_(capacity_bytes),
      shard_bits_(shard_bits < 0 ? 0 : (shard_bits > 8 ? 8 : shard_bits)),
      num_shards_(1 << shard_bits_),
      shards_(new Shard[static_cast<size_t>(num_shards_)]) {
  // Round the per-shard budget up so the total is never below the
  // requested capacity.
  const size_t per_shard =
      (capacity_bytes + static_cast<size_t>(num_shards_) - 1) /
      static_cast<size_t>(num_shards_);
  for (int i = 0; i < num_shards_; i++) shards_[i].capacity = per_shard;
}

ShardedLRUCache::~ShardedLRUCache() {
  for (int i = 0; i < num_shards_; i++) {
    Shard& shard = shards_[i];
    assert(shard.in_use.next == &shard.in_use);  // no outstanding handles
    for (Handle* e = shard.lru.next; e != &shard.lru;) {
      Handle* next = e->next;
      assert(e->in_cache && e->refs == 1);
      (*e->deleter)(e->value);
      delete e;
      e = next;
    }
  }
}

ShardedLRUCache::Shard* ShardedLRUCache::ShardFor(uint32_t hash) const {
  return &shards_[shard_bits_ == 0 ? 0 : CacheShardOf(hash, shard_bits_)];
}

ShardedLRUCache::Handle* ShardedLRUCache::Insert(uint64_t owner,
                                                 uint64_t offset, void* value,
                                                 size_t charge,
                                                 Deleter deleter) {
  const uint32_t hash = CacheKeyHash(owner, offset);
  Shard* shard = ShardFor(hash);

  Handle* e = new Handle();
  e->owner = owner;
  e->offset = offset;
  e->value = value;
  e->deleter = deleter;
  e->charge = charge;
  e->hash = hash;
  e->refs = 1;  // the returned handle
  e->in_cache = false;

  std::lock_guard<std::mutex> lock(shard->mu);
  if (shard->capacity > 0) {
    e->refs++;  // the cache's reference
    e->in_cache = true;
    Shard::ListAppend(&shard->in_use, e);  // pinned until released
    shard->OwnerListAdd(e);
    shard->usage += charge;
    auto it = shard->table.find(Shard::Key{owner, offset});
    if (it != shard->table.end()) {
      Handle* old = it->second;
      it->second = e;
      shard->FinishErase(old);
    } else {
      shard->table[Shard::Key{owner, offset}] = e;
    }
  }
  // else: capacity 0 — hand the caller a pinned, uncached entry; the
  // deleter runs on Release.

  while (shard->usage > shard->capacity && shard->lru.next != &shard->lru) {
    Handle* victim = shard->lru.next;  // oldest
    assert(victim->refs == 1);
    shard->table.erase(Shard::Key{victim->owner, victim->offset});
    shard->FinishErase(victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  return e;
}

ShardedLRUCache::Handle* ShardedLRUCache::Lookup(uint64_t owner,
                                                 uint64_t offset) {
  Shard* shard = ShardFor(CacheKeyHash(owner, offset));
  std::lock_guard<std::mutex> lock(shard->mu);
  auto it = shard->table.find(Shard::Key{owner, offset});
  if (it == shard->table.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  shard->Ref(it->second);
  return it->second;
}

void ShardedLRUCache::Release(Handle* handle) {
  if (handle == nullptr) return;
  Shard* shard = ShardFor(handle->hash);
  std::lock_guard<std::mutex> lock(shard->mu);
  shard->Unref(handle);
}

void* ShardedLRUCache::Value(Handle* handle) { return handle->value; }

void ShardedLRUCache::Erase(uint64_t owner, uint64_t offset) {
  Shard* shard = ShardFor(CacheKeyHash(owner, offset));
  std::lock_guard<std::mutex> lock(shard->mu);
  auto it = shard->table.find(Shard::Key{owner, offset});
  if (it == shard->table.end()) return;
  Handle* e = it->second;
  shard->table.erase(it);
  shard->FinishErase(e);
}

void ShardedLRUCache::EvictOwner(uint64_t owner) {
  for (int i = 0; i < num_shards_; i++) {
    Shard& shard = shards_[i];
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.owners.find(owner);
    if (it == shard.owners.end()) continue;
    // Collect first: FinishErase unlinks entries from this very list and
    // frees the list head when it empties.
    std::vector<Handle*> victims;
    for (Handle* e = it->second.head.owner_next; e != &it->second.head;
         e = e->owner_next) {
      victims.push_back(e);
    }
    for (Handle* e : victims) {
      shard.table.erase(Shard::Key{e->owner, e->offset});
      shard.FinishErase(e);
    }
  }
}

size_t ShardedLRUCache::charge() const {
  size_t total = 0;
  for (int i = 0; i < num_shards_; i++) {
    std::lock_guard<std::mutex> lock(shards_[i].mu);
    total += shards_[i].usage;
  }
  return total;
}

}  // namespace apmbench
