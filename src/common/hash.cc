#include "common/hash.h"

#include <cstring>

namespace apmbench {

uint64_t MurmurHash64A(const void* key, size_t len, uint64_t seed) {
  const uint64_t m = 0xc6a4a7935bd1e995ULL;
  const int r = 47;

  uint64_t h = seed ^ (len * m);

  const auto* data = static_cast<const unsigned char*>(key);
  const unsigned char* end = data + (len / 8) * 8;

  while (data != end) {
    uint64_t k;
    memcpy(&k, data, 8);
    data += 8;

    k *= m;
    k ^= k >> r;
    k *= m;

    h ^= k;
    h *= m;
  }

  size_t remaining = len & 7;
  uint64_t tail = 0;
  for (size_t i = remaining; i > 0; i--) {
    tail = (tail << 8) | data[i - 1];
  }
  if (remaining > 0) {
    h ^= tail;
    h *= m;
  }

  h ^= h >> r;
  h *= m;
  h ^= h >> r;

  return h;
}

namespace {

inline uint32_t Rotl32(uint32_t x, int8_t r) {
  return (x << r) | (x >> (32 - r));
}

}  // namespace

uint32_t MurmurHash3_32(const void* key, size_t len, uint32_t seed) {
  const auto* data = static_cast<const unsigned char*>(key);
  const size_t nblocks = len / 4;

  uint32_t h1 = seed;
  const uint32_t c1 = 0xcc9e2d51;
  const uint32_t c2 = 0x1b873593;

  for (size_t i = 0; i < nblocks; i++) {
    uint32_t k1;
    memcpy(&k1, data + i * 4, 4);

    k1 *= c1;
    k1 = Rotl32(k1, 15);
    k1 *= c2;

    h1 ^= k1;
    h1 = Rotl32(h1, 13);
    h1 = h1 * 5 + 0xe6546b64;
  }

  const unsigned char* tail = data + nblocks * 4;
  uint32_t k1 = 0;
  switch (len & 3) {
    case 3:
      k1 ^= static_cast<uint32_t>(tail[2]) << 16;
      [[fallthrough]];
    case 2:
      k1 ^= static_cast<uint32_t>(tail[1]) << 8;
      [[fallthrough]];
    case 1:
      k1 ^= tail[0];
      k1 *= c1;
      k1 = Rotl32(k1, 15);
      k1 *= c2;
      h1 ^= k1;
  }

  h1 ^= static_cast<uint32_t>(len);
  h1 ^= h1 >> 16;
  h1 *= 0x85ebca6b;
  h1 ^= h1 >> 13;
  h1 *= 0xc2b2ae35;
  h1 ^= h1 >> 16;

  return h1;
}

uint64_t FnvHash64(uint64_t value) {
  const uint64_t kFnvOffset = 0xCBF29CE484222325ULL;
  const uint64_t kFnvPrime = 1099511628211ULL;
  uint64_t hash = kFnvOffset;
  for (int i = 0; i < 8; i++) {
    uint64_t octet = value & 0xff;
    value >>= 8;
    hash ^= octet;
    hash *= kFnvPrime;
  }
  return hash;
}

}  // namespace apmbench
