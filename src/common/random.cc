#include "common/random.h"

#include <cassert>
#include <cmath>

#include "common/hash.h"

namespace apmbench {

Random::Random(uint64_t seed) {
  // SplitMix64 to expand the seed into two nonzero state words.
  uint64_t z = seed + 0x9e3779b97f4a7c15ULL;
  auto mix = [](uint64_t v) {
    v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ULL;
    v = (v ^ (v >> 27)) * 0x94d049bb133111ebULL;
    return v ^ (v >> 31);
  };
  s0_ = mix(z);
  z += 0x9e3779b97f4a7c15ULL;
  s1_ = mix(z);
  if (s0_ == 0 && s1_ == 0) s1_ = 1;
}

uint64_t Random::Next() {
  uint64_t x = s0_;
  const uint64_t y = s1_;
  s0_ = y;
  x ^= x << 23;
  s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
  return s1_ + y;
}

uint64_t Random::Uniform(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias on small n.
  const uint64_t threshold = -n % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

double Random::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

double Random::Exponential(double mean) {
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Random::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

ZipfianGenerator::ZipfianGenerator(uint64_t min, uint64_t max_exclusive,
                                   double theta)
    : base_(min), item_count_(max_exclusive - min), theta_(theta) {
  assert(max_exclusive > min);
  zeta_n_ = Zeta(item_count_, theta_);
  zeta2_theta_ = Zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(item_count_),
                         1.0 - theta_)) /
         (1.0 - zeta2_theta_ / zeta_n_);
}

double ZipfianGenerator::Zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; i++) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

uint64_t ZipfianGenerator::Next(Random* rng) {
  double u = rng->NextDouble();
  double uz = u * zeta_n_;
  uint64_t v;
  if (uz < 1.0) {
    v = base_;
  } else if (uz < 1.0 + std::pow(0.5, theta_)) {
    v = base_ + 1;
  } else {
    v = base_ + static_cast<uint64_t>(
                    static_cast<double>(item_count_) *
                    std::pow(eta_ * u - eta_ + 1.0, alpha_));
    if (v >= base_ + item_count_) v = base_ + item_count_ - 1;
  }
  last_.store(v, std::memory_order_relaxed);
  return v;
}

ScrambledZipfianGenerator::ScrambledZipfianGenerator(uint64_t min,
                                                     uint64_t max_exclusive)
    : base_(min),
      item_count_(max_exclusive - min),
      zipfian_(0, max_exclusive - min) {}

uint64_t ScrambledZipfianGenerator::Next(Random* rng) {
  uint64_t v = zipfian_.Next(rng);
  return base_ + FnvHash64(v) % item_count_;
}

}  // namespace apmbench
