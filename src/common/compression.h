#ifndef APMBENCH_COMMON_COMPRESSION_H_
#define APMBENCH_COMMON_COMPRESSION_H_

#include <cstdint>
#include <string>

#include "common/slice.h"

namespace apmbench {

/// Block compression codecs. The paper's Section 8 lists measuring the
/// impact of compression as future work; the LSM engine's data blocks can
/// be compressed with the LZ codec below (see lsm::Options::compression
/// and bench/ablation_compression).
enum class CompressionType : uint8_t {
  kNone = 0,
  kLz = 1,
};

/// A byte-oriented LZ77 compressor in the spirit of Snappy/LZ4: greedy
/// hash-chain matching of 4-byte sequences, literals and back-references
/// interleaved, no entropy stage — built for speed on small storage
/// blocks, not for ratio.
///
/// Stream format:
///   varint64 raw_length
///   token*:
///     control byte C < 0x80: literal run of C+1 bytes follows
///     control byte C >= 0x80: match of length (C & 0x7f) + kMinMatch,
///                             followed by varint32 back-distance (>= 1)
namespace lz {

constexpr size_t kMinMatch = 4;
constexpr size_t kMaxMatch = 127 + kMinMatch;

/// Compresses `input` into `*out` (replacing its contents).
void Compress(const Slice& input, std::string* out);

/// Decompresses into `*out`; false on malformed or truncated input.
/// Never reads or writes out of bounds on corrupt data.
bool Uncompress(const Slice& input, std::string* out);

/// Upper bound on Compress output size for `raw_len` input bytes.
size_t MaxCompressedLength(size_t raw_len);

}  // namespace lz

}  // namespace apmbench

#endif  // APMBENCH_COMMON_COMPRESSION_H_
