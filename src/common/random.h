#ifndef APMBENCH_COMMON_RANDOM_H_
#define APMBENCH_COMMON_RANDOM_H_

#include <atomic>
#include <cstdint>

namespace apmbench {

/// Fast, reproducible pseudo-random generator (xorshift128+). Every
/// benchmark and simulation component takes an explicit seed so runs are
/// repeatable; we deliberately avoid std::mt19937 in hot paths.
class Random {
 public:
  explicit Random(uint64_t seed);

  /// Uniform in [0, 2^64).
  uint64_t Next();

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (0 <= p <= 1).
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Exponentially distributed with the given mean (> 0). Used for
  /// service-time and inter-arrival sampling in the cluster simulator.
  double Exponential(double mean);

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

 private:
  uint64_t s0_;
  uint64_t s1_;
};

/// Zipfian-distributed integers in [0, item_count), YCSB-compatible
/// (Gray et al. algorithm with incremental support for growing item counts).
/// Used by the request-distribution options of the workload generator; the
/// paper's experiments use the uniform distribution, but zipfian/latest are
/// part of the framework (and exercised by tests and the workload explorer).
class ZipfianGenerator {
 public:
  static constexpr double kDefaultTheta = 0.99;

  ZipfianGenerator(uint64_t min, uint64_t max_exclusive,
                   double theta = kDefaultTheta);

  /// Thread-safe given a caller-owned Random (the shared state is
  /// read-only after construction; `last` is atomic).
  uint64_t Next(Random* rng);

  /// Supports the "latest" distribution: reports the most recently returned
  /// value without consuming randomness.
  uint64_t last() const { return last_.load(std::memory_order_relaxed); }

 private:
  static double Zeta(uint64_t n, double theta);

  uint64_t base_;
  uint64_t item_count_;
  double theta_;
  double zeta_n_;
  double alpha_;
  double eta_;
  double zeta2_theta_;
  std::atomic<uint64_t> last_{0};
};

/// Zipfian with the popular items scattered across the keyspace (YCSB's
/// "scrambled zipfian"), so hot keys do not cluster in one shard.
class ScrambledZipfianGenerator {
 public:
  ScrambledZipfianGenerator(uint64_t min, uint64_t max_exclusive);

  uint64_t Next(Random* rng);

 private:
  uint64_t base_;
  uint64_t item_count_;
  ZipfianGenerator zipfian_;
};

}  // namespace apmbench

#endif  // APMBENCH_COMMON_RANDOM_H_
