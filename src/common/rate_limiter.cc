#include "common/rate_limiter.h"

#include <algorithm>

#include "common/clock.h"

namespace apmbench {

RateLimiter::RateLimiter(uint64_t bytes_per_sec, uint64_t burst_bytes)
    : bytes_per_sec_(bytes_per_sec),
      burst_bytes_(burst_bytes > 0 ? burst_bytes
                                   : std::max<uint64_t>(bytes_per_sec, 1)) {
  last_refill_us_ = NowMicros();
  available_ = burst_bytes_;  // start full so the first write is not delayed
}

void RateLimiter::RefillLocked(uint64_t now_micros) {
  if (now_micros <= last_refill_us_) return;
  const uint64_t elapsed = now_micros - last_refill_us_;
  const uint64_t tokens = elapsed * bytes_per_sec_ / 1000000;
  if (tokens == 0) return;  // keep last_refill_us_ so sub-token time accrues
  available_ = std::min(burst_bytes_, available_ + tokens);
  last_refill_us_ = now_micros;
}

void RateLimiter::Request(uint64_t bytes) {
  if (bytes == 0) return;
  total_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  if (bytes_per_sec_ == 0) return;

  const uint64_t start = NowMicros();
  std::unique_lock<std::mutex> lock(mu_);
  uint64_t remaining = bytes;
  while (remaining > 0) {
    // Admit at most one burst per installment so a multi-burst request
    // yields the bucket between installments instead of draining it dry
    // in one shot.
    const uint64_t want = std::min(remaining, burst_bytes_);
    RefillLocked(NowMicros());
    if (available_ >= want) {
      available_ -= want;
      remaining -= want;
      continue;
    }
    const uint64_t deficit = want - available_;
    const uint64_t wait_us = deficit * 1000000 / bytes_per_sec_ + 1;
    cv_.wait_for(lock, std::chrono::microseconds(wait_us));
  }
  lock.unlock();
  cv_.notify_all();
  total_wait_micros_.fetch_add(NowMicros() - start, std::memory_order_relaxed);
}

}  // namespace apmbench
