#include "common/crc32.h"

#include <array>

namespace apmbench {

namespace {

constexpr uint32_t kCrc32cPoly = 0x82f63b78;  // reversed Castagnoli

std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; i++) {
    uint32_t crc = i;
    for (int j = 0; j < 8; j++) {
      crc = (crc >> 1) ^ ((crc & 1) ? kCrc32cPoly : 0);
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = MakeTable();
  return table;
}

constexpr uint32_t kMaskDelta = 0xa282ead8u;

}  // namespace

uint32_t Crc32cExtend(uint32_t init_crc, const char* data, size_t n) {
  const auto& table = Table();
  uint32_t crc = init_crc ^ 0xffffffffu;
  const auto* p = reinterpret_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; i++) {
    crc = table[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

uint32_t Crc32c(const char* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

uint32_t MaskCrc(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + kMaskDelta;
}

uint32_t UnmaskCrc(uint32_t masked) {
  uint32_t rot = masked - kMaskDelta;
  return (rot >> 17) | (rot << 15);
}

}  // namespace apmbench
