#ifndef APMBENCH_COMMON_RATE_LIMITER_H_
#define APMBENCH_COMMON_RATE_LIMITER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace apmbench {

/// A token-bucket rate limiter for background I/O, modeled on RocksDB's
/// GenericRateLimiter. Flush and compaction charge the bytes they are
/// about to write; when the bucket is empty the caller sleeps until it
/// refills, which converts background write bursts into a bounded,
/// steady stream so foreground writes keep their share of the device.
///
/// One limiter is typically shared by every background producer of a DB
/// (or by all node-local engines of a store), so the configured rate is a
/// global budget, not a per-thread one.
///
/// Thread-safe. A rate of 0 means unlimited: Request() returns
/// immediately and costs one atomic add.
class RateLimiter {
 public:
  /// `bytes_per_sec` is the sustained refill rate; `burst_bytes` caps how
  /// many unused tokens may accumulate (defaults to one second's worth).
  explicit RateLimiter(uint64_t bytes_per_sec, uint64_t burst_bytes = 0);

  RateLimiter(const RateLimiter&) = delete;
  RateLimiter& operator=(const RateLimiter&) = delete;

  /// Blocks until `bytes` tokens are available, then consumes them.
  /// Requests larger than the burst size are admitted in burst-sized
  /// installments, so a huge single request cannot starve smaller ones
  /// forever. Never fails; an unlimited limiter never blocks.
  void Request(uint64_t bytes);

  /// True when the limiter actually limits (bytes_per_sec > 0).
  bool enabled() const { return bytes_per_sec_ > 0; }

  uint64_t bytes_per_sec() const { return bytes_per_sec_; }

  /// Total bytes that have passed through Request().
  uint64_t total_bytes() const {
    return total_bytes_.load(std::memory_order_relaxed);
  }

  /// Total microseconds callers have spent blocked in Request().
  uint64_t total_wait_micros() const {
    return total_wait_micros_.load(std::memory_order_relaxed);
  }

 private:
  /// Refreshes `available_` from the elapsed time. Requires mu_ held.
  void RefillLocked(uint64_t now_micros);

  const uint64_t bytes_per_sec_;
  const uint64_t burst_bytes_;

  std::mutex mu_;
  std::condition_variable cv_;
  uint64_t available_ = 0;       // tokens in the bucket, guarded by mu_
  uint64_t last_refill_us_ = 0;  // guarded by mu_

  std::atomic<uint64_t> total_bytes_{0};
  std::atomic<uint64_t> total_wait_micros_{0};
};

}  // namespace apmbench

#endif  // APMBENCH_COMMON_RATE_LIMITER_H_
