#include "common/env.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include <atomic>

namespace apmbench {

namespace {

std::atomic<PosixPreadFunc> g_pread_hook{nullptr};

Status PosixError(const std::string& context, int err) {
  if (err == ENOENT) {
    return Status::NotFound(context + ": " + strerror(err));
  }
  return Status::IOError(context + ": " + strerror(err));
}

/// Reads exactly `n` bytes at `offset` unless end-of-file intervenes,
/// retrying EINTR and continuing after short returns — the kernel may
/// deliver fewer bytes than asked for any reason (signals, readahead
/// misses), and treating that as the end of the data corrupts reads.
Status PreadFully(int fd, uint64_t offset, size_t n, Slice* result,
                  char* scratch, const std::string& path) {
  PosixPreadFunc hook = g_pread_hook.load(std::memory_order_acquire);
  size_t got = 0;
  while (got < n) {
    ssize_t r;
    if (hook != nullptr) {
      r = hook(fd, scratch + got, n - got,
               static_cast<int64_t>(offset + got));
    } else {
      r = pread(fd, scratch + got, n - got,
                static_cast<off_t>(offset + got));
    }
    if (r < 0) {
      if (errno == EINTR) continue;
      return PosixError("pread " + path, errno);
    }
    if (r == 0) break;  // end of file
    got += static_cast<size_t>(r);
  }
  *result = Slice(scratch, got);
  return Status::OK();
}

class PosixWritableFile final : public WritableFile {
 public:
  PosixWritableFile(std::string path, int fd, uint64_t initial_size)
      : path_(std::move(path)), fd_(fd), size_(initial_size) {
    buffer_.reserve(kBufferSize);
  }

  ~PosixWritableFile() override {
    if (fd_ >= 0) {
      Close();
    }
  }

  Status Append(const Slice& data) override {
    size_ += data.size();
    if (buffer_.size() + data.size() <= kBufferSize) {
      buffer_.append(data.data(), data.size());
      return Status::OK();
    }
    APM_RETURN_IF_ERROR(FlushBuffer());
    if (data.size() <= kBufferSize) {
      buffer_.append(data.data(), data.size());
      return Status::OK();
    }
    return WriteRaw(data.data(), data.size());
  }

  Status Flush() override { return FlushBuffer(); }

  Status Sync() override {
    APM_RETURN_IF_ERROR(FlushBuffer());
    if (fdatasync(fd_) != 0) {
      return PosixError("fdatasync " + path_, errno);
    }
    return Status::OK();
  }

  Status Close() override {
    Status s = FlushBuffer();
    if (close(fd_) != 0 && s.ok()) {
      s = PosixError("close " + path_, errno);
    }
    fd_ = -1;
    return s;
  }

  uint64_t Size() const override { return size_; }

 private:
  static constexpr size_t kBufferSize = 64 * 1024;

  Status FlushBuffer() {
    if (buffer_.empty()) return Status::OK();
    Status s = WriteRaw(buffer_.data(), buffer_.size());
    buffer_.clear();
    return s;
  }

  Status WriteRaw(const char* data, size_t n) {
    while (n > 0) {
      ssize_t w = write(fd_, data, n);
      if (w < 0) {
        if (errno == EINTR) continue;
        return PosixError("write " + path_, errno);
      }
      data += w;
      n -= static_cast<size_t>(w);
    }
    return Status::OK();
  }

  std::string path_;
  int fd_;
  uint64_t size_;
  std::string buffer_;
};

class PosixRandomAccessFile final : public RandomAccessFile {
 public:
  PosixRandomAccessFile(std::string path, int fd, uint64_t size)
      : path_(std::move(path)), fd_(fd), size_(size) {}

  ~PosixRandomAccessFile() override { close(fd_); }

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    return PreadFully(fd_, offset, n, result, scratch, path_);
  }

  uint64_t Size() const override { return size_; }

 private:
  std::string path_;
  int fd_;
  uint64_t size_;
};

class PosixRandomRWFile final : public RandomRWFile {
 public:
  PosixRandomRWFile(std::string path, int fd) : path_(std::move(path)), fd_(fd) {}

  ~PosixRandomRWFile() override { close(fd_); }

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    return PreadFully(fd_, offset, n, result, scratch, path_);
  }

  Status Write(uint64_t offset, const Slice& data) override {
    const char* p = data.data();
    size_t n = data.size();
    while (n > 0) {
      ssize_t w = pwrite(fd_, p, n, static_cast<off_t>(offset));
      if (w < 0) {
        if (errno == EINTR) continue;
        return PosixError("pwrite " + path_, errno);
      }
      p += w;
      offset += static_cast<uint64_t>(w);
      n -= static_cast<size_t>(w);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (fdatasync(fd_) != 0) {
      return PosixError("fdatasync " + path_, errno);
    }
    return Status::OK();
  }

  uint64_t Size() const override {
    struct stat st;
    if (fstat(fd_, &st) != 0) return 0;
    return static_cast<uint64_t>(st.st_size);
  }

 private:
  std::string path_;
  int fd_;
};

class PosixEnv final : public Env {
 public:
  Status NewWritableFile(const std::string& path,
                         std::unique_ptr<WritableFile>* file) override {
    int fd = open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) return PosixError("open " + path, errno);
    file->reset(new PosixWritableFile(path, fd, 0));
    return Status::OK();
  }

  Status NewAppendableFile(const std::string& path,
                           std::unique_ptr<WritableFile>* file) override {
    int fd = open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd < 0) return PosixError("open " + path, errno);
    struct stat st;
    uint64_t size = 0;
    if (fstat(fd, &st) == 0) size = static_cast<uint64_t>(st.st_size);
    file->reset(new PosixWritableFile(path, fd, size));
    return Status::OK();
  }

  Status NewRandomAccessFile(
      const std::string& path,
      std::unique_ptr<RandomAccessFile>* file) override {
    int fd = open(path.c_str(), O_RDONLY);
    if (fd < 0) return PosixError("open " + path, errno);
    struct stat st;
    if (fstat(fd, &st) != 0) {
      int err = errno;
      close(fd);
      return PosixError("fstat " + path, err);
    }
    file->reset(new PosixRandomAccessFile(path, fd,
                                          static_cast<uint64_t>(st.st_size)));
    return Status::OK();
  }

  Status NewRandomRWFile(const std::string& path,
                         std::unique_ptr<RandomRWFile>* file) override {
    int fd = open(path.c_str(), O_RDWR | O_CREAT, 0644);
    if (fd < 0) return PosixError("open " + path, errno);
    file->reset(new PosixRandomRWFile(path, fd));
    return Status::OK();
  }

  Status ReadFileToString(const std::string& path, std::string* data) override {
    data->clear();
    int fd = open(path.c_str(), O_RDONLY);
    if (fd < 0) return PosixError("open " + path, errno);
    char buf[8192];
    for (;;) {
      ssize_t r = read(fd, buf, sizeof(buf));
      if (r < 0) {
        if (errno == EINTR) continue;
        int err = errno;
        close(fd);
        return PosixError("read " + path, err);
      }
      if (r == 0) break;
      data->append(buf, static_cast<size_t>(r));
    }
    close(fd);
    return Status::OK();
  }

  Status WriteStringToFile(const std::string& path,
                           const Slice& data) override {
    std::unique_ptr<WritableFile> file;
    APM_RETURN_IF_ERROR(NewWritableFile(path, &file));
    APM_RETURN_IF_ERROR(file->Append(data));
    APM_RETURN_IF_ERROR(file->Sync());
    return file->Close();
  }

  bool FileExists(const std::string& path) override {
    return access(path.c_str(), F_OK) == 0;
  }

  Status GetFileSize(const std::string& path, uint64_t* size) override {
    struct stat st;
    if (stat(path.c_str(), &st) != 0) {
      return PosixError("stat " + path, errno);
    }
    *size = static_cast<uint64_t>(st.st_size);
    return Status::OK();
  }

  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* names) override {
    names->clear();
    DIR* d = opendir(dir.c_str());
    if (d == nullptr) return PosixError("opendir " + dir, errno);
    struct dirent* entry;
    while ((entry = readdir(d)) != nullptr) {
      std::string name = entry->d_name;
      if (name != "." && name != "..") names->push_back(name);
    }
    closedir(d);
    return Status::OK();
  }

  Status CreateDirIfMissing(const std::string& dir) override {
    // Create all missing components, mkdir -p style.
    std::string partial;
    size_t pos = 0;
    while (pos != std::string::npos) {
      pos = dir.find('/', pos + 1);
      partial = dir.substr(0, pos);
      if (partial.empty()) continue;
      if (mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) {
        return PosixError("mkdir " + partial, errno);
      }
    }
    return Status::OK();
  }

  Status RemoveFile(const std::string& path) override {
    if (unlink(path.c_str()) != 0) {
      return PosixError("unlink " + path, errno);
    }
    return Status::OK();
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (rename(from.c_str(), to.c_str()) != 0) {
      return PosixError("rename " + from, errno);
    }
    return Status::OK();
  }

  Status SyncDir(const std::string& dir) override {
    int fd = open(dir.c_str(), O_RDONLY);
    if (fd < 0) return PosixError("open " + dir, errno);
    Status s;
    if (fsync(fd) != 0) {
      s = PosixError("fsync " + dir, errno);
    }
    close(fd);
    return s;
  }

  Status RemoveDirRecursively(const std::string& dir) override {
    std::vector<std::string> children;
    Status s = GetChildren(dir, &children);
    if (s.IsNotFound() || s.IsIOError()) return Status::OK();
    for (const auto& child : children) {
      std::string path = dir + "/" + child;
      struct stat st;
      if (lstat(path.c_str(), &st) != 0) continue;
      if (S_ISDIR(st.st_mode)) {
        APM_RETURN_IF_ERROR(RemoveDirRecursively(path));
      } else {
        unlink(path.c_str());
      }
    }
    if (rmdir(dir.c_str()) != 0 && errno != ENOENT) {
      return PosixError("rmdir " + dir, errno);
    }
    return Status::OK();
  }

  Status GetDirectorySize(const std::string& dir, uint64_t* bytes) override {
    *bytes = 0;
    return AccumulateSize(dir, bytes);
  }

 private:
  Status AccumulateSize(const std::string& dir, uint64_t* bytes) {
    std::vector<std::string> children;
    APM_RETURN_IF_ERROR(GetChildren(dir, &children));
    for (const auto& child : children) {
      std::string path = dir + "/" + child;
      struct stat st;
      if (lstat(path.c_str(), &st) != 0) continue;
      if (S_ISDIR(st.st_mode)) {
        APM_RETURN_IF_ERROR(AccumulateSize(path, bytes));
      } else if (S_ISREG(st.st_mode)) {
        *bytes += static_cast<uint64_t>(st.st_size);
      }
    }
    return Status::OK();
  }
};

}  // namespace

void SetPosixPreadForTesting(PosixPreadFunc fn) {
  g_pread_hook.store(fn, std::memory_order_release);
}

Env* Env::Default() {
  static PosixEnv* env = new PosixEnv();
  return env;
}

}  // namespace apmbench
