#ifndef APMBENCH_COMMON_PROPERTIES_H_
#define APMBENCH_COMMON_PROPERTIES_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/status.h"

namespace apmbench {

/// A YCSB-style property bag: string keys to string values with typed,
/// defaulted getters. Workloads, stores, and benchmark harnesses are all
/// configured through Properties so any parameter can be set from the
/// command line (`key=value` arguments) or a properties file.
class Properties {
 public:
  void Set(const std::string& key, const std::string& value);

  bool Contains(const std::string& key) const;

  std::string GetString(const std::string& key,
                        const std::string& default_value = "") const;
  int64_t GetInt(const std::string& key, int64_t default_value = 0) const;
  double GetDouble(const std::string& key, double default_value = 0.0) const;
  bool GetBool(const std::string& key, bool default_value = false) const;

  /// Parses a single `key=value` token; returns InvalidArgument when there
  /// is no '=' separator.
  Status ParseArg(const std::string& arg);

  /// Parses a properties file: one `key=value` per line, '#' comments and
  /// blank lines ignored.
  Status LoadFile(const std::string& path);

  /// Merges `other` into this bag; existing keys are overwritten.
  void Merge(const Properties& other);

  const std::map<std::string, std::string>& map() const { return map_; }

 private:
  std::map<std::string, std::string> map_;
};

}  // namespace apmbench

#endif  // APMBENCH_COMMON_PROPERTIES_H_
