#include "common/group_commit.h"

#include <utility>

namespace apmbench {

GroupCommitLog::GroupCommitLog(std::unique_ptr<WritableFile> file)
    : file_(std::move(file)) {}

GroupCommitLog::~GroupCommitLog() {
  if (!closed_) {
    Status s = Close();  // best effort; errors already sticky in error_
    (void)s;
  }
}

GroupCommitLog::Ticket GroupCommitLog::Enqueue(const Slice& record,
                                               bool sync) {
  std::lock_guard<std::mutex> lock(mu_);
  pending_.append(record.data(), record.size());
  enqueued_ += record.size();
  pending_sync_ |= sync;
  stats_.appends++;
  return enqueued_;
}

Status GroupCommitLog::Commit(Ticket ticket) {
  std::unique_lock<std::mutex> lock(mu_);
  return CommitLocked(ticket, lock);
}

Status GroupCommitLog::CommitLocked(Ticket ticket,
                                    std::unique_lock<std::mutex>& lock) {
  for (;;) {
    if (committed_ >= ticket) return Status::OK();
    if (!error_.ok()) return error_;
    if (closed_) return Status::IOError("group-commit log closed");
    if (leader_active_) {
      // Another thread is doing I/O; by the time it finishes it will have
      // drained everything enqueued before it dropped the mutex — possibly
      // including this ticket. Re-check on wakeup.
      cv_.wait(lock);
      continue;
    }
    // Leader: drain everything staged so far (our record plus whatever
    // piled up behind the previous group) into one write + one flush/sync.
    leader_active_ = true;
    std::string batch = std::move(pending_);
    pending_.clear();
    const bool sync = pending_sync_;
    pending_sync_ = false;
    const uint64_t batch_end = enqueued_;
    lock.unlock();

    Status s;
    if (!batch.empty()) s = file_->Append(Slice(batch));
    if (s.ok()) s = sync ? file_->Sync() : file_->Flush();

    lock.lock();
    leader_active_ = false;
    stats_.groups++;
    if (sync) stats_.synced_groups++;
    if (s.ok()) {
      committed_ = batch_end;
    } else if (error_.ok()) {
      error_ = s;
    }
    cv_.notify_all();
  }
}

Status GroupCommitLog::Append(const Slice& record, bool sync) {
  std::unique_lock<std::mutex> lock(mu_);
  if (closed_) return Status::IOError("group-commit log closed");
  if (!error_.ok()) return error_;
  pending_.append(record.data(), record.size());
  enqueued_ += record.size();
  pending_sync_ |= sync;
  stats_.appends++;
  return CommitLocked(enqueued_, lock);
}

Status GroupCommitLog::Sync() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (closed_) return Status::IOError("group-commit log closed");
    if (!error_.ok()) return error_;
    if (leader_active_) {
      cv_.wait(lock);
      continue;
    }
    // Lead a forced sync round: drain whatever is staged and fsync even if
    // nothing was pending (earlier non-sync appends may only have reached
    // the OS page cache).
    leader_active_ = true;
    std::string batch = std::move(pending_);
    pending_.clear();
    pending_sync_ = false;
    const uint64_t batch_end = enqueued_;
    lock.unlock();

    Status s;
    if (!batch.empty()) s = file_->Append(Slice(batch));
    if (s.ok()) s = file_->Sync();

    lock.lock();
    leader_active_ = false;
    stats_.groups++;
    stats_.synced_groups++;
    if (s.ok()) {
      committed_ = batch_end;
    } else if (error_.ok()) {
      error_ = s;
    }
    cv_.notify_all();
    return s;
  }
}

Status GroupCommitLog::Close() {
  Status s = Sync();
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return s;
  closed_ = true;
  Status close_status = file_->Close();
  if (s.ok()) s = close_status;
  if (!s.ok() && error_.ok()) error_ = s;
  cv_.notify_all();
  return s;
}

uint64_t GroupCommitLog::Size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return file_->Size() + pending_.size();
}

GroupCommitLog::Stats GroupCommitLog::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace apmbench
