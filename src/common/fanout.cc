#include "common/fanout.h"

namespace apmbench {

int FanoutExecutor::DefaultPoolSize(int fan_out) {
  int n = fan_out - 1;
  if (n < 0) n = 0;
  if (n > 16) n = 16;
  return n;
}

FanoutExecutor::FanoutExecutor(int threads) {
  if (threads < 0) threads = 0;
  workers_.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; i++) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

FanoutExecutor::~FanoutExecutor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

bool FanoutExecutor::RunOne(Batch* batch) {
  const size_t i = batch->next.fetch_add(1, std::memory_order_relaxed);
  if (i >= batch->tasks.size()) return false;
  Status status = batch->tasks[i]();
  bool all_done = false;
  {
    std::lock_guard<std::mutex> lock(batch->mu);
    batch->statuses[i] = std::move(status);
    batch->completed++;
    all_done = batch->completed == batch->tasks.size();
  }
  if (all_done) batch->done_cv.notify_all();
  return true;
}

void FanoutExecutor::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&]() { return stopping_ || !queue_.empty(); });
      if (stopping_) return;
      batch = queue_.front();
    }
    // Help with the oldest batch until its tasks are all claimed, then
    // retire it from the queue (the claimers finish it; RunAll's caller
    // is the one waiting on completion).
    while (RunOne(batch.get())) {
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (!queue_.empty() && queue_.front() == batch) queue_.pop_front();
  }
}

Status FanoutExecutor::RunAll(std::vector<Task> tasks) {
  return RunAll(std::move(tasks), nullptr);
}

Status FanoutExecutor::RunAll(std::vector<Task> tasks,
                              std::vector<Status>* statuses) {
  if (statuses != nullptr) statuses->clear();
  if (tasks.empty()) return Status::OK();
  auto batch = std::make_shared<Batch>();
  batch->tasks = std::move(tasks);
  batch->statuses.resize(batch->tasks.size());
  if (batch->tasks.size() > 1 && !workers_.empty()) {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(batch);
    work_cv_.notify_all();
  }
  // The caller drains its own batch alongside the pool — no deadlock even
  // if every pool thread is stuck in someone else's tasks.
  while (RunOne(batch.get())) {
  }
  {
    std::unique_lock<std::mutex> lock(batch->mu);
    batch->done_cv.wait(
        lock, [&]() { return batch->completed == batch->tasks.size(); });
  }
  Status first;
  for (const Status& status : batch->statuses) {
    if (first.ok() && !status.ok()) first = status;
  }
  if (statuses != nullptr) *statuses = std::move(batch->statuses);
  return first;
}

}  // namespace apmbench
