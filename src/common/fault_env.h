#ifndef APMBENCH_COMMON_FAULT_ENV_H_
#define APMBENCH_COMMON_FAULT_ENV_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/env.h"

namespace apmbench {

/// Categories of mutating filesystem operations that FaultInjectionEnv
/// counts and can fail deterministically.
enum class FaultOp {
  kNewWritableFile = 0,  // also covers NewAppendableFile
  kAppend,
  kFlush,
  kSync,
  kClose,
  kRename,
  kRemove,
  kSyncDir,
};
constexpr int kNumFaultOps = 8;

/// An Env decorator for crash-recovery testing, modeled on the fault
/// injection environments of LevelDB/RocksDB. It forwards every call to a
/// target Env (usually Env::Default()) while
///
///  (a) tracking, per file written through it, how many bytes have been
///      `Sync`ed — so `DropUnsyncedData()` can rewind the directory to a
///      state a real disk may present after power loss;
///  (b) injecting deterministic `IOError`s into the Nth call of a chosen
///      operation category (`FailAfter`), to drive error paths; and
///  (c) counting calls per category, for I/O accounting in tests and
///      benchmarks.
///
/// Thread-safe: the engines issue Env calls from foreground and background
/// threads concurrently.
class FaultInjectionEnv final : public Env {
 public:
  /// Does not take ownership of `target`, which must outlive this Env.
  explicit FaultInjectionEnv(Env* target);

  // --- crash simulation ------------------------------------------------

  /// While inactive, every mutating operation fails with IOError and
  /// leaves the disk untouched: the instant of power loss. Read
  /// operations keep working so post-mortem inspection is possible.
  void SetFilesystemActive(bool active);
  bool IsFilesystemActive() const;

  /// Truncates every file written through this Env back to its last
  /// synced size (to its size at open for pre-existing appendable files
  /// that were never synced). Call with the writers destroyed or the
  /// filesystem inactive; then reopen the database to simulate a
  /// post-power-loss recovery.
  Status DropUnsyncedData();

  /// Unlinks files created (or renamed into place) since the last
  /// `SyncDir` of their parent directory: without a directory fsync, even
  /// a synced file's directory entry may not survive power loss.
  Status RemoveFilesCreatedSinceLastDirSync();

  /// Forgets all per-file tracking and clears injected faults; counters
  /// are kept. Call between simulated crash cycles.
  void ResetState();

  // --- deterministic error injection -----------------------------------

  /// The next `n` calls of `op` succeed; every later call fails with
  /// IOError until `ClearFault(op)`. `FailAfter(op, 0)` fails the next
  /// call. Failures are sticky, modeling a device that stays broken.
  void FailAfter(FaultOp op, uint64_t n);
  void ClearFault(FaultOp op);
  void ClearAllFaults();

  // --- I/O accounting --------------------------------------------------

  /// Number of calls observed in `op`'s category (including failed ones).
  uint64_t OpCount(FaultOp op) const;
  void ResetCounters();

  /// Bytes of `path` known to be durable (synced through this Env).
  uint64_t SyncedBytes(const std::string& path) const;

  // --- Env interface ---------------------------------------------------

  Status NewWritableFile(const std::string& path,
                         std::unique_ptr<WritableFile>* file) override;
  Status NewAppendableFile(const std::string& path,
                           std::unique_ptr<WritableFile>* file) override;
  Status NewRandomAccessFile(const std::string& path,
                             std::unique_ptr<RandomAccessFile>* file) override;
  Status NewRandomRWFile(const std::string& path,
                         std::unique_ptr<RandomRWFile>* file) override;
  Status ReadFileToString(const std::string& path, std::string* data) override;
  Status WriteStringToFile(const std::string& path, const Slice& data) override;
  bool FileExists(const std::string& path) override;
  Status GetFileSize(const std::string& path, uint64_t* size) override;
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* names) override;
  Status CreateDirIfMissing(const std::string& dir) override;
  Status RemoveFile(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status SyncDir(const std::string& dir) override;
  Status RemoveDirRecursively(const std::string& dir) override;
  Status GetDirectorySize(const std::string& dir, uint64_t* bytes) override;

 private:
  friend class TrackedWritableFile;

  struct FileState {
    /// Bytes guaranteed on the medium (synced, or present at open of an
    /// appendable file).
    uint64_t synced_size = 0;
    /// True until the parent directory is SyncDir'ed.
    bool created_since_dir_sync = true;
  };

  struct Fault {
    bool armed = false;
    uint64_t remaining = 0;  // calls that still succeed once armed
  };

  /// Counts the call and returns the error to inject, if any. Every
  /// mutating operation funnels through here.
  Status Account(FaultOp op);

  void NoteSynced(const std::string& path, uint64_t size);
  void ForgetFile(const std::string& path);

  Env* const target_;
  mutable std::mutex mu_;
  bool active_ = true;
  std::map<std::string, FileState> files_;
  Fault faults_[kNumFaultOps];
  uint64_t counts_[kNumFaultOps] = {};
};

}  // namespace apmbench

#endif  // APMBENCH_COMMON_FAULT_ENV_H_
