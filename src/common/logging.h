#ifndef APMBENCH_COMMON_LOGGING_H_
#define APMBENCH_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

/// Minimal logging used for operational messages from engines and the
/// benchmark driver. Not on any hot path.
#define APM_LOG_INFO(...)                  \
  do {                                     \
    fprintf(stderr, "[info ] ");           \
    fprintf(stderr, __VA_ARGS__);          \
    fprintf(stderr, "\n");                 \
  } while (0)

#define APM_LOG_WARN(...)                  \
  do {                                     \
    fprintf(stderr, "[warn ] ");           \
    fprintf(stderr, __VA_ARGS__);          \
    fprintf(stderr, "\n");                 \
  } while (0)

#define APM_LOG_ERROR(...)                 \
  do {                                     \
    fprintf(stderr, "[error] ");           \
    fprintf(stderr, __VA_ARGS__);          \
    fprintf(stderr, "\n");                 \
  } while (0)

/// Fatal invariant violation: logs and aborts. Used for conditions that
/// indicate a programming error, never for expected runtime failures.
#define APM_CHECK(cond)                                               \
  do {                                                                \
    if (!(cond)) {                                                    \
      fprintf(stderr, "[fatal] check failed at %s:%d: %s\n", __FILE__, \
              __LINE__, #cond);                                       \
      abort();                                                        \
    }                                                                 \
  } while (0)

#endif  // APMBENCH_COMMON_LOGGING_H_
