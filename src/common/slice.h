#ifndef APMBENCH_COMMON_SLICE_H_
#define APMBENCH_COMMON_SLICE_H_

#include <cassert>
#include <cstddef>
#include <cstring>
#include <string>
#include <string_view>

namespace apmbench {

/// A non-owning view of a byte range, in the style of leveldb::Slice.
/// The referenced storage must outlive the Slice.
class Slice {
 public:
  Slice() : data_(""), size_(0) {}
  Slice(const char* data, size_t size) : data_(data), size_(size) {}
  Slice(const std::string& s) : data_(s.data()), size_(s.size()) {}
  Slice(const char* s) : data_(s), size_(strlen(s)) {}
  Slice(std::string_view sv) : data_(sv.data()), size_(sv.size()) {}

  const char* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  char operator[](size_t n) const {
    assert(n < size_);
    return data_[n];
  }

  void Clear() {
    data_ = "";
    size_ = 0;
  }

  /// Drops the first `n` bytes from this slice.
  void RemovePrefix(size_t n) {
    assert(n <= size_);
    data_ += n;
    size_ -= n;
  }

  std::string ToString() const { return std::string(data_, size_); }
  std::string_view ToView() const { return std::string_view(data_, size_); }

  /// Three-way comparison: <0, ==0, >0 like memcmp.
  int Compare(const Slice& other) const {
    const size_t min_len = size_ < other.size_ ? size_ : other.size_;
    int r = memcmp(data_, other.data_, min_len);
    if (r == 0) {
      if (size_ < other.size_) {
        r = -1;
      } else if (size_ > other.size_) {
        r = +1;
      }
    }
    return r;
  }

  bool StartsWith(const Slice& prefix) const {
    return size_ >= prefix.size_ &&
           memcmp(data_, prefix.data_, prefix.size_) == 0;
  }

 private:
  const char* data_;
  size_t size_;
};

inline bool operator==(const Slice& a, const Slice& b) {
  return a.size() == b.size() && memcmp(a.data(), b.data(), a.size()) == 0;
}

inline bool operator!=(const Slice& a, const Slice& b) { return !(a == b); }

inline bool operator<(const Slice& a, const Slice& b) {
  return a.Compare(b) < 0;
}

}  // namespace apmbench

#endif  // APMBENCH_COMMON_SLICE_H_
