#ifndef APMBENCH_COMMON_HASH_H_
#define APMBENCH_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>

#include "common/slice.h"

namespace apmbench {

/// MurmurHash2, 64-bit variant "64A" (Austin Appleby). This is the exact
/// algorithm behind Jedis' `Hashing.MURMUR_HASH`, which the paper's sharded
/// Redis client used; `cluster::JedisShardRing` depends on it to reproduce
/// the key imbalance the paper observed.
uint64_t MurmurHash64A(const void* key, size_t len, uint64_t seed);

/// MurmurHash3 x86 32-bit. Used for in-memory hash tables and bloom filters.
uint32_t MurmurHash3_32(const void* key, size_t len, uint32_t seed);

/// FNV-1a 64-bit, used by the YCSB key chooser (matches YCSB's FNVhash64).
uint64_t FnvHash64(uint64_t value);

inline uint32_t HashSlice(const Slice& s, uint32_t seed = 0xbc9f1d34) {
  return MurmurHash3_32(s.data(), s.size(), seed);
}

}  // namespace apmbench

#endif  // APMBENCH_COMMON_HASH_H_
