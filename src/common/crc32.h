#ifndef APMBENCH_COMMON_CRC32_H_
#define APMBENCH_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace apmbench {

/// CRC-32C (Castagnoli) used to checksum log records, SSTable blocks, and
/// B+tree pages. Software (table-driven) implementation.
uint32_t Crc32c(const char* data, size_t n);

/// Extends `init_crc` (a previous Crc32c result) over `data[0, n)`.
uint32_t Crc32cExtend(uint32_t init_crc, const char* data, size_t n);

/// Masked CRC as stored on disk. Storing raw CRCs of data that itself
/// embeds CRCs is error prone, so on-disk checksums are masked.
uint32_t MaskCrc(uint32_t crc);
uint32_t UnmaskCrc(uint32_t masked);

}  // namespace apmbench

#endif  // APMBENCH_COMMON_CRC32_H_
