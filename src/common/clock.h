#ifndef APMBENCH_COMMON_CLOCK_H_
#define APMBENCH_COMMON_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace apmbench {

/// Monotonic time in microseconds; the unit used by all latency
/// measurements in the benchmark framework.
inline uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Wall-clock seconds since the epoch, for APM measurement timestamps.
inline uint64_t NowUnixSeconds() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::seconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace apmbench

#endif  // APMBENCH_COMMON_CLOCK_H_
