#include "common/fault_env.h"

#include <utility>

namespace apmbench {

/// WritableFile wrapper that reports synced sizes back to the owning
/// FaultInjectionEnv and routes faults through it. At namespace scope so
/// the friend declaration in FaultInjectionEnv applies.
class TrackedWritableFile final : public WritableFile {
 public:
  TrackedWritableFile(FaultInjectionEnv* env, std::string path,
                      std::unique_ptr<WritableFile> inner)
      : env_(env), path_(std::move(path)), inner_(std::move(inner)) {}

  ~TrackedWritableFile() override = default;

  Status Append(const Slice& data) override {
    APM_RETURN_IF_ERROR(env_->Account(FaultOp::kAppend));
    return inner_->Append(data);
  }

  Status Flush() override {
    APM_RETURN_IF_ERROR(env_->Account(FaultOp::kFlush));
    return inner_->Flush();
  }

  Status Sync() override {
    APM_RETURN_IF_ERROR(env_->Account(FaultOp::kSync));
    APM_RETURN_IF_ERROR(inner_->Sync());
    env_->NoteSynced(path_, inner_->Size());
    return Status::OK();
  }

  Status Close() override {
    APM_RETURN_IF_ERROR(env_->Account(FaultOp::kClose));
    // Close flushes to the OS page cache, not the medium: the bytes still
    // count as unsynced and are lost by DropUnsyncedData().
    return inner_->Close();
  }

  uint64_t Size() const override { return inner_->Size(); }

 private:
  FaultInjectionEnv* const env_;
  const std::string path_;
  std::unique_ptr<WritableFile> inner_;
};

FaultInjectionEnv::FaultInjectionEnv(Env* target) : target_(target) {}

Status FaultInjectionEnv::Account(FaultOp op) {
  std::lock_guard<std::mutex> lock(mu_);
  counts_[static_cast<int>(op)]++;
  if (!active_) {
    return Status::IOError("fault_env: filesystem inactive (simulated crash)");
  }
  Fault& fault = faults_[static_cast<int>(op)];
  if (fault.armed) {
    if (fault.remaining == 0) {
      return Status::IOError("fault_env: injected fault");
    }
    fault.remaining--;
  }
  return Status::OK();
}

void FaultInjectionEnv::SetFilesystemActive(bool active) {
  std::lock_guard<std::mutex> lock(mu_);
  active_ = active;
}

bool FaultInjectionEnv::IsFilesystemActive() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_;
}

Status FaultInjectionEnv::DropUnsyncedData() {
  std::map<std::string, FileState> files;
  {
    std::lock_guard<std::mutex> lock(mu_);
    files = files_;
  }
  for (const auto& [path, state] : files) {
    if (!target_->FileExists(path)) continue;
    uint64_t size = 0;
    APM_RETURN_IF_ERROR(target_->GetFileSize(path, &size));
    if (size <= state.synced_size) continue;
    // Rewrite the synced prefix through the target Env; this keeps the
    // wrapper independent of any truncate syscall the Env doesn't expose.
    std::string contents;
    APM_RETURN_IF_ERROR(target_->ReadFileToString(path, &contents));
    contents.resize(state.synced_size);
    APM_RETURN_IF_ERROR(target_->WriteStringToFile(path, Slice(contents)));
  }
  return Status::OK();
}

Status FaultInjectionEnv::RemoveFilesCreatedSinceLastDirSync() {
  std::vector<std::string> doomed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [path, state] : files_) {
      if (state.created_since_dir_sync) doomed.push_back(path);
    }
    for (const auto& path : doomed) files_.erase(path);
  }
  for (const auto& path : doomed) {
    if (target_->FileExists(path)) {
      APM_RETURN_IF_ERROR(target_->RemoveFile(path));
    }
  }
  return Status::OK();
}

void FaultInjectionEnv::ResetState() {
  std::lock_guard<std::mutex> lock(mu_);
  active_ = true;
  files_.clear();
  for (Fault& fault : faults_) fault = Fault{};
}

void FaultInjectionEnv::FailAfter(FaultOp op, uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  faults_[static_cast<int>(op)] = Fault{true, n};
}

void FaultInjectionEnv::ClearFault(FaultOp op) {
  std::lock_guard<std::mutex> lock(mu_);
  faults_[static_cast<int>(op)] = Fault{};
}

void FaultInjectionEnv::ClearAllFaults() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Fault& fault : faults_) fault = Fault{};
}

uint64_t FaultInjectionEnv::OpCount(FaultOp op) const {
  std::lock_guard<std::mutex> lock(mu_);
  return counts_[static_cast<int>(op)];
}

void FaultInjectionEnv::ResetCounters() {
  std::lock_guard<std::mutex> lock(mu_);
  for (uint64_t& count : counts_) count = 0;
}

uint64_t FaultInjectionEnv::SyncedBytes(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  return it != files_.end() ? it->second.synced_size : 0;
}

void FaultInjectionEnv::NoteSynced(const std::string& path, uint64_t size) {
  std::lock_guard<std::mutex> lock(mu_);
  FileState& state = files_[path];
  if (size > state.synced_size) state.synced_size = size;
}

void FaultInjectionEnv::ForgetFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  files_.erase(path);
}

Status FaultInjectionEnv::NewWritableFile(
    const std::string& path, std::unique_ptr<WritableFile>* file) {
  APM_RETURN_IF_ERROR(Account(FaultOp::kNewWritableFile));
  std::unique_ptr<WritableFile> inner;
  APM_RETURN_IF_ERROR(target_->NewWritableFile(path, &inner));
  {
    std::lock_guard<std::mutex> lock(mu_);
    files_[path] = FileState{0, true};
  }
  file->reset(new TrackedWritableFile(this, path, std::move(inner)));
  return Status::OK();
}

Status FaultInjectionEnv::NewAppendableFile(
    const std::string& path, std::unique_ptr<WritableFile>* file) {
  APM_RETURN_IF_ERROR(Account(FaultOp::kNewWritableFile));
  const bool existed = target_->FileExists(path);
  std::unique_ptr<WritableFile> inner;
  APM_RETURN_IF_ERROR(target_->NewAppendableFile(path, &inner));
  {
    std::lock_guard<std::mutex> lock(mu_);
    FileState& state = files_[path];
    if (existed) {
      // Pre-existing bytes are assumed durable; only new appends are at
      // risk until the next Sync.
      if (inner->Size() > state.synced_size) state.synced_size = inner->Size();
    } else {
      state = FileState{0, true};
    }
  }
  file->reset(new TrackedWritableFile(this, path, std::move(inner)));
  return Status::OK();
}

Status FaultInjectionEnv::NewRandomAccessFile(
    const std::string& path, std::unique_ptr<RandomAccessFile>* file) {
  return target_->NewRandomAccessFile(path, file);
}

Status FaultInjectionEnv::NewRandomRWFile(const std::string& path,
                                          std::unique_ptr<RandomRWFile>* file) {
  return target_->NewRandomRWFile(path, file);
}

Status FaultInjectionEnv::ReadFileToString(const std::string& path,
                                           std::string* data) {
  return target_->ReadFileToString(path, data);
}

Status FaultInjectionEnv::WriteStringToFile(const std::string& path,
                                            const Slice& data) {
  // Route through our own writable file so the bytes are tracked and the
  // append/sync faults apply (the target's implementation would bypass
  // both).
  std::unique_ptr<WritableFile> file;
  APM_RETURN_IF_ERROR(NewWritableFile(path, &file));
  APM_RETURN_IF_ERROR(file->Append(data));
  APM_RETURN_IF_ERROR(file->Sync());
  return file->Close();
}

bool FaultInjectionEnv::FileExists(const std::string& path) {
  return target_->FileExists(path);
}

Status FaultInjectionEnv::GetFileSize(const std::string& path,
                                      uint64_t* size) {
  return target_->GetFileSize(path, size);
}

Status FaultInjectionEnv::GetChildren(const std::string& dir,
                                      std::vector<std::string>* names) {
  return target_->GetChildren(dir, names);
}

Status FaultInjectionEnv::CreateDirIfMissing(const std::string& dir) {
  if (!IsFilesystemActive()) {
    return Status::IOError("fault_env: filesystem inactive (simulated crash)");
  }
  return target_->CreateDirIfMissing(dir);
}

Status FaultInjectionEnv::RemoveFile(const std::string& path) {
  APM_RETURN_IF_ERROR(Account(FaultOp::kRemove));
  APM_RETURN_IF_ERROR(target_->RemoveFile(path));
  ForgetFile(path);
  return Status::OK();
}

Status FaultInjectionEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  APM_RETURN_IF_ERROR(Account(FaultOp::kRename));
  APM_RETURN_IF_ERROR(target_->RenameFile(from, to));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(from);
  if (it != files_.end()) {
    FileState state = it->second;
    files_.erase(it);
    // The new directory entry is only durable after the next SyncDir.
    state.created_since_dir_sync = true;
    files_[to] = state;
  } else {
    files_.erase(to);
  }
  return Status::OK();
}

Status FaultInjectionEnv::SyncDir(const std::string& dir) {
  APM_RETURN_IF_ERROR(Account(FaultOp::kSyncDir));
  APM_RETURN_IF_ERROR(target_->SyncDir(dir));
  std::lock_guard<std::mutex> lock(mu_);
  const std::string prefix = dir + "/";
  for (auto& [path, state] : files_) {
    if (path.rfind(prefix, 0) == 0 &&
        path.find('/', prefix.size()) == std::string::npos) {
      state.created_since_dir_sync = false;
    }
  }
  return Status::OK();
}

Status FaultInjectionEnv::RemoveDirRecursively(const std::string& dir) {
  if (!IsFilesystemActive()) {
    return Status::IOError("fault_env: filesystem inactive (simulated crash)");
  }
  Status s = target_->RemoveDirRecursively(dir);
  if (s.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    const std::string prefix = dir + "/";
    for (auto it = files_.begin(); it != files_.end();) {
      if (it->first.rfind(prefix, 0) == 0) {
        it = files_.erase(it);
      } else {
        ++it;
      }
    }
  }
  return s;
}

Status FaultInjectionEnv::GetDirectorySize(const std::string& dir,
                                           uint64_t* bytes) {
  return target_->GetDirectorySize(dir, bytes);
}

}  // namespace apmbench
