#ifndef APMBENCH_COMMON_FANOUT_H_
#define APMBENCH_COMMON_FANOUT_H_

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"

namespace apmbench {

/// A fixed thread pool for scatter-gather fan-out: the store adapters use
/// it to issue one sub-request per node of the simulated cluster in
/// parallel (cross-shard scans, replica writes) instead of walking the
/// ring serially.
///
/// RunAll(tasks) runs every task and blocks until all complete, returning
/// the first non-OK Status in task order (other tasks still run to
/// completion, matching how a client must drain every outstanding RPC).
/// The *calling thread participates*: it claims tasks from the same batch
/// it submitted, so RunAll can never deadlock — even with a pool of
/// size 0, or with every pool thread busy inside another caller's batch,
/// the caller alone drains its own work. Tasks must not call RunAll on
/// the same executor recursively from a pool thread.
///
/// Thread-safety: RunAll may be called from any number of threads
/// concurrently; batches share the pool fairly (workers claim one task at
/// a time from the oldest unfinished batch).
class FanoutExecutor {
 public:
  using Task = std::function<Status()>;

  /// Spawns exactly `threads` pool threads (clamped to >= 0) in addition
  /// to the participating callers; 0 is valid and makes RunAll purely
  /// caller-driven.
  explicit FanoutExecutor(int threads);
  ~FanoutExecutor();

  /// Pool size that lets one caller fan out to `fan_out` nodes fully in
  /// parallel: fan_out - 1 threads, capped at 16.
  static int DefaultPoolSize(int fan_out);

  FanoutExecutor(const FanoutExecutor&) = delete;
  FanoutExecutor& operator=(const FanoutExecutor&) = delete;

  Status RunAll(std::vector<Task> tasks);

  /// Like RunAll, but additionally reports every task's own Status in
  /// task order through `statuses` (resized to tasks.size()). This is
  /// how replica-aware callers distinguish "all acked" from "partially
  /// acked": the collapsed first-error return hides which replicas kept
  /// the write.
  Status RunAll(std::vector<Task> tasks, std::vector<Status>* statuses);

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  struct Batch {
    std::vector<Task> tasks;
    std::atomic<size_t> next{0};  // next unclaimed task index
    std::vector<Status> statuses;
    std::mutex mu;
    std::condition_variable done_cv;
    size_t completed = 0;  // guarded by mu
  };

  /// Claims and runs one task of `batch`; returns false when every task
  /// is already claimed.
  static bool RunOne(Batch* batch);

  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<std::shared_ptr<Batch>> queue_;  // unfinished batches
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// K-way merge of sorted runs: emits the up-to-`count` globally smallest
/// elements (by `get_key`, ascending) into *out, consuming each run only
/// as far as needed — the fix for the cross-shard scan over-fetch, and
/// O(count · log k) instead of sort-everything's O(n log n). Each input
/// run must itself be sorted with unique keys. With `dedup` set, a key
/// present in several runs (replicas) is emitted once, from the
/// lowest-indexed run holding it. Runs are consumed destructively
/// (elements are moved out).
template <typename T, typename GetKey>
void MergeSortedRuns(std::vector<std::vector<T>>* runs, size_t count,
                     bool dedup, GetKey get_key, std::vector<T>* out) {
  // (key, run index) pairs, heap-ordered so the smallest key — and on
  // ties the lowest run — pops first.
  struct Cursor {
    size_t run;
    size_t pos;
  };
  std::vector<Cursor> heap;
  heap.reserve(runs->size());
  auto greater = [&](const Cursor& a, const Cursor& b) {
    const auto& ka = get_key((*runs)[a.run][a.pos]);
    const auto& kb = get_key((*runs)[b.run][b.pos]);
    if (ka != kb) return ka > kb;
    return a.run > b.run;
  };
  for (size_t r = 0; r < runs->size(); r++) {
    if (!(*runs)[r].empty()) heap.push_back(Cursor{r, 0});
  }
  std::make_heap(heap.begin(), heap.end(), greater);

  bool have_last = false;
  std::string last_key;
  while (!heap.empty() && out->size() < count) {
    std::pop_heap(heap.begin(), heap.end(), greater);
    Cursor cur = heap.back();
    heap.pop_back();
    T& element = (*runs)[cur.run][cur.pos];
    if (!dedup || !have_last || get_key(element) != last_key) {
      if (dedup) {
        last_key = get_key(element);
        have_last = true;
      }
      out->push_back(std::move(element));
    }
    if (++cur.pos < (*runs)[cur.run].size()) {
      heap.push_back(cur);
      std::push_heap(heap.begin(), heap.end(), greater);
    }
  }
}

}  // namespace apmbench

#endif  // APMBENCH_COMMON_FANOUT_H_
