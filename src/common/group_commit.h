#ifndef APMBENCH_COMMON_GROUP_COMMIT_H_
#define APMBENCH_COMMON_GROUP_COMMIT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "common/env.h"
#include "common/slice.h"
#include "common/status.h"

namespace apmbench {

/// Lock-free partition-claim bitmap for one group-commit apply fan-out:
/// a committed group's work is split into `num_partitions` disjoint
/// sub-tasks (e.g. one per memtable shard), and the group's writer
/// threads — leader and followers alike — race to claim them, each
/// partition going to exactly one thread. The thread whose Finish() call
/// retires the last partition learns it was last (return value true) and
/// publishes the group; the acquire/release pair on the internal counter
/// guarantees it observes every other claimer's writes first.
///
/// Reusable per group: Reset() rearms the set. Not reusable while a
/// fan-out is in flight.
class ShardClaimSet {
 public:
  static constexpr int kMaxPartitions = 64;

  explicit ShardClaimSet(int num_partitions = 0) { Reset(num_partitions); }

  ShardClaimSet(const ShardClaimSet&) = delete;
  ShardClaimSet& operator=(const ShardClaimSet&) = delete;

  /// Rearms the set for `num_partitions` sub-tasks (clamped to
  /// [0, kMaxPartitions]). Callers must ensure no Claim/Finish race with
  /// the Reset itself.
  void Reset(int num_partitions) {
    if (num_partitions < 0) num_partitions = 0;
    if (num_partitions > kMaxPartitions) num_partitions = kMaxPartitions;
    num_partitions_ = num_partitions;
    claimed_.store(0, std::memory_order_relaxed);
    remaining_.store(num_partitions, std::memory_order_relaxed);
  }

  int num_partitions() const { return num_partitions_; }

  /// Claims the lowest unclaimed partition into `*partition`; returns
  /// false once every partition is claimed. Safe to call from any number
  /// of threads.
  bool Claim(int* partition) {
    uint64_t bits = claimed_.load(std::memory_order_relaxed);
    for (;;) {
      uint64_t unclaimed = ~bits;
      if (num_partitions_ < kMaxPartitions) {
        unclaimed &= (uint64_t{1} << num_partitions_) - 1;
      }
      if (unclaimed == 0) return false;
      const int bit = __builtin_ctzll(unclaimed);
      if (claimed_.compare_exchange_weak(bits, bits | (uint64_t{1} << bit),
                                         std::memory_order_acq_rel,
                                         std::memory_order_relaxed)) {
        *partition = bit;
        return true;
      }
      // `bits` was refreshed by the failed CAS; retry against it.
    }
  }

  /// Marks one claimed partition's work complete. Returns true for
  /// exactly one caller: the one that retired the final partition, which
  /// (by the acquire side of the RMW) observes every earlier Finish
  /// caller's writes and should publish the group.
  bool Finish() {
    return remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1;
  }

 private:
  std::atomic<uint64_t> claimed_{0};
  std::atomic<int> remaining_{0};
  int num_partitions_ = 0;
};

/// Group-committed append log: many threads append framed records, one
/// leader drains everything queued and issues a single WritableFile::Append
/// plus a single Flush/Sync for the whole group. This is the classic
/// group-commit optimization (InnoDB binlog, Cassandra's batched commit
/// log): under concurrency the fsync cost is amortized across every writer
/// that queued while the previous sync was in flight.
///
/// Two usage shapes:
///  - `Append(record, sync)` — enqueue and wait until the record is
///    durable per `sync` (Flush when false, fsync when true).
///  - `Enqueue(record, sync)` then `Commit(ticket)` — engines that must
///    order log records consistently with an in-memory structure call
///    Enqueue while still holding their write lock (cheap: one buffer
///    append under this class's short internal mutex), drop the lock, and
///    Commit outside it so the I/O never blocks readers or other writers'
///    in-memory work.
///
/// Errors are sticky: once an Append/Flush/Sync fails, every subsequent
/// commit fails with the same status (the caller's engine is expected to
/// fence itself, as a torn log tail must not keep growing).
class GroupCommitLog {
 public:
  /// A ticket identifies a log prefix; committing it makes every record
  /// enqueued up to and including the ticket durable.
  using Ticket = uint64_t;

  explicit GroupCommitLog(std::unique_ptr<WritableFile> file);
  ~GroupCommitLog();

  GroupCommitLog(const GroupCommitLog&) = delete;
  GroupCommitLog& operator=(const GroupCommitLog&) = delete;

  /// Stages `record` for the next group; returns a ticket to pass to
  /// Commit. Never blocks on I/O.
  Ticket Enqueue(const Slice& record, bool sync);

  /// Blocks until every record up to `ticket` is written and flushed (or
  /// fsynced if any member of its group requested sync). One caller acts
  /// as leader and performs the I/O for the whole group.
  Status Commit(Ticket ticket);

  /// Enqueue + Commit in one call.
  Status Append(const Slice& record, bool sync);

  /// Forces an fsync of everything enqueued so far.
  Status Sync();

  /// Flushes, syncs, and closes the underlying file.
  Status Close();

  /// Bytes accepted into the log (enqueued, not necessarily durable yet).
  uint64_t Size() const;

  struct Stats {
    uint64_t appends = 0;        // records enqueued
    uint64_t groups = 0;         // leader I/O rounds
    uint64_t synced_groups = 0;  // rounds that ended in an fsync
  };
  Stats GetStats() const;

 private:
  // Requires mu_ held; drains pending_ as leader until `ticket` durable.
  Status CommitLocked(Ticket ticket, std::unique_lock<std::mutex>& lock);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unique_ptr<WritableFile> file_;
  std::string pending_;        // staged records not yet written
  bool pending_sync_ = false;  // someone in pending_ wants fsync
  uint64_t enqueued_ = 0;      // total bytes ever enqueued
  uint64_t committed_ = 0;     // total bytes durable per their sync flag
  bool leader_active_ = false;
  bool closed_ = false;
  Status error_;  // sticky
  Stats stats_;
};

}  // namespace apmbench

#endif  // APMBENCH_COMMON_GROUP_COMMIT_H_
