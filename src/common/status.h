#ifndef APMBENCH_COMMON_STATUS_H_
#define APMBENCH_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace apmbench {

/// Error handling in APMBench follows the Status idiom used by storage
/// engines such as RocksDB: no exceptions are thrown; fallible operations
/// return a `Status` (or a `Result<T>`, see below) that callers must check.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kNotFound = 1,
    kCorruption = 2,
    kInvalidArgument = 3,
    kIOError = 4,
    kNotSupported = 5,
    kBusy = 6,
    kAborted = 7,
  };

  /// Constructs an OK status.
  Status() : code_(Code::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg = "") {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg = "") {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status InvalidArgument(std::string msg = "") {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg = "") {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status NotSupported(std::string msg = "") {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status Busy(std::string msg = "") {
    return Status(Code::kBusy, std::move(msg));
  }
  static Status Aborted(std::string msg = "") {
    return Status(Code::kAborted, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsBusy() const { return code_ == Code::kBusy; }
  bool IsAborted() const { return code_ == Code::kAborted; }

  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable representation, e.g. "IOError: open failed".
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

/// A value-or-error holder, analogous to absl::StatusOr. The value is only
/// accessible when `ok()` is true.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or from an error status keeps call
  /// sites terse (`return 42;` / `return Status::NotFound();`).
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  Result(Status status) : status_(std::move(status)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return value_; }
  T& value() & { return value_; }
  T&& value() && { return std::move(value_); }

  const T& operator*() const& { return value_; }
  T& operator*() & { return value_; }
  const T* operator->() const { return &value_; }
  T* operator->() { return &value_; }

 private:
  Status status_;
  T value_{};
};

/// Propagates a non-OK status to the caller. Usable in any function that
/// returns `Status`.
#define APM_RETURN_IF_ERROR(expr)                 \
  do {                                            \
    ::apmbench::Status _st = (expr);              \
    if (!_st.ok()) return _st;                    \
  } while (0)

}  // namespace apmbench

#endif  // APMBENCH_COMMON_STATUS_H_
