#ifndef APMBENCH_COMMON_ENV_H_
#define APMBENCH_COMMON_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"

namespace apmbench {

/// Test seam: when non-null, the POSIX Env issues positional reads through
/// this function instead of ::pread, so EINTR and short-read handling can
/// be exercised deterministically (a signal-heavy process sharing the
/// address space — e.g. the network server — makes both real). Production
/// code leaves it null; tests must restore the null hook when done.
using PosixPreadFunc = long (*)(int fd, void* buf, unsigned long count,
                                int64_t offset);
void SetPosixPreadForTesting(PosixPreadFunc fn);

/// Append-only file used for logs (WAL, commit log, binlog, AOF) and
/// SSTable construction. Buffered; `Sync` flushes to the OS and fsyncs.
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status Append(const Slice& data) = 0;
  virtual Status Flush() = 0;
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
  virtual uint64_t Size() const = 0;
};

/// Positional-read file for SSTables and B+tree page files.
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;
  /// Reads up to `n` bytes at `offset` into `scratch`, pointing `*result`
  /// at the bytes read (may be fewer than n at end of file).
  virtual Status Read(uint64_t offset, size_t n, Slice* result,
                      char* scratch) const = 0;
  virtual uint64_t Size() const = 0;
};

/// Read/write file with positional access, used by the B+tree pager.
class RandomRWFile {
 public:
  virtual ~RandomRWFile() = default;
  virtual Status Read(uint64_t offset, size_t n, Slice* result,
                      char* scratch) const = 0;
  virtual Status Write(uint64_t offset, const Slice& data) = 0;
  virtual Status Sync() = 0;
  virtual uint64_t Size() const = 0;
};

/// Minimal filesystem abstraction (POSIX-backed). Keeping all file access
/// behind Env makes the engines testable and the I/O accounting visible.
class Env {
 public:
  /// The process-wide default POSIX environment.
  static Env* Default();

  virtual ~Env() = default;

  virtual Status NewWritableFile(const std::string& path,
                                 std::unique_ptr<WritableFile>* file) = 0;
  /// Opens an existing file for appending (creating it if absent).
  virtual Status NewAppendableFile(const std::string& path,
                                   std::unique_ptr<WritableFile>* file) = 0;
  virtual Status NewRandomAccessFile(
      const std::string& path, std::unique_ptr<RandomAccessFile>* file) = 0;
  virtual Status NewRandomRWFile(const std::string& path,
                                 std::unique_ptr<RandomRWFile>* file) = 0;

  virtual Status ReadFileToString(const std::string& path,
                                  std::string* data) = 0;
  virtual Status WriteStringToFile(const std::string& path,
                                   const Slice& data) = 0;

  virtual bool FileExists(const std::string& path) = 0;
  virtual Status GetFileSize(const std::string& path, uint64_t* size) = 0;
  virtual Status GetChildren(const std::string& dir,
                             std::vector<std::string>* names) = 0;
  virtual Status CreateDirIfMissing(const std::string& dir) = 0;
  virtual Status RemoveFile(const std::string& path) = 0;
  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;
  /// fsyncs the directory itself so that file creations, removals, and
  /// renames inside it survive power loss (the metadata analogue of
  /// WritableFile::Sync).
  virtual Status SyncDir(const std::string& dir) = 0;
  /// Recursively removes `dir` and everything under it.
  virtual Status RemoveDirRecursively(const std::string& dir) = 0;
  /// Total bytes of all regular files under `dir`, recursively.
  virtual Status GetDirectorySize(const std::string& dir, uint64_t* bytes) = 0;
};

}  // namespace apmbench

#endif  // APMBENCH_COMMON_ENV_H_
