#include "common/arena.h"

#include <cassert>

namespace apmbench {

Arena::Arena(size_t block_bytes)
    : block_bytes_(block_bytes == 0 ? kDefaultBlockBytes : block_bytes) {}

char* Arena::Allocate(size_t bytes) {
  assert(bytes > 0);
  if (bytes <= alloc_remaining_) {
    char* result = alloc_ptr_;
    alloc_ptr_ += bytes;
    alloc_remaining_ -= bytes;
    return result;
  }
  return AllocateFallback(bytes);
}

char* Arena::AllocateAligned(size_t bytes) {
  constexpr size_t kAlign = alignof(std::max_align_t);
  static_assert((kAlign & (kAlign - 1)) == 0, "alignment must be a power of 2");
  size_t mod = reinterpret_cast<uintptr_t>(alloc_ptr_) & (kAlign - 1);
  size_t slop = mod == 0 ? 0 : kAlign - mod;
  size_t needed = bytes + slop;
  if (needed <= alloc_remaining_) {
    char* result = alloc_ptr_ + slop;
    alloc_ptr_ += needed;
    alloc_remaining_ -= needed;
    return result;
  }
  // AllocateFallback always hands out block-start (malloc-aligned) memory.
  return AllocateFallback(bytes);
}

char* Arena::AllocateFallback(size_t bytes) {
  if (bytes > block_bytes_ / 4) {
    // Oversized allocation gets its own block so the remainder of the
    // current block is not wasted on it.
    return AllocateNewBlock(bytes);
  }
  char* block = AllocateNewBlock(block_bytes_);
  alloc_ptr_ = block + bytes;
  alloc_remaining_ = block_bytes_ - bytes;
  return block;
}

char* Arena::AllocateNewBlock(size_t block_bytes) {
  char* block = new char[block_bytes];
  blocks_.emplace_back(block);
  memory_usage_.fetch_add(block_bytes + sizeof(blocks_[0]),
                          std::memory_order_relaxed);
  return block;
}

}  // namespace apmbench
