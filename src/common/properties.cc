#include "common/properties.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace apmbench {

void Properties::Set(const std::string& key, const std::string& value) {
  map_[key] = value;
}

bool Properties::Contains(const std::string& key) const {
  return map_.find(key) != map_.end();
}

std::string Properties::GetString(const std::string& key,
                                  const std::string& default_value) const {
  auto it = map_.find(key);
  return it == map_.end() ? default_value : it->second;
}

int64_t Properties::GetInt(const std::string& key,
                           int64_t default_value) const {
  auto it = map_.find(key);
  if (it == map_.end()) return default_value;
  return strtoll(it->second.c_str(), nullptr, 10);
}

double Properties::GetDouble(const std::string& key,
                             double default_value) const {
  auto it = map_.find(key);
  if (it == map_.end()) return default_value;
  return strtod(it->second.c_str(), nullptr);
}

bool Properties::GetBool(const std::string& key, bool default_value) const {
  auto it = map_.find(key);
  if (it == map_.end()) return default_value;
  const std::string& v = it->second;
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

Status Properties::ParseArg(const std::string& arg) {
  size_t eq = arg.find('=');
  if (eq == std::string::npos || eq == 0) {
    return Status::InvalidArgument("expected key=value, got: " + arg);
  }
  Set(arg.substr(0, eq), arg.substr(eq + 1));
  return Status::OK();
}

Status Properties::LoadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open properties file: " + path);
  }
  std::string line;
  while (std::getline(in, line)) {
    // Trim leading whitespace.
    size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos) continue;
    if (line[start] == '#') continue;
    size_t end = line.find_last_not_of(" \t\r");
    APM_RETURN_IF_ERROR(ParseArg(line.substr(start, end - start + 1)));
  }
  return Status::OK();
}

void Properties::Merge(const Properties& other) {
  for (const auto& [k, v] : other.map_) {
    map_[k] = v;
  }
}

}  // namespace apmbench
