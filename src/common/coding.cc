#include "common/coding.h"

#include <cstring>

namespace apmbench {

void EncodeFixed32(char* dst, uint32_t value) {
  dst[0] = static_cast<char>(value & 0xff);
  dst[1] = static_cast<char>((value >> 8) & 0xff);
  dst[2] = static_cast<char>((value >> 16) & 0xff);
  dst[3] = static_cast<char>((value >> 24) & 0xff);
}

void EncodeFixed64(char* dst, uint64_t value) {
  for (int i = 0; i < 8; i++) {
    dst[i] = static_cast<char>((value >> (8 * i)) & 0xff);
  }
}

void PutFixed32(std::string* dst, uint32_t value) {
  char buf[4];
  EncodeFixed32(buf, value);
  dst->append(buf, 4);
}

void PutFixed64(std::string* dst, uint64_t value) {
  char buf[8];
  EncodeFixed64(buf, value);
  dst->append(buf, 8);
}

void PutVarint32(std::string* dst, uint32_t value) {
  PutVarint64(dst, value);
}

void PutVarint64(std::string* dst, uint64_t value) {
  unsigned char buf[10];
  int n = 0;
  while (value >= 0x80) {
    buf[n++] = static_cast<unsigned char>(value) | 0x80;
    value >>= 7;
  }
  buf[n++] = static_cast<unsigned char>(value);
  dst->append(reinterpret_cast<char*>(buf), n);
}

void PutLengthPrefixedSlice(std::string* dst, const Slice& value) {
  PutVarint64(dst, value.size());
  dst->append(value.data(), value.size());
}

uint32_t DecodeFixed32(const char* ptr) {
  const auto* p = reinterpret_cast<const unsigned char*>(ptr);
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

uint64_t DecodeFixed64(const char* ptr) {
  const auto* p = reinterpret_cast<const unsigned char*>(ptr);
  uint64_t value = 0;
  for (int i = 7; i >= 0; i--) {
    value = (value << 8) | p[i];
  }
  return value;
}

bool GetFixed32(Slice* input, uint32_t* value) {
  if (input->size() < 4) return false;
  *value = DecodeFixed32(input->data());
  input->RemovePrefix(4);
  return true;
}

bool GetFixed64(Slice* input, uint64_t* value) {
  if (input->size() < 8) return false;
  *value = DecodeFixed64(input->data());
  input->RemovePrefix(8);
  return true;
}

bool GetVarint64(Slice* input, uint64_t* value) {
  uint64_t result = 0;
  const char* p = input->data();
  const char* limit = p + input->size();
  for (int shift = 0; shift <= 63 && p < limit; shift += 7) {
    uint64_t byte = static_cast<unsigned char>(*p);
    p++;
    if (byte & 0x80) {
      result |= (byte & 0x7f) << shift;
    } else {
      result |= byte << shift;
      *value = result;
      input->RemovePrefix(p - input->data());
      return true;
    }
  }
  return false;
}

bool GetVarint32(Slice* input, uint32_t* value) {
  uint64_t v;
  if (!GetVarint64(input, &v) || v > UINT32_MAX) return false;
  *value = static_cast<uint32_t>(v);
  return true;
}

bool GetLengthPrefixedSlice(Slice* input, Slice* result) {
  uint64_t len;
  if (!GetVarint64(input, &len) || input->size() < len) return false;
  *result = Slice(input->data(), len);
  input->RemovePrefix(len);
  return true;
}

char* EncodeVarint64(char* dst, uint64_t value) {
  auto* p = reinterpret_cast<unsigned char*>(dst);
  while (value >= 0x80) {
    *p++ = static_cast<unsigned char>(value) | 0x80;
    value >>= 7;
  }
  *p++ = static_cast<unsigned char>(value);
  return reinterpret_cast<char*>(p);
}

char* EncodeVarint32(char* dst, uint32_t value) {
  return EncodeVarint64(dst, value);
}

const char* GetVarint64Ptr(const char* p, const char* limit, uint64_t* value) {
  uint64_t result = 0;
  for (int shift = 0; shift <= 63 && p < limit; shift += 7) {
    uint64_t byte = static_cast<unsigned char>(*p);
    p++;
    if (byte & 0x80) {
      result |= (byte & 0x7f) << shift;
    } else {
      result |= byte << shift;
      *value = result;
      return p;
    }
  }
  return nullptr;
}

const char* GetVarint32Ptr(const char* p, const char* limit, uint32_t* value) {
  uint64_t v;
  const char* q = GetVarint64Ptr(p, limit, &v);
  if (q == nullptr || v > UINT32_MAX) return nullptr;
  *value = static_cast<uint32_t>(v);
  return q;
}

int VarintLength(uint64_t value) {
  int len = 1;
  while (value >= 0x80) {
    value >>= 7;
    len++;
  }
  return len;
}

}  // namespace apmbench
