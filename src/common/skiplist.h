#ifndef APMBENCH_COMMON_SKIPLIST_H_
#define APMBENCH_COMMON_SKIPLIST_H_

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>

#include "common/arena.h"
#include "common/random.h"

namespace apmbench {

/// An ordered map implemented as a skip list, the structure behind both the
/// LSM memtable (as in BigTable/Cassandra/HBase memstores) and the sorted
/// key index of the Redis-like store (Redis uses a skip list for sorted
/// sets). Supports insert-or-assign, point lookup, and ordered iteration
/// with seek.
///
/// Thread-safety contract (the LevelDB memtable discipline):
///  - A single writer may Insert *new* keys concurrently with any number of
///    readers (Find / Iterator). New nodes are published with release
///    stores on the next-pointers and readers traverse with acquire loads,
///    so a reader either sees a fully constructed node or does not see it
///    at all. Nodes are never unlinked or reused while readers run.
///  - Insert-that-overwrites (`node->value = value` on an existing key) and
///    Erase mutate or free shared state and therefore require exclusive
///    access (no concurrent readers or writers). Engines that overwrite or
///    erase (hashkv's sorted index) hold an exclusive lock for writes; the
///    LSM memtable is insert-only with multi-version keys and never hits
///    either path.
///
/// `Comparator` is a stateless functor returning <0/0/>0 like memcmp.
/// `Comparator` may be stateful when passed to the constructor (the LSM
/// memtable's comparator decodes arena-encoded entries).
///
/// When constructed with an `Arena`, nodes are bump-allocated from it and
/// never individually freed — the arena owns all node memory and outlives
/// the list. Arena mode requires `Key` and `Value` to be trivially
/// destructible (the destructor does not visit nodes) and makes Erase a
/// pure unlink: the node's bytes stay reserved until the arena is dropped.
template <typename Key, typename Value, typename Comparator>
class SkipList {
 public:
  static constexpr int kMaxHeight = 12;

  explicit SkipList(Arena* arena = nullptr, Comparator cmp = Comparator())
      : cmp_(cmp),
        rng_(0xdecafbadULL),
        arena_(arena),
        head_(NewNode(Key(), Value(), kMaxHeight)) {
    // Arena-backed nodes are reclaimed wholesale without running Node
    // destructors, so Key/Value must not own heap state in that mode.
    assert(arena_ == nullptr || (std::is_trivially_destructible_v<Key> &&
                                 std::is_trivially_destructible_v<Value>));
  }

  ~SkipList() {
    if (arena_ != nullptr) return;  // the arena owns every node's bytes
    Node* node = head_;
    while (node != nullptr) {
      Node* next = node->Next(0);
      DeleteNode(node);
      node = next;
    }
  }

  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  /// Inserts `key` with `value`, overwriting the value if the key exists.
  /// Returns true if a new key was inserted, false if overwritten. The
  /// insert-new-key path is safe against concurrent readers; the overwrite
  /// path requires exclusive access (see class comment).
  bool Insert(const Key& key, const Value& value) {
    Node* prev[kMaxHeight];
    Node* node = FindGreaterOrEqual(key, prev);
    if (node != nullptr && Equal(node->key, key)) {
      node->value = value;
      return false;
    }
    int height = RandomHeight();
    int list_height = height_.load(std::memory_order_relaxed);
    if (height > list_height) {
      for (int level = list_height; level < height; level++) {
        prev[level] = head_;
      }
      // A concurrent reader that loads the new height before the node below
      // is published just sees nullptr from head_ at the new levels, which
      // is a valid (empty) level — same reasoning as LevelDB's skiplist.
      height_.store(height, std::memory_order_relaxed);
    }
    Node* fresh = NewNode(key, value, height);
    for (int level = 0; level < height; level++) {
      // Wire the new node's forward pointer first (not yet visible), then
      // publish it with a release store so readers that reach `fresh` via
      // the acquire load in Next() observe its key/value and next[] fully
      // initialized.
      fresh->next[level].store(prev[level]->Next(level),
                               std::memory_order_relaxed);
      prev[level]->next[level].store(fresh, std::memory_order_release);
    }
    size_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// Removes `key`; returns true when the key was present. Requires
  /// exclusive access: the node is freed immediately, so no reader may be
  /// traversing concurrently.
  bool Erase(const Key& key) {
    Node* prev[kMaxHeight];
    Node* node = FindGreaterOrEqual(key, prev);
    if (node == nullptr || !Equal(node->key, key)) return false;
    int list_height = height_.load(std::memory_order_relaxed);
    for (int level = 0; level < list_height; level++) {
      if (prev[level]->Next(level) == node) {
        prev[level]->next[level].store(node->Next(level),
                                       std::memory_order_relaxed);
      }
    }
    DeleteNode(node);
    size_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }

  /// Returns the value for `key`, or nullptr when absent. The pointer is
  /// valid until the next Erase of this key or list destruction.
  const Value* Find(const Key& key) const {
    Node* node = FindGreaterOrEqual(key, nullptr);
    if (node != nullptr && Equal(node->key, key)) return &node->value;
    return nullptr;
  }

  Value* FindMutable(const Key& key) {
    Node* node = FindGreaterOrEqual(key, nullptr);
    if (node != nullptr && Equal(node->key, key)) return &node->value;
    return nullptr;
  }

  size_t size() const { return size_.load(std::memory_order_relaxed); }
  bool empty() const { return size() == 0; }

  /// Forward iterator over entries in key order. Safe to use concurrently
  /// with a writer inserting new keys (sees a point-in-time-ish prefix of
  /// the publications; every node observed is fully constructed).
  class Iterator {
   public:
    explicit Iterator(const SkipList* list) : list_(list), node_(nullptr) {}

    bool Valid() const { return node_ != nullptr; }
    const Key& key() const {
      assert(Valid());
      return node_->key;
    }
    const Value& value() const {
      assert(Valid());
      return node_->value;
    }
    void Next() {
      assert(Valid());
      node_ = node_->Next(0);
    }
    void SeekToFirst() { node_ = list_->head_->Next(0); }
    /// Positions at the first entry with key >= target.
    void Seek(const Key& target) {
      node_ = list_->FindGreaterOrEqual(target, nullptr);
    }

   private:
    const SkipList* list_;
    typename SkipList::Node* node_;
  };

 private:
  struct Node {
    Key key;
    Value value;
    std::atomic<Node*> next[1];  // over-allocated to `height` pointers

    Node* Next(int level) const {
      // Acquire pairs with the release store in Insert so the pointed-to
      // node's contents are visible before the pointer is dereferenced.
      return next[level].load(std::memory_order_acquire);
    }
  };

  Node* NewNode(const Key& key, const Value& value, int height) {
    const size_t bytes = sizeof(Node) + sizeof(std::atomic<Node*>) *
                                            static_cast<size_t>(height - 1);
    char* mem = arena_ != nullptr ? arena_->AllocateAligned(bytes)
                                  : new char[bytes];
    Node* node = new (mem) Node();
    node->key = key;
    node->value = value;
    for (int i = 0; i < height; i++) {
      // Placement-new the over-allocated atomics beyond next[0].
      if (i > 0) new (&node->next[i]) std::atomic<Node*>();
      node->next[i].store(nullptr, std::memory_order_relaxed);
    }
    return node;
  }

  void DeleteNode(Node* node) {
    if (arena_ != nullptr) return;  // unlink only; the arena keeps the bytes
    node->~Node();
    delete[] reinterpret_cast<char*>(node);
  }

  int RandomHeight() {
    // Increase height with probability 1/4 per level, as in LevelDB.
    int height = 1;
    while (height < kMaxHeight && rng_.Uniform(4) == 0) height++;
    return height;
  }

  bool Equal(const Key& a, const Key& b) const { return cmp_(a, b) == 0; }

  Node* FindGreaterOrEqual(const Key& key, Node** prev) const {
    Node* node = head_;
    int level = height_.load(std::memory_order_relaxed) - 1;
    for (;;) {
      Node* next = node->Next(level);
      if (next != nullptr && cmp_(next->key, key) < 0) {
        node = next;
      } else {
        if (prev != nullptr) prev[level] = node;
        if (level == 0) return next;
        level--;
      }
    }
  }

  Comparator cmp_;
  Random rng_;
  Arena* arena_;  // nullptr = heap-allocated nodes (hashkv, redis index)
  Node* head_;
  std::atomic<int> height_{1};
  std::atomic<size_t> size_{0};
};

}  // namespace apmbench

#endif  // APMBENCH_COMMON_SKIPLIST_H_
