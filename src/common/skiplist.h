#ifndef APMBENCH_COMMON_SKIPLIST_H_
#define APMBENCH_COMMON_SKIPLIST_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <new>

#include "common/random.h"

namespace apmbench {

/// An ordered map implemented as a skip list, the structure behind both the
/// LSM memtable (as in BigTable/Cassandra/HBase memstores) and the sorted
/// key index of the Redis-like store (Redis uses a skip list for sorted
/// sets). Supports insert-or-assign, point lookup, and ordered iteration
/// with seek. Not internally synchronized.
///
/// `Comparator` is a stateless functor returning <0/0/>0 like memcmp.
template <typename Key, typename Value, typename Comparator>
class SkipList {
 public:
  static constexpr int kMaxHeight = 12;

  SkipList() : rng_(0xdecafbadULL), head_(NewNode(Key(), Value(), kMaxHeight)) {}

  ~SkipList() {
    Node* node = head_;
    while (node != nullptr) {
      Node* next = node->next[0];
      DeleteNode(node);
      node = next;
    }
  }

  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  /// Inserts `key` with `value`, overwriting the value if the key exists.
  /// Returns true if a new key was inserted, false if overwritten.
  bool Insert(const Key& key, const Value& value) {
    Node* prev[kMaxHeight];
    Node* node = FindGreaterOrEqual(key, prev);
    if (node != nullptr && Equal(node->key, key)) {
      node->value = value;
      return false;
    }
    int height = RandomHeight();
    if (height > height_) {
      for (int level = height_; level < height; level++) {
        prev[level] = head_;
      }
      height_ = height;
    }
    Node* fresh = NewNode(key, value, height);
    for (int level = 0; level < height; level++) {
      fresh->next[level] = prev[level]->next[level];
      prev[level]->next[level] = fresh;
    }
    size_++;
    return true;
  }

  /// Removes `key`; returns true when the key was present.
  bool Erase(const Key& key) {
    Node* prev[kMaxHeight];
    Node* node = FindGreaterOrEqual(key, prev);
    if (node == nullptr || !Equal(node->key, key)) return false;
    for (int level = 0; level < height_; level++) {
      if (prev[level]->next[level] == node) {
        prev[level]->next[level] = node->next[level];
      }
    }
    DeleteNode(node);
    size_--;
    return true;
  }

  /// Returns the value for `key`, or nullptr when absent. The pointer is
  /// valid until the next Erase of this key or list destruction.
  const Value* Find(const Key& key) const {
    Node* node = FindGreaterOrEqual(key, nullptr);
    if (node != nullptr && Equal(node->key, key)) return &node->value;
    return nullptr;
  }

  Value* FindMutable(const Key& key) {
    Node* node = FindGreaterOrEqual(key, nullptr);
    if (node != nullptr && Equal(node->key, key)) return &node->value;
    return nullptr;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Forward iterator over entries in key order.
  class Iterator {
   public:
    explicit Iterator(const SkipList* list) : list_(list), node_(nullptr) {}

    bool Valid() const { return node_ != nullptr; }
    const Key& key() const {
      assert(Valid());
      return node_->key;
    }
    const Value& value() const {
      assert(Valid());
      return node_->value;
    }
    void Next() {
      assert(Valid());
      node_ = node_->next[0];
    }
    void SeekToFirst() { node_ = list_->head_->next[0]; }
    /// Positions at the first entry with key >= target.
    void Seek(const Key& target) {
      node_ = list_->FindGreaterOrEqual(target, nullptr);
    }

   private:
    const SkipList* list_;
    typename SkipList::Node* node_;
  };

 private:
  struct Node {
    Key key;
    Value value;
    Node* next[1];  // over-allocated to `height` pointers
  };

  static Node* NewNode(const Key& key, const Value& value, int height) {
    char* mem = new char[sizeof(Node) +
                         sizeof(Node*) * static_cast<size_t>(height - 1)];
    Node* node = new (mem) Node();
    node->key = key;
    node->value = value;
    for (int i = 0; i < height; i++) node->next[i] = nullptr;
    return node;
  }

  static void DeleteNode(Node* node) {
    node->~Node();
    delete[] reinterpret_cast<char*>(node);
  }

  int RandomHeight() {
    // Increase height with probability 1/4 per level, as in LevelDB.
    int height = 1;
    while (height < kMaxHeight && rng_.Uniform(4) == 0) height++;
    return height;
  }

  bool Equal(const Key& a, const Key& b) const { return cmp_(a, b) == 0; }

  Node* FindGreaterOrEqual(const Key& key, Node** prev) const {
    Node* node = head_;
    int level = height_ - 1;
    for (;;) {
      Node* next = node->next[level];
      if (next != nullptr && cmp_(next->key, key) < 0) {
        node = next;
      } else {
        if (prev != nullptr) prev[level] = node;
        if (level == 0) return next;
        level--;
      }
    }
  }

  Comparator cmp_;
  Random rng_;
  Node* head_;
  int height_ = 1;
  size_t size_ = 0;
};

}  // namespace apmbench

#endif  // APMBENCH_COMMON_SKIPLIST_H_
