#ifndef APMBENCH_COMMON_ARENA_H_
#define APMBENCH_COMMON_ARENA_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace apmbench {

/// Bump allocator backing one memtable's skip-list nodes and entry bytes,
/// the LevelDB arena design: allocations come out of fixed-size blocks and
/// are never freed individually — the whole arena (one memtable's worth of
/// entries) is dropped at once when the memtable is flushed. This removes
/// the per-Put `new` from the LSM write path and makes the flush trigger
/// exact: MemoryUsage() is the sum of malloc'ed block bytes, so a stream
/// of tiny keys can overshoot the write-buffer budget by at most one block.
///
/// Thread-safety: Allocate/AllocateAligned may only be called by one thread
/// at a time (the group-commit leader). MemoryUsage() is safe to read from
/// any thread concurrently with allocation; readers of previously returned
/// pointers are always safe because arena memory is never recycled while
/// the arena lives.
class Arena {
 public:
  static constexpr size_t kDefaultBlockBytes = 4096;

  explicit Arena(size_t block_bytes = kDefaultBlockBytes);

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns a pointer to `bytes` bytes with no alignment guarantee beyond
  /// byte granularity (used for key/value byte strings).
  char* Allocate(size_t bytes);

  /// Returns a pointer aligned for any standard scalar type (used for
  /// skip-list nodes holding atomics and pointers).
  char* AllocateAligned(size_t bytes);

  /// Total bytes reserved from the system allocator (block payloads plus
  /// vector bookkeeping), exact rather than estimated. Safe to call from
  /// any thread.
  size_t MemoryUsage() const {
    return memory_usage_.load(std::memory_order_relaxed);
  }

  /// Number of blocks malloc'ed so far (test/diagnostic visibility).
  size_t BlockCount() const { return blocks_.size(); }

  size_t block_bytes() const { return block_bytes_; }

 private:
  char* AllocateFallback(size_t bytes);
  char* AllocateNewBlock(size_t block_bytes);

  const size_t block_bytes_;
  // Current block bump state.
  char* alloc_ptr_ = nullptr;
  size_t alloc_remaining_ = 0;
  std::vector<std::unique_ptr<char[]>> blocks_;
  std::atomic<size_t> memory_usage_{0};
};

}  // namespace apmbench

#endif  // APMBENCH_COMMON_ARENA_H_
