#ifndef APMBENCH_COMMON_CACHE_H_
#define APMBENCH_COMMON_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>

namespace apmbench {

/// Returns a well-mixed 32-bit hash of a (owner, offset) cache key. The
/// same mix is shared by ShardedLRUCache and by the B+tree buffer pool's
/// sharded frame index, so both layers spread keys across shards the same
/// way.
uint32_t CacheKeyHash(uint64_t owner, uint64_t offset);

/// Maps a CacheKeyHash value to a shard in [0, 2^shard_bits).
inline uint32_t CacheShardOf(uint32_t hash, int shard_bits) {
  // Shifting by the full width is undefined, so bits == 0 (a single
  // shard) is its own case.
  return shard_bits == 0 ? 0 : hash >> (32 - shard_bits);
}

/// Default shard count (16 shards), matching LevelDB's kNumShardBits.
inline constexpr int kDefaultCacheShardBits = 4;

/// A sharded, reference-counted LRU cache in the LevelDB/RocksDB
/// ShardedLRUCache mold. Entries are keyed by an (owner, offset) pair of
/// integers — for SSTable blocks the owner is the file number — and each
/// shard is an independent LRU protected by its own mutex, selected by
/// the top bits of the key hash, so concurrent readers on different
/// blocks rarely contend.
///
/// Reference counting: Insert and Lookup return a *pinned* Handle; the
/// caller reads the value in place (zero-copy) and must call Release
/// exactly once. A pinned entry lives on the shard's in-use list, where
/// eviction cannot touch it — it stays charged against capacity but is
/// never freed under a reader. When the last reference drops the entry
/// returns to the LRU list (still cached) or, if it was erased or evicted
/// meanwhile, its deleter runs.
///
/// EvictOwner(owner) is O(entries of that owner): every entry is also
/// linked on a per-owner intrusive list, so dropping a compacted file's
/// blocks never scans the whole cache.
///
/// Thread-safety: every method is safe to call concurrently. Hit/miss/
/// eviction counters are atomics (readable without any lock).
class ShardedLRUCache {
 public:
  struct Handle;  // opaque; defined in cache.cc

  /// Destroys `value` when the entry's last reference drops.
  using Deleter = void (*)(void* value);

  /// `capacity_bytes` is the total charge budget across all 2^shard_bits
  /// shards. shard_bits is clamped to [0, 8].
  explicit ShardedLRUCache(size_t capacity_bytes,
                           int shard_bits = kDefaultCacheShardBits);
  ~ShardedLRUCache();

  ShardedLRUCache(const ShardedLRUCache&) = delete;
  ShardedLRUCache& operator=(const ShardedLRUCache&) = delete;

  /// Inserts `value` under (owner, offset), replacing any existing entry,
  /// and returns a pinned handle to it. Always succeeds: with capacity 0
  /// (or an over-budget cache) the entry is still returned pinned, it is
  /// just not retained once released. The cache owns `value` from this
  /// point; `deleter` runs when the last reference drops.
  Handle* Insert(uint64_t owner, uint64_t offset, void* value, size_t charge,
                 Deleter deleter);

  /// Returns a pinned handle to the cached entry, or nullptr on miss.
  Handle* Lookup(uint64_t owner, uint64_t offset);

  /// Drops one reference taken by Insert/Lookup.
  void Release(Handle* handle);

  /// The value a pinned handle points at; valid until Release.
  static void* Value(Handle* handle);

  /// Removes the entry if present; pinned readers keep their references.
  void Erase(uint64_t owner, uint64_t offset);

  /// Removes every entry belonging to `owner` (a deleted SSTable). O(1)
  /// per entry via the per-owner handle lists.
  void EvictOwner(uint64_t owner);

  /// Total bytes currently charged (includes pinned entries).
  size_t charge() const;

  size_t capacity() const { return capacity_; }
  int num_shards() const { return num_shards_; }

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

 private:
  struct Shard;

  Shard* ShardFor(uint32_t hash) const;

  const size_t capacity_;
  const int shard_bits_;
  const int num_shards_;
  std::unique_ptr<Shard[]> shards_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace apmbench

#endif  // APMBENCH_COMMON_CACHE_H_
