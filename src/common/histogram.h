#ifndef APMBENCH_COMMON_HISTOGRAM_H_
#define APMBENCH_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace apmbench {

/// A fixed-memory latency histogram with HdrHistogram-style log-linear
/// buckets: values are grouped into buckets whose width doubles every
/// `kSubBuckets` buckets, giving a bounded relative error (< 1/kSubBuckets)
/// over the full range [1, kMaxValue]. Values are recorded in microseconds
/// by the benchmark framework but the class is unit-agnostic.
///
/// Thread-compatibility: not internally synchronized; the benchmark runner
/// keeps one histogram per client thread and merges at the end.
class Histogram {
 public:
  static constexpr int kSubBucketBits = 7;  // 128 sub-buckets per half-decade
  static constexpr uint64_t kSubBuckets = 1ULL << kSubBucketBits;
  /// Values above ~2^40 (about 12 days in microseconds) saturate.
  static constexpr int kBucketGroups = 34;

  Histogram();

  /// Records one observation of `value` (values of 0 count as 1).
  void Add(uint64_t value);

  /// Records `n` observations of `value` in one call.
  void Add(uint64_t value, uint64_t n);

  /// Adds all observations from `other` into this histogram.
  void Merge(const Histogram& other);

  void Reset();

  /// Exchanges contents with `other` in O(1) bucket moves; used by the
  /// windowed time-series collector to hand off a full interval and keep
  /// recording into a cleared histogram without copying bucket arrays.
  void Swap(Histogram* other) noexcept;

  uint64_t count() const { return count_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double Mean() const;
  double Sum() const { return sum_; }

  /// Value at quantile q in [0, 1]; returns an upper bound of the bucket
  /// containing the quantile. Returns 0 for an empty histogram.
  uint64_t Percentile(double q) const;

  /// Multi-line summary: count, mean, min, median, p95, p99, p999, max.
  std::string ToString() const;

 private:
  size_t BucketIndex(uint64_t value) const;
  uint64_t BucketUpperBound(size_t index) const;

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0;
  uint64_t min_ = UINT64_MAX;
  uint64_t max_ = 0;
};

}  // namespace apmbench

#endif  // APMBENCH_COMMON_HISTOGRAM_H_
