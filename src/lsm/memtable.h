#ifndef APMBENCH_LSM_MEMTABLE_H_
#define APMBENCH_LSM_MEMTABLE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/skiplist.h"
#include "common/slice.h"
#include "lsm/iterator.h"

namespace apmbench::lsm {

/// In-memory write buffer backed by a skip list, as in Cassandra's
/// memtable / HBase's memstore. Stores at most one entry per user key
/// (newest wins); deletions are tombstone entries so they shadow older
/// SSTable data after a flush. Not internally synchronized — the DB
/// serializes writers and uses an immutable handoff for flushes.
class MemTable {
 public:
  MemTable() = default;

  MemTable(const MemTable&) = delete;
  MemTable& operator=(const MemTable&) = delete;

  void Put(const Slice& key, const Slice& value, uint64_t seq);
  void Delete(const Slice& key, uint64_t seq);

  enum class GetResult { kFound, kDeleted, kAbsent };
  /// Looks up `key`; on kFound, `*value` receives the stored value. `*seq`
  /// (optional) receives the entry's write sequence number on any hit.
  GetResult Get(const Slice& key, std::string* value,
                uint64_t* seq = nullptr) const;

  /// Approximate heap footprint of stored entries, used against
  /// Options::memtable_bytes.
  size_t ApproximateBytes() const { return bytes_; }
  size_t EntryCount() const { return table_.size(); }

  /// Iterator over current contents. The MemTable must outlive it and must
  /// not be mutated while the iterator is live (the DB guarantees this by
  /// only iterating the immutable memtable or under its mutex).
  std::unique_ptr<Iterator> NewIterator() const;

 private:
  struct Entry {
    uint64_t seq = 0;
    bool tombstone = false;
    std::string value;
  };

  struct KeyCompare {
    int operator()(const std::string& a, const std::string& b) const {
      return Slice(a).Compare(Slice(b));
    }
  };

  using Table = SkipList<std::string, Entry, KeyCompare>;

  friend class MemTableIterator;

  Table table_;
  size_t bytes_ = 0;
};

}  // namespace apmbench::lsm

#endif  // APMBENCH_LSM_MEMTABLE_H_
