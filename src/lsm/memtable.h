#ifndef APMBENCH_LSM_MEMTABLE_H_
#define APMBENCH_LSM_MEMTABLE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/skiplist.h"
#include "common/slice.h"
#include "lsm/iterator.h"

namespace apmbench::lsm {

/// In-memory write buffer backed by a skip list, as in Cassandra's
/// memtable / HBase's memstore. Entries are keyed by (user key, sequence
/// number descending), so every Put/Delete inserts a fresh node and
/// nothing is ever overwritten in place — the LevelDB memtable layout.
/// That makes the structure insert-only, which is what lets a single
/// writer (the group-commit leader) apply entries while readers traverse
/// the skip list lock-free: published nodes are immutable.
///
/// Deletions are tombstone entries so they shadow older SSTable data
/// after a flush. Readers pass a `seq_limit` to see a consistent prefix
/// of the write history (the DB uses its last fully applied sequence
/// number, which keeps half-applied write groups invisible).
class MemTable {
 public:
  static constexpr uint64_t kMaxSeq = UINT64_MAX;

  MemTable() = default;

  MemTable(const MemTable&) = delete;
  MemTable& operator=(const MemTable&) = delete;

  void Put(const Slice& key, const Slice& value, uint64_t seq);
  void Delete(const Slice& key, uint64_t seq);

  enum class GetResult { kFound, kDeleted, kAbsent };
  /// Looks up the newest version of `key` with sequence <= `seq_limit`;
  /// on kFound, `*value` receives the stored value. `*seq` (optional)
  /// receives the entry's write sequence number on any hit.
  GetResult Get(const Slice& key, std::string* value, uint64_t* seq = nullptr,
                uint64_t seq_limit = kMaxSeq) const;

  /// Approximate heap footprint of stored entries, used against
  /// Options::memtable_bytes.
  size_t ApproximateBytes() const {
    return bytes_.load(std::memory_order_relaxed);
  }
  /// Number of stored entries. With multi-versioning this counts every
  /// version, not distinct user keys.
  size_t EntryCount() const { return table_.size(); }

  /// Iterator over entries with sequence <= `seq_limit`, in (key asc, seq
  /// desc) order — a key with several versions appears newest-first, which
  /// is exactly what DedupIterator expects. Safe to use concurrently with
  /// the single writer; the MemTable must outlive it.
  std::unique_ptr<Iterator> NewIterator(uint64_t seq_limit = kMaxSeq) const;

 private:
  struct MemKey {
    std::string user_key;
    uint64_t seq = 0;
  };

  struct Entry {
    bool tombstone = false;
    std::string value;
  };

  struct KeyCompare {
    int operator()(const MemKey& a, const MemKey& b) const {
      int c = Slice(a.user_key).Compare(Slice(b.user_key));
      if (c != 0) return c;
      // Newer versions sort first so a seek to (key, limit) lands on the
      // newest visible version.
      if (a.seq > b.seq) return -1;
      if (a.seq < b.seq) return 1;
      return 0;
    }
  };

  using Table = SkipList<MemKey, Entry, KeyCompare>;

  friend class MemTableIterator;

  Table table_;
  std::atomic<size_t> bytes_{0};
};

}  // namespace apmbench::lsm

#endif  // APMBENCH_LSM_MEMTABLE_H_
