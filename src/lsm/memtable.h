#ifndef APMBENCH_LSM_MEMTABLE_H_
#define APMBENCH_LSM_MEMTABLE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/arena.h"
#include "common/skiplist.h"
#include "common/slice.h"
#include "lsm/iterator.h"

namespace apmbench::lsm {

/// In-memory write buffer backed by a skip list, as in Cassandra's
/// memtable / HBase's memstore. Entries are keyed by (user key, sequence
/// number descending), so every Put/Delete inserts a fresh node and
/// nothing is ever overwritten in place — the LevelDB memtable layout.
/// That makes the structure insert-only, which is what lets a single
/// writer (the group-commit leader) apply entries while readers traverse
/// the skip list lock-free: published nodes are immutable.
///
/// Entries and skip-list nodes are bump-allocated from a per-memtable
/// Arena: a Put performs zero heap allocations of its own, and
/// ApproximateMemoryUsage() is the exact number of bytes reserved, which
/// is what the flush trigger compares against Options::memtable_bytes.
/// Each entry is encoded contiguously in arena memory as
///
///   varint32 klen | key | fixed64 seq | flags u8 | varint32 vlen | value
///
/// with flags bit0 = tombstone; the skip-list key is the pointer to the
/// first byte and the comparator decodes in place.
///
/// Deletions are tombstone entries so they shadow older SSTable data
/// after a flush. Readers pass a `seq_limit` to see a consistent prefix
/// of the write history (the DB uses its last fully applied sequence
/// number, which keeps half-applied write groups invisible).
class MemTable {
 public:
  static constexpr uint64_t kMaxSeq = UINT64_MAX;

  explicit MemTable(size_t arena_block_bytes = Arena::kDefaultBlockBytes)
      : arena_(arena_block_bytes), table_(&arena_) {}

  MemTable(const MemTable&) = delete;
  MemTable& operator=(const MemTable&) = delete;

  void Put(const Slice& key, const Slice& value, uint64_t seq);
  void Delete(const Slice& key, uint64_t seq);

  enum class GetResult { kFound, kDeleted, kAbsent };
  /// Looks up the newest version of `key` with sequence <= `seq_limit`;
  /// on kFound, `*value` receives the stored value. `*seq` (optional)
  /// receives the entry's write sequence number on any hit.
  GetResult Get(const Slice& key, std::string* value, uint64_t* seq = nullptr,
                uint64_t seq_limit = kMaxSeq) const;

  /// Exact bytes reserved by this memtable's arena (entry bytes plus
  /// skip-list nodes), compared against Options::memtable_bytes by the
  /// flush trigger. Safe to read from any thread.
  size_t ApproximateMemoryUsage() const { return arena_.MemoryUsage(); }

  /// Number of stored entries. With multi-versioning this counts every
  /// version, not distinct user keys.
  size_t EntryCount() const { return table_.size(); }

  /// Iterator over entries with sequence <= `seq_limit`, in (key asc, seq
  /// desc) order — a key with several versions appears newest-first, which
  /// is exactly what DedupIterator expects. Safe to use concurrently with
  /// the single writer; the MemTable must outlive it.
  std::unique_ptr<Iterator> NewIterator(uint64_t seq_limit = kMaxSeq) const;

 private:
  /// Fields of an arena-encoded entry, decoded in place (slices point at
  /// arena bytes and stay valid for the memtable's lifetime).
  struct DecodedEntry {
    Slice key;
    Slice value;
    uint64_t seq = 0;
    bool tombstone = false;
  };
  static DecodedEntry DecodeEntry(const char* p);

  /// Compares encoded entries by (key asc, seq desc). A lookup key built
  /// by LookupKey encodes only the `klen | key | seq` prefix, which is all
  /// the comparator reads.
  struct EntryCompare {
    int operator()(const char* a, const char* b) const;
  };

  using Table = SkipList<const char*, char, EntryCompare>;

  void Add(const Slice& key, const Slice& value, uint64_t seq,
           bool tombstone);

  friend class MemTableIterator;

  Arena arena_;
  Table table_;
};

}  // namespace apmbench::lsm

#endif  // APMBENCH_LSM_MEMTABLE_H_
